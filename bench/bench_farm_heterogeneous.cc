/**
 * @file
 * Extension bench: autonomous per-server farm control on heterogeneous
 * platform mixes — the regime the farm-wide thinned-log path cannot
 * express. Three panels:
 *
 *  (a) Control-mode comparability: on a symmetric homogeneous farm the
 *      "farm-wide" and "per-server" modes make the same decisions, so
 *      their power/response columns coincide — the paper's Section 7
 *      scale-out conjecture as a measurable identity.
 *  (b) big/little mix: a xeon/atom farm under per-server control, with
 *      the per-server breakdown showing each half settling on its own
 *      (frequency, sleep-state) operating point.
 *  (c) Skewed dispatch: the packing dispatcher concentrates load, and
 *      the autonomous controllers respond with divergent per-server
 *      rate decisions (the distributed-rate-scaling regime).
 */

#include <iostream>

#include "experiment/runner.hh"

using namespace sleepscale;

namespace {

ScenarioBuilder
farmBase(const std::string &label)
{
    return ScenarioBuilder(label)
        .engine(EngineKind::Farm)
        .workload("dns")
        .trace("es")
        .traceSeed(20140614)
        .window(2, 20)
        .dispatcher("random")
        .epochMinutes(5)
        .overProvision(0.35)
        .rhoB(0.8)
        .predictor("LC")
        .seed(4040);
}

} // namespace

int
main()
{
    // ---------------- (a) control-mode comparability ----------------
    printBanner(std::cout,
                "Heterogeneous farm (a): farm-wide vs per-server "
                "control, 4 identical xeons, email-store 2AM-8PM");

    ExperimentRunner mode_runner;
    mode_runner.addGrid(
        farmBase("modes").farmSize(4).build(),
        {sweepFarmControls({"farm-wide", "per-server"})});
    const auto mode_results = mode_runner.run();
    resultsTable(mode_results).print(std::cout);
    std::cout << "\nExpected: the rows agree to within sampling noise "
                 "— per-server\ncontrol reproduces the farm-wide "
                 "decisions when the farm is symmetric\nand homogeneous "
                 "(tests/farm_per_server_test.cc pins the exact-match\n"
                 "cases).\n";

    // ---------------- (b) big/little platform mix ----------------
    printBanner(std::cout,
                "Heterogeneous farm (b): 2x xeon + 2x atom under "
                "per-server control");

    const ScenarioResult mixed = ExperimentRunner::runScenario(
        farmBase("big.LITTLE")
            .farmControl("per-server")
            .farmPlatforms({"xeon", "xeon", "atom", "atom"})
            .build());
    resultsTable({mixed}).print(std::cout);
    std::cout << '\n';
    serversTable(mixed).print(std::cout);
    std::cout << "\nExpected: the atom half draws a fraction of the "
                 "xeon half's watts;\neach platform settles on its own "
                 "operating point.\n";

    // ---------------- (c) skewed dispatch ----------------
    printBanner(std::cout,
                "Heterogeneous farm (c): packing dispatcher skews "
                "load; autonomous controllers diverge");

    const ScenarioResult packed = ExperimentRunner::runScenario(
        farmBase("packed")
            .farmSize(4)
            .dispatcher("packing")
            .packingSpillBacklog(2.0)
            .farmControl("per-server")
            .build());
    resultsTable({packed}).print(std::cout);
    std::cout << '\n';
    serversTable(packed).print(std::cout);
    std::cout << "\nExpected: dispatched-job counts fall off sharply "
                 "with the server\nindex, and the per-server operating "
                 "points diverge: spill-fed servers\nsee bursty logs "
                 "and defend QoS at high frequency while the packed\n"
                 "head of the farm carries the sustained load.\n";
    return 0;
}
