/**
 * @file
 * Controller bench (docs/CONTROL.md): what the O(1) feedback path
 * costs and buys against the search path it replaces.
 *
 * Four sections, each over the paper's DNS day unless noted:
 *
 *  1. Decision cost — per-epoch decision wall time (mean and p99 µs)
 *     of "poet" vs the full and pruned "SS" searches, replicated
 *     N = 5 with 95% CIs. The headline claim: the controller decides
 *     in well under 50 µs where the search spends milliseconds.
 *  2. Burst convergence — the controller under an MMPP-modulated
 *     bursty arrival stream: how many epochs each QoS excursion
 *     lasts before the loop re-enters the budget (reactive recovery,
 *     the trade-off the feedback path makes for its constant cost).
 *  3. Paired energy/QoS deltas — poet vs full and pruned search on
 *     the Table 5 workloads (dns, mail, google) under common random
 *     numbers, N = 5, 95% CIs on the energy savings and the
 *     mean-response delta.
 *  4. Farm scale — a 10 000-server per-server farm where every
 *     back-end runs its own controller: the whole decision fan-out's
 *     wall time per epoch (the <1 s bound that makes per-server
 *     control at that scale feasible at all; the search path costs
 *     minutes per epoch there).
 *
 * `--json` emits the same numbers as a JSON document;
 * tools/bench_snapshot.sh captures it as BENCH_controller.json.
 */

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/qos.hh"
#include "experiment/replication.hh"
#include "experiment/runner.hh"
#include "workload/workload_spec.hh"

using namespace sleepscale;

namespace {

constexpr std::size_t kReplications = 5;

std::string
fmt(double value, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

/** The shared single-server DNS-day scenario all sections start from. */
ScenarioBuilder
dayScenario(const std::string &label, const std::string &strategy,
            const std::string &workload)
{
    ScenarioBuilder builder(label);
    builder.workload(workload)
        .strategy(strategy)
        .trace("es")
        .traceDays(1)
        .window(2, 20)
        .epochMinutes(5)
        .predictor("LC")
        .seed(5);
    return builder;
}

// --------------------------------------------------- 1. decision cost

struct CostRow
{
    std::string strategy;
    MetricSummary mean_us; ///< decision_us_mean across replications.
    MetricSummary p99_us;  ///< decision_us_p99 across replications.
};

CostRow
decisionCost(const std::string &label, const std::string &strategy,
             bool pruned)
{
    ScenarioSpec spec = dayScenario("cost " + label, strategy, "dns")
                            .prunedSearch(pruned)
                            .recordDecisionTime()
                            .replications(kReplications)
                            .build();
    const ReplicatedResult result = ReplicationPlan(kReplications).run(spec);
    return {label, result.metric("decision_us_mean"),
            result.metric("decision_us_p99")};
}

// ----------------------------------------------- 2. burst convergence

struct BurstOutcome
{
    double budget_s = 0.0;      ///< The QoS budget the spells exceed.
    std::size_t epochs = 0;     ///< Completed epochs examined.
    std::size_t spells = 0;     ///< Maximal runs of violating epochs.
    std::size_t max_spell = 0;  ///< Longest spell, epochs.
    double mean_spell = 0.0;    ///< Mean spell length, epochs.
    double violating_fraction = 0.0; ///< Violating / examined epochs.
};

BurstOutcome
burstConvergence()
{
    ScenarioSpec spec =
        dayScenario("burst", "poet", "dns")
            .source("bursty")
            .sourceUtilization(0.2)
            .burstiness(4.0, 120.0, 1800.0)
            .captureEpochs()
            .build();
    const ScenarioResult result = ExperimentRunner::runScenario(spec);

    BurstOutcome outcome;
    outcome.budget_s =
        QosConstraint::fromBaselineMean(spec.rhoB,
                                        workloadByName("dns").serviceMean)
            .budget();

    const auto response = result.epochs.column("mean_response_s");
    const auto completions = result.epochs.column("completions");
    std::size_t spell = 0;
    std::size_t violating = 0;
    bool settled = false; // skip the cold-start ramp
    for (std::size_t i = 0; i < response.size(); ++i) {
        if (completions[i] <= 0.0)
            continue;
        const bool over = response[i] > outcome.budget_s;
        if (!settled) {
            settled = !over;
            continue;
        }
        ++outcome.epochs;
        if (over) {
            ++violating;
            ++spell;
            outcome.max_spell = std::max(outcome.max_spell, spell);
        } else if (spell > 0) {
            ++outcome.spells;
            spell = 0;
        }
    }
    if (spell > 0)
        ++outcome.spells;
    outcome.mean_spell =
        outcome.spells > 0
            ? static_cast<double>(violating) /
                  static_cast<double>(outcome.spells)
            : 0.0;
    outcome.violating_fraction =
        outcome.epochs > 0 ? static_cast<double>(violating) /
                                 static_cast<double>(outcome.epochs)
                           : 0.0;
    return outcome;
}

// ------------------------------------------- 3. paired energy deltas

struct PairedRow
{
    std::string workload;
    std::string baseline; ///< "SS" or "SS-pruned".
    MetricSummary energy_savings_pct;
    MetricSummary response_delta_s; ///< poet − search mean response.
    double poet_violations;   ///< QoS-violating replication fraction.
    double search_violations;
};

PairedRow
pairedDelta(const std::string &workload, bool pruned)
{
    const std::string baseline = pruned ? "SS-pruned" : "SS";
    ScenarioSpec poet =
        dayScenario("poet " + workload, "poet", workload)
            .replications(kReplications)
            .build();
    ScenarioSpec search =
        dayScenario(baseline + " " + workload, "SS", workload)
            .prunedSearch(pruned)
            .replications(kReplications)
            .build();
    const PairedComparison comparison =
        ReplicationPlan(kReplications).comparePaired(poet, search);
    return {workload,
            baseline,
            comparison.delta("energy_savings_pct"),
            comparison.delta("mean_response_s"),
            comparison.a.metric("qos_violation").mean(),
            comparison.b.metric("qos_violation").mean()};
}

// ------------------------------------------------------ 4. farm scale

struct FarmScaleRow
{
    std::size_t servers = 0;
    double decision_us_mean = 0.0; ///< Whole fan-out per epoch, µs.
    double decision_us_p99 = 0.0;
    double farm_power_w = 0.0;
};

FarmScaleRow
farmScale(std::size_t servers)
{
    // A short, lightly loaded window: the section measures decision
    // fan-out cost, which is independent of the job stream's length.
    ScenarioSpec spec = ScenarioBuilder("farm scale")
                            .engine(EngineKind::Farm)
                            .workload("dns")
                            .strategy("poet")
                            .farmSize(servers)
                            .farmControl("per-server")
                            .source("stationary")
                            .sourceUtilization(0.02)
                            .flatTrace(0.02, 15)
                            .epochMinutes(5)
                            .recordDecisionTime()
                            .seed(4)
                            .build();
    const ScenarioResult result = ExperimentRunner::runScenario(spec);
    return {servers, result.extra("decision_us_mean"),
            result.extra("decision_us_p99"), result.avgPower};
}

// ------------------------------------------------------------ output

void
printJson(std::ostream &out, const std::vector<CostRow> &costs,
          const BurstOutcome &burst,
          const std::vector<PairedRow> &paired,
          const FarmScaleRow &farm)
{
    out << "{\n  \"bench\": \"controller\",\n"
        << "  \"replications\": " << kReplications << ",\n"
        << "  \"decision_cost\": [\n";
    for (std::size_t i = 0; i < costs.size(); ++i) {
        const CostRow &row = costs[i];
        out << "    {\"strategy\": \"" << row.strategy
            << "\", \"mean_us\": " << fmt(row.mean_us.mean(), 3)
            << ", \"mean_us_ci\": " << fmt(row.mean_us.ciHalfWidth(), 3)
            << ", \"p99_us\": " << fmt(row.p99_us.mean(), 3)
            << "}" << (i + 1 < costs.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"burst_convergence\": {\"budget_s\": "
        << fmt(burst.budget_s, 4)
        << ", \"epochs\": " << burst.epochs
        << ", \"qos_excursions\": " << burst.spells
        << ", \"max_recovery_epochs\": " << burst.max_spell
        << ", \"mean_recovery_epochs\": " << fmt(burst.mean_spell, 2)
        << ", \"violating_fraction\": "
        << fmt(burst.violating_fraction, 4) << "},\n"
        << "  \"paired_vs_search\": [\n";
    for (std::size_t i = 0; i < paired.size(); ++i) {
        const PairedRow &row = paired[i];
        out << "    {\"workload\": \"" << row.workload
            << "\", \"baseline\": \"" << row.baseline
            << "\", \"energy_savings_pct\": "
            << fmt(row.energy_savings_pct.mean(), 3)
            << ", \"energy_savings_ci\": "
            << fmt(row.energy_savings_pct.ciHalfWidth(), 3)
            << ", \"significant\": "
            << (row.energy_savings_pct.excludesZero() ? "true" : "false")
            << ", \"response_delta_s\": "
            << fmt(row.response_delta_s.mean(), 4)
            << ", \"response_delta_ci\": "
            << fmt(row.response_delta_s.ciHalfWidth(), 4)
            << ", \"poet_qos_violation\": "
            << fmt(row.poet_violations, 2)
            << ", \"search_qos_violation\": "
            << fmt(row.search_violations, 2) << "}"
            << (i + 1 < paired.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"farm_scale\": {\"servers\": " << farm.servers
        << ", \"decision_us_mean\": " << fmt(farm.decision_us_mean, 1)
        << ", \"decision_us_p99\": " << fmt(farm.decision_us_p99, 1)
        << ", \"within_1s\": "
        << (farm.decision_us_p99 < 1e6 ? "true" : "false") << "}\n"
        << "}\n";
}

void
printTable(std::ostream &out, const std::vector<CostRow> &costs,
           const BurstOutcome &burst,
           const std::vector<PairedRow> &paired,
           const FarmScaleRow &farm)
{
    printBanner(out, "Controller bench: O(1) feedback control vs search "
                     "(docs/CONTROL.md)");

    out << "\nPer-epoch decision cost (DNS day, N = " << kReplications
        << ", mean ± 95% CI):\n";
    TablePrinter cost_table({"strategy", "mean [µs]", "±CI", "p99 [µs]"});
    for (const CostRow &row : costs)
        cost_table.addRow({row.strategy, fmt(row.mean_us.mean(), 2),
                           fmt(row.mean_us.ciHalfWidth(), 2),
                           fmt(row.p99_us.mean(), 2)});
    cost_table.print(out);

    out << "\nBurst convergence (MMPP bursty arrivals, budget "
        << fmt(burst.budget_s, 3) << " s): " << burst.spells
        << " QoS excursions over " << burst.epochs
        << " epochs; recovery " << fmt(burst.mean_spell, 1)
        << " epochs mean, " << burst.max_spell << " max; "
        << fmt(100.0 * burst.violating_fraction, 1)
        << "% of epochs violating\n";

    out << "\nPaired poet-vs-search deltas (common random numbers, "
           "N = " << kReplications << "):\n";
    TablePrinter paired_table({"workload", "baseline", "energy saved",
                               "±CI", "signif?", "ΔE[R] [s]", "±CI"});
    for (const PairedRow &row : paired)
        paired_table.addRow(
            {row.workload, row.baseline,
             fmt(row.energy_savings_pct.mean(), 2) + "%",
             fmt(row.energy_savings_pct.ciHalfWidth(), 2),
             row.energy_savings_pct.excludesZero() ? "yes" : "no",
             fmt(row.response_delta_s.mean(), 3),
             fmt(row.response_delta_s.ciHalfWidth(), 3)});
    paired_table.print(out);

    out << "\nFarm scale: " << farm.servers
        << " per-server controllers decide in "
        << fmt(farm.decision_us_mean / 1e3, 1) << " ms per epoch (p99 "
        << fmt(farm.decision_us_p99 / 1e3, 1) << " ms) — "
        << (farm.decision_us_p99 < 1e6 ? "within" : "OVER")
        << " the 1 s bound\n"
        << "\nExpected: poet decides 100-1000x faster than the search "
           "at a small energy\npremium or saving (the CIs above say "
           "which); QoS excursions under bursts\nrecover within a few "
           "epochs — the reactive-control trade-off.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json")
            json = true;
    }

    std::vector<CostRow> costs;
    costs.push_back(decisionCost("poet", "poet", false));
    costs.push_back(decisionCost("SS", "SS", false));
    costs.push_back(decisionCost("SS-pruned", "SS", true));

    const BurstOutcome burst = burstConvergence();

    std::vector<PairedRow> paired;
    for (const std::string workload : {"dns", "mail", "google"}) {
        paired.push_back(pairedDelta(workload, false));
        paired.push_back(pairedDelta(workload, true));
    }

    const FarmScaleRow farm = farmScale(10000);

    if (json)
        printJson(std::cout, costs, burst, paired, farm);
    else
        printTable(std::cout, costs, burst, paired, farm);
    return 0;
}
