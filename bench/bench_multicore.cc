/**
 * @file
 * Extension bench (paper Section 7 future work, multi-core direction):
 * package-gated sleep on a multi-core part. Two experiments:
 *
 *  (a) Package-delay sweep: how long to wait for *joint* idleness
 *      before dropping the platform to S3 — the multi-core analogue of
 *      the paper's lesson 4 (delays must be co-designed with frequency).
 *  (b) Core-count sweep at fixed total load: more cores improve
 *      response through parallelism but fragment idleness, shrinking
 *      package-S3 residency — the coupling that makes multi-core power
 *      management harder than N independent SleepScale instances.
 */

#include <iostream>
#include <limits>

#include "bench_util.hh"
#include "multicore/multicore_sim.hh"
#include "util/table_printer.hh"

using namespace sleepscale;
using namespace sleepscale::bench;

int
main()
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload().idealized();
    constexpr double inf = std::numeric_limits<double>::infinity();

    // ------------ (a) package-delay sweep, 4 cores ------------
    printBanner(std::cout,
                "Multicore (a): package S3 delay sweep (4 cores, "
                "DNS-like, per-core rho = 0.1)");

    Rng rng(60001);
    ExponentialDist gaps(dns.serviceMean / (0.1 * 4)), sizes(
        dns.serviceMean);
    const auto jobs = generateJobs(rng, gaps, sizes, 60000);

    TablePrinter delay_table({"package delay [s]", "mu*E[R]",
                              "E[P] [W]", "S3 residency",
                              "package wakes"});
    for (double delay : {0.0, 0.5, 2.0, 10.0, inf}) {
        MulticorePolicy policy;
        policy.frequency = 1.0;
        policy.corePlan = SleepPlan::immediate(LowPowerState::C6S0Idle);
        policy.packageSleepDelay = delay;
        const MulticoreStats stats = evaluateMulticorePolicy(
            xeon, dns.scaling, 4, policy, jobs);
        delay_table.addRow(
            {std::isfinite(delay) ? std::to_string(delay).substr(0, 4)
                                  : "inf",
             std::to_string(stats.response.mean() / dns.serviceMean),
             std::to_string(stats.avgPower()),
             std::to_string(stats.packageS3Time / stats.elapsed),
             std::to_string(stats.packageWakes)});
    }
    delay_table.print(std::cout);
    std::cout << "\nExpected: immediate S3 triggers a wake storm "
                 "(every busy period pays the 1 s\nexit at active "
                 "power) — *negative* savings, the guarded-gating "
                 "warning the\npaper cites [23]; a guard delay of a "
                 "few seconds recovers both power and\nresponse, and "
                 "very large delays forfeit the remaining S3 "
                 "residency.\n";

    // ------------ (b) core-count sweep, fixed total load ------------
    printBanner(std::cout,
                "Multicore (b): cores vs joint idleness (total load = "
                "0.8 of one core)");

    TablePrinter core_table({"cores", "mu*E[R]", "E[P] [W]",
                             "S3 residency", "per-core busy"});
    for (std::size_t cores : {1u, 2u, 4u, 8u}) {
        Rng core_rng(60002);
        ExponentialDist core_gaps(dns.serviceMean / 0.8);
        ExponentialDist core_sizes(dns.serviceMean);
        const auto core_jobs =
            generateJobs(core_rng, core_gaps, core_sizes, 60000);

        MulticorePolicy policy;
        policy.corePlan = SleepPlan::immediate(LowPowerState::C6S0Idle);
        policy.packageSleepDelay = 1.0;
        const MulticoreStats stats = evaluateMulticorePolicy(
            xeon, dns.scaling, cores, policy, core_jobs);
        core_table.addRow(
            {std::to_string(cores),
             std::to_string(stats.response.mean() / dns.serviceMean),
             std::to_string(stats.avgPower()),
             std::to_string(stats.packageS3Time / stats.elapsed),
             std::to_string(0.8 / static_cast<double>(cores))
                 .substr(0, 5)});
    }
    core_table.print(std::cout);
    std::cout << "\nExpected: response improves sharply with cores "
                 "(parallelism) while joint\nidleness stays scarce — "
                 "the package couples what per-core SleepScale would\n"
                 "treat independently. (Watts are not comparable "
                 "across rows: the model\nsplits one package power "
                 "envelope across the cores; see "
                 "multicore_sim.hh.)\n";
    return 0;
}
