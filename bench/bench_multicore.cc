/**
 * @file
 * Extension bench (paper Section 7 future work, multi-core direction):
 * package-gated sleep on a multi-core part, both panels as declarative
 * sweep grids over the multicore engine:
 *
 *  (a) Package-delay sweep: how long to wait for *joint* idleness
 *      before dropping the platform to S3 — the multi-core analogue of
 *      the paper's lesson 4 (delays must be co-designed with frequency).
 *  (b) Core-count sweep at fixed total load: more cores improve
 *      response through parallelism but fragment idleness, shrinking
 *      package-S3 residency — the coupling that makes multi-core power
 *      management harder than N independent SleepScale instances.
 */

#include <iostream>
#include <limits>

#include "experiment/runner.hh"

using namespace sleepscale;

int
main()
{
    constexpr double inf = std::numeric_limits<double>::infinity();

    // ------------ (a) package-delay sweep, 4 cores ------------
    printBanner(std::cout,
                "Multicore (a): package S3 delay sweep (4 cores, "
                "DNS-like, per-core rho = 0.1)");

    const ScenarioSpec delay_base =
        ScenarioBuilder("mc")
            .engine(EngineKind::Multicore)
            .workload("dns")
            .idealizedWorkload()
            .cores(4)
            .rho(0.1)
            .jobCount(60000)
            .frequency(1.0)
            .coreState(LowPowerState::C6S0Idle)
            .seed(60001)
            .build();

    ExperimentRunner delay_runner;
    delay_runner.addGrid(
        delay_base,
        {sweepPackageSleepDelays({0.0, 0.5, 2.0, 10.0, inf})});
    const auto delay_results = delay_runner.run();

    TablePrinter delay_table({"package delay [s]", "mu*E[R]",
                              "E[P] [W]", "S3 residency",
                              "package wakes"});
    for (const ScenarioResult &result : delay_results) {
        const double delay = result.spec.packageSleepDelay;
        delay_table.addRow(
            {std::isfinite(delay) ? std::to_string(delay).substr(0, 4)
                                  : "inf",
             std::to_string(result.normalizedMean),
             std::to_string(result.avgPower),
             std::to_string(result.extra("s3_residency")),
             std::to_string(static_cast<std::uint64_t>(
                 result.extra("package_wakes")))});
    }
    delay_table.print(std::cout);
    std::cout << "\nExpected: immediate S3 triggers a wake storm "
                 "(every busy period pays the 1 s\nexit at active "
                 "power) — *negative* savings, the guarded-gating "
                 "warning the\npaper cites [23]; a guard delay of a "
                 "few seconds recovers both power and\nresponse, and "
                 "very large delays forfeit the remaining S3 "
                 "residency.\n";

    // ------------ (b) core-count sweep, fixed total load ------------
    printBanner(std::cout,
                "Multicore (b): cores vs joint idleness (total load = "
                "0.8 of one core)");

    const ScenarioSpec core_base = ScenarioBuilder("mc")
                                       .engine(EngineKind::Multicore)
                                       .workload("dns")
                                       .idealizedWorkload()
                                       .jobCount(60000)
                                       .frequency(1.0)
                                       .coreState(
                                           LowPowerState::C6S0Idle)
                                       .packageSleepDelay(1.0)
                                       .seed(60002)
                                       .build();

    // Total load pinned to 0.8 of one core: per-core rho shrinks as
    // the core count grows, so the same job stream spreads thinner.
    SweepAxis core_axis = customAxis("cores", {});
    for (std::size_t cores : {1u, 2u, 4u, 8u}) {
        core_axis.points.emplace_back(
            std::to_string(cores), [cores](ScenarioSpec &spec) {
                spec.cores = cores;
                spec.rho = 0.8 / static_cast<double>(cores);
            });
    }

    ExperimentRunner core_runner;
    core_runner.addGrid(core_base, {core_axis});
    const auto core_results = core_runner.run();

    TablePrinter core_table({"cores", "mu*E[R]", "E[P] [W]",
                             "S3 residency", "per-core busy"});
    for (const ScenarioResult &result : core_results) {
        core_table.addRow(
            {std::to_string(result.spec.cores),
             std::to_string(result.normalizedMean),
             std::to_string(result.avgPower),
             std::to_string(result.extra("s3_residency")),
             std::to_string(result.spec.rho).substr(0, 5)});
    }
    core_table.print(std::cout);
    std::cout << "\nExpected: response improves sharply with cores "
                 "(parallelism) while joint\nidleness stays scarce — "
                 "the package couples what per-core SleepScale would\n"
                 "treat independently. (Watts are not comparable "
                 "across rows: the model\nsplits one package power "
                 "envelope across the cores; see "
                 "multicore_sim.hh.)\n";
    return 0;
}
