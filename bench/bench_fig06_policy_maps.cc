/**
 * @file
 * Regenerates Figure 6: the optimal (frequency, low-power state) pairing
 * as a function of utilization for the DNS-like and Google-like
 * workloads, under the mean-response and 95th-percentile QoS
 * constraints, for ρ_b ∈ {0.6, 0.8}. Solid lines in the paper are the
 * idealized (M/M/1 closed-form) selection; dashed lines use the
 * workload's empirical statistics — here, moment-matched distributions
 * simulated through Algorithm 1 (our BigHouse stand-in, DESIGN.md).
 *
 * Expected shapes: no one-size-fits-all state; DNS switches
 * C0(i)S0(i) -> C6S0(i) with rising ρ; Google uses C3S0(i)/C1S0(i) at
 * high ρ; the ρ_b = 0.8 curves show the low-utilization "bump" where the
 * global power optimum beats the QoS budget; idealized and empirical
 * selections usually agree on the state but the idealized frequency
 * tends lower (paper observations 1-4 of Section 5.1.2).
 */

#include <iostream>

#include "core/policy_manager.hh"
#include "bench_util.hh"
#include "util/table_printer.hh"

using namespace sleepscale;
using namespace sleepscale::bench;

namespace {

void
panel(const PlatformModel &xeon, const WorkloadSpec &spec,
      QosMetric metric)
{
    const double mu = 1.0 / spec.serviceMean;
    printBanner(std::cout, "Figure 6: " + spec.name + "-like, " +
                               toString(metric) + " constraint");

    TablePrinter table({"rho_b", "rho", "f (ideal)", "state (ideal)",
                        "f (empirical)", "state (empirical)"});

    for (double rho_b : {0.6, 0.8}) {
        const QosConstraint qos =
            metric == QosMetric::MeanResponse
                ? QosConstraint::fromBaselineMean(rho_b, spec.serviceMean)
                : QosConstraint::fromBaselineTail(rho_b,
                                                  spec.serviceMean);
        const PolicySpace space = PolicySpace::allStates(
            PolicySpace::frequencyGrid(0.12, 1.0, 0.02));
        const PolicyManager manager(xeon, spec.scaling, space, qos);

        for (double rho = 0.05; rho <= 0.801; rho += 0.05) {
            const PolicyDecision ideal =
                manager.selectAnalytic(rho * mu, mu);

            const auto jobs = empiricalJobs(
                spec, rho, 15000,
                140407 + static_cast<std::uint64_t>(rho * 1000));
            const PolicyDecision empirical =
                manager.selectFromLog(jobs);

            table.addRow(
                {std::to_string(rho_b).substr(0, 3),
                 std::to_string(rho).substr(0, 4),
                 std::to_string(ideal.policy.frequency).substr(0, 4),
                 toString(ideal.policy.plan.deepest()),
                 std::to_string(empirical.policy.frequency).substr(0, 4),
                 toString(empirical.policy.plan.deepest())});
        }
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    const PlatformModel xeon = PlatformModel::xeon();
    // Panels (a)-(d) of the figure.
    panel(xeon, dnsWorkload(), QosMetric::MeanResponse);
    panel(xeon, googleWorkload(), QosMetric::MeanResponse);
    panel(xeon, dnsWorkload(), QosMetric::TailResponse);
    panel(xeon, googleWorkload(), QosMetric::TailResponse);

    std::cout << "\nKey observations to check against the paper:\n"
                 "  1) no single state wins everywhere;\n"
                 "  2) idealized vs empirical agree when the workload "
                 "moments are near-Poisson;\n"
                 "  3) the idealized frequency is often lower than the "
                 "empirical one;\n"
                 "  4) the rho_b = 0.8 curves bump at low utilization "
                 "(QoS exceeded at the\n     global power optimum).\n";
    return 0;
}
