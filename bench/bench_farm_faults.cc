/**
 * @file
 * Robustness bench (docs/FAULTS.md): what server churn costs a
 * SleepScale farm. The same 4-server DNS scenario runs at churn
 * levels {0%, 0.1%, 1%} — churn c is the long-run fraction of
 * server-time spent down, realized as independent Exp(MTBF)/Exp(MTTR)
 * crash/repair processes with MTTR fixed at 120 s and
 * MTBF = MTTR * (1 - c) / c (c = 0 is the fault-free `faults = "none"`
 * configuration, which the test suite pins bit-for-bit against the
 * pre-fault runtime).
 *
 * Reported per level: availability, goodput (completed/offered),
 * drops, retries, degraded server-seconds, and the energy overhead —
 * the change in energy *per completed job* relative to the fault-free
 * baseline, which is the honest metric when churn removes both energy
 * and completions at once.
 *
 * `--json` emits the same rows as a JSON document;
 * tools/bench_snapshot.sh captures that as BENCH_farm_faults.json so
 * the robustness trajectory is version-controlled alongside the perf
 * snapshots.
 */

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/runner.hh"

using namespace sleepscale;

namespace {

/** One churn level's outcome, ready for either output format. */
struct ChurnRow
{
    double churn;         ///< Target down fraction (0 = no faults).
    double mtbf;          ///< Realized MTBF, s (0 when churn = 0).
    double availability;  ///< Fraction of server-seconds up.
    double goodput;       ///< completed / offered.
    double dropped;       ///< Jobs dropped past the failover deadline.
    double retries;       ///< Failover re-dispatch attempts.
    double degraded_s;    ///< Server-seconds under the safe policy.
    double energy_j;      ///< Farm energy, joules.
    double joules_per_job; ///< energy / completed jobs.
};

constexpr double kMttr = 120.0;

ScenarioSpec
churnSpec(double churn)
{
    std::ostringstream label;
    label << "churn=" << churn;
    ScenarioBuilder builder(label.str());
    builder.engine(EngineKind::Farm)
        .workload("dns")
        .flatTrace(0.3, 240)
        .farmSize(4)
        .farmControl("per-server")
        .epochMinutes(5)
        .predictor("LC")
        .seed(2);
    if (churn > 0.0) {
        builder.faults("mtbf")
            .faultRates(kMttr * (1.0 - churn) / churn, kMttr)
            .retryBackoff(0.5)
            .dropTimeout(240.0);
    }
    return builder.build();
}

ChurnRow
runChurn(double churn)
{
    const ScenarioSpec spec = churnSpec(churn);
    const ScenarioResult result = ExperimentRunner::runScenario(spec);
    ChurnRow row;
    row.churn = churn;
    row.mtbf = churn > 0.0 ? kMttr * (1.0 - churn) / churn : 0.0;
    row.availability = result.extra("availability");
    row.goodput = result.extra("goodput");
    row.dropped = result.extra("dropped_jobs");
    row.retries = result.extra("retries");
    row.degraded_s = result.extra("degraded_s");
    row.energy_j = result.energy;
    row.joules_per_job =
        result.jobs > 0 ? result.energy / static_cast<double>(result.jobs)
                        : 0.0;
    return row;
}

std::string
fmt(double value, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

void
printJson(std::ostream &out, const std::vector<ChurnRow> &rows)
{
    const double base = rows.front().joules_per_job;
    out << "{\n"
        << "  \"bench\": \"farm_faults\",\n"
        << "  \"workload\": \"dns\",\n"
        << "  \"farm_size\": 4,\n"
        << "  \"mttr_s\": " << fmt(kMttr, 1) << ",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ChurnRow &row = rows[i];
        const double overhead =
            base > 0.0 ? row.joules_per_job / base - 1.0 : 0.0;
        out << "    {\"churn\": " << fmt(row.churn, 4)
            << ", \"mtbf_s\": " << fmt(row.mtbf, 1)
            << ", \"availability\": " << fmt(row.availability, 6)
            << ", \"goodput\": " << fmt(row.goodput, 6)
            << ", \"dropped_jobs\": " << fmt(row.dropped, 0)
            << ", \"retries\": " << fmt(row.retries, 0)
            << ", \"degraded_s\": " << fmt(row.degraded_s, 1)
            << ", \"energy_j\": " << fmt(row.energy_j, 3)
            << ", \"joules_per_job\": " << fmt(row.joules_per_job, 6)
            << ", \"energy_overhead_pct\": " << fmt(100.0 * overhead, 3)
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

void
printTable(std::ostream &out, const std::vector<ChurnRow> &rows)
{
    printBanner(out,
                "Farm fault bench: churn cost (4 servers, DNS, "
                "per-server control, MTTR 120 s)");
    const double base = rows.front().joules_per_job;
    TablePrinter table({"churn", "avail", "goodput", "drops", "retries",
                        "degraded [s]", "J/job", "energy overhead"});
    for (const ChurnRow &row : rows) {
        const double overhead =
            base > 0.0 ? row.joules_per_job / base - 1.0 : 0.0;
        table.addRow({fmt(100.0 * row.churn, 1) + "%",
                      fmt(row.availability, 4), fmt(row.goodput, 4),
                      fmt(row.dropped, 0), fmt(row.retries, 0),
                      fmt(row.degraded_s, 0),
                      fmt(row.joules_per_job, 3),
                      fmt(100.0 * overhead, 2) + "%"});
    }
    table.print(out);
    out << "\nExpected: availability tracks 1 - churn; the surviving "
           "servers absorb the\ndisplaced load, so energy per "
           "completed job rises with churn while total\nenergy can "
           "fall (fewer completions). The fault-free row matches "
           "BENCH_policy\nbaselines bit-for-bit by construction.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json")
            json = true;
    }

    std::vector<ChurnRow> rows;
    for (double churn : {0.0, 0.001, 0.01})
        rows.push_back(runChurn(churn));

    if (json)
        printJson(std::cout, rows);
    else
        printTable(std::cout, rows);
    return 0;
}
