/**
 * @file
 * Regenerates Figure 2: optimal low-power states under high utilization
 * (ρ = 0.9). The paper's lesson 3: the job size picks the state — the
 * DNS-like workload (194 ms jobs) tolerates C6S0(i)'s 1 ms wake-up while
 * the Google-like workload (4.2 ms jobs) must fall back to C3S0(i); the
 * aggressive C6S3 (1 s wake-up) is bad for both.
 */

#include <iostream>

#include "bench_util.hh"
#include "util/table_printer.hh"

using namespace sleepscale;
using namespace sleepscale::bench;

int
main()
{
    const double rho = 0.9;
    const PlatformModel xeon = PlatformModel::xeon();

    printBanner(std::cout,
                "Figure 2: optimal low-power states at rho = 0.9");

    TablePrinter curves({"workload", "state", "f", "mu*E[R]",
                         "E[P] [W]"});
    TablePrinter winners({"workload", "best state", "f*", "E[P]* [W]",
                          "C6S3 at same f [W]"});

    for (const WorkloadSpec &spec :
         {dnsWorkload().idealized(), googleWorkload().idealized()}) {
        const auto jobs = idealJobs(spec, rho, 20000, 140403);

        double best_power = 1e18;
        double best_f = 1.0;
        LowPowerState best_state = LowPowerState::C0IdleS0Idle;
        std::vector<std::pair<LowPowerState, std::vector<SweepPoint>>>
            all;
        for (LowPowerState state :
             {LowPowerState::C3S0Idle, LowPowerState::C6S0Idle,
              LowPowerState::C6S3}) {
            auto curve = sweepFrequencies(xeon, spec,
                                          SleepPlan::immediate(state),
                                          jobs, rho + 0.01, 0.005);
            for (std::size_t i = 0; i < curve.size(); i += 4) {
                curves.addRow(
                    {spec.name, toString(state),
                     std::to_string(curve[i].frequency).substr(0, 5),
                     std::to_string(curve[i].normalizedResponse),
                     std::to_string(curve[i].power)});
            }
            const SweepPoint best = bowlOptimum(curve);
            if (best.power < best_power) {
                best_power = best.power;
                best_f = best.frequency;
                best_state = state;
            }
            all.emplace_back(state, std::move(curve));
        }

        // Power of C6S3 at the winner's frequency, for the contrast the
        // figure draws.
        double c6s3_power = 0.0;
        for (const auto &[state, curve] : all) {
            if (state != LowPowerState::C6S3)
                continue;
            for (const SweepPoint &point : curve) {
                if (std::abs(point.frequency - best_f) < 0.003)
                    c6s3_power = point.power;
            }
        }
        winners.addRow({spec.name, toString(best_state),
                        std::to_string(best_f).substr(0, 5),
                        std::to_string(best_power),
                        std::to_string(c6s3_power)});
    }

    curves.print(std::cout);
    std::cout << '\n';
    winners.print(std::cout);
    std::cout << "\nExpected (paper): DNS -> C6S0(i), Google -> C3S0(i); "
                 "C6S3 suboptimal for both.\n";
    return 0;
}
