/**
 * @file
 * Ablation for the over-provisioning guard band (Section 5.2.3): sweep α
 * on the Figure 9 scenario and report the response/power trade. The
 * paper picks α = 0.35; this bench shows the knee the choice sits on.
 *
 * Expected: raising α lowers the mean response (headroom absorbs
 * mispredicted surges) at a modest power cost — modest because a faster
 * server also reaches its sleep state sooner.
 */

#include <iostream>

#include "core/strategies.hh"
#include "util/rng.hh"
#include "util/table_printer.hh"
#include "workload/job_stream.hh"

using namespace sleepscale;

int
main()
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();

    const UtilizationTrace day = synthEmailStoreTrace(1, 20140614);
    const UtilizationTrace window = day.dailyWindow(2, 20);
    Rng rng(111);
    const auto jobs = generateTraceDrivenJobs(rng, dns, window);

    printBanner(std::cout,
                "Ablation: over-provisioning factor alpha (SS, DNS-like, "
                "email store)");

    TablePrinter table({"alpha", "mu*E[R]", "E[P] [W]",
                        "within budget?", "epochs boosted"});
    for (double alpha : {0.0, 0.1, 0.2, 0.35, 0.5, 0.75}) {
        const RuntimeConfig config = makeStrategyConfig(
            StrategyKind::SleepScale, 5, alpha, 0.8);
        const SleepScaleRuntime runtime(xeon, dns, config);
        LmsCusumPredictor predictor(10);
        const RuntimeResult result = runtime.run(jobs, window, predictor);

        std::size_t boosted = 0;
        for (const EpochReport &epoch : result.epochs)
            boosted += epoch.boosted ? 1 : 0;

        table.addRow(
            {std::to_string(alpha).substr(0, 4),
             std::to_string(result.meanResponse() / dns.serviceMean),
             std::to_string(result.avgPower()),
             result.withinBudget() ? "yes" : "no",
             std::to_string(boosted) + "/" +
                 std::to_string(result.epochs.size())});
    }
    table.print(std::cout);
    std::cout << "\nExpected: response falls and power creeps up with "
                 "alpha; the budget is met\nfrom roughly the paper's "
                 "alpha = 0.35.\n";
    return 0;
}
