/**
 * @file
 * Micro-benchmarks for the claims that make SleepScale viable at runtime:
 * Section 4.1 reports 6.3 ms to simulate one policy (10,000 jobs, Matlab)
 * and Section 5.1.1 argues the full per-epoch decision is negligible
 * against a minutes-long epoch. These benchmarks measure our equivalents.
 */

#include <benchmark/benchmark.h>

#include "analytic/mm1_sleep.hh"
#include "core/policy_manager.hh"
#include "experiment/runner.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"

namespace {

using namespace sleepscale;

std::vector<Job>
benchJobs(std::size_t count)
{
    Rng rng(4242);
    ExponentialDist gaps(0.194 / 0.3);
    ExponentialDist sizes(0.194);
    return generateJobs(rng, gaps, sizes, count);
}

/** One policy characterization over a 10k-job log (paper: 6.3 ms). */
void
BM_EvaluatePolicy10k(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const auto jobs = benchJobs(10000);
    const Policy policy{0.7, SleepPlan::immediate(LowPowerState::C6S3)};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluatePolicy(xeon, ServiceScaling::cpuBound(), policy,
                           jobs));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            10000);
}
BENCHMARK(BM_EvaluatePolicy10k);

/** Raw simulator throughput in jobs/second. */
void
BM_ServerSimThroughput(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const auto jobs = benchJobs(static_cast<std::size_t>(state.range(0)));
    const Policy policy{1.0,
                        SleepPlan::immediate(LowPowerState::C6S0Idle)};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluatePolicy(xeon, ServiceScaling::cpuBound(), policy,
                           jobs));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_ServerSimThroughput)->Arg(1000)->Arg(100000);

/** The full per-epoch decision: every (state, frequency) candidate over
 * a capped 4000-job log (what the runtime executes every T minutes). */
void
BM_PolicyManagerDecision(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const auto jobs = benchJobs(4000);
    const PolicyManager manager(
        xeon, ServiceScaling::cpuBound(), PolicySpace::standard(),
        QosConstraint::fromBaselineMean(0.8, 0.194));
    for (auto _ : state)
        benchmark::DoNotOptimize(manager.selectFromLog(jobs));
}
BENCHMARK(BM_PolicyManagerDecision);

/** The closed-form alternative the paper suggests as future work. */
void
BM_AnalyticDecision(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const double mu = 1.0 / 0.194;
    const PolicyManager manager(
        xeon, ServiceScaling::cpuBound(), PolicySpace::standard(),
        QosConstraint::fromBaselineMean(0.8, 0.194));
    for (auto _ : state)
        benchmark::DoNotOptimize(manager.selectAnalytic(0.3 * mu, mu));
}
BENCHMARK(BM_AnalyticDecision);

/** A single closed-form policy evaluation. */
void
BM_AnalyticSingleEvaluation(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MM1SleepModel model(xeon);
    const double mu = 1.0 / 0.194;
    const Policy policy{0.7, SleepPlan::immediate(LowPowerState::C6S3)};
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.meanPower(policy, 0.3 * mu, mu));
        benchmark::DoNotOptimize(
            model.meanResponse(policy, 0.3 * mu, mu));
    }
}
BENCHMARK(BM_AnalyticSingleEvaluation);

/** Sweep-grid expansion cost in the experiment layer (pure API
 * overhead: a 10 x 10 x 10 grid of specs, no simulation). */
void
BM_ExperimentGridExpansion(benchmark::State &state)
{
    const ScenarioSpec base = ScenarioBuilder("grid")
                                  .workload("dns")
                                  .flatTrace(0.1, 30)
                                  .build();
    std::vector<unsigned> epochs;
    std::vector<double> alphas;
    SweepAxis seeds = customAxis("seed", {});
    for (unsigned i = 1; i <= 10; ++i) {
        epochs.push_back(i);
        alphas.push_back(0.05 * i);
        seeds.points.emplace_back(
            std::to_string(i),
            [i](ScenarioSpec &spec) { spec.seed = i; });
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            expandGrid(base, {sweepEpochMinutes(epochs),
                              sweepOverProvision(alphas), seeds}));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_ExperimentGridExpansion);

/** One fixed-policy scenario end-to-end through the unified entry
 * point (trace synthesis + job generation + epoch loop), the per-
 * scenario cost a sweep pays beyond the policy search itself. */
void
BM_ExperimentScenarioFixedPolicy(benchmark::State &state)
{
    const ScenarioSpec spec = ScenarioBuilder("r2h day")
                                  .workload("dns")
                                  .flatTrace(0.1, 20)
                                  .strategy("R2H(C6)")
                                  .predictor("NP")
                                  .seed(4242)
                                  .build();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ExperimentRunner::runScenario(spec));
    }
}
BENCHMARK(BM_ExperimentScenarioFixedPolicy);

} // namespace
