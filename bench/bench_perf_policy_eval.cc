/**
 * @file
 * Micro-benchmarks for the claims that make SleepScale viable at runtime:
 * Section 4.1 reports 6.3 ms to simulate one policy (10,000 jobs, Matlab)
 * and Section 5.1.1 argues the full per-epoch decision is negligible
 * against a minutes-long epoch. These benchmarks measure our equivalents.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>

#include "analytic/mm1_sleep.hh"
#include "core/eval_engine.hh"
#include "core/policy_manager.hh"
#include "experiment/runner.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"

namespace {

using namespace sleepscale;

std::vector<Job>
benchJobs(std::size_t count)
{
    Rng rng(4242);
    ExponentialDist gaps(0.194 / 0.3);
    ExponentialDist sizes(0.194);
    return generateJobs(rng, gaps, sizes, count);
}

QosConstraint
benchQos()
{
    return QosConstraint::fromBaselineMean(0.8, 0.194);
}

/** One policy characterization over a 10k-job log (paper: 6.3 ms). */
void
BM_EvaluatePolicy10k(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const auto jobs = benchJobs(10000);
    const Policy policy{0.7, SleepPlan::immediate(LowPowerState::C6S3)};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluatePolicy(xeon, ServiceScaling::cpuBound(), policy,
                           jobs));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            10000);
}
BENCHMARK(BM_EvaluatePolicy10k);

/** Raw simulator throughput in jobs/second. */
void
BM_ServerSimThroughput(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const auto jobs = benchJobs(static_cast<std::size_t>(state.range(0)));
    const Policy policy{1.0,
                        SleepPlan::immediate(LowPowerState::C6S0Idle)};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluatePolicy(xeon, ServiceScaling::cpuBound(), policy,
                           jobs));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_ServerSimThroughput)->Arg(1000)->Arg(100000);

/** The full per-epoch decision: every (state, frequency) candidate over
 * a capped 4000-job log (what the runtime executes every T minutes). */
void
BM_PolicyManagerDecision(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const auto jobs = benchJobs(4000);
    const PolicyManager manager(xeon, ServiceScaling::cpuBound(),
                                PolicySpace::standard(), benchQos());
    for (auto _ : state)
        benchmark::DoNotOptimize(manager.selectFromLog(jobs));
}
BENCHMARK(BM_PolicyManagerDecision);

/** One allocation-free reset-and-replay candidate evaluation over a
 * prepared 10k-job log — the engine's per-candidate inner kernel. */
void
BM_PreparedReplay10k(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const PreparedLog log = PreparedLog::fromJobs(benchJobs(10000));
    const Policy policy{0.7, SleepPlan::immediate(LowPowerState::C6S3)};
    const MaterializedPlan plan(policy.plan, xeon, policy.frequency);
    ServerSim arena(xeon, ServiceScaling::cpuBound(), policy);
    for (auto _ : state) {
        arena.reset(policy.frequency, plan);
        benchmark::DoNotOptimize(arena.replay(log));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            10000);
}
BENCHMARK(BM_PreparedReplay10k);

/** Full policy-space selection over a 10k-job log through the batched
 * engine (plan cache + reset-and-replay arenas), serial. The headline
 * number: compare against BM_SelectFromLogNaive, the pre-engine path. */
void
BM_SelectFromLog(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const auto jobs = benchJobs(10000);
    PolicyEvalEngine engine(xeon, ServiceScaling::cpuBound(),
                            PolicySpace::standard(), benchQos());
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.selectFromLog(jobs));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(engine.lifetimeEvaluations()) * 10000);
}
BENCHMARK(BM_SelectFromLog);

/** The pre-engine baseline the engine replaces: one fresh ServerSim
 * (and plan materialization) per candidate, streamed job by job —
 * exactly what PolicyManager::selectFromLog executed before the
 * batched engine existed. Kept so the speedup stays measurable. */
void
BM_SelectFromLogNaive(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const auto jobs = benchJobs(10000);
    const PolicySpace space = PolicySpace::standard();
    const QosConstraint qos = benchQos();
    const double rho = PolicyManager::logOfferedLoad(jobs);
    // The paper's stability floor, as the old serial loop applied it.
    const double f_floor = std::min(rho + 0.01, 0.999);

    for (auto _ : state) {
        double best_power = std::numeric_limits<double>::infinity();
        Policy best;
        for (const SleepPlan &plan : space.plans) {
            for (double f : space.frequencies) {
                if (f < f_floor)
                    continue;
                const Policy candidate{f, plan};
                const PolicyEvaluation eval = evaluatePolicy(
                    xeon, ServiceScaling::cpuBound(), candidate, jobs);
                const double metric = qos.measuredValue(eval.stats);
                if (metric <= qos.budget() &&
                    eval.avgPower() < best_power) {
                    best_power = eval.avgPower();
                    best = candidate;
                }
            }
        }
        benchmark::DoNotOptimize(best);
    }
}
BENCHMARK(BM_SelectFromLogNaive);

/** Engine selection with parallel candidate fan-out (bit-identical
 * decisions at any width). */
void
BM_SelectFromLogParallel(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const auto jobs = benchJobs(10000);
    EvalEngineOptions options;
    options.threads = static_cast<std::size_t>(state.range(0));
    PolicyEvalEngine engine(xeon, ServiceScaling::cpuBound(),
                            PolicySpace::standard(), benchQos(), options);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.selectFromLog(jobs));
}
BENCHMARK(BM_SelectFromLogParallel)->Arg(2)->Arg(8);

/** Engine selection with the pruned (binary-search) frequency scan. */
void
BM_SelectFromLogPruned(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const auto jobs = benchJobs(10000);
    EvalEngineOptions options;
    options.pruned = true;
    PolicyEvalEngine engine(xeon, ServiceScaling::cpuBound(),
                            PolicySpace::standard(), benchQos(), options);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.selectFromLog(jobs));
}
BENCHMARK(BM_SelectFromLogPruned);

/** The closed-form alternative the paper suggests as future work. */
void
BM_AnalyticDecision(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const double mu = 1.0 / 0.194;
    const PolicyManager manager(
        xeon, ServiceScaling::cpuBound(), PolicySpace::standard(),
        QosConstraint::fromBaselineMean(0.8, 0.194));
    for (auto _ : state)
        benchmark::DoNotOptimize(manager.selectAnalytic(0.3 * mu, mu));
}
BENCHMARK(BM_AnalyticDecision);

/** A single closed-form policy evaluation. */
void
BM_AnalyticSingleEvaluation(benchmark::State &state)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MM1SleepModel model(xeon);
    const double mu = 1.0 / 0.194;
    const Policy policy{0.7, SleepPlan::immediate(LowPowerState::C6S3)};
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.meanPower(policy, 0.3 * mu, mu));
        benchmark::DoNotOptimize(
            model.meanResponse(policy, 0.3 * mu, mu));
    }
}
BENCHMARK(BM_AnalyticSingleEvaluation);

/** Sweep-grid expansion cost in the experiment layer (pure API
 * overhead: a 10 x 10 x 10 grid of specs, no simulation). */
void
BM_ExperimentGridExpansion(benchmark::State &state)
{
    const ScenarioSpec base = ScenarioBuilder("grid")
                                  .workload("dns")
                                  .flatTrace(0.1, 30)
                                  .build();
    std::vector<unsigned> epochs;
    std::vector<double> alphas;
    SweepAxis seeds = customAxis("seed", {});
    for (unsigned i = 1; i <= 10; ++i) {
        epochs.push_back(i);
        alphas.push_back(0.05 * i);
        seeds.points.emplace_back(
            std::to_string(i),
            [i](ScenarioSpec &spec) { spec.seed = i; });
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            expandGrid(base, {sweepEpochMinutes(epochs),
                              sweepOverProvision(alphas), seeds}));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_ExperimentGridExpansion);

/** One fixed-policy scenario end-to-end through the unified entry
 * point (trace synthesis + job generation + epoch loop), the per-
 * scenario cost a sweep pays beyond the policy search itself. */
void
BM_ExperimentScenarioFixedPolicy(benchmark::State &state)
{
    const ScenarioSpec spec = ScenarioBuilder("r2h day")
                                  .workload("dns")
                                  .flatTrace(0.1, 20)
                                  .strategy("R2H(C6)")
                                  .predictor("NP")
                                  .seed(4242)
                                  .build();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ExperimentRunner::runScenario(spec));
    }
}
BENCHMARK(BM_ExperimentScenarioFixedPolicy);

} // namespace
