/**
 * @file
 * Regenerates Figure 8: average response time under different utilization
 * predictors (LC = LMS+CUSUM, LMS, NP = naive-previous, Offline) and
 * policy update intervals T ∈ {1, 5, 10, 15} minutes, with no over-
 * provisioning (α = 0). DNS-like server following the email-store trace
 * over the paper's 2AM-8PM window, ρ_b = 0.8 (budget µE[R] = 5).
 *
 * The whole figure is one declarative scenario expanded against a
 * T × predictor grid and executed in parallel by ExperimentRunner.
 *
 * Expected shape: smaller T gives smaller response time; Offline is the
 * floor; LC ≈ NP ≤ LMS; without over-provisioning every causal predictor
 * exceeds the budget (the paper's point motivating α = 0.35).
 *
 * Error-bar mode: `bench_fig08_predictors --replications N` (N >= 2)
 * replicates every grid point N times under derived seeds and prints
 * mean ± 95% CI per cell, so predictor orderings come statistically
 * qualified (docs/STATISTICS.md).
 */

#include <iostream>

#include "experiment/replication.hh"
#include "experiment/runner.hh"
#include "util/cli_args.hh"
#include "util/error.hh"

using namespace sleepscale;

int
main(int argc, char **argv)
try {
    // The one bench option: --replications N (N >= 2 = error bars).
    // CliArgs rejects typos and non-numeric values loudly.
    const CliArgs args(argc, argv, {"replications"});
    const std::size_t replications = args.getUnsigned("replications", 1);
    const ScenarioSpec base = ScenarioBuilder("fig8")
                                  .workload("dns")
                                  .trace("es")
                                  .traceSeed(20140614)
                                  .window(2, 20)
                                  .strategy("SS")
                                  .overProvision(0.0)
                                  .rhoB(0.8)
                                  .seed(88)
                                  .replications(replications)
                                  .build();

    ExperimentRunner runner;
    runner.addGrid(base,
                   {sweepEpochMinutes({1, 5, 10, 15}),
                    sweepPredictors({"LC", "LMS", "NP", "Offline"})});

    printBanner(std::cout,
                "Figure 8: mean response vs predictor and update "
                "interval (alpha = 0)");
    std::cout << "workload = DNS-like, trace = email store 2AM-8PM, "
                 "rho_b = 0.8, budget mu*E[R] = 5\n\n";

    if (replications > 1) {
        const auto results = runner.runReplicated();
        std::cout << replications
                  << " replications per cell; mean ± 95% CI\n\n";
        TablePrinter table({"T [min]", "predictor", "mu*E[R] ± CI",
                            "viol%"});
        for (const ReplicatedResult &result : results) {
            table.addRow(
                {std::to_string(result.spec.epochMinutes),
                 result.spec.predictor,
                 result.metric("normalized_mean").toString(),
                 std::to_string(
                     100.0 *
                     result.metric("qos_violation").mean())});
        }
        table.print(std::cout);
        std::cout << "\nCI from Student-t over per-replication means; "
                     "seeds derived per replication\n(common across "
                     "cells, so columns are paired).\n";
        return 0;
    }

    const auto results = runner.run();

    TablePrinter table({"T [min]", "predictor", "mu*E[R]",
                        "within budget?"});
    for (const ScenarioResult &result : results) {
        table.addRow({std::to_string(result.spec.epochMinutes),
                      result.spec.predictor,
                      std::to_string(result.normalizedMean),
                      result.withinBudget ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "\nExpected: response shrinks with smaller T; Offline "
                 "is the floor; causal\npredictors exceed the budget "
                 "without over-provisioning (Section 6.1).\n";
    return 0;
} catch (const ConfigError &error) {
    std::cerr << error.what() << '\n';
    return 1;
}
