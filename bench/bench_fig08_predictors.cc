/**
 * @file
 * Regenerates Figure 8: average response time under different utilization
 * predictors (LC = LMS+CUSUM, LMS, NP = naive-previous, Offline) and
 * policy update intervals T ∈ {1, 5, 10, 15} minutes, with no over-
 * provisioning (α = 0). DNS-like server following the email-store trace
 * over the paper's 2AM-8PM window, ρ_b = 0.8 (budget µE[R] = 5).
 *
 * The whole figure is one declarative scenario expanded against a
 * T × predictor grid and executed in parallel by ExperimentRunner.
 *
 * Expected shape: smaller T gives smaller response time; Offline is the
 * floor; LC ≈ NP ≤ LMS; without over-provisioning every causal predictor
 * exceeds the budget (the paper's point motivating α = 0.35).
 */

#include <iostream>

#include "experiment/runner.hh"

using namespace sleepscale;

int
main()
{
    const ScenarioSpec base = ScenarioBuilder("fig8")
                                  .workload("dns")
                                  .trace("es")
                                  .traceSeed(20140614)
                                  .window(2, 20)
                                  .strategy("SS")
                                  .overProvision(0.0)
                                  .rhoB(0.8)
                                  .seed(88)
                                  .build();

    ExperimentRunner runner;
    runner.addGrid(base,
                   {sweepEpochMinutes({1, 5, 10, 15}),
                    sweepPredictors({"LC", "LMS", "NP", "Offline"})});

    printBanner(std::cout,
                "Figure 8: mean response vs predictor and update "
                "interval (alpha = 0)");
    std::cout << "workload = DNS-like, trace = email store 2AM-8PM, "
                 "rho_b = 0.8, budget mu*E[R] = 5\n\n";

    const auto results = runner.run();

    TablePrinter table({"T [min]", "predictor", "mu*E[R]",
                        "within budget?"});
    for (const ScenarioResult &result : results) {
        table.addRow({std::to_string(result.spec.epochMinutes),
                      result.spec.predictor,
                      std::to_string(result.normalizedMean),
                      result.withinBudget ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "\nExpected: response shrinks with smaller T; Offline "
                 "is the floor; causal\npredictors exceed the budget "
                 "without over-provisioning (Section 6.1).\n";
    return 0;
}
