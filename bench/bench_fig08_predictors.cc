/**
 * @file
 * Regenerates Figure 8: average response time under different utilization
 * predictors (LC = LMS+CUSUM, LMS, NP = naive-previous, Offline) and
 * policy update intervals T ∈ {1, 5, 10, 15} minutes, with no over-
 * provisioning (α = 0). DNS-like server following the email-store trace
 * over the paper's 2AM-8PM window, ρ_b = 0.8 (budget µE[R] = 5).
 *
 * Expected shape: smaller T gives smaller response time; Offline is the
 * floor; LC ≈ NP ≤ LMS; without over-provisioning every causal predictor
 * exceeds the budget (the paper's point motivating α = 0.35).
 */

#include <iostream>

#include "core/runtime.hh"
#include "util/rng.hh"
#include "util/table_printer.hh"
#include "workload/job_stream.hh"

using namespace sleepscale;

int
main()
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();

    const UtilizationTrace day = synthEmailStoreTrace(1, 20140614);
    const UtilizationTrace window = day.dailyWindow(2, 20);
    Rng rng(88);
    const auto jobs = generateTraceDrivenJobs(rng, dns, window);

    printBanner(std::cout,
                "Figure 8: mean response vs predictor and update "
                "interval (alpha = 0)");
    std::cout << "workload = DNS-like, trace = email store 2AM-8PM, "
                 "rho_b = 0.8, budget mu*E[R] = 5\n\n";

    TablePrinter table({"T [min]", "predictor", "mu*E[R]",
                        "within budget?"});
    for (unsigned T : {1u, 5u, 10u, 15u}) {
        for (const std::string name : {"LC", "LMS", "NP", "Offline"}) {
            RuntimeConfig config;
            config.epochMinutes = T;
            config.overProvision = 0.0;
            config.rhoB = 0.8;
            const SleepScaleRuntime runtime(xeon, dns, config);

            const auto predictor =
                makePredictor(name, 10, window.values());
            const RuntimeResult result =
                runtime.run(jobs, window, *predictor);

            const double normalized =
                result.meanResponse() / dns.serviceMean;
            table.addRow({std::to_string(T), name,
                          std::to_string(normalized),
                          result.withinBudget() ? "yes" : "no"});
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected: response shrinks with smaller T; Offline "
                 "is the floor; causal\npredictors exceed the budget "
                 "without over-provisioning (Section 6.1).\n";
    return 0;
}
