/**
 * @file
 * Regenerates Figure 1: the mean-response-time / average-power trade-off
 * bowls for DNS-like and Google-like workloads at ρ = 0.1, for the
 * representative states C0(i)S0(i), C6S0(i), and C6S3, swept across the
 * DVFS range (paper Section 4.1 methodology: N = 10,000 jobs, Poisson
 * arrivals, exponential service, f from ρ+0.01 to 1).
 *
 * Expected shape (Section 4.2, lesson 1): each curve is a bowl; a joint
 * (f, state) optimum exists — for DNS-like, C6S3 near f ≈ 0.42 at ≈70 W;
 * race-to-halt (the leftmost tip) pays ~50% more power. The Atom section
 * reproduces the paper's qualitative observation that small-CPU platforms
 * should run fast and sleep immediately.
 */

#include <iostream>

#include "bench_util.hh"
#include "util/table_printer.hh"

using namespace sleepscale;
using namespace sleepscale::bench;

namespace {

void
panel(const PlatformModel &platform, const WorkloadSpec &spec, double rho)
{
    printBanner(std::cout, "Figure 1 (" + platform.name() + "): " +
                               spec.name + "-like, rho = 0.1 (1/mu = " +
                               std::to_string(spec.serviceMean * 1e3) +
                               " ms)");

    const auto jobs = idealJobs(spec, rho, 10000, 140401);
    const std::vector<LowPowerState> states = {
        LowPowerState::C0IdleS0Idle, LowPowerState::C6S0Idle,
        LowPowerState::C6S3};

    TablePrinter table({"f", "state", "mu*E[R]", "E[P] [W]"});
    SweepPoint joint_best{1.0, 0.0, 1e18};
    std::string joint_state;
    std::vector<std::pair<std::string, double>> tips; // f = 1 powers.

    for (LowPowerState state : states) {
        const auto curve =
            sweepFrequencies(platform, spec, SleepPlan::immediate(state),
                             jobs, rho + 0.01, 0.01);
        // Sample the curve every 0.05 in f for readable output.
        for (std::size_t i = 0; i < curve.size(); i += 5) {
            table.addRow({std::to_string(curve[i].frequency).substr(0, 4),
                          toString(state),
                          std::to_string(curve[i].normalizedResponse),
                          std::to_string(curve[i].power)});
        }
        const SweepPoint best = bowlOptimum(curve);
        if (best.power < joint_best.power) {
            joint_best = best;
            joint_state = toString(state);
        }
        tips.emplace_back(toString(state), curve.back().power);
    }
    table.print(std::cout);

    std::cout << "\nJoint optimum: " << joint_state
              << " at f = " << joint_best.frequency << " -> "
              << joint_best.power
              << " W (mu*E[R] = " << joint_best.normalizedResponse
              << ")\n";
    std::cout << "Race-to-halt (f = 1 tip of each curve) vs joint "
                 "optimum:\n";
    for (const auto &[state, tip] : tips) {
        std::cout << "  " << state << ": " << tip << " W  (+"
                  << 100.0 * (tip / joint_best.power - 1.0) << "%)\n";
    }
}

} // namespace

int
main()
{
    const double rho = 0.1;
    const PlatformModel xeon = PlatformModel::xeon();
    panel(xeon, dnsWorkload().idealized(), rho);
    panel(xeon, googleWorkload().idealized(), rho);

    // The paper's Atom observation: with small CPU power and relatively
    // large platform power, running fast and sleeping immediately wins.
    const PlatformModel atom = PlatformModel::atom();
    printBanner(std::cout,
                "Atom observation: optimal frequency per state "
                "(DNS-like, rho = 0.1)");
    const auto jobs = idealJobs(dnsWorkload(), rho, 10000, 140402);
    TablePrinter atom_table({"state", "optimal f", "E[P] [W]"});
    for (LowPowerState state : allLowPowerStates) {
        const auto curve = sweepFrequencies(atom, dnsWorkload(),
                                            SleepPlan::immediate(state),
                                            jobs, rho + 0.01, 0.01);
        const SweepPoint best = bowlOptimum(curve);
        atom_table.addRow({toString(state),
                           std::to_string(best.frequency).substr(0, 4),
                           std::to_string(best.power)});
    }
    atom_table.print(std::cout);
    std::cout << "\nExpected: deep states prefer high f on Atom (run "
                 "fast, sleep immediately),\nunlike the Xeon's interior "
                 "optimum.\n";
    return 0;
}
