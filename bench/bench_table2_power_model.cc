/**
 * @file
 * Regenerates Table 2 (and the Table 3 state pairing): the per-component
 * power inventory, the platform totals, and the combined-state system
 * power as a function of the DVFS factor f.
 */

#include <iostream>

#include "power/component_table.hh"
#include "power/platform_model.hh"
#include "util/table_printer.hh"

using namespace sleepscale;

int
main()
{
    printBanner(std::cout,
                "Table 2: power consumption for system components");

    TablePrinter components(
        {"Component", "Operating S0(a) [W]", "Idle S0(i) [W]",
         "Deeper sleep S3 [W]"});
    components.addRow({std::string("CPU x1"), "130 V^2 f (C0(a))",
                       "75 V^2 f (C0(i)) / 47 V^2 (C1) / 22 (C3) / "
                       "15 (C6)",
                       "15 (C6)"});
    for (const ComponentPower &row : xeonComponentTable()) {
        components.addRow({row.name, std::to_string(row.operating),
                           std::to_string(row.idle),
                           std::to_string(row.deeperSleep)});
    }
    const auto &table = xeonComponentTable();
    components.addRow({std::string("Platform total"),
                       std::to_string(componentTotalOperating(table)),
                       std::to_string(componentTotalIdle(table)),
                       std::to_string(componentTotalDeeperSleep(table))});
    components.print(std::cout);

    std::cout << "\nPaper values: S0(a) = 120 W, S0(i) = 60.5 W, "
                 "S3 = 13.1 W\n";

    for (const PlatformModel &platform :
         {PlatformModel::xeon(), PlatformModel::atom()}) {
        printBanner(std::cout, "Combined-state system power (" +
                                   platform.name() + ", V ∝ f)");
        TablePrinter states({"f", "C0(a)S0(a)", "C0(i)S0(i)", "C1S0(i)",
                             "C3S0(i)", "C6S0(i)", "C6S3"});
        for (double f : {1.0, 0.8, 0.6, 0.42, 0.3}) {
            states.addRow(
                {f, platform.activePower(f),
                 platform.lowPower(LowPowerState::C0IdleS0Idle, f),
                 platform.lowPower(LowPowerState::C1S0Idle, f),
                 platform.lowPower(LowPowerState::C3S0Idle, f),
                 platform.lowPower(LowPowerState::C6S0Idle, f),
                 platform.lowPower(LowPowerState::C6S3, f)},
                2);
        }
        states.print(std::cout);
    }

    std::cout << "\nTable 3 pairing: S0(a)<->C0(a) only; S0(i)<->C0(i)/"
                 "C1/C3/C6; S3<->C6 only.\n";
    return 0;
}
