/**
 * @file
 * Ablation for the paper's lesson 5: "sequential power throttle-back is
 * conservative". Compares the full five-state descent (entering
 * C0(i)S0(i), C1S0(i), C3S0(i), C6S0(i), C6S3 in sequence) against the
 * best single-state policy across utilizations.
 *
 * Expected: at low utilization the sequence wastes power by not jumping
 * to the optimal deep state immediately; at high utilization it rarely
 * reaches the later states; but it is robust — never catastrophically
 * worse — which is why the paper recommends it only when arrival
 * statistics are unknown.
 */

#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench_util.hh"
#include "util/table_printer.hh"

using namespace sleepscale;
using namespace sleepscale::bench;

int
main()
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload().idealized();
    const double mu = 1.0 / dns.serviceMean;

    // Descent delays: geometric ladder ending at seconds-scale C6S3.
    const SleepPlan sequence = SleepPlan::throttleBack(
        {10.0 / mu / 1000.0, 10.0 / mu / 100.0, 10.0 / mu / 10.0,
         10.0 / mu});

    printBanner(std::cout,
                "Ablation (lesson 5): sequential throttle-back vs best "
                "single state (DNS-like)");

    TablePrinter table({"rho", "best single state", "E[P] single [W]",
                        "E[P] sequence [W]", "sequence penalty"});
    std::uint64_t seed = 271828;
    for (double rho : {0.05, 0.1, 0.3, 0.5, 0.7}) {
        const auto jobs = idealJobs(dns, rho, 30000, seed++);

        double best_power = 1e18;
        LowPowerState best_state = LowPowerState::C0IdleS0Idle;
        for (LowPowerState state : allLowPowerStates) {
            const auto curve = sweepFrequencies(
                xeon, dns, SleepPlan::immediate(state), jobs, rho + 0.02,
                0.02);
            const SweepPoint best = bowlOptimum(curve);
            if (best.power < best_power) {
                best_power = best.power;
                best_state = state;
            }
        }

        const auto seq_curve = sweepFrequencies(xeon, dns, sequence,
                                                jobs, rho + 0.02, 0.02);
        const SweepPoint seq_best = bowlOptimum(seq_curve);

        std::ostringstream penalty;
        penalty << std::showpos << std::fixed << std::setprecision(1)
                << 100.0 * (seq_best.power / best_power - 1.0) << "%";
        table.addRow(
            {std::to_string(rho).substr(0, 4), toString(best_state),
             std::to_string(best_power), std::to_string(seq_best.power),
             penalty.str()});
    }
    table.print(std::cout);
    std::cout << "\nExpected: a consistent but bounded penalty — the "
                 "sequence is conservative,\nuseful only when arrival "
                 "statistics are unknown (paper Section 4.2).\n";
    return 0;
}
