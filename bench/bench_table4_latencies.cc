/**
 * @file
 * Regenerates Table 4: wake-up latency ranges per combined state, plus
 * the concrete Section 4.2 choices the experiments use.
 */

#include <iomanip>
#include <iostream>
#include <sstream>

#include "power/platform_model.hh"
#include "util/table_printer.hh"

using namespace sleepscale;

namespace {

std::string
formatSeconds(double seconds)
{
    std::ostringstream out;
    if (seconds == 0.0)
        out << "0 s";
    else if (seconds < 1e-3)
        out << seconds * 1e6 << " us";
    else if (seconds < 1.0)
        out << seconds * 1e3 << " ms";
    else
        out << seconds << " s";
    return out.str();
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Table 4: average wake-up latencies to C0(a)S0(a)");

    const PlatformModel xeon = PlatformModel::xeon();
    TablePrinter table({"State", "Range (Table 4)", "Chosen (Sec. 4.2)"});
    for (LowPowerState state : allLowPowerStates) {
        const WakeLatencyRange range = wakeLatencyRange(state);
        table.addRow({toString(state),
                      formatSeconds(range.lo) + " - " +
                          formatSeconds(range.hi),
                      formatSeconds(xeon.wakeLatency(state))});
    }
    table.print(std::cout);

    std::cout << "\nThe paper (Section 4.2): \"other choices from the "
                 "range specified do not\ngreatly change the engineering "
                 "lessons.\"\n";
    return 0;
}
