/**
 * @file
 * Offline-optimal oracle bench (docs/OFFLINE_OPT.md): how far each
 * strategy sits from the offline optimum, and what the FPTAS costs.
 *
 * Three sections:
 *
 *  1. Regret vs offline optimal — SS, pruned SS, poet, and the
 *     R2H(C6) race-to-halt fixed policy (the operating point the
 *     guarded degraded mode falls back to) on the Table 5 workloads'
 *     2AM-6AM email-store slice, replicated N = 3 with 95% CIs on
 *     regret_pct. The mail and google arrival streams are thinned
 *     (the slice packs 10-100x more jobs than dns at the same
 *     utilization) so the whole section stays minutes, not hours.
 *  2. FPTAS runtime vs epsilon — one stationary exponential log,
 *     epsilon swept over a factor of 20: solve wall time, certified
 *     effective epsilon, and peak DP frontier width.
 *  3. FPTAS vs exact — randomized small logs through both solvers:
 *     speedup and the realized approximation gap (always within the
 *     requested epsilon; usually far inside it).
 *
 * `--json` emits the same numbers as a JSON document;
 * tools/bench_snapshot.sh captures it as BENCH_offline_opt.json.
 */

#include <chrono>
#include <iomanip>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "analytic/offline_opt.hh"
#include "core/policy_space.hh"
#include "experiment/replication.hh"
#include "experiment/runner.hh"
#include "util/table_printer.hh"
#include "workload/job_stream.hh"
#include "workload/workload_spec.hh"

using namespace sleepscale;

namespace {

constexpr std::size_t kReplications = 3;

std::string
fmt(double value, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

// ------------------------------------------ 1. regret vs offline opt

struct RegretRow
{
    std::string workload;
    std::string strategy;
    MetricSummary regret_pct;
    MetricSummary oracle_j;
    MetricSummary energy_j;
};

RegretRow
regretOf(const std::string &workload, const std::string &label,
         const std::string &strategy, bool pruned, double rate_scale)
{
    const ScenarioSpec spec =
        ScenarioBuilder("regret " + workload + " " + label)
            .workload(workload)
            .strategy(strategy)
            .prunedSearch(pruned)
            .trace("es")
            .traceDays(1)
            .traceSeed(20140614)
            .window(2, 6)
            .epochMinutes(5)
            .predictor("LC")
            .sourceRateScale(rate_scale)
            .reportRegret()
            .optEpsilon(0.05)
            .replications(kReplications)
            .seed(20140614)
            .build();
    const ReplicatedResult result = ReplicationPlan(kReplications).run(spec);
    return {workload, label, result.metric("regret_pct"),
            result.metric("offline_opt_energy"),
            result.metric("energy_j")};
}

std::vector<RegretRow>
regretSection()
{
    struct Arm
    {
        const char *label;
        const char *strategy;
        bool pruned;
    };
    const Arm arms[] = {
        {"SS", "SS", false},
        {"SS-pruned", "SS", true},
        {"poet", "poet", false},
        // The guarded degraded mode pins this race-to-halt fallback
        // (docs/FAULTS.md), so its regret bounds the cost of running
        // degraded; the mode itself needs the farm engine while the
        // oracle replays a single server's log.
        {"degraded(R2H-C6)", "R2H(C6)", false},
    };
    const struct
    {
        const char *workload;
        double rate_scale;
    } workloads[] = {{"dns", 1.0}, {"mail", 0.3}, {"google", 0.05}};

    std::vector<RegretRow> rows;
    for (const auto &w : workloads)
        for (const Arm &arm : arms)
            rows.push_back(regretOf(w.workload, arm.label, arm.strategy,
                                    arm.pruned, w.rate_scale));
    return rows;
}

// ------------------------------------------ 2. runtime vs epsilon

struct EpsilonRow
{
    double epsilon;
    double solve_s;
    double epsilon_effective;
    std::size_t frontier_peak;
    double energy_j;
};

std::vector<EpsilonRow>
epsilonSection()
{
    // One hour of stationary Poisson/exponential dns-like load at
    // rho = 0.3 — the regime the 2AM-8AM slices live in.
    const WorkloadSpec dns = workloadByName("dns");
    Rng rng(20140614);
    ExponentialDist gaps(dns.serviceMean / 0.3);
    ExponentialDist sizes(dns.serviceMean);
    std::vector<Job> jobs;
    double last = 0.0;
    for (const Job &job : generateJobs(rng, gaps, sizes, 20000)) {
        if (job.arrival > 3600.0)
            break;
        jobs.push_back(job);
        last = job.arrival;
    }
    const auto instance =
        OfflineOptInstance::fromJobs(jobs, std::max(3600.0, last));

    std::vector<EpsilonRow> rows;
    for (double epsilon : {0.2, 0.1, 0.05, 0.02, 0.01}) {
        OfflineOptOptions options;
        options.epsilon = epsilon;
        const OfflineOptimal oracle(PlatformModel::xeon(), dns.scaling,
                                    options);
        const auto start = std::chrono::steady_clock::now();
        const OfflineOptResult result = oracle.solve(instance);
        rows.push_back({epsilon,
                        seconds(std::chrono::steady_clock::now() - start),
                        result.epsilonEffective, result.frontierPeak,
                        result.energy});
    }
    return rows;
}

// ------------------------------------------------ 3. FPTAS vs exact

struct ExactRow
{
    std::size_t instances = 0;
    double exact_s = 0.0;      ///< Total exact-solver wall time.
    double fptas_s = 0.0;      ///< Total FPTAS wall time.
    double worst_gap = 0.0;    ///< max exact/lower - 1 (<= epsilon).
    double epsilon = 0.0;
};

ExactRow
exactSection()
{
    ExactRow row;
    row.instances = 50;
    row.epsilon = 0.05;
    OfflineOptOptions options;
    options.epsilon = row.epsilon;
    options.frequencies = PolicySpace::frequencyGrid(0.4, 1.0, 0.2);
    const OfflineOptimal oracle(PlatformModel::xeon(),
                                ServiceScaling::cpuBound(), options);

    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> gap(0.0, 2.0);
    std::uniform_real_distribution<double> size(0.0, 0.4);
    for (std::size_t i = 0; i < row.instances; ++i) {
        std::vector<Job> jobs;
        double t = 0.0;
        for (int j = 0; j < 9; ++j) {
            t += gap(rng);
            jobs.push_back({t, size(rng), 0});
        }
        const auto instance =
            OfflineOptInstance::fromJobs(jobs, t + 1.0);

        auto start = std::chrono::steady_clock::now();
        const OfflineOptResult exact = oracle.solveExact(instance);
        row.exact_s += seconds(std::chrono::steady_clock::now() - start);

        start = std::chrono::steady_clock::now();
        const OfflineOptResult fptas = oracle.solve(instance);
        row.fptas_s += seconds(std::chrono::steady_clock::now() - start);

        if (fptas.energy > 0.0)
            row.worst_gap = std::max(row.worst_gap,
                                     exact.energy / fptas.energy - 1.0);
    }
    return row;
}

// ------------------------------------------------------------ output

void
printJson(std::ostream &out, const std::vector<RegretRow> &regret,
          const std::vector<EpsilonRow> &epsilons, const ExactRow &exact)
{
    out << "{\n  \"bench\": \"offline_opt\",\n"
        << "  \"replications\": " << kReplications << ",\n"
        << "  \"regret_vs_offline_opt\": [\n";
    for (std::size_t i = 0; i < regret.size(); ++i) {
        const RegretRow &row = regret[i];
        out << "    {\"workload\": \"" << row.workload
            << "\", \"strategy\": \"" << row.strategy
            << "\", \"regret_pct\": " << fmt(row.regret_pct.mean(), 3)
            << ", \"regret_ci\": " << fmt(row.regret_pct.ciHalfWidth(), 3)
            << ", \"oracle_j\": " << fmt(row.oracle_j.mean(), 1)
            << ", \"energy_j\": " << fmt(row.energy_j.mean(), 1) << "}"
            << (i + 1 < regret.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"fptas_runtime_vs_epsilon\": [\n";
    for (std::size_t i = 0; i < epsilons.size(); ++i) {
        const EpsilonRow &row = epsilons[i];
        out << "    {\"epsilon\": " << fmt(row.epsilon, 3)
            << ", \"solve_s\": " << fmt(row.solve_s, 4)
            << ", \"epsilon_effective\": "
            << fmt(row.epsilon_effective, 5)
            << ", \"frontier_peak\": " << row.frontier_peak
            << ", \"energy_j\": " << fmt(row.energy_j, 1) << "}"
            << (i + 1 < epsilons.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"fptas_vs_exact\": {\"instances\": "
        << exact.instances << ", \"epsilon\": " << fmt(exact.epsilon, 3)
        << ", \"exact_total_s\": " << fmt(exact.exact_s, 4)
        << ", \"fptas_total_s\": " << fmt(exact.fptas_s, 4)
        << ", \"speedup\": "
        << fmt(exact.fptas_s > 0.0 ? exact.exact_s / exact.fptas_s : 0.0,
               2)
        << ", \"worst_gap\": " << fmt(exact.worst_gap, 5)
        << ", \"within_epsilon\": "
        << (exact.worst_gap <= exact.epsilon ? "true" : "false")
        << "}\n}\n";
}

void
printTable(std::ostream &out, const std::vector<RegretRow> &regret,
           const std::vector<EpsilonRow> &epsilons, const ExactRow &exact)
{
    printBanner(out, "Offline-optimal oracle bench: regret and FPTAS "
                     "cost (docs/OFFLINE_OPT.md)");

    out << "\nRegret vs offline optimal (2AM-6AM slice, N = "
        << kReplications << ", mean ± 95% CI):\n";
    TablePrinter regret_table({"workload", "strategy", "regret [%]",
                               "±CI", "oracle [J]", "actual [J]"});
    for (const RegretRow &row : regret)
        regret_table.addRow({row.workload, row.strategy,
                             fmt(row.regret_pct.mean(), 2),
                             fmt(row.regret_pct.ciHalfWidth(), 2),
                             fmt(row.oracle_j.mean(), 0),
                             fmt(row.energy_j.mean(), 0)});
    regret_table.print(out);

    out << "\nFPTAS runtime vs epsilon (1 h stationary dns log):\n";
    TablePrinter eps_table({"epsilon", "solve [s]", "eps_eff",
                            "frontier peak", "lower bound [J]"});
    for (const EpsilonRow &row : epsilons)
        eps_table.addRow({fmt(row.epsilon, 3), fmt(row.solve_s, 3),
                          fmt(row.epsilon_effective, 5),
                          std::to_string(row.frontier_peak),
                          fmt(row.energy_j, 1)});
    eps_table.print(out);

    out << "\nFPTAS vs exact (" << exact.instances
        << " random small logs, epsilon " << fmt(exact.epsilon, 2)
        << "): exact " << fmt(exact.exact_s, 3) << " s total, FPTAS "
        << fmt(exact.fptas_s, 3) << " s total ("
        << fmt(exact.exact_s / std::max(exact.fptas_s, 1e-12), 1)
        << "x), worst realized gap " << fmt(100.0 * exact.worst_gap, 3)
        << "% — " << (exact.worst_gap <= exact.epsilon ? "within" : "OVER")
        << " the requested epsilon\n"
        << "\nExpected: SS sits closest to the oracle, the pruned "
           "search and poet pay\nsmall premiums, and the degraded "
           "fallback pays the largest; tightening\nepsilon grows "
           "frontier width and runtime while the certified bracket\n"
           "narrows (docs/OFFLINE_OPT.md).\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json")
            json = true;
    }

    const std::vector<RegretRow> regret = regretSection();
    const std::vector<EpsilonRow> epsilons = epsilonSection();
    const ExactRow exact = exactSection();

    if (json)
        printJson(std::cout, regret, epsilons, exact);
    else
        printTable(std::cout, regret, epsilons, exact);
    return 0;
}
