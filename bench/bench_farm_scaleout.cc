/**
 * @file
 * Extension bench (paper Section 7 future work): SleepScale on a
 * multi-server farm. Two experiments:
 *
 *  (a) Dispatcher study at fixed farm size: how routing shapes power
 *      and response when every back-end runs SleepScale. Packing
 *      concentrates idleness (deep sleep headroom) at some response
 *      cost; JSQ does the opposite.
 *  (b) Scale-out study: farm size sweep at fixed per-server load,
 *      SleepScale vs race-to-halt — per-server savings persist at
 *      scale, which is the paper's conjecture.
 */

#include <iomanip>
#include <iostream>
#include <sstream>

#include "farm/farm_runtime.hh"
#include "util/rng.hh"
#include "util/table_printer.hh"
#include "workload/job_stream.hh"

using namespace sleepscale;

int
main()
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace day = synthEmailStoreTrace(1, 20140614);
    const UtilizationTrace window = day.dailyWindow(2, 20);

    // ---------------- (a) dispatcher study ----------------
    printBanner(std::cout,
                "Farm extension (a): dispatcher study, 4 servers, "
                "email-store 2AM-8PM, DNS-like");

    Rng rng(2020);
    const auto jobs = generateFarmJobs(rng, dns, window, 4);

    TablePrinter dispatch_table({"dispatcher", "mu*E[R]", "farm E[P] [W]",
                                 "per-server [W]", "within budget?"});
    for (const std::string name :
         {"random", "round-robin", "JSQ", "packing"}) {
        FarmRuntimeConfig config;
        config.farmSize = 4;
        config.dispatcher = name;
        config.packingSpillBacklog = 2.0;
        config.perServer.epochMinutes = 5;
        config.perServer.overProvision = 0.35;
        config.perServer.rhoB = 0.8;
        const FarmRuntime runtime(xeon, dns, config);
        LmsCusumPredictor predictor(10);
        const FarmRuntimeResult result =
            runtime.run(jobs, window, predictor);

        dispatch_table.addRow(
            {name,
             std::to_string(result.meanResponse() / dns.serviceMean),
             std::to_string(result.avgPower()),
             std::to_string(result.avgPower() / 4.0),
             result.withinBudget() ? "yes" : "no"});
    }
    dispatch_table.print(std::cout);

    // ---------------- (b) scale-out study ----------------
    printBanner(std::cout,
                "Farm extension (b): SleepScale vs race-to-halt across "
                "farm sizes (flat rho = 0.2)");

    const UtilizationTrace flat("flat", std::vector<double>(120, 0.2));
    TablePrinter scale_table({"servers", "SS per-server [W]",
                              "R2H(C6) per-server [W]", "savings"});
    for (std::size_t size : {1u, 2u, 4u, 8u, 16u}) {
        Rng farm_rng(3030 + size);
        const auto farm_jobs =
            generateFarmJobs(farm_rng, dns, flat, size);

        FarmRuntimeConfig ss;
        ss.farmSize = size;
        ss.dispatcher = "random";
        ss.perServer.epochMinutes = 5;
        ss.perServer.overProvision = 0.35;
        FarmRuntimeConfig r2h = ss;
        r2h.perServer.fixedPolicy =
            raceToHalt(LowPowerState::C6S0Idle);

        LmsCusumPredictor p1(10), p2(10);
        const FarmRuntimeResult ss_result =
            FarmRuntime(xeon, dns, ss).run(farm_jobs, flat, p1);
        const FarmRuntimeResult r2h_result =
            FarmRuntime(xeon, dns, r2h).run(farm_jobs, flat, p2);

        const double n = static_cast<double>(size);
        const double ss_per = ss_result.avgPower() / n;
        const double r2h_per = r2h_result.avgPower() / n;
        std::ostringstream savings;
        savings << std::fixed << std::setprecision(1)
                << 100.0 * (1.0 - ss_per / r2h_per) << "%";
        scale_table.addRow({std::to_string(size),
                            std::to_string(ss_per),
                            std::to_string(r2h_per), savings.str()});
    }
    scale_table.print(std::cout);
    std::cout << "\nExpected: per-server savings are roughly "
                 "size-independent — SleepScale\nscales out by running "
                 "per server, as the paper conjectures.\n";
    return 0;
}
