/**
 * @file
 * Extension bench (paper Section 7 future work): SleepScale on a
 * multi-server farm, both panels expressed as declarative sweep grids
 * over the farm engine:
 *
 *  (a) Dispatcher study at fixed farm size: how routing shapes power
 *      and response when every back-end runs SleepScale. Packing
 *      concentrates idleness (deep sleep headroom) at some response
 *      cost; JSQ does the opposite.
 *  (b) Scale-out study: farm size sweep at fixed per-server load,
 *      SleepScale vs race-to-halt — per-server savings persist at
 *      scale, which is the paper's conjecture.
 */

#include <iomanip>
#include <iostream>
#include <sstream>

#include "experiment/runner.hh"
#include "farm/dispatcher.hh"

using namespace sleepscale;

int
main()
{
    // ---------------- (a) dispatcher study ----------------
    printBanner(std::cout,
                "Farm extension (a): dispatcher study, 4 servers, "
                "email-store 2AM-8PM, DNS-like");

    const ScenarioSpec dispatch_base = ScenarioBuilder("farm")
                                           .engine(EngineKind::Farm)
                                           .workload("dns")
                                           .trace("es")
                                           .traceSeed(20140614)
                                           .window(2, 20)
                                           .farmSize(4)
                                           .packingSpillBacklog(2.0)
                                           .epochMinutes(5)
                                           .overProvision(0.35)
                                           .rhoB(0.8)
                                           .predictor("LC")
                                           .seed(2020)
                                           .build();

    ExperimentRunner dispatch_runner;
    dispatch_runner.addGrid(
        dispatch_base,
        {sweepDispatchers(dispatcherRegistry().names())});
    const auto dispatch_results = dispatch_runner.run();

    TablePrinter dispatch_table({"dispatcher", "mu*E[R]",
                                 "farm E[P] [W]", "per-server [W]",
                                 "within budget?"});
    for (const ScenarioResult &result : dispatch_results) {
        dispatch_table.addRow(
            {result.spec.dispatcher,
             std::to_string(result.normalizedMean),
             std::to_string(result.avgPower),
             std::to_string(result.extra("per_server_w")),
             result.withinBudget ? "yes" : "no"});
    }
    dispatch_table.print(std::cout);

    // ---------------- (b) scale-out study ----------------
    printBanner(std::cout,
                "Farm extension (b): SleepScale vs race-to-halt across "
                "farm sizes (flat rho = 0.2)");

    const ScenarioSpec scale_base = ScenarioBuilder("scaleout")
                                        .engine(EngineKind::Farm)
                                        .workload("dns")
                                        .flatTrace(0.2, 120)
                                        .dispatcher("random")
                                        .epochMinutes(5)
                                        .overProvision(0.35)
                                        .rhoB(0.8)
                                        .predictor("LC")
                                        .build();

    // Each farm size draws its own job stream (seed tied to the size),
    // while SS and R2H at the same size share it for a fair comparison.
    SweepAxis size_axis = customAxis("servers", {});
    for (std::size_t size : {1u, 2u, 4u, 8u, 16u}) {
        size_axis.points.emplace_back(
            std::to_string(size), [size](ScenarioSpec &spec) {
                spec.farmSize = size;
                spec.seed = 3030 + size;
            });
    }

    ExperimentRunner scale_runner;
    scale_runner.addGrid(scale_base,
                         {size_axis,
                          sweepStrategies({"SS", "R2H(C6)"})});
    const auto scale_results = scale_runner.run();

    TablePrinter scale_table({"servers", "SS per-server [W]",
                              "R2H(C6) per-server [W]", "savings"});
    for (std::size_t i = 0; i + 1 < scale_results.size(); i += 2) {
        const ScenarioResult &ss = scale_results[i];
        const ScenarioResult &r2h = scale_results[i + 1];
        const double ss_per = ss.extra("per_server_w");
        const double r2h_per = r2h.extra("per_server_w");
        std::ostringstream savings;
        savings << std::fixed << std::setprecision(1)
                << 100.0 * (1.0 - ss_per / r2h_per) << "%";
        scale_table.addRow({std::to_string(ss.spec.farmSize),
                            std::to_string(ss_per),
                            std::to_string(r2h_per), savings.str()});
    }
    scale_table.print(std::cout);
    std::cout << "\nExpected: per-server savings are roughly "
                 "size-independent — SleepScale\nscales out by running "
                 "per server, as the paper conjectures.\n";
    return 0;
}
