/**
 * @file
 * Regenerates Figure 10: the distribution of low-power states SleepScale
 * selects across {file server, email store} × {DNS, Google} × ρ_b ∈
 * {0.6, 0.8} (LC predictor p = 10, T = 5 minutes, α = 0.35).
 *
 * Expected (Section 6.2): the low, stable file-server trace mostly needs
 * a single state; the highly time-varying email store mixes C0(i)S0(i)
 * and C6S0(i); tightening ρ_b to 0.6 pushes selections toward deeper
 * states (faster processing creates more sleep opportunities).
 */

#include <iostream>

#include "core/strategies.hh"
#include "util/rng.hh"
#include "util/table_printer.hh"
#include "workload/job_stream.hh"

using namespace sleepscale;

int
main()
{
    const PlatformModel xeon = PlatformModel::xeon();

    struct TraceCase
    {
        std::string label;
        UtilizationTrace window;
    };
    const std::vector<TraceCase> traces = {
        {"fs", synthFileServerTrace(1, 20140614).dailyWindow(2, 20)},
        {"es", synthEmailStoreTrace(1, 20140614).dailyWindow(2, 20)},
    };

    printBanner(std::cout,
                "Figure 10: distribution of selected low-power states");
    std::cout << "LC predictor (p = 10), T = 5 min, alpha = 0.35; "
                 "fraction of decided epochs\n\n";

    std::vector<std::string> headers = {"case"};
    for (LowPowerState state : allLowPowerStates)
        headers.push_back(toString(state));
    TablePrinter table(std::move(headers));

    std::uint64_t seed = 1010;
    for (const TraceCase &trace_case : traces) {
        for (const WorkloadSpec &spec :
             {dnsWorkload(), googleWorkload()}) {
            Rng rng(seed++);
            const auto jobs = generateTraceDrivenJobs(rng, spec,
                                                      trace_case.window);
            for (double rho_b : {0.6, 0.8}) {
                RuntimeConfig config = makeStrategyConfig(
                    StrategyKind::SleepScale, 5, 0.35, rho_b);
                config.evalLogCap = 3000;
                const SleepScaleRuntime runtime(xeon, spec, config);
                LmsCusumPredictor predictor(10);
                const RuntimeResult result =
                    runtime.run(jobs, trace_case.window, predictor);

                const auto fractions =
                    result.stateSelectionFractions();
                std::vector<std::string> row = {
                    trace_case.label + "/" + spec.name + "/rho_b=" +
                    std::to_string(rho_b).substr(0, 3)};
                for (double fraction : fractions)
                    row.push_back(std::to_string(fraction).substr(0, 5));
                table.addRow(row);
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nExpected: fs cases concentrate on one state; es "
                 "cases mix C0(i)S0(i) and\nC6S0(i); rho_b = 0.6 shifts "
                 "mass toward deeper states.\n";
    return 0;
}
