/**
 * @file
 * Regenerates Figure 3: delaying the entrance into the deep C6S3 state
 * for the Google-like workload. Policies: immediate C0(i)S0(i),
 * immediate C6S3, and the two-stage descents C0(i)S0(i) -> C6S3 with
 * τ2 ∈ {30/µ, 50/µ}.
 *
 * Expected shape (lesson 4): the delayed curves interpolate between the
 * two immediate extremes, and at a mild response budget (µE[R] ≈ 20) the
 * delayed policies save power over both.
 */

#include <iostream>

#include "bench_util.hh"
#include "util/table_printer.hh"

using namespace sleepscale;
using namespace sleepscale::bench;

int
main()
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec google = googleWorkload().idealized();
    const double mu = 1.0 / google.serviceMean;

    struct Candidate
    {
        std::string label;
        SleepPlan plan;
    };
    const std::vector<Candidate> candidates = {
        {"C0(i)S0(i)", SleepPlan::immediate(LowPowerState::C0IdleS0Idle)},
        {"C6S3", SleepPlan::immediate(LowPowerState::C6S3)},
        {"C0(i)S0(i)->C6S3 tau2=30/mu",
         SleepPlan::delayed(LowPowerState::C6S3, 30.0 / mu)},
        {"C0(i)S0(i)->C6S3 tau2=50/mu",
         SleepPlan::delayed(LowPowerState::C6S3, 50.0 / mu)},
    };

    for (double rho : {0.1, 0.3}) {
        printBanner(std::cout,
                    "Figure 3: delayed C6S3 entry, Google-like, rho = " +
                        std::to_string(rho).substr(0, 3));
        const auto jobs = idealJobs(google, rho, 30000, 140404);

        TablePrinter table({"policy", "f", "mu*E[R]", "E[P] [W]"});
        TablePrinter at_budget({"policy", "min E[P] @ mu*E[R]<=20 [W]"});
        for (const Candidate &candidate : candidates) {
            const auto curve = sweepFrequencies(
                xeon, google, candidate.plan, jobs, rho + 0.01, 0.01);
            for (std::size_t i = 0; i < curve.size(); i += 8) {
                table.addRow(
                    {candidate.label,
                     std::to_string(curve[i].frequency).substr(0, 4),
                     std::to_string(curve[i].normalizedResponse),
                     std::to_string(curve[i].power)});
            }
            const SweepPoint best = constrainedOptimum(curve, 20.0);
            at_budget.addRow({candidate.label,
                              std::to_string(best.power)});
        }
        table.print(std::cout);
        std::cout << '\n';
        at_budget.print(std::cout);
        std::cout << "\nExpected: the tau2 curves interpolate between "
                     "immediate C6S3 and immediate\nC0(i)S0(i). At the "
                     "mild budget (mu*E[R] <= 20) immediate C6S3 is "
                     "infeasible\n(wake-dominated; lesson 3: no "
                     "aggressive sleep for small jobs) while the\n"
                     "delayed entry recovers C0(i)S0(i)-level power — "
                     "the paper's point that the\ndelay parameter "
                     "\"guards\" the deep state.\n";
    }
    return 0;
}
