/**
 * @file
 * Farm-scale throughput bench (docs/FARM_SCALE.md): how many jobs per
 * wall-clock second the event-driven farm core streams at farm sizes
 * {100, 1k, 10k}. The scenario is the Table 5 DNS workload at a flat
 * 0.25 per-server load under farm-wide control; the trace length
 * shrinks as the farm grows so every row simulates a comparable job
 * count and the bench stays seconds-long end to end. The 10k row runs
 * the large-farm configuration (auto sharding, no per-server tail
 * histograms) — the same shape the farm_scale_test smoke run pins.
 *
 * The headline column is jobs/s of wall time (generation + routing +
 * service simulation + accounting). Before the event wheel the
 * per-arrival dispatcher scan was O(N), so the 10k row ran ~100x
 * slower per job than the 100-server row; with the O(log N) core the
 * rows should stay within the same order of magnitude.
 *
 * `--json` emits the same rows as a JSON document;
 * tools/bench_snapshot.sh captures that as BENCH_farm_scale.json so
 * the scaling trajectory is version-controlled alongside the perf
 * snapshots.
 */

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/runner.hh"
#include "util/monotonic_clock.hh"
#include "util/table_printer.hh"

using namespace sleepscale;

namespace {

/** One farm size's outcome, ready for either output format. */
struct ScaleRow
{
    std::size_t servers;    ///< Farm size.
    std::size_t shards;     ///< Shard lanes requested (0 = auto).
    std::uint64_t jobs;     ///< Jobs offered over the run.
    double sim_minutes;     ///< Simulated trace span, minutes.
    double wall_ms;         ///< Wall clock for the whole scenario.
    double jobs_per_sec;    ///< jobs / wall seconds.
    double mean_response_s; ///< Whole-run E[R], seconds.
    double farm_kw;         ///< Whole-run farm power, kilowatts.
};

ScaleRow
runScale(std::size_t servers, std::size_t trace_minutes)
{
    std::ostringstream label;
    label << "farm-" << servers;
    ScenarioBuilder builder(label.str());
    builder.engine(EngineKind::Farm)
        .workload("dns")
        .flatTrace(0.25, trace_minutes)
        .farmSize(servers)
        .dispatcher("JSQ")
        .farmControl("farm-wide")
        .farmShards(0) // Auto: lanes scale with the farm size.
        .epochMinutes(5)
        .predictor("LC")
        .seed(7);
    // The large-farm configuration: per-server percentile histograms
    // are the one per-server cost that is not O(1), so the 10k row
    // runs without them exactly like a production-scale sweep would.
    if (servers >= 10000)
        builder.tailHistograms(false);
    const ScenarioSpec spec = builder.build();

    const double start = monotonicMicros();
    const ScenarioResult result = ExperimentRunner::runScenario(spec);
    const double wall_us = monotonicMicros() - start;

    ScaleRow row;
    row.servers = servers;
    row.shards = spec.farmShards;
    row.jobs = result.jobs;
    row.sim_minutes = static_cast<double>(trace_minutes);
    row.wall_ms = wall_us / 1e3;
    row.jobs_per_sec =
        wall_us > 0.0 ? static_cast<double>(result.jobs) / (wall_us / 1e6)
                      : 0.0;
    row.mean_response_s = result.meanResponse;
    row.farm_kw = result.avgPower / 1e3;
    return row;
}

std::string
fmt(double value, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

void
printJson(std::ostream &out, const std::vector<ScaleRow> &rows)
{
    out << "{\n"
        << "  \"bench\": \"farm_scale\",\n"
        << "  \"workload\": \"dns\",\n"
        << "  \"load\": 0.25,\n"
        << "  \"dispatcher\": \"JSQ\",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ScaleRow &row = rows[i];
        out << "    {\"servers\": " << row.servers
            << ", \"shards\": " << row.shards
            << ", \"sim_minutes\": " << fmt(row.sim_minutes, 0)
            << ", \"jobs\": " << row.jobs
            << ", \"wall_ms\": " << fmt(row.wall_ms, 1)
            << ", \"jobs_per_sec\": " << fmt(row.jobs_per_sec, 0)
            << ", \"mean_response_s\": " << fmt(row.mean_response_s, 6)
            << ", \"farm_kw\": " << fmt(row.farm_kw, 3)
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

void
printTable(std::ostream &out, const std::vector<ScaleRow> &rows)
{
    printBanner(out,
                "Farm scale bench: streaming throughput of the "
                "event-driven core (DNS, load 0.25, JSQ)");
    TablePrinter table({"servers", "jobs", "sim [min]", "wall [ms]",
                        "jobs/s", "E[R] [s]", "farm [kW]"});
    for (const ScaleRow &row : rows)
        table.addRow({std::to_string(row.servers),
                      std::to_string(row.jobs), fmt(row.sim_minutes, 0),
                      fmt(row.wall_ms, 1), fmt(row.jobs_per_sec, 0),
                      fmt(row.mean_response_s, 4), fmt(row.farm_kw, 2)});
    table.print(out);
    out << "\nExpected: jobs/s stays within one order of magnitude "
           "from 100 to 10k servers\n(the event wheel makes routing "
           "O(log N)); a collapse on the 10k row means a\nper-arrival "
           "or per-epoch O(N) scan crept back into the farm path.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json")
            json = true;
    }

    std::vector<ScaleRow> rows;
    rows.push_back(runScale(100, 20));
    rows.push_back(runScale(1000, 10));
    rows.push_back(runScale(10000, 2));

    if (json)
        printJson(std::cout, rows);
    else
        printTable(std::cout, rows);
    return 0;
}
