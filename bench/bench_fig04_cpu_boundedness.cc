/**
 * @file
 * Regenerates Figure 4: how the service-rate dependence on CPU frequency
 * changes the optimal speed (DNS-like workload, ρ = 0.1, C6S3). Service
 * rates µf (CPU-bound), µf^0.5, µf^0.2, and µ (memory-bound).
 *
 * Expected (lesson 6): the less CPU-bound the work, the lower the
 * optimal frequency; for memory-bound work the optimal speed is the
 * lowest available.
 */

#include <iostream>

#include "bench_util.hh"
#include "util/table_printer.hh"

using namespace sleepscale;
using namespace sleepscale::bench;

int
main()
{
    const PlatformModel xeon = PlatformModel::xeon();
    const double rho = 0.1;

    printBanner(std::cout,
                "Figure 4: CPU-boundedness and the optimal frequency "
                "(DNS-like, rho = 0.1, C6S3)");

    struct Law
    {
        std::string label;
        ServiceScaling scaling;
    };
    const std::vector<Law> laws = {
        {"mu*f (CPU-bound)", ServiceScaling::cpuBound()},
        {"mu*f^0.5", ServiceScaling::mixed()},
        {"mu*f^0.2", ServiceScaling::mostlyMemory()},
        {"mu (memory-bound)", ServiceScaling::memoryBound()},
    };

    TablePrinter table({"scaling", "f", "mu*E[R]", "E[P] [W]"});
    TablePrinter optima({"scaling", "optimal f", "E[P]* [W]"});
    for (const Law &law : laws) {
        WorkloadSpec spec = dnsWorkload().idealized();
        spec.scaling = law.scaling;
        const auto jobs = idealJobs(spec, rho, 20000, 140405);

        // Stability floor: f^a > rho.
        const double f_min =
            law.scaling.exponent == 0.0
                ? 0.05
                : std::pow(rho + 0.01, 1.0 / law.scaling.exponent);
        const auto curve = sweepFrequencies(xeon, spec,
                                            SleepPlan::immediate(
                                                LowPowerState::C6S3),
                                            jobs, f_min, 0.01);
        for (std::size_t i = 0; i < curve.size(); i += 8) {
            table.addRow({law.label,
                          std::to_string(curve[i].frequency).substr(0, 4),
                          std::to_string(curve[i].normalizedResponse),
                          std::to_string(curve[i].power)});
        }
        const SweepPoint best = bowlOptimum(curve);
        optima.addRow({law.label,
                       std::to_string(best.frequency).substr(0, 4),
                       std::to_string(best.power)});
    }
    table.print(std::cout);
    std::cout << '\n';
    optima.print(std::cout);
    std::cout << "\nExpected: optimal f decreases with the scaling "
                 "exponent; memory-bound work\nruns at the lowest "
                 "frequency.\n";
    return 0;
}
