/**
 * @file
 * Regenerates Figure 9: SleepScale against the conventional strategies —
 * SS(C3), DVFS-only, R2H(C3), R2H(C6) — on the DNS-like server following
 * the email-store trace (2AM-8PM window). All strategies run with the
 * LMS+CUSUM predictor (p = 10), T = 5 minutes, α = 0.35, ρ_b = 0.8.
 *
 * Expected (Section 6.1): SS achieves the lowest power while keeping the
 * mean response within the µE[R] = 5 budget; DVFS-only shows the largest
 * response times (it consumes the whole budget and has no headroom);
 * race-to-halt burns extra power at f = 1.
 */

#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/strategies.hh"
#include "util/rng.hh"
#include "util/table_printer.hh"
#include "workload/job_stream.hh"

using namespace sleepscale;

int
main()
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();

    const UtilizationTrace day = synthEmailStoreTrace(1, 20140614);
    const UtilizationTrace window = day.dailyWindow(2, 20);
    Rng rng(99);
    const auto jobs = generateTraceDrivenJobs(rng, dns, window);

    printBanner(std::cout,
                "Figure 9: SleepScale vs conventional strategies");
    std::cout << "workload = DNS-like, trace = email store 2AM-8PM, "
                 "LC predictor (p = 10), T = 5 min,\nalpha = 0.35, "
                 "rho_b = 0.8 (budget mu*E[R] = 5)\n\n";

    TablePrinter table({"strategy", "mu*E[R]", "p95/mean svc",
                        "E[P] [W]", "vs SS power", "within budget?"});

    double ss_power = 0.0;
    std::vector<std::vector<std::string>> rows;
    for (StrategyKind kind : allStrategies) {
        const RuntimeConfig config =
            makeStrategyConfig(kind, 5, 0.35, 0.8);
        const SleepScaleRuntime runtime(xeon, dns, config);
        LmsCusumPredictor predictor(10);
        const RuntimeResult result = runtime.run(jobs, window, predictor);

        if (kind == StrategyKind::SleepScale)
            ss_power = result.avgPower();
        rows.push_back(
            {toString(kind),
             std::to_string(result.meanResponse() / dns.serviceMean),
             std::to_string(result.p95Response() / dns.serviceMean),
             std::to_string(result.avgPower()),
             "", // filled below once SS power is known
             result.withinBudget() ? "yes" : "no"});
    }
    for (auto &row : rows) {
        const double power = std::stod(row[3]);
        const double delta = 100.0 * (power / ss_power - 1.0);
        std::ostringstream cell;
        cell << (delta >= 0 ? "+" : "") << std::fixed
             << std::setprecision(1) << delta << "%";
        row[4] = cell.str();
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nExpected: SS lowest power within budget; DVFS-only "
                 "wastes power (no deeper\nsleep states and no "
                 "sleep-vs-speed trade); R2H variants pay the f = 1 "
                 "power\npremium (Figure 9a/9b of the paper).\n";
    return 0;
}
