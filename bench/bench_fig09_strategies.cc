/**
 * @file
 * Regenerates Figure 9: SleepScale against the conventional strategies —
 * SS(C3), DVFS-only, R2H(C3), R2H(C6) — on the DNS-like server following
 * the email-store trace (2AM-8PM window). All strategies run with the
 * LMS+CUSUM predictor (p = 10), T = 5 minutes, α = 0.35, ρ_b = 0.8.
 *
 * One declarative scenario, expanded over the registered strategies and
 * executed in parallel; every grid point shares the base seed, so all
 * strategies see identical job streams as in the paper.
 *
 * Expected (Section 6.1): SS achieves the lowest power while keeping the
 * mean response within the µE[R] = 5 budget; DVFS-only shows the largest
 * response times (it consumes the whole budget and has no headroom);
 * race-to-halt burns extra power at f = 1.
 *
 * Error-bar mode: `bench_fig09_strategies --replications N` (N >= 2)
 * replicates every strategy N times under derived seeds. Because the
 * grid shares one base seed, replication i of every strategy sees the
 * identical job stream (common random numbers), so the printed
 * power-savings deltas vs SS are paired-t confidence intervals
 * (docs/STATISTICS.md).
 */

#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/strategies.hh"
#include "experiment/replication.hh"
#include "experiment/runner.hh"
#include "util/cli_args.hh"
#include "util/error.hh"

using namespace sleepscale;

int
main(int argc, char **argv)
try {
    // The one bench option: --replications N (N >= 2 = error bars).
    // CliArgs rejects typos and non-numeric values loudly.
    const CliArgs args(argc, argv, {"replications"});
    const std::size_t replications = args.getUnsigned("replications", 1);
    const ScenarioSpec base = ScenarioBuilder("fig9")
                                  .workload("dns")
                                  .trace("es")
                                  .traceSeed(20140614)
                                  .window(2, 20)
                                  .epochMinutes(5)
                                  .overProvision(0.35)
                                  .rhoB(0.8)
                                  .predictor("LC")
                                  .seed(99)
                                  .replications(replications)
                                  .build();

    std::vector<std::string> strategies;
    for (StrategyKind kind : allStrategies)
        strategies.push_back(toString(kind));

    ExperimentRunner runner;
    runner.addGrid(base, {sweepStrategies(strategies)});

    printBanner(std::cout,
                "Figure 9: SleepScale vs conventional strategies");
    std::cout << "workload = DNS-like, trace = email store 2AM-8PM, "
                 "LC predictor (p = 10), T = 5 min,\nalpha = 0.35, "
                 "rho_b = 0.8 (budget mu*E[R] = 5)\n\n";

    if (replications > 1) {
        const auto replicated = runner.runReplicated();
        std::cout << replications
                  << " replications per strategy; mean ± 95% CI; "
                     "deltas vs SS are paired\n(common random "
                     "numbers: every strategy's replication i sees "
                     "the same job stream)\n\n";
        // The per-replication seeds are shared across the grid, so
        // the SS-vs-X power delta pairs replication-by-replication —
        // no rerun needed for the paired interval.
        const ReplicatedResult &ss = replicated.front();
        const auto &ss_power =
            ss.metric("avg_power_w").samples;
        TablePrinter table({"strategy", "mu*E[R] ± CI",
                            "E[P] [W] ± CI", "vs SS power ± CI",
                            "significant?", "viol%"});
        for (const ReplicatedResult &result : replicated) {
            const auto &power =
                result.metric("avg_power_w").samples;
            std::vector<double> delta_pct(power.size());
            for (std::size_t i = 0; i < power.size(); ++i)
                delta_pct[i] =
                    100.0 * (power[i] / ss_power[i] - 1.0);
            const MetricSummary delta = summarizeSamples(
                "vs_ss_power_pct", std::move(delta_pct));
            table.addRow(
                {result.spec.strategy,
                 result.metric("normalized_mean").toString(),
                 result.metric("avg_power_w").toString(),
                 delta.toString(3),
                 &result == &ss ? "-"
                 : delta.excludesZero() ? "yes"
                                        : "no",
                 std::to_string(
                     100.0 *
                     result.metric("qos_violation").mean())});
        }
        table.print(std::cout);
        std::cout << "\nA 'yes' means the paired 95% CI on the power "
                     "delta excludes zero: the\nstrategy ordering is "
                     "statistically qualified, not anecdotal.\n";
        return 0;
    }

    const auto results = runner.run();
    const double ss_power = results.front().avgPower;

    TablePrinter table({"strategy", "mu*E[R]", "p95/mean svc",
                        "E[P] [W]", "vs SS power", "within budget?"});
    for (const ScenarioResult &result : results) {
        const double service_mean =
            result.meanResponse / result.normalizedMean;
        const double delta =
            100.0 * (result.avgPower / ss_power - 1.0);
        std::ostringstream cell;
        cell << (delta >= 0 ? "+" : "") << std::fixed
             << std::setprecision(1) << delta << "%";
        table.addRow({result.spec.strategy,
                      std::to_string(result.normalizedMean),
                      std::to_string(result.p95Response / service_mean),
                      std::to_string(result.avgPower), cell.str(),
                      result.withinBudget ? "yes" : "no"});
    }
    table.print(std::cout);

    std::cout << "\nExpected: SS lowest power within budget; DVFS-only "
                 "wastes power (no deeper\nsleep states and no "
                 "sleep-vs-speed trade); R2H variants pay the f = 1 "
                 "power\npremium (Figure 9a/9b of the paper).\n";
    return 0;
} catch (const ConfigError &error) {
    std::cerr << error.what() << '\n';
    return 1;
}
