/**
 * @file
 * Regenerates Figure 9: SleepScale against the conventional strategies —
 * SS(C3), DVFS-only, R2H(C3), R2H(C6) — on the DNS-like server following
 * the email-store trace (2AM-8PM window). All strategies run with the
 * LMS+CUSUM predictor (p = 10), T = 5 minutes, α = 0.35, ρ_b = 0.8.
 *
 * One declarative scenario, expanded over the registered strategies and
 * executed in parallel; every grid point shares the base seed, so all
 * strategies see identical job streams as in the paper.
 *
 * Expected (Section 6.1): SS achieves the lowest power while keeping the
 * mean response within the µE[R] = 5 budget; DVFS-only shows the largest
 * response times (it consumes the whole budget and has no headroom);
 * race-to-halt burns extra power at f = 1.
 */

#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/strategies.hh"
#include "experiment/runner.hh"

using namespace sleepscale;

int
main()
{
    const ScenarioSpec base = ScenarioBuilder("fig9")
                                  .workload("dns")
                                  .trace("es")
                                  .traceSeed(20140614)
                                  .window(2, 20)
                                  .epochMinutes(5)
                                  .overProvision(0.35)
                                  .rhoB(0.8)
                                  .predictor("LC")
                                  .seed(99)
                                  .build();

    std::vector<std::string> strategies;
    for (StrategyKind kind : allStrategies)
        strategies.push_back(toString(kind));

    ExperimentRunner runner;
    runner.addGrid(base, {sweepStrategies(strategies)});

    printBanner(std::cout,
                "Figure 9: SleepScale vs conventional strategies");
    std::cout << "workload = DNS-like, trace = email store 2AM-8PM, "
                 "LC predictor (p = 10), T = 5 min,\nalpha = 0.35, "
                 "rho_b = 0.8 (budget mu*E[R] = 5)\n\n";

    const auto results = runner.run();
    const double ss_power = results.front().avgPower;

    TablePrinter table({"strategy", "mu*E[R]", "p95/mean svc",
                        "E[P] [W]", "vs SS power", "within budget?"});
    for (const ScenarioResult &result : results) {
        const double service_mean =
            result.meanResponse / result.normalizedMean;
        const double delta =
            100.0 * (result.avgPower / ss_power - 1.0);
        std::ostringstream cell;
        cell << (delta >= 0 ? "+" : "") << std::fixed
             << std::setprecision(1) << delta << "%";
        table.addRow({result.spec.strategy,
                      std::to_string(result.normalizedMean),
                      std::to_string(result.p95Response / service_mean),
                      std::to_string(result.avgPower), cell.str(),
                      result.withinBudget ? "yes" : "no"});
    }
    table.print(std::cout);

    std::cout << "\nExpected: SS lowest power within budget; DVFS-only "
                 "wastes power (no deeper\nsleep states and no "
                 "sleep-vs-speed trade); R2H variants pay the f = 1 "
                 "power\npremium (Figure 9a/9b of the paper).\n";
    return 0;
}
