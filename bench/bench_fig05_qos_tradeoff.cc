/**
 * @file
 * Regenerates Figure 5: the baseline-derived QoS constraint on the
 * power/performance trade-off (Google-like workload, C0(i)S0(i)) at
 * utilizations 0.1-0.4 with ρ_b = 0.8, i.e. a normalized mean response
 * budget of µE[R] = 1/(1-0.8) = 5.
 *
 * Expected: the curves shift up with ρ; at low ρ the unconstrained power
 * minimum already beats the budget (the paper's "bump" / exceeded-QoS
 * region, µE[R] ≈ 3 at ρ = 0.1), while from ρ ≈ 0.3 the constraint
 * binds and pushes f up. The paper reads optimal f ≈ {0.41, 0.46, 0.51,
 * 0.56} off its BigHouse-statistics simulation; the idealized closed
 * form puts them at {0.39, 0.46, 0.50, 0.60} (same shape, small offsets
 * from the non-exponential moments).
 */

#include <iostream>

#include "analytic/mm1_sleep.hh"
#include "bench_util.hh"
#include "util/table_printer.hh"

using namespace sleepscale;
using namespace sleepscale::bench;

int
main()
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec google = googleWorkload().idealized();
    const double mu = 1.0 / google.serviceMean;
    const double budget = 5.0; // mu*E[R] for rho_b = 0.8
    const MM1SleepModel model(xeon);

    printBanner(std::cout,
                "Figure 5: QoS-constrained trade-off (Google-like, "
                "C0(i)S0(i), rho_b = 0.8)");

    TablePrinter curves({"rho", "f", "mu*E[R]", "E[P] [W]"});
    TablePrinter optima({"rho", "f* (sim)", "f* (closed form)",
                         "mu*E[R] @ f*", "E[P]* [W]", "QoS exceeded?"});

    for (double rho : {0.1, 0.2, 0.3, 0.4}) {
        const auto jobs = idealJobs(google, rho, 30000, 140406);
        const auto curve = sweepFrequencies(
            xeon, google,
            SleepPlan::immediate(LowPowerState::C0IdleS0Idle), jobs,
            rho + 0.02, 0.01);
        for (std::size_t i = 0; i < curve.size(); i += 8) {
            curves.addRow({std::to_string(rho).substr(0, 3),
                           std::to_string(curve[i].frequency)
                               .substr(0, 4),
                           std::to_string(curve[i].normalizedResponse),
                           std::to_string(curve[i].power)});
        }
        const SweepPoint best = constrainedOptimum(curve, budget);

        // Closed-form optimum under the same constraint.
        double best_analytic_f = 1.0;
        double best_analytic_power = 1e18;
        const Policy base{
            1.0, SleepPlan::immediate(LowPowerState::C0IdleS0Idle)};
        for (double f = rho + 0.02; f <= 1.0; f += 0.005) {
            Policy policy = base;
            policy.frequency = f;
            const double response =
                model.meanResponse(policy, rho * mu, mu) * mu;
            if (response > budget)
                continue;
            const double power = model.meanPower(policy, rho * mu, mu);
            if (power < best_analytic_power) {
                best_analytic_power = power;
                best_analytic_f = f;
            }
        }

        optima.addRow(
            {std::to_string(rho).substr(0, 3),
             std::to_string(best.frequency).substr(0, 4),
             std::to_string(best_analytic_f).substr(0, 5),
             std::to_string(best.normalizedResponse),
             std::to_string(best.power),
             best.normalizedResponse < budget * 0.95 ? "yes (bump)"
                                                     : "no (binding)"});
    }
    curves.print(std::cout);
    std::cout << "\nQoS bar: mu*E[R] <= " << budget
              << " (baseline rho_b = 0.8 at f = 1)\n\n";
    optima.print(std::cout);
    std::cout << "\nPaper readings (BigHouse statistics): f* = 0.41, "
                 "0.46, 0.51, 0.56.\n";
    return 0;
}
