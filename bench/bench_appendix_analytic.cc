/**
 * @file
 * Regenerates the Appendix validation (Section 4.3): the closed-form
 * E[P], E[R], and Pr(R >= d) against the Algorithm 1 simulation, across
 * utilizations, frequencies, and low-power states. The paper states the
 * closed forms "match those presented in Figure 1"; this bench prints
 * the side-by-side numbers.
 */

#include <iostream>

#include "analytic/mm1_sleep.hh"
#include "bench_util.hh"
#include "util/table_printer.hh"

using namespace sleepscale;
using namespace sleepscale::bench;

int
main()
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MM1SleepModel model(xeon);
    const WorkloadSpec dns = dnsWorkload().idealized();
    const double mu = 1.0 / dns.serviceMean;

    printBanner(std::cout,
                "Appendix: closed forms vs Algorithm 1 simulation "
                "(DNS-like, N = 200k jobs)");

    TablePrinter table({"rho", "f", "state", "E[P] sim", "E[P] formula",
                        "E[R] sim", "E[R] formula"});

    std::uint64_t seed = 314159;
    for (double rho : {0.1, 0.3, 0.6}) {
        for (double f : {1.0, 0.7}) {
            if (f <= rho + 0.01)
                continue;
            for (LowPowerState state :
                 {LowPowerState::C0IdleS0Idle, LowPowerState::C3S0Idle,
                  LowPowerState::C6S0Idle, LowPowerState::C6S3}) {
                const Policy policy{f, SleepPlan::immediate(state)};
                const auto jobs = idealJobs(dns, rho, 200000, seed++);
                const PolicyEvaluation eval = evaluatePolicy(
                    xeon, dns.scaling, policy, jobs);

                table.addRow(
                    {std::to_string(rho).substr(0, 3),
                     std::to_string(f).substr(0, 3), toString(state),
                     std::to_string(eval.avgPower()),
                     std::to_string(
                         model.meanPower(policy, rho * mu, mu)),
                     std::to_string(eval.meanResponse()),
                     std::to_string(
                         model.meanResponse(policy, rho * mu, mu))});
            }
        }
    }
    table.print(std::cout);

    // The tail formula (single-state plans; exponential-setup form).
    printBanner(std::cout, "Appendix: Pr(R >= d) closed form");
    TablePrinter tail({"state", "d [s]", "Pr sim", "Pr formula"});
    const double rho = 0.2;
    const auto jobs = idealJobs(dns, rho, 400000, seed);
    for (LowPowerState state :
         {LowPowerState::C0IdleS0Idle, LowPowerState::C3S0Idle,
          LowPowerState::C6S0Idle}) {
        const Policy policy{1.0, SleepPlan::immediate(state)};
        const PolicyEvaluation eval =
            evaluatePolicy(xeon, dns.scaling, policy, jobs);
        for (double d : {0.1, 0.3, 0.6}) {
            tail.addRow(
                {toString(state), std::to_string(d).substr(0, 3),
                 std::to_string(
                     eval.stats.responseHistogram.exceedance(d)),
                 std::to_string(model.tailProbability(policy, rho * mu,
                                                      mu, d))});
        }
    }
    tail.print(std::cout);
    std::cout << "\nNote: the paper's tail closed form corresponds to an "
                 "exponentially\ndistributed setup time; it is exact for "
                 "w1 = 0 and tight while\nw1*(mu f - lambda) << 1 "
                 "(every state except C6S3, see mm1_sleep.hh).\n";
    return 0;
}
