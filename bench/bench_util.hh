/**
 * @file
 * Shared helpers for the per-figure bench harnesses.
 *
 * Every bench binary regenerates one table or figure of the paper: it
 * runs the same experiment (or the closest synthetic equivalent, see
 * DESIGN.md) and prints the rows/series the paper plots. These helpers
 * implement the recurring pieces: idealized and empirical job synthesis
 * (Section 4.1 methodology) and frequency sweeps of candidate policies.
 */

#ifndef SLEEPSCALE_BENCH_BENCH_UTIL_HH
#define SLEEPSCALE_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {
namespace bench {

/** Jobs for the idealized model: Poisson arrivals, exponential service. */
inline std::vector<Job>
idealJobs(const WorkloadSpec &spec, double rho, std::size_t count,
          std::uint64_t seed)
{
    Rng rng(seed);
    ExponentialDist gaps(spec.serviceMean / rho);
    ExponentialDist sizes(spec.serviceMean);
    return generateJobs(rng, gaps, sizes, count);
}

/** Jobs matching the workload's empirical (mean, Cv) statistics. */
inline std::vector<Job>
empiricalJobs(const WorkloadSpec &spec, double rho, std::size_t count,
              std::uint64_t seed)
{
    Rng rng(seed);
    return generateWorkloadJobs(rng, spec, rho, count);
}

/** One point of a frequency sweep. */
struct SweepPoint
{
    double frequency;
    double normalizedResponse; ///< µ E[R].
    double power;              ///< E[P], watts.
};

/**
 * Sweep a sleep plan across frequencies over a fixed job list
 * (the paper's Section 4.1 curve construction).
 */
inline std::vector<SweepPoint>
sweepFrequencies(const PlatformModel &platform, const WorkloadSpec &spec,
                 const SleepPlan &plan, const std::vector<Job> &jobs,
                 double f_min, double f_step = 0.01)
{
    std::vector<SweepPoint> curve;
    for (double f = f_min; f <= 1.0 + 1e-9; f += f_step) {
        const double clamped = std::min(f, 1.0);
        const PolicyEvaluation eval =
            evaluatePolicy(platform, spec.scaling, Policy{clamped, plan},
                           jobs);
        curve.push_back({clamped,
                         eval.meanResponse() / spec.serviceMean,
                         eval.avgPower()});
    }
    return curve;
}

/** The bowl bottom: minimum-power point of a sweep. */
inline SweepPoint
bowlOptimum(const std::vector<SweepPoint> &curve)
{
    SweepPoint best = curve.front();
    for (const SweepPoint &point : curve) {
        if (point.power < best.power)
            best = point;
    }
    return best;
}

/** Minimum power among points meeting a normalized-response budget. */
inline SweepPoint
constrainedOptimum(const std::vector<SweepPoint> &curve, double budget)
{
    SweepPoint best{1.0, 0.0, 1e18};
    bool found = false;
    for (const SweepPoint &point : curve) {
        if (point.normalizedResponse <= budget &&
            point.power < best.power) {
            best = point;
            found = true;
        }
    }
    if (!found) {
        // Infeasible: fall back to the fastest point.
        for (const SweepPoint &point : curve) {
            if (!found || point.normalizedResponse <
                              best.normalizedResponse) {
                best = point;
                found = true;
            }
        }
    }
    return best;
}

} // namespace bench
} // namespace sleepscale

#endif // SLEEPSCALE_BENCH_BENCH_UTIL_HH
