/**
 * @file
 * Regenerates Table 5: the workload characterizations (inter-arrival and
 * service mean/Cv). The BigHouse trace archive is replaced by moment-
 * matched distributions (DESIGN.md); this bench verifies that the
 * synthesized processes reproduce the table's statistics.
 */

#include <iostream>

#include "util/online_stats.hh"
#include "util/rng.hh"
#include "util/table_printer.hh"
#include "workload/workload_spec.hh"

using namespace sleepscale;

namespace {

OnlineStats
measure(const Distribution &dist, std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    OnlineStats stats;
    for (std::size_t i = 0; i < n; ++i)
        stats.add(dist.sample(rng));
    return stats;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Table 5: workload statistics (target vs synthesized)");

    TablePrinter table({"Workload", "Process", "Family", "Mean (paper)",
                        "Mean (measured)", "Cv (paper)",
                        "Cv (measured)"});
    constexpr std::size_t samples = 1000000;
    std::uint64_t seed = 2014;

    for (const WorkloadSpec &spec :
         {dnsWorkload(), mailWorkload(), googleWorkload()}) {
        // Inter-arrival process at the trace's native load.
        const auto arrivals =
            fitDistribution(spec.interArrivalMean, spec.interArrivalCv);
        const OnlineStats ia = measure(*arrivals, samples, seed++);
        table.addRow({spec.name, "inter-arrival", arrivals->name(),
                      std::to_string(spec.interArrivalMean),
                      std::to_string(ia.mean()),
                      std::to_string(spec.interArrivalCv),
                      std::to_string(ia.cv())});

        const auto service = spec.makeService();
        const OnlineStats svc = measure(*service, samples, seed++);
        table.addRow({spec.name, "service", service->name(),
                      std::to_string(spec.serviceMean),
                      std::to_string(svc.mean()),
                      std::to_string(spec.serviceCv),
                      std::to_string(svc.cv())});
    }
    table.print(std::cout);

    std::cout << "\nCv = 1 -> exponential; Cv < 1 -> gamma; Cv > 1 -> "
                 "balanced-means 2-phase\nhyperexponential (exact first "
                 "two moments in every case).\n";
    return 0;
}
