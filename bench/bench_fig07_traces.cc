/**
 * @file
 * Regenerates Figure 7: the 3-day minute-granularity utilization traces
 * (file server and email store). The departmental traces the paper uses
 * are not public; these synthetic equivalents reproduce their reported
 * structure — a periodic daily pattern, minute-scale fluctuation, and
 * abrupt nightly backup surges in the email store (DESIGN.md).
 *
 * The bench prints hourly means (the figure's visual shape) plus the
 * summary statistics the evaluation relies on.
 */

#include <iostream>

#include "util/online_stats.hh"
#include "util/table_printer.hh"
#include "workload/utilization_trace.hh"

using namespace sleepscale;

namespace {

void
describe(const UtilizationTrace &trace)
{
    printBanner(std::cout, "Figure 7: " + trace.name() + " (3 days)");

    TablePrinter hourly({"hour", "day1 mean", "day2 mean", "day3 mean"});
    for (unsigned hour = 0; hour < 24; ++hour) {
        std::vector<double> row = {static_cast<double>(hour)};
        for (unsigned day = 0; day < 3; ++day) {
            OnlineStats stats;
            for (unsigned m = 0; m < 60; ++m)
                stats.add(trace.at((day * 24 + hour) * 60 + m));
            row.push_back(stats.mean());
        }
        hourly.addRow(row, 3);
    }
    hourly.print(std::cout);

    std::cout << "\nmean = " << trace.meanUtilization()
              << ", peak = " << trace.peakUtilization()
              << ", minutes = " << trace.size() << '\n';

    const UtilizationTrace window = trace.dailyWindow(2, 20);
    std::cout << "2AM-8PM evaluation window: mean = "
              << window.meanUtilization()
              << ", peak = " << window.peakUtilization() << '\n';
}

} // namespace

int
main()
{
    describe(synthFileServerTrace(3, 20140614));
    describe(synthEmailStoreTrace(3, 20140614));

    std::cout << "\nExpected structure: file server stays in "
                 "[0.02, 0.2] with a mild diurnal\nswell; email store "
                 "ranges up to ~0.9 with abrupt surges during the "
                 "nightly\nbackup window (8PM-2AM), matching the paper's "
                 "description of its hosts.\n";
    return 0;
}
