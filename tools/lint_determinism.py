#!/usr/bin/env python3
"""Determinism lint: ban nondeterminism sources in src/.

The reproduction's core claim — parallel runs are bit-identical to
serial, and every result is reproducible from an explicit seed — dies
the moment wall clocks, ambient entropy, machine topology, or hash
iteration order leak into a simulation path. This lint bans those
sources at the line level (docs/CONCURRENCY.md states each rule's
rationale):

  libc-rand             rand()/srand(): unseeded-by-contract global
                        state; use util/rng.hh (xoshiro256++, explicit
                        seed).
  random-device         std::random_device: ambient entropy, different
                        every run; derive streams from the scenario
                        seed via mixSeed()/Rng::fork() instead.
  wall-clock            time(nullptr/NULL/0), std::chrono *_clock::now:
                        wall-clock reads make results time-of-day
                        dependent; simulated time comes from the event
                        loop, and timing benches belong in bench/ (not
                        linted).
  hardware-concurrency  std::thread::hardware_concurrency outside
                        src/util/thread_pool.cc: machine topology must
                        only ever size worker pools and scratch arenas
                        (ThreadPool::hardwareLanes), never shape a
                        result.
  unordered-container   std::unordered_map/std::unordered_set anywhere
                        in src/: iteration order is unspecified and
                        libstdc++-version dependent, so any reduction
                        over one (experiment summaries, farm report
                        merges) silently loses bit-reproducibility; use
                        std::map or index-keyed vectors.

False positives are silenced in tools/determinism_allowlist.txt with
``<path-glob> <rule-id>`` lines — an entry applies the exemption to the
whole file, so keep entries narrow and justified with a trailing
comment.

Usage: tools/lint_determinism.py [file ...]   (defaults to src/**/*.{hh,cc})
Exits 1 if any violation remains after the allowlist.
"""

import fnmatch
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ALLOWLIST = REPO_ROOT / "tools" / "determinism_allowlist.txt"
DEFAULT_GLOBS = ("src/**/*.hh", "src/**/*.cc")

# rule id -> (line regex, message). Regexes run on code with comments
# and string/char literals stripped, so documentation may mention the
# banned names freely.
RULES = {
    "libc-rand": (
        re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\("),
        "libc rand()/srand() is hidden global state; draw from "
        "util/rng.hh (explicit seed) instead",
    ),
    "random-device": (
        re.compile(r"\brandom_device\b"),
        "std::random_device is ambient entropy; derive streams from "
        "the scenario seed (mixSeed()/Rng::fork()) instead",
    ),
    "wall-clock": (
        re.compile(
            r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
            r"|\b(?:system|steady|high_resolution|utc|tai|gps|file)"
            r"_clock\s*::\s*now\b"),
        "wall-clock reads make results time-of-day dependent; "
        "simulated time advances through the run loop, and timing "
        "harnesses belong in bench/",
    ),
    "hardware-concurrency": (
        re.compile(r"\bhardware_concurrency\b"),
        "machine topology may only size worker pools; call "
        "ThreadPool::hardwareLanes() (src/util/thread_pool.cc) so lane "
        "counts never shape a result",
    ),
    "unordered-container": (
        re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
        "iteration order over hashed containers is unspecified, so "
        "reductions over them are not bit-reproducible; use std::map "
        "or an index-keyed vector",
    ),
}

STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'')


def load_allowlist():
    """Parse ``<glob> <rule-id>`` lines; '#' starts a comment."""
    entries = []
    if not ALLOWLIST.exists():
        return entries
    for number, raw in enumerate(ALLOWLIST.read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2 or parts[1] not in RULES:
            print("%s:%d: error: malformed allowlist entry %r "
                  "(want: <path-glob> <rule-id>; rules: %s)" %
                  (ALLOWLIST.relative_to(REPO_ROOT), number, raw.strip(),
                   ", ".join(sorted(RULES))), file=sys.stderr)
            sys.exit(2)
        entries.append((parts[0], parts[1]))
    return entries


def allowed(entries, rel_path, rule):
    return any(fnmatch.fnmatch(rel_path, glob) and rule == rule_id
               for glob, rule_id in entries)


def strip_code(text):
    """Yield (line_number, code) with comments and literals blanked."""
    in_block = False
    for number, line in enumerate(text.splitlines(), 1):
        code = STRING_RE.sub('""', line)
        out = []
        i = 0
        while i < len(code):
            if in_block:
                end = code.find("*/", i)
                if end == -1:
                    i = len(code)
                else:
                    in_block = False
                    i = end + 2
            elif code.startswith("//", i):
                break
            elif code.startswith("/*", i):
                in_block = True
                i += 2
            else:
                out.append(code[i])
                i += 1
        yield number, "".join(out)


def lint_file(path, entries):
    violations = []
    try:
        rel = str(path.resolve().relative_to(REPO_ROOT))
    except ValueError:
        rel = str(path)
    for number, code in strip_code(path.read_text()):
        for rule, (pattern, message) in RULES.items():
            if pattern.search(code) and not allowed(entries, rel, rule):
                violations.append(
                    "%s:%d: error: [%s] %s" % (rel, number, rule, message))
    return violations


def main(argv):
    if len(argv) > 1:
        paths = [Path(arg) for arg in argv[1:]]
    else:
        paths = []
        for pattern in DEFAULT_GLOBS:
            paths.extend(sorted(REPO_ROOT.glob(pattern)))
    if not paths:
        print("lint_determinism: no files matched", file=sys.stderr)
        return 1

    entries = load_allowlist()
    violations = []
    for path in paths:
        violations.extend(lint_file(path, entries))

    for violation in violations:
        print(violation)
    if violations:
        print("lint_determinism: %d violation(s) in %d file(s) "
              "(allowlist: %s)" %
              (len(violations), len(paths),
               ALLOWLIST.relative_to(REPO_ROOT)), file=sys.stderr)
        return 1
    print("lint_determinism: %d file(s) clean" % len(paths))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
