#!/bin/sh
# clang-tidy driver over the library sources.
#
#   tools/run_clang_tidy.sh [file.cc ...]
#
# With no arguments, lints every src/**/*.cc translation unit (headers
# ride along through HeaderFilterRegex in .clang-tidy); with arguments,
# lints exactly those files — that is the incremental mode CMake hooks
# or a pre-commit step can call with the changed files only.
#
# Needs a compilation database; configures one into $BUILD_DIR (default
# build/) if it is missing. Pin the binary with CLANG_TIDY=clang-tidy-18
# (what the CI job does). Exits nonzero on any finding: .clang-tidy
# sets WarningsAsErrors: '*'.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${BUILD_DIR:-"$repo_root/build"}
clang_tidy=${CLANG_TIDY:-clang-tidy}

if ! command -v "$clang_tidy" >/dev/null 2>&1; then
    echo "run_clang_tidy: '$clang_tidy' not found" \
         "(set CLANG_TIDY=clang-tidy-<N> or install clang-tidy)" >&2
    exit 1
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    # CMakeLists.txt always exports compile commands; any configure of
    # the tree produces the database.
    cmake -B "$build_dir" -S "$repo_root" >/dev/null
fi

if [ "$#" -gt 0 ]; then
    files=$*
else
    files=$(find "$repo_root/src" -name '*.cc' | sort)
fi

jobs=$(nproc 2>/dev/null || echo 4)
# shellcheck disable=SC2086 # word-splitting the file list is intended
echo $files | tr ' ' '\n' | xargs -P "$jobs" -n 4 \
    "$clang_tidy" -p "$build_dir" --quiet
echo "run_clang_tidy: clean"
