#!/bin/sh
# Snapshot the benchmark suites into the repo so the perf/robustness
# trajectory is tracked in version control from PR 2 onward.
#
#   tools/bench_snapshot.sh [build-dir]
#
# Runs bench_perf_policy_eval with JSON output and writes the result to
# BENCH_policy_eval.json at the repo root. Compare snapshots across
# commits to spot regressions in BM_SelectFromLog / BM_EvaluatePolicy10k.
# BENCH_MIN_TIME (seconds per benchmark) tunes fidelity vs runtime.
#
# Also runs bench_farm_faults --json into BENCH_farm_faults.json: the
# goodput and energy-per-job overhead of server churn at {0%, 0.1%, 1%}
# (docs/FAULTS.md). A drift in the churn=0 row means the fault layer
# leaked into the fault-free path — the farm_fault_test pins should
# have caught it first.
#
# Also runs bench_controller --json into BENCH_controller.json: the
# O(1) feedback controller's decision cost vs the full and pruned
# searches, burst-recovery epochs, paired energy/QoS deltas with CIs,
# and the 10k-server per-server fan-out time (docs/CONTROL.md).
#
# Also runs bench_offline_opt --json into BENCH_offline_opt.json: the
# regret of SS / pruned / poet / degraded-fallback vs the offline-
# optimal oracle on the Table 5 workloads (95% CIs), FPTAS runtime vs
# epsilon, and the FPTAS-vs-exact speedup (docs/OFFLINE_OPT.md).
#
# Also runs bench_farm_scale --json into BENCH_farm_scale.json: the
# streaming throughput (jobs per wall second) of the event-driven farm
# core at farm sizes {100, 1k, 10k} (docs/FARM_SCALE.md). A collapse
# on the 10k row means a per-arrival or per-epoch O(N) scan crept back
# into the farm path.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench="$build_dir/bench_perf_policy_eval"

if [ ! -x "$bench" ]; then
    echo "error: $bench not built; run tools/ci.sh (needs Google \
Benchmark)" >&2
    exit 1
fi

"$bench" --benchmark_min_time="${BENCH_MIN_TIME:-0.5}" \
         --benchmark_format=json \
         > "$repo_root/BENCH_policy_eval.json"
echo "wrote $repo_root/BENCH_policy_eval.json"

faults_bench="$build_dir/bench_farm_faults"
if [ ! -x "$faults_bench" ]; then
    echo "error: $faults_bench not built; run tools/ci.sh" >&2
    exit 1
fi

"$faults_bench" --json > "$repo_root/BENCH_farm_faults.json"
echo "wrote $repo_root/BENCH_farm_faults.json"

controller_bench="$build_dir/bench_controller"
if [ ! -x "$controller_bench" ]; then
    echo "error: $controller_bench not built; run tools/ci.sh" >&2
    exit 1
fi

"$controller_bench" --json > "$repo_root/BENCH_controller.json"
echo "wrote $repo_root/BENCH_controller.json"

offline_opt_bench="$build_dir/bench_offline_opt"
if [ ! -x "$offline_opt_bench" ]; then
    echo "error: $offline_opt_bench not built; run tools/ci.sh" >&2
    exit 1
fi

"$offline_opt_bench" --json > "$repo_root/BENCH_offline_opt.json"
echo "wrote $repo_root/BENCH_offline_opt.json"

farm_scale_bench="$build_dir/bench_farm_scale"
if [ ! -x "$farm_scale_bench" ]; then
    echo "error: $farm_scale_bench not built; run tools/ci.sh" >&2
    exit 1
fi

"$farm_scale_bench" --json > "$repo_root/BENCH_farm_scale.json"
echo "wrote $repo_root/BENCH_farm_scale.json"
