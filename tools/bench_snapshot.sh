#!/bin/sh
# Snapshot the policy-evaluation benchmark suite into the repo so the
# perf trajectory is tracked in version control from PR 2 onward.
#
#   tools/bench_snapshot.sh [build-dir]
#
# Runs bench_perf_policy_eval with JSON output and writes the result to
# BENCH_policy_eval.json at the repo root. Compare snapshots across
# commits to spot regressions in BM_SelectFromLog / BM_EvaluatePolicy10k.
# BENCH_MIN_TIME (seconds per benchmark) tunes fidelity vs runtime.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench="$build_dir/bench_perf_policy_eval"

if [ ! -x "$bench" ]; then
    echo "error: $bench not built; run tools/ci.sh (needs Google \
Benchmark)" >&2
    exit 1
fi

"$bench" --benchmark_min_time="${BENCH_MIN_TIME:-0.5}" \
         --benchmark_format=json \
         > "$repo_root/BENCH_policy_eval.json"
echo "wrote $repo_root/BENCH_policy_eval.json"
