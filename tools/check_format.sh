#!/bin/sh
# Check-only clang-format gate (never rewrites anything).
#
#   tools/check_format.sh [file ...]
#
# With no arguments, checks the conformance list below — the files the
# static-analysis layer introduced or rewrote against .clang-format.
# The list is additive: when a PR formats a file, append it here, and
# never reformat files an unrelated PR touches (that is review churn;
# see .clang-format's header comment).
#
# Pin the binary with CLANG_FORMAT=clang-format-18 (what the CI job
# does). Locally, a missing clang-format skips with a notice so
# tools/ci.sh stays runnable on gcc-only boxes; CI installs the pinned
# version, so the gate is always enforced there.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
clang_format=${CLANG_FORMAT:-clang-format}

# Files maintained in strict .clang-format conformance.
conformant="
src/util/mutex.hh
src/util/thread_annotations.hh
src/util/thread_pool.cc
src/util/thread_pool.hh
"

if ! command -v "$clang_format" >/dev/null 2>&1; then
    echo "check_format: '$clang_format' not installed; skipping" \
         "(CI runs the pinned clang-format-18)"
    exit 0
fi

if [ "$#" -gt 0 ]; then
    files=$*
else
    files=$(for f in $conformant; do echo "$repo_root/$f"; done)
fi

status=0
for file in $files; do
    if ! "$clang_format" --dry-run --Werror "$file"; then
        status=1
    fi
done
if [ "$status" -ne 0 ]; then
    echo "check_format: style drift; run '$clang_format -i <file>'" \
         "and re-check" >&2
    exit 1
fi
echo "check_format: $(echo "$files" | wc -w | tr -d ' ') file(s) clean"
exit 0
