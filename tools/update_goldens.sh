#!/bin/sh
# Regenerate the golden decision snapshots under tests/golden/.
#
#   tools/update_goldens.sh [build-dir]
#
# Rebuilds golden_snapshot_test (Release) and reruns it with
# SLEEPSCALE_UPDATE_GOLDENS=1, which rewrites the committed per-epoch
# (frequency, sleep-state) decision CSVs for the Table 5 workloads.
# Run this ONLY after an intended behavior change, then review the git
# diff of tests/golden/ — it shows exactly which epoch decisions moved.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)" \
      --target golden_snapshot_test
SLEEPSCALE_UPDATE_GOLDENS=1 "$build_dir/golden_snapshot_test"

echo "goldens regenerated under $repo_root/tests/golden/"
echo "review 'git diff tests/golden' before committing"
