#!/usr/bin/env python3
"""Documentation lint for the audited public headers (src/control,
src/farm, src/fault, src/experiment).

Fails (exit 1) with a file:line warning for every public declaration that
carries no documentation comment. The rules mirror what Doxygen's
WARN_IF_UNDOCUMENTED reports for this codebase's comment style, so the
check runs in CI even where the doxygen binary is not installed (the
tracked Doxyfile drives the identical check where it is):

  - every header starts with a file-level ``/** @file`` comment;
  - every top-level class/struct/enum/using/function declaration is
    preceded by a ``/** ... */`` block (or ``///`` line);
  - every public member (field, method, nested type) is preceded by a
    doc block or documented in place with a trailing ``///<``;
  - ``override`` members, ``= default``/``= delete`` members, and
    private/protected sections are exempt.

Usage: tools/doc_lint.py [header ...]   (defaults to the audited set)
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_GLOBS = ("src/analytic/*.hh", "src/control/*.hh",
                 "src/farm/*.hh", "src/experiment/*.hh",
                 "src/fault/*.hh")

ACCESS_RE = re.compile(r"^\s*(public|protected|private)\s*:")
TYPE_OPEN_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?(class|struct|enum(?:\s+class)?|union)"
    r"\s+(\w+)")
EXEMPT_RE = re.compile(r"\boverride\b|=\s*delete|=\s*default")


def strip_strings(line):
    """Blank out string/char literals so braces inside them don't count."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


class Scope:
    def __init__(self, kind, access, documented):
        self.kind = kind              # "type", "namespace", or "block"
        self.access = access          # current access inside a type
        self.documented = documented  # the scope itself carried a doc


def lint_file(path):
    warnings = []
    text = path.read_text()
    lines = text.splitlines()

    if not re.search(r"/\*\*\s*\n\s*\*\s*@file", text):
        warnings.append((path, 1, "missing /** @file ... */ header"))

    scopes = []          # mirrors brace nesting
    pending_doc = False  # a doc comment directly precedes the cursor
    in_comment = False
    comment_is_doc = False  # the open comment is /** or /*! (not /*)
    decl = ""            # accumulating a (possibly multi-line) declaration
    decl_line = 0
    decl_doc = False

    def decl_scope():
        """Innermost scope a declaration at this point belongs to."""
        return scopes[-1] if scopes else None

    def check(declaration, line_no, documented):
        declaration = " ".join(declaration.split())
        if not declaration or declaration.startswith("}"):
            return
        scope = decl_scope()
        if scope is not None and scope.kind == "block":
            return  # Statements inside an inline body.
        in_type = scope is not None and scope.kind == "type"
        if in_type and scope.access != "public":
            return
        if EXEMPT_RE.search(declaration):
            return
        if re.match(r"^(public|protected|private)\s*:", declaration):
            return
        if declaration.startswith(("friend ", "typedef ")):
            return
        if "///<" in declaration:
            return
        if not documented:
            where = "public member" if in_type else "declaration"
            warnings.append(
                (path, line_no,
                 "undocumented %s: %s" %
                 (where, declaration[:60])))

    for i, raw in enumerate(lines, start=1):
        line = raw

        # ---- comment tracking ----
        if in_comment:
            if "*/" in line:
                in_comment = False
                # Only a documentation comment (/** or /*!) counts;
                # a plain /* ... */ block does not document anything.
                pending_doc = comment_is_doc
            continue
        stripped = line.strip()
        if stripped.startswith("/**") or stripped.startswith("/*!"):
            if "*/" not in stripped:
                in_comment = True
                comment_is_doc = True
            else:
                pending_doc = True
            continue
        if stripped.startswith("///") or stripped.startswith("//!"):
            pending_doc = True
            continue
        if stripped.startswith("//") or stripped.startswith("/*"):
            if stripped.startswith("/*") and "*/" not in stripped:
                in_comment = True
                comment_is_doc = False
            continue
        if not stripped or stripped.startswith("#"):
            if not decl:
                # Blank lines and preprocessor lines break the doc bond.
                pending_doc = False
            continue

        code = strip_strings(line.split("//")[0])
        bare = code.strip()

        # ---- access specifiers ----
        access = ACCESS_RE.match(bare)
        if access and scopes and scopes[-1].kind == "type":
            scopes[-1].access = access.group(1)
            pending_doc = False
            continue

        if bare.startswith("namespace") and "{" in bare:
            scopes.append(Scope("namespace", "public", True))
            pending_doc = False
            continue

        # ---- declaration accumulation ----
        if not decl:
            decl_line = i
            decl_doc = pending_doc
        if "///<" in raw:
            decl_doc = True  # Documented in place, trailing style.
        decl += " " + bare
        pending_doc = False

        opens = code.count("{")
        closes = code.count("}")

        terminated = False
        if opens > closes:
            # A scope opens: type, function body, or initializer.
            joined = " ".join(decl.split())
            type_open = TYPE_OPEN_RE.match(joined)
            check(joined, decl_line, decl_doc)
            if type_open:
                kind = "type"
                default_access = ("private"
                                  if type_open.group(1) == "class"
                                  else "public")
                scopes.append(Scope(kind, default_access, decl_doc))
            else:
                scopes.append(Scope("block", "public", True))
            # Inline one-liner bodies ("double x() { return _x; }")
            # close again on the same line.
            for _ in range(closes):
                if scopes:
                    scopes.pop()
            decl = ""
            terminated = True
        elif closes > opens:
            for _ in range(closes - opens):
                if scopes:
                    scopes.pop()
            decl = ""
            terminated = True
        elif ";" in bare or (opens and opens == closes):
            joined = " ".join(decl.split())
            if not joined.lstrip().startswith("}"):
                check(joined, decl_line, decl_doc)
            decl = ""
            terminated = True

        if not terminated and len(decl) > 4000:
            decl = ""  # Safety valve; never triggered by sane headers.

    return warnings


def main(argv):
    if len(argv) > 1:
        paths = [Path(arg) for arg in argv[1:]]
    else:
        paths = []
        for pattern in DEFAULT_GLOBS:
            paths.extend(sorted(REPO_ROOT.glob(pattern)))
    if not paths:
        print("doc_lint: no headers matched", file=sys.stderr)
        return 1

    warnings = []
    for path in paths:
        warnings.extend(lint_file(path))

    for path, line, message in warnings:
        try:
            shown = path.relative_to(REPO_ROOT)
        except ValueError:
            shown = path
        print("%s:%d: warning: %s" % (shown, line, message))

    if warnings:
        print("doc_lint: %d documentation warning(s) in %d header(s)" %
              (len(warnings), len(paths)), file=sys.stderr)
        return 1
    print("doc_lint: %d header(s) clean" % len(paths))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
