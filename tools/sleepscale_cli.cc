/**
 * @file
 * The `sleepscale` command-line tool: run any of the library's
 * experiments without writing C++.
 *
 *   sleepscale sweep  [--workload dns] [--rho 0.1] [--state C6S3]
 *                     [--fstep 0.02] [--jobs 20000] [--seed 1]
 *   sleepscale select [--workload dns] [--rho 0.3] [--rho-b 0.8]
 *                     [--metric mean|tail] [--analytic] [--seed 1]
 *   sleepscale run    [--trace es|fs|<file.csv>] [--workload dns]
 *                     [--T 5] [--alpha 0.35] [--predictor LC]
 *                     [--rho-b 0.8] [--days 1] [--seed 1]
 *                     [--strategy SS] [--epochs-csv out.csv]
 *                     [--source trace|stationary|bursty] [--util 0.3]
 *                     [--burst-factor 4] [--burst-len 120]
 *                     [--burst-gap 1800] [--replay jobs.csv]
 *                     [--replications N] [--decision-time]
 *                     [--regret] [--opt-epsilon 0.05]
 *                     [--controller-q 1e-4] [--controller-r 1e-2]
 *                     [--controller-pole 0] [--controller-period 1]
 *   sleepscale trace  [--kind es|fs] [--days 3] [--seed 42]
 *                     [--out trace.csv]
 *   sleepscale farm   [--servers 4] [--dispatcher packing]
 *                     [--control farm-wide|per-server]
 *                     [--platform xeon] [--platforms xeon,atom,...]
 *                     [--decision-threads 0] [--trace es|fs]
 *                     [--workload dns] [--T 5] [--alpha 0.35] [--seed 1]
 *                     [--faults none|mtbf|correlated] [--mtbf 14400]
 *                     [--mttr 300] [--retry-backoff 1]
 *                     [--drop-timeout 300] [--fault-compare]
 *   sleepscale grid   [--engine single|farm] [--sweep-T 1,5,10]
 *                     [--sweep-predictor LC,NP] [--sweep-strategy ...]
 *                     [--sweep-dispatcher ...] [--sweep-servers ...]
 *                     [--sweep-alpha ...] [--sweep-control ...]
 *                     [--threads 0] [--csv out.csv]
 *                     plus any base option of run/farm
 *
 * run, farm, and grid accept --replications N (N >= 2): the scenario
 * is replicated N times under derived seeds and every metric prints as
 * mean ± 95% Student-t CI instead of a single-seed point estimate
 * (docs/STATISTICS.md).
 *
 * run, farm, and grid are thin shells over the unified experiment API:
 * they describe a ScenarioSpec (or a sweep grid of them) and hand it to
 * ExperimentRunner, which executes grids concurrently. Every component
 * is resolved by registry name, so `--dispatcher pakcing` fails fast
 * listing the registered spellings. Arrivals stream from a named job
 * source (--source / --replay); nothing is materialized, so day-scale
 * runs with millions of jobs use bounded memory.
 *
 * Every command prints aligned tables to stdout; numbers are watts and
 * seconds unless stated otherwise.
 */

#include <cmath>
#include <iostream>
#include <sstream>

#include "analytic/mm1_sleep.hh"
#include "core/policy_manager.hh"
#include "core/predictor.hh"
#include "core/strategies.hh"
#include "experiment/replication.hh"
#include "experiment/runner.hh"
#include "farm/dispatcher.hh"
#include "fault/fault_source.hh"
#include "util/cli_args.hh"
#include "util/error.hh"
#include "util/table_printer.hh"
#include "workload/job_source.hh"
#include "workload/job_stream.hh"

using namespace sleepscale;

namespace {

const std::set<std::string> knownOptions = {
    "workload",   "rho",        "state",      "fstep",
    "jobs",       "seed",       "rho-b",      "metric",
    "analytic",   "trace",      "T",          "alpha",
    "predictor",  "days",       "epochs-csv", "kind",
    "out",        "servers",    "dispatcher", "strategy",
    "engine",     "threads",    "csv",        "sweep-T",
    "sweep-predictor", "sweep-strategy", "sweep-dispatcher",
    "sweep-servers", "sweep-alpha", "sweep-control", "help",
    "source",     "replay",     "util",       "burst-factor",
    "burst-len",  "burst-gap",  "platform",   "platforms",
    "control",    "decision-threads", "replications",
    "faults",     "mtbf",       "mttr",       "retry-backoff",
    "drop-timeout", "fault-compare",
    "controller-q", "controller-r", "controller-pole",
    "controller-period", "decision-time",
    "regret",     "opt-epsilon",
    "shards",     "no-tail-histograms",
};

QosMetric
metricByName(const std::string &name)
{
    if (name == "mean")
        return QosMetric::MeanResponse;
    if (name == "tail")
        return QosMetric::TailResponse;
    fatal("unknown metric '" + name + "' (mean | tail)");
}

double
numberOrFatal(const std::string &item, const std::string &option)
{
    try {
        std::size_t used = 0;
        const double value = std::stod(item, &used);
        fatalIf(used != item.size(),
                "--" + option + ": bad number '" + item + "'");
        return value;
    } catch (const ConfigError &) {
        throw;
    } catch (const std::exception &) {
        fatal("--" + option + ": bad number '" + item + "'");
    }
}

unsigned long
positiveIntOrFatal(const std::string &item, const std::string &option)
{
    const double value = numberOrFatal(item, option);
    fatalIf(value < 1.0 || value > 1e9 ||
                value != static_cast<double>(
                             static_cast<unsigned long>(value)),
            "--" + option + ": '" + item +
                "' must be a positive integer");
    return static_cast<unsigned long>(value);
}

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> items;
    std::istringstream in(text);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (!item.empty())
            items.push_back(item);
    }
    return items;
}

/** The scenario described by the shared base options of run/farm/grid. */
ScenarioBuilder
scenarioFromArgs(const CliArgs &args, EngineKind engine)
{
    ScenarioBuilder builder(toString(engine));
    builder.engine(engine)
        .workload(args.get("workload", "dns"))
        .platform(args.get("platform", "xeon"))
        .strategy(args.get("strategy", "SS"))
        .epochMinutes(
            static_cast<unsigned>(args.getUnsigned("T", 5)))
        .overProvision(args.getDouble("alpha", 0.35))
        .rhoB(args.getDouble("rho-b", 0.8))
        .qosMetric(metricByName(args.get("metric", "mean")))
        .predictor(args.get("predictor", "LC"))
        .farmSize(args.getUnsigned("servers", 4))
        .dispatcher(args.get("dispatcher", "packing"))
        .farmControl(args.get("control", "farm-wide"))
        .farmShards(args.getUnsigned("shards", 1))
        .tailHistograms(!args.has("no-tail-histograms"))
        .decisionThreads(args.getUnsigned("decision-threads", 0))
        .faults(args.get("faults", "none"))
        .faultRates(args.getDouble("mtbf", 4.0 * 3600.0),
                    args.getDouble("mttr", 300.0))
        .retryBackoff(args.getDouble("retry-backoff", 1.0))
        .dropTimeout(args.getDouble("drop-timeout", 300.0))
        .controllerNoise(args.getDouble("controller-q", 1e-4),
                         args.getDouble("controller-r", 1e-2))
        .controllerPole(args.getDouble("controller-pole", 0.0))
        .controllerPeriod(static_cast<unsigned>(
            args.getUnsigned("controller-period", 1)))
        .recordDecisionTime(args.has("decision-time"))
        .replications(args.getUnsigned("replications", 1))
        .seed(args.getUnsigned("seed", 1));
    // --platforms xeon,xeon,atom,atom names one platform per server
    // (and pins the farm size to the list length); an explicit
    // --servers must agree rather than be silently overridden.
    if (args.has("platforms")) {
        const auto platforms = splitCsv(args.get("platforms", ""));
        fatalIf(args.has("servers") &&
                    args.getUnsigned("servers", 0) != platforms.size(),
                "--platforms lists " + std::to_string(platforms.size()) +
                    " platforms but --servers asks for " +
                    args.get("servers", "") +
                    " (drop --servers or make them agree)");
        builder.farmPlatforms(platforms);
    }

    const std::string trace = args.get("trace", "es");
    builder.trace(trace)
        .traceDays(static_cast<unsigned>(args.getUnsigned("days", 1)))
        .traceSeed(20140614);
    if (trace == "es" || trace == "fs")
        builder.window(2, 20); // The paper's evaluation window.

    // Job source: which stream feeds the engine. --replay implies the
    // replay source; otherwise --source names a registered shape.
    builder.source(args.get("source", "trace"))
        .sourceUtilization(args.getDouble("util", 0.3))
        .burstiness(args.getDouble("burst-factor", 4.0),
                    args.getDouble("burst-len", 120.0),
                    args.getDouble("burst-gap", 1800.0));
    if (args.has("replay"))
        builder.replayPath(args.get("replay", ""));
    return builder;
}

int
cmdSweep(const CliArgs &args)
{
    const WorkloadSpec workload =
        workloadByName(args.get("workload", "dns"));
    const double rho = args.getDouble("rho", 0.1);
    const LowPowerState state =
        lowPowerStateFromString(args.get("state", "C6S3"));
    const double fstep = args.getDouble("fstep", 0.02);
    const auto count = args.getUnsigned("jobs", 20000);
    const PlatformModel platform = PlatformModel::xeon();

    Rng rng(args.getUnsigned("seed", 1));
    const auto jobs =
        generateWorkloadJobs(rng, workload, rho, count);

    TablePrinter table({"f", "mu*E[R]", "p95*mu", "E[P] [W]"});
    for (double f = rho + 0.02; f <= 1.0 + 1e-9; f += fstep) {
        const Policy policy{std::min(f, 1.0),
                            SleepPlan::immediate(state)};
        const PolicyEvaluation eval = evaluatePolicy(
            platform, workload.scaling, policy, jobs);
        table.addRow({policy.frequency,
                      eval.meanResponse() / workload.serviceMean,
                      eval.p95Response() / workload.serviceMean,
                      eval.avgPower()},
                     3);
    }
    table.print(std::cout);
    return 0;
}

int
cmdSelect(const CliArgs &args)
{
    const WorkloadSpec workload =
        workloadByName(args.get("workload", "dns"));
    const double rho = args.getDouble("rho", 0.3);
    const double rho_b = args.getDouble("rho-b", 0.8);
    const QosMetric metric = metricByName(args.get("metric", "mean"));
    const PlatformModel platform = PlatformModel::xeon();

    const QosConstraint qos =
        metric == QosMetric::MeanResponse
            ? QosConstraint::fromBaselineMean(rho_b,
                                              workload.serviceMean)
            : QosConstraint::fromBaselineTail(rho_b,
                                              workload.serviceMean);
    const PolicyManager manager(
        platform, workload.scaling,
        PolicySpace::allStates(PolicySpace::frequencyGrid(0.12, 1.0,
                                                          0.01)),
        qos);

    PolicyDecision decision;
    if (args.has("analytic")) {
        const double mu = 1.0 / workload.serviceMean;
        decision = manager.selectAnalytic(rho * mu, mu);
    } else {
        Rng rng(args.getUnsigned("seed", 1));
        const auto jobs =
            generateWorkloadJobs(rng, workload, rho, 20000);
        decision = manager.selectFromLog(jobs);
    }

    std::cout << "policy:    " << decision.policy.toString() << '\n'
              << "power:     " << decision.predictedPower << " W\n"
              << toString(metric) << " value: "
              << decision.predictedMetric << " s (budget "
              << qos.budget() << " s)\n"
              << "feasible:  " << (decision.feasible ? "yes" : "no")
              << "  (" << decision.evaluated << " candidates)\n";
    return 0;
}

/**
 * Mean ± CI summary of a replicated run, one line per headline metric.
 */
void
printReplicatedSummary(const ReplicatedResult &result)
{
    const int level =
        static_cast<int>(std::lround(result.confidence * 100.0));
    std::cout << "replications:  " << result.replications.size()
              << "  (mean ± " << level << "% CI, seeds derived from "
              << result.spec.seed << ")\n"
              << "mean response: "
              << result.metric("mean_response_s").toString() << " s\n"
              << "p95 response:  "
              << result.metric("p95_response_s").toString() << " s\n"
              << "p99 response:  "
              << result.metric("p99_response_s").toString() << " s\n"
              << "avg power:     "
              << result.metric("avg_power_w").toString() << " W\n"
              << "energy:        "
              << result.metric("energy_j").toString() << " J\n"
              << "QoS violated:  "
              << 100.0 * result.metric("qos_violation").mean()
              << "% of replications\n";
    if (result.spec.reportRegret)
        std::cout << "oracle energy: "
                  << result.metric("offline_opt_energy").toString()
                  << " J\n"
                  << "regret:        "
                  << result.metric("regret_pct").toString() << " %\n";
}

int
cmdRun(const CliArgs &args)
{
    ScenarioBuilder builder =
        scenarioFromArgs(args, EngineKind::SingleServer);
    if (args.has("epochs-csv"))
        builder.captureEpochs();
    if (args.has("regret"))
        builder.reportRegret().optEpsilon(
            args.getDouble("opt-epsilon", 0.05));
    if (args.getUnsigned("replications", 1) > 1) {
        fatalIf(args.has("epochs-csv"),
                "run: --epochs-csv needs a single run (drop "
                "--replications)");
        const ScenarioSpec spec = builder.build();
        printReplicatedSummary(ExperimentRunner::runReplicated(
            spec, args.getUnsigned("threads", 0)));
        return 0;
    }
    const ScenarioResult result =
        ExperimentRunner::runScenario(builder.build());

    std::cout << "jobs:          " << result.jobs << '\n'
              << "mean response: " << result.meanResponse << " s  ("
              << result.normalizedMean << " service times)\n"
              << "p95 response:  " << result.p95Response << " s\n"
              << "avg power:     " << result.avgPower << " W\n"
              << "within budget: "
              << (result.withinBudget ? "yes" : "no") << '\n';

    std::cout << "state mix:    ";
    for (const auto &[key, value] : result.extras) {
        if (key.rfind("state_", 0) == 0)
            std::cout << ' ' << key.substr(6) << '=' << value;
    }
    std::cout << '\n';

    if (args.has("decision-time"))
        std::cout << "decision cost: "
                  << result.extra("decision_us_mean") << " µs mean, "
                  << result.extra("decision_us_p99") << " µs p99\n";

    if (args.has("regret"))
        std::cout << "oracle energy: "
                  << result.extra("offline_opt_energy")
                  << " J  (regret "
                  << result.extra("regret_pct") << "%)\n";

    if (args.has("epochs-csv")) {
        const std::string path = args.get("epochs-csv", "epochs.csv");
        writeCsvFile(path, result.epochs);
        std::cout << "per-epoch CSV written to " << path << '\n';
    }
    return 0;
}

int
cmdTrace(const CliArgs &args)
{
    const std::string kind = args.get("kind", "es");
    const auto days =
        static_cast<unsigned>(args.getUnsigned("days", 3));
    const std::uint64_t seed = args.getUnsigned("seed", 42);
    const UtilizationTrace trace =
        kind == "es" ? synthEmailStoreTrace(days, seed)
                     : synthFileServerTrace(days, seed);
    const std::string out = args.get("out", kind + "_trace.csv");
    trace.save(out);
    std::cout << trace.name() << ": " << trace.size()
              << " minutes, mean " << trace.meanUtilization()
              << ", peak " << trace.peakUtilization() << " -> " << out
              << '\n';
    return 0;
}

/**
 * Paired fault-vs-no-fault comparison under common random numbers:
 * both arms replay identical job streams, dispatch choices, and (in
 * the fault arm) replication-seed-derived fault schedules, so the
 * printed deltas isolate the cost of the injected outages.
 */
int
cmdFaultCompare(const ScenarioSpec &spec, const CliArgs &args)
{
    fatalIf(spec.faults == "none",
            "farm: --fault-compare needs a fault source "
            "(--faults mtbf | correlated | scripted)");
    fatalIf(spec.replications < 2,
            "farm: --fault-compare needs --replications >= 2 for "
            "paired confidence intervals (the paper-style runs use 5)");

    ScenarioSpec faulty = spec;
    faulty.label = "faults(" + spec.faults + ")";
    ScenarioSpec clean = spec;
    clean.faults = "none";
    clean.label = "no-fault";

    const ReplicationPlan plan(spec.replications,
                               args.getUnsigned("threads", 0));
    const PairedComparison comparison =
        plan.comparePaired(faulty, clean);

    std::cout << "paired fault vs no-fault ("
              << comparison.a.replications.size()
              << " replications, common random numbers; faults: "
              << spec.faults << ")\n"
              << "availability:  "
              << comparison.a.metric("availability").toString() << '\n'
              << "goodput:       "
              << comparison.a.metric("goodput").toString() << '\n'
              << "dropped jobs:  "
              << comparison.a.metric("dropped_jobs").toString() << '\n'
              << "retries:       "
              << comparison.a.metric("retries").toString() << '\n'
              << "degraded time: "
              << comparison.a.metric("degraded_s").toString()
              << " s\n\n";
    pairedTable(comparison).print(std::cout);
    return 0;
}

int
cmdFarm(const CliArgs &args)
{
    const ScenarioSpec spec =
        scenarioFromArgs(args, EngineKind::Farm).build();
    if (args.has("fault-compare"))
        return cmdFaultCompare(spec, args);
    if (spec.replications > 1) {
        const ReplicatedResult replicated =
            ExperimentRunner::runReplicated(
                spec, args.getUnsigned("threads", 0));
        std::cout << "servers:       " << spec.farmSize << " ("
                  << spec.dispatcher << ", " << spec.farmControl
                  << " control)\n";
        printReplicatedSummary(replicated);
        std::cout << "\nper-server view (replication 0):\n";
        serversTable(replicated.replications.front())
            .print(std::cout);
        return 0;
    }
    const ScenarioResult result =
        ExperimentRunner::runScenario(spec);

    std::cout << "servers:       " << spec.farmSize << " ("
              << spec.dispatcher << ", " << spec.farmControl
              << " control)\n"
              << "jobs:          " << result.jobs << '\n'
              << "mean response: " << result.meanResponse << " s\n"
              << "farm power:    " << result.avgPower << " W  ("
              << result.extra("per_server_w") << " W/server)\n"
              << "within budget: "
              << (result.withinBudget ? "yes" : "no") << '\n';
    if (spec.faults != "none") {
        std::cout << "availability:  " << result.extra("availability")
                  << "  (down " << result.extra("down_s") << " s)\n"
                  << "goodput:       " << result.extra("goodput")
                  << "  (" << result.extra("dropped_jobs")
                  << " dropped, " << result.extra("retries")
                  << " retries)\n"
                  << "degraded time: " << result.extra("degraded_s")
                  << " s\n";
    }
    if (args.has("decision-time"))
        std::cout << "decision cost: "
                  << result.extra("decision_us_mean") << " µs mean, "
                  << result.extra("decision_us_p99") << " µs p99\n";
    std::cout << '\n';
    serversTable(result).print(std::cout);
    return 0;
}

int
cmdGrid(const CliArgs &args)
{
    const std::string engine_name = args.get("engine", "single");
    EngineKind engine = EngineKind::SingleServer;
    if (engine_name == "farm")
        engine = EngineKind::Farm;
    else if (engine_name != "single")
        fatal("grid: unknown engine '" + engine_name +
              "' (single | farm)");

    const ScenarioSpec base = scenarioFromArgs(args, engine).build();

    std::vector<SweepAxis> axes;
    if (args.has("sweep-T")) {
        std::vector<unsigned> values;
        for (const std::string &item :
             splitCsv(args.get("sweep-T", "")))
            values.push_back(static_cast<unsigned>(
                positiveIntOrFatal(item, "sweep-T")));
        axes.push_back(sweepEpochMinutes(values));
    }
    if (args.has("sweep-alpha")) {
        std::vector<double> values;
        for (const std::string &item :
             splitCsv(args.get("sweep-alpha", "")))
            values.push_back(numberOrFatal(item, "sweep-alpha"));
        axes.push_back(sweepOverProvision(values));
    }
    if (args.has("sweep-predictor"))
        axes.push_back(
            sweepPredictors(splitCsv(args.get("sweep-predictor", ""))));
    if (args.has("sweep-strategy"))
        axes.push_back(
            sweepStrategies(splitCsv(args.get("sweep-strategy", ""))));
    if (args.has("sweep-dispatcher"))
        axes.push_back(sweepDispatchers(
            splitCsv(args.get("sweep-dispatcher", ""))));
    if (args.has("sweep-control"))
        axes.push_back(sweepFarmControls(
            splitCsv(args.get("sweep-control", ""))));
    if (args.has("sweep-servers")) {
        std::vector<std::size_t> values;
        for (const std::string &item :
             splitCsv(args.get("sweep-servers", "")))
            values.push_back(static_cast<std::size_t>(
                positiveIntOrFatal(item, "sweep-servers")));
        axes.push_back(sweepFarmSizes(values));
    }
    fatalIf(axes.empty(),
            "grid: give at least one --sweep-* axis "
            "(--sweep-T, --sweep-alpha, --sweep-predictor, "
            "--sweep-strategy, --sweep-dispatcher, --sweep-servers, "
            "--sweep-control)");

    ExperimentRunner runner(args.getUnsigned("threads", 0));
    runner.addGrid(base, axes);
    std::cout << runner.scenarios().size()
              << " scenarios queued; running...\n\n";

    if (base.replications > 1) {
        const auto replicated = runner.runReplicated();
        replicationTable(replicated).print(std::cout);
        if (args.has("csv")) {
            const std::string path = args.get("csv", "grid.csv");
            writeReplicatedCsv(path, replicated);
            std::cout << "\nreplicated results CSV written to " << path
                      << '\n';
        }
        return 0;
    }

    const auto results = runner.run();
    resultsTable(results).print(std::cout);

    if (args.has("csv")) {
        const std::string path = args.get("csv", "grid.csv");
        writeResultsCsv(path, results);
        std::cout << "\nresults CSV written to " << path << '\n';
    }
    return 0;
}

void
printUsage()
{
    std::cout <<
        "sleepscale — runtime joint speed scaling and sleep management\n"
        "\n"
        "commands:\n"
        "  sweep    power/response curve for one sleep state\n"
        "  select   pick the best (frequency, state) for a load\n"
        "  run      trace-driven SleepScale day on one server\n"
        "  trace    generate a synthetic utilization trace CSV\n"
        "  farm     trace-driven SleepScale on a dispatched farm\n"
        "  grid     sweep a scenario grid in parallel, table/CSV out\n"
        "\n"
        "registered components:\n"
        "  workloads:   " + workloadRegistry().namesCsv() + "\n"
        "  predictors:  " + predictorRegistry().namesCsv() + "\n"
        "  strategies:  " + strategyRegistry().namesCsv() + "\n"
        "  dispatchers: " + dispatcherRegistry().namesCsv() + "\n"
        "  platforms:   " + platformRegistry().namesCsv() + "\n"
        "  job sources: " + jobSourceRegistry().namesCsv() + "\n"
        "  fault sources: " + faultSourceRegistry().namesCsv() + "\n"
        "\n"
        "farm control modes: farm-wide (one thinned-log decision for\n"
        "all servers) | per-server (autonomous per-server decisions;\n"
        "required for heterogeneous --platforms mixes) | distributed\n"
        "(zero-communication local rate scaling, docs/FARM_SCALE.md)\n"
        "\n"
        "farm scale knobs (docs/FARM_SCALE.md): --shards N shards the\n"
        "per-server simulation across N lanes (0 = auto, bit-identical\n"
        "at any lane count); --no-tail-histograms drops per-server\n"
        "response-time histograms to shrink 10k+-server runs\n"
        "\n"
        "farm fault injection (docs/FAULTS.md): --faults mtbf|correlated\n"
        "[--mtbf s] [--mttr s] [--retry-backoff s] [--drop-timeout s];\n"
        "--fault-compare with --replications N prints paired\n"
        "fault-vs-no-fault deltas under common random numbers\n"
        "\n"
        "run/farm/grid take --replications N to replicate under\n"
        "derived seeds and print mean ± 95% confidence intervals\n"
        "(docs/STATISTICS.md)\n"
        "\n"
        "--strategy poet selects the O(1) Kalman-filtered feedback\n"
        "controller (docs/CONTROL.md); knobs: --controller-q,\n"
        "--controller-r, --controller-pole, --controller-period.\n"
        "--decision-time reports per-epoch decision cost in µs\n"
        "(decision_us_mean / decision_us_p99)\n"
        "\n"
        "run takes --regret to score the run against the offline-\n"
        "optimal oracle (docs/OFFLINE_OPT.md): reports the oracle's\n"
        "energy and regret_pct = 100*(energy/optimal - 1); with\n"
        "--replications N the regret prints as mean ± 95% CI.\n"
        "--opt-epsilon tightens/loosens the FPTAS bracket (default\n"
        "0.05).\n"
        "\n"
        "run `sleepscale <command> --help` semantics are documented at\n"
        "the top of tools/sleepscale_cli.cc and in the README.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const CliArgs args(argc, argv, knownOptions);
        const std::string &command = args.command();
        if (command.empty() || args.has("help")) {
            printUsage();
            return command.empty() && argc > 1 ? 1 : 0;
        }
        if (command == "sweep")
            return cmdSweep(args);
        if (command == "select")
            return cmdSelect(args);
        if (command == "run")
            return cmdRun(args);
        if (command == "trace")
            return cmdTrace(args);
        if (command == "farm")
            return cmdFarm(args);
        if (command == "grid")
            return cmdGrid(args);
        std::cerr << "unknown command '" << command << "'\n\n";
        printUsage();
        return 1;
    } catch (const ConfigError &error) {
        std::cerr << error.what() << '\n';
        return 1;
    }
}
