/**
 * @file
 * The `sleepscale` command-line tool: run any of the library's
 * experiments without writing C++.
 *
 *   sleepscale sweep  [--workload dns] [--rho 0.1] [--state C6S3]
 *                     [--fstep 0.02] [--jobs 20000] [--seed 1]
 *   sleepscale select [--workload dns] [--rho 0.3] [--rho-b 0.8]
 *                     [--metric mean|tail] [--analytic] [--seed 1]
 *   sleepscale run    [--trace es|fs|<file.csv>] [--workload dns]
 *                     [--T 5] [--alpha 0.35] [--predictor LC]
 *                     [--rho-b 0.8] [--days 1] [--seed 1]
 *                     [--epochs-csv out.csv]
 *   sleepscale trace  [--kind es|fs] [--days 3] [--seed 42]
 *                     [--out trace.csv]
 *   sleepscale farm   [--servers 4] [--dispatcher packing]
 *                     [--trace es|fs] [--workload dns] [--T 5]
 *                     [--alpha 0.35] [--seed 1]
 *
 * Every command prints aligned tables to stdout; numbers are watts and
 * seconds unless stated otherwise.
 */

#include <iostream>

#include "analytic/mm1_sleep.hh"
#include "core/policy_manager.hh"
#include "core/runtime.hh"
#include "core/strategies.hh"
#include "farm/farm_runtime.hh"
#include "util/cli_args.hh"
#include "util/error.hh"
#include "util/table_printer.hh"
#include "workload/job_stream.hh"

using namespace sleepscale;

namespace {

const std::set<std::string> knownOptions = {
    "workload", "rho",   "state",      "fstep", "jobs",    "seed",
    "rho-b",    "metric", "analytic",  "trace", "T",       "alpha",
    "predictor", "days",  "epochs-csv", "kind",  "out",     "servers",
    "dispatcher", "help",
};

WorkloadSpec
workloadByName(const std::string &name)
{
    if (name == "dns")
        return dnsWorkload();
    if (name == "mail")
        return mailWorkload();
    if (name == "google")
        return googleWorkload();
    fatal("unknown workload '" + name + "' (dns | mail | google)");
}

UtilizationTrace
traceByName(const std::string &name, unsigned days, std::uint64_t seed)
{
    if (name == "es")
        return synthEmailStoreTrace(days, seed).dailyWindow(2, 20);
    if (name == "fs")
        return synthFileServerTrace(days, seed).dailyWindow(2, 20);
    return UtilizationTrace::load(name);
}

QosMetric
metricByName(const std::string &name)
{
    if (name == "mean")
        return QosMetric::MeanResponse;
    if (name == "tail")
        return QosMetric::TailResponse;
    fatal("unknown metric '" + name + "' (mean | tail)");
}

int
cmdSweep(const CliArgs &args)
{
    const WorkloadSpec workload =
        workloadByName(args.get("workload", "dns"));
    const double rho = args.getDouble("rho", 0.1);
    const LowPowerState state =
        lowPowerStateFromString(args.get("state", "C6S3"));
    const double fstep = args.getDouble("fstep", 0.02);
    const auto count = args.getUnsigned("jobs", 20000);
    const PlatformModel platform = PlatformModel::xeon();

    Rng rng(args.getUnsigned("seed", 1));
    const auto jobs =
        generateWorkloadJobs(rng, workload, rho, count);

    TablePrinter table({"f", "mu*E[R]", "p95*mu", "E[P] [W]"});
    for (double f = rho + 0.02; f <= 1.0 + 1e-9; f += fstep) {
        const Policy policy{std::min(f, 1.0),
                            SleepPlan::immediate(state)};
        const PolicyEvaluation eval = evaluatePolicy(
            platform, workload.scaling, policy, jobs);
        table.addRow({policy.frequency,
                      eval.meanResponse() / workload.serviceMean,
                      eval.p95Response() / workload.serviceMean,
                      eval.avgPower()},
                     3);
    }
    table.print(std::cout);
    return 0;
}

int
cmdSelect(const CliArgs &args)
{
    const WorkloadSpec workload =
        workloadByName(args.get("workload", "dns"));
    const double rho = args.getDouble("rho", 0.3);
    const double rho_b = args.getDouble("rho-b", 0.8);
    const QosMetric metric = metricByName(args.get("metric", "mean"));
    const PlatformModel platform = PlatformModel::xeon();

    const QosConstraint qos =
        metric == QosMetric::MeanResponse
            ? QosConstraint::fromBaselineMean(rho_b,
                                              workload.serviceMean)
            : QosConstraint::fromBaselineTail(rho_b,
                                              workload.serviceMean);
    const PolicyManager manager(
        platform, workload.scaling,
        PolicySpace::allStates(PolicySpace::frequencyGrid(0.12, 1.0,
                                                          0.01)),
        qos);

    PolicyDecision decision;
    if (args.has("analytic")) {
        const double mu = 1.0 / workload.serviceMean;
        decision = manager.selectAnalytic(rho * mu, mu);
    } else {
        Rng rng(args.getUnsigned("seed", 1));
        const auto jobs =
            generateWorkloadJobs(rng, workload, rho, 20000);
        decision = manager.selectFromLog(jobs);
    }

    std::cout << "policy:    " << decision.policy.toString() << '\n'
              << "power:     " << decision.predictedPower << " W\n"
              << toString(metric) << " value: "
              << decision.predictedMetric << " s (budget "
              << qos.budget() << " s)\n"
              << "feasible:  " << (decision.feasible ? "yes" : "no")
              << "  (" << decision.evaluated << " candidates)\n";
    return 0;
}

int
cmdRun(const CliArgs &args)
{
    const WorkloadSpec workload =
        workloadByName(args.get("workload", "dns"));
    const auto days =
        static_cast<unsigned>(args.getUnsigned("days", 1));
    const std::uint64_t seed = args.getUnsigned("seed", 1);
    const UtilizationTrace trace =
        traceByName(args.get("trace", "es"), days, 20140614);

    RuntimeConfig config;
    config.epochMinutes =
        static_cast<unsigned>(args.getUnsigned("T", 5));
    config.overProvision = args.getDouble("alpha", 0.35);
    config.rhoB = args.getDouble("rho-b", 0.8);
    config.qosMetric = metricByName(args.get("metric", "mean"));

    const PlatformModel platform = PlatformModel::xeon();
    const SleepScaleRuntime runtime(platform, workload, config);

    Rng rng(seed);
    const auto jobs = generateTraceDrivenJobs(rng, workload, trace);
    const auto predictor = makePredictor(args.get("predictor", "LC"),
                                         10, trace.values());
    const RuntimeResult result = runtime.run(jobs, trace, *predictor);

    std::cout << "jobs:          " << jobs.size() << '\n'
              << "mean response: " << result.meanResponse() << " s  ("
              << result.meanResponse() / workload.serviceMean
              << " service times)\n"
              << "p95 response:  " << result.p95Response() << " s\n"
              << "avg power:     " << result.avgPower() << " W\n"
              << "within budget: "
              << (result.withinBudget() ? "yes" : "no") << '\n';

    const auto fractions = result.stateSelectionFractions();
    std::cout << "state mix:    ";
    for (std::size_t i = 0; i < fractions.size(); ++i) {
        if (fractions[i] > 0.0) {
            std::cout << ' ' << toString(allLowPowerStates[i]) << '='
                      << fractions[i];
        }
    }
    std::cout << '\n';

    if (args.has("epochs-csv")) {
        const std::string path = args.get("epochs-csv", "epochs.csv");
        writeCsvFile(path, epochsToCsv(result));
        std::cout << "per-epoch CSV written to " << path << '\n';
    }
    return 0;
}

int
cmdTrace(const CliArgs &args)
{
    const std::string kind = args.get("kind", "es");
    const auto days =
        static_cast<unsigned>(args.getUnsigned("days", 3));
    const std::uint64_t seed = args.getUnsigned("seed", 42);
    const UtilizationTrace trace =
        kind == "es" ? synthEmailStoreTrace(days, seed)
                     : synthFileServerTrace(days, seed);
    const std::string out = args.get("out", kind + "_trace.csv");
    trace.save(out);
    std::cout << trace.name() << ": " << trace.size()
              << " minutes, mean " << trace.meanUtilization()
              << ", peak " << trace.peakUtilization() << " -> " << out
              << '\n';
    return 0;
}

int
cmdFarm(const CliArgs &args)
{
    const WorkloadSpec workload =
        workloadByName(args.get("workload", "dns"));
    const UtilizationTrace trace = traceByName(
        args.get("trace", "es"),
        static_cast<unsigned>(args.getUnsigned("days", 1)), 20140614);

    FarmRuntimeConfig config;
    config.farmSize = args.getUnsigned("servers", 4);
    config.dispatcher = args.get("dispatcher", "packing");
    config.perServer.epochMinutes =
        static_cast<unsigned>(args.getUnsigned("T", 5));
    config.perServer.overProvision = args.getDouble("alpha", 0.35);
    config.perServer.rhoB = args.getDouble("rho-b", 0.8);

    const PlatformModel platform = PlatformModel::xeon();
    const FarmRuntime runtime(platform, workload, config);

    Rng rng(args.getUnsigned("seed", 1));
    const auto jobs =
        generateFarmJobs(rng, workload, trace, config.farmSize);
    LmsCusumPredictor predictor(10);
    const FarmRuntimeResult result =
        runtime.run(jobs, trace, predictor);

    std::cout << "servers:       " << config.farmSize << " ("
              << config.dispatcher << ")\n"
              << "jobs:          " << jobs.size() << '\n'
              << "mean response: " << result.meanResponse() << " s\n"
              << "farm power:    " << result.avgPower() << " W  ("
              << result.avgPower() /
                     static_cast<double>(config.farmSize)
              << " W/server)\n"
              << "within budget: "
              << (result.withinBudget() ? "yes" : "no") << '\n';
    return 0;
}

void
printUsage()
{
    std::cout <<
        "sleepscale — runtime joint speed scaling and sleep management\n"
        "\n"
        "commands:\n"
        "  sweep    power/response curve for one sleep state\n"
        "  select   pick the best (frequency, state) for a load\n"
        "  run      trace-driven SleepScale day on one server\n"
        "  trace    generate a synthetic utilization trace CSV\n"
        "  farm     trace-driven SleepScale on a dispatched farm\n"
        "\n"
        "run `sleepscale <command> --help` semantics are documented at\n"
        "the top of tools/sleepscale_cli.cc and in the README.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const CliArgs args(argc, argv, knownOptions);
        const std::string &command = args.command();
        if (command.empty() || args.has("help")) {
            printUsage();
            return command.empty() && argc > 1 ? 1 : 0;
        }
        if (command == "sweep")
            return cmdSweep(args);
        if (command == "select")
            return cmdSelect(args);
        if (command == "run")
            return cmdRun(args);
        if (command == "trace")
            return cmdTrace(args);
        if (command == "farm")
            return cmdFarm(args);
        std::cerr << "unknown command '" << command << "'\n\n";
        printUsage();
        return 1;
    } catch (const ConfigError &error) {
        std::cerr << error.what() << '\n';
        return 1;
    }
}
