#!/bin/sh
# Local CI entry point — the same steps .github/workflows/ci.yml runs.
#
#   tools/ci.sh [build-dir]
#
# Configures with warnings-as-on (-Wall -Wextra are baked into
# CMakeLists.txt), builds everything, and runs the full ctest suite.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "$build_dir" --output-on-failure -j \
      "$(nproc 2>/dev/null || echo 4)"
