#!/bin/sh
# Local CI entry point — the same steps .github/workflows/ci.yml runs.
#
#   tools/ci.sh [build-dir]
#
# Configures a Release build with warnings-as-on (-Wall -Wextra are baked
# into CMakeLists.txt), builds everything (library, tests, benches,
# examples), runs the full ctest suite, and — when Google Benchmark was
# found — smoke-runs the policy-evaluation micro-bench suite so a perf
# regression that breaks the bench binary (or tanks it outright) fails CI
# rather than lingering until someone profiles.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "$build_dir" --output-on-failure -j \
      "$(nproc 2>/dev/null || echo 4)"

# Bench smoke: short measurement, machine-readable output. Skipped when
# the benchmark library is absent (the target is then not built).
bench="$build_dir/bench_perf_policy_eval"
if [ -x "$bench" ]; then
    "$bench" --benchmark_min_time=0.1 --benchmark_format=json \
             > "$build_dir/bench_policy_eval_smoke.json"
    echo "bench smoke OK: $build_dir/bench_policy_eval_smoke.json"
else
    echo "bench smoke skipped: $bench not built (no Google Benchmark)"
fi

# Docs check: the public farm/experiment headers must document every
# public declaration. tools/doc_lint.py enforces the coverage rules
# everywhere; when the doxygen binary is installed the tracked Doxyfile
# runs the same check with WARN_AS_ERROR so Doxygen-syntax errors fail
# too. Zero warnings is the bar (see docs/ARCHITECTURE.md).
python3 "$repo_root/tools/doc_lint.py"
if command -v doxygen >/dev/null 2>&1; then
    (cd "$repo_root" && doxygen Doxyfile)
    echo "doxygen docs check OK"
else
    echo "doxygen not installed; doc_lint covered the docs check"
fi

# Sanitizer pass: Debug + ASan/UBSan over the fast ctest labels (every
# test target carries exactly one of unit / integration / slow; see
# CMakeLists.txt). The "slow" label marks the heavy statistical suites
# (analytic cross-validation, coverage oracle, fuzzers) that the
# Release job above already ran in full — rerunning them 10-20x slower
# under sanitizers adds minutes without adding lifetime coverage.
san_dir="$build_dir-asan"
cmake -B "$san_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Debug \
      -DSLEEPSCALE_BUILD_BENCHES=OFF -DSLEEPSCALE_BUILD_EXAMPLES=OFF \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build "$san_dir" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "$san_dir" --output-on-failure -j \
      "$(nproc 2>/dev/null || echo 4)" \
      -L "unit|integration"
echo "sanitizer pass OK: $san_dir"
