#!/bin/sh
# Local CI entry point — the same steps .github/workflows/ci.yml runs.
#
#   tools/ci.sh [build-dir]
#
# Configures a Release build with warnings-as-on (-Wall -Wextra -Wshadow
# are baked into CMakeLists.txt), builds everything (library, tests,
# benches, examples), runs the full ctest suite, and — when Google
# Benchmark was found — smoke-runs the policy-evaluation micro-bench
# suite so a perf regression that breaks the bench binary (or tanks it
# outright) fails CI rather than lingering until someone profiles.
# Then the static/dynamic analysis gates: the determinism lint, the
# format conformance check, the doc lint, an ASan/UBSan pass over the
# fast test labels, a TSan pass over the "concurrency" label, and —
# when clang is installed — the thread-safety-annotation build and
# clang-tidy (both always enforced in CI with a pinned clang).
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "$build_dir" --output-on-failure -j \
      "$(nproc 2>/dev/null || echo 4)"

# Bench smoke: short measurement, machine-readable output. Skipped when
# the benchmark library is absent (the target is then not built).
bench="$build_dir/bench_perf_policy_eval"
if [ -x "$bench" ]; then
    "$bench" --benchmark_min_time=0.1 --benchmark_format=json \
             > "$build_dir/bench_policy_eval_smoke.json"
    echo "bench smoke OK: $build_dir/bench_policy_eval_smoke.json"
else
    echo "bench smoke skipped: $bench not built (no Google Benchmark)"
fi

# Scale smoke: the event-driven farm core must stream the 100/1k/10k
# farm-size ladder in seconds (docs/FARM_SCALE.md). A hang or a
# throughput collapse here means an O(N) scan crept back into the
# per-arrival or per-epoch farm path.
"$build_dir/bench_farm_scale" > "$build_dir/bench_farm_scale_smoke.txt"
echo "scale smoke OK: $build_dir/bench_farm_scale_smoke.txt"

# Determinism lint: no wall clocks, ambient entropy, machine topology,
# or hash-iteration-order reductions in src/ (rules and rationale:
# docs/CONCURRENCY.md; exemptions: tools/determinism_allowlist.txt).
python3 "$repo_root/tools/lint_determinism.py"

# Format gate over the conformance list (skips politely when
# clang-format is absent; CI pins clang-format-18).
sh "$repo_root/tools/check_format.sh"

# Docs check: the public farm/experiment headers must document every
# public declaration. tools/doc_lint.py enforces the coverage rules
# everywhere; when the doxygen binary is installed the tracked Doxyfile
# runs the same check with WARN_AS_ERROR so Doxygen-syntax errors fail
# too. Zero warnings is the bar (see docs/ARCHITECTURE.md).
python3 "$repo_root/tools/doc_lint.py"
if command -v doxygen >/dev/null 2>&1; then
    (cd "$repo_root" && doxygen Doxyfile)
    echo "doxygen docs check OK"
else
    echo "doxygen not installed; doc_lint covered the docs check"
fi

# Sanitizer pass: Debug + ASan/UBSan over the fast ctest labels (every
# test target carries exactly one of unit / integration / slow; see
# CMakeLists.txt). The "slow" label marks the heavy statistical suites
# (analytic cross-validation, coverage oracle, fuzzers) that the
# Release job above already ran in full — rerunning them 10-20x slower
# under sanitizers adds minutes without adding lifetime coverage. The
# cross-cutting "fault" label rides along: the failover queue and the
# fault-source clone/reset paths are lifetime-heavy, exactly what ASan
# exists to catch (fault_fuzz is the fast slice of sim_fuzz_test).
# The "control" label rides along the same way: the feedback
# controller's clone/reset state lifetime (control_fuzz) is exactly
# the shape ASan covers. "analytic" pulls in the offline-oracle plane
# (offline_opt_test plus the offline_opt_fuzz and analytic_regret
# slices) without dragging the slow statistical tiers along.
san_dir="$build_dir-asan"
cmake -B "$san_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Debug \
      -DSLEEPSCALE_BUILD_BENCHES=OFF -DSLEEPSCALE_BUILD_EXAMPLES=OFF \
      -DSLEEPSCALE_SANITIZE=address,undefined
cmake --build "$san_dir" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "$san_dir" --output-on-failure -j \
      "$(nproc 2>/dev/null || echo 4)" \
      -L "unit|integration|fault|control|analytic"
echo "sanitizer pass OK: $san_dir"

# Race-detection pass: TSan over exactly the suites that exercise
# cross-thread state (ctest label "concurrency": thread pool, parallel
# candidate search, replication fan-out, per-server farm decisions)
# plus the "fault" and "control" labels — degraded-mode and
# controller decisions both fan out across the per-server pool, so
# those planes must be race-clean too. Only those test targets are
# built, so this adds one library build, not a third full tree.
tsan_dir="$build_dir-tsan"
cmake -B "$tsan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Debug \
      -DSLEEPSCALE_BUILD_BENCHES=OFF -DSLEEPSCALE_BUILD_EXAMPLES=OFF \
      -DSLEEPSCALE_SANITIZE=thread
cmake --build "$tsan_dir" -j "$(nproc 2>/dev/null || echo 4)" --target \
      thread_pool_test eval_engine_test experiment_test \
      farm_per_server_test farm_fault_test sim_fuzz_test control_test \
      farm_distributed_test farm_scale_test
ctest --test-dir "$tsan_dir" --output-on-failure -j \
      "$(nproc 2>/dev/null || echo 4)" \
      -L "concurrency|fault|control"
echo "TSan pass OK: $tsan_dir"

# Thread-safety analysis: the GUARDED_BY/ACQUIRE/RELEASE annotations
# become -Werror under Clang. Library-only build — the annotated state
# all lives in src/ — skipped politely on gcc-only boxes (the tsan CI
# job enforces it with a pinned clang).
if command -v clang++ >/dev/null 2>&1; then
    tsa_dir="$build_dir-thread-safety"
    cmake -B "$tsa_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Debug \
          -DCMAKE_CXX_COMPILER=clang++ -DSLEEPSCALE_THREAD_SAFETY=ON \
          -DSLEEPSCALE_BUILD_TESTS=OFF -DSLEEPSCALE_BUILD_BENCHES=OFF \
          -DSLEEPSCALE_BUILD_EXAMPLES=OFF
    cmake --build "$tsa_dir" -j "$(nproc 2>/dev/null || echo 4)" \
          --target sleepscale
    echo "thread-safety analysis OK: $tsa_dir"
else
    echo "clang++ not installed; thread-safety analysis left to CI"
fi

# clang-tidy (curated profile in .clang-tidy), incremental driver.
if command -v clang-tidy >/dev/null 2>&1; then
    BUILD_DIR="$build_dir" sh "$repo_root/tools/run_clang_tidy.sh"
else
    echo "clang-tidy not installed; tidy gate left to CI"
fi
