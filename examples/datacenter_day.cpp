/**
 * @file
 * Data-center day: run SleepScale against race-to-halt over a full
 * synthetic email-store day (the paper's Section 6 experiment in
 * miniature), printing an hour-by-hour picture of what the runtime
 * decided and the end-of-day comparison.
 *
 * Both strategies are one declarative scenario each; the hour-by-hour
 * view reads straight from the captured per-epoch table.
 *
 * The second act shows the streaming workload API: two trace-driven
 * tenants and a nightly backup-burst injection merged into one
 * composite JobSource and streamed through the runtime epoch by epoch
 * — the mixed stream is never materialized.
 *
 *   ./datacenter_day
 */

#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/predictor.hh"
#include "core/runtime.hh"
#include "experiment/runner.hh"
#include "power/platform_model.hh"
#include "util/error.hh"
#include "workload/job_source.hh"

using namespace sleepscale;

int
main()
{
    try {
        const ScenarioSpec base = ScenarioBuilder("day")
                                      .workload("dns")
                                      .trace("es")
                                      .traceSeed(424242)
                                      .window(2, 20)
                                      .epochMinutes(5)
                                      .overProvision(0.35)
                                      .rhoB(0.8)
                                      .predictor("LC")
                                      .seed(5)
                                      .captureEpochs()
                                      .build();

        ExperimentRunner runner;
        runner.addGrid(base, {sweepStrategies({"SS", "R2H(C6)"})});
        const auto results = runner.run();
        const ScenarioResult &ss = results[0];
        const ScenarioResult &r2h = results[1];

        std::cout << "email-store day, 2AM-8PM window: " << ss.jobs
                  << " jobs\n\n";

        // Hour-by-hour view of the controller's behaviour, from the
        // captured per-epoch CSV.
        const auto start = ss.epochs.column("start_s");
        const auto util = ss.epochs.column("measured_util");
        const auto freq = ss.epochs.column("frequency");
        const auto power = ss.epochs.column("avg_power_w");
        const auto response = ss.epochs.column("mean_response_s");
        const auto completions = ss.epochs.column("completions");
        const double service_mean = ss.meanResponse / ss.normalizedMean;

        TablePrinter hours({"hour", "load", "f (last epoch)", "mu*E[R]",
                            "E[P] [W]"});
        const std::size_t epochs_per_hour =
            60 / base.epochMinutes;
        for (std::size_t h = 0; h * epochs_per_hour < start.size();
             ++h) {
            const std::size_t lo = h * epochs_per_hour;
            const std::size_t hi = std::min(
                (h + 1) * epochs_per_hour, start.size());
            // Responses are job-weighted across the hour's epochs
            // (epochs are equal length, so power averages directly).
            double load = 0.0, hour_power = 0.0;
            double hour_response = 0.0, hour_jobs = 0.0;
            for (std::size_t e = lo; e < hi; ++e) {
                load += util[e];
                hour_power += power[e];
                hour_response += response[e] * completions[e];
                hour_jobs += completions[e];
            }
            const double n = static_cast<double>(hi - lo);
            const double mean_response =
                hour_jobs > 0.0 ? hour_response / hour_jobs : 0.0;
            hours.addRow(
                {std::to_string(h + 2) + ":00",
                 std::to_string(load / n).substr(0, 4),
                 std::to_string(freq[hi - 1]).substr(0, 4),
                 std::to_string(mean_response / service_mean),
                 std::to_string(hour_power / n)});
        }
        hours.print(std::cout);

        // The end-of-day comparison against race-to-halt.
        const double day_hours = ss.elapsed / 3600.0;
        std::cout << "\nEnd of day:\n";
        std::cout << "  SleepScale : " << ss.avgPower << " W avg, "
                  << ss.avgPower * day_hours / 1000.0
                  << " kWh, mu*E[R] = " << ss.normalizedMean
                  << (ss.withinBudget ? " (within budget)\n"
                                      : " (over budget)\n");
        std::cout << "  R2H(C6)    : " << r2h.avgPower << " W avg, "
                  << r2h.avgPower * day_hours / 1000.0
                  << " kWh, mu*E[R] = " << r2h.normalizedMean << "\n";
        std::cout << "  Savings    : "
                  << 100.0 * (1.0 - ss.avgPower / r2h.avgPower)
                  << "% power\n";

        // ---- Composable streaming sources --------------------------
        // Two trace-driven tenants (the email store plus a second,
        // file-server-shaped tenant) and a backup process that fires
        // hour-scale arrival bursts, merged into one stream. merge()
        // interleaves by arrival time with a deterministic tie-break,
        // and the runtime pulls the mix epoch by epoch.
        const PlatformModel xeon = PlatformModel::xeon();
        const WorkloadSpec dns = workloadByName("dns");
        const UtilizationTrace day =
            synthEmailStoreTrace(1, 424242).dailyWindow(2, 20);
        const UtilizationTrace second_day =
            synthFileServerTrace(1, 424243).dailyWindow(2, 20);

        std::vector<std::unique_ptr<JobSource>> tenants;
        tenants.push_back(
            std::make_unique<TraceDrivenSource>(dns, day, 11));
        tenants.push_back(
            std::make_unique<TraceDrivenSource>(dns, second_day, 12));
        // Backup bursts: a low baseline that surges to 8x its arrival
        // rate in ~5-minute episodes roughly once an hour, cut off at
        // the end of the evaluation window.
        tenants.push_back(until(
            std::make_unique<BurstySource>(dns, 0.05, 8.0, 300.0,
                                           3600.0, 13),
            day.duration()));
        auto mix = merge(std::move(tenants));

        RuntimeConfig config;
        config.epochMinutes = 5;
        config.overProvision = 0.35;
        const SleepScaleRuntime streaming(xeon, dns, config);
        const auto predictor = makePredictor("LC", 10, day.values());
        const RuntimeResult mixed =
            streaming.run(*mix, day, *predictor);

        std::cout << "\nMerged tenants + backup bursts (streamed, "
                     "never materialized):\n"
                  << "  jobs       : " << mixed.total.arrivals << "\n"
                  << "  mu*E[R]    : "
                  << mixed.meanResponse() / dns.serviceMean << "\n"
                  << "  avg power  : " << mixed.avgPower() << " W"
                  << (mixed.withinBudget() ? " (within budget)\n"
                                           : " (over budget)\n");
        return 0;
    } catch (const ConfigError &error) {
        std::cerr << error.what() << '\n';
        return 1;
    }
}
