/**
 * @file
 * Data-center day: run SleepScale against race-to-halt over a full
 * synthetic email-store day (the paper's Section 6 experiment in
 * miniature), printing an hour-by-hour picture of what the runtime
 * decided and the end-of-day comparison.
 *
 *   ./datacenter_day
 */

#include <iostream>

#include "core/strategies.hh"
#include "util/rng.hh"
#include "util/table_printer.hh"
#include "workload/job_stream.hh"

using namespace sleepscale;

int
main()
{
    const PlatformModel platform = PlatformModel::xeon();
    const WorkloadSpec workload = dnsWorkload();

    // One synthetic email-store day, evaluated over the paper's 2AM-8PM
    // window (the nightly backup window is operated separately).
    const UtilizationTrace day = synthEmailStoreTrace(1, 424242);
    const UtilizationTrace window = day.dailyWindow(2, 20);
    Rng rng(5);
    const auto jobs = generateTraceDrivenJobs(rng, workload, window);
    std::cout << "email-store day, 2AM-8PM window: "
              << jobs.size() << " jobs, mean load "
              << window.meanUtilization() << ", peak "
              << window.peakUtilization() << "\n\n";

    // SleepScale with the paper's runtime settings.
    const RuntimeConfig ss_config = makeStrategyConfig(
        StrategyKind::SleepScale, 5, 0.35, 0.8);
    const SleepScaleRuntime ss_runtime(platform, workload, ss_config);
    LmsCusumPredictor predictor(10);
    const RuntimeResult ss = ss_runtime.run(jobs, window, predictor);

    // Hour-by-hour view of the controller's behaviour.
    TablePrinter hours({"hour", "load", "policy (last epoch)",
                        "mu*E[R]", "E[P] [W]"});
    const std::size_t epochs_per_hour = 60 / ss_config.epochMinutes;
    for (std::size_t h = 0; h * epochs_per_hour < ss.epochs.size();
         ++h) {
        SimStats hour_stats;
        double load = 0.0;
        std::size_t count = 0;
        const EpochReport *last = nullptr;
        for (std::size_t e = h * epochs_per_hour;
             e < std::min((h + 1) * epochs_per_hour, ss.epochs.size());
             ++e) {
            hour_stats.merge(ss.epochs[e].stats);
            load += ss.epochs[e].measuredUtilization;
            last = &ss.epochs[e];
            ++count;
        }
        if (!count || !last)
            continue;
        hours.addRow(
            {std::to_string(h + 2) + ":00",
             std::to_string(load / static_cast<double>(count))
                 .substr(0, 4),
             last->policy.toString(),
             std::to_string(hour_stats.meanResponse() /
                            workload.serviceMean),
             std::to_string(hour_stats.avgPower())});
    }
    hours.print(std::cout);

    // The end-of-day comparison against race-to-halt.
    const RuntimeConfig r2h_config = makeStrategyConfig(
        StrategyKind::RaceToHaltC6, 5, 0.35, 0.8);
    const SleepScaleRuntime r2h_runtime(platform, workload, r2h_config);
    LmsCusumPredictor r2h_predictor(10);
    const RuntimeResult r2h =
        r2h_runtime.run(jobs, window, r2h_predictor);

    const double day_hours = ss.total.elapsed() / 3600.0;
    std::cout << "\nEnd of day:\n";
    std::cout << "  SleepScale : " << ss.avgPower() << " W avg, "
              << ss.avgPower() * day_hours / 1000.0 << " kWh, mu*E[R] = "
              << ss.meanResponse() / workload.serviceMean
              << (ss.withinBudget() ? " (within budget)\n"
                                    : " (over budget)\n");
    std::cout << "  R2H(C6)    : " << r2h.avgPower() << " W avg, "
              << r2h.avgPower() * day_hours / 1000.0
              << " kWh, mu*E[R] = "
              << r2h.meanResponse() / workload.serviceMean << "\n";
    std::cout << "  Savings    : "
              << 100.0 * (1.0 - ss.avgPower() / r2h.avgPower())
              << "% power\n";
    return 0;
}
