/**
 * @file
 * Cluster scaling: put SleepScale behind a load balancer.
 *
 * The farm extension as one declarative scenario — N DNS-like servers
 * behind a registered dispatcher, each power-managed by SleepScale —
 * executed through the unified experiment API.
 *
 *   ./cluster_scaling [dispatcher] [servers]
 *
 *   dispatcher  a registered dispatcher name          (default packing)
 *   servers     farm size                             (default 4)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "experiment/runner.hh"
#include "farm/dispatcher.hh"
#include "util/error.hh"

using namespace sleepscale;

int
main(int argc, char **argv)
{
    const std::string dispatcher = argc > 1 ? argv[1] : "packing";
    const std::size_t servers =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
    if (servers == 0 || servers > 64) {
        std::cerr << "servers must be in [1, 64]\n";
        return 1;
    }

    try {
        const ScenarioSpec spec =
            ScenarioBuilder("cluster " + dispatcher)
                .engine(EngineKind::Farm)
                .workload("dns")
                .trace("es")
                .traceSeed(99)
                .window(2, 14)
                .farmSize(servers)
                .dispatcher(dispatcher)
                .packingSpillBacklog(2.0)
                .epochMinutes(5)
                .overProvision(0.35)
                .rhoB(0.8)
                .predictor("LC")
                .seed(17)
                .build();

        const ScenarioResult result =
            ExperimentRunner::runScenario(spec);

        std::cout << servers << " servers, dispatcher = " << dispatcher
                  << ", " << result.jobs << " jobs over "
                  << result.elapsed / 3600.0 << " h\n\n";

        TablePrinter table({"metric", "value"});
        table.addRow({std::string("farm power"),
                      std::to_string(result.avgPower) + " W"});
        table.addRow({std::string("per-server power"),
                      std::to_string(result.extra("per_server_w")) +
                          " W"});
        table.addRow({std::string("mu*E[R]"),
                      std::to_string(result.normalizedMean)});
        table.addRow({std::string("within budget"),
                      result.withinBudget ? "yes" : "no"});
        table.print(std::cout);

        std::cout << "\nJobs per server:";
        for (std::uint64_t count : result.jobsPerServer)
            std::cout << ' ' << count;
        std::cout << '\n';
        std::cout << "(packing concentrates work so lightly used "
                     "servers sleep; JSQ balances for\nresponse time — "
                     "registered dispatchers: "
                  << dispatcherRegistry().namesCsv() << ")\n";
        return 0;
    } catch (const ConfigError &error) {
        std::cerr << error.what() << '\n';
        return 1;
    }
}
