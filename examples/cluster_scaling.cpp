/**
 * @file
 * Cluster scaling: put SleepScale behind a load balancer.
 *
 * Demonstrates the farm extension — four DNS-like servers behind a
 * dispatcher of your choice, each power-managed by SleepScale — and
 * shows the power/response trade the dispatcher controls.
 *
 *   ./cluster_scaling [dispatcher] [servers]
 *
 *   dispatcher  random | round-robin | JSQ | packing  (default packing)
 *   servers     farm size                             (default 4)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "farm/farm_runtime.hh"
#include "util/rng.hh"
#include "util/table_printer.hh"
#include "workload/job_stream.hh"

using namespace sleepscale;

int
main(int argc, char **argv)
{
    const std::string dispatcher = argc > 1 ? argv[1] : "packing";
    const std::size_t servers =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
    if (servers == 0 || servers > 64) {
        std::cerr << "servers must be in [1, 64]\n";
        return 1;
    }

    const PlatformModel platform = PlatformModel::xeon();
    const WorkloadSpec workload = dnsWorkload();
    const UtilizationTrace trace =
        synthEmailStoreTrace(1, 99).dailyWindow(2, 14);

    Rng rng(17);
    const auto jobs = generateFarmJobs(rng, workload, trace, servers);
    std::cout << servers << " servers, dispatcher = " << dispatcher
              << ", " << jobs.size() << " jobs over "
              << trace.duration() / 3600.0 << " h (per-server load "
              << trace.meanUtilization() << ")\n\n";

    FarmRuntimeConfig config;
    config.farmSize = servers;
    config.dispatcher = dispatcher;
    config.packingSpillBacklog = 2.0;
    config.perServer.epochMinutes = 5;
    config.perServer.overProvision = 0.35;
    config.perServer.rhoB = 0.8;

    const FarmRuntime runtime(platform, workload, config);
    LmsCusumPredictor predictor(10);
    const FarmRuntimeResult result = runtime.run(jobs, trace, predictor);

    TablePrinter table({"metric", "value"});
    table.addRow({std::string("farm power"),
                  std::to_string(result.avgPower()) + " W"});
    table.addRow({std::string("per-server power"),
                  std::to_string(result.avgPower() /
                                 static_cast<double>(servers)) +
                      " W"});
    table.addRow({std::string("mu*E[R]"),
                  std::to_string(result.meanResponse() /
                                 workload.serviceMean)});
    table.addRow({std::string("within budget"),
                  result.withinBudget() ? "yes" : "no"});
    table.print(std::cout);

    std::cout << "\nJobs per server:";
    for (std::uint64_t count : result.jobsPerServer)
        std::cout << ' ' << count;
    std::cout << "\n(packing concentrates work so lightly used servers "
                 "sleep; JSQ balances for\nresponse time — try both)\n";
    return 0;
}
