/**
 * @file
 * Policy explorer: map the joint (frequency, sleep state) space for a
 * workload and utilization of your choice.
 *
 *   ./policy_explorer [workload] [rho] [rho_b]
 *
 *   workload  dns | mail | google      (default dns)
 *   rho       offered load in (0, 1)   (default 0.3)
 *   rho_b     peak design utilization  (default 0.8)
 *
 * Prints, for every sleep state, the optimal frequency and power with
 * and without the QoS constraint, plus the closed-form (idealized)
 * selection for comparison — a command-line version of the paper's
 * Figures 1 and 6.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "analytic/mm1_sleep.hh"
#include "core/policy_manager.hh"
#include "power/platform_model.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "util/table_printer.hh"
#include "workload/job_stream.hh"

using namespace sleepscale;

int
main(int argc, char **argv)
try {
    const std::string name = argc > 1 ? argv[1] : "dns";
    const double rho = argc > 2 ? std::atof(argv[2]) : 0.3;
    const double rho_b = argc > 3 ? std::atof(argv[3]) : 0.8;
    if (rho <= 0.0 || rho >= 1.0 || rho_b <= 0.0 || rho_b >= 1.0) {
        std::cerr << "rho and rho_b must be in (0, 1)\n";
        return 1;
    }

    const WorkloadSpec workload = workloadByName(name);
    const PlatformModel platform = PlatformModel::xeon();
    const double mu = 1.0 / workload.serviceMean;
    const QosConstraint qos =
        QosConstraint::fromBaselineMean(rho_b, workload.serviceMean);

    std::cout << "workload = " << workload.name << ", rho = " << rho
              << ", rho_b = " << rho_b << " (budget mu*E[R] = "
              << qos.budget() / workload.serviceMean << ")\n\n";

    Rng rng(7);
    const auto jobs = generateWorkloadJobs(rng, workload, rho, 20000);

    // Per-state optima, with and without the QoS cut.
    TablePrinter table({"state", "f* (unconstrained)", "E[P] [W]",
                        "f* (QoS)", "E[P] QoS [W]"});
    const auto grid = PolicySpace::frequencyGrid(0.12, 1.0, 0.01);
    for (LowPowerState state : allLowPowerStates) {
        double best_f = 1.0, best_p = 1e18;
        double qos_f = 1.0, qos_p = 1e18;
        for (double f : grid) {
            if (f <= rho + 0.01)
                continue;
            const Policy policy{f, SleepPlan::immediate(state)};
            const PolicyEvaluation eval = evaluatePolicy(
                platform, workload.scaling, policy, jobs);
            const double power = eval.avgPower();
            if (power < best_p) {
                best_p = power;
                best_f = f;
            }
            if (qos.satisfiedBy(eval.stats) && power < qos_p) {
                qos_p = power;
                qos_f = f;
            }
        }
        table.addRow({toString(state),
                      std::to_string(best_f).substr(0, 4),
                      std::to_string(best_p),
                      qos_p < 1e17 ? std::to_string(qos_f).substr(0, 4)
                                   : "infeasible",
                      qos_p < 1e17 ? std::to_string(qos_p) : "-"});
    }
    table.print(std::cout);

    // The joint selections.
    const PolicyManager manager(
        platform, workload.scaling,
        PolicySpace::allStates(grid), qos);
    const PolicyDecision empirical = manager.selectFromLog(jobs);
    const PolicyDecision ideal = manager.selectAnalytic(rho * mu, mu);
    std::cout << "\nSleepScale selection (empirical statistics): "
              << empirical.policy.toString() << " -> "
              << empirical.predictedPower << " W\n";
    std::cout << "Idealized model selection (closed forms):     "
              << ideal.policy.toString() << " -> "
              << ideal.predictedPower << " W\n";
    return 0;
} catch (const ConfigError &error) {
    std::cerr << error.what() << '\n';
    return 1;
}
