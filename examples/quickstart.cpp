/**
 * @file
 * Quickstart: the declarative experiment API in one screen.
 *
 * Describes a scenario once — workload, trace, platform, QoS — then
 * sweeps the named power-management strategies over it through
 * ExperimentRunner. Every engine (single server, farm, multicore) and
 * every component (strategy, predictor, dispatcher, workload, platform)
 * is selected by registry name, so a new comparison is a new axis, not
 * a new driver loop.
 *
 * This example doubles as the canonical smoke test of the experiment
 * API: it runs in ctest, so regressions in the declarative entry point
 * surface in tier-1.
 *
 *   ./quickstart
 */

#include <algorithm>
#include <iostream>

#include "core/strategies.hh"
#include "experiment/runner.hh"
#include "util/error.hh"

using namespace sleepscale;

int
main()
{
    try {
        // One declarative scenario: a DNS-like server at a flat 10%
        // offered load on the paper's Xeon-class platform, managed
        // every 5 minutes against the rho_b = 0.8 QoS budget.
        const ScenarioSpec base = ScenarioBuilder("quickstart")
                                      .workload("dns")
                                      .platform("xeon")
                                      .flatTrace(0.1, 60)
                                      .epochMinutes(5)
                                      .overProvision(0.0)
                                      .rhoB(0.8)
                                      .predictor("LC")
                                      .seed(1)
                                      .build();

        // Sweep the registered strategies over it, in parallel.
        ExperimentRunner runner;
        runner.addGrid(
            base,
            {sweepStrategies({"SS", "DVFS", "R2H(C6)"})});
        const auto results = runner.run();

        resultsTable(results).print(std::cout);

        // The uniform result schema keeps comparisons one-liners.
        const ScenarioResult &ss = results.front();
        double worst = 0.0;
        for (const ScenarioResult &result : results)
            worst = std::max(worst, result.avgPower);
        std::cout << "\nSleepScale (SS) runs at " << ss.avgPower
                  << " W, " << 100.0 * (1.0 - ss.avgPower / worst)
                  << "% below the most expensive strategy, over "
                  << ss.jobs << " jobs.\n";
        std::cout << "Registered strategies: "
                  << strategyRegistry().namesCsv() << "\n";

        // Sanity for ctest: SS must beat race-to-halt on power while
        // the comparison stayed on identical job streams.
        if (!(ss.avgPower < worst) || ss.jobs == 0) {
            std::cerr << "quickstart: unexpected experiment outcome\n";
            return 1;
        }
        return 0;
    } catch (const ConfigError &error) {
        std::cerr << error.what() << '\n';
        return 1;
    }
}
