/**
 * @file
 * Quickstart: evaluate power-management policies for one server.
 *
 * Builds the paper's Xeon-class power model, synthesizes a DNS-like
 * workload at 10% utilization, and compares three policies end to end:
 * race-to-halt, DVFS-only, and the jointly optimized SleepScale choice.
 *
 *   ./quickstart
 */

#include <iostream>

#include "core/policy_manager.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "util/rng.hh"
#include "util/table_printer.hh"
#include "workload/job_stream.hh"

using namespace sleepscale;

int
main()
{
    // 1. A platform: Table 2's Xeon-class server.
    const PlatformModel platform = PlatformModel::xeon();

    // 2. A workload: DNS-like lookups (194 ms mean service) offered at
    //    10% utilization; 20,000 jobs of Poisson/exponential traffic.
    const WorkloadSpec workload = dnsWorkload();
    Rng rng(1);
    const auto jobs = generateWorkloadJobs(rng, workload, 0.1, 20000);

    // 3. A QoS target: the paper's baseline constraint for a peak
    //    design utilization of 0.8 -> mean response <= 5 service times.
    const QosConstraint qos =
        QosConstraint::fromBaselineMean(0.8, workload.serviceMean);

    // 4. Hand-picked policies, evaluated through the queueing core.
    TablePrinter table(
        {"policy", "mu*E[R]", "E[P] [W]", "meets QoS?"});
    auto report = [&](const std::string &label, const Policy &policy) {
        const PolicyEvaluation eval =
            evaluatePolicy(platform, workload.scaling, policy, jobs);
        table.addRow({label,
                      std::to_string(eval.meanResponse() /
                                     workload.serviceMean),
                      std::to_string(eval.avgPower()),
                      qos.satisfiedBy(eval.stats) ? "yes" : "no"});
    };
    report("race-to-halt (f=1, C6S0(i))",
           raceToHalt(LowPowerState::C6S0Idle));
    report("DVFS-only (f=0.5, idle C0(i))",
           Policy{0.5, SleepPlan::immediate(LowPowerState::C0IdleS0Idle)});

    // 5. The SleepScale way: let the policy manager search the joint
    //    (frequency x sleep state) space for the cheapest QoS-feasible
    //    policy.
    const PolicyManager manager(
        platform, workload.scaling,
        PolicySpace::allStates(PolicySpace::frequencyGrid(0.15, 1.0,
                                                          0.01)),
        qos);
    const PolicyDecision best = manager.selectFromLog(jobs);
    report("SleepScale: " + best.policy.toString(), best.policy);

    table.print(std::cout);
    std::cout << "\nSleepScale picked " << best.policy.toString()
              << " after characterizing " << best.evaluated
              << " candidates.\n";
    return 0;
}
