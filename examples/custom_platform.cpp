/**
 * @file
 * Custom platform: the library is not tied to the paper's Xeon numbers.
 * This example models a hypothetical ARM-class microserver with its own
 * power envelope and wake-up latencies, defines a guarded two-stage
 * sleep plan, and asks the policy manager what to run.
 *
 *   ./custom_platform
 */

#include <iostream>

#include "core/policy_manager.hh"
#include "power/platform_model.hh"
#include "util/rng.hh"
#include "util/table_printer.hh"
#include "workload/job_stream.hh"

using namespace sleepscale;

int
main()
{
    // A microserver: 28 W peak CPU dynamic power, lean platform, and
    // faster deep-sleep entry/exit than the Xeon-class part. The only
    // requirements are positive powers, power decreasing with sleep
    // depth at f = 1, and non-decreasing wake latencies.
    CpuPowerParams cpu;
    cpu.activeCoeff = 28.0;
    cpu.idleCoeff = 14.0;
    cpu.haltCoeff = 9.0;
    cpu.sleepPower = 4.0;
    cpu.deepSleepPower = 1.5;

    PlatformPowerParams board;
    board.s0Active = 38.0;
    board.s0Idle = 21.0;
    board.s3 = 4.5;

    WakeLatencies wake;
    wake.c1S0Idle = 5e-6;
    wake.c3S0Idle = 40e-6;
    wake.c6S0Idle = 400e-6;
    wake.c6S3 = 0.4;

    const PlatformModel arm("ARM-microserver", cpu, board, wake);
    std::cout << "Platform '" << arm.name() << "': active "
              << arm.activePower(1.0) << " W at f=1, deep sleep "
              << arm.lowPower(LowPowerState::C6S3, 1.0) << " W\n\n";

    // A mail-like workload (heavy-tailed service, Cv = 3.6) at 25%
    // load, mildly memory-bound (service rate ~ f^0.5).
    WorkloadSpec workload = mailWorkload();
    workload.scaling = ServiceScaling::mixed();
    Rng rng(11);
    const auto jobs = generateWorkloadJobs(rng, workload, 0.25, 30000);

    // Candidate plans: the five single states plus a guarded descent
    // that parks in C3S0(i) and only commits to C6S3 after two seconds
    // of idleness (the paper's lesson 4 knob).
    PolicySpace space = PolicySpace::allStates(
        PolicySpace::frequencyGrid(0.2, 1.0, 0.02));
    space.plans.push_back(SleepPlan(
        {{LowPowerState::C3S0Idle, 0.0}, {LowPowerState::C6S3, 2.0}}));

    // Heavy-tailed service (Cv = 3.6) needs a generous tail budget: the
    // baseline-derived deadline for rho_b = 0.9 is ~2.8 s.
    const QosConstraint qos =
        QosConstraint::fromBaselineTail(0.9, workload.serviceMean);
    const PolicyManager manager(arm, workload.scaling, space, qos);
    const PolicyDecision decision = manager.selectFromLog(jobs);

    std::cout << "QoS: 95th-percentile response <= " << qos.budget()
              << " s\n";
    std::cout << "Selected policy: " << decision.policy.toString()
              << "\n  predicted power: " << decision.predictedPower
              << " W\n  predicted p95:   " << decision.predictedMetric
              << " s\n  feasible: " << (decision.feasible ? "yes" : "no")
              << " (" << decision.evaluated << " candidates)\n";

    // How much the guarded plan matters on this platform.
    TablePrinter table({"plan", "E[P] at selected f [W]"});
    for (const SleepPlan &plan : space.plans) {
        const PolicyEvaluation eval = evaluatePolicy(
            arm, workload.scaling,
            Policy{decision.policy.frequency, plan}, jobs);
        table.addRow({plan.toString(),
                      std::to_string(eval.avgPower())});
    }
    table.print(std::cout);
    return 0;
}
