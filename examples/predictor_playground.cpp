/**
 * @file
 * Predictor playground: compare the utilization predictors of the
 * paper's Section 5.2 (naive-previous, LMS, LMS+CUSUM, offline genie)
 * on a synthetic email-store trace, reporting one-step-ahead accuracy
 * and change-tracking behaviour.
 *
 *   ./predictor_playground
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>

#include "core/predictor.hh"
#include "util/online_stats.hh"
#include "util/table_printer.hh"
#include "workload/utilization_trace.hh"

using namespace sleepscale;

int
main()
{
    const UtilizationTrace trace =
        synthEmailStoreTrace(2, 77).dailyWindow(2, 20);
    std::cout << "trace: email store, 2 days, 2AM-8PM window ("
              << trace.size() << " minutes)\n\n";

    TablePrinter table({"predictor", "mean |error|", "p95 |error|",
                        "worst |error|", "notes"});

    for (const std::string name : {"NP", "LMS", "LC", "Offline"}) {
        const auto predictor = makePredictor(name, 10, trace.values());

        OnlineStats errors;
        std::vector<double> abs_errors;
        for (std::size_t t = 0; t < trace.size(); ++t) {
            const double forecast = predictor->predict(t);
            const double actual = trace.at(t);
            if (t >= 15) { // skip warm-up
                errors.add(std::abs(forecast - actual));
                abs_errors.push_back(std::abs(forecast - actual));
            }
            predictor->observe(t, actual);
        }
        std::sort(abs_errors.begin(), abs_errors.end());
        const double p95 =
            abs_errors[abs_errors.size() * 95 / 100];

        std::string notes;
        if (name == "LC") {
            const auto *lc =
                dynamic_cast<LmsCusumPredictor *>(predictor.get());
            notes = std::to_string(lc->changesDetected()) +
                    " change points";
        } else if (name == "Offline") {
            notes = "genie (non-causal)";
        }
        table.addRow({name, std::to_string(errors.mean()),
                      std::to_string(p95),
                      std::to_string(errors.max()), notes});
    }
    table.print(std::cout);

    std::cout << "\nLC collapses its averaging window when the CUSUM "
                 "statistic crosses its\nthreshold (mail bursts, backup "
                 "onset) and regrows it during stationary\nstretches — "
                 "the behaviour Figure 8 of the paper rewards.\n";
    return 0;
}
