/**
 * @file
 * Tests for the statistical-rigor layer: Student-t math, metric
 * summaries, replication determinism, paired comparison under common
 * random numbers, and the analytic coverage oracle — a ~200-point
 * (ρ, f, sleep-state) M/M/1 sweep asserting that the replication
 * layer's 95% confidence intervals cover the closed-form mm1_sleep
 * values at a rate consistent with the nominal level.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analytic/mm1_sleep.hh"
#include "experiment/replication.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "util/student_t.hh"
#include "workload/job_stream.hh"

namespace sleepscale {
namespace {

// ------------------------------------------------------------ Student-t

TEST(StudentT, CdfBasicProperties)
{
    EXPECT_DOUBLE_EQ(studentTCdf(0.0, 5), 0.5);
    // dof = 1 is Cauchy: F(1) = atan(1)/pi + 1/2 = 3/4 exactly.
    EXPECT_NEAR(studentTCdf(1.0, 1), 0.75, 1e-10);
    // Symmetry.
    for (double t : {0.3, 1.7, 4.2})
        EXPECT_NEAR(studentTCdf(-t, 7), 1.0 - studentTCdf(t, 7), 1e-12);
    // Monotone in t.
    EXPECT_LT(studentTCdf(1.0, 9), studentTCdf(2.0, 9));
}

TEST(StudentT, CriticalValuesMatchTables)
{
    // Two-sided 95% critical values (standard t tables).
    EXPECT_NEAR(studentTCriticalValue(0.95, 1), 12.7062047364, 1e-6);
    EXPECT_NEAR(studentTCriticalValue(0.95, 2), 4.30265272991, 1e-7);
    EXPECT_NEAR(studentTCriticalValue(0.95, 4), 2.77644510520, 1e-7);
    EXPECT_NEAR(studentTCriticalValue(0.95, 9), 2.26215716280, 1e-7);
    EXPECT_NEAR(studentTCriticalValue(0.95, 19), 2.09302405441, 1e-7);
    EXPECT_NEAR(studentTCriticalValue(0.95, 120), 1.97993040508, 1e-7);
    // Other levels.
    EXPECT_NEAR(studentTCriticalValue(0.99, 9), 3.24983554402, 1e-7);
    EXPECT_NEAR(studentTCriticalValue(0.90, 9), 1.83311293265, 1e-7);
    // Large dof approaches the normal 1.959964.
    EXPECT_NEAR(studentTCriticalValue(0.95, 100000), 1.95996, 1e-3);
}

TEST(StudentT, RejectsInvalidArguments)
{
    EXPECT_THROW(studentTCriticalValue(0.95, 0), ConfigError);
    EXPECT_THROW(studentTCriticalValue(0.0, 5), ConfigError);
    EXPECT_THROW(studentTCriticalValue(1.0, 5), ConfigError);
    EXPECT_THROW(studentTCdf(1.0, 0), ConfigError);
    EXPECT_THROW(incompleteBeta(0.0, 1.0, 0.5), ConfigError);
    EXPECT_THROW(incompleteBeta(1.0, 1.0, 1.5), ConfigError);
}

TEST(StudentT, IncompleteBetaKnownValues)
{
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 1.0), 1.0);
    // I_x(1, 1) = x.
    for (double x : {0.1, 0.5, 0.9})
        EXPECT_NEAR(incompleteBeta(1.0, 1.0, x), x, 1e-12);
    // I_{1/2}(a, a) = 1/2 by symmetry.
    for (double a : {0.5, 2.0, 7.5})
        EXPECT_NEAR(incompleteBeta(a, a, 0.5), 0.5, 1e-12);
}

// -------------------------------------------------------- MetricSummary

TEST(MetricSummary, KnownSmallSample)
{
    const MetricSummary summary =
        summarizeSamples("m", {1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_DOUBLE_EQ(summary.mean(), 3.0);
    EXPECT_NEAR(summary.stddev(), std::sqrt(2.5), 1e-12);
    // t*(0.95, 4 dof) * s / sqrt(5).
    const double expected =
        2.77644510520 * std::sqrt(2.5) / std::sqrt(5.0);
    EXPECT_NEAR(summary.ciHalfWidth(), expected, 1e-9);
    EXPECT_NEAR(summary.ciLow(), 3.0 - expected, 1e-9);
    EXPECT_NEAR(summary.ciHigh(), 3.0 + expected, 1e-9);
    EXPECT_TRUE(summary.covers(3.0));
    EXPECT_TRUE(summary.covers(3.0 + expected * 0.99));
    EXPECT_FALSE(summary.covers(3.0 + expected * 1.01));
    EXPECT_TRUE(summary.excludesZero());
    EXPECT_NE(summary.toString().find("±"), std::string::npos);
}

TEST(MetricSummary, DegenerateSampleCounts)
{
    const MetricSummary empty = summarizeSamples("e", {});
    EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
    EXPECT_DOUBLE_EQ(empty.ciHalfWidth(), 0.0);

    const MetricSummary one = summarizeSamples("o", {7.0});
    EXPECT_DOUBLE_EQ(one.mean(), 7.0);
    EXPECT_DOUBLE_EQ(one.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(one.ciHalfWidth(), 0.0);
    EXPECT_TRUE(one.covers(7.0));
    EXPECT_FALSE(one.covers(7.1));
    // One Monte-Carlo draw never claims significance: the zero-width
    // interval excludes zero numerically, but excludesZero() refuses
    // below two samples.
    EXPECT_FALSE(one.excludesZero());
    EXPECT_FALSE(empty.excludesZero());
}

TEST(MetricSummary, ConfidenceLevelWidensInterval)
{
    const std::vector<double> samples{1.0, 2.0, 3.0, 4.0, 5.0};
    const MetricSummary narrow = summarizeSamples("m", samples, 0.90);
    const MetricSummary wide = summarizeSamples("m", samples, 0.99);
    EXPECT_LT(narrow.ciHalfWidth(), wide.ciHalfWidth());
    EXPECT_THROW(summarizeSamples("m", samples, 0.0), ConfigError);
    EXPECT_THROW(summarizeSamples("m", samples, 1.0), ConfigError);
}

// ------------------------------------------------------ ReplicationPlan

ScenarioSpec
shortScenario(const std::string &strategy = "SS")
{
    return ScenarioBuilder("stat " + strategy)
        .workload("dns")
        .flatTrace(0.2, 25)
        .strategy(strategy)
        .epochMinutes(5)
        .overProvision(0.35)
        .predictor("NP")
        .seed(42)
        .build();
}

TEST(ReplicationPlan, SeedsAreDerivedAndDistinct)
{
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < 100; ++i) {
        const std::uint64_t seed =
            ReplicationPlan::replicationSeed(42, i);
        EXPECT_EQ(seed, ReplicationPlan::replicationSeed(42, i));
        EXPECT_NE(seed, 42u); // decorrelated from the base run
        seeds.insert(seed);
    }
    EXPECT_EQ(seeds.size(), 100u);
    EXPECT_NE(ReplicationPlan::replicationSeed(42, 0),
              ReplicationPlan::replicationSeed(43, 0));
}

TEST(ReplicationPlan, RejectsInvalidConfiguration)
{
    EXPECT_THROW(ReplicationPlan(0), ConfigError);
    EXPECT_THROW(ReplicationPlan(5, 1, 1.5), ConfigError);
    EXPECT_THROW(ScenarioBuilder("r").replications(0).build(),
                 ConfigError);
}

TEST(ReplicationPlan, SummarizesCoreMetricsAndResidencies)
{
    const ReplicatedResult result =
        ReplicationPlan(4).run(shortScenario());
    ASSERT_EQ(result.replications.size(), 4u);

    for (const char *name :
         {"mean_response_s", "p95_response_s", "p99_response_s",
          "avg_power_w", "energy_j", "qos_violation"}) {
        ASSERT_TRUE(result.hasMetric(name)) << name;
        EXPECT_EQ(result.metric(name).count(), 4u) << name;
    }
    // Per-state residencies are always present, all five states.
    double residency = 0.0;
    for (LowPowerState state : allLowPowerStates) {
        const std::string key = "residency_" + toString(state);
        ASSERT_TRUE(result.hasMetric(key)) << key;
        residency += result.metric(key).mean();
    }
    EXPECT_GT(residency, 0.0);
    EXPECT_LE(residency, 1.0 + 1e-9);

    // The violation rate is a mean of 0/1 outcomes.
    const MetricSummary &violation = result.metric("qos_violation");
    EXPECT_GE(violation.mean(), 0.0);
    EXPECT_LE(violation.mean(), 1.0);

    // Replication i really ran the derived seed.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(result.replications[i].spec.seed,
                  ReplicationPlan::replicationSeed(42, i));

    EXPECT_THROW(result.metric("no_such_metric"), ConfigError);
}

TEST(ReplicationPlan, ParallelBitIdenticalToSequential)
{
    const ScenarioSpec spec = shortScenario();
    const ReplicatedResult serial = ReplicationPlan(6, 1).run(spec);
    const ReplicatedResult two = ReplicationPlan(6, 2).run(spec);
    const ReplicatedResult eight = ReplicationPlan(6, 8).run(spec);

    ASSERT_EQ(serial.metrics.size(), two.metrics.size());
    ASSERT_EQ(serial.metrics.size(), eight.metrics.size());
    for (std::size_t m = 0; m < serial.metrics.size(); ++m) {
        const MetricSummary &a = serial.metrics[m];
        const MetricSummary &b = two.metrics[m];
        const MetricSummary &c = eight.metrics[m];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.name, c.name);
        ASSERT_EQ(a.samples.size(), b.samples.size());
        for (std::size_t i = 0; i < a.samples.size(); ++i) {
            EXPECT_EQ(a.samples[i], b.samples[i])
                << a.name << " replication " << i;
            EXPECT_EQ(a.samples[i], c.samples[i])
                << a.name << " replication " << i;
        }
    }
}

TEST(ExperimentRunner, RunReplicatedMatchesPerScenarioPlans)
{
    // The flattened (scenario × replication) pool reduction must equal
    // running each scenario's plan independently, whatever the width.
    ScenarioSpec base = shortScenario();
    base.replications = 3;

    ExperimentRunner runner(2);
    runner.addGrid(base, {sweepStrategies({"SS", "R2H(C6)"})});
    const auto replicated = runner.runReplicated();
    ASSERT_EQ(replicated.size(), 2u);

    const ReplicationPlan plan(3, 1);
    for (std::size_t s = 0; s < replicated.size(); ++s) {
        const ReplicatedResult direct =
            plan.run(runner.scenarios()[s]);
        ASSERT_EQ(replicated[s].metrics.size(), direct.metrics.size());
        for (std::size_t m = 0; m < direct.metrics.size(); ++m) {
            ASSERT_EQ(replicated[s].metrics[m].samples,
                      direct.metrics[m].samples)
                << direct.metrics[m].name;
        }
    }

    // Replicated CSV: one header plus one row per scenario, with
    // mean/sd/ci triples per metric.
    const std::string csv = replicatedToCsvString(replicated);
    EXPECT_NE(csv.find("avg_power_w_mean"), std::string::npos);
    EXPECT_NE(csv.find("avg_power_w_sd"), std::string::npos);
    EXPECT_NE(csv.find("avg_power_w_ci95"), std::string::npos);
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              replicated.size() + 1);

    // And the replication table renders with ± columns.
    std::ostringstream table;
    replicationTable(replicated).print(table);
    EXPECT_NE(table.str().find("±"), std::string::npos);
}

// --------------------------------------- paired common-random-numbers

TEST(PairedComparison, SharesSeedsAndCancelsStreamNoise)
{
    const ScenarioSpec ss = shortScenario("SS");
    ScenarioSpec r2h = shortScenario("R2H(C6)");
    r2h.seed = 777; // deliberately different: CRN must override it

    const ReplicationPlan plan(5, 1);
    const PairedComparison comparison = plan.comparePaired(ss, r2h);

    // Both sides replicated under ss.seed's derived stream.
    for (std::size_t i = 0; i < 5; ++i) {
        const std::uint64_t seed =
            ReplicationPlan::replicationSeed(ss.seed, i);
        EXPECT_EQ(comparison.a.replications[i].spec.seed, seed);
        EXPECT_EQ(comparison.b.replications[i].spec.seed, seed);
        // Identical arrival streams: same job count offered.
        EXPECT_EQ(comparison.a.replications[i].jobs,
                  comparison.b.replications[i].jobs);
    }

    // Deltas pair replication-by-replication.
    const MetricSummary &delta = comparison.delta("avg_power_w");
    ASSERT_EQ(delta.count(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(
            delta.samples[i],
            comparison.a.metric("avg_power_w").samples[i] -
                comparison.b.metric("avg_power_w").samples[i]);
    }
    EXPECT_TRUE(comparison.a.hasMetric("energy_j"));
    EXPECT_NO_THROW(comparison.delta("energy_savings_pct"));
    EXPECT_THROW(comparison.delta("nope"), ConfigError);

    std::ostringstream out;
    pairedTable(comparison).print(out);
    EXPECT_NE(out.str().find("significant?"), std::string::npos);
}

TEST(PairedComparison, Fig9PolicyPairIsSignificantAtN20)
{
    // The acceptance pair: SleepScale against SleepScale restricted
    // to C3 — two of Figure 9's strategies — at N = 20 replications
    // on a lightly loaded flat trace. Constraining the sleep space to
    // C3 costs real power (the free search settles elsewhere), so the
    // paired 95% CI on the power delta must exclude zero AND the two
    // strategies' own CIs must not overlap: the ordering is
    // statistically qualified, not anecdotal.
    auto scenario = [](const std::string &strategy) {
        return ScenarioBuilder("fig9 pair " + strategy)
            .workload("dns")
            .flatTrace(0.08, 25)
            .strategy(strategy)
            .epochMinutes(5)
            .overProvision(0.35)
            .predictor("NP")
            .seed(42)
            .build();
    };
    const ReplicationPlan plan(20, 1);
    const PairedComparison comparison =
        plan.comparePaired(scenario("SS"), scenario("SS(C3)"));

    EXPECT_TRUE(comparison.significant("avg_power_w"));
    EXPECT_TRUE(comparison.significant("energy_j"));
    // SS consumes less power: the delta (SS - SS(C3)) is negative.
    EXPECT_LT(comparison.delta("avg_power_w").ciHigh(), 0.0);
    // Savings in percent are positive and significant.
    EXPECT_GT(comparison.delta("power_savings_pct").ciLow(), 0.0);

    // Non-overlapping marginal CIs.
    const MetricSummary &ss = comparison.a.metric("avg_power_w");
    const MetricSummary &ss_c3 = comparison.b.metric("avg_power_w");
    EXPECT_LT(ss.ciHigh(), ss_c3.ciLow());
}

// ------------------------------------------- analytic coverage oracle

/**
 * One grid point of the coverage sweep: simulate N independent
 * replications of an M/M/1 server under a fixed (f, state) policy and
 * ask whether the replication layer's CIs cover the closed forms.
 */
struct CoverageOutcome
{
    bool responseCovered = false;
    bool powerCovered = false;
};

CoverageOutcome
coveragePoint(const PlatformModel &platform, const MM1SleepModel &model,
              double rho, double f, LowPowerState state,
              double service_mean, std::uint64_t point_seed)
{
    const double mu = 1.0 / service_mean;
    const double lambda = rho * mu;
    const Policy policy{f, SleepPlan::immediate(state)};

    constexpr std::size_t replications = 10;
    constexpr std::size_t jobs_per_replication = 2500;

    std::vector<double> responses, powers;
    responses.reserve(replications);
    powers.reserve(replications);
    for (std::size_t i = 0; i < replications; ++i) {
        Rng rng(ReplicationPlan::replicationSeed(point_seed, i));
        ExponentialDist gaps(1.0 / lambda);
        ExponentialDist sizes(service_mean);
        const auto jobs =
            generateJobs(rng, gaps, sizes, jobs_per_replication);
        const PolicyEvaluation eval = evaluatePolicy(
            platform, ServiceScaling::cpuBound(), policy, jobs);
        responses.push_back(eval.meanResponse());
        powers.push_back(eval.avgPower());
    }

    CoverageOutcome outcome;
    outcome.responseCovered =
        summarizeSamples("r", std::move(responses))
            .covers(model.meanResponse(policy, lambda, mu));
    outcome.powerCovered =
        summarizeSamples("p", std::move(powers))
            .covers(model.meanPower(policy, lambda, mu));
    return outcome;
}

TEST(AnalyticCoverage, CiCoversClosedFormsAtNominalRate)
{
    // ~200 (ρ, f, sleep-state) M/M/1 grid points, each replicated 10
    // times: the fraction of points whose 95% CI covers the closed
    // form must be consistent with the nominal level. With ~220
    // Bernoulli(0.95) trials, [0.90, 0.99] is a ±3σ acceptance band —
    // a miscalibrated interval (or a simulator bias) lands outside.
    const PlatformModel xeon = PlatformModel::xeon();
    const MM1SleepModel model(xeon);

    const std::vector<double> rhos{0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
    const std::vector<double> frequencies{0.4, 0.5, 0.65, 0.8, 1.0};
    const std::vector<double> service_means{0.05, 0.194};

    std::size_t points = 0, response_covered = 0, power_covered = 0;
    std::uint64_t point_seed = 20140614;
    for (double service_mean : service_means) {
        for (double rho : rhos) {
            for (double f : frequencies) {
                if (f < rho + 0.15)
                    continue; // keep the queue comfortably stable
                for (LowPowerState state : allLowPowerStates) {
                    const CoverageOutcome outcome = coveragePoint(
                        xeon, model, rho, f, state, service_mean,
                        point_seed++);
                    ++points;
                    response_covered += outcome.responseCovered;
                    power_covered += outcome.powerCovered;
                }
            }
        }
    }

    ASSERT_GE(points, 200u);
    std::cout << "coverage: response " << response_covered << "/"
              << points << ", power " << power_covered << "/" << points
              << " (nominal 95%)\n";
    const double response_rate =
        static_cast<double>(response_covered) /
        static_cast<double>(points);
    const double power_rate = static_cast<double>(power_covered) /
                              static_cast<double>(points);
    EXPECT_GE(response_rate, 0.90)
        << response_covered << "/" << points;
    EXPECT_LE(response_rate, 0.99)
        << response_covered << "/" << points;
    EXPECT_GE(power_rate, 0.90) << power_covered << "/" << points;
    EXPECT_LE(power_rate, 0.99) << power_covered << "/" << points;
}

} // namespace
} // namespace sleepscale
