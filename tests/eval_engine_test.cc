/**
 * @file
 * Tests for the batched policy-evaluation engine: plan-cache fidelity,
 * replay-vs-streaming equivalence, parallel-vs-serial bit-equality, and
 * pruned-vs-exhaustive decision equivalence across the Table 5
 * workloads.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/eval_engine.hh"
#include "core/policy_manager.hh"
#include "power/platform_model.hh"
#include "sim/pending_queue.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {
namespace {

std::vector<Job>
poissonLog(double rho, double service_mean, std::size_t n,
           std::uint64_t seed = 42)
{
    Rng rng(seed);
    ExponentialDist gaps(service_mean / rho);
    ExponentialDist sizes(service_mean);
    return generateJobs(rng, gaps, sizes, n);
}

/** A workload's moment-matched log at a target utilization. */
std::vector<Job>
workloadLog(const WorkloadSpec &spec, double rho, std::size_t n,
            std::uint64_t seed)
{
    Rng rng(seed);
    const auto gaps = spec.makeInterArrival(rho);
    const auto sizes = spec.makeService();
    return generateJobs(rng, *gaps, *sizes, n);
}

void
expectIdenticalDecisions(const PolicyDecision &a, const PolicyDecision &b)
{
    EXPECT_EQ(a.policy.frequency, b.policy.frequency);
    EXPECT_EQ(a.policy.plan.toString(), b.policy.plan.toString());
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.predictedPower, b.predictedPower);
    EXPECT_EQ(a.predictedMetric, b.predictedMetric);
}

class EvalEngineTest : public ::testing::Test
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();
    QosConstraint qos = QosConstraint::fromBaselineMean(0.8, 0.194);
};

// ------------------------------------------------------- the plan cache

TEST_F(EvalEngineTest, PlanCacheMatchesFreshMaterialization)
{
    const PolicySpace space = PolicySpace::standard();
    PolicyEvalEngine engine(xeon, ServiceScaling::cpuBound(), space, qos);

    for (std::size_t p = 0; p < space.plans.size(); ++p) {
        for (std::size_t k = 0; k < space.frequencies.size(); ++k) {
            const MaterializedPlan &cached = engine.materialized(p, k);
            const MaterializedPlan fresh(space.plans[p], xeon,
                                         space.frequencies[k]);
            ASSERT_EQ(cached.size(), fresh.size());
            for (std::size_t s = 0; s < fresh.size(); ++s) {
                EXPECT_EQ(cached.power(s), fresh.power(s));
                EXPECT_EQ(cached.enterAfter(s), fresh.enterAfter(s));
                EXPECT_EQ(cached.wakeLatency(s), fresh.wakeLatency(s));
                EXPECT_EQ(cached.state(s), fresh.state(s));
                EXPECT_EQ(cached.energyBeforeStage(s),
                          fresh.energyBeforeStage(s));
            }
        }
    }
}

TEST_F(EvalEngineTest, CachePersistsAcrossSelections)
{
    PolicyEvalEngine engine(xeon, ServiceScaling::cpuBound(),
                            PolicySpace::standard(), qos);
    const auto log = poissonLog(0.3, 0.194, 3000);

    const PolicyDecision first = engine.selectFromLog(log);
    const std::uint64_t after_first = engine.lifetimeEvaluations();
    const PolicyDecision second = engine.selectFromLog(log);

    // Same log, same configuration: identical decision, and the second
    // epoch performs the same number of evaluations over the cached
    // space (no rebuild effects).
    expectIdenticalDecisions(first, second);
    EXPECT_EQ(after_first, first.evaluated);
    EXPECT_EQ(engine.lifetimeEvaluations() - after_first,
              second.evaluated);
}

// ------------------------------------ replay vs the streaming simulator

TEST_F(EvalEngineTest, ReplayMatchesStreamingEvaluation)
{
    const auto jobs = poissonLog(0.25, 0.194, 8000, 7);
    const PreparedLog prepared = PreparedLog::fromJobs(jobs);

    for (const LowPowerState state : allLowPowerStates) {
        for (const double f : {0.4, 0.7, 1.0}) {
            const Policy policy{f, SleepPlan::immediate(state)};
            const PolicyEvaluation streamed = evaluatePolicy(
                xeon, ServiceScaling::cpuBound(), policy, jobs);

            ServerSim arena(xeon, ServiceScaling::cpuBound(), policy);
            arena.reset();
            const SimStats &replayed = arena.replay(prepared);

            EXPECT_EQ(replayed.completions, streamed.stats.completions);
            EXPECT_EQ(replayed.arrivals, streamed.stats.arrivals);
            EXPECT_NEAR(replayed.energy / streamed.stats.energy, 1.0,
                        1e-12);
            EXPECT_NEAR(replayed.busyTime, streamed.stats.busyTime,
                        1e-9);
            EXPECT_NEAR(replayed.wakeTime, streamed.stats.wakeTime,
                        1e-9);
            EXPECT_EQ(replayed.response.mean(),
                      streamed.stats.response.mean());
            EXPECT_EQ(replayed.responsePercentile(95.0),
                      streamed.stats.responsePercentile(95.0));
            EXPECT_DOUBLE_EQ(replayed.windowEnd,
                             streamed.stats.windowEnd);
            for (std::size_t i = 0; i < numLowPowerStates; ++i) {
                EXPECT_NEAR(replayed.idleResidency[i],
                            streamed.stats.idleResidency[i], 1e-9);
                EXPECT_EQ(replayed.wakeups[i],
                          streamed.stats.wakeups[i]);
            }
        }
    }
}

TEST_F(EvalEngineTest, ResetKeepsArenaReusable)
{
    const auto jobs = poissonLog(0.2, 0.194, 2000, 11);
    const PreparedLog prepared = PreparedLog::fromJobs(jobs);
    const Policy policy{0.6,
                        SleepPlan::delayed(LowPowerState::C6S3, 0.1)};
    const MaterializedPlan plan(policy.plan, xeon, policy.frequency);

    ServerSim arena(xeon, ServiceScaling::cpuBound(), Policy{});
    arena.reset(policy.frequency, plan);
    const double first_energy = arena.replay(prepared).energy;
    const double first_mean = arena.currentWindow().response.mean();

    // A second reset-and-replay of the same candidate is bit-identical.
    arena.reset(policy.frequency, plan);
    const SimStats &again = arena.replay(prepared);
    EXPECT_EQ(again.energy, first_energy);
    EXPECT_EQ(again.response.mean(), first_mean);
}

// ------------------------------------------- engine vs the legacy loop

TEST_F(EvalEngineTest, EngineMatchesNaivePerCandidateLoop)
{
    const auto jobs = poissonLog(0.3, 0.194, 6000, 3);
    const PolicySpace space = PolicySpace::standard();
    PolicyEvalEngine engine(xeon, ServiceScaling::cpuBound(), space, qos);
    const PolicyDecision decision = engine.selectFromLog(jobs);

    // Reproduce the pre-engine selection: a fresh streaming simulation
    // per candidate.
    const double rho = PolicyManager::logOfferedLoad(jobs);
    const double f_floor = engine.minStableFrequency(rho);
    double best_power = std::numeric_limits<double>::infinity();
    Policy best;
    double best_metric = 0.0;
    std::uint64_t evaluated = 0;
    for (const SleepPlan &plan : space.plans) {
        for (double f : space.frequencies) {
            if (f < f_floor)
                continue;
            const Policy candidate{f, plan};
            const PolicyEvaluation eval = evaluatePolicy(
                xeon, ServiceScaling::cpuBound(), candidate, jobs);
            ++evaluated;
            const double metric = qos.measuredValue(eval.stats);
            if (metric <= qos.budget() && eval.avgPower() < best_power) {
                best_power = eval.avgPower();
                best = candidate;
                best_metric = metric;
            }
        }
    }

    EXPECT_EQ(decision.evaluated, evaluated);
    EXPECT_TRUE(decision.feasible);
    EXPECT_EQ(decision.policy.frequency, best.frequency);
    EXPECT_EQ(decision.policy.plan.toString(), best.plan.toString());
    EXPECT_NEAR(decision.predictedPower / best_power, 1.0, 1e-12);
    EXPECT_NEAR(decision.predictedMetric / best_metric, 1.0, 1e-12);
}

// --------------------------------------- parallel-vs-serial bit-equality

TEST_F(EvalEngineTest, ParallelSelectionBitMatchesSerial)
{
    const PolicySpace space = PolicySpace::standard();
    PolicyEvalEngine serial(xeon, ServiceScaling::cpuBound(), space, qos);

    for (const double rho : {0.1, 0.3, 0.6}) {
        const auto log =
            poissonLog(rho, 0.194, 5000,
                       static_cast<std::uint64_t>(rho * 100));
        const PolicyDecision reference = serial.selectFromLog(log);
        for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                          std::size_t{8}}) {
            EvalEngineOptions options;
            options.threads = threads;
            PolicyEvalEngine parallel(xeon, ServiceScaling::cpuBound(),
                                      space, qos, options);
            const PolicyDecision decision = parallel.selectFromLog(log);
            expectIdenticalDecisions(reference, decision);
            EXPECT_EQ(reference.evaluated, decision.evaluated);
        }
    }
}

// ------------------------------------- pruned-vs-exhaustive equivalence

TEST_F(EvalEngineTest, PrunedMatchesExhaustiveAcrossTable5Workloads)
{
    const WorkloadSpec workloads[] = {dnsWorkload(), mailWorkload(),
                                      googleWorkload()};
    for (const WorkloadSpec &spec : workloads) {
        const QosConstraint mean_qos =
            QosConstraint::fromBaselineMean(0.8, spec.serviceMean);
        const QosConstraint tail_qos =
            QosConstraint::fromBaselineTail(0.8, spec.serviceMean);
        for (const QosConstraint &constraint : {mean_qos, tail_qos}) {
            PolicyEvalEngine exhaustive(xeon, spec.scaling,
                                        PolicySpace::standard(),
                                        constraint);
            EvalEngineOptions options;
            options.pruned = true;
            PolicyEvalEngine pruned(xeon, spec.scaling,
                                    PolicySpace::standard(), constraint,
                                    options);
            for (const double rho : {0.1, 0.3, 0.5}) {
                const auto log = workloadLog(spec, rho, 4000, 17);
                const PolicyDecision a = exhaustive.selectFromLog(log);
                const PolicyDecision b = pruned.selectFromLog(log);
                expectIdenticalDecisions(a, b);
                // Pruning must not characterize more than exhaustive.
                EXPECT_LE(b.evaluated, a.evaluated)
                    << spec.name << " rho=" << rho;
            }
        }
    }
}

TEST_F(EvalEngineTest, PrunedInfeasibleFallbackMatchesExhaustive)
{
    // An impossible budget: nothing is feasible, and the pruned search
    // must fall back to the identical best-effort (fastest) decision.
    const QosConstraint impossible = QosConstraint::meanBudget(1e-6);
    const auto log = poissonLog(0.3, 0.194, 4000, 5);

    PolicyEvalEngine exhaustive(xeon, ServiceScaling::cpuBound(),
                                PolicySpace::standard(), impossible);
    EvalEngineOptions options;
    options.pruned = true;
    PolicyEvalEngine pruned(xeon, ServiceScaling::cpuBound(),
                            PolicySpace::standard(), impossible, options);

    const PolicyDecision a = exhaustive.selectFromLog(log);
    const PolicyDecision b = pruned.selectFromLog(log);
    EXPECT_FALSE(a.feasible);
    expectIdenticalDecisions(a, b);
    EXPECT_EQ(a.evaluated, b.evaluated);
}

TEST_F(EvalEngineTest, PrunedParallelCombinationMatchesSerial)
{
    const auto log = poissonLog(0.2, 0.194, 5000, 23);
    PolicyEvalEngine serial(xeon, ServiceScaling::cpuBound(),
                            PolicySpace::standard(), qos);
    EvalEngineOptions options;
    options.pruned = true;
    options.threads = 4;
    PolicyEvalEngine combined(xeon, ServiceScaling::cpuBound(),
                              PolicySpace::standard(), qos, options);
    expectIdenticalDecisions(serial.selectFromLog(log),
                             combined.selectFromLog(log));
}

// ---------------------------------------------------------- validation

TEST_F(EvalEngineTest, ValidationMatchesPolicyManager)
{
    PolicySpace empty;
    EXPECT_THROW(PolicyEvalEngine(xeon, ServiceScaling::cpuBound(), empty,
                                  qos),
                 ConfigError);

    PolicySpace bad_freq = PolicySpace::standard();
    bad_freq.frequencies.push_back(1.5);
    EXPECT_THROW(PolicyEvalEngine(xeon, ServiceScaling::cpuBound(),
                                  bad_freq, qos),
                 ConfigError);

    // Pruned mode requires an ascending grid.
    PolicySpace shuffled = PolicySpace::standard();
    std::swap(shuffled.frequencies.front(),
              shuffled.frequencies.back());
    EvalEngineOptions options;
    options.pruned = true;
    EXPECT_THROW(PolicyEvalEngine(xeon, ServiceScaling::cpuBound(),
                                  shuffled, qos, options),
                 ConfigError);
}

// ------------------------------------------------------- prepared logs

TEST_F(EvalEngineTest, PreparedLogPrefixSums)
{
    const std::vector<Job> jobs = {{1.0, 0.2}, {2.0, 0.4}, {4.0, 0.1}};
    const PreparedLog log = PreparedLog::fromJobs(jobs);
    EXPECT_EQ(log.count(), 3u);
    EXPECT_DOUBLE_EQ(log.cumSize[0], 0.2);
    EXPECT_DOUBLE_EQ(log.cumSize[1], 0.2 + 0.4);
    EXPECT_DOUBLE_EQ(log.totalDemand(), 0.7);
    EXPECT_NEAR(log.meanSize(), 0.7 / 3.0, 1e-15);
    EXPECT_NEAR(log.offeredLoad(), 0.7 / 4.0, 1e-15);

    EXPECT_THROW(PreparedLog::fromJobs({}), ConfigError);
    EXPECT_THROW(PreparedLog::fromJobs({{2.0, 0.1}, {1.0, 0.1}}),
                 ConfigError);
    EXPECT_THROW(PreparedLog::fromJobs({{1.0, -0.1}}), ConfigError);
}

TEST_F(EvalEngineTest, PreparedOfferedLoadMatchesPolicyManagerHelper)
{
    const auto jobs = poissonLog(0.4, 0.194, 1000, 9);
    const PreparedLog log = PreparedLog::fromJobs(jobs);
    EXPECT_EQ(log.offeredLoad(), PolicyManager::logOfferedLoad(jobs));
    EXPECT_EQ(log.meanSize(), PolicyManager::logMeanSize(jobs));
}

// ------------------------------------------------- pending-queue ring

TEST(PendingQueueTest, FifoAcrossWrapAround)
{
    PendingQueue queue;
    // Push/pop more entries than the initial slab to force wrapping.
    std::size_t pushed = 0;
    std::size_t popped = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 17; ++i) {
            queue.push(static_cast<double>(pushed), 0.5);
            ++pushed;
        }
        for (int i = 0; i < 13; ++i) {
            ASSERT_FALSE(queue.empty());
            EXPECT_EQ(queue.front().depart,
                      static_cast<double>(popped));
            queue.pop();
            ++popped;
        }
    }
    EXPECT_EQ(queue.size(), pushed - popped);
    while (!queue.empty()) {
        EXPECT_EQ(queue.front().depart, static_cast<double>(popped));
        queue.pop();
        ++popped;
    }
    EXPECT_EQ(popped, pushed);

    queue.reset();
    EXPECT_TRUE(queue.empty());
    queue.push(7.0, 1.0);
    EXPECT_EQ(queue.front().depart, 7.0);
    EXPECT_EQ(queue.front().response, 1.0);
}

} // namespace
} // namespace sleepscale
