/**
 * @file
 * Unit tests for the power model against the paper's Tables 1-4.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "power/component_table.hh"
#include "power/low_power_state.hh"
#include "power/platform_model.hh"
#include "util/error.hh"

namespace sleepscale {
namespace {

// ----------------------------------------------------------- state names

TEST(LowPowerState, NamesMatchPaperNotation)
{
    EXPECT_EQ(toString(LowPowerState::C0IdleS0Idle), "C0(i)S0(i)");
    EXPECT_EQ(toString(LowPowerState::C1S0Idle), "C1S0(i)");
    EXPECT_EQ(toString(LowPowerState::C3S0Idle), "C3S0(i)");
    EXPECT_EQ(toString(LowPowerState::C6S0Idle), "C6S0(i)");
    EXPECT_EQ(toString(LowPowerState::C6S3), "C6S3");
}

TEST(LowPowerState, RoundTripThroughStrings)
{
    for (LowPowerState state : allLowPowerStates)
        EXPECT_EQ(lowPowerStateFromString(toString(state)), state);
}

TEST(LowPowerState, UnknownNameThrows)
{
    EXPECT_THROW(lowPowerStateFromString("C9S9"), ConfigError);
}

TEST(LowPowerState, DepthIndexIsOrdered)
{
    for (std::size_t i = 0; i < allLowPowerStates.size(); ++i)
        EXPECT_EQ(depthIndex(allLowPowerStates[i]), i);
}

// -------------------------------------------------------- Xeon, Table 2

class XeonModel : public ::testing::Test
{
  protected:
    PlatformModel model = PlatformModel::xeon();
};

TEST_F(XeonModel, ActivePowerAtFullFrequency)
{
    // 130 * 1^3 + 120 = 250 W.
    EXPECT_DOUBLE_EQ(model.activePower(1.0), 250.0);
}

TEST_F(XeonModel, ActivePowerScalesCubically)
{
    // At f = 0.5: 130 / 8 + 120 = 136.25 W.
    EXPECT_DOUBLE_EQ(model.activePower(0.5), 136.25);
}

TEST_F(XeonModel, OperatingIdlePowerMatchesTable)
{
    // C0(i)S0(i) at f = 1: 75 + 60.5 = 135.5 W (the paper's worked
    // example "75 V^2 f + 52.7" uses a platform subtotal without fan and
    // PSU idle; our platform column sums to 60.5 W as in Table 2).
    EXPECT_DOUBLE_EQ(model.lowPower(LowPowerState::C0IdleS0Idle, 1.0),
                     135.5);
    // Cubic in f.
    EXPECT_DOUBLE_EQ(model.lowPower(LowPowerState::C0IdleS0Idle, 0.5),
                     75.0 / 8.0 + 60.5);
}

TEST_F(XeonModel, HaltPowerIsQuadraticLeakage)
{
    // C1S0(i): 47 V^2 -> 47 f^2 plus platform idle.
    EXPECT_DOUBLE_EQ(model.lowPower(LowPowerState::C1S0Idle, 1.0), 107.5);
    EXPECT_DOUBLE_EQ(model.lowPower(LowPowerState::C1S0Idle, 0.5),
                     47.0 / 4.0 + 60.5);
}

TEST_F(XeonModel, DeepStatesAreFrequencyIndependent)
{
    for (LowPowerState state :
         {LowPowerState::C3S0Idle, LowPowerState::C6S0Idle,
          LowPowerState::C6S3}) {
        EXPECT_DOUBLE_EQ(model.lowPower(state, 1.0),
                         model.lowPower(state, 0.3));
    }
}

TEST_F(XeonModel, SleepAndDeepSleepTotals)
{
    EXPECT_DOUBLE_EQ(model.lowPower(LowPowerState::C3S0Idle, 1.0), 82.5);
    EXPECT_DOUBLE_EQ(model.lowPower(LowPowerState::C6S0Idle, 1.0), 75.5);
    EXPECT_DOUBLE_EQ(model.lowPower(LowPowerState::C6S3, 1.0), 28.1);
}

TEST_F(XeonModel, PowerStrictlyDecreasesWithDepthAtFullFrequency)
{
    double previous = model.activePower(1.0);
    for (LowPowerState state : allLowPowerStates) {
        const double p = model.lowPower(state, 1.0);
        EXPECT_LT(p, previous) << toString(state);
        previous = p;
    }
}

TEST_F(XeonModel, OperatingIdleUndercutsSleepAtLowFrequency)
{
    // With V proportional to f the C0(i) idle power 75 f^3 falls below
    // C3's fixed 22 W for f below (22/75)^(1/3) ~ 0.66 — the crossover
    // behind the paper's lesson 2, where C0(i)S0(i) policies become
    // optimal under mid-range response-time constraints.
    const double crossover = std::cbrt(22.0 / 75.0);
    const double c3 = model.lowPower(LowPowerState::C3S0Idle, 1.0);
    EXPECT_LT(model.lowPower(LowPowerState::C0IdleS0Idle,
                             crossover - 0.05),
              c3);
    EXPECT_GT(model.lowPower(LowPowerState::C0IdleS0Idle,
                             crossover + 0.05),
              c3);
}

TEST_F(XeonModel, WakeLatenciesMatchSection42Choices)
{
    EXPECT_DOUBLE_EQ(model.wakeLatency(LowPowerState::C0IdleS0Idle), 0.0);
    EXPECT_DOUBLE_EQ(model.wakeLatency(LowPowerState::C1S0Idle), 10e-6);
    EXPECT_DOUBLE_EQ(model.wakeLatency(LowPowerState::C3S0Idle), 100e-6);
    EXPECT_DOUBLE_EQ(model.wakeLatency(LowPowerState::C6S0Idle), 1e-3);
    EXPECT_DOUBLE_EQ(model.wakeLatency(LowPowerState::C6S3), 1.0);
}

TEST_F(XeonModel, WakeLatenciesInsideTable4Ranges)
{
    for (LowPowerState state : allLowPowerStates) {
        const WakeLatencyRange range = wakeLatencyRange(state);
        const double w = model.wakeLatency(state);
        EXPECT_GE(w, range.lo) << toString(state);
        EXPECT_LE(w, range.hi) << toString(state);
    }
}

TEST_F(XeonModel, WakeLatencyIncreasesWithDepth)
{
    double previous = -1.0;
    for (LowPowerState state : allLowPowerStates) {
        const double w = model.wakeLatency(state);
        EXPECT_GE(w, previous);
        previous = w;
    }
}

TEST_F(XeonModel, FrequencyDomainValidated)
{
    EXPECT_THROW(model.activePower(0.0), ConfigError);
    EXPECT_THROW(model.activePower(1.5), ConfigError);
    EXPECT_THROW(model.lowPower(LowPowerState::C1S0Idle, -0.1),
                 ConfigError);
}

// -------------------------------------------------------- component sums

TEST(ComponentTable, TotalsMatchPlatformPresets)
{
    const auto &table = xeonComponentTable();
    const PlatformPowerParams params;
    EXPECT_NEAR(componentTotalOperating(table), params.s0Active, 1e-9);
    EXPECT_NEAR(componentTotalIdle(table), params.s0Idle, 1e-9);
    EXPECT_NEAR(componentTotalDeeperSleep(table), params.s3, 1e-9);
}

TEST(ComponentTable, HasTheSixPaperComponents)
{
    EXPECT_EQ(xeonComponentTable().size(), 6u);
}

// ------------------------------------------------------------------ Atom

TEST(AtomModel, SmallCpuLargePlatform)
{
    const PlatformModel atom = PlatformModel::atom();
    // CPU dynamic range is small relative to platform power.
    const double cpu_peak = atom.activePower(1.0) - atom.platform().s0Active;
    EXPECT_LT(cpu_peak, 0.2 * atom.platform().s0Active);
}

TEST(AtomModel, OrderingInvariantsHold)
{
    const PlatformModel atom = PlatformModel::atom();
    double previous = atom.activePower(1.0);
    for (LowPowerState state : allLowPowerStates) {
        const double p = atom.lowPower(state, 1.0);
        EXPECT_LT(p, previous);
        previous = p;
    }
}

// ------------------------------------------------------------ validation

TEST(PlatformModelValidation, RejectsNonPositivePowers)
{
    CpuPowerParams cpu;
    cpu.activeCoeff = -1.0;
    EXPECT_THROW(PlatformModel("bad", cpu, PlatformPowerParams{},
                               WakeLatencies{}),
                 ConfigError);
}

TEST(PlatformModelValidation, RejectsNonMonotonicPower)
{
    // Make C6 more power hungry than C3.
    CpuPowerParams cpu;
    cpu.deepSleepPower = cpu.sleepPower + 10.0;
    EXPECT_THROW(PlatformModel("bad", cpu, PlatformPowerParams{},
                               WakeLatencies{}),
                 ConfigError);
}

TEST(PlatformModelValidation, RejectsDecreasingWakeLatency)
{
    WakeLatencies wake;
    wake.c6S0Idle = 1e-6; // shallower than C3's 100us
    EXPECT_THROW(PlatformModel("bad", CpuPowerParams{},
                               PlatformPowerParams{}, wake),
                 ConfigError);
}

} // namespace
} // namespace sleepscale
