/**
 * @file
 * Hand-verified arithmetic tests for the FCFS server simulator.
 *
 * Every scenario's energy, response times, and residencies are computed
 * by hand from the paper's model and checked exactly (to float tolerance).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"

namespace sleepscale {
namespace {

class XeonSim : public ::testing::Test
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();

    Policy
    immediatePolicy(LowPowerState state, double f = 1.0) const
    {
        return Policy{f, SleepPlan::immediate(state)};
    }
};

// ------------------------------------------- single job, deep sleep wake

TEST_F(XeonSim, SingleJobWakesFromDeepSleep)
{
    // Idle in C6S3 (28.1 W, wake 1 s) for 10 s, then a 2 s job arrives.
    ServerSim sim(xeon, ServiceScaling::cpuBound(),
                  immediatePolicy(LowPowerState::C6S3));
    sim.offerJob({10.0, 2.0});
    sim.advanceTo(sim.nextFreeTime());
    const SimStats stats = sim.harvestWindow();

    EXPECT_DOUBLE_EQ(sim.nextFreeTime(), 13.0); // 10 + 1 wake + 2 service
    EXPECT_EQ(stats.completions, 1u);
    EXPECT_DOUBLE_EQ(stats.response.mean(), 3.0); // wake + service
    EXPECT_DOUBLE_EQ(stats.wakeTime, 1.0);
    EXPECT_EQ(stats.wakeups[depthIndex(LowPowerState::C6S3)], 1u);
    EXPECT_DOUBLE_EQ(stats.idleResidency[depthIndex(LowPowerState::C6S3)],
                     10.0);
    EXPECT_DOUBLE_EQ(stats.busyTime, 3.0);
    // Energy: 10 s * 28.1 W + 3 s * 250 W.
    EXPECT_NEAR(stats.energy, 281.0 + 750.0, 1e-9);
    EXPECT_NEAR(stats.avgPower(), 1031.0 / 13.0, 1e-9);
}

// --------------------------------------------------- FCFS queueing, DVFS

TEST_F(XeonSim, QueueedJobWaitsAndFrequencyStretchesService)
{
    // f = 0.5, CPU-bound: service time doubles.
    ServerSim sim(xeon, ServiceScaling::cpuBound(),
                  immediatePolicy(LowPowerState::C0IdleS0Idle, 0.5));
    sim.offerJob({1.0, 2.0}); // serves 1..5
    sim.offerJob({2.0, 1.0}); // queues, serves 5..7
    sim.advanceTo(sim.nextFreeTime());
    const SimStats stats = sim.harvestWindow();

    EXPECT_DOUBLE_EQ(sim.nextFreeTime(), 7.0);
    EXPECT_EQ(stats.completions, 2u);
    EXPECT_DOUBLE_EQ(stats.response.mean(), (4.0 + 5.0) / 2.0);
    EXPECT_DOUBLE_EQ(stats.wakeTime, 0.0); // C0(i) wakes instantly
    EXPECT_DOUBLE_EQ(stats.busyTime, 6.0);

    const double idle_power = 75.0 * 0.125 + 60.5;
    const double active_power = 130.0 * 0.125 + 120.0;
    EXPECT_NEAR(stats.energy, idle_power * 1.0 + active_power * 6.0,
                1e-9);
}

TEST_F(XeonSim, MemoryBoundServiceIgnoresFrequency)
{
    ServerSim sim(xeon, ServiceScaling::memoryBound(),
                  immediatePolicy(LowPowerState::C0IdleS0Idle, 0.3));
    sim.offerJob({0.0, 2.0});
    EXPECT_DOUBLE_EQ(sim.nextFreeTime(), 2.0);
}

// ----------------------------------------------- delayed descent energy

TEST_F(XeonSim, DelayedDescentIntegratesPiecewise)
{
    // C0(i)S0(i) for 5 s, then C6S3; job arrives at t = 8.
    const Policy policy{1.0, SleepPlan::delayed(LowPowerState::C6S3, 5.0)};
    ServerSim sim(xeon, ServiceScaling::cpuBound(), policy);
    sim.offerJob({8.0, 1.0});
    sim.advanceTo(sim.nextFreeTime());
    const SimStats stats = sim.harvestWindow();

    EXPECT_DOUBLE_EQ(
        stats.idleResidency[depthIndex(LowPowerState::C0IdleS0Idle)], 5.0);
    EXPECT_DOUBLE_EQ(stats.idleResidency[depthIndex(LowPowerState::C6S3)],
                     3.0);
    // Woke from the deep stage: 1 s latency.
    EXPECT_DOUBLE_EQ(stats.response.mean(), 2.0);
    EXPECT_NEAR(stats.energy, 135.5 * 5.0 + 28.1 * 3.0 + 250.0 * 2.0,
                1e-9);
}

TEST_F(XeonSim, ArrivalBeforeDeepEntryWakesInstantly)
{
    const Policy policy{1.0, SleepPlan::delayed(LowPowerState::C6S3, 5.0)};
    ServerSim sim(xeon, ServiceScaling::cpuBound(), policy);
    sim.offerJob({3.0, 1.0}); // still in C0(i)S0(i): no wake latency
    sim.advanceTo(sim.nextFreeTime());
    const SimStats stats = sim.harvestWindow();
    EXPECT_DOUBLE_EQ(stats.response.mean(), 1.0);
    EXPECT_DOUBLE_EQ(stats.wakeTime, 0.0);
}

// --------------------------------------------------- window attribution

TEST_F(XeonSim, WindowsSplitEnergyAndAttributeResponsesAtDeparture)
{
    const Policy policy{1.0, SleepPlan::delayed(LowPowerState::C6S3, 5.0)};
    ServerSim sim(xeon, ServiceScaling::cpuBound(), policy);

    sim.advanceTo(6.0);
    const SimStats first = sim.harvestWindow();
    EXPECT_NEAR(first.energy, 135.5 * 5.0 + 28.1 * 1.0, 1e-9);
    EXPECT_EQ(first.completions, 0u);
    EXPECT_DOUBLE_EQ(first.elapsed(), 6.0);

    sim.offerJob({8.0, 1.0});
    sim.advanceTo(sim.nextFreeTime());
    const SimStats second = sim.harvestWindow();
    EXPECT_EQ(second.completions, 1u);
    EXPECT_NEAR(second.energy, 28.1 * 2.0 + 250.0 * 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(second.windowStart, 6.0);
    EXPECT_DOUBLE_EQ(second.windowEnd, 10.0);
}

TEST_F(XeonSim, BackloggedResponseLandsInDepartureWindow)
{
    ServerSim sim(xeon, ServiceScaling::cpuBound(),
                  immediatePolicy(LowPowerState::C0IdleS0Idle));
    sim.offerJob({1.0, 10.0}); // departs at 11
    sim.advanceTo(5.0);
    const SimStats first = sim.harvestWindow();
    EXPECT_EQ(first.completions, 0u);
    EXPECT_EQ(sim.pendingDepartures(), 1u);

    sim.advanceTo(11.0);
    const SimStats second = sim.harvestWindow();
    EXPECT_EQ(second.completions, 1u);
    EXPECT_DOUBLE_EQ(second.response.mean(), 10.0);
}

// ------------------------------------------------------- policy switches

TEST_F(XeonSim, SwitchWhileIdlePreservesDescentClock)
{
    ServerSim sim(xeon, ServiceScaling::cpuBound(),
                  immediatePolicy(LowPowerState::C0IdleS0Idle));
    // 4 s in C0(i)S0(i) at 135.5 W, then switch to immediate C6S3.
    sim.setPolicy(immediatePolicy(LowPowerState::C6S3), 4.0);
    sim.advanceTo(6.0);
    const SimStats stats = sim.harvestWindow();
    EXPECT_NEAR(stats.energy, 135.5 * 4.0 + 28.1 * 2.0, 1e-9);

    // An arrival now pays the C6S3 wake-up latency.
    sim.offerJob({6.0, 1.0});
    EXPECT_DOUBLE_EQ(sim.nextFreeTime(), 8.0); // 6 + 1 wake + 1 service
}

TEST_F(XeonSim, SwitchWhileBusyKeepsCommittedServiceTimes)
{
    ServerSim sim(xeon, ServiceScaling::cpuBound(),
                  immediatePolicy(LowPowerState::C0IdleS0Idle, 1.0));
    sim.offerJob({1.0, 10.0}); // committed at f=1: departs 11
    sim.setPolicy(immediatePolicy(LowPowerState::C0IdleS0Idle, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(sim.nextFreeTime(), 11.0);

    // A job admitted after the switch is served at the new frequency.
    sim.offerJob({3.0, 1.0});
    EXPECT_DOUBLE_EQ(sim.nextFreeTime(), 13.0); // 11 + 1*2

    sim.advanceTo(sim.nextFreeTime());
    const SimStats stats = sim.harvestWindow();
    // Busy power: 250 W over [1,2) then 136.25 W over [2,13).
    const double expected_busy = 250.0 * 1.0 + 136.25 * 11.0;
    const double expected_idle = 135.5 * 1.0; // [0,1) at f=1
    EXPECT_NEAR(stats.energy, expected_busy + expected_idle, 1e-9);
}

// ------------------------------------------------------------ guard rails

TEST_F(XeonSim, OutOfOrderArrivalsRejected)
{
    ServerSim sim(xeon, ServiceScaling::cpuBound(),
                  immediatePolicy(LowPowerState::C0IdleS0Idle));
    sim.advanceTo(5.0);
    EXPECT_THROW(sim.offerJob({4.0, 1.0}), ConfigError);
}

TEST_F(XeonSim, NegativeJobSizeRejected)
{
    ServerSim sim(xeon, ServiceScaling::cpuBound(),
                  immediatePolicy(LowPowerState::C0IdleS0Idle));
    EXPECT_THROW(sim.offerJob({1.0, -1.0}), ConfigError);
}

TEST_F(XeonSim, InvalidPolicyFrequencyRejected)
{
    ServerSim sim(xeon, ServiceScaling::cpuBound(),
                  immediatePolicy(LowPowerState::C0IdleS0Idle));
    EXPECT_THROW(
        sim.setPolicy(immediatePolicy(LowPowerState::C6S3, 0.0), 1.0),
        ConfigError);
}

TEST_F(XeonSim, BacklogReportsRemainingWork)
{
    ServerSim sim(xeon, ServiceScaling::cpuBound(),
                  immediatePolicy(LowPowerState::C0IdleS0Idle));
    sim.offerJob({1.0, 10.0});
    EXPECT_DOUBLE_EQ(sim.backlog(2.0), 9.0);
    EXPECT_DOUBLE_EQ(sim.backlog(20.0), 0.0);
}

// ---------------------------------------------------------- bulk sanity

TEST_F(XeonSim, BusyFractionTracksOfferedLoad)
{
    // M/M/1 at rho = 0.5, f = 1, no wake latency: busy fraction ~ 0.5.
    Rng rng(123);
    ExponentialDist gaps(2.0), sizes(1.0);
    const auto jobs = generateJobs(rng, gaps, sizes, 100000);
    const PolicyEvaluation eval = evaluatePolicy(
        xeon, ServiceScaling::cpuBound(),
        immediatePolicy(LowPowerState::C0IdleS0Idle), jobs);
    const double busy_fraction =
        eval.stats.busyTime / eval.stats.elapsed();
    EXPECT_NEAR(busy_fraction, 0.5, 0.01);
    // And the mean response approaches 1/(mu - lambda) = 2.
    EXPECT_NEAR(eval.meanResponse(), 2.0, 0.1);
}

TEST_F(XeonSim, LoweringFrequencyRaisesResponse)
{
    Rng rng(321);
    ExponentialDist gaps(10.0), sizes(1.0);
    const auto jobs = generateJobs(rng, gaps, sizes, 20000);

    double previous = 0.0;
    for (double f : {1.0, 0.8, 0.6, 0.4}) {
        const PolicyEvaluation eval = evaluatePolicy(
            xeon, ServiceScaling::cpuBound(),
            immediatePolicy(LowPowerState::C0IdleS0Idle, f), jobs);
        EXPECT_GT(eval.meanResponse(), previous) << "f=" << f;
        previous = eval.meanResponse();
    }
}

TEST_F(XeonSim, EvaluatePolicyRejectsEmptyJobList)
{
    EXPECT_THROW(evaluatePolicy(xeon, ServiceScaling::cpuBound(),
                                immediatePolicy(
                                    LowPowerState::C0IdleS0Idle),
                                {}),
                 ConfigError);
}

TEST_F(XeonSim, AveragePowerBoundedByModelExtremes)
{
    Rng rng(55);
    ExponentialDist gaps(1.0), sizes(0.194);
    const auto jobs = generateJobs(rng, gaps, sizes, 50000);
    for (LowPowerState state : allLowPowerStates) {
        const PolicyEvaluation eval =
            evaluatePolicy(xeon, ServiceScaling::cpuBound(),
                           immediatePolicy(state), jobs);
        EXPECT_GT(eval.avgPower(), xeon.lowPower(LowPowerState::C6S3, 1.0));
        EXPECT_LT(eval.avgPower(), xeon.activePower(1.0));
    }
}

} // namespace
} // namespace sleepscale
