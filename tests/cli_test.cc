/**
 * @file
 * Tests for the command-line argument parser and runtime CSV export.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "power/platform_model.hh"
#include "util/cli_args.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"

namespace sleepscale {
namespace {

CliArgs
parse(std::initializer_list<const char *> words,
      const std::set<std::string> &known = {"rho", "workload", "flag"})
{
    std::vector<const char *> argv = {"sleepscale"};
    argv.insert(argv.end(), words.begin(), words.end());
    return CliArgs(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(CliArgs, ParsesCommandAndOptions)
{
    const CliArgs args = parse({"run", "--rho", "0.25", "--flag"});
    EXPECT_EQ(args.command(), "run");
    EXPECT_TRUE(args.has("rho"));
    EXPECT_DOUBLE_EQ(args.getDouble("rho", 0.0), 0.25);
    EXPECT_TRUE(args.has("flag"));
    EXPECT_EQ(args.get("flag", ""), "true");
}

TEST(CliArgs, DefaultsApplyWhenAbsent)
{
    const CliArgs args = parse({"run"});
    EXPECT_FALSE(args.has("rho"));
    EXPECT_DOUBLE_EQ(args.getDouble("rho", 0.5), 0.5);
    EXPECT_EQ(args.get("workload", "dns"), "dns");
    EXPECT_EQ(args.getUnsigned("rho", 7), 7u);
}

TEST(CliArgs, NoCommandIsEmpty)
{
    const CliArgs args = parse({"--rho", "0.1"});
    EXPECT_EQ(args.command(), "");
}

TEST(CliArgs, UnknownOptionRejected)
{
    EXPECT_THROW(parse({"run", "--bogus", "1"}), ConfigError);
}

TEST(CliArgs, MalformedValuesRejected)
{
    const CliArgs args = parse({"run", "--rho", "abc"});
    EXPECT_THROW(args.getDouble("rho", 0.0), ConfigError);
    EXPECT_THROW(args.getUnsigned("rho", 0), ConfigError);
}

TEST(CliArgs, TrailingJunkRejected)
{
    // "5x" must be a loud typo, not a silent 5 — same for doubles.
    const CliArgs args = parse({"run", "--rho", "0.5x"});
    EXPECT_THROW(args.getDouble("rho", 0.0), ConfigError);
    const CliArgs ints = parse({"run", "--rho", "5x"});
    EXPECT_THROW(ints.getUnsigned("rho", 0), ConfigError);
}

TEST(CliArgs, NonFiniteDoublesRejected)
{
    // "nan" parses cleanly but defeats every downstream range check
    // (NaN compares false against any bound), so the boundary rejects
    // it — same for infinities.
    for (const char *bad : {"nan", "inf", "-inf", "NAN"}) {
        const CliArgs args = parse({"run", "--rho", bad});
        EXPECT_THROW(args.getDouble("rho", 0.0), ConfigError) << bad;
    }
}

TEST(CliArgs, NegativeUnsignedRejected)
{
    const std::set<std::string> known = {"n"};
    std::vector<const char *> argv = {"x", "--n", "-3"};
    // "-3" is treated as a value (no "--" prefix), then rejected.
    const CliArgs args(static_cast<int>(argv.size()), argv.data(),
                       known);
    EXPECT_THROW(args.getUnsigned("n", 0), ConfigError);
}

TEST(CliArgs, BareWordsAfterOptionsRejected)
{
    EXPECT_THROW(parse({"run", "extra"}), ConfigError);
}

// ------------------------------------------------------------ CSV export

TEST(EpochCsv, ExportsOneRowPerEpoch)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(20, 0.2));
    Rng rng(5);
    const auto jobs = generateTraceDrivenJobs(rng, dns, trace);

    RuntimeConfig config;
    config.epochMinutes = 5;
    const SleepScaleRuntime runtime(xeon, dns, config);
    NaivePreviousPredictor predictor(0.2);
    const RuntimeResult result = runtime.run(jobs, trace, predictor);

    const CsvTable table = epochsToCsv(result);
    EXPECT_EQ(table.rows.size(), result.epochs.size());
    const auto power = table.column("avg_power_w");
    for (double watts : power) {
        EXPECT_GE(watts, 0.0);
        EXPECT_LT(watts, xeon.activePower(1.0));
    }
    const auto freq = table.column("frequency");
    for (double f : freq) {
        EXPECT_GT(f, 0.0);
        EXPECT_LE(f, 1.0);
    }
    // Round trip through text.
    const CsvTable parsed = fromCsv(toCsv(table));
    EXPECT_EQ(parsed.rows.size(), table.rows.size());
}

} // namespace
} // namespace sleepscale
