/**
 * @file
 * Scale tests for the event-driven farm core (docs/FARM_SCALE.md):
 * the IdleSet / BusyCalendar index structures, bit-identical results
 * at every shard-pool width, bounded calendar memory over a long
 * streaming run, and the 10k-server million-job smoke run with the
 * conservation invariant checked at every epoch close.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/predictor.hh"
#include "farm/dispatcher.hh"
#include "farm/farm_calendar.hh"
#include "farm/farm_runtime.hh"
#include "farm/server_farm.hh"
#include "power/platform_model.hh"
#include "util/rng.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {
namespace {

TEST(IdleSet, TracksLowestMemberAcrossWordBoundaries)
{
    IdleSet set(200);
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.lowest(), 200u);

    // Members straddling 64-bit word boundaries: lowest() must walk
    // the summary hierarchy, not just the first word.
    set.insert(130);
    EXPECT_EQ(set.lowest(), 130u);
    set.insert(64);
    EXPECT_EQ(set.lowest(), 64u);
    set.insert(63);
    EXPECT_EQ(set.lowest(), 63u);
    EXPECT_EQ(set.count(), 3u);

    // Idempotent mutation.
    set.insert(64);
    EXPECT_EQ(set.count(), 3u);
    set.erase(63);
    set.erase(63);
    EXPECT_EQ(set.count(), 2u);
    EXPECT_EQ(set.lowest(), 64u);
    EXPECT_FALSE(set.contains(63));
    EXPECT_TRUE(set.contains(130));

    set.erase(64);
    set.erase(130);
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.lowest(), 200u);
}

TEST(IdleSet, FullConstructionMatchesNaiveSetAtHundredThousand)
{
    // Three bitmap levels at this size; a fresh farm is all idle.
    const std::size_t size = 100000;
    IdleSet set(size, /*full=*/true);
    EXPECT_EQ(set.count(), size);
    EXPECT_EQ(set.lowest(), 0u);

    // Knock out a prefix and spot-check against the naive answer.
    for (std::size_t i = 0; i < 4097; ++i)
        set.erase(i);
    EXPECT_EQ(set.lowest(), 4097u);
    set.insert(70);
    EXPECT_EQ(set.lowest(), 70u);
    set.erase(70);
    EXPECT_EQ(set.lowest(), 4097u);
    EXPECT_EQ(set.count(), size - 4097);
}

TEST(BusyCalendar, DrainsDueEventsAndDiscardsStaleOnes)
{
    BusyCalendar calendar;
    std::vector<double> next_free = {5.0, 3.0, 9.0};

    // Server 0 was first scheduled to free at 2.0, then an admission
    // extended it to 5.0: the 2.0 entry is stale and must not fire.
    calendar.push(2.0, 0);
    calendar.push(5.0, 0);
    calendar.push(3.0, 1);
    calendar.push(9.0, 2);
    EXPECT_EQ(calendar.pendingEntries(), 4u);

    std::vector<std::size_t> idled;
    calendar.drainDue(5.0, next_free,
                      [&](std::size_t server) { idled.push_back(server); });
    // Time order: stale 2.0 discarded, then 3.0 (server 1), 5.0
    // (server 0); server 2 is still due in the future.
    ASSERT_EQ(idled.size(), 2u);
    EXPECT_EQ(idled[0], 1u);
    EXPECT_EQ(idled[1], 0u);
    EXPECT_EQ(calendar.pendingEntries(), 1u);
    EXPECT_EQ(calendar.earliestBusy(next_free), 2u);
}

TEST(BusyCalendar, EarliestBusyBreaksTiesToLowestServer)
{
    BusyCalendar calendar;
    std::vector<double> next_free = {7.0, 7.0, 4.0};
    calendar.push(7.0, 1);
    calendar.push(7.0, 0);
    calendar.push(4.0, 2);

    // Valid earliest is server 2; after invalidating it (the mirror
    // moved on), the 7.0 tie must resolve to server 0.
    EXPECT_EQ(calendar.earliestBusy(next_free), 2u);
    next_free[2] = 11.0;
    EXPECT_EQ(calendar.earliestBusy(next_free), 0u);

    next_free[0] = 8.0;
    next_free[1] = 8.0;
    EXPECT_EQ(calendar.earliestBusy(next_free), BusyCalendar::none);
    EXPECT_TRUE(calendar.empty());
}

FarmRuntimeConfig
scaleConfig(std::size_t size, const std::string &control)
{
    FarmRuntimeConfig config;
    config.farmSize = size;
    config.dispatcher = "JSQ";
    config.control = control;
    config.perServer.epochMinutes = 5;
    return config;
}

FarmRuntimeResult
runScale(const FarmRuntimeConfig &config, const std::vector<Job> &jobs,
         const UtilizationTrace &trace)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const FarmRuntime runtime(xeon, dns, config);
    OfflinePredictor predictor(trace.values());
    return runtime.run(jobs, trace, predictor);
}

void
expectBitIdentical(const FarmRuntimeResult &got,
                   const FarmRuntimeResult &expect,
                   const std::string &context)
{
    // Exact equality on doubles on purpose: sharding must change the
    // schedule of the accounting work, never its arithmetic.
    EXPECT_EQ(got.total.completions, expect.total.completions) << context;
    EXPECT_EQ(got.total.arrivals, expect.total.arrivals) << context;
    EXPECT_EQ(got.total.energy, expect.total.energy) << context;
    EXPECT_EQ(got.total.busyTime, expect.total.busyTime) << context;
    EXPECT_EQ(got.total.response.mean(), expect.total.response.mean())
        << context;
    EXPECT_EQ(got.total.responsePercentile(0.95),
              expect.total.responsePercentile(0.95))
        << context;
    ASSERT_EQ(got.epochs.size(), expect.epochs.size()) << context;
    for (std::size_t e = 0; e < expect.epochs.size(); ++e) {
        EXPECT_EQ(got.epochs[e].policy.toString(),
                  expect.epochs[e].policy.toString())
            << context << " epoch " << e;
        EXPECT_EQ(got.epochs[e].stats.energy, expect.epochs[e].stats.energy)
            << context << " epoch " << e;
    }
    ASSERT_EQ(got.servers.size(), expect.servers.size()) << context;
    for (std::size_t i = 0; i < expect.servers.size(); ++i) {
        EXPECT_EQ(got.servers[i].total.completions,
                  expect.servers[i].total.completions)
            << context << " server " << i;
        EXPECT_EQ(got.servers[i].total.energy,
                  expect.servers[i].total.energy)
            << context << " server " << i;
    }
}

// The shard pool only changes which lane integrates which server's
// accounting; per-server state is untouched and the reduction runs in
// index order, so any lane count must be bit-identical to serial.
// Pinned at 1 (serial), 2, and 8 lanes over both control planes.
TEST(FarmScale, ShardCountIsBitIdentical)
{
    const UtilizationTrace trace("flat", std::vector<double>(20, 0.3));
    Rng rng(23);
    const auto jobs =
        generateFarmJobs(rng, dnsWorkload(), trace, 96);

    for (const std::string control : {"farm-wide", "per-server"}) {
        FarmRuntimeConfig serial = scaleConfig(96, control);
        serial.shards = 1;
        const FarmRuntimeResult baseline = runScale(serial, jobs, trace);

        for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
            FarmRuntimeConfig sharded = scaleConfig(96, control);
            sharded.shards = shards;
            const FarmRuntimeResult got = runScale(sharded, jobs, trace);
            expectBitIdentical(got, baseline,
                               control + " shards=" +
                                   std::to_string(shards));
        }
    }
}

// Dropping tail histograms must not move any scalar statistic: the
// streaming moments are kept either way, only percentile buckets go.
TEST(FarmScale, TailHistogramOptOutKeepsScalarStatsBitIdentical)
{
    const UtilizationTrace trace("flat", std::vector<double>(10, 0.3));
    Rng rng(29);
    const auto jobs =
        generateFarmJobs(rng, dnsWorkload(), trace, 16);

    FarmRuntimeConfig with = scaleConfig(16, "farm-wide");
    FarmRuntimeConfig without = scaleConfig(16, "farm-wide");
    without.tailHistograms = false;
    const FarmRuntimeResult a = runScale(with, jobs, trace);
    const FarmRuntimeResult b = runScale(without, jobs, trace);

    EXPECT_EQ(a.total.completions, b.total.completions);
    EXPECT_EQ(a.total.energy, b.total.energy);
    EXPECT_EQ(a.total.response.mean(), b.total.response.mean());
    // The histogram really is off: percentile queries see no samples.
    EXPECT_GT(a.total.responsePercentile(0.95), 0.0);
    EXPECT_EQ(b.total.responsePercentile(0.95), 0.0);
}

// Long streaming run against a directly-driven farm: the calendar
// must stay bounded by the number of undrained admissions (no leak of
// stale entries) and drain to exactly zero once the farm goes idle.
TEST(FarmScale, CalendarStaysBoundedOverStreamingRun)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const Policy policy{1.0,
                        SleepPlan::immediate(LowPowerState::C0IdleS0Idle)};
    const std::size_t size = 1000;
    ServerFarm farm(xeon, ServiceScaling::cpuBound(), policy, size,
                    makeDispatcher("JSQ", 5));
    farm.setRecordTail(false);

    Rng rng(11);
    double t = 0.0;
    std::size_t max_entries = 0;
    for (int burst = 0; burst < 200; ++burst) {
        for (int j = 0; j < 500; ++j) {
            t += rng.exponential(1.0 / 500.0);
            farm.offerJob(Job{t, rng.exponential(0.05)});
        }
        // Advancing drains every due event: what remains are future
        // queue-empties entries, at most a small multiple of the farm
        // size at this load.
        farm.advanceTo(t);
        max_entries = std::max(max_entries, farm.calendarEntries());
    }
    EXPECT_LE(max_entries, 4 * size);

    // Quiesce: every server idle again, calendar fully drained.
    farm.advanceTo(t + 3600.0);
    EXPECT_EQ(farm.calendarEntries(), 0u);
    const auto windows = farm.harvestWindows();
    std::uint64_t arrivals = 0;
    std::uint64_t completions = 0;
    for (const SimStats &w : windows) {
        arrivals += w.arrivals;
        completions += w.completions;
    }
    EXPECT_EQ(arrivals, 100000u);
    EXPECT_EQ(completions, 100000u);
}

// The headline smoke run: 10k servers, a million-plus jobs, streamed
// through the event-driven core with auto sharding and no per-server
// tail histograms. Must finish in seconds (the event wheel makes the
// per-arrival cost O(log N)) and conserve jobs at every epoch close.
TEST(FarmScale, TenThousandServerMillionJobRunConserves)
{
    const std::size_t size = 10000;
    const UtilizationTrace trace("flat", std::vector<double>(2, 0.17));
    Rng rng(42);
    const auto jobs = generateFarmJobs(rng, dnsWorkload(), trace, size);
    ASSERT_GT(jobs.size(), 1000000u);

    FarmRuntimeConfig config = scaleConfig(size, "farm-wide");
    config.perServer.epochMinutes = 1;
    config.shards = 0;          // Auto: scale lanes with the farm.
    config.tailHistograms = false;
    config.serverEpochReports = false;
    const FarmRuntimeResult result = runScale(config, jobs, trace);

    // Everything offered is accounted for at every epoch close...
    ASSERT_FALSE(result.epochFaults.empty());
    for (const FarmFaultStats &s : result.epochFaults)
        EXPECT_EQ(s.offered, s.completed + s.dropped + s.inFlight)
            << "at elapsed " << s.elapsedSeconds;
    // ...and the final drain leaves nothing in flight or dropped.
    EXPECT_EQ(result.faults.inFlight, 0u);
    EXPECT_EQ(result.faults.dropped, 0u);
    EXPECT_EQ(result.total.completions, jobs.size());
    ASSERT_EQ(result.servers.size(), size);

    // Per-server totals still reconcile with the farm merge.
    std::uint64_t completions = 0;
    for (const FarmServerReport &server : result.servers)
        completions += server.total.completions;
    EXPECT_EQ(completions, result.total.completions);
}

} // namespace
} // namespace sleepscale
