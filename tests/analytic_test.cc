/**
 * @file
 * Tests for the Appendix closed forms: limiting cases and structure.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analytic/mm1_sleep.hh"
#include "power/platform_model.hh"
#include "util/error.hh"

namespace sleepscale {
namespace {

class Analytic : public ::testing::Test
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();
    MM1SleepModel model{xeon};

    static Policy
    immediate(LowPowerState state, double f = 1.0)
    {
        return Policy{f, SleepPlan::immediate(state)};
    }
};

// --------------------------------------------------------- basic limits

TEST_F(Analytic, ZeroWakeLatencyReducesToMM1Response)
{
    // C0(i)S0(i) has w = 0, so E[R] = 1/(µf - λ) exactly.
    const double mu = 1.0 / 0.194;
    const double lambda = 0.3 * mu;
    for (double f : {1.0, 0.7, 0.5}) {
        const double expected = 1.0 / (mu * f - lambda);
        EXPECT_NEAR(model.meanResponse(
                        immediate(LowPowerState::C0IdleS0Idle, f), lambda,
                        mu),
                    expected, 1e-12)
            << "f=" << f;
    }
}

TEST_F(Analytic, ZeroWakeLatencyPowerIsBusyIdleMix)
{
    // With w = 0 and a single τ = 0 state, E[P] = ρ_f P0 + (1-ρ_f) P1.
    const double mu = 1.0 / 0.194;
    const double lambda = 0.2 * mu;
    const double f = 0.8;
    const double rho_f = lambda / (mu * f);
    const double p0 = xeon.activePower(f);
    const double p1 = xeon.lowPower(LowPowerState::C0IdleS0Idle, f);
    EXPECT_NEAR(model.meanPower(immediate(LowPowerState::C0IdleS0Idle, f),
                                lambda, mu),
                rho_f * p0 + (1.0 - rho_f) * p1, 1e-9);
}

TEST_F(Analytic, SetupDelayRaisesResponseAboveMM1)
{
    const double mu = 1.0 / 0.194;
    const double lambda = 0.1 * mu;
    const double mm1 = 1.0 / (mu - lambda);
    const double with_setup = model.meanResponse(
        immediate(LowPowerState::C6S3), lambda, mu);
    EXPECT_GT(with_setup, mm1);
    // E[D] for an immediate single state is exactly w1 = 1 s.
    EXPECT_NEAR(model.meanSetupDelay(immediate(LowPowerState::C6S3),
                                     lambda),
                1.0, 1e-12);
}

TEST_F(Analytic, WelchFormulaMatchesHandComputation)
{
    // Single state, w = 1 s: E[R] = 1/(µf-λ) + (2w + λw²)/(2(1+λw)).
    const double mu = 1.0 / 0.194;
    const double lambda = 0.1 * mu;
    const double w = 1.0;
    const double expected = 1.0 / (mu - lambda) +
                            (2.0 * w + lambda * w * w) /
                                (2.0 * (1.0 + lambda * w));
    EXPECT_NEAR(model.meanResponse(immediate(LowPowerState::C6S3), lambda,
                                   mu),
                expected, 1e-12);
}

// ------------------------------------------------------ two-stage plans

TEST_F(Analytic, HugeDelayReducesToFirstStage)
{
    // C0(i)S0(i) -> C6S3 with τ2 → huge behaves like pure C0(i)S0(i).
    const double mu = 1.0 / 0.194;
    const double lambda = 0.2 * mu;
    const Policy delayed{
        0.8, SleepPlan::delayed(LowPowerState::C6S3, 1e9)};
    const Policy pure = immediate(LowPowerState::C0IdleS0Idle, 0.8);
    EXPECT_NEAR(model.meanPower(delayed, lambda, mu),
                model.meanPower(pure, lambda, mu), 1e-6);
    EXPECT_NEAR(model.meanResponse(delayed, lambda, mu),
                model.meanResponse(pure, lambda, mu), 1e-9);
}

TEST_F(Analytic, TinyDelayApproachesDeepStage)
{
    const double mu = 1.0 / 0.194;
    const double lambda = 0.2 * mu;
    const Policy delayed{
        1.0, SleepPlan::delayed(LowPowerState::C6S3, 1e-9)};
    const Policy pure = immediate(LowPowerState::C6S3);
    EXPECT_NEAR(model.meanPower(delayed, lambda, mu),
                model.meanPower(pure, lambda, mu), 1e-3);
    EXPECT_NEAR(model.meanResponse(delayed, lambda, mu),
                model.meanResponse(pure, lambda, mu), 1e-6);
}

TEST_F(Analytic, DelayInterpolatesBetweenExtremes)
{
    // Lesson 4: the delayed policy's power lies between the immediate
    // C6S3 and pure C0(i)S0(i) policies.
    const double mu = 1.0 / 4.2e-3; // Google-like
    const double lambda = 0.1 * mu;
    const double f = 0.5;
    const double tau = 30.0 / mu;

    const double p_deep =
        model.meanPower(immediate(LowPowerState::C6S3, f), lambda, mu);
    const double p_shallow = model.meanPower(
        immediate(LowPowerState::C0IdleS0Idle, f), lambda, mu);
    const double p_delayed = model.meanPower(
        Policy{f, SleepPlan::delayed(LowPowerState::C6S3, tau)}, lambda,
        mu);
    EXPECT_GT(p_delayed, std::min(p_deep, p_shallow));
    EXPECT_LT(p_delayed, std::max(p_deep, p_shallow));
}

// ------------------------------------------------------------- the tail

TEST_F(Analytic, TailBoundaryValues)
{
    const double mu = 1.0 / 0.194;
    const double lambda = 0.1 * mu;
    const Policy policy = immediate(LowPowerState::C6S3);
    EXPECT_DOUBLE_EQ(model.tailProbability(policy, lambda, mu, 0.0), 1.0);
    EXPECT_NEAR(model.tailProbability(policy, lambda, mu, 1e9), 0.0,
                1e-12);
}

TEST_F(Analytic, TailWithoutWakeIsExponential)
{
    const double mu = 1.0 / 0.194;
    const double lambda = 0.3 * mu;
    const Policy policy = immediate(LowPowerState::C0IdleS0Idle);
    const double d = 0.5;
    EXPECT_NEAR(model.tailProbability(policy, lambda, mu, d),
                std::exp(-(mu - lambda) * d), 1e-12);
}

TEST_F(Analytic, TailIsMonotoneDecreasing)
{
    const double mu = 1.0 / 0.194;
    const double lambda = 0.2 * mu;
    const Policy policy = immediate(LowPowerState::C6S3);
    double previous = 1.0;
    for (double d : {0.1, 0.5, 1.0, 2.0, 5.0}) {
        const double p = model.tailProbability(policy, lambda, mu, d);
        EXPECT_LT(p, previous);
        EXPECT_GE(p, 0.0);
        previous = p;
    }
}

TEST_F(Analytic, TailRejectsMultiStagePlans)
{
    const double mu = 1.0 / 0.194;
    const Policy delayed{1.0, SleepPlan::delayed(LowPowerState::C6S3,
                                                 1.0)};
    EXPECT_THROW(model.tailProbability(delayed, 0.1 * mu, mu, 1.0),
                 ConfigError);
}

// --------------------------------------------------------- M/G/1 bridge

TEST_F(Analytic, MG1WithUnitCvEqualsMM1)
{
    const double mu = 1.0 / 0.092;
    const double lambda = 0.4 * mu;
    const Policy policy = immediate(LowPowerState::C3S0Idle, 0.9);
    EXPECT_NEAR(model.meanResponseMG1(policy, lambda, mu, 1.0),
                model.meanResponse(policy, lambda, mu), 1e-12);
}

TEST_F(Analytic, MG1HeavyTailRaisesWaiting)
{
    const double mu = 1.0 / 0.092;
    const double lambda = 0.4 * mu;
    const Policy policy = immediate(LowPowerState::C0IdleS0Idle);
    EXPECT_GT(model.meanResponseMG1(policy, lambda, mu, 3.6),
              model.meanResponseMG1(policy, lambda, mu, 1.0));
}

// ----------------------------------------------------- structure checks

TEST_F(Analytic, PowerIsMonotoneInUtilization)
{
    const double mu = 1.0 / 0.194;
    const Policy policy = immediate(LowPowerState::C6S0Idle, 0.9);
    double previous = 0.0;
    for (double rho : {0.05, 0.2, 0.4, 0.6, 0.8}) {
        const double p = model.meanPower(policy, rho * mu, mu);
        EXPECT_GT(p, previous) << "rho=" << rho;
        previous = p;
    }
}

TEST_F(Analytic, PowerBowlExistsAcrossFrequency)
{
    // Lesson 1: power as a function of f has an interior minimum for
    // DNS-like work at low utilization with C6S3.
    const double mu = 1.0 / 0.194;
    const double lambda = 0.1 * mu;
    const Policy deep = immediate(LowPowerState::C6S3);

    double best_f = 1.0;
    double best_power = model.meanPower(deep, lambda, mu);
    for (double f = 0.12; f <= 1.0; f += 0.01) {
        Policy p = deep;
        p.frequency = f;
        const double power = model.meanPower(p, lambda, mu);
        if (power < best_power) {
            best_power = power;
            best_f = f;
        }
    }
    EXPECT_GT(best_f, 0.15);
    EXPECT_LT(best_f, 0.9);
    EXPECT_LT(best_power,
              model.meanPower(deep, lambda, mu) * 0.95);
}

TEST_F(Analytic, BusyFractionBetweenZeroAndOne)
{
    const double mu = 1.0 / 0.194;
    for (double rho : {0.1, 0.5, 0.8}) {
        const double busy = model.busyFraction(
            immediate(LowPowerState::C6S0Idle), rho * mu, mu);
        EXPECT_GT(busy, rho * 0.99); // wake-ups only add busy time
        EXPECT_LT(busy, 1.0);
    }
}

TEST_F(Analytic, UnstableSystemsRejected)
{
    const double mu = 1.0 / 0.194;
    const Policy slow = immediate(LowPowerState::C0IdleS0Idle, 0.3);
    EXPECT_THROW(model.meanResponse(slow, 0.5 * mu, mu), ConfigError);
    EXPECT_THROW(model.meanPower(slow, 0.5 * mu, mu), ConfigError);
}

TEST_F(Analytic, EffectiveServiceRateFollowsScalingLaw)
{
    const MM1SleepModel memory(xeon, ServiceScaling::memoryBound());
    EXPECT_DOUBLE_EQ(memory.effectiveServiceRate(10.0, 0.3), 10.0);
    const MM1SleepModel cpu(xeon, ServiceScaling::cpuBound());
    EXPECT_DOUBLE_EQ(cpu.effectiveServiceRate(10.0, 0.5), 5.0);
    EXPECT_TRUE(cpu.stable(4.9, 10.0, 0.5));
    EXPECT_FALSE(cpu.stable(5.1, 10.0, 0.5));
}

} // namespace
} // namespace sleepscale
