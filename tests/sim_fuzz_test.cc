/**
 * @file
 * Randomized invariant (fuzz) tests for the simulation core.
 *
 * Each case builds a random scenario — random job stream, random sleep
 * plan, random mid-run policy switches, random window harvests — and
 * checks the invariants that must hold for *any* scenario:
 *
 *   1. job conservation: everything offered eventually completes;
 *   2. time conservation: busy time plus idle residencies tile the run;
 *   3. energy bounds: average power lies between the deepest sleep
 *      power and the full-frequency active power;
 *   4. window additivity: harvested windows sum to the one-shot totals;
 *   5. determinism: identical seeds give identical accounting.
 *
 * The job-source half is a seeded differential fuzzer: random
 * compositions of streaming sources (merge/scale/thin/take/diurnal
 * over stationary/bursty/trace-driven primitives) are checked for
 * reset() determinism, clone() fidelity after partial consumption, and
 * streaming == materialized equality through the runtime engine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include <string>

#include "analytic/mm1_sleep.hh"
#include "analytic/offline_opt.hh"
#include "control/controller_manager.hh"
#include "core/predictor.hh"
#include "core/runtime.hh"
#include "farm/farm_runtime.hh"
#include "fault/fault_source.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "util/rng.hh"
#include "workload/job_source.hh"
#include "workload/job_stream.hh"

namespace sleepscale {
namespace {

/** Random single- or multi-stage plan drawn from the five states. */
SleepPlan
randomPlan(Rng &rng)
{
    const std::size_t first = rng.uniformInt(numLowPowerStates);
    std::vector<SleepStage> stages;
    stages.push_back({allLowPowerStates[first], 0.0});
    double tau = 0.0;
    for (std::size_t depth = first + 1; depth < numLowPowerStates;
         ++depth) {
        if (rng.uniform() < 0.4) {
            tau += rng.uniform(0.01, 2.0);
            stages.push_back({allLowPowerStates[depth], tau});
        }
    }
    return SleepPlan(stages);
}

Policy
randomPolicy(Rng &rng)
{
    return Policy{rng.uniform(0.15, 1.0), randomPlan(rng)};
}

struct FuzzTotals
{
    SimStats merged;
    std::uint64_t offered = 0;
};

/**
 * Run a random scenario: jobs at a random load, random policy switches
 * at random times, windows harvested at every switch.
 */
FuzzTotals
runScenario(std::uint64_t seed, const PlatformModel &platform)
{
    Rng rng(seed);
    const double service_mean = rng.uniform(0.001, 0.3);
    const double rho = rng.uniform(0.05, 0.6);
    ExponentialDist gaps(service_mean / rho);
    ExponentialDist sizes(service_mean);
    const auto jobs = generateJobs(rng, gaps, sizes, 4000);

    ServerSim sim(platform, ServiceScaling::cpuBound(),
                  randomPolicy(rng));

    FuzzTotals totals;
    totals.offered = jobs.size();
    std::size_t next = 0;
    double clock = 0.0;
    while (next < jobs.size()) {
        // Advance by a random stride, harvesting and maybe switching.
        clock += rng.uniform(0.5, 30.0 * service_mean / rho);
        while (next < jobs.size() && jobs[next].arrival <= clock) {
            sim.offerJob(jobs[next]);
            ++next;
        }
        sim.advanceTo(clock);
        totals.merged.merge(sim.harvestWindow());
        if (rng.uniform() < 0.3)
            sim.setPolicy(randomPolicy(rng), clock);
    }
    const double end = std::max(clock, sim.nextFreeTime());
    sim.advanceTo(end);
    totals.merged.merge(sim.harvestWindow());
    return totals;
}

class SimFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();
};

TEST_P(SimFuzz, InvariantsHoldUnderRandomScenarios)
{
    const FuzzTotals totals = runScenario(GetParam(), xeon);
    const SimStats &stats = totals.merged;

    // 1. Job conservation.
    EXPECT_EQ(stats.arrivals, totals.offered);
    EXPECT_EQ(stats.completions, totals.offered);

    // 2. Time conservation: busy + idle residencies tile the window.
    const double accounted = stats.busyTime + stats.idleTime();
    EXPECT_NEAR(accounted / stats.elapsed(), 1.0, 1e-9);

    // 3. Energy bounds.
    const double floor_power = xeon.lowPower(LowPowerState::C6S3, 1.0);
    const double ceil_power = xeon.activePower(1.0);
    EXPECT_GE(stats.avgPower(), floor_power - 1e-9);
    EXPECT_LE(stats.avgPower(), ceil_power + 1e-9);

    // Responses are positive and the histogram agrees with the
    // streaming moments on the count.
    EXPECT_EQ(stats.response.count(), stats.completions);
    EXPECT_EQ(stats.responseHistogram.count(), stats.completions);
    EXPECT_GT(stats.response.min(), 0.0);
}

TEST_P(SimFuzz, DeterministicGivenSeed)
{
    const FuzzTotals a = runScenario(GetParam(), xeon);
    const FuzzTotals b = runScenario(GetParam(), xeon);
    EXPECT_DOUBLE_EQ(a.merged.energy, b.merged.energy);
    EXPECT_DOUBLE_EQ(a.merged.busyTime, b.merged.busyTime);
    EXPECT_DOUBLE_EQ(a.merged.response.mean(), b.merged.response.mean());
    EXPECT_EQ(a.merged.completions, b.merged.completions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

// -------------------------------------------- windows vs one-shot totals

TEST(SimFuzzWindows, WindowedRunMatchesOneShotRun)
{
    const PlatformModel xeon = PlatformModel::xeon();
    Rng rng(404);
    ExponentialDist gaps(0.4), sizes(0.194);
    const auto jobs = generateJobs(rng, gaps, sizes, 20000);
    const Policy policy{0.7, SleepPlan::immediate(LowPowerState::C6S3)};

    // One shot.
    const PolicyEvaluation one_shot =
        evaluatePolicy(xeon, ServiceScaling::cpuBound(), policy, jobs);

    // Windowed at arbitrary boundaries.
    ServerSim sim(xeon, ServiceScaling::cpuBound(), policy);
    SimStats merged;
    Rng boundary_rng(405);
    std::size_t next = 0;
    double clock = 0.0;
    const double end_time = one_shot.stats.windowEnd;
    while (clock < end_time) {
        clock = std::min(end_time, clock + boundary_rng.uniform(1.0,
                                                                60.0));
        while (next < jobs.size() && jobs[next].arrival <= clock) {
            sim.offerJob(jobs[next]);
            ++next;
        }
        sim.advanceTo(clock);
        merged.merge(sim.harvestWindow());
    }
    sim.advanceTo(sim.nextFreeTime());
    merged.merge(sim.harvestWindow());

    EXPECT_NEAR(merged.energy, one_shot.stats.energy, 1e-6);
    EXPECT_NEAR(merged.busyTime, one_shot.stats.busyTime, 1e-9);
    EXPECT_EQ(merged.completions, one_shot.stats.completions);
    EXPECT_NEAR(merged.response.mean(), one_shot.meanResponse(), 1e-12);
}

// ------------------------------------- random plans vs the closed forms

class PlanFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PlanFuzz, AnalyticMatchesSimulationForRandomPlans)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MM1SleepModel model(xeon);
    Rng rng(GetParam() * 7919);

    const double service_mean = rng.uniform(0.01, 0.3);
    const double mu = 1.0 / service_mean;
    const double rho = rng.uniform(0.05, 0.5);
    const double f = rng.uniform(rho + 0.1, 1.0);
    const Policy policy{f, randomPlan(rng)};

    ExponentialDist gaps(service_mean / rho);
    ExponentialDist sizes(service_mean);
    const auto jobs = generateJobs(rng, gaps, sizes, 250000);
    const PolicyEvaluation eval =
        evaluatePolicy(xeon, ServiceScaling::cpuBound(), policy, jobs);

    EXPECT_NEAR(eval.avgPower() /
                    model.meanPower(policy, rho * mu, mu),
                1.0, 0.03)
        << policy.toString() << " rho=" << rho;
    EXPECT_NEAR(eval.meanResponse() /
                    model.meanResponse(policy, rho * mu, mu),
                1.0, 0.10)
        << policy.toString() << " rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// --------------------------- differential job-source composition fuzz

/** A small random utilization trace for trace-driven primitives. */
UtilizationTrace
randomFuzzTrace(Rng &rng)
{
    const std::size_t minutes = 10 + rng.uniformInt(30);
    std::vector<double> levels(minutes);
    for (double &level : levels)
        level = rng.uniform(0.05, 0.5);
    return UtilizationTrace("fuzz", levels);
}

/** One random primitive source: stationary, bursty, or trace-driven. */
std::unique_ptr<JobSource>
randomPrimitiveSource(Rng &rng)
{
    const WorkloadSpec dns = dnsWorkload();
    const std::uint64_t seed = rng.next();
    switch (rng.uniformInt(3)) {
      case 0:
        return std::make_unique<StationarySource>(
            dns, rng.uniform(0.05, 0.4), seed);
      case 1:
        return std::make_unique<BurstySource>(
            dns, rng.uniform(0.05, 0.3), rng.uniform(1.5, 6.0),
            rng.uniform(20.0, 200.0), rng.uniform(200.0, 2000.0), seed);
      default:
        return std::make_unique<TraceDrivenSource>(
            dns, randomFuzzTrace(rng), seed);
    }
}

/**
 * A random composition: primitives wrapped in random combinators,
 * bounded by a final take() so infinite primitives terminate.
 */
std::unique_ptr<JobSource>
randomComposition(Rng &rng)
{
    std::unique_ptr<JobSource> source = randomPrimitiveSource(rng);
    const std::size_t wraps = rng.uniformInt(3);
    for (std::size_t i = 0; i < wraps; ++i) {
        switch (rng.uniformInt(4)) {
          case 0:
            source = merge(std::move(source),
                           randomPrimitiveSource(rng));
            break;
          case 1:
            source = scale(std::move(source), rng.uniform(0.5, 2.0),
                           rng.uniform(0.5, 2.0));
            break;
          case 2:
            source = thin(std::move(source), rng.uniform(0.3, 1.0),
                          rng.next());
            break;
          default:
            source = diurnal(std::move(source), rng.uniform(0.0, 0.8),
                             rng.uniform(3600.0, 86400.0));
            break;
        }
    }
    return take(std::move(source), 800 + rng.uniformInt(800));
}

void
expectSameJobs(const std::vector<Job> &a, const std::vector<Job> &b,
               const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival) << what << " job " << i;
        EXPECT_EQ(a[i].size, b[i].size) << what << " job " << i;
        EXPECT_EQ(a[i].classId, b[i].classId) << what << " job " << i;
    }
}

class SourceFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SourceFuzz, ResetIsDeterministic)
{
    Rng rng(GetParam() * 2654435761ULL);
    const auto source = randomComposition(rng);
    const std::uint64_t seed = GetParam() + 17;

    source->reset(seed);
    const auto first = materialize(*source);
    ASSERT_FALSE(first.empty());
    source->reset(seed);
    const auto second = materialize(*source);
    expectSameJobs(first, second, "reset");

    // Arrival times are non-decreasing — the core source contract.
    for (std::size_t i = 1; i < first.size(); ++i)
        EXPECT_GE(first[i].arrival, first[i - 1].arrival) << i;
}

TEST_P(SourceFuzz, CloneContinuesMidStream)
{
    Rng rng(GetParam() * 2654435761ULL);
    const auto source = randomComposition(rng);
    source->reset(GetParam());

    // Consume a random prefix, clone, and require both continuations
    // to be identical job for job.
    Rng consume_rng(GetParam() ^ 0xABCDEF);
    const std::size_t consumed = consume_rng.uniformInt(400);
    Job job;
    for (std::size_t i = 0; i < consumed; ++i) {
        if (!source->next(job))
            break;
    }
    const auto clone = source->clone();
    const auto rest_original = materialize(*source);
    const auto rest_clone = materialize(*clone);
    expectSameJobs(rest_original, rest_clone, "clone");
}

TEST_P(SourceFuzz, StreamingMatchesMaterializedThroughEngine)
{
    Rng rng(GetParam() * 2654435761ULL);
    const auto streaming = randomComposition(rng);
    streaming->reset(GetParam());
    const auto jobs = materialize(*streaming->clone());

    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace(
        "flat", std::vector<double>(20, 0.2));

    RuntimeConfig config;
    config.epochMinutes = 5;
    config.fixedPolicy =
        Policy{0.7, SleepPlan::immediate(LowPowerState::C6S0Idle)};
    const SleepScaleRuntime runtime(xeon, dns, config);

    const auto stream_predictor =
        makePredictor("NP", 10, trace.values());
    const RuntimeResult from_stream =
        runtime.run(*streaming, trace, *stream_predictor);
    const auto vector_predictor =
        makePredictor("NP", 10, trace.values());
    const RuntimeResult from_vector =
        runtime.run(jobs, trace, *vector_predictor);

    EXPECT_EQ(from_stream.total.arrivals, from_vector.total.arrivals);
    EXPECT_EQ(from_stream.total.completions,
              from_vector.total.completions);
    EXPECT_DOUBLE_EQ(from_stream.total.energy, from_vector.total.energy);
    EXPECT_DOUBLE_EQ(from_stream.total.busyTime,
                     from_vector.total.busyTime);
    EXPECT_DOUBLE_EQ(from_stream.total.response.mean(),
                     from_vector.total.response.mean());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SourceFuzz,
                         ::testing::Range<std::uint64_t>(1, 17));

// -------------------------------------- fault-schedule fuzz (FaultFuzz)

// The availability-plane half of the fuzzer (docs/FAULTS.md). These
// cases are registered as their own fast ctest entry ("fault_fuzz",
// labels integration+fault) so the ASan and TSan jobs run them without
// paying for the statistical suites above.

/** A random fault-source configuration for a random family. */
std::unique_ptr<FaultSource>
randomFaultSource(Rng &rng, std::size_t farm_size, std::string *family)
{
    FaultSourceConfig config;
    config.farmSize = farm_size;
    config.mtbf = rng.uniform(300.0, 1200.0);
    config.mttr = rng.uniform(30.0, 180.0);
    config.correlatedGroup = 1 + rng.uniformInt(farm_size);
    config.seed = rng.next();
    switch (rng.uniformInt(3)) {
      case 0:
        *family = "mtbf";
        break;
      case 1:
        *family = "correlated";
        break;
      default: {
        *family = "scripted";
        double clock = 0.0;
        std::vector<char> down(farm_size, 0);
        const std::size_t events = 2 + rng.uniformInt(20);
        for (std::size_t i = 0; i < events; ++i) {
            clock += rng.uniform(0.0, 300.0);
            const auto server = rng.uniformInt(farm_size);
            config.script.push_back(
                {clock, server, down[server] == 0});
            down[server] = down[server] == 0 ? 1 : 0;
        }
        break;
      }
    }
    return makeFaultSource(*family, config);
}

bool
sameFaultEvents(const std::vector<FaultEvent> &a,
                const std::vector<FaultEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].time != b[i].time || a[i].server != b[i].server ||
            a[i].down != b[i].down)
            return false;
    }
    return true;
}

class FaultFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FaultFuzz, ResetAndCloneAreDeterministic)
{
    Rng rng(GetParam() * 2654435761ULL + 1);
    for (int round = 0; round < 8; ++round) {
        const std::size_t farm_size = 1 + rng.uniformInt(5);
        std::string family;
        const std::uint64_t seed = rng.next();
        const auto source = randomFaultSource(rng, farm_size, &family);

        source->reset(seed);
        const auto events = materializeFaults(*source, 20000.0, 2000);
        // Equal seeds reproduce the schedule bit-for-bit.
        source->reset(seed);
        EXPECT_TRUE(sameFaultEvents(
            events, materializeFaults(*source, 20000.0, 2000)))
            << family << " seed " << seed;

        // Non-decreasing times, in-range servers — for any schedule.
        double last = 0.0;
        for (const FaultEvent &event : events) {
            EXPECT_GE(event.time, last) << family;
            EXPECT_LT(event.server, farm_size) << family;
            last = event.time;
        }

        // A clone taken after a random partial drain continues the
        // original's stream exactly.
        source->reset(seed);
        FaultEvent sink;
        const std::size_t consumed =
            rng.uniformInt(events.size() + 1);
        for (std::size_t i = 0; i < consumed; ++i)
            ASSERT_TRUE(source->next(sink));
        const auto clone = source->clone();
        EXPECT_TRUE(sameFaultEvents(
            materializeFaults(*clone, 20000.0, 2000),
            materializeFaults(*source, 20000.0, 2000)))
            << family << " after " << consumed;
    }
}

/**
 * One short fault-injected farm run over a Table 5 workload. The
 * scenario shape (workload, trace, farm, control) is drawn from `rng`;
 * the fault knobs are drawn from `knob_seed` separately so tests can
 * vary the knobs while holding the scenario fixed.
 */
FarmRuntimeResult
runFuzzFarm(Rng &rng, const std::string &faults, std::uint64_t seed,
            std::uint64_t knob_seed)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec workload = rng.uniformInt(2) == 0
                                      ? dnsWorkload()
                                      : mailWorkload();
    const UtilizationTrace trace(
        "flat",
        std::vector<double>(15 + rng.uniformInt(10),
                            rng.uniform(0.1, 0.35)));

    FarmRuntimeConfig config;
    config.farmSize = 2 + rng.uniformInt(2);
    config.control =
        rng.uniformInt(2) == 0 ? "farm-wide" : "per-server";
    config.dispatchSeed = mixSeed(seed);
    config.perServer.epochMinutes = 5;
    config.faults = faults;
    config.faultSeed = mixSeed(mixSeed(seed));

    // Knobs are always populated — an inactive ("none") fault layer
    // must ignore every one of them.
    Rng knobs(knob_seed);
    config.mtbf = knobs.uniform(300.0, 900.0);
    config.mttr = knobs.uniform(30.0, 150.0);
    config.correlatedGroup = 1 + knobs.uniformInt(config.farmSize);
    config.retryBackoff = knobs.uniform(0.25, 4.0);
    config.retryBackoffCap = knobs.uniform(10.0, 60.0);
    config.dropTimeout = knobs.uniform(60.0, 300.0);
    config.recoverySeconds = knobs.uniform(0.0, 30.0);

    FarmRuntime runtime(xeon, workload, config);
    const auto source =
        makeFarmSource(workload, trace, config.farmSize, seed);
    const auto predictor = makePredictor("NP", 10, trace.values());
    return runtime.run(*source, trace, *predictor);
}

TEST_P(FaultFuzz, ConservationHoldsAtEveryEpochClose)
{
    Rng rng(GetParam() * 2654435761ULL + 2);
    for (const char *faults : {"mtbf", "correlated"}) {
        Rng scenario(rng.next());
        const FarmRuntimeResult result =
            runFuzzFarm(scenario, faults, GetParam() + 31,
                        GetParam() + 57);

        // offered == completed + dropped + in-flight at every epoch
        // close, with cumulative counters non-decreasing throughout.
        ASSERT_FALSE(result.epochFaults.empty()) << faults;
        FarmFaultStats previous;
        for (const FarmFaultStats &snap : result.epochFaults) {
            EXPECT_EQ(snap.offered,
                      snap.completed + snap.dropped + snap.inFlight)
                << faults << " at " << snap.elapsedSeconds;
            EXPECT_LE(snap.admitted, snap.offered) << faults;
            EXPECT_LE(snap.completed, snap.admitted) << faults;
            EXPECT_GE(snap.offered, previous.offered) << faults;
            EXPECT_GE(snap.completed, previous.completed) << faults;
            EXPECT_GE(snap.dropped, previous.dropped) << faults;
            EXPECT_GE(snap.retries, previous.retries) << faults;
            EXPECT_GE(snap.downSeconds, previous.downSeconds) << faults;
            EXPECT_GE(snap.elapsedSeconds, previous.elapsedSeconds)
                << faults;
            const double availability = snap.availability(
                result.jobsPerServer.size());
            EXPECT_GE(availability, 0.0) << faults;
            EXPECT_LE(availability, 1.0) << faults;
            previous = snap;
        }

        // The run drains: every offered job completed or dropped.
        EXPECT_EQ(result.faults.inFlight, 0u) << faults;
        EXPECT_EQ(result.faults.offered,
                  result.faults.completed + result.faults.dropped)
            << faults;
        EXPECT_EQ(result.faults.completed, result.total.completions)
            << faults;
    }
}

TEST_P(FaultFuzz, NoFaultRunsAreCleanDeterministicAndKnobBlind)
{
    // faults == "none" must reproduce the fault-free runtime: the
    // availability plane stays pristine, two runs of the same scenario
    // agree bit-for-bit even with completely different fault knobs
    // (rates, backoff, deadlines) — an inactive layer must ignore them
    // all. The cross-check against the pre-fault-layer runtime itself
    // is pinned by tests/farm_fault_test.cc.
    Rng rng(GetParam() * 2654435761ULL + 3);
    const std::uint64_t scenario_seed = rng.next();
    Rng first(scenario_seed);
    const FarmRuntimeResult a =
        runFuzzFarm(first, "none", GetParam() + 7, 1);
    Rng second(scenario_seed);
    const FarmRuntimeResult b =
        runFuzzFarm(second, "none", GetParam() + 7, 999);

    EXPECT_EQ(a.total.completions, b.total.completions);
    EXPECT_EQ(a.total.arrivals, b.total.arrivals);
    EXPECT_EQ(a.total.energy, b.total.energy);
    EXPECT_EQ(a.total.busyTime, b.total.busyTime);
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        EXPECT_EQ(a.epochs[i].policy.frequency,
                  b.epochs[i].policy.frequency) << i;
        EXPECT_EQ(a.epochs[i].degraded, b.epochs[i].degraded) << i;
    }

    const FarmFaultStats &clean = a.faults;
    EXPECT_EQ(clean.offered, clean.completed);
    EXPECT_EQ(clean.dropped, 0u);
    EXPECT_EQ(clean.retries, 0u);
    EXPECT_EQ(clean.inFlight, 0u);
    EXPECT_EQ(clean.degradedEpochs, 0u);
    EXPECT_DOUBLE_EQ(clean.downSeconds, 0.0);
    EXPECT_DOUBLE_EQ(clean.degradedSeconds, 0.0);
    EXPECT_DOUBLE_EQ(clean.availability(a.jobsPerServer.size()), 1.0);
    EXPECT_DOUBLE_EQ(clean.goodput(), 1.0);
    for (const EpochReport &epoch : a.epochs)
        EXPECT_FALSE(epoch.degraded);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

// -------------------------------------------------- controller fuzz
//
// State-lifetime determinism of the O(1) feedback controller
// (src/control, docs/CONTROL.md): a copy taken mid-run must continue
// bit-identically with the original, and reset() must reproduce a
// fresh instance — the contracts per-server farm control and the
// workflow resume path lean on. Registered as its own fast ctest
// entry `control_fuzz` (labels integration+control).

/** A random but valid epoch observation stream element. */
EpochObservation
randomObservation(Rng &rng, const WorkloadSpec &workload)
{
    EpochObservation observation;
    observation.hasMeasurement = rng.uniform(0.0, 1.0) > 0.15;
    observation.predictedUtilization = rng.uniform(0.0, 1.0);
    observation.measuredUtilization = rng.uniform(0.0, 0.95);
    observation.measuredQos =
        rng.uniform(0.1, 10.0) * workload.serviceMean;
    observation.meanJobSize =
        rng.uniform(0.2, 5.0) * workload.serviceMean;
    observation.faultStarved = rng.uniform(0.0, 1.0) > 0.9;
    observation.applied =
        Policy{rng.uniform(0.3, 1.0),
               SleepPlan::immediate(LowPowerState::C6S0Idle)};
    return observation;
}

bool
samePolicyDecision(const PolicyDecision &a, const PolicyDecision &b)
{
    return a.policy.frequency == b.policy.frequency &&
           a.policy.plan.deepest() == b.policy.plan.deepest() &&
           a.feasible == b.feasible &&
           a.predictedPower == b.predictedPower &&
           a.predictedMetric == b.predictedMetric;
}

class ControllerFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ControllerFuzz, ResetAndCloneAreDeterministic)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const QosConstraint qos =
        QosConstraint::fromBaselineMean(0.8, dns.serviceMean);
    const Policy initial{
        1.0, SleepPlan::immediate(LowPowerState::C0IdleS0Idle)};
    const Policy fallback{
        1.0, SleepPlan::immediate(LowPowerState::C3S0Idle)};

    Rng rng(GetParam() * 2654435761ULL + 17);
    for (int round = 0; round < 6; ++round) {
        ControllerConfig config;
        config.processNoise = rng.uniform(1e-6, 1e-2);
        config.measurementNoise = rng.uniform(1e-4, 1e-1);
        config.pole = rng.uniform(0.0, 0.9);
        config.periodEpochs = 1 + rng.uniformInt(3);

        ControllerManager manager(xeon, dns.scaling,
                                  PolicySpace::standard(), qos, config,
                                  initial);

        // Drive to a random mid-run point, replaying the prefix so a
        // reset controller can be caught up later.
        const std::size_t prefix = 1 + rng.uniformInt(30);
        std::vector<EpochObservation> stream;
        for (std::size_t i = 0; i < prefix; ++i) {
            stream.push_back(randomObservation(rng, dns));
            manager.decideGuarded(stream.back(), {}, fallback);
        }

        // A clone must continue bit-identically...
        ControllerManager clone = manager;
        // ...and reset + prefix replay must reproduce the original.
        ControllerManager replayed = manager;
        replayed.reset();
        for (const EpochObservation &observation : stream)
            replayed.decideGuarded(observation, {}, fallback);

        for (int i = 0; i < 20; ++i) {
            const EpochObservation observation =
                randomObservation(rng, dns);
            const GuardedDecision a =
                manager.decideGuarded(observation, {}, fallback);
            const GuardedDecision b =
                clone.decideGuarded(observation, {}, fallback);
            const GuardedDecision c =
                replayed.decideGuarded(observation, {}, fallback);
            EXPECT_TRUE(samePolicyDecision(a.decision, b.decision));
            EXPECT_TRUE(samePolicyDecision(a.decision, c.decision));
            EXPECT_EQ(a.degraded, b.degraded);
            EXPECT_EQ(a.degraded, c.degraded);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

// ------------------------------------------------- offline-opt fuzz
//
// Differential fuzz of the offline-optimal oracle (docs/OFFLINE_OPT.md):
// random small job logs through the exact Pareto solver vs the FPTAS
// must respect the certified bracket, and both solvers must be
// bit-deterministic across reruns — the contract the golden regret
// snapshots and replication CIs lean on. Registered as its own fast
// ctest entry `offline_opt_fuzz` (labels integration+analytic).

class OfflineOptFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(OfflineOptFuzz, ExactVsFptasBracketAndDeterminism)
{
    const PlatformModel xeon = PlatformModel::xeon();
    Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 3);
    for (int round = 0; round < 12; ++round) {
        // Random grid, epsilon, scaling law, and log shape each round.
        OfflineOptOptions options;
        options.epsilon = rng.uniform(0.02, 0.3);
        const double lo = rng.uniform(0.3, 0.6);
        options.frequencies = PolicySpace::frequencyGrid(
            lo, 1.0, rng.uniform(0.1, 0.3));
        const ServiceScaling scaling{rng.uniform(0.0, 1.0)};
        const OfflineOptimal oracle(xeon, scaling, options);

        std::vector<Job> jobs;
        double t = rng.uniform(0.0, 1.0);
        const std::size_t n = 1 + rng.uniformInt(9);
        for (std::size_t j = 0; j < n; ++j) {
            jobs.push_back({t, rng.uniform(0.0, 0.5), 0});
            t += rng.uniform(0.0, 3.0);
        }
        const auto instance = OfflineOptInstance::fromJobs(
            jobs, t + rng.uniform(0.0, 5.0));

        const OfflineOptResult exact = oracle.solveExact(instance);
        const OfflineOptResult fptas = oracle.solve(instance);
        EXPECT_LE(fptas.energy, exact.energy + 1e-6);
        EXPECT_LE(exact.energy,
                  (1.0 + options.epsilon) * fptas.energy + 1e-6);
        EXPECT_GE(fptas.upperBound, exact.energy - 1e-6);

        // Re-solving the same instance must be bit-identical.
        const OfflineOptResult again = oracle.solve(instance);
        EXPECT_EQ(fptas.energy, again.energy);
        EXPECT_EQ(fptas.upperBound, again.upperBound);
        EXPECT_EQ(fptas.frontierPeak, again.frontierPeak);
        const OfflineOptResult exact_again = oracle.solveExact(instance);
        EXPECT_EQ(exact.energy, exact_again.energy);
        EXPECT_EQ(exact.jobFrequencies, exact_again.jobFrequencies);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineOptFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

} // namespace
} // namespace sleepscale
