/**
 * @file
 * Tests for the paper's Atom-class observations (Sections 4.2): with a
 * small CPU power envelope against an unchanged platform, the
 * frequency knob stops mattering and the winning strategy is to run
 * fast and enter a low-power state immediately.
 */

#include <gtest/gtest.h>

#include "analytic/mm1_sleep.hh"
#include "power/platform_model.hh"
#include "sim/policy.hh"

namespace sleepscale {
namespace {

/** Power-optimal frequency for a state under the closed-form model. */
double
optimalFrequency(const MM1SleepModel &model, LowPowerState state,
                 double rho, double mu)
{
    double best_f = 1.0;
    double best_power = 1e18;
    for (double f = rho + 0.02; f <= 1.0 + 1e-9; f += 0.01) {
        const Policy policy{std::min(f, 1.0),
                            SleepPlan::immediate(state)};
        const double power = model.meanPower(policy, rho * mu, mu);
        if (power < best_power) {
            best_power = power;
            best_f = policy.frequency;
        }
    }
    return best_f;
}

TEST(Atom, DeepSleepPrefersHighFrequencyOnAtom)
{
    // DNS-like at rho = 0.1: on Xeon the C6S3 bowl bottoms at an
    // interior frequency (~0.4); on Atom the optimum is to run fast and
    // sleep immediately (the paper's Atom observation under lesson 1).
    const PlatformModel xeon = PlatformModel::xeon();
    const PlatformModel atom = PlatformModel::atom();
    const MM1SleepModel xeon_model(xeon);
    const MM1SleepModel atom_model(atom);
    const double mu = 1.0 / 0.194;

    const double xeon_f =
        optimalFrequency(xeon_model, LowPowerState::C6S3, 0.1, mu);
    const double atom_f =
        optimalFrequency(atom_model, LowPowerState::C6S3, 0.1, mu);
    EXPECT_LT(xeon_f, 0.6);
    EXPECT_GT(atom_f, 0.8);
}

TEST(Atom, FrequencyMattersLittleForPower)
{
    // The whole DVFS range changes Atom system power by only a few
    // watts (CPU dynamic power is a small slice of the platform's).
    const PlatformModel atom = PlatformModel::atom();
    const double swing =
        atom.activePower(1.0) - atom.activePower(0.3);
    EXPECT_LT(swing, 0.1 * atom.activePower(1.0));

    const PlatformModel xeon = PlatformModel::xeon();
    const double xeon_swing =
        xeon.activePower(1.0) - xeon.activePower(0.3);
    EXPECT_GT(xeon_swing, 0.4 * xeon.activePower(1.0));
}

TEST(Atom, SleepStatesCarryTheSavings)
{
    // On Atom the spread across sleep states dwarfs what DVFS can save:
    // component deactivation is the effective knob.
    const PlatformModel atom = PlatformModel::atom();
    const MM1SleepModel model(atom);
    const double mu = 1.0 / 0.194;
    const double lambda = 0.1 * mu;

    const double shallow = model.meanPower(
        Policy{1.0, SleepPlan::immediate(LowPowerState::C0IdleS0Idle)},
        lambda, mu);
    const double deep = model.meanPower(
        Policy{1.0, SleepPlan::immediate(LowPowerState::C6S3)}, lambda,
        mu);
    const double state_savings = shallow - deep;

    // Best DVFS can do while stuck in C0(i)S0(i):
    const double f_best = optimalFrequency(
        model, LowPowerState::C0IdleS0Idle, 0.1, mu);
    const double dvfs_savings =
        shallow -
        model.meanPower(Policy{f_best, SleepPlan::immediate(
                                           LowPowerState::C0IdleS0Idle)},
                        lambda, mu);

    EXPECT_GT(state_savings, 3.0 * std::max(dvfs_savings, 1.0));
}

} // namespace
} // namespace sleepscale
