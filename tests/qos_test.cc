/**
 * @file
 * Tests for QoS constraints (paper Section 5.1.1 budgets).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/qos.hh"
#include "power/platform_model.hh"
#include "util/error.hh"

namespace sleepscale {
namespace {

SimStats
statsWithResponses(std::initializer_list<double> responses)
{
    SimStats stats;
    for (double r : responses) {
        stats.response.add(r);
        stats.responseHistogram.add(r);
        ++stats.completions;
    }
    stats.windowEnd = 1.0;
    return stats;
}

TEST(Qos, BaselineMeanBudgetMatchesPaperFormula)
{
    // ρ_b = 0.8 with a Google job: µE[R] = 1/(1-0.8) = 5, so the budget
    // is 5 service times (the Figure 5 vertical bar).
    const QosConstraint qos =
        QosConstraint::fromBaselineMean(0.8, 4.2e-3);
    EXPECT_EQ(qos.metric(), QosMetric::MeanResponse);
    EXPECT_NEAR(qos.budget(), 5.0 * 4.2e-3, 1e-12);

    const QosConstraint tighter =
        QosConstraint::fromBaselineMean(0.6, 4.2e-3);
    EXPECT_LT(tighter.budget(), qos.budget());
}

TEST(Qos, BaselineTailBudgetUsesLogInverse)
{
    const QosConstraint qos =
        QosConstraint::fromBaselineTail(0.8, 0.194, 0.05);
    EXPECT_EQ(qos.metric(), QosMetric::TailResponse);
    EXPECT_NEAR(qos.budget(), std::log(20.0) * 0.194 / 0.2, 1e-12);
    EXPECT_DOUBLE_EQ(qos.quantile(), 95.0);
}

TEST(Qos, MeanSatisfactionUsesTheMean)
{
    const QosConstraint qos = QosConstraint::meanBudget(2.0);
    EXPECT_TRUE(qos.satisfiedBy(statsWithResponses({1.0, 2.5})));
    EXPECT_FALSE(qos.satisfiedBy(statsWithResponses({1.0, 4.0})));
}

TEST(Qos, TailSatisfactionUsesThePercentile)
{
    const QosConstraint qos = QosConstraint::tailBudget(3.0, 95.0);
    SimStats ok;
    SimStats bad;
    for (int i = 0; i < 100; ++i) {
        ok.responseHistogram.add(i < 96 ? 1.0 : 10.0);
        bad.responseHistogram.add(i < 90 ? 1.0 : 10.0);
    }
    EXPECT_TRUE(qos.satisfiedBy(ok));
    EXPECT_FALSE(qos.satisfiedBy(bad));
}

TEST(Qos, MeasuredValueReportsTheRightStatistic)
{
    const SimStats stats = statsWithResponses({1.0, 3.0});
    EXPECT_DOUBLE_EQ(
        QosConstraint::meanBudget(1.0).measuredValue(stats), 2.0);
    EXPECT_GE(QosConstraint::tailBudget(1.0).measuredValue(stats), 3.0);
}

TEST(Qos, AnalyticMeanValueDelegatesToClosedForm)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MM1SleepModel model(xeon);
    const double mu = 1.0 / 0.194;
    const double lambda = 0.3 * mu;
    const Policy policy{1.0,
                        SleepPlan::immediate(LowPowerState::C6S0Idle)};
    const QosConstraint qos = QosConstraint::meanBudget(1.0);
    EXPECT_NEAR(qos.analyticValue(model, policy, lambda, mu),
                model.meanResponse(policy, lambda, mu), 1e-12);
}

TEST(Qos, AnalyticTailValueInvertsTheTail)
{
    // For w = 0 the response is exponential: the 95th percentile is
    // ln(20)/(µf - λ).
    const PlatformModel xeon = PlatformModel::xeon();
    const MM1SleepModel model(xeon);
    const double mu = 1.0 / 0.194;
    const double lambda = 0.4 * mu;
    const Policy policy{1.0,
                        SleepPlan::immediate(LowPowerState::C0IdleS0Idle)};
    const QosConstraint qos = QosConstraint::tailBudget(1.0, 95.0);
    const double expected = std::log(20.0) / (mu - lambda);
    EXPECT_NEAR(qos.analyticValue(model, policy, lambda, mu), expected,
                1e-6);
    EXPECT_EQ(qos.satisfiedByAnalytic(model, policy, lambda, mu),
              expected <= 1.0);
}

TEST(Qos, ValidationRejectsBadParameters)
{
    EXPECT_THROW(QosConstraint::meanBudget(0.0), ConfigError);
    EXPECT_THROW(QosConstraint::tailBudget(1.0, 0.0), ConfigError);
    EXPECT_THROW(QosConstraint::tailBudget(1.0, 100.0), ConfigError);
    EXPECT_THROW(QosConstraint::fromBaselineMean(1.0, 1.0), ConfigError);
    EXPECT_THROW(QosConstraint::fromBaselineMean(0.5, 0.0), ConfigError);
    EXPECT_THROW(QosConstraint::fromBaselineTail(0.5, 1.0, 1.5),
                 ConfigError);
}

TEST(Qos, MetricNames)
{
    EXPECT_EQ(toString(QosMetric::MeanResponse), "E[R]");
    EXPECT_EQ(toString(QosMetric::TailResponse), "Pr(R>=d)");
}

} // namespace
} // namespace sleepscale
