/**
 * @file
 * Tests for the O(1) feedback-control decision subsystem
 * (src/control, docs/CONTROL.md): the scalar Kalman filter against
 * its closed-form steady state, the xup integrator's clamping and
 * translation, convergence of the full loop after a load step,
 * controller-vs-search sanity on stationary M/M/1 points, and the
 * determinism contracts (bit-identical reruns, thread-width
 * invariance, timing-instrumentation invariance).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "control/controller_manager.hh"
#include "control/kalman_estimator.hh"
#include "control/power_perf_controller.hh"
#include "core/runtime.hh"
#include "core/strategies.hh"
#include "experiment/runner.hh"
#include "experiment/scenario.hh"
#include "power/platform_model.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"

namespace sleepscale {
namespace {

// ------------------------------------------------------ Kalman filter

TEST(KalmanEstimator, GainConvergesToClosedFormSteadyState)
{
    const struct { double q, r; } cases[] = {
        {1e-4, 1e-2}, {1e-2, 1e-2}, {1.0, 0.5}, {1e-6, 1e-1}};
    for (const auto &c : cases) {
        KalmanEstimator filter(c.q, c.r, 0.0, 1.0);
        // The Riccati recurrence contracts by (1 - k)^2 per step, so
        // small-gain settings need many iterations to settle.
        for (int i = 0; i < 20000; ++i)
            filter.update(1.0);
        const double expected =
            KalmanEstimator::steadyStateGain(c.q, c.r);
        EXPECT_NEAR(filter.gain(), expected, 1e-9 * expected)
            << "q=" << c.q << " r=" << c.r;
    }
}

TEST(KalmanEstimator, EstimateConvergesToConstantMeasurement)
{
    KalmanEstimator filter(1e-4, 1e-2, 0.0, 1e2);
    double estimate = 0.0;
    for (int i = 0; i < 500; ++i)
        estimate = filter.update(5.0);
    EXPECT_NEAR(estimate, 5.0, 1e-6);
}

TEST(KalmanEstimator, ObservationGainScalesTheMeasurement)
{
    // y = h * x with h = 4: a constant reading of 8 through gain 4
    // estimates x = 2.
    KalmanEstimator filter(1e-4, 1e-2, 0.0, 1e6);
    double estimate = 0.0;
    for (int i = 0; i < 500; ++i)
        estimate = filter.update(8.0, 4.0);
    EXPECT_NEAR(estimate, 2.0, 1e-6);
}

TEST(KalmanEstimator, ResetRestoresThePrior)
{
    KalmanEstimator filter(1e-3, 1e-2, 7.0, 3.0);
    filter.update(1.0);
    filter.update(2.0);
    filter.reset();
    EXPECT_EQ(filter.estimate(), 7.0);
    EXPECT_EQ(filter.variance(), 3.0);
    EXPECT_EQ(filter.gain(), 0.0);
}

// ------------------------------------------------- xup controller

class PowerPerfControllerTest : public ::testing::Test
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();
    WorkloadSpec dns = dnsWorkload();
    PolicySpace space = PolicySpace::standard();
    ControllerConfig config;
};

TEST_F(PowerPerfControllerTest, SpeedupRangeSpansTheGrid)
{
    PowerPerfController xup(xeon, dns.scaling, space, config);
    EXPECT_DOUBLE_EQ(xup.xupMin(), 1.0);
    EXPECT_GT(xup.xupMax(), 1.0);
    // The integrator starts fast (at xupMax) and speedups are
    // monotone in frequency.
    EXPECT_DOUBLE_EQ(xup.xup(), xup.xupMax());
    EXPECT_LT(xup.speedupOf(0.5), xup.speedupOf(1.0));
}

TEST_F(PowerPerfControllerTest, StepClampsToTheReachableRange)
{
    PowerPerfController xup(xeon, dns.scaling, space, config);
    // A huge negative error cannot push xup below xupMin...
    xup.step(-1e9, 1.0);
    EXPECT_DOUBLE_EQ(xup.xup(), xup.xupMin());
    EXPECT_FALSE(xup.saturatedHigh());
    // ...and a huge positive error pins it at xupMax (anti-windup).
    xup.step(1e9, 1.0);
    EXPECT_DOUBLE_EQ(xup.xup(), xup.xupMax());
    EXPECT_TRUE(xup.saturatedHigh());
}

TEST_F(PowerPerfControllerTest, StabilityFloorOverridesSlowRequests)
{
    PowerPerfController xup(xeon, dns.scaling, space, config);
    xup.step(-1e9, 1.0); // request the slowest operating point
    // At near-idle load the slow request stands; at high load the
    // stability floor forces a faster frequency.
    const Policy idle = xup.translate(0.01, 0.0);
    const Policy busy = xup.translate(0.9, 0.0);
    EXPECT_LT(idle.frequency, busy.frequency);
    EXPECT_GE(busy.frequency, 0.9);
}

TEST_F(PowerPerfControllerTest, WakeAllowancePicksSleepDepth)
{
    PowerPerfController xup(xeon, dns.scaling, space, config);
    // No allowance: the shallowest candidate; generous allowance: a
    // strictly deeper one.
    const Policy shallow = xup.translate(0.1, 0.0);
    const Policy deep = xup.translate(0.1, 1e9);
    EXPECT_LT(depthIndex(shallow.plan.deepest()),
              depthIndex(deep.plan.deepest()));
}

TEST_F(PowerPerfControllerTest, ResetRestoresConstructionState)
{
    PowerPerfController xup(xeon, dns.scaling, space, config);
    PowerPerfController fresh = xup;
    xup.step(-3.0, 1.0);
    xup.translate(0.3, 0.0);
    xup.reset();
    EXPECT_DOUBLE_EQ(xup.xup(), fresh.xup());
    // Identical trajectories after reset.
    for (int i = 0; i < 10; ++i) {
        xup.step(-0.1 * i, 1.0);
        fresh.step(-0.1 * i, 1.0);
        const Policy a = xup.translate(0.2, 0.1);
        const Policy b = fresh.translate(0.2, 0.1);
        EXPECT_EQ(a.frequency, b.frequency);
        EXPECT_EQ(a.plan.deepest(), b.plan.deepest());
    }
}

// --------------------------------------------- ControllerManager unit

class ControllerManagerTest : public ::testing::Test
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();
    WorkloadSpec dns = dnsWorkload();

    ControllerManager
    makeManager()
    {
        const QosConstraint qos =
            QosConstraint::fromBaselineMean(0.8, dns.serviceMean);
        return ControllerManager(xeon, dns.scaling,
                                 PolicySpace::standard(), qos,
                                 ControllerConfig{},
                                 Policy{1.0, SleepPlan::immediate(
                                                 LowPowerState::C0IdleS0Idle)});
    }

    EpochObservation
    observationAt(double load, double qos_seconds) const
    {
        EpochObservation observation;
        observation.measuredUtilization = load;
        observation.measuredQos = qos_seconds;
        observation.meanJobSize = dns.serviceMean;
        observation.hasMeasurement = true;
        observation.applied =
            Policy{1.0,
                   SleepPlan::immediate(LowPowerState::C0IdleS0Idle)};
        return observation;
    }
};

TEST_F(ControllerManagerTest, NeedsNoLog)
{
    ControllerManager manager = makeManager();
    EXPECT_FALSE(manager.needsLog());
}

TEST_F(ControllerManagerTest, HoldsPolicyWithoutMeasurement)
{
    ControllerManager manager = makeManager();
    EpochObservation observation; // hasMeasurement = false
    const PolicyDecision decision = manager.decide(observation, {});
    EXPECT_TRUE(decision.feasible);
    EXPECT_EQ(decision.policy.frequency, 1.0);
    EXPECT_EQ(decision.evaluated, 0u);
}

TEST_F(ControllerManagerTest, RelaxesWhenComfortablyWithinBudget)
{
    ControllerManager manager = makeManager();
    const double budget = manager.qos().budget();
    Policy last;
    for (int i = 0; i < 50; ++i)
        last = manager
                   .decide(observationAt(0.1, 0.05 * budget), {})
                   .policy;
    // Far under budget at light load, the loop backs off from f = 1.
    EXPECT_LT(last.frequency, 1.0);
}

TEST_F(ControllerManagerTest, GuardedFallsBackWhenStarved)
{
    ControllerManager manager = makeManager();
    const Policy fallback{0.77,
                          SleepPlan::immediate(LowPowerState::C3S0Idle)};
    EpochObservation observation = observationAt(0.3, 1.0);
    observation.faultStarved = true;
    const GuardedDecision guarded =
        manager.decideGuarded(observation, {}, fallback);
    EXPECT_TRUE(guarded.degraded);
    EXPECT_FALSE(guarded.decision.feasible);
    EXPECT_EQ(guarded.decision.policy.frequency, fallback.frequency);
}

// ------------------------------------------- closed-loop convergence

/** First epoch index at/after `from` whose harvested stats meet the
 * QoS budget (completed epochs only). */
std::size_t
firstWithinBudget(const RuntimeResult &result, std::size_t from)
{
    for (std::size_t i = from; i < result.epochs.size(); ++i) {
        const EpochReport &epoch = result.epochs[i];
        if (epoch.stats.completions > 0 &&
            result.qos.satisfiedBy(epoch.stats))
            return i;
    }
    return result.epochs.size();
}

TEST(ControlLoop, ReconvergesWithinBoundedEpochsAfterLoadStep)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();

    // 2x load step at minute 100: 20 settle epochs at 0.15, then 40
    // epochs at 0.30.
    std::vector<double> levels(100, 0.15);
    levels.insert(levels.end(), 200, 0.30);
    const UtilizationTrace trace("step", levels);
    Rng rng(11);
    const auto jobs = generateTraceDrivenJobs(rng, dns, trace);

    StrategyKnobs knobs;
    const RuntimeConfig config = strategyConfigByName("poet", knobs);
    const SleepScaleRuntime runtime(xeon, dns, config);
    NaivePreviousPredictor predictor(0.15);
    const RuntimeResult result = runtime.run(jobs, trace, predictor);

    const std::size_t step_epoch = 100 / config.epochMinutes;
    ASSERT_GT(result.epochs.size(), step_epoch + 8);

    // The loop must settle before the step...
    ASSERT_LT(firstWithinBudget(result, 2), step_epoch);
    // ...and re-enter the budget within a bounded number of epochs
    // after the 2x step (the reactive-control recovery bound the
    // bench reports; docs/CONTROL.md).
    const std::size_t recovered =
        firstWithinBudget(result, step_epoch + 1);
    EXPECT_LE(recovered - step_epoch, 4u)
        << "controller took " << (recovered - step_epoch)
        << " epochs to re-converge after the load step";
}

// ------------------------------- controller vs search, stationary

/** Stationary M/M/1 single-server scenario at the given load. */
ScenarioSpec
stationarySpec(const std::string &strategy, double util)
{
    return ScenarioBuilder("band " + strategy)
        .workload("dns")
        .idealizedWorkload()
        .strategy(strategy)
        .source("stationary")
        .sourceUtilization(util)
        .flatTrace(util, 720)
        .seed(7)
        .build();
}

TEST(ControlLoop, TracksSearchOnStationaryPoints)
{
    // On stationary M/M/1 points the O(1) controller must land in the
    // same regime as the full search: QoS met, energy within a
    // two-sided band. The band is wide — the controller regulates to
    // a goal below the budget while the search picks the cheapest
    // feasible candidate — but it pins the controller to the search's
    // operating region (docs/CONTROL.md states the trade-off).
    for (const double util : {0.15, 0.3}) {
        const ScenarioResult poet =
            ExperimentRunner::runScenario(stationarySpec("poet", util));
        const ScenarioResult search =
            ExperimentRunner::runScenario(stationarySpec("SS", util));
        EXPECT_TRUE(search.withinBudget) << "util=" << util;
        EXPECT_TRUE(poet.withinBudget) << "util=" << util;
        const double ratio = poet.energy / search.energy;
        EXPECT_GT(ratio, 0.75) << "util=" << util;
        EXPECT_LT(ratio, 1.15) << "util=" << util;
    }
}

// ------------------------------------------------------- determinism

TEST(ControlDeterminism, RerunsAreBitIdentical)
{
    const ScenarioSpec spec = stationarySpec("poet", 0.3);
    const ScenarioResult a = ExperimentRunner::runScenario(spec);
    const ScenarioResult b = ExperimentRunner::runScenario(spec);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.meanResponse, b.meanResponse);
    EXPECT_EQ(a.p99Response, b.p99Response);
    EXPECT_EQ(a.avgPower, b.avgPower);
}

TEST(ControlDeterminism, TimingInstrumentationDoesNotPerturbResults)
{
    // The monotonic-clock reads behind recordDecisionTime are the one
    // allowlisted wall-clock use; they must never feed simulated
    // state.
    const ScenarioSpec plain = stationarySpec("poet", 0.3);
    ScenarioSpec timed = plain;
    timed.recordDecisionTime = true;
    const ScenarioResult a = ExperimentRunner::runScenario(plain);
    const ScenarioResult b = ExperimentRunner::runScenario(timed);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.meanResponse, b.meanResponse);
    EXPECT_GE(b.extra("decision_us_mean"), 0.0);
    EXPECT_GE(b.extra("decision_us_p99"),
              b.extra("decision_us_mean") * 0.0);
}

TEST(ControlDeterminism, PerServerFarmIsThreadWidthInvariant)
{
    // One controller per back-end; the decision fan-out must
    // bit-reproduce the serial run at any pool width.
    ScenarioSpec base = ScenarioBuilder("farm poet")
                            .engine(EngineKind::Farm)
                            .workload("dns")
                            .strategy("poet")
                            .farmSize(8)
                            .farmControl("per-server")
                            .flatTrace(0.25, 240)
                            .source("stationary")
                            .sourceUtilization(0.25)
                            .seed(3)
                            .build();
    ScenarioSpec serial = base;
    serial.decisionThreads = 1;
    ScenarioSpec wide = base;
    wide.decisionThreads = 8;

    const ScenarioResult a = ExperimentRunner::runScenario(serial);
    const ScenarioResult b = ExperimentRunner::runScenario(wide);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.meanResponse, b.meanResponse);
    ASSERT_EQ(a.servers.size(), b.servers.size());
    for (std::size_t i = 0; i < a.servers.size(); ++i) {
        EXPECT_EQ(a.servers[i].energy, b.servers[i].energy);
        EXPECT_EQ(a.servers[i].jobs, b.servers[i].jobs);
    }
}

// ----------------------------------------------------------- registry

TEST(ControlRegistry, PoetIsRegisteredAndEnumerated)
{
    // The CLI's unknown-strategy rejection enumerates
    // strategyRegistry() names, so registration here is what puts
    // "poet" into that message.
    const std::string names = strategyRegistry().namesCsv();
    EXPECT_NE(names.find("poet"), std::string::npos) << names;
}

} // namespace
} // namespace sleepscale
