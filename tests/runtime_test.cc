/**
 * @file
 * Tests for the epoch-based SleepScale runtime and the named strategies.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/runtime.hh"
#include "core/strategies.hh"
#include "power/platform_model.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"

namespace sleepscale {
namespace {

class RuntimeTest : public ::testing::Test
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();
    WorkloadSpec dns = dnsWorkload();

    UtilizationTrace
    flatTrace(std::size_t minutes, double level) const
    {
        return UtilizationTrace("flat",
                                std::vector<double>(minutes, level));
    }

    std::vector<Job>
    jobsFor(const UtilizationTrace &trace, std::uint64_t seed = 9) const
    {
        Rng rng(seed);
        return generateTraceDrivenJobs(rng, dns, trace);
    }
};

TEST_F(RuntimeTest, ConservesJobs)
{
    const UtilizationTrace trace = flatTrace(30, 0.3);
    const auto jobs = jobsFor(trace);

    RuntimeConfig config;
    config.epochMinutes = 5;
    const SleepScaleRuntime runtime(xeon, dns, config);
    NaivePreviousPredictor predictor(0.3);
    const RuntimeResult result = runtime.run(jobs, trace, predictor);

    EXPECT_EQ(result.total.arrivals, jobs.size());
    EXPECT_EQ(result.total.completions, jobs.size());
}

TEST_F(RuntimeTest, EpochCountMatchesTrace)
{
    const UtilizationTrace trace = flatTrace(30, 0.2);
    const auto jobs = jobsFor(trace);
    RuntimeConfig config;
    config.epochMinutes = 5;
    const SleepScaleRuntime runtime(xeon, dns, config);
    NaivePreviousPredictor predictor(0.2);
    const RuntimeResult result = runtime.run(jobs, trace, predictor);
    EXPECT_EQ(result.epochs.size(), 6u);
    for (std::size_t i = 0; i < result.epochs.size(); ++i)
        EXPECT_EQ(result.epochs[i].index, i);
}

TEST_F(RuntimeTest, EnergyAccountingIsContiguous)
{
    const UtilizationTrace trace = flatTrace(20, 0.25);
    const auto jobs = jobsFor(trace);
    RuntimeConfig config;
    config.epochMinutes = 4;
    const SleepScaleRuntime runtime(xeon, dns, config);
    NaivePreviousPredictor predictor(0.25);
    const RuntimeResult result = runtime.run(jobs, trace, predictor);

    // Windows tile the run: sum of epoch spans equals the total span,
    // and energies add up.
    double span = 0.0, energy = 0.0;
    for (const EpochReport &epoch : result.epochs) {
        span += epoch.stats.elapsed();
        energy += epoch.stats.energy;
    }
    EXPECT_NEAR(span, result.total.elapsed(), 1e-6);
    EXPECT_NEAR(energy, result.total.energy, 1e-6);
    EXPECT_GE(result.total.elapsed(), trace.duration());
}

TEST_F(RuntimeTest, AveragePowerWithinModelBounds)
{
    const UtilizationTrace trace = flatTrace(30, 0.3);
    const auto jobs = jobsFor(trace);
    const SleepScaleRuntime runtime(xeon, dns, RuntimeConfig{});
    NaivePreviousPredictor predictor(0.3);
    const RuntimeResult result = runtime.run(jobs, trace, predictor);
    EXPECT_GT(result.avgPower(), xeon.lowPower(LowPowerState::C6S3, 1.0));
    EXPECT_LT(result.avgPower(), xeon.activePower(1.0));
}

TEST_F(RuntimeTest, FixedPolicyNeverChanges)
{
    const UtilizationTrace trace = flatTrace(20, 0.4);
    const auto jobs = jobsFor(trace);
    RuntimeConfig config;
    config.fixedPolicy = raceToHalt(LowPowerState::C6S0Idle);
    const SleepScaleRuntime runtime(xeon, dns, config);
    NaivePreviousPredictor predictor(0.4);
    const RuntimeResult result = runtime.run(jobs, trace, predictor);
    for (const EpochReport &epoch : result.epochs) {
        EXPECT_DOUBLE_EQ(epoch.policy.frequency, 1.0);
        EXPECT_EQ(epoch.policy.plan.deepest(),
                  LowPowerState::C6S0Idle);
    }
}

TEST_F(RuntimeTest, StateSelectionFractionsSumToOne)
{
    const UtilizationTrace trace = flatTrace(40, 0.2);
    const auto jobs = jobsFor(trace);
    const SleepScaleRuntime runtime(xeon, dns, RuntimeConfig{});
    NaivePreviousPredictor predictor(0.2);
    const RuntimeResult result = runtime.run(jobs, trace, predictor);
    const auto fractions = result.stateSelectionFractions();
    double sum = 0.0;
    for (double f : fractions)
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(RuntimeTest, DvfsOnlyNeverSleepsDeep)
{
    const UtilizationTrace trace = flatTrace(30, 0.3);
    const auto jobs = jobsFor(trace);
    const RuntimeConfig config =
        makeStrategyConfig(StrategyKind::DvfsOnly, 5, 0.0, 0.8);
    const SleepScaleRuntime runtime(xeon, dns, config);
    NaivePreviousPredictor predictor(0.3);
    const RuntimeResult result = runtime.run(jobs, trace, predictor);
    const auto fractions = result.stateSelectionFractions();
    EXPECT_DOUBLE_EQ(
        fractions[depthIndex(LowPowerState::C0IdleS0Idle)], 1.0);
}

TEST_F(RuntimeTest, OverProvisioningBoostsFrequency)
{
    const UtilizationTrace trace = flatTrace(40, 0.2);
    const auto jobs = jobsFor(trace);

    RuntimeConfig plain;
    plain.overProvision = 0.0;
    RuntimeConfig guarded;
    guarded.overProvision = 0.35;

    NaivePreviousPredictor p1(0.2), p2(0.2);
    const RuntimeResult without =
        SleepScaleRuntime(xeon, dns, plain).run(jobs, trace, p1);
    const RuntimeResult with =
        SleepScaleRuntime(xeon, dns, guarded).run(jobs, trace, p2);

    // Some epoch must be boosted once the budget is met...
    bool any_boost = false;
    for (const EpochReport &epoch : with.epochs)
        any_boost = any_boost || epoch.boosted;
    EXPECT_TRUE(any_boost);
    for (const EpochReport &epoch : without.epochs)
        EXPECT_FALSE(epoch.boosted);

    // ...and the guard band buys response time for power (Section 6.1).
    EXPECT_LE(with.meanResponse(), without.meanResponse() * 1.05);
    EXPECT_GE(with.avgPower(), without.avgPower() * 0.98);
}

TEST_F(RuntimeTest, QosBudgetDerivedFromRhoB)
{
    RuntimeConfig config;
    config.rhoB = 0.8;
    const SleepScaleRuntime runtime(xeon, dns, config);
    EXPECT_NEAR(runtime.qos().budget(), 0.194 / 0.2, 1e-12);

    RuntimeConfig tail;
    tail.qosMetric = QosMetric::TailResponse;
    const SleepScaleRuntime tail_runtime(xeon, dns, tail);
    EXPECT_EQ(tail_runtime.qos().metric(), QosMetric::TailResponse);
}

TEST_F(RuntimeTest, ValidationRejectsBadConfig)
{
    RuntimeConfig zero_epoch;
    zero_epoch.epochMinutes = 0;
    EXPECT_THROW(SleepScaleRuntime(xeon, dns, zero_epoch), ConfigError);

    RuntimeConfig tiny_log;
    tiny_log.evalLogCap = 1;
    EXPECT_THROW(SleepScaleRuntime(xeon, dns, tiny_log), ConfigError);

    const SleepScaleRuntime runtime(xeon, dns, RuntimeConfig{});
    NaivePreviousPredictor predictor;
    EXPECT_THROW(runtime.run({}, UtilizationTrace{}, predictor),
                 ConfigError);
}

TEST_F(RuntimeTest, BacklogCarriesAcrossEpochs)
{
    // One overload minute inside an otherwise quiet trace: responses of
    // jobs queued during the spike are attributed to later epochs, and
    // nothing is lost.
    std::vector<double> levels(30, 0.05);
    levels[10] = 0.9;
    levels[11] = 0.9;
    const UtilizationTrace trace("spike", levels);
    const auto jobs = jobsFor(trace, 17);

    RuntimeConfig config;
    config.epochMinutes = 5;
    const SleepScaleRuntime runtime(xeon, dns, config);
    NaivePreviousPredictor predictor(0.05);
    const RuntimeResult result = runtime.run(jobs, trace, predictor);
    EXPECT_EQ(result.total.completions, jobs.size());
}

// -------------------------------------------------------- strategy kinds

TEST(Strategies, LabelsMatchPaper)
{
    EXPECT_EQ(toString(StrategyKind::SleepScale), "SS");
    EXPECT_EQ(toString(StrategyKind::SleepScaleC3), "SS(C3)");
    EXPECT_EQ(toString(StrategyKind::DvfsOnly), "DVFS");
    EXPECT_EQ(toString(StrategyKind::RaceToHaltC3), "R2H(C3)");
    EXPECT_EQ(toString(StrategyKind::RaceToHaltC6), "R2H(C6)");
}

TEST(Strategies, ConfigsEncodeTheRightRestrictions)
{
    const RuntimeConfig ss =
        makeStrategyConfig(StrategyKind::SleepScale, 5, 0.35, 0.8);
    EXPECT_EQ(ss.space.plans.size(), 5u);
    EXPECT_FALSE(ss.fixedPolicy.has_value());

    const RuntimeConfig ss_c3 =
        makeStrategyConfig(StrategyKind::SleepScaleC3, 5, 0.35, 0.8);
    ASSERT_EQ(ss_c3.space.plans.size(), 1u);
    EXPECT_EQ(ss_c3.space.plans[0].deepest(), LowPowerState::C3S0Idle);

    const RuntimeConfig r2h =
        makeStrategyConfig(StrategyKind::RaceToHaltC6, 5, 0.35, 0.8);
    ASSERT_TRUE(r2h.fixedPolicy.has_value());
    EXPECT_DOUBLE_EQ(r2h.fixedPolicy->frequency, 1.0);
}

} // namespace
} // namespace sleepscale
