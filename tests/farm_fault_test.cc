/**
 * @file
 * The availability plane (docs/FAULTS.md): fault-source determinism,
 * the ServerFarm crash/recovery lifecycle, dispatcher failover with
 * retry/backoff and drop accounting, degraded-mode policy decisions,
 * and — most load-bearing — the pin that a "none"-fault configuration
 * reproduces the fault-free farm runtime bit-for-bit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/predictor.hh"
#include "core/strategies.hh"
#include "experiment/replication.hh"
#include "experiment/runner.hh"
#include "farm/dispatcher.hh"
#include "farm/farm_runtime.hh"
#include "farm/server_farm.hh"
#include "fault/fault_source.hh"
#include "power/platform_model.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {
namespace {

// ---------------------------------------------------------- FaultSource

bool
sameEvents(const std::vector<FaultEvent> &a,
           const std::vector<FaultEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].time != b[i].time || a[i].server != b[i].server ||
            a[i].down != b[i].down)
            return false;
    }
    return true;
}

TEST(FaultSources, RegistryListsTheFourFamilies)
{
    for (const char *name : {"none", "mtbf", "correlated", "scripted"})
        EXPECT_TRUE(faultSourceRegistry().contains(name)) << name;
    FaultSourceConfig config;
    EXPECT_THROW(makeFaultSource("voodoo", config), ConfigError);
}

TEST(FaultSources, NoFaultSourceIsEmpty)
{
    NoFaultSource source;
    FaultEvent event;
    EXPECT_FALSE(source.next(event));
    source.reset(7);
    EXPECT_FALSE(source.next(event));
    EXPECT_FALSE(source.clone()->next(event));
}

TEST(FaultSources, MtbfIsSeedDeterministic)
{
    FaultSourceConfig config;
    config.farmSize = 4;
    config.mtbf = 1000.0;
    config.mttr = 100.0;
    config.seed = 42;
    const auto source = makeFaultSource("mtbf", config);
    const auto events = materializeFaults(*source, 50000.0);
    ASSERT_FALSE(events.empty());

    // Equal seeds reproduce the stream bit-for-bit, via reset() and
    // via an independently constructed source.
    source->reset(42);
    EXPECT_TRUE(sameEvents(events, materializeFaults(*source, 50000.0)));
    const auto twin = makeFaultSource("mtbf", config);
    EXPECT_TRUE(sameEvents(events, materializeFaults(*twin, 50000.0)));

    // A different seed yields a different schedule.
    source->reset(43);
    EXPECT_FALSE(sameEvents(events, materializeFaults(*source, 50000.0)));
}

TEST(FaultSources, MtbfAlternatesDownUpPerServer)
{
    FaultSourceConfig config;
    config.farmSize = 3;
    config.mtbf = 500.0;
    config.mttr = 50.0;
    config.seed = 9;
    const auto source = makeFaultSource("mtbf", config);
    const auto events = materializeFaults(*source, 100000.0);
    ASSERT_GT(events.size(), 10u);

    double last_time = 0.0;
    std::vector<bool> expect_down(config.farmSize, true);
    for (const FaultEvent &event : events) {
        EXPECT_GE(event.time, last_time); // Globally non-decreasing.
        last_time = event.time;
        ASSERT_LT(event.server, config.farmSize);
        // Each server strictly alternates crash / recovery.
        EXPECT_EQ(event.down, expect_down[event.server]);
        expect_down[event.server] = !event.down;
    }
}

TEST(FaultSources, MtbfCloneContinuesMidStream)
{
    FaultSourceConfig config;
    config.farmSize = 2;
    config.mtbf = 300.0;
    config.mttr = 60.0;
    config.seed = 5;
    const auto source = makeFaultSource("mtbf", config);
    FaultEvent event;
    for (int i = 0; i < 7; ++i)
        ASSERT_TRUE(source->next(event));
    const auto clone = source->clone();
    // The clone continues exactly where the original stands, and
    // draining the clone does not disturb the original.
    const auto from_clone = materializeFaults(*clone, 20000.0);
    const auto from_source = materializeFaults(*source, 20000.0);
    EXPECT_TRUE(sameEvents(from_clone, from_source));
}

TEST(FaultSources, CorrelatedOutagesCoverGroupsWithoutOverlap)
{
    FaultSourceConfig config;
    config.farmSize = 5;
    config.correlatedGroup = 3;
    config.mtbf = 2000.0;
    config.mttr = 200.0;
    config.seed = 11;
    const auto source = makeFaultSource("correlated", config);
    const auto events = materializeFaults(*source, 200000.0);
    ASSERT_GE(events.size(), 2 * config.correlatedGroup);
    ASSERT_EQ(events.size() % (2 * config.correlatedGroup), 0u);

    // Events come as one burst of `group` crashes at a common time,
    // then `group` recoveries at a common later time, never
    // overlapping the next outage.
    double previous_up = 0.0;
    for (std::size_t i = 0; i < events.size();
         i += 2 * config.correlatedGroup) {
        const double down_time = events[i].time;
        const double up_time = events[i + config.correlatedGroup].time;
        EXPECT_GE(down_time, previous_up);
        EXPECT_GT(up_time, down_time);
        std::vector<bool> hit(config.farmSize, false);
        for (std::size_t k = 0; k < config.correlatedGroup; ++k) {
            const FaultEvent &down = events[i + k];
            const FaultEvent &up = events[i + config.correlatedGroup + k];
            EXPECT_TRUE(down.down);
            EXPECT_FALSE(up.down);
            EXPECT_EQ(down.time, down_time);
            EXPECT_EQ(up.time, up_time);
            EXPECT_EQ(down.server, up.server);
            ASSERT_LT(down.server, config.farmSize);
            EXPECT_FALSE(hit[down.server]); // Distinct servers.
            hit[down.server] = true;
        }
        previous_up = up_time;
    }

    // Determinism carries over to the correlated family too.
    source->reset(11);
    EXPECT_TRUE(sameEvents(events, materializeFaults(*source, 200000.0)));
}

TEST(FaultSources, ScriptedReplaysVerbatimAndValidates)
{
    const std::vector<FaultEvent> script = {
        {100.0, 0, true}, {150.0, 1, true}, {150.0, 1, false},
        {220.0, 0, false}};
    FaultSourceConfig config;
    config.farmSize = 2;
    config.script = script;
    const auto source = makeFaultSource("scripted", config);
    EXPECT_TRUE(sameEvents(script, materializeFaults(*source, 1e9)));
    FaultEvent event;
    EXPECT_FALSE(source->next(event)); // Exhausted, forever.
    EXPECT_FALSE(source->next(event));
    source->reset(999); // Seed ignored: the script IS the schedule.
    EXPECT_TRUE(sameEvents(script, materializeFaults(*source, 1e9)));

    // Validation up front: out-of-order times, out-of-range servers,
    // and non-finite times are configuration errors.
    EXPECT_THROW(ScriptedFaultSource(2, {{50.0, 0, true},
                                         {40.0, 0, false}}),
                 ConfigError);
    EXPECT_THROW(ScriptedFaultSource(2, {{50.0, 2, true}}), ConfigError);
    EXPECT_THROW(ScriptedFaultSource(2, {{-1.0, 0, true}}), ConfigError);

    // An empty script is the no-fault schedule.
    ScriptedFaultSource empty(2, {});
    EXPECT_FALSE(empty.next(event));
}

TEST(FaultSources, FactoryValidatesRates)
{
    FaultSourceConfig config;
    config.farmSize = 2;
    config.mtbf = 0.0;
    EXPECT_THROW(makeFaultSource("mtbf", config), ConfigError);
    config.mtbf = 100.0;
    config.mttr = -1.0;
    EXPECT_THROW(makeFaultSource("correlated", config), ConfigError);
    config.mttr = 10.0;
    config.farmSize = 0;
    EXPECT_THROW(makeFaultSource("mtbf", config), ConfigError);
}

// ------------------------------------------------- ServerFarm lifecycle

class FaultFarmTest : public ::testing::Test
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();
    Policy idlePolicy{1.0,
                      SleepPlan::immediate(LowPowerState::C6S0Idle)};

    ServerFarm
    makeFarm(std::size_t size,
             const std::string &dispatcher = "round-robin")
    {
        return ServerFarm(xeon, ServiceScaling::cpuBound(), idlePolicy,
                          size, makeDispatcher(dispatcher));
    }
};

TEST_F(FaultFarmTest, LifecycleWalksDrainDownRecoverUp)
{
    ServerFarm farm = makeFarm(2);
    farm.setRecoverySeconds(10.0);
    EXPECT_EQ(farm.lifecycle(0, 0.0), ServerLifecycle::Up);

    // Give one server 5 s of committed work, then crash it mid-job:
    // it drains the backlog, goes dark, and recovers only after the
    // configured delay.
    const std::size_t victim = farm.tryOfferJob({0.0, 5.0});
    farm.failServer(victim, 1.0);
    EXPECT_EQ(farm.lifecycle(victim, 1.0), ServerLifecycle::Draining);
    EXPECT_FALSE(farm.accepting(victim, 1.0));
    EXPECT_EQ(farm.acceptingCount(1.0), 1u);
    EXPECT_EQ(farm.lifecycle(victim, 20.0), ServerLifecycle::Down);

    farm.restoreServer(victim, 30.0);
    EXPECT_EQ(farm.lifecycle(victim, 35.0), ServerLifecycle::Recovering);
    EXPECT_FALSE(farm.accepting(victim, 35.0));
    EXPECT_EQ(farm.lifecycle(victim, 40.0), ServerLifecycle::Up);
    EXPECT_TRUE(farm.accepting(victim, 40.0));

    // Unavailability spans crash (t=1) through the end of the
    // recovery delay (t=40).
    farm.advanceTo(50.0);
    EXPECT_NEAR(farm.downSeconds(victim), 39.0, 1e-9);
    EXPECT_NEAR(farm.totalDownSeconds(), 39.0, 1e-9);
    const std::size_t other = victim == 0 ? 1 : 0;
    EXPECT_DOUBLE_EQ(farm.downSeconds(other), 0.0);
}

TEST_F(FaultFarmTest, LifecycleStateNames)
{
    EXPECT_EQ(toString(ServerLifecycle::Up), "up");
    EXPECT_EQ(toString(ServerLifecycle::Draining), "draining");
    EXPECT_EQ(toString(ServerLifecycle::Down), "down");
    EXPECT_EQ(toString(ServerLifecycle::Recovering), "recovering");
}

TEST_F(FaultFarmTest, TryOfferSignalsWhenNoServerAccepts)
{
    ServerFarm farm = makeFarm(2);
    farm.failServer(0, 0.0);
    farm.failServer(0, 0.0); // Idempotent on an already-crashed server.
    farm.failServer(1, 0.0);
    EXPECT_EQ(farm.acceptingCount(1.0), 0u);
    EXPECT_EQ(farm.tryOfferJob({1.0, 1.0}), ServerFarm::noServer);
    // offerJob() has no failover path and fails fast instead.
    EXPECT_THROW(farm.offerJob({1.0, 1.0}), ConfigError);

    // Restoring one server routes everything to it.
    farm.restoreServer(0, 2.0);
    farm.restoreServer(0, 2.0); // No-op on a server that is not crashed.
    EXPECT_EQ(farm.tryOfferJob({3.0, 1.0}), 0u);
    EXPECT_EQ(farm.tryOfferJob({3.5, 1.0}), 0u);

    EXPECT_THROW(farm.failServer(2, 0.0), ConfigError);
    EXPECT_THROW(farm.restoreServer(2, 0.0), ConfigError);
    EXPECT_THROW(farm.setRecoverySeconds(-1.0), ConfigError);
}

// ------------------------------------------- FarmRuntime failover path

FarmRuntimeConfig
faultRuntimeConfig(std::size_t farm_size, const std::string &control)
{
    FarmRuntimeConfig config;
    config.farmSize = farm_size;
    config.control = control;
    config.dispatchSeed = mixSeed(1);
    config.faultSeed = mixSeed(mixSeed(1));
    config.perServer.epochMinutes = 5;
    return config;
}

FarmRuntimeResult
runFaultScenario(const FarmRuntimeConfig &config,
                 const UtilizationTrace &trace)
{
    const PlatformModel platform = platformByName("xeon");
    const WorkloadSpec workload = workloadByName("dns");
    FarmRuntime runtime(platform, workload, config);
    const auto source =
        makeFarmSource(workload, trace, config.farmSize, 1);
    const auto predictor = makePredictor("LC", 10, trace.values());
    return runtime.run(*source, trace, *predictor);
}

void
expectConservation(const FarmRuntimeResult &result)
{
    ASSERT_FALSE(result.epochFaults.empty());
    for (const FarmFaultStats &s : result.epochFaults) {
        EXPECT_EQ(s.offered, s.completed + s.dropped + s.inFlight)
            << "at elapsed " << s.elapsedSeconds;
    }
    const FarmFaultStats &final = result.faults;
    EXPECT_EQ(final.offered, final.completed + final.dropped);
    EXPECT_EQ(final.inFlight, 0u); // Everything drained or dropped.
}

TEST(FarmFailover, FullOutageRetriesWithoutLosingJobs)
{
    // Both servers down for 100 s: every arrival in the gap must be
    // retried and eventually admitted — the outage is far shorter
    // than the drop deadline, so nothing may be lost.
    const UtilizationTrace trace("flat", std::vector<double>(60, 0.3));
    for (const char *control : {"farm-wide", "per-server"}) {
        FarmRuntimeConfig config = faultRuntimeConfig(2, control);
        config.faults = "scripted";
        config.faultScript = {{600.0, 0, true},
                              {600.0, 1, true},
                              {700.0, 0, false},
                              {700.0, 1, false}};
        config.retryBackoff = 1.0;
        config.retryBackoffCap = 30.0;
        config.dropTimeout = 600.0;

        const FarmRuntimeResult result = runFaultScenario(config, trace);
        expectConservation(result);
        EXPECT_GT(result.faults.retries, 0u) << control;
        EXPECT_EQ(result.faults.dropped, 0u) << control;
        EXPECT_EQ(result.faults.offered, result.faults.completed);
        EXPECT_DOUBLE_EQ(result.faults.goodput(), 1.0);
        // Two servers out for 100 s each.
        EXPECT_NEAR(result.faults.downSeconds, 200.0, 1e-6);
        const double availability = result.faults.availability(2);
        EXPECT_LT(availability, 1.0);
        EXPECT_GT(availability, 0.9);
    }
}

TEST(FarmFailover, OutagePastDeadlineDropsAsSloLoss)
{
    // A 600 s full-farm outage against a 100 s drop deadline: jobs
    // arriving early in the gap exhaust their deadline and are
    // dropped; conservation must still hold with drops counted.
    const UtilizationTrace trace("flat", std::vector<double>(60, 0.3));
    FarmRuntimeConfig config = faultRuntimeConfig(2, "farm-wide");
    config.faults = "scripted";
    config.faultScript = {{600.0, 0, true},
                          {600.0, 1, true},
                          {1200.0, 0, false},
                          {1200.0, 1, false}};
    config.retryBackoff = 1.0;
    config.retryBackoffCap = 30.0;
    config.dropTimeout = 100.0;

    const FarmRuntimeResult result = runFaultScenario(config, trace);
    expectConservation(result);
    EXPECT_GT(result.faults.dropped, 0u);
    EXPECT_GT(result.faults.retries, 0u);
    EXPECT_LT(result.faults.goodput(), 1.0);
    EXPECT_GT(result.faults.goodput(), 0.5);
    EXPECT_EQ(result.faults.admitted + result.faults.dropped,
              result.faults.offered);
}

TEST(FarmFailover, BackoffDelaySaturatesInsteadOfOverflowing)
{
    // Attempt k waits backoff * 2^(k-1) up to the cap — with exact
    // binary scaling while it is below the cap...
    EXPECT_DOUBLE_EQ(failoverBackoffDelay(1.0, 1, 60.0), 1.0);
    EXPECT_DOUBLE_EQ(failoverBackoffDelay(1.0, 4, 60.0), 8.0);
    EXPECT_DOUBLE_EQ(failoverBackoffDelay(1.0, 7, 60.0), 60.0);
    // ...and a tiny base must still climb to the cap: 2^(k-1) is
    // computed in saturating form, so neither a pre-clamp on the
    // exponent (the old 2^30 ceiling, which froze sub-nanosecond
    // backoffs at ~1 ms forever) nor double overflow can keep the
    // delay below the cap.
    EXPECT_DOUBLE_EQ(failoverBackoffDelay(1e-12, 80, 30.0), 30.0);
    EXPECT_DOUBLE_EQ(failoverBackoffDelay(1e-300, 2000, 30.0), 30.0);
    EXPECT_DOUBLE_EQ(failoverBackoffDelay(1e-300, 4000000000u, 30.0),
                     30.0);
    // Monotone non-decreasing and always finite across the whole
    // attempt range.
    double last = 0.0;
    for (unsigned attempts : {1u, 2u, 40u, 1000u, 1100u, 4000000000u}) {
        const double delay =
            failoverBackoffDelay(1e-9, attempts, 45.0);
        EXPECT_TRUE(std::isfinite(delay));
        EXPECT_GE(delay, last);
        last = delay;
    }
    EXPECT_THROW(failoverBackoffDelay(0.0, 1, 60.0), ConfigError);
    EXPECT_THROW(failoverBackoffDelay(1.0, 0, 60.0), ConfigError);
    EXPECT_THROW(failoverBackoffDelay(1.0, 1, 0.5), ConfigError);
}

TEST(FarmFailover, AlwaysDownFarmDrainsInBoundedRetries)
{
    // Pathological availability: every server crashes at t = 0 and
    // never recovers, with a sub-nanosecond initial backoff. Before
    // the saturating fix the exponent clamp pinned every retry delay
    // at backoff * 2^30 ~ 1 us of sim time, so draining the queue took
    // ~10^8 retries per job — an effective hang. With saturation the
    // delay doubles to the cap, every job exhausts its drop deadline
    // in a few dozen attempts, and conservation still closes.
    const UtilizationTrace trace("flat", std::vector<double>(10, 0.3));
    FarmRuntimeConfig config = faultRuntimeConfig(2, "farm-wide");
    config.faults = "scripted";
    config.faultScript = {{0.0, 0, true}, {0.0, 1, true}};
    config.retryBackoff = 1e-12;
    config.retryBackoffCap = 30.0;
    config.dropTimeout = 120.0;

    const FarmRuntimeResult result = runFaultScenario(config, trace);
    expectConservation(result);
    EXPECT_GT(result.faults.offered, 0u);
    EXPECT_EQ(result.faults.completed, 0u);
    EXPECT_EQ(result.faults.dropped, result.faults.offered);
    // Delays reach the 120 s deadline within ~47 doublings from 1e-12
    // (plus the capped tail), so the retry bill is a small per-job
    // constant — not the ~10^8 of the pre-fix spin.
    EXPECT_LE(result.faults.retries, result.faults.offered * 60);
}

TEST(FarmFailover, RecoveryDelayExtendsUnavailability)
{
    const UtilizationTrace trace("flat", std::vector<double>(30, 0.3));
    FarmRuntimeConfig config = faultRuntimeConfig(2, "farm-wide");
    config.faults = "scripted";
    config.faultScript = {{300.0, 0, true}, {400.0, 0, false}};
    config.recoverySeconds = 50.0;

    const FarmRuntimeResult result = runFaultScenario(config, trace);
    expectConservation(result);
    // 100 s outage plus the 50 s Recovering stage.
    EXPECT_NEAR(result.faults.downSeconds, 150.0, 1e-6);
    EXPECT_EQ(result.faults.dropped, 0u);
}

// --------------------------------------------------- degraded decisions

TEST(DegradedMode, StarvedServerFallsBackToSafePolicy)
{
    // Server 1 is down for four full epochs: its decision log starves,
    // and its autonomous controller must fall back to the safe fixed
    // policy instead of searching an empty log.
    const UtilizationTrace trace("flat", std::vector<double>(40, 0.3));
    FarmRuntimeConfig config = faultRuntimeConfig(2, "per-server");
    config.faults = "scripted";
    config.faultScript = {{310.0, 1, true}, {1500.0, 1, false}};

    const FarmRuntimeResult result = runFaultScenario(config, trace);
    expectConservation(result);
    EXPECT_GT(result.faults.degradedEpochs, 0u);
    EXPECT_GT(result.faults.degradedSeconds, 0.0);

    // The degraded epochs are on the crashed server, run the fallback
    // policy (default: full frequency), and are flagged in its stream.
    ASSERT_EQ(result.servers.size(), 2u);
    std::size_t degraded_epochs = 0;
    for (const EpochReport &epoch : result.servers[1].epochs) {
        if (!epoch.degraded)
            continue;
        ++degraded_epochs;
        EXPECT_FALSE(epoch.feasible);
        EXPECT_DOUBLE_EQ(epoch.policy.frequency,
                         config.degradedPolicy.frequency);
    }
    EXPECT_EQ(degraded_epochs, result.faults.degradedEpochs);
    for (const EpochReport &epoch : result.servers[0].epochs)
        EXPECT_FALSE(epoch.degraded); // The healthy server never does.
}

TEST(DegradedMode, FarmWideControllerDegradesWhenRepresentativeDies)
{
    // Farm-wide control decides from server 0's thinned log; crashing
    // server 0 across epochs starves the single controller, which must
    // degrade the whole farm rather than hold a stale search.
    const UtilizationTrace trace("flat", std::vector<double>(40, 0.3));
    FarmRuntimeConfig config = faultRuntimeConfig(2, "farm-wide");
    config.faults = "scripted";
    config.faultScript = {{310.0, 0, true}, {1500.0, 0, false}};

    const FarmRuntimeResult result = runFaultScenario(config, trace);
    expectConservation(result);
    EXPECT_GT(result.faults.degradedEpochs, 0u);
    // Farm-wide degradation covers every server in the epoch.
    EXPECT_EQ(result.faults.degradedEpochs % config.farmSize, 0u);
    bool saw_degraded = false;
    for (const EpochReport &epoch : result.epochs)
        saw_degraded = saw_degraded || epoch.degraded;
    EXPECT_TRUE(saw_degraded);
}

// ------------------------------------------------- no-fault equivalence

// The fault layer's cardinal rule: a "none"-fault configuration is
// byte-identical to the pre-fault runtime — same totals, same decision
// streams, same RNG consumption. These constants were produced by the
// runtime immediately before the fault layer landed; a change here is
// a behavioural regression of the fault-free path, not a re-pin.
struct TotalsPin
{
    const char *workload;
    const char *control;
    double energy;
    double meanResponse;
    double avgPower;
    std::uint64_t jobs;
};

constexpr TotalsPin totalsPins[] = {
    {"dns", "farm-wide", 0x1.49196fd8e6d27p+20, 0x1.eb74fdc2f439ap-2,
     0x1.766468493ff6dp+8, 16641},
    {"dns", "per-server", 0x1.4b99037de62b7p+20, 0x1.e12d8011e531fp-2,
     0x1.793c01c60cd18p+8, 16641},
    {"mail", "farm-wide", 0x1.8bd522d21b937p+20, 0x1.c479452b3dfdp-2,
     0x1.c259b4da34c69p+8, 35626},
    {"mail", "per-server", 0x1.7c88c4373db3ap+20, 0x1.c65214b271bbap-2,
     0x1.b0f1efdcdf795p+8, 35626},
    {"google", "farm-wide", 0x1.5201231721fb9p+20, 0x1.490185fa4c5dcp-7,
     0x1.80925f2353076p+8, 772151},
    {"google", "per-server", 0x1.5201231721fb9p+20,
     0x1.490185fa4c5dcp-7, 0x1.80925f2353076p+8, 772151},
};

ScenarioSpec
pinSpec(const std::string &workload, const std::string &control)
{
    return ScenarioBuilder(workload + "/" + control)
        .engine(EngineKind::Farm)
        .workload(workload)
        .flatTrace(0.3, 60)
        .farmSize(3)
        .farmControl(control)
        .epochMinutes(5)
        .seed(1)
        .build();
}

TEST(NoFaultPin, TotalsMatchTheFaultFreeRuntimeBitForBit)
{
    for (const TotalsPin &pin : totalsPins) {
        const ScenarioResult result =
            ExperimentRunner::runScenario(pinSpec(pin.workload,
                                                  pin.control));
        // EXPECT_EQ on doubles on purpose: the contract is bit-for-bit
        // equality, not closeness.
        EXPECT_EQ(result.energy, pin.energy)
            << pin.workload << "/" << pin.control;
        EXPECT_EQ(result.meanResponse, pin.meanResponse)
            << pin.workload << "/" << pin.control;
        EXPECT_EQ(result.avgPower, pin.avgPower)
            << pin.workload << "/" << pin.control;
        EXPECT_EQ(result.jobs, pin.jobs)
            << pin.workload << "/" << pin.control;
    }
}

void
fnvMix(std::uint64_t &hash, std::uint64_t value)
{
    hash ^= value;
    hash *= 1099511628211ull;
}

std::uint64_t
doubleBits(double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    return bits;
}

void
hashEpochStream(std::uint64_t &hash, const std::vector<EpochReport> &epochs)
{
    for (const EpochReport &epoch : epochs) {
        fnvMix(hash, doubleBits(epoch.policy.frequency));
        fnvMix(hash,
               static_cast<std::uint64_t>(epoch.policy.plan.deepest()));
        fnvMix(hash, static_cast<std::uint64_t>(epoch.policy.plan.size()));
        fnvMix(hash, (epoch.decided ? 1u : 0u) |
                         (epoch.feasible ? 2u : 0u) |
                         (epoch.boosted ? 4u : 0u));
    }
}

TEST(NoFaultPin, DecisionStreamsMatchTheFaultFreeRuntimeBitForBit)
{
    // Whole-run totals can mask compensating decision changes; this
    // pin hashes every epoch's (frequency, sleep plan, flags) across
    // both control modes and all three Table 5 workloads.
    const struct
    {
        const char *workload;
        const char *control;
        std::uint64_t hash;
    } decisionPins[] = {
        {"dns", "farm-wide", 16696251915500299262ull},
        {"dns", "per-server", 4471223357707459165ull},
        {"mail", "farm-wide", 5281247639333244743ull},
        {"mail", "per-server", 18245108240386715353ull},
        {"google", "farm-wide", 1303420475129017184ull},
        {"google", "per-server", 6077832704634492465ull},
    };

    for (const auto &pin : decisionPins) {
        const ScenarioSpec spec = pinSpec(pin.workload, pin.control);
        const WorkloadSpec workload = workloadByName(spec.workload);
        const PlatformModel platform = platformByName(spec.platform);
        FarmRuntimeConfig config;
        config.farmSize = spec.farmSize;
        config.dispatcher = spec.dispatcher;
        config.packingSpillBacklog = spec.packingSpillBacklog;
        config.dispatchSeed = mixSeed(spec.seed);
        config.control = spec.farmControl;
        config.platforms = spec.farmPlatforms;
        config.decisionThreads = spec.decisionThreads;
        StrategyKnobs knobs;
        knobs.epochMinutes = spec.epochMinutes;
        knobs.overProvision = spec.overProvision;
        knobs.rhoB = spec.rhoB;
        knobs.qosMetric = spec.qosMetric;
        knobs.searchThreads = spec.searchThreads;
        knobs.prunedSearch = spec.prunedSearch;
        config.perServer = strategyConfigByName(spec.strategy, knobs);

        const UtilizationTrace trace = spec.trace.realize();
        FarmRuntime runtime(platform, workload, config);
        const auto source =
            makeFarmSource(workload, trace, spec.farmSize, spec.seed);
        const auto predictor = makePredictor(
            spec.predictor, spec.predictorHistory, trace.values());
        const FarmRuntimeResult result =
            runtime.run(*source, trace, *predictor);

        std::uint64_t hash = 1469598103934665603ull;
        hashEpochStream(hash, result.epochs);
        for (const FarmServerReport &server : result.servers) {
            hashEpochStream(hash, server.epochs);
            fnvMix(hash, doubleBits(server.total.energy));
            fnvMix(hash, server.jobsRouted);
        }
        fnvMix(hash, doubleBits(result.total.energy));
        EXPECT_EQ(hash, pin.hash)
            << pin.workload << "/" << pin.control;

        // A fault-free run reports a clean availability plane.
        EXPECT_EQ(result.faults.dropped, 0u);
        EXPECT_EQ(result.faults.retries, 0u);
        EXPECT_EQ(result.faults.degradedEpochs, 0u);
        EXPECT_DOUBLE_EQ(result.faults.downSeconds, 0.0);
        EXPECT_DOUBLE_EQ(result.faults.availability(spec.farmSize), 1.0);
        EXPECT_DOUBLE_EQ(result.faults.goodput(), 1.0);
        expectConservation(result);
    }
}

// ------------------------------------------------- paired replication

TEST(FaultReplication, PairedComparisonQuantifiesOutageCost)
{
    // The acceptance experiment in miniature: N replications of a
    // correlated-outage farm against its no-fault twin under common
    // random numbers. correlatedGroup defaults to 2, so a 2-server
    // farm sees full-farm outages and must exercise the retry path.
    ScenarioSpec faulty = ScenarioBuilder("faults(correlated)")
                              .engine(EngineKind::Farm)
                              .workload("dns")
                              .flatTrace(0.3, 45)
                              .farmSize(2)
                              .epochMinutes(5)
                              .seed(7)
                              .faults("correlated")
                              .faultRates(900.0, 120.0)
                              .retryBackoff(0.5)
                              .dropTimeout(240.0)
                              .build();
    ScenarioSpec clean = faulty;
    clean.label = "no-fault";
    clean.faults = "none";

    const ReplicationPlan plan(5, 0);
    const PairedComparison comparison = plan.comparePaired(faulty, clean);

    EXPECT_LT(comparison.a.metric("availability").mean(), 1.0);
    EXPECT_GT(comparison.a.metric("availability").mean(), 0.5);
    EXPECT_GT(comparison.a.metric("retries").mean(), 0.0);
    EXPECT_GT(comparison.a.metric("down_s").mean(), 0.0);

    // The no-fault arm is pristine: full availability, no retries,
    // perfect goodput — in every replication, not just on average.
    EXPECT_DOUBLE_EQ(comparison.b.metric("availability").mean(), 1.0);
    EXPECT_DOUBLE_EQ(comparison.b.metric("retries").stddev(), 0.0);
    EXPECT_DOUBLE_EQ(comparison.b.metric("retries").mean(), 0.0);
    EXPECT_DOUBLE_EQ(comparison.b.metric("goodput").mean(), 1.0);

    // Paired deltas (faulty minus clean) carry the outage cost with
    // common random numbers cancelling the stream-to-stream noise.
    EXPECT_LT(comparison.delta("availability").mean(), 0.0);
    EXPECT_GT(comparison.delta("down_s").mean(), 0.0);
    ASSERT_EQ(comparison.a.replications.size(), 5u);
    ASSERT_EQ(comparison.b.replications.size(), 5u);
}

} // namespace
} // namespace sleepscale
