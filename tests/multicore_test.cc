/**
 * @file
 * Tests for the multi-core package model (paper Section 7 future work).
 *
 * The strongest check: with one core the package model must reduce
 * *exactly* to the validated single-server ServerSim — with the
 * package-sleep delay at infinity it equals the core's plan over
 * S0(i), and with delay zero it equals the C6S3 policy.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "multicore/multicore_sim.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"

namespace sleepscale {
namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

class Multicore : public ::testing::Test
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();

    std::vector<Job>
    poissonJobs(double rho, double service_mean, std::size_t n,
                std::uint64_t seed, double capacity = 1.0) const
    {
        Rng rng(seed);
        ExponentialDist gaps(service_mean / (rho * capacity));
        ExponentialDist sizes(service_mean);
        return generateJobs(rng, gaps, sizes, n);
    }
};

// ------------------------------------------- single-core equivalences

TEST_F(Multicore, OneCoreNoPackageSleepEqualsServerSim)
{
    const auto jobs = poissonJobs(0.3, 0.194, 30000, 1);

    MulticorePolicy mc;
    mc.frequency = 0.8;
    mc.corePlan = SleepPlan::immediate(LowPowerState::C6S0Idle);
    mc.packageSleepDelay = inf;
    const MulticoreStats multi = evaluateMulticorePolicy(
        xeon, ServiceScaling::cpuBound(), 1, mc, jobs);

    const PolicyEvaluation single = evaluatePolicy(
        xeon, ServiceScaling::cpuBound(),
        Policy{0.8, SleepPlan::immediate(LowPowerState::C6S0Idle)},
        jobs);

    EXPECT_NEAR(multi.energy, single.stats.energy, 1e-6);
    EXPECT_NEAR(multi.elapsed, single.stats.elapsed(), 1e-9);
    EXPECT_NEAR(multi.response.mean(), single.meanResponse(), 1e-12);
    EXPECT_EQ(multi.completions, single.stats.completions);
}

TEST_F(Multicore, OneCoreImmediatePackageSleepEqualsC6S3)
{
    const auto jobs = poissonJobs(0.1, 0.194, 30000, 2);

    MulticorePolicy mc;
    mc.frequency = 0.5;
    mc.corePlan = SleepPlan::immediate(LowPowerState::C6S0Idle);
    mc.packageSleepDelay = 0.0;
    const MulticoreStats multi = evaluateMulticorePolicy(
        xeon, ServiceScaling::cpuBound(), 1, mc, jobs);

    const PolicyEvaluation single = evaluatePolicy(
        xeon, ServiceScaling::cpuBound(),
        Policy{0.5, SleepPlan::immediate(LowPowerState::C6S3)}, jobs);

    EXPECT_NEAR(multi.energy / single.stats.energy, 1.0, 1e-9);
    EXPECT_NEAR(multi.response.mean(), single.meanResponse(), 1e-12);
}

// ----------------------------------------------- hand-built scenarios

TEST_F(Multicore, TwoCoresServeInParallel)
{
    MulticorePolicy mc;
    mc.corePlan = SleepPlan::immediate(LowPowerState::C0IdleS0Idle);
    mc.packageSleepDelay = inf;
    MulticoreSim sim(xeon, ServiceScaling::cpuBound(), 2, mc);

    // Two overlapping jobs: JSQ puts them on different cores, so both
    // finish without queueing.
    sim.offerJob({1.0, 2.0});
    sim.offerJob({1.5, 2.0});
    sim.advanceTo(sim.allFreeTime());
    EXPECT_DOUBLE_EQ(sim.allFreeTime(), 3.5);
    EXPECT_DOUBLE_EQ(sim.stats().response.mean(), 2.0);
}

TEST_F(Multicore, PackageEnergyAccountsJointIdleExactly)
{
    // One job on each core (C0(i) core plan: zero wake): core0 busy
    // [1,3], core1 busy [2,4]; package active while any core is busy
    // => [1,4].
    MulticorePolicy mc;
    mc.corePlan = SleepPlan::immediate(LowPowerState::C0IdleS0Idle);
    mc.packageSleepDelay = inf;
    MulticoreSim sim(xeon, ServiceScaling::cpuBound(), 2, mc);
    sim.offerJob({1.0, 2.0});
    sim.offerJob({2.0, 2.0});
    sim.advanceTo(5.0);

    // Core shares at f=1: active 65 W each (130/2), C0(i) 37.5 W each
    // (75/2). Platform: 120 W during [1,4], 60.5 W during [0,1)+(4,5].
    const double cores_energy = 65.0 * 2.0     // core0 busy [1,3]
                                + 65.0 * 2.0   // core1 busy [2,4]
                                + 37.5 * 3.0   // core0 idle [0,1)+(3,5]
                                + 37.5 * 3.0;  // core1 idle [0,2)+(4,5]
    const double package_energy = 120.0 * 3.0 + 60.5 * 2.0;
    EXPECT_NEAR(sim.stats().energy, cores_energy + package_energy,
                1e-9);
}

TEST_F(Multicore, PackageS3RequiresJointIdleness)
{
    // Package delay 2 s: S3 is entered 2 s after the *last* core goes
    // idle, not after the first. C6S0(i) cores pay a 1 ms wake, which
    // shifts the departures accordingly.
    MulticorePolicy mc;
    mc.corePlan = SleepPlan::immediate(LowPowerState::C6S0Idle);
    mc.packageSleepDelay = 2.0;
    MulticoreSim sim(xeon, ServiceScaling::cpuBound(), 2, mc);
    sim.offerJob({0.0, 1.0}); // core0 busy [0, 1.001]
    sim.offerJob({0.5, 3.0}); // core1 busy [0.5, 3.501]
    sim.advanceTo(10.0);

    // All-idle from 3.501; S3 from 5.501 to 10 = 4.499 s.
    EXPECT_NEAR(sim.stats().packageS3Time, 4.499, 1e-9);
    // S0(i): the 2 s between joint idleness and S3 entry.
    EXPECT_NEAR(sim.stats().packageIdleTime, 2.0, 1e-9);
}

TEST_F(Multicore, PackageWakePaysS3Latency)
{
    MulticorePolicy mc;
    mc.corePlan = SleepPlan::immediate(LowPowerState::C6S0Idle);
    mc.packageSleepDelay = 1.0;
    MulticoreSim sim(xeon, ServiceScaling::cpuBound(), 2, mc);

    // Arrival at t=5 finds the package deep in S3 (all-idle since 0).
    sim.offerJob({5.0, 1.0});
    sim.advanceTo(sim.allFreeTime());
    // Wake = max(core C6 wake 1 ms, package 1 s) = 1 s.
    EXPECT_DOUBLE_EQ(sim.allFreeTime(), 7.0);
    EXPECT_EQ(sim.stats().packageWakes, 1u);

    // A second arrival only 0.5 s after the package went idle again
    // (< 1 s delay) pays no package wake.
    sim.offerJob({7.5, 1.0});
    EXPECT_EQ(sim.stats().packageWakes, 1u);
}

TEST_F(Multicore, PackageWakeNotPaidBeforeDelayElapses)
{
    MulticorePolicy mc;
    mc.corePlan = SleepPlan::immediate(LowPowerState::C6S0Idle);
    mc.packageSleepDelay = 1.0;
    MulticoreSim sim(xeon, ServiceScaling::cpuBound(), 1, mc);
    sim.offerJob({0.5, 1.0}); // idle 0.5 s < 1 s: only core wake (1 ms)
    EXPECT_EQ(sim.stats().packageWakes, 0u);
    EXPECT_NEAR(sim.allFreeTime(), 1.501, 1e-9);
}

// --------------------------------------------------- model properties

TEST_F(Multicore, ConsolidationBeatsIndependentServersAtLowLoad)
{
    // 4 cores sharing one platform must beat 4 single-core servers
    // (each paying its own platform) at equal total load.
    const auto jobs = poissonJobs(0.1, 0.194, 40000, 3, 4.0);

    MulticorePolicy mc;
    mc.corePlan = SleepPlan::immediate(LowPowerState::C6S0Idle);
    mc.packageSleepDelay = 1.0;
    const MulticoreStats package = evaluateMulticorePolicy(
        xeon, ServiceScaling::cpuBound(), 4, mc, jobs);

    // Four separate servers under round-robin splitting.
    double separate_energy = 0.0;
    std::vector<std::vector<Job>> split(4);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        split[i % 4].push_back(jobs[i]);
    for (const auto &stream : split) {
        const PolicyEvaluation eval = evaluatePolicy(
            xeon, ServiceScaling::cpuBound(),
            Policy{1.0, SleepPlan::immediate(LowPowerState::C6S0Idle)},
            stream);
        separate_energy +=
            eval.stats.avgPower() * package.elapsed;
    }
    EXPECT_LT(package.energy, separate_energy * 0.5);
}

TEST_F(Multicore, MoreCoresLowerResponseAtFixedTotalLoad)
{
    const auto jobs = poissonJobs(0.6, 0.194, 60000, 5, 4.0);
    MulticorePolicy mc;
    mc.corePlan = SleepPlan::immediate(LowPowerState::C6S0Idle);
    mc.packageSleepDelay = inf;

    const MulticoreStats one = evaluateMulticorePolicy(
        xeon, ServiceScaling::cpuBound(), 4, mc, jobs);
    const MulticoreStats two = evaluateMulticorePolicy(
        xeon, ServiceScaling::cpuBound(), 8, mc, jobs);
    EXPECT_LT(two.response.mean(), one.response.mean());
}

TEST_F(Multicore, ValidationGuards)
{
    MulticorePolicy mc;
    EXPECT_THROW(MulticoreSim(xeon, ServiceScaling::cpuBound(), 0, mc),
                 ConfigError);

    MulticorePolicy c6s3_core;
    c6s3_core.corePlan = SleepPlan::delayed(LowPowerState::C6S3, 1.0);
    EXPECT_THROW(
        MulticoreSim(xeon, ServiceScaling::cpuBound(), 2, c6s3_core),
        ConfigError);

    MulticorePolicy bad_f;
    bad_f.frequency = 0.0;
    EXPECT_THROW(MulticoreSim(xeon, ServiceScaling::cpuBound(), 2,
                              bad_f),
                 ConfigError);

    MulticoreSim sim(xeon, ServiceScaling::cpuBound(), 2, mc);
    sim.advanceTo(4.0);
    EXPECT_THROW(sim.offerJob({3.0, 1.0}), ConfigError);
}

TEST_F(Multicore, PolicySwitchKeepsAccounting)
{
    MulticorePolicy mc;
    mc.corePlan = SleepPlan::immediate(LowPowerState::C6S0Idle);
    mc.packageSleepDelay = inf;
    MulticoreSim sim(xeon, ServiceScaling::cpuBound(), 2, mc);
    sim.offerJob({0.0, 1.0});

    MulticorePolicy slower = mc;
    slower.frequency = 0.5;
    sim.setPolicy(slower, 2.0);
    sim.offerJob({3.0, 1.0}); // f = 0.5: 1 ms wake + 2 s of service
    sim.advanceTo(sim.allFreeTime());
    EXPECT_NEAR(sim.allFreeTime(), 5.001, 1e-12);
    EXPECT_EQ(sim.stats().completions, 2u);
}

} // namespace
} // namespace sleepscale
