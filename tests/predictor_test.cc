/**
 * @file
 * Tests for the utilization predictors (paper Section 5.2.2, Algorithm 2).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/predictor.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace sleepscale {
namespace {

/** Total absolute one-step-ahead error of a predictor over a signal. */
double
cumulativeError(UtilizationPredictor &predictor,
                const std::vector<double> &signal, std::size_t warmup = 0)
{
    double total = 0.0;
    for (std::size_t t = 0; t < signal.size(); ++t) {
        const double forecast = predictor.predict(t);
        if (t >= warmup)
            total += std::abs(forecast - signal[t]);
        predictor.observe(t, signal[t]);
    }
    return total;
}

std::vector<double>
stepSignal(std::size_t len, std::size_t change, double before,
           double after)
{
    std::vector<double> signal(len, before);
    for (std::size_t t = change; t < len; ++t)
        signal[t] = after;
    return signal;
}

// --------------------------------------------------------- NaivePrevious

TEST(NaivePrevious, ForecastsLastObservation)
{
    NaivePreviousPredictor predictor(0.3);
    EXPECT_DOUBLE_EQ(predictor.predict(0), 0.3);
    predictor.observe(0, 0.7);
    EXPECT_DOUBLE_EQ(predictor.predict(1), 0.7);
    predictor.observe(1, 0.2);
    EXPECT_DOUBLE_EQ(predictor.predict(2), 0.2);
}

TEST(NaivePrevious, ClampsObservations)
{
    NaivePreviousPredictor predictor;
    predictor.observe(0, 1.7);
    EXPECT_DOUBLE_EQ(predictor.predict(1), 1.0);
    predictor.observe(1, -0.3);
    EXPECT_DOUBLE_EQ(predictor.predict(2), 0.0);
}

TEST(NaivePrevious, TracksStepInstantly)
{
    NaivePreviousPredictor predictor;
    const auto signal = stepSignal(20, 10, 0.1, 0.9);
    for (std::size_t t = 0; t < signal.size(); ++t)
        predictor.observe(t, signal[t]);
    EXPECT_DOUBLE_EQ(predictor.predict(20), 0.9);
}

// ------------------------------------------------------------------- LMS

TEST(Lms, ConvergesOnConstantSignal)
{
    LmsPredictor predictor(10);
    for (std::size_t t = 0; t < 300; ++t)
        predictor.observe(t, 0.4);
    EXPECT_NEAR(predictor.predict(300), 0.4, 0.01);
}

TEST(Lms, SmoothsNoiseBetterThanNaive)
{
    // White noise around a constant level: the averaging filter must
    // beat the naive predictor.
    Rng rng(42);
    std::vector<double> signal;
    for (int t = 0; t < 500; ++t)
        signal.push_back(std::clamp(0.5 + rng.normal(0.0, 0.1), 0.0,
                                    1.0));

    LmsPredictor lms(10);
    NaivePreviousPredictor naive;
    const double lms_err = cumulativeError(lms, signal, 50);
    const double naive_err = cumulativeError(naive, signal, 50);
    EXPECT_LT(lms_err, naive_err);
}

TEST(Lms, ForecastStaysInUnitInterval)
{
    LmsPredictor predictor(5);
    Rng rng(7);
    for (std::size_t t = 0; t < 200; ++t) {
        predictor.observe(t, rng.uniform());
        const double forecast = predictor.predict(t + 1);
        ASSERT_GE(forecast, 0.0);
        ASSERT_LE(forecast, 1.0);
    }
}

TEST(Lms, ValidationRejectsBadParameters)
{
    EXPECT_THROW(LmsPredictor(0), ConfigError);
    EXPECT_THROW(LmsPredictor(5, 0.5, 0.0), ConfigError);
    EXPECT_THROW(LmsPredictor(5, 0.5, 2.5), ConfigError);
}

// ------------------------------------------------------------- LMS+CUSUM

TEST(LmsCusum, DetectsAbruptChange)
{
    LmsCusumPredictor predictor(10);
    const auto signal = stepSignal(100, 50, 0.1, 0.9);
    for (std::size_t t = 0; t < signal.size(); ++t)
        predictor.observe(t, signal[t]);
    EXPECT_GE(predictor.changesDetected(), 1u);
}

TEST(LmsCusum, TapsCollapseOnChangeAndRegrow)
{
    LmsCusumPredictor predictor(10);
    // Stationary warm-up grows taps to the maximum.
    for (std::size_t t = 0; t < 50; ++t)
        predictor.observe(t, 0.2);
    EXPECT_EQ(predictor.taps(), 10u);

    // A large step collapses the window...
    predictor.observe(50, 0.95);
    EXPECT_EQ(predictor.taps(), 1u);

    // ...then stationarity regrows it.
    for (std::size_t t = 51; t < 80; ++t)
        predictor.observe(t, 0.95);
    EXPECT_EQ(predictor.taps(), 10u);
}

TEST(LmsCusum, TracksStepFasterThanPlainLms)
{
    // Cumulative error after the change point: the change detector must
    // recover faster than the fixed-window filter (the paper's rationale
    // for LC over LMS).
    const auto signal = stepSignal(120, 60, 0.15, 0.85);
    LmsCusumPredictor lc(10);
    LmsPredictor lms(10);
    double lc_err = 0.0, lms_err = 0.0;
    for (std::size_t t = 0; t < signal.size(); ++t) {
        if (t >= 60) {
            lc_err += std::abs(lc.predict(t) - signal[t]);
            lms_err += std::abs(lms.predict(t) - signal[t]);
        }
        lc.observe(t, signal[t]);
        lms.observe(t, signal[t]);
    }
    EXPECT_LT(lc_err, lms_err);
}

TEST(LmsCusum, StationaryNoiseDoesNotConstantlyReset)
{
    Rng rng(11);
    LmsCusumPredictor predictor(10);
    for (std::size_t t = 0; t < 500; ++t)
        predictor.observe(
            t, std::clamp(0.4 + rng.normal(0.0, 0.03), 0.0, 1.0));
    // A few resets are tolerable; constant resetting is not.
    EXPECT_LT(predictor.changesDetected(), 50u);
}

TEST(LmsCusum, ConvergesOnConstantSignal)
{
    LmsCusumPredictor predictor(10);
    for (std::size_t t = 0; t < 300; ++t)
        predictor.observe(t, 0.6);
    EXPECT_NEAR(predictor.predict(300), 0.6, 0.01);
}

// ---------------------------------------------------------------- Offline

TEST(Offline, ReturnsTrueTraceValues)
{
    OfflinePredictor predictor({0.1, 0.5, 0.9});
    EXPECT_DOUBLE_EQ(predictor.predict(0), 0.1);
    EXPECT_DOUBLE_EQ(predictor.predict(2), 0.9);
    predictor.observe(0, 0.42); // ignored
    EXPECT_DOUBLE_EQ(predictor.predict(1), 0.5);
}

TEST(Offline, OutOfTraceRejected)
{
    OfflinePredictor predictor({0.1});
    EXPECT_THROW(predictor.predict(1), ConfigError);
    EXPECT_THROW(OfflinePredictor({}), ConfigError);
}

// ---------------------------------------------------------------- factory

TEST(PredictorFactory, BuildsEveryKind)
{
    EXPECT_EQ(makePredictor("NP")->name(), "NP");
    EXPECT_EQ(makePredictor("LMS")->name(), "LMS");
    EXPECT_EQ(makePredictor("LC")->name(), "LC");
    EXPECT_EQ(makePredictor("Offline", 10, {0.5})->name(), "Offline");
}

TEST(PredictorFactory, RejectsUnknownAndMissingTrace)
{
    EXPECT_THROW(makePredictor("magic"), ConfigError);
    EXPECT_THROW(makePredictor("Offline"), ConfigError);
}

// ------------------------------------------- comparative sanity (paper)

TEST(PredictorComparison, OfflineBeatsEveryCausalPredictorOnSurges)
{
    // Spiky signal reminiscent of the email-store trace.
    Rng rng(3);
    std::vector<double> signal;
    for (int t = 0; t < 600; ++t) {
        double u = 0.3 + 0.1 * std::sin(t / 40.0);
        if (t % 97 < 5)
            u = 0.85;
        signal.push_back(std::clamp(u + rng.normal(0.0, 0.02), 0.0, 1.0));
    }

    OfflinePredictor offline(signal);
    LmsCusumPredictor lc(10);

    const double off_err = cumulativeError(offline, signal, 50);
    NaivePreviousPredictor naive;
    const double np_err = cumulativeError(naive, signal, 50);
    const double lc_err = cumulativeError(lc, signal, 50);

    EXPECT_LT(off_err, 1e-9);
    EXPECT_LT(off_err, np_err);
    EXPECT_LT(off_err, lc_err);
}

} // namespace
} // namespace sleepscale
