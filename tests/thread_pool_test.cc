/**
 * @file
 * Unit tests for ThreadPool — coverage, determinism-relevant edge
 * cases, exception discipline, and TSan-targeted stress.
 *
 * The basic coverage/reuse/exception tests moved here from util_test.cc
 * when the pool grew its machine-checked lock annotations; the suite
 * carries the ctest "concurrency" label, so the TSan CI job runs it
 * under -fsanitize=thread (the generation-handoff and error-recording
 * paths are exactly what that job exists to race-check).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.hh"
#include "util/mutex.hh"
#include "util/thread_pool.hh"

namespace sleepscale {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                    std::size_t{5}}) {
        ThreadPool pool(lanes);
        EXPECT_EQ(pool.size(), lanes);
        std::vector<std::atomic<int>> hits(257);
        pool.parallelFor(hits.size(),
                         [&](std::size_t i, std::size_t lane) {
                             ASSERT_LT(lane, pool.size());
                             ++hits[i];
                         });
        for (const auto &hit : hits)
            EXPECT_EQ(hit.load(), 1);
    }
}

TEST(ThreadPool, ReusableAcrossLoops)
{
    ThreadPool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(100, [&](std::size_t i, std::size_t) {
            sum += i;
        });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST(ThreadPool, ZeroCountRunsNothing)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [&](std::size_t, std::size_t) { FAIL(); });
    // Still usable after the no-op generation.
    std::atomic<int> ran{0};
    pool.parallelFor(3, [&](std::size_t, std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, SingleLaneIsAPlainSerialLoop)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    // Serial path: items run in index order on the calling thread, so
    // an order-sensitive (non-atomic) recording is valid here.
    std::vector<std::size_t> order;
    pool.parallelFor(16, [&](std::size_t i, std::size_t lane) {
        EXPECT_EQ(lane, 0u);
        order.push_back(i);
    });
    std::vector<std::size_t> expected(16);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, DefaultLaneCountUsesHardware)
{
    ThreadPool pool;
    EXPECT_EQ(pool.size(), ThreadPool::hardwareLanes());
    EXPECT_GE(ThreadPool::hardwareLanes(), 1u);
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> executed{0};
    EXPECT_THROW(
        pool.parallelFor(64,
                         [&](std::size_t i, std::size_t) {
                             ++executed;
                             if (i == 10)
                                 fatal("boom");
                         }),
        ConfigError);
    // Remaining items still ran; the pool stays usable afterwards.
    EXPECT_EQ(executed.load(), 64);
    std::atomic<int> after{0};
    pool.parallelFor(8, [&](std::size_t, std::size_t) { ++after; });
    EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, MultipleThrowingItemsRecordOneAndRunAll)
{
    // Many items throw: exactly one exception surfaces (the first one
    // *recorded* — with >1 lanes the winner is scheduling-dependent,
    // which is fine because decisions never depend on it), every item
    // still executes, and the pool survives repeated failing rounds.
    ThreadPool pool(4);
    for (int round = 0; round < 5; ++round) {
        std::atomic<int> executed{0};
        std::atomic<int> thrown{0};
        try {
            pool.parallelFor(97, [&](std::size_t i, std::size_t) {
                ++executed;
                if (i % 3 == 0) {
                    ++thrown;
                    throw std::runtime_error(
                        "item " + std::to_string(i));
                }
            });
            FAIL() << "parallelFor swallowed the exceptions";
        } catch (const std::runtime_error &error) {
            EXPECT_EQ(std::string(error.what()).rfind("item ", 0), 0u);
        }
        EXPECT_EQ(executed.load(), 97);
        EXPECT_EQ(thrown.load(), 33);
    }
    std::atomic<int> after{0};
    pool.parallelFor(8, [&](std::size_t, std::size_t) { ++after; });
    EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, SerialExceptionIsDeterministicallyTheFirst)
{
    // With one lane the "first recorded" error is the lowest-index one.
    ThreadPool pool(1);
    int executed = 0;
    try {
        pool.parallelFor(32, [&](std::size_t i, std::size_t) {
            ++executed;
            if (i == 7 || i == 21)
                throw std::runtime_error("item " + std::to_string(i));
        });
        FAIL() << "parallelFor swallowed the exceptions";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "item 7");
    }
    EXPECT_EQ(executed, 32);
}

TEST(ThreadPool, BackToBackGenerationsStress)
{
    // TSan target: hammer the generation handoff (publish batch, wake
    // workers, drain, join) with tiny batches so workers constantly
    // race the caller through _mutex. Any missing synchronization in
    // the handoff shows up here under -fsanitize=thread.
    ThreadPool pool(4);
    std::size_t plain_sum = 0; // Written only between generations.
    for (int generation = 0; generation < 500; ++generation) {
        std::atomic<std::size_t> sum{0};
        const std::size_t count = 1 + generation % 7;
        pool.parallelFor(count, [&](std::size_t i, std::size_t) {
            sum += i + 1;
        });
        // The caller may touch non-atomic state between generations:
        // parallelFor joining every lane is the happens-before edge.
        plain_sum += sum.load();
    }
    EXPECT_GT(plain_sum, 0u);
}

TEST(ThreadPool, PoolsComposeWithoutSharingState)
{
    // Nested distinct pools (outer scenario sweep, inner candidate
    // search) must not interfere — each pool's batch state is its own.
    ThreadPool outer(3);
    std::atomic<std::size_t> total{0};
    outer.parallelFor(6, [&](std::size_t, std::size_t) {
        ThreadPool inner(2);
        inner.parallelFor(50, [&](std::size_t i, std::size_t) {
            total += i;
        });
    });
    EXPECT_EQ(total.load(), 6u * 1225u);
}

TEST(Mutex, GuardsPlainState)
{
    // The annotated wrapper must behave exactly like std::mutex under
    // contention; this doubles as a TSan check that MutexLock really
    // establishes mutual exclusion.
    Mutex mutex;
    std::size_t counter = 0;
    ThreadPool pool(4);
    pool.parallelFor(1000, [&](std::size_t, std::size_t) {
        const MutexLock lock(mutex);
        ++counter;
    });
    EXPECT_EQ(counter, 1000u);
}

TEST(Mutex, ConditionVariableWaitsOnMutex)
{
    // The analysis-friendly wait idiom from util/mutex.hh: a worker
    // signals readiness through guarded state and a ConditionVariable
    // waiting directly on the Mutex.
    Mutex mutex;
    ConditionVariable ready;
    int stage = 0;
    ThreadPool pool(2);
    pool.parallelFor(2, [&](std::size_t i, std::size_t) {
        MutexLock lock(mutex);
        if (i == 0) {
            stage = 1;
            ready.notify_all();
        } else {
            while (stage == 0)
                ready.wait(mutex);
            stage = 2;
        }
    });
    const MutexLock lock(mutex);
    EXPECT_EQ(stage, 2);
}

} // namespace
} // namespace sleepscale
