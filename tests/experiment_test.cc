/**
 * @file
 * Tests for the unified experiment layer: component registries,
 * scenario building and validation, sweep-grid expansion, and the
 * determinism of the parallel runner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "core/predictor.hh"
#include "core/strategies.hh"
#include "experiment/replication.hh"
#include "experiment/runner.hh"
#include "farm/dispatcher.hh"
#include "farm/farm_runtime.hh"
#include "power/platform_model.hh"
#include "util/error.hh"
#include "util/registry.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {
namespace {

// ------------------------------------------------------------ registry

TEST(Registry, UnknownNameThrowsListingRegistered)
{
    try {
        predictorRegistry().get("nope");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("unknown predictor 'nope'"),
                  std::string::npos)
            << what;
        // The message lists the registered alternatives.
        EXPECT_NE(what.find("LC"), std::string::npos) << what;
        EXPECT_NE(what.find("Offline"), std::string::npos) << what;
    }
}

TEST(Registry, DuplicateRegistrationThrows)
{
    Registry<int (*)()> registry("gadget");
    registry.add("one", +[] { return 1; });
    EXPECT_THROW(registry.add("one", +[] { return 2; }), ConfigError);
    EXPECT_EQ(registry.get("one")(), 1);
}

TEST(Registry, BuiltInsAreRegistered)
{
    for (const char *name : {"NP", "LMS", "LC", "Offline"})
        EXPECT_TRUE(predictorRegistry().contains(name)) << name;
    for (const char *name :
         {"SS", "SS(C3)", "DVFS", "R2H(C3)", "R2H(C6)"})
        EXPECT_TRUE(strategyRegistry().contains(name)) << name;
    for (const char *name : {"random", "round-robin", "JSQ", "packing"})
        EXPECT_TRUE(dispatcherRegistry().contains(name)) << name;
    for (const char *name : {"dns", "mail", "google"})
        EXPECT_TRUE(workloadRegistry().contains(name)) << name;
    for (const char *name : {"xeon", "atom"})
        EXPECT_TRUE(platformRegistry().contains(name)) << name;
}

TEST(Registry, NamesAreSorted)
{
    const auto names = dispatcherRegistry().names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_EQ(names.size(), 4u);
}

TEST(Registry, FarmRuntimeRejectsUnknownDispatcherAtConstruction)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    FarmRuntimeConfig config;
    config.dispatcher = "pakcing"; // typo
    try {
        const FarmRuntime runtime(xeon, dns, config);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("pakcing"), std::string::npos) << what;
        EXPECT_NE(what.find("packing"), std::string::npos) << what;
    }
}

// ------------------------------------------------- builder / validation

TEST(ScenarioBuilder, BuildsValidatedSpec)
{
    const ScenarioSpec spec = ScenarioBuilder("s")
                                  .workload("mail")
                                  .platform("atom")
                                  .flatTrace(0.25, 45)
                                  .strategy("DVFS")
                                  .epochMinutes(3)
                                  .predictor("NP")
                                  .seed(7)
                                  .build();
    EXPECT_EQ(spec.workload, "mail");
    EXPECT_EQ(spec.platform, "atom");
    EXPECT_EQ(spec.trace.kind, "flat");
    EXPECT_EQ(spec.strategy, "DVFS");
    EXPECT_EQ(spec.epochMinutes, 3u);
    EXPECT_EQ(spec.seed, 7u);

    const UtilizationTrace trace = spec.trace.realize();
    EXPECT_EQ(trace.size(), 45u);
    EXPECT_DOUBLE_EQ(trace.at(0), 0.25);
}

TEST(ScenarioBuilder, RejectsUnknownComponentNames)
{
    EXPECT_THROW(ScenarioBuilder("s").workload("smtp").build(),
                 ConfigError);
    EXPECT_THROW(ScenarioBuilder("s").strategy("YOLO").build(),
                 ConfigError);
    EXPECT_THROW(ScenarioBuilder("s").predictor("ARIMA").build(),
                 ConfigError);
    EXPECT_THROW(ScenarioBuilder("s")
                     .engine(EngineKind::Farm)
                     .dispatcher("least-loaded")
                     .build(),
                 ConfigError);
    EXPECT_THROW(ScenarioBuilder("s").platform("epyc").build(),
                 ConfigError);
    EXPECT_THROW(ScenarioBuilder("s").source("psychic").build(),
                 ConfigError);
    // Replay needs a path; the builder shortcut sets both fields.
    EXPECT_THROW(ScenarioBuilder("s").source("replay").build(),
                 ConfigError);
}

TEST(ScenarioBuilder, JobSourceKnobsRoundTrip)
{
    const ScenarioSpec spec = ScenarioBuilder("s")
                                  .flatTrace(0.2, 30)
                                  .source("bursty")
                                  .sourceUtilization(0.15)
                                  .burstiness(6.0, 90.0, 900.0)
                                  .build();
    EXPECT_EQ(spec.source, "bursty");
    EXPECT_DOUBLE_EQ(spec.sourceUtilization, 0.15);
    EXPECT_DOUBLE_EQ(spec.burstRateFactor, 6.0);
    EXPECT_DOUBLE_EQ(spec.burstMeanLength, 90.0);
    EXPECT_DOUBLE_EQ(spec.burstMeanGap, 900.0);
}

TEST(ScenarioBuilder, FarmControlAndPlatformMixValidation)
{
    // farmPlatforms pins the farm size to the list length.
    const ScenarioSpec spec =
        ScenarioBuilder("het")
            .engine(EngineKind::Farm)
            .flatTrace(0.2, 20)
            .farmControl("per-server")
            .farmPlatforms({"xeon", "xeon", "atom", "atom"})
            .decisionThreads(2)
            .build();
    EXPECT_EQ(spec.farmSize, 4u);
    EXPECT_EQ(spec.farmControl, "per-server");
    EXPECT_EQ(spec.decisionThreads, 2u);

    EXPECT_THROW(ScenarioBuilder("s")
                     .engine(EngineKind::Farm)
                     .farmControl("per-rack")
                     .build(),
                 ConfigError);
    EXPECT_THROW(ScenarioBuilder("s")
                     .engine(EngineKind::Farm)
                     .farmSize(3)
                     .farmPlatforms({"xeon", "atom", "xeon"})
                     .farmSize(2) // Length no longer matches.
                     .build(),
                 ConfigError);
    EXPECT_THROW(ScenarioBuilder("s")
                     .engine(EngineKind::Farm)
                     .farmPlatforms({"xeon", "epyc"})
                     .farmControl("per-server")
                     .build(),
                 ConfigError);
    // A heterogeneous mix requires autonomous per-server control.
    EXPECT_THROW(ScenarioBuilder("s")
                     .engine(EngineKind::Farm)
                     .farmPlatforms({"xeon", "atom"})
                     .farmControl("farm-wide")
                     .build(),
                 ConfigError);
}

TEST(ExperimentRunner, HeterogeneousFarmScenarioReportsPerServer)
{
    const ScenarioSpec spec =
        ScenarioBuilder("big.LITTLE")
            .engine(EngineKind::Farm)
            .workload("dns")
            .flatTrace(0.25, 20)
            .farmControl("per-server")
            .farmPlatforms({"xeon", "atom"})
            .dispatcher("random")
            .epochMinutes(5)
            .predictor("NP")
            .seed(33)
            .build();
    const ScenarioResult result = ExperimentRunner::runScenario(spec);

    ASSERT_EQ(result.servers.size(), 2u);
    EXPECT_EQ(result.servers[0].platform, platformByName("xeon").name());
    EXPECT_EQ(result.servers[1].platform, platformByName("atom").name());
    EXPECT_EQ(result.servers[0].jobs + result.servers[1].jobs,
              result.jobs);
    EXPECT_NEAR(result.servers[0].avgPower + result.servers[1].avgPower,
                result.avgPower, 1e-6 * std::max(1.0, result.avgPower));
    // The per-server breakdown renders as a table, one row per server.
    std::ostringstream out;
    serversTable(result).print(out);
    EXPECT_NE(out.str().find("Atom"), std::string::npos);

    // Non-farm engines carry no per-server rows.
    const ScenarioResult single = ExperimentRunner::runScenario(
        ScenarioBuilder("single")
            .workload("dns")
            .flatTrace(0.2, 10)
            .predictor("NP")
            .build());
    EXPECT_TRUE(single.servers.empty());
    EXPECT_THROW(serversTable(single), ConfigError);
}

TEST(ExpandGrid, FarmControlAxisExpands)
{
    const ScenarioSpec base = ScenarioBuilder("farm")
                                  .engine(EngineKind::Farm)
                                  .flatTrace(0.2, 20)
                                  .build();
    const auto grid = expandGrid(
        base, {sweepFarmControls({"farm-wide", "per-server"})});
    ASSERT_EQ(grid.size(), 2u);
    EXPECT_EQ(grid[0].farmControl, "farm-wide");
    EXPECT_EQ(grid[1].farmControl, "per-server");
    EXPECT_NE(grid[1].label.find("control=per-server"),
              std::string::npos);
}

TEST(ExperimentRunner, BurstySourceScenarioSmoke)
{
    const ScenarioSpec spec = ScenarioBuilder("bursty smoke")
                                  .workload("dns")
                                  .flatTrace(0.2, 20)
                                  .source("bursty")
                                  .sourceUtilization(0.1)
                                  .burstiness(5.0, 60.0, 300.0)
                                  .epochMinutes(5)
                                  .predictor("NP")
                                  .seed(19)
                                  .build();
    const ScenarioResult result = ExperimentRunner::runScenario(spec);
    EXPECT_GT(result.jobs, 100u);
    EXPECT_GT(result.avgPower, 0.0);
}

TEST(ScenarioBuilder, RejectsOutOfRangeKnobs)
{
    EXPECT_THROW(ScenarioBuilder("s").epochMinutes(0).build(),
                 ConfigError);
    EXPECT_THROW(ScenarioBuilder("s").rhoB(1.5).build(), ConfigError);
    EXPECT_THROW(ScenarioBuilder("s")
                     .engine(EngineKind::Multicore)
                     .rho(1.2)
                     .build(),
                 ConfigError);
    EXPECT_THROW(ScenarioBuilder("s")
                     .engine(EngineKind::Multicore)
                     .cores(0)
                     .build(),
                 ConfigError);
    EXPECT_THROW(ScenarioBuilder("s")
                     .engine(EngineKind::Farm)
                     .farmSize(0)
                     .build(),
                 ConfigError);
}

// --------------------------------------------------------- sweep grids

ScenarioSpec
flatBase()
{
    return ScenarioBuilder("base")
        .workload("dns")
        .flatTrace(0.15, 30)
        .epochMinutes(5)
        .overProvision(0.0)
        .predictor("NP")
        .seed(11)
        .build();
}

TEST(ExpandGrid, CrossProductCountsAndLabels)
{
    const auto grid =
        expandGrid(flatBase(),
                   {sweepEpochMinutes({1, 5, 10, 15}),
                    sweepPredictors({"LC", "LMS", "NP"})});
    ASSERT_EQ(grid.size(), 12u);

    std::set<std::string> labels;
    for (const ScenarioSpec &spec : grid)
        labels.insert(spec.label);
    EXPECT_EQ(labels.size(), 12u); // every label unique

    // First axis outermost, second innermost.
    EXPECT_EQ(grid[0].epochMinutes, 1u);
    EXPECT_EQ(grid[0].predictor, "LC");
    EXPECT_EQ(grid[1].predictor, "LMS");
    EXPECT_EQ(grid[3].epochMinutes, 5u);
    EXPECT_EQ(grid.back().epochMinutes, 15u);
    EXPECT_EQ(grid.back().predictor, "NP");
    EXPECT_EQ(grid[0].label, "base T=1 predictor=LC");
}

TEST(ExpandGrid, SharedSeedByDefaultDistinctWhenReseeding)
{
    const auto shared =
        expandGrid(flatBase(), {sweepEpochMinutes({1, 5, 10})});
    for (const ScenarioSpec &spec : shared)
        EXPECT_EQ(spec.seed, 11u);

    const auto reseeded = expandGrid(
        flatBase(), {sweepEpochMinutes({1, 5, 10})}, true);
    std::set<std::uint64_t> seeds;
    for (const ScenarioSpec &spec : reseeded)
        seeds.insert(spec.seed);
    EXPECT_EQ(seeds.size(), reseeded.size());
}

TEST(ExpandGrid, EmptyAxisThrows)
{
    EXPECT_THROW(expandGrid(flatBase(), {sweepPredictors({})}),
                 ConfigError);
}

// ------------------------------------------------------------- running

TEST(ExperimentRunner, MulticoreScenarioSmoke)
{
    const ScenarioSpec spec = ScenarioBuilder("mc")
                                  .engine(EngineKind::Multicore)
                                  .workload("dns")
                                  .idealizedWorkload()
                                  .cores(2)
                                  .rho(0.2)
                                  .jobCount(2000)
                                  .seed(3)
                                  .build();
    const ScenarioResult result =
        ExperimentRunner::runScenario(spec);
    EXPECT_EQ(result.jobs, 2000u);
    EXPECT_GT(result.meanResponse, 0.0);
    EXPECT_GT(result.avgPower, 0.0);
    EXPECT_GT(result.elapsed, 0.0);
    EXPECT_GE(result.extra("s3_residency"), 0.0);
    EXPECT_THROW(result.extra("no_such_metric"), ConfigError);
}

TEST(ExperimentRunner, ParallelRunBitMatchesSequential)
{
    // A mixed 2x2 grid (two strategies, two update intervals) over a
    // short flat trace: a sequential run and a 2-worker pooled run of
    // the same specs must agree bit for bit, because every random
    // stream is derived from the scenario's own seed.
    const std::vector<SweepAxis> axes = {
        sweepStrategies({"SS", "R2H(C6)"}),
        sweepEpochMinutes({5, 10}),
    };

    ExperimentRunner sequential(1);
    sequential.addGrid(flatBase(), axes);
    ExperimentRunner pooled(2);
    pooled.addGrid(flatBase(), axes);
    ASSERT_EQ(sequential.scenarios().size(), 4u);

    const auto a = sequential.run();
    const auto b = pooled.run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].spec.label, b[i].spec.label);
        EXPECT_EQ(a[i].meanResponse, b[i].meanResponse) << i;
        EXPECT_EQ(a[i].p95Response, b[i].p95Response) << i;
        EXPECT_EQ(a[i].avgPower, b[i].avgPower) << i;
        EXPECT_EQ(a[i].energy, b[i].energy) << i;
        EXPECT_EQ(a[i].elapsed, b[i].elapsed) << i;
        EXPECT_EQ(a[i].jobs, b[i].jobs) << i;
        EXPECT_EQ(a[i].withinBudget, b[i].withinBudget) << i;
    }

    // And the comparison is meaningful: the strategies diverge.
    EXPECT_NE(a[0].avgPower, a[2].avgPower);
}

TEST(ExperimentRunner, ResultsExportUniformSchema)
{
    ExperimentRunner runner(2);
    runner.add(ScenarioBuilder("single one")
                   .workload("dns")
                   .flatTrace(0.15, 20)
                   .strategy("R2H(C6)")
                   .predictor("NP")
                   .seed(5)
                   .build());
    runner.add(ScenarioBuilder("mc one")
                   .engine(EngineKind::Multicore)
                   .workload("dns")
                   .idealizedWorkload()
                   .cores(2)
                   .rho(0.2)
                   .jobCount(1000)
                   .seed(5)
                   .build());
    const auto results = runner.run();

    const std::string csv = resultsToCsvString(results);
    const std::size_t rows =
        std::count(csv.begin(), csv.end(), '\n');
    EXPECT_EQ(rows, results.size() + 1); // header + one line per row
    // Engine-specific extras become union columns.
    EXPECT_NE(csv.find("epochs"), std::string::npos);
    EXPECT_NE(csv.find("s3_residency"), std::string::npos);
    EXPECT_NE(csv.find("\"single one\"") != std::string::npos ||
                      csv.find("single one") != std::string::npos,
              false);
}

TEST(ExperimentRunner, ReplicatedRunSmoke)
{
    // Lifetime/threading smoke of the replication layer (the full
    // statistical suite lives in statistics_test.cc, label "slow"):
    // a pooled replicated run over a small grid must produce one
    // summary per scenario with per-replication samples and CIs.
    ScenarioSpec base = flatBase();
    base.replications = 3;
    ExperimentRunner runner(2);
    runner.addGrid(base, {sweepPredictors({"NP", "LC"})});

    const std::vector<ReplicatedResult> results =
        runner.runReplicated();
    ASSERT_EQ(results.size(), 2u);
    for (const ReplicatedResult &result : results) {
        ASSERT_EQ(result.replications.size(), 3u);
        EXPECT_EQ(result.metric("avg_power_w").count(), 3u);
        EXPECT_GT(result.metric("avg_power_w").mean(), 0.0);
        EXPECT_GE(result.metric("avg_power_w").ciHalfWidth(), 0.0);
    }
    // Paired comparison under common random numbers, pooled.
    const PairedComparison comparison =
        ReplicationPlan(3, 2).comparePaired(runner.scenarios()[0],
                                            runner.scenarios()[1]);
    EXPECT_EQ(comparison.delta("energy_j").count(), 3u);
}

TEST(ExperimentRunner, CaptureEpochsProducesPerEpochTable)
{
    const ScenarioSpec spec = ScenarioBuilder("epochs")
                                  .workload("dns")
                                  .flatTrace(0.15, 20)
                                  .strategy("R2H(C6)")
                                  .predictor("NP")
                                  .epochMinutes(5)
                                  .seed(5)
                                  .captureEpochs()
                                  .build();
    const ScenarioResult result =
        ExperimentRunner::runScenario(spec);
    EXPECT_EQ(result.epochs.rows.size(), result.extra("epochs"));
    EXPECT_NO_THROW(result.epochs.column("avg_power_w"));
}

} // namespace
} // namespace sleepscale
