/**
 * @file
 * Unit tests for the foundation utilities.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "util/csv.hh"
#include "util/error.hh"
#include "util/online_stats.hh"
#include "util/quantile_histogram.hh"
#include "util/rng.hh"
#include "util/sample_stats.hh"
#include "util/table_printer.hh"

namespace sleepscale {
namespace {

// ---------------------------------------------------------------- errors

TEST(Error, FatalThrowsConfigError)
{
    EXPECT_THROW(fatal("bad input"), ConfigError);
}

TEST(Error, PanicThrowsInternalError)
{
    EXPECT_THROW(panic("broken invariant"), InternalError);
}

TEST(Error, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "fine"));
    EXPECT_THROW(fatalIf(true, "bad"), ConfigError);
}

TEST(Error, MessagesAreForwarded)
{
    try {
        fatal("specific cause");
        FAIL() << "fatal() must throw";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("specific cause"),
                  std::string::npos);
    }
}

// ------------------------------------------------------------------- Rng

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(2.5, 3.5);
        ASSERT_GE(u, 2.5);
        ASSERT_LT(u, 3.5);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    OnlineStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.uniform());
    EXPECT_NEAR(stats.mean(), 0.5, 0.005);
}

TEST(Rng, ExponentialMatchesMeanAndCv)
{
    Rng rng(13);
    OnlineStats stats;
    for (int i = 0; i < 400000; ++i)
        stats.add(rng.exponential(3.0));
    EXPECT_NEAR(stats.mean(), 3.0, 0.05);
    EXPECT_NEAR(stats.cv(), 1.0, 0.02);
}

TEST(Rng, NormalMatchesMoments)
{
    Rng rng(17);
    OnlineStats stats;
    for (int i = 0; i < 400000; ++i)
        stats.add(rng.normal(5.0, 2.0));
    EXPECT_NEAR(stats.mean(), 5.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.02);
}

TEST(Rng, UniformIntCoversRangeUniformly)
{
    Rng rng(19);
    std::array<int, 7> counts{};
    for (int i = 0; i < 70000; ++i)
        ++counts[rng.uniformInt(7)];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 400);
}

TEST(Rng, ForkedStreamsAreDecorrelated)
{
    Rng parent(23);
    Rng a = parent.fork(0);
    Rng b = parent.fork(1);
    OnlineStats diff;
    for (int i = 0; i < 10000; ++i)
        diff.add(a.uniform() - b.uniform());
    EXPECT_NEAR(diff.mean(), 0.0, 0.02);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, InvalidArgumentsThrow)
{
    Rng rng(1);
    EXPECT_THROW(rng.exponential(0.0), ConfigError);
    EXPECT_THROW(rng.exponential(-1.0), ConfigError);
    EXPECT_THROW(rng.uniformInt(0), ConfigError);
    EXPECT_THROW(rng.uniform(2.0, 1.0), ConfigError);
    EXPECT_THROW(rng.normal(0.0, -1.0), ConfigError);
}

// ----------------------------------------------------------- OnlineStats

TEST(OnlineStats, KnownSmallSample)
{
    OnlineStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsSafe)
{
    OnlineStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.cv(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential)
{
    Rng rng(29);
    OnlineStats whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.exponential(2.0);
        whole.add(x);
        (i < 400 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptySides)
{
    OnlineStats empty, filled;
    filled.add(1.0);
    filled.add(3.0);

    OnlineStats a = filled;
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    OnlineStats b = empty;
    b.merge(filled);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
    EXPECT_EQ(b.count(), 2u);
}

TEST(OnlineStats, CvOfConstantIsZero)
{
    OnlineStats stats;
    for (int i = 0; i < 10; ++i)
        stats.add(4.2);
    EXPECT_NEAR(stats.cv(), 0.0, 1e-9);
}

// ----------------------------------------------------------- SampleStats

TEST(SampleStats, PercentileInterpolates)
{
    SampleStats stats;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        stats.add(x);
    EXPECT_DOUBLE_EQ(stats.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(stats.percentile(50.0), 3.0);
    EXPECT_DOUBLE_EQ(stats.percentile(100.0), 5.0);
    EXPECT_DOUBLE_EQ(stats.percentile(25.0), 2.0);
    EXPECT_DOUBLE_EQ(stats.percentile(12.5), 1.5);
}

TEST(SampleStats, ExceedanceCountsInclusive)
{
    SampleStats stats;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        stats.add(x);
    EXPECT_DOUBLE_EQ(stats.exceedance(2.5), 0.5);
    EXPECT_DOUBLE_EQ(stats.exceedance(1.0), 1.0);
    EXPECT_DOUBLE_EQ(stats.exceedance(4.5), 0.0);
}

TEST(SampleStats, AddAfterPercentileStillCorrect)
{
    SampleStats stats;
    stats.add(3.0);
    stats.add(1.0);
    EXPECT_DOUBLE_EQ(stats.percentile(100.0), 3.0);
    stats.add(5.0);
    EXPECT_DOUBLE_EQ(stats.percentile(100.0), 5.0);
    EXPECT_DOUBLE_EQ(stats.percentile(50.0), 3.0);
}

TEST(SampleStats, InvalidPercentileThrows)
{
    SampleStats stats;
    stats.add(1.0);
    EXPECT_THROW(stats.percentile(-1.0), ConfigError);
    EXPECT_THROW(stats.percentile(101.0), ConfigError);
}

// ----------------------------------------------------- QuantileHistogram

TEST(QuantileHistogram, PercentileTracksExactWithinResolution)
{
    Rng rng(31);
    QuantileHistogram hist(1e-6, 1e4, 400);
    SampleStats exact;
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.exponential(0.2);
        hist.add(x);
        exact.add(x);
    }
    for (double p : {50.0, 90.0, 95.0, 99.0}) {
        const double approx = hist.percentile(p);
        const double truth = exact.percentile(p);
        EXPECT_NEAR(approx / truth, 1.0, 0.02)
            << "p=" << p;
    }
    EXPECT_NEAR(hist.mean(), exact.mean(), 1e-9);
}

TEST(QuantileHistogram, ExceedanceMatchesExact)
{
    Rng rng(37);
    QuantileHistogram hist;
    SampleStats exact;
    for (int i = 0; i < 50000; ++i) {
        const double x = rng.exponential(1.0);
        hist.add(x);
        exact.add(x);
    }
    EXPECT_NEAR(hist.exceedance(1.0), exact.exceedance(1.0), 0.01);
    EXPECT_NEAR(hist.exceedance(3.0), exact.exceedance(3.0), 0.01);
}

TEST(QuantileHistogram, UnderflowAndOverflowLand)
{
    QuantileHistogram hist(1e-3, 1e3, 100);
    hist.add(1e-9);
    hist.add(1e9);
    EXPECT_EQ(hist.count(), 2u);
    EXPECT_DOUBLE_EQ(hist.percentile(100.0), 1e9);
}

TEST(QuantileHistogram, MergeCombinesCounts)
{
    QuantileHistogram a, b;
    a.add(1.0);
    b.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_NEAR(a.mean(), 1.5, 1e-12);
}

TEST(QuantileHistogram, MergeRejectsMismatchedConfig)
{
    QuantileHistogram a(1e-6, 1e4, 400);
    QuantileHistogram b(1e-3, 1e4, 400);
    EXPECT_THROW(a.merge(b), ConfigError);
}

TEST(QuantileHistogram, RejectsNegativeSamples)
{
    QuantileHistogram hist;
    EXPECT_THROW(hist.add(-1.0), ConfigError);
}

TEST(QuantileHistogram, ResetForgets)
{
    QuantileHistogram hist;
    hist.add(1.0);
    hist.reset();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.percentile(50.0), 0.0);
}

// Boundary audit (SimStats uses floor 1e-7 / ceiling 1e5): samples
// beyond the grid, empty queries, and non-finite inputs must never
// silently misreport.

TEST(QuantileHistogram, RejectsNonFiniteSamples)
{
    QuantileHistogram hist;
    // NaN used to reach an undefined float-to-index cast; +inf would
    // poison the exact max every boundary answer leans on.
    EXPECT_THROW(hist.add(std::nan("")), ConfigError);
    EXPECT_THROW(hist.add(std::numeric_limits<double>::infinity()),
                 ConfigError);
    EXPECT_EQ(hist.count(), 0u);
}

TEST(QuantileHistogram, EmptyHistogramQueriesAreSafe)
{
    const QuantileHistogram hist(1e-7, 1e5, 400);
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(hist.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(hist.percentile(100.0), 0.0);
    EXPECT_DOUBLE_EQ(hist.exceedance(0.0), 0.0);
    EXPECT_DOUBLE_EQ(hist.exceedance(1e12), 0.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(QuantileHistogram, AllSamplesBelowFloor)
{
    QuantileHistogram hist(1e-7, 1e5, 400);
    hist.add(1e-9);
    hist.add(5e-9);
    hist.add(2e-8);
    // The percentile never exceeds the exact max even though every
    // sample sits in the underflow bucket (whose edge is the floor).
    EXPECT_DOUBLE_EQ(hist.percentile(50.0), 2e-8);
    EXPECT_DOUBLE_EQ(hist.percentile(100.0), 2e-8);
    EXPECT_DOUBLE_EQ(hist.percentile(0.0), 1e-9);
    // Exceedance is exact at and beyond the observed extremes.
    EXPECT_DOUBLE_EQ(hist.exceedance(1e-9), 1.0);
    EXPECT_DOUBLE_EQ(hist.exceedance(3e-8), 0.0);
}

TEST(QuantileHistogram, AllSamplesAboveCeiling)
{
    QuantileHistogram hist(1e-7, 1e5, 400);
    hist.add(2e5);
    hist.add(3e6);
    EXPECT_DOUBLE_EQ(hist.percentile(100.0), 3e6);
    EXPECT_DOUBLE_EQ(hist.percentile(0.0), 2e5);
    // A query between the overflow samples must not count the smaller
    // one as exceeding it just because both share the overflow bucket.
    EXPECT_DOUBLE_EQ(hist.exceedance(1e7), 0.0);
    EXPECT_DOUBLE_EQ(hist.exceedance(2e5), 1.0);
}

TEST(QuantileHistogram, PercentileZeroReturnsExactMin)
{
    QuantileHistogram hist(1e-7, 1e5, 400);
    hist.add(3.0);
    hist.add(7.0);
    // Used to report the underflow bucket's upper edge (the floor).
    EXPECT_DOUBLE_EQ(hist.percentile(0.0), 3.0);
    EXPECT_GE(hist.percentile(100.0), 7.0 * (1.0 - 1e-9));
    EXPECT_LE(hist.percentile(100.0), 7.0);
}

TEST(QuantileHistogram, ExactlyAtFloorAndCeilingEdges)
{
    QuantileHistogram hist(1e-3, 1e3, 100);
    hist.add(1e-3); // first grid bucket, not underflow
    hist.add(1e3);  // overflow by the ">= ceiling" convention
    EXPECT_EQ(hist.count(), 2u);
    EXPECT_DOUBLE_EQ(hist.percentile(100.0), 1e3);
    EXPECT_DOUBLE_EQ(hist.exceedance(1e3), 0.5);
}

// ------------------------------------------------------------------- CSV

TEST(Csv, RoundTripPreservesValues)
{
    CsvTable table;
    table.headers = {"a", "b"};
    table.addRow({1.5, -2.25});
    table.addRow({3.14159, 0.0});
    const CsvTable parsed = fromCsv(toCsv(table));
    ASSERT_EQ(parsed.headers, table.headers);
    ASSERT_EQ(parsed.rows.size(), 2u);
    EXPECT_DOUBLE_EQ(parsed.rows[0][0], 1.5);
    EXPECT_DOUBLE_EQ(parsed.rows[1][0], 3.14159);
}

TEST(Csv, ColumnExtraction)
{
    CsvTable table;
    table.headers = {"x", "y"};
    table.addRow({1.0, 10.0});
    table.addRow({2.0, 20.0});
    const auto y = table.column("y");
    ASSERT_EQ(y.size(), 2u);
    EXPECT_DOUBLE_EQ(y[1], 20.0);
    EXPECT_THROW(table.column("z"), ConfigError);
}

TEST(Csv, RowWidthValidated)
{
    CsvTable table;
    table.headers = {"a", "b"};
    EXPECT_THROW(table.addRow({1.0}), ConfigError);
}

TEST(Csv, NonNumericCellRejected)
{
    EXPECT_THROW(fromCsv("a,b\n1,zzz\n"), ConfigError);
}

TEST(Csv, FileRoundTrip)
{
    CsvTable table;
    table.headers = {"v"};
    table.addRow({42.0});
    const std::string path = "/tmp/sleepscale_csv_test.csv";
    writeCsvFile(path, table);
    const CsvTable loaded = readCsvFile(path);
    EXPECT_DOUBLE_EQ(loaded.rows.at(0).at(0), 42.0);
    std::remove(path.c_str());
}

// ---------------------------------------------------------- TablePrinter

TEST(TablePrinter, RejectsWrongRowWidth)
{
    TablePrinter printer({"name", "value"});
    printer.addRow({std::string("x"), std::string("1")});
    EXPECT_THROW(printer.addRow({1.23456}, 2), ConfigError);
}

TEST(TablePrinter, PrintsRows)
{
    TablePrinter printer({"col"});
    printer.addRow({3.14159}, 2);
    std::ostringstream out;
    printer.print(out);
    EXPECT_NE(out.str().find("3.14"), std::string::npos);
    EXPECT_NE(out.str().find("col"), std::string::npos);
}

} // namespace
} // namespace sleepscale
