/**
 * @file
 * Tests for the server-farm extension (dispatchers, ServerFarm,
 * FarmRuntime) — the paper's Section 7 scale-out direction.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "farm/dispatcher.hh"
#include "farm/farm_runtime.hh"
#include "farm/server_farm.hh"
#include "power/platform_model.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"

namespace sleepscale {
namespace {

// ------------------------------------------------------------ dispatchers

TEST(Dispatchers, RoundRobinCycles)
{
    RoundRobinDispatcher rr;
    const std::vector<ServerSnapshot> servers(3);
    EXPECT_EQ(rr.route({0.0, 1.0}, servers), 0u);
    EXPECT_EQ(rr.route({1.0, 1.0}, servers), 1u);
    EXPECT_EQ(rr.route({2.0, 1.0}, servers), 2u);
    EXPECT_EQ(rr.route({3.0, 1.0}, servers), 0u);
}

TEST(Dispatchers, RandomCoversAllServers)
{
    RandomDispatcher random(7);
    const std::vector<ServerSnapshot> servers(4);
    std::array<int, 4> counts{};
    for (int i = 0; i < 4000; ++i)
        ++counts[random.route({0.0, 1.0}, servers)];
    for (int count : counts)
        EXPECT_NEAR(count, 1000, 150);
}

TEST(Dispatchers, JsqPicksLeastBacklog)
{
    JsqDispatcher jsq;
    std::vector<ServerSnapshot> servers(3);
    servers[0].backlog = 2.0;
    servers[1].backlog = 0.5;
    servers[2].backlog = 1.0;
    EXPECT_EQ(jsq.route({0.0, 1.0}, servers), 1u);
}

TEST(Dispatchers, PackingPrefersBusyBelowSpill)
{
    PackingDispatcher packing(1.0);
    std::vector<ServerSnapshot> servers(3);
    servers[0].idle = true;
    servers[1].idle = false;
    servers[1].backlog = 0.4;
    servers[2].idle = true;
    // Busy server under the threshold keeps receiving work...
    EXPECT_EQ(packing.route({0.0, 1.0}, servers), 1u);
    // ...until it saturates, then an idle server is woken.
    servers[1].backlog = 1.5;
    EXPECT_EQ(packing.route({0.0, 1.0}, servers), 0u);
}

TEST(Dispatchers, PackingFallsBackToJsqWhenAllBusy)
{
    PackingDispatcher packing(0.5);
    std::vector<ServerSnapshot> servers(2);
    servers[0].idle = false;
    servers[0].backlog = 3.0;
    servers[1].idle = false;
    servers[1].backlog = 2.0;
    EXPECT_EQ(packing.route({0.0, 1.0}, servers), 1u);
}

// Tie-breaking is part of the dispatcher contract: the sharded
// event-driven core answers "least backlogged" and "first idle"
// queries from index structures instead of linear scans, so the rule
// those scans implied — exact ties go to the LOWEST server index —
// is pinned here explicitly. Any core that resolved ties by shard
// order, heap order, or arrival order would fail these.

TEST(Dispatchers, JsqTieBreaksToLowestIndex)
{
    JsqDispatcher jsq;
    std::vector<ServerSnapshot> servers(4);
    // All idle: every backlog is exactly 0.0.
    EXPECT_EQ(jsq.route({0.0, 1.0}, servers), 0u);
    // An exact busy tie (same committed seconds) also goes low.
    for (auto &server : servers) {
        server.idle = false;
        server.backlog = 1.5;
    }
    EXPECT_EQ(jsq.route({0.0, 1.0}, servers), 0u);
    // The tie group need not start at index 0.
    servers[0].backlog = 2.0;
    EXPECT_EQ(jsq.route({0.0, 1.0}, servers), 1u);
}

TEST(Dispatchers, PackingTieBreaksToLowestIndex)
{
    PackingDispatcher packing(1.0);
    std::vector<ServerSnapshot> servers(4);
    // Several idle servers: the first idle index wins the spill.
    servers[0].idle = false;
    servers[0].backlog = 2.0;
    EXPECT_EQ(packing.route({0.0, 1.0}, servers), 1u);
    // Exact busy tie below the spill threshold: lowest index.
    for (auto &server : servers) {
        server.idle = false;
        server.backlog = 0.25;
    }
    EXPECT_EQ(packing.route({0.0, 1.0}, servers), 0u);
    // Exact busy tie above the spill with no idle server: still the
    // least-backlogged scan's first minimum.
    for (auto &server : servers)
        server.backlog = 3.0;
    servers[0].backlog = 4.0;
    EXPECT_EQ(packing.route({0.0, 1.0}, servers), 1u);
}

TEST(Dispatchers, FactoryAndValidation)
{
    EXPECT_EQ(makeDispatcher("random")->name(), "random");
    EXPECT_EQ(makeDispatcher("round-robin")->name(), "round-robin");
    EXPECT_EQ(makeDispatcher("JSQ")->name(), "JSQ");
    EXPECT_EQ(makeDispatcher("packing")->name(), "packing");
    EXPECT_THROW(makeDispatcher("voodoo"), ConfigError);
    EXPECT_THROW(PackingDispatcher(0.0), ConfigError);
    RandomDispatcher random(1);
    EXPECT_THROW(random.route({0.0, 1.0}, {}), ConfigError);
}

// ------------------------------------------------------------- ServerFarm

class FarmTest : public ::testing::Test
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();
    Policy idlePolicy{1.0,
                      SleepPlan::immediate(LowPowerState::C6S0Idle)};

    ServerFarm
    makeFarm(std::size_t size, const std::string &dispatcher = "JSQ")
    {
        return ServerFarm(xeon, ServiceScaling::cpuBound(), idlePolicy,
                          size, makeDispatcher(dispatcher));
    }
};

TEST_F(FarmTest, JobsConservedAcrossServers)
{
    ServerFarm farm = makeFarm(4, "random");
    Rng rng(3);
    ExponentialDist gaps(0.05), sizes(0.194);
    const auto jobs = generateJobs(rng, gaps, sizes, 5000);
    for (const Job &job : jobs)
        farm.offerJob(job);
    farm.advanceTo(farm.nextFreeTime());
    const SimStats stats = farm.harvestWindow();

    EXPECT_EQ(stats.arrivals, jobs.size());
    EXPECT_EQ(stats.completions, jobs.size());
    const auto &routed = farm.jobsPerServer();
    EXPECT_EQ(std::accumulate(routed.begin(), routed.end(), 0ull),
              jobs.size());
}

TEST_F(FarmTest, JsqFarmTieBreaksToLowestIndex)
{
    // Farm-level pin of the dispatcher tie-break rule: a fresh farm is
    // an exact all-zero-backlog tie, and equal jobs keep producing
    // exact ties, so the routed sequence is fully determined.
    ServerFarm farm = makeFarm(3, "JSQ");
    EXPECT_EQ(farm.offerJob({0.0, 0.5}), 0u); // all idle -> lowest.
    EXPECT_EQ(farm.offerJob({0.0, 0.5}), 1u); // 1 and 2 tie at zero.
    EXPECT_EQ(farm.offerJob({0.0, 0.5}), 2u);
    // All three backlogs are now byte-identical: lowest index again.
    EXPECT_EQ(farm.offerJob({0.0, 0.5}), 0u);
    EXPECT_EQ(farm.offerJob({0.0, 0.5}), 1u);
}

TEST_F(FarmTest, EligibleTieBreaksToLowestEligibleIndex)
{
    // The failover path filters to eligible servers in index order
    // before routing; ties then go to the lowest *eligible* index,
    // independent of how the unavailable servers are laid out.
    ServerFarm farm = makeFarm(4, "JSQ");
    farm.failServer(0, 0.0);
    farm.failServer(2, 0.0);
    EXPECT_EQ(farm.tryOfferJob({1.0, 0.5}), 1u);
    EXPECT_EQ(farm.tryOfferJob({1.0, 0.5}), 3u);
    EXPECT_EQ(farm.tryOfferJob({1.0, 0.5}), 1u);
    farm.restoreServer(0, 2.0);
    EXPECT_EQ(farm.tryOfferJob({2.0, 0.5}), 0u);
}

TEST_F(FarmTest, FarmEnergyIsSumOfServers)
{
    ServerFarm farm = makeFarm(2, "round-robin");
    farm.offerJob({1.0, 0.5});
    farm.offerJob({1.5, 0.5});
    farm.advanceTo(10.0);
    const SimStats merged = farm.harvestWindow();

    // Reconstruct by hand: two identical servers, one job each.
    ServerSim lone(xeon, ServiceScaling::cpuBound(), idlePolicy);
    lone.offerJob({1.0, 0.5});
    lone.advanceTo(10.0);
    ServerSim lone2(xeon, ServiceScaling::cpuBound(), idlePolicy);
    lone2.offerJob({1.5, 0.5});
    lone2.advanceTo(10.0);
    const double expected = lone.harvestWindow().energy +
                            lone2.harvestWindow().energy;
    EXPECT_NEAR(merged.energy, expected, 1e-9);
    // Farm power is reported over the shared wall clock.
    EXPECT_NEAR(merged.avgPower(), expected / 10.0, 1e-9);
}

TEST_F(FarmTest, JsqBeatsRandomOnResponse)
{
    Rng rng(11);
    ExponentialDist gaps(0.194 / (0.6 * 4)), sizes(0.194);
    const auto jobs = generateJobs(rng, gaps, sizes, 40000);

    auto run = [&](const std::string &dispatcher) {
        ServerFarm farm = makeFarm(4, dispatcher);
        for (const Job &job : jobs)
            farm.offerJob(job);
        farm.advanceTo(farm.nextFreeTime());
        return farm.harvestWindow();
    };
    const SimStats jsq = run("JSQ");
    const SimStats random = run("random");
    EXPECT_LT(jsq.meanResponse(), random.meanResponse());
}

TEST_F(FarmTest, PackingConcentratesLoad)
{
    // At low load the packing dispatcher should leave some servers
    // nearly untouched while random spreads work everywhere.
    Rng rng(13);
    ExponentialDist gaps(0.194 / (0.1 * 4)), sizes(0.194);
    const auto jobs = generateJobs(rng, gaps, sizes, 20000);

    ServerFarm packed = makeFarm(4, "packing");
    for (const Job &job : jobs)
        packed.offerJob(job);
    const auto &routed = packed.jobsPerServer();
    const auto minmax =
        std::minmax_element(routed.begin(), routed.end());
    EXPECT_GT(*minmax.second, 4 * std::max<std::uint64_t>(
                                      1, *minmax.first));
}

TEST_F(FarmTest, PackingSavesIdlePowerAtLowLoad)
{
    Rng rng(17);
    ExponentialDist gaps(0.194 / (0.1 * 4)), sizes(0.194);
    const auto jobs = generateJobs(rng, gaps, sizes, 20000);

    auto power = [&](const std::string &dispatcher) {
        ServerFarm farm = makeFarm(4, dispatcher);
        for (const Job &job : jobs)
            farm.offerJob(job);
        farm.advanceTo(farm.nextFreeTime());
        return farm.harvestWindow().avgPower();
    };
    EXPECT_LT(power("packing"), power("random"));
}

TEST_F(FarmTest, PerServerPolicyControl)
{
    ServerFarm farm = makeFarm(2, "round-robin");
    const Policy fast{1.0,
                      SleepPlan::immediate(LowPowerState::C0IdleS0Idle)};
    const Policy slow{0.5,
                      SleepPlan::immediate(LowPowerState::C6S3)};
    farm.setPolicy(0, fast, 0.0);
    farm.setPolicy(1, slow, 0.0);
    EXPECT_DOUBLE_EQ(farm.policy(0).frequency, 1.0);
    EXPECT_DOUBLE_EQ(farm.policy(1).frequency, 0.5);
    EXPECT_THROW(farm.policy(5), ConfigError);
    EXPECT_THROW(farm.setPolicy(5, fast, 0.0), ConfigError);
}

TEST_F(FarmTest, ValidationGuards)
{
    EXPECT_THROW(makeFarm(0), ConfigError);
    EXPECT_THROW(ServerFarm(xeon, ServiceScaling::cpuBound(), idlePolicy,
                            2, nullptr),
                 ConfigError);
    ServerFarm farm = makeFarm(2);
    farm.offerJob({5.0, 0.1});
    EXPECT_THROW(farm.offerJob({4.0, 0.1}), ConfigError);
}

// ------------------------------------------------------------ FarmRuntime

TEST(FarmRuntime, ConservesJobsAndMeetsSanityBounds)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(30, 0.3));
    Rng rng(21);
    const auto jobs = generateFarmJobs(rng, dns, trace, 4);

    FarmRuntimeConfig config;
    config.farmSize = 4;
    config.dispatcher = "JSQ";
    config.perServer.epochMinutes = 5;
    const FarmRuntime runtime(xeon, dns, config);
    NaivePreviousPredictor predictor(0.3);
    const FarmRuntimeResult result = runtime.run(jobs, trace, predictor);

    EXPECT_EQ(result.total.completions, jobs.size());
    // Farm power must lie between 4 sleeping and 4 flat-out servers.
    EXPECT_GT(result.avgPower(),
              4.0 * xeon.lowPower(LowPowerState::C6S3, 1.0));
    EXPECT_LT(result.avgPower(), 4.0 * xeon.activePower(1.0));
    EXPECT_EQ(result.jobsPerServer.size(), 4u);
}

TEST(FarmRuntime, AggregateLoadMatchesTraceTimesSize)
{
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(20, 0.25));
    Rng rng(23);
    const auto jobs = generateFarmJobs(rng, dns, trace, 8);
    const double load = offeredLoad(jobs, trace.duration());
    EXPECT_NEAR(load, 0.25 * 8.0, 0.25);
}

TEST(FarmRuntime, FixedPolicyFarmRunsRaceToHalt)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(20, 0.2));
    Rng rng(29);
    const auto jobs = generateFarmJobs(rng, dns, trace, 2);

    FarmRuntimeConfig config;
    config.farmSize = 2;
    config.perServer.fixedPolicy =
        raceToHalt(LowPowerState::C6S0Idle);
    const FarmRuntime runtime(xeon, dns, config);
    NaivePreviousPredictor predictor(0.2);
    const FarmRuntimeResult result = runtime.run(jobs, trace, predictor);
    for (const EpochReport &epoch : result.epochs)
        EXPECT_DOUBLE_EQ(epoch.policy.frequency, 1.0);
}

TEST(FarmRuntime, SleepScaleFarmBeatsRaceToHaltFarm)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(60, 0.15));
    Rng rng(31);
    const auto jobs = generateFarmJobs(rng, dns, trace, 4);

    FarmRuntimeConfig ss;
    ss.farmSize = 4;
    ss.perServer.epochMinutes = 5;
    FarmRuntimeConfig r2h = ss;
    r2h.perServer.fixedPolicy = raceToHalt(LowPowerState::C6S0Idle);

    NaivePreviousPredictor p1(0.15), p2(0.15);
    const FarmRuntimeResult ss_result =
        FarmRuntime(xeon, dns, ss).run(jobs, trace, p1);
    const FarmRuntimeResult r2h_result =
        FarmRuntime(xeon, dns, r2h).run(jobs, trace, p2);
    EXPECT_LT(ss_result.avgPower(), r2h_result.avgPower());
}

TEST(FarmRuntime, ValidationGuards)
{
    const PlatformModel xeon = PlatformModel::xeon();
    FarmRuntimeConfig zero;
    zero.farmSize = 0;
    EXPECT_THROW(FarmRuntime(xeon, dnsWorkload(), zero), ConfigError);
    Rng rng(1);
    EXPECT_THROW(generateFarmJobs(rng, dnsWorkload(),
                                  UtilizationTrace("t", {0.1}), 0),
                 ConfigError);
    EXPECT_THROW(makeFarmSource(dnsWorkload(),
                                UtilizationTrace("t", {0.1}), 0, 1),
                 ConfigError);
}

TEST(FarmRuntime, MillionJobDayStreamsInBoundedMemory)
{
    // The acceptance bar for the streaming API: a seven-figure job
    // count flows through the farm without a full-trace
    // std::vector<Job> ever existing. The runtime holds one lookahead
    // job plus the (capped) decision log — with a fixed policy, not
    // even that — so peak job-buffer memory is bounded by the
    // epoch/history window regardless of run length.
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec google = googleWorkload();
    // 60 minutes at per-server load 0.35 across 4 servers with a
    // 4.2 ms mean service: ~1.2 million aggregate arrivals.
    const UtilizationTrace trace("flat",
                                 std::vector<double>(60, 0.35));
    const auto source = makeFarmSource(google, trace, 4, 47);

    FarmRuntimeConfig config;
    config.farmSize = 4;
    config.dispatcher = "JSQ";
    config.perServer.epochMinutes = 5;
    config.perServer.fixedPolicy =
        raceToHalt(LowPowerState::C6S0Idle);
    const FarmRuntime runtime(xeon, google, config);
    NaivePreviousPredictor predictor(0.35);
    const FarmRuntimeResult result =
        runtime.run(*source, trace, predictor);

    EXPECT_GE(result.total.arrivals, 1000000u);
    EXPECT_EQ(result.total.completions, result.total.arrivals);
    EXPECT_EQ(result.jobsPerServer.size(), 4u);
}

} // namespace
} // namespace sleepscale
