/**
 * @file
 * Golden decision-snapshot regression for the Table 5 workloads.
 *
 * Pins the per-epoch (frequency, sleep-state) decisions and the total
 * energy of one canonical SleepScale day-slice per workload (dns,
 * mail, google) to committed golden CSVs under tests/golden/, plus
 * the offline-optimal oracle's energy and the strategy's regret on a
 * thinned variant of each slice (docs/OFFLINE_OPT.md). Any change to
 * the predictor chain, the policy-evaluation engine, the QoS budget,
 * the simulator, or the oracle that shifts a single epoch decision or
 * regret number fails here with a per-epoch diff instead of silently
 * changing every figure downstream.
 *
 * Regeneration (after an INTENDED behavior change):
 *
 *   tools/update_goldens.sh
 *
 * which rebuilds this test and reruns it with SLEEPSCALE_UPDATE_GOLDENS=1
 * set, rewriting the committed files; the git diff then shows exactly
 * which decisions moved.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "experiment/runner.hh"
#include "util/csv.hh"
#include "util/error.hh"

namespace sleepscale {
namespace {

#ifndef SLEEPSCALE_SOURCE_DIR
#error "SLEEPSCALE_SOURCE_DIR must point at the repository root"
#endif

std::string
goldenPath(const std::string &workload)
{
    return std::string(SLEEPSCALE_SOURCE_DIR) + "/tests/golden/table5_" +
           workload + ".csv";
}

/** The canonical pinned scenario: one 2AM-8AM email-store slice. */
ScenarioSpec
goldenScenario(const std::string &workload)
{
    return ScenarioBuilder("golden " + workload)
        .workload(workload)
        .trace("es")
        .traceDays(1)
        .traceSeed(20140614)
        .window(2, 8)
        .epochMinutes(5)
        .strategy("SS")
        .overProvision(0.35)
        .rhoB(0.8)
        .predictor("LC")
        .seed(20140614)
        .captureEpochs()
        .build();
}

/** Decisions + total energy as a CSV table (constant energy column). */
CsvTable
snapshotOf(const ScenarioResult &result)
{
    CsvTable table;
    table.headers = {"epoch", "frequency", "state_depth",
                     "total_energy_j"};
    const auto epochs = result.epochs.column("epoch");
    const auto frequencies = result.epochs.column("frequency");
    const auto depths = result.epochs.column("state_depth");
    for (std::size_t i = 0; i < epochs.size(); ++i)
        table.addRow(
            {epochs[i], frequencies[i], depths[i], result.energy});
    return table;
}

class GoldenSnapshot : public ::testing::TestWithParam<const char *>
{
};

TEST_P(GoldenSnapshot, Table5DecisionsMatchGolden)
{
    const std::string workload = GetParam();
    const ScenarioResult result =
        ExperimentRunner::runScenario(goldenScenario(workload));
    const CsvTable actual = snapshotOf(result);
    const std::string path = goldenPath(workload);

    if (std::getenv("SLEEPSCALE_UPDATE_GOLDENS") != nullptr) {
        writeCsvFile(path, actual);
        std::cout << "golden updated: " << path << " ("
                  << actual.rows.size() << " epochs)\n";
        return;
    }

    CsvTable golden;
    try {
        golden = readCsvFile(path);
    } catch (const ConfigError &error) {
        FAIL() << "cannot read golden file " << path << ": "
               << error.what()
               << "\n(generate it with tools/update_goldens.sh)";
    }

    ASSERT_EQ(golden.headers, actual.headers) << path;
    ASSERT_EQ(golden.rows.size(), actual.rows.size())
        << workload << ": epoch count changed (golden "
        << golden.rows.size() << ", actual " << actual.rows.size()
        << "); regenerate with tools/update_goldens.sh if intended";

    // Per-epoch diff: collect every divergence before failing, so the
    // failure message shows the whole drift, not just the first row.
    std::string diff;
    for (std::size_t i = 0; i < golden.rows.size(); ++i) {
        const double golden_f = golden.rows[i][1];
        const double actual_f = actual.rows[i][1];
        const double golden_depth = golden.rows[i][2];
        const double actual_depth = actual.rows[i][2];
        if (std::fabs(golden_f - actual_f) > 1e-9 ||
            golden_depth != actual_depth) {
            diff += "  epoch " + std::to_string(i) + ": golden (f=" +
                    std::to_string(golden_f) + ", depth=" +
                    std::to_string(static_cast<int>(golden_depth)) +
                    ") vs actual (f=" + std::to_string(actual_f) +
                    ", depth=" +
                    std::to_string(static_cast<int>(actual_depth)) +
                    ")\n";
        }
    }
    EXPECT_TRUE(diff.empty())
        << workload << ": per-epoch decisions drifted from " << path
        << ":\n"
        << diff
        << "regenerate with tools/update_goldens.sh if this change is "
           "intended";

    const double golden_energy = golden.rows.front()[3];
    EXPECT_NEAR(result.energy / golden_energy, 1.0, 1e-9)
        << workload << ": total energy drifted (golden "
        << golden_energy << " J, actual " << result.energy << " J)";
}

INSTANTIATE_TEST_SUITE_P(Table5, GoldenSnapshot,
                         ::testing::Values("dns", "mail", "google"));

// ------------------------------------------------ oracle regret pins
//
// Golden regret snapshots (docs/OFFLINE_OPT.md): the same 2AM-8AM
// slices scored against the offline-optimal oracle, pinning the
// per-epoch decisions alongside offline_opt_energy and regret_pct in
// tests/golden/table5_<workload>_regret.csv. The mail and google
// arrival streams are thinned (the slice packs 10-100x more jobs
// than dns at the same utilization) so each oracle solve stays a few
// seconds; the thinned log is pinned like any other scenario knob.
// Regeneration: tools/update_goldens.sh, same as the decision pins.

struct RegretGoldenCase
{
    const char *workload;
    double rate_scale;
};

ScenarioSpec
regretScenario(const RegretGoldenCase &c)
{
    return ScenarioBuilder(std::string("golden regret ") + c.workload)
        .workload(c.workload)
        .trace("es")
        .traceDays(1)
        .traceSeed(20140614)
        .window(2, 8)
        .epochMinutes(5)
        .strategy("SS")
        .overProvision(0.35)
        .rhoB(0.8)
        .predictor("LC")
        .sourceRateScale(c.rate_scale)
        .reportRegret()
        .seed(20140614)
        .captureEpochs()
        .build();
}

/** Decisions + oracle scalars, one row per epoch (the energy, oracle,
 * and regret columns are constant; keeping the per-epoch rows is what
 * makes a failure diff per-epoch). */
CsvTable
regretSnapshotOf(const ScenarioResult &result)
{
    CsvTable table;
    table.headers = {"epoch",          "frequency",
                     "state_depth",    "total_energy_j",
                     "offline_opt_energy_j", "regret_pct"};
    const auto epochs = result.epochs.column("epoch");
    const auto frequencies = result.epochs.column("frequency");
    const auto depths = result.epochs.column("state_depth");
    for (std::size_t i = 0; i < epochs.size(); ++i)
        table.addRow({epochs[i], frequencies[i], depths[i],
                      result.energy,
                      result.extra("offline_opt_energy"),
                      result.extra("regret_pct")});
    return table;
}

class GoldenRegret : public ::testing::TestWithParam<RegretGoldenCase>
{
};

TEST_P(GoldenRegret, Table5RegretMatchesGolden)
{
    const RegretGoldenCase c = GetParam();
    const ScenarioResult result =
        ExperimentRunner::runScenario(regretScenario(c));
    const CsvTable actual = regretSnapshotOf(result);
    const std::string path = std::string(SLEEPSCALE_SOURCE_DIR) +
                             "/tests/golden/table5_" + c.workload +
                             "_regret.csv";

    if (std::getenv("SLEEPSCALE_UPDATE_GOLDENS") != nullptr) {
        writeCsvFile(path, actual);
        std::cout << "golden updated: " << path << " ("
                  << actual.rows.size() << " epochs)\n";
        return;
    }

    CsvTable golden;
    try {
        golden = readCsvFile(path);
    } catch (const ConfigError &error) {
        FAIL() << "cannot read golden file " << path << ": "
               << error.what()
               << "\n(generate it with tools/update_goldens.sh)";
    }

    ASSERT_EQ(golden.headers, actual.headers) << path;
    ASSERT_EQ(golden.rows.size(), actual.rows.size())
        << c.workload << ": epoch count changed (golden "
        << golden.rows.size() << ", actual " << actual.rows.size()
        << "); regenerate with tools/update_goldens.sh if intended";

    // Per-epoch decision diff first: if decisions drifted, the log
    // the oracle scored drifted too, and the regret delta is just a
    // symptom of that.
    std::string diff;
    for (std::size_t i = 0; i < golden.rows.size(); ++i) {
        if (std::fabs(golden.rows[i][1] - actual.rows[i][1]) > 1e-9 ||
            golden.rows[i][2] != actual.rows[i][2]) {
            diff += "  epoch " + std::to_string(i) + ": golden (f=" +
                    std::to_string(golden.rows[i][1]) + ", depth=" +
                    std::to_string(static_cast<int>(golden.rows[i][2])) +
                    ") vs actual (f=" +
                    std::to_string(actual.rows[i][1]) + ", depth=" +
                    std::to_string(static_cast<int>(actual.rows[i][2])) +
                    ")\n";
        }
    }
    EXPECT_TRUE(diff.empty())
        << c.workload << ": per-epoch decisions drifted from " << path
        << ":\n"
        << diff
        << "regenerate with tools/update_goldens.sh if this change is "
           "intended";

    // Oracle pins: a drift here with unchanged decisions means the
    // oracle itself moved (docs/OFFLINE_OPT.md).
    const double golden_opt = golden.rows.front()[4];
    const double actual_opt = result.extra("offline_opt_energy");
    EXPECT_NEAR(actual_opt / golden_opt, 1.0, 1e-9)
        << c.workload << ": offline-optimal energy drifted (golden "
        << golden_opt << " J, actual " << actual_opt << " J)";
    const double golden_regret = golden.rows.front()[5];
    EXPECT_NEAR(result.extra("regret_pct"), golden_regret, 1e-7)
        << c.workload << ": regret drifted (golden " << golden_regret
        << "%, actual " << result.extra("regret_pct") << "%)";
    // And the invariant the pins ride on: the strategy never beats
    // the certified lower bound.
    EXPECT_GE(result.extra("regret_pct"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Table5, GoldenRegret,
    ::testing::Values(RegretGoldenCase{"dns", 1.0},
                      RegretGoldenCase{"mail", 0.3},
                      RegretGoldenCase{"google", 0.05}),
    [](const ::testing::TestParamInfo<RegretGoldenCase> &info) {
        return std::string(info.param.workload);
    });

} // namespace
} // namespace sleepscale
