/**
 * @file
 * End-to-end integration tests reproducing the paper's headline claims in
 * miniature: SleepScale beats the conventional strategies on power while
 * staying within the QoS budget (Section 6.1), race-to-halt pays ~50%
 * extra power at low utilization (Section 4.2), and the QoS-constrained
 * optimal frequencies of Figure 5 come out of the policy manager.
 */

#include <gtest/gtest.h>

#include <map>

#include "analytic/mm1_sleep.hh"
#include "core/runtime.hh"
#include "core/strategies.hh"
#include "power/platform_model.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"
#include "workload/utilization_trace.hh"

namespace sleepscale {
namespace {

class EndToEnd : public ::testing::Test
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();
    WorkloadSpec dns = dnsWorkload();

    RuntimeResult
    runStrategy(StrategyKind kind, const std::vector<Job> &jobs,
                const UtilizationTrace &trace) const
    {
        const RuntimeConfig config =
            makeStrategyConfig(kind, 5, 0.35, 0.8);
        const SleepScaleRuntime runtime(xeon, dns, config);
        LmsCusumPredictor predictor(10);
        return runtime.run(jobs, trace, predictor);
    }
};

TEST_F(EndToEnd, SleepScaleBeatsConventionalStrategiesOnPower)
{
    // The paper's Section 6.1 setting: one synthetic email-store day,
    // evaluated over the 2AM-8PM window.
    const UtilizationTrace day = synthEmailStoreTrace(1, 2014);
    const UtilizationTrace window = day.dailyWindow(2, 20);
    Rng rng(77);
    const auto jobs = generateTraceDrivenJobs(rng, dns, window);

    std::map<StrategyKind, RuntimeResult> results;
    for (StrategyKind kind : allStrategies)
        results.emplace(kind, runStrategy(kind, jobs, window));

    const double ss_power =
        results.at(StrategyKind::SleepScale).avgPower();
    EXPECT_LT(ss_power,
              results.at(StrategyKind::RaceToHaltC3).avgPower());
    EXPECT_LT(ss_power,
              results.at(StrategyKind::RaceToHaltC6).avgPower());
    // SS may legitimately tie DVFS-only when C0(i)S0(i) is the optimal
    // state for the whole window (cf. Figure 6 at moderate load).
    EXPECT_LE(ss_power, results.at(StrategyKind::DvfsOnly).avgPower());
    EXPECT_LE(ss_power,
              results.at(StrategyKind::SleepScaleC3).avgPower() * 1.02);

    // Under the causal predictor the response stays in the budget's
    // neighbourhood (exact compliance depends on how the trace's bursts
    // land, as in the paper's Figure 8/9 discussion)...
    const RuntimeResult &ss = results.at(StrategyKind::SleepScale);
    EXPECT_LE(ss.meanResponse(), ss.qos.budget() * 2.0);

    // ...and with perfect utilization knowledge (offline predictor,
    // 1-minute epochs) the budget itself is met.
    RuntimeConfig genie =
        makeStrategyConfig(StrategyKind::SleepScale, 1, 0.35, 0.8);
    const SleepScaleRuntime genie_runtime(xeon, dns, genie);
    OfflinePredictor offline(window.values());
    const RuntimeResult genie_result =
        genie_runtime.run(jobs, window, offline);
    EXPECT_TRUE(genie_result.withinBudget());
}

TEST_F(EndToEnd, RaceToHaltPaysLargePowerPremiumAtLowUtilization)
{
    // Section 4.2, lesson 1: at rho = 0.1 race-to-halt can consume ~50%
    // more power than the jointly optimal policy.
    const MM1SleepModel model(xeon);
    const double mu = 1.0 / dns.serviceMean;
    const double lambda = 0.1 * mu;

    double best = model.meanPower(raceToHalt(LowPowerState::C6S3),
                                  lambda, mu);
    for (double f = 0.12; f <= 1.0; f += 0.01) {
        for (LowPowerState state : allLowPowerStates) {
            const Policy policy{f, SleepPlan::immediate(state)};
            best = std::min(best, model.meanPower(policy, lambda, mu));
        }
    }
    const double r2h = model.meanPower(
        raceToHalt(LowPowerState::C0IdleS0Idle), lambda, mu);
    EXPECT_GT(r2h / best, 1.4);
}

TEST_F(EndToEnd, Figure5OptimalFrequenciesEmerge)
{
    // Google-like workload, C0(i)S0(i), QoS from rho_b = 0.8: the paper
    // reads off optimal f of {0.41, 0.46, 0.51, 0.56} at rho = 0.1..0.4.
    const WorkloadSpec google = googleWorkload();
    const double mu = 1.0 / google.serviceMean;
    const QosConstraint qos =
        QosConstraint::fromBaselineMean(0.8, google.serviceMean);
    const PolicyManager manager(
        xeon, ServiceScaling::cpuBound(),
        PolicySpace{{SleepPlan::immediate(LowPowerState::C0IdleS0Idle)},
                    PolicySpace::frequencyGrid(0.12, 1.0, 0.01)},
        qos);

    // Under the pure M/M/1 closed form the optima are {0.39, 0.46,
    // 0.50, 0.60}: minimizing E[P](f) = 55ρf² + 59.5ρ/f + 75f³ + 60.5
    // subject to the µE[R] = 1/(f-ρ) <= 5 cut (binding from ρ = 0.3).
    // The paper reads {0.41, 0.46, 0.51, 0.56} off its BigHouse-driven
    // simulation (inter-arrival Cv 1.2, service Cv 1.1) — same shape,
    // small offsets from the non-exponential moments.
    const std::map<double, double> expected = {
        {0.1, 0.39}, {0.2, 0.46}, {0.3, 0.50}, {0.4, 0.60}};
    for (const auto &[rho, f_model] : expected) {
        const PolicyDecision decision =
            manager.selectAnalytic(rho * mu, mu);
        EXPECT_NEAR(decision.policy.frequency, f_model, 0.02)
            << "rho=" << rho;
        // The paper's reading stays within a few hundredths.
        EXPECT_TRUE(decision.feasible);
    }
}

TEST_F(EndToEnd, LowUtilizationQosCanBeExceeded)
{
    // Figure 5 observation: at rho = 0.1 the global power optimum beats
    // the budget (normalized response ~3 < 5).
    const WorkloadSpec google = googleWorkload();
    const double mu = 1.0 / google.serviceMean;
    const QosConstraint qos =
        QosConstraint::fromBaselineMean(0.8, google.serviceMean);
    const PolicyManager manager(
        xeon, ServiceScaling::cpuBound(),
        PolicySpace{{SleepPlan::immediate(LowPowerState::C0IdleS0Idle)},
                    PolicySpace::frequencyGrid(0.12, 1.0, 0.01)},
        qos);
    const PolicyDecision decision = manager.selectAnalytic(0.1 * mu, mu);
    EXPECT_LT(decision.predictedMetric, qos.budget() * 0.8);
}

TEST_F(EndToEnd, JobSizeDrivesOptimalStateAtHighUtilization)
{
    // Section 4.2, lesson 3 (Figure 2): under high utilization DNS-like
    // jobs prefer C6S0(i) while Google-like jobs prefer C3S0(i), and
    // C6S3 is never the choice.
    const MM1SleepModel model(xeon);
    const QosConstraint loose = QosConstraint::meanBudget(1e9);

    auto best_state = [&](double service_mean) {
        const double mu = 1.0 / service_mean;
        const double lambda = 0.9 * mu;
        double best_power = 1e18;
        LowPowerState best = LowPowerState::C0IdleS0Idle;
        for (double f = 0.92; f <= 1.0; f += 0.005) {
            for (LowPowerState state : allLowPowerStates) {
                const Policy policy{f, SleepPlan::immediate(state)};
                const double p = model.meanPower(policy, lambda, mu);
                if (p < best_power) {
                    best_power = p;
                    best = state;
                }
            }
        }
        (void)loose;
        return best;
    };

    EXPECT_EQ(best_state(0.194), LowPowerState::C6S0Idle);
    EXPECT_EQ(best_state(4.2e-3), LowPowerState::C3S0Idle);
}

} // namespace
} // namespace sleepscale
