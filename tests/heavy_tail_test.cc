/**
 * @file
 * Heavy-tail behaviour tests built around the Mail workload (service
 * Cv = 3.6). The paper's Section 5.1.2 observation 2: mean-response
 * constraints care only about means, but 95th-percentile constraints
 * depend critically on the variation of job sizes — so tail-constrained
 * policies must diverge from mean-constrained ones exactly when the
 * workload is heavy-tailed.
 */

#include <gtest/gtest.h>

#include "analytic/mm1_sleep.hh"
#include "core/policy_manager.hh"
#include "power/platform_model.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"

namespace sleepscale {
namespace {

class HeavyTail : public ::testing::Test
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();
    WorkloadSpec mail = mailWorkload();

    std::vector<Job>
    mailJobs(double rho, std::size_t n, std::uint64_t seed) const
    {
        Rng rng(seed);
        return generateWorkloadJobs(rng, mail, rho, n);
    }
};

TEST_F(HeavyTail, TailToMeanRatioGrowsWithServiceCv)
{
    // Same mean, increasing Cv: the simulated p95/mean response ratio
    // must grow (the effect behind Figure 6(c)/(d)).
    const double rho = 0.4;
    double previous_ratio = 0.0;
    for (double cv : {1.0, 2.0, 3.6}) {
        Rng rng(42);
        const auto gaps = fitDistribution(mail.serviceMean / rho, 1.0);
        const auto sizes = fitDistribution(mail.serviceMean, cv);
        const auto jobs = generateJobs(rng, *gaps, *sizes, 200000);
        const PolicyEvaluation eval = evaluatePolicy(
            xeon, mail.scaling,
            Policy{1.0, SleepPlan::immediate(LowPowerState::C6S0Idle)},
            jobs);
        const double ratio = eval.p95Response() / eval.meanResponse();
        EXPECT_GT(ratio, previous_ratio) << "cv=" << cv;
        previous_ratio = ratio;
    }
    EXPECT_GT(previous_ratio, 3.0);
}

TEST_F(HeavyTail, TailConstraintDemandsMoreThanMeanConstraint)
{
    // At the same rho_b, the policy chosen under the tail budget must
    // spend at least as much power as the one under the mean budget —
    // the tail is the harder constraint for Cv >> 1.
    const double rho = 0.4;
    const auto jobs = mailJobs(rho, 150000, 7);
    const PolicySpace space = PolicySpace::allStates(
        PolicySpace::frequencyGrid(0.2, 1.0, 0.02));

    const PolicyManager mean_manager(
        xeon, mail.scaling, space,
        QosConstraint::fromBaselineMean(0.9, mail.serviceMean));
    const PolicyManager tail_manager(
        xeon, mail.scaling, space,
        QosConstraint::fromBaselineTail(0.9, mail.serviceMean));

    const PolicyDecision by_mean = mean_manager.selectFromLog(jobs);
    const PolicyDecision by_tail = tail_manager.selectFromLog(jobs);

    EXPECT_TRUE(by_mean.feasible);
    EXPECT_GE(by_tail.policy.frequency, by_mean.policy.frequency);
    EXPECT_GE(by_tail.predictedPower, by_mean.predictedPower * 0.999);
}

TEST_F(HeavyTail, IdealizedModelUnderestimatesHeavyTailResponse)
{
    // Observation 2 of Section 5.1.2: the idealized (M/M/1) model is
    // good when moments are near-Poisson and misleading otherwise. For
    // Mail the true mean response exceeds the exponential-service
    // prediction at the same utilization.
    const double rho = 0.5;
    const double mu = 1.0 / mail.serviceMean;
    const MM1SleepModel model(xeon);
    const Policy policy{
        1.0, SleepPlan::immediate(LowPowerState::C6S0Idle)};

    const auto jobs = mailJobs(rho, 400000, 11);
    const PolicyEvaluation eval =
        evaluatePolicy(xeon, mail.scaling, policy, jobs);

    const double ideal = model.meanResponse(policy, rho * mu, mu);
    const double mg1 =
        model.meanResponseMG1(policy, rho * mu, mu, mail.serviceCv);
    EXPECT_GT(eval.meanResponse(), ideal * 1.5);
    // The M/G/1 extension closes most of the gap (arrivals are still
    // non-Poisson, Cv = 1.9, so a residual remains).
    EXPECT_NEAR(eval.meanResponse() / mg1, 1.0, 0.35);
    EXPECT_GT(mg1, ideal);
}

TEST_F(HeavyTail, MeanConstrainedSelectionStillFindsSleepStates)
{
    // Even with heavy tails the policy manager finds a feasible policy
    // that sleeps — heavy tails change *which* policy, not whether the
    // joint optimization works.
    const auto jobs = mailJobs(0.2, 100000, 13);
    const PolicyManager manager(
        xeon, mail.scaling,
        PolicySpace::allStates(PolicySpace::frequencyGrid(0.2, 1.0,
                                                          0.02)),
        QosConstraint::fromBaselineMean(0.9, mail.serviceMean));
    const PolicyDecision decision = manager.selectFromLog(jobs);
    EXPECT_TRUE(decision.feasible);
    EXPECT_LT(decision.predictedPower,
              evaluatePolicy(xeon, mail.scaling,
                             raceToHalt(LowPowerState::C0IdleS0Idle),
                             jobs)
                  .avgPower());
}

} // namespace
} // namespace sleepscale
