/**
 * @file
 * Tests for autonomous per-server farm control: decision equivalence
 * with the farm-wide path in the symmetric homogeneous case (the
 * paper's Section 7 scale-out argument), divergence on heterogeneous
 * big/little farms, per-server accounting, configuration validation,
 * and determinism across decision-pool widths.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/predictor.hh"
#include "farm/farm_runtime.hh"
#include "power/platform_model.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {
namespace {

FarmRuntimeConfig
baseConfig(std::size_t size, const std::string &control)
{
    FarmRuntimeConfig config;
    config.farmSize = size;
    config.dispatcher = "random";
    config.control = control;
    config.perServer.epochMinutes = 5;
    return config;
}

FarmRuntimeResult
runFarm(const PlatformModel &platform, const WorkloadSpec &workload,
        const FarmRuntimeConfig &config, const std::vector<Job> &jobs,
        const UtilizationTrace &trace)
{
    const FarmRuntime runtime(platform, workload, config);
    OfflinePredictor predictor(trace.values());
    return runtime.run(jobs, trace, predictor);
}

void
expectSameDecisions(const std::vector<EpochReport> &got,
                    const std::vector<EpochReport> &expect,
                    const std::string &context)
{
    ASSERT_EQ(got.size(), expect.size()) << context;
    for (std::size_t e = 0; e < expect.size(); ++e) {
        EXPECT_EQ(got[e].decided, expect[e].decided)
            << context << " epoch " << e;
        EXPECT_DOUBLE_EQ(got[e].policy.frequency,
                         expect[e].policy.frequency)
            << context << " epoch " << e;
        EXPECT_EQ(got[e].policy.plan.toString(),
                  expect[e].policy.plan.toString())
            << context << " epoch " << e;
    }
}

// The farm-wide mode's thinned decision log is the arrival stream the
// dispatcher routes to server 0, so in the symmetric homogeneous case
// autonomous server 0 sees the identical log at every epoch boundary
// and its (frequency, sleep-state) decisions must match the farm-wide
// path bit-for-bit — the paper's conjecture that SleepScale "runs on
// each server independently", made executable. Checked across the
// Table 5 workloads.
TEST(PerServerControl, Server0MatchesFarmWideOnTable5Workloads)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(20, 0.25));

    for (const std::string name : {"dns", "mail", "google"}) {
        const WorkloadSpec workload = workloadByName(name);
        Rng rng(91);
        const auto jobs = generateFarmJobs(rng, workload, trace, 4);

        const FarmRuntimeResult wide = runFarm(
            xeon, workload, baseConfig(4, "farm-wide"), jobs, trace);
        const FarmRuntimeResult local = runFarm(
            xeon, workload, baseConfig(4, "per-server"), jobs, trace);

        ASSERT_EQ(local.servers.size(), 4u);
        expectSameDecisions(local.servers[0].epochs, wide.epochs,
                            name + " server 0");
    }
}

// The other servers see different Bernoulli-split realizations of the
// same aggregate process, so their decisions agree with the farm-wide
// ones wherever the candidate argmax is robust to sampling noise. For
// the near-Poisson dns workload at moderate load it is robust across
// the whole run: every server reproduces the farm-wide stream.
TEST(PerServerControl, AllServersMatchFarmWideOnSymmetricDnsFarm)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(30, 0.2));
    Rng rng(91);
    const auto jobs = generateFarmJobs(rng, dns, trace, 4);

    const FarmRuntimeResult wide = runFarm(
        xeon, dns, baseConfig(4, "farm-wide"), jobs, trace);
    const FarmRuntimeResult local = runFarm(
        xeon, dns, baseConfig(4, "per-server"), jobs, trace);

    ASSERT_EQ(local.servers.size(), 4u);
    for (const FarmServerReport &server : local.servers)
        expectSameDecisions(server.epochs, wide.epochs,
                            "dns server " +
                                std::to_string(server.server));
}

TEST(PerServerControl, HeterogeneousBigLittleFarmDiverges)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(30, 0.3));
    Rng rng(17);
    const auto jobs = generateFarmJobs(rng, dns, trace, 4);

    FarmRuntimeConfig config = baseConfig(4, "per-server");
    config.platforms = {"xeon", "xeon", "atom", "atom"};
    const FarmRuntimeResult result =
        runFarm(xeon, dns, config, jobs, trace);

    ASSERT_EQ(result.servers.size(), 4u);
    EXPECT_EQ(result.servers[0].platform, PlatformModel::xeon().name());
    EXPECT_EQ(result.servers[3].platform, PlatformModel::atom().name());

    // The big and little halves bind the same candidate space to
    // different power models, so their decision streams must differ
    // somewhere while the two servers of each half agree often.
    bool xeon_vs_atom_differ = false;
    const auto &big = result.servers[0].epochs;
    const auto &little = result.servers[2].epochs;
    ASSERT_EQ(big.size(), little.size());
    for (std::size_t e = 0; e < big.size(); ++e) {
        if (!big[e].decided || !little[e].decided)
            continue;
        if (big[e].policy.toString() != little[e].policy.toString())
            xeon_vs_atom_differ = true;
    }
    EXPECT_TRUE(xeon_vs_atom_differ);
}

TEST(PerServerControl, PerServerStatsSumToFarmTotals)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(20, 0.25));
    Rng rng(23);
    const auto jobs = generateFarmJobs(rng, dns, trace, 4);

    FarmRuntimeConfig config = baseConfig(4, "per-server");
    config.platforms = {"xeon", "atom", "xeon", "atom"};
    const FarmRuntimeResult result =
        runFarm(xeon, dns, config, jobs, trace);

    double energy = 0.0;
    std::uint64_t completions = 0;
    std::uint64_t routed = 0;
    for (const FarmServerReport &server : result.servers) {
        energy += server.total.energy;
        completions += server.total.completions;
        routed += server.jobsRouted;
    }
    EXPECT_NEAR(energy, result.total.energy,
                1e-9 * std::max(1.0, result.total.energy));
    EXPECT_EQ(completions, result.total.completions);
    EXPECT_EQ(completions, jobs.size());
    EXPECT_EQ(routed, jobs.size());
    EXPECT_EQ(result.jobsPerServer.size(), 4u);
    EXPECT_EQ(std::accumulate(result.jobsPerServer.begin(),
                              result.jobsPerServer.end(), 0ull),
              jobs.size());
}

TEST(PerServerControl, DecisionPoolWidthDoesNotChangeDecisions)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(20, 0.3));
    Rng rng(41);
    const auto jobs = generateFarmJobs(rng, dns, trace, 4);

    FarmRuntimeConfig serial = baseConfig(4, "per-server");
    serial.decisionThreads = 1;
    FarmRuntimeConfig wide = baseConfig(4, "per-server");
    wide.decisionThreads = 4;

    const FarmRuntimeResult one =
        runFarm(xeon, dns, serial, jobs, trace);
    const FarmRuntimeResult four =
        runFarm(xeon, dns, wide, jobs, trace);

    EXPECT_DOUBLE_EQ(one.total.energy, four.total.energy);
    ASSERT_EQ(one.servers.size(), four.servers.size());
    for (std::size_t i = 0; i < one.servers.size(); ++i) {
        const auto &a = one.servers[i].epochs;
        const auto &b = four.servers[i].epochs;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t e = 0; e < a.size(); ++e)
            EXPECT_EQ(a[e].policy.toString(), b[e].policy.toString());
    }
}

TEST(PerServerControl, FixedPolicyMatchesFarmWideExactly)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(15, 0.2));
    Rng rng(53);
    const auto jobs = generateFarmJobs(rng, dns, trace, 3);

    FarmRuntimeConfig wide = baseConfig(3, "farm-wide");
    wide.perServer.fixedPolicy = raceToHalt(LowPowerState::C6S0Idle);
    FarmRuntimeConfig local = baseConfig(3, "per-server");
    local.perServer.fixedPolicy = raceToHalt(LowPowerState::C6S0Idle);

    // With the decision step pinned, the two modes drive identical
    // farms: every accounting total must agree bit-for-bit.
    const FarmRuntimeResult a = runFarm(xeon, dns, wide, jobs, trace);
    const FarmRuntimeResult b = runFarm(xeon, dns, local, jobs, trace);
    EXPECT_DOUBLE_EQ(a.total.energy, b.total.energy);
    EXPECT_DOUBLE_EQ(a.meanResponse(), b.meanResponse());
    EXPECT_EQ(a.total.completions, b.total.completions);
    EXPECT_EQ(a.jobsPerServer, b.jobsPerServer);
}

TEST(PerServerControl, ManagersPersistAcrossRuns)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(15, 0.3));
    Rng rng(61);
    const auto jobs = generateFarmJobs(rng, dns, trace, 2);

    const FarmRuntime runtime(xeon, dns,
                              baseConfig(2, "per-server"));
    // One manager (and thus one eval-engine cache) per server, stable
    // across runs.
    const PolicyManager *first = &runtime.serverManager(0);
    const PolicyManager *second = &runtime.serverManager(1);
    EXPECT_NE(first, second);

    OfflinePredictor p1(trace.values()), p2(trace.values());
    const FarmRuntimeResult a = runtime.run(jobs, trace, p1);
    const FarmRuntimeResult b = runtime.run(jobs, trace, p2);
    EXPECT_EQ(first, &runtime.serverManager(0));
    EXPECT_DOUBLE_EQ(a.total.energy, b.total.energy);
}

TEST(PerServerControl, IdleServerIsNotVacuouslyWithinBudget)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(15, 0.1));
    Rng rng(71);
    const auto jobs = generateFarmJobs(rng, dns, trace, 3);

    // A packing dispatcher with an unreachable spill threshold funnels
    // every job to server 0; the starved tail must not claim budget
    // compliance it has no completions to back.
    FarmRuntimeConfig config = baseConfig(3, "per-server");
    config.dispatcher = "packing";
    config.packingSpillBacklog = 1e9;
    const FarmRuntimeResult result =
        runFarm(xeon, dns, config, jobs, trace);

    ASSERT_EQ(result.servers.size(), 3u);
    EXPECT_GT(result.servers[0].jobsRouted, 0u);
    for (std::size_t i = 1; i < 3; ++i) {
        EXPECT_EQ(result.servers[i].total.completions, 0u);
        EXPECT_FALSE(result.servers[i].withinBudget);
    }
}

TEST(PerServerControl, ValidationGuards)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();

    FarmRuntimeConfig bad_mode = baseConfig(2, "per-host");
    EXPECT_THROW(FarmRuntime(xeon, dns, bad_mode), ConfigError);

    FarmRuntimeConfig bad_count = baseConfig(2, "per-server");
    bad_count.platforms = {"xeon"};
    EXPECT_THROW(FarmRuntime(xeon, dns, bad_count), ConfigError);

    FarmRuntimeConfig bad_name = baseConfig(2, "per-server");
    bad_name.platforms = {"xeon", "epyc"};
    EXPECT_THROW(FarmRuntime(xeon, dns, bad_name), ConfigError);

    // A heterogeneous mix cannot bind one farm-wide decision.
    FarmRuntimeConfig mixed_wide = baseConfig(2, "farm-wide");
    mixed_wide.platforms = {"xeon", "atom"};
    EXPECT_THROW(FarmRuntime(xeon, dns, mixed_wide), ConfigError);

    // Homogeneous platform lists are fine under either mode.
    FarmRuntimeConfig homogeneous = baseConfig(2, "farm-wide");
    homogeneous.platforms = {"atom", "atom"};
    const FarmRuntime runtime(xeon, dns, homogeneous);
    EXPECT_EQ(runtime.serverPlatform(1).name(),
              PlatformModel::atom().name());
    EXPECT_THROW(runtime.serverManager(0), ConfigError);
}

} // namespace
} // namespace sleepscale
