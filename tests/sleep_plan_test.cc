/**
 * @file
 * Tests for sleep-plan construction and materialization.
 */

#include <gtest/gtest.h>

#include "power/platform_model.hh"
#include "sim/policy.hh"
#include "sim/sleep_plan.hh"
#include "util/error.hh"

namespace sleepscale {
namespace {

TEST(SleepPlan, ImmediateSingleState)
{
    const SleepPlan plan = SleepPlan::immediate(LowPowerState::C6S3);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan.stages()[0].state, LowPowerState::C6S3);
    EXPECT_DOUBLE_EQ(plan.stages()[0].enterAfter, 0.0);
    EXPECT_EQ(plan.deepest(), LowPowerState::C6S3);
}

TEST(SleepPlan, DelayedDeepState)
{
    const SleepPlan plan = SleepPlan::delayed(LowPowerState::C6S3, 0.126);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan.stages()[0].state, LowPowerState::C0IdleS0Idle);
    EXPECT_DOUBLE_EQ(plan.stages()[1].enterAfter, 0.126);
    EXPECT_EQ(plan.deepest(), LowPowerState::C6S3);
}

TEST(SleepPlan, DelayedValidation)
{
    EXPECT_THROW(SleepPlan::delayed(LowPowerState::C6S3, 0.0),
                 ConfigError);
    EXPECT_THROW(SleepPlan::delayed(LowPowerState::C0IdleS0Idle, 1.0),
                 ConfigError);
}

TEST(SleepPlan, ThrottleBackBuildsFullDescent)
{
    const SleepPlan plan =
        SleepPlan::throttleBack({0.001, 0.01, 0.1, 1.0});
    ASSERT_EQ(plan.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(plan.stages()[i].state, allLowPowerStates[i]);
    EXPECT_THROW(SleepPlan::throttleBack({0.1, 0.2}), ConfigError);
}

TEST(SleepPlan, RejectsNonZeroFirstDelay)
{
    EXPECT_THROW(SleepPlan({{LowPowerState::C6S3, 1.0}}), ConfigError);
}

TEST(SleepPlan, RejectsNonIncreasingDelays)
{
    EXPECT_THROW(SleepPlan({{LowPowerState::C0IdleS0Idle, 0.0},
                            {LowPowerState::C3S0Idle, 0.5},
                            {LowPowerState::C6S3, 0.5}}),
                 ConfigError);
}

TEST(SleepPlan, RejectsNonDeepeningStates)
{
    EXPECT_THROW(SleepPlan({{LowPowerState::C6S0Idle, 0.0},
                            {LowPowerState::C3S0Idle, 1.0}}),
                 ConfigError);
}

TEST(SleepPlan, RejectsEmpty)
{
    EXPECT_THROW(SleepPlan({}), ConfigError);
}

TEST(SleepPlan, ToStringShowsDescent)
{
    const SleepPlan plan = SleepPlan::delayed(LowPowerState::C6S3, 2.0);
    EXPECT_EQ(plan.toString(), "C0(i)S0(i)->C6S3@2");
}

// --------------------------------------------------------- materialized

TEST(MaterializedPlan, PowersTrackFrequency)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const SleepPlan plan =
        SleepPlan::delayed(LowPowerState::C6S3, 1.0);

    const MaterializedPlan at_full(plan, xeon, 1.0);
    EXPECT_DOUBLE_EQ(at_full.power(0), 135.5); // C0(i)S0(i) at f=1
    EXPECT_DOUBLE_EQ(at_full.power(1), 28.1);  // C6S3

    const MaterializedPlan at_half(plan, xeon, 0.5);
    EXPECT_DOUBLE_EQ(at_half.power(0), 75.0 / 8.0 + 60.5);
    EXPECT_DOUBLE_EQ(at_half.power(1), 28.1); // frequency independent
}

TEST(MaterializedPlan, WakeLatenciesComeFromPlatform)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MaterializedPlan plan(
        SleepPlan::throttleBack({1e-4, 1e-3, 1e-2, 1e-1}), xeon, 1.0);
    EXPECT_DOUBLE_EQ(plan.wakeLatency(0), 0.0);
    EXPECT_DOUBLE_EQ(plan.wakeLatency(1), 10e-6);
    EXPECT_DOUBLE_EQ(plan.wakeLatency(2), 100e-6);
    EXPECT_DOUBLE_EQ(plan.wakeLatency(3), 1e-3);
    EXPECT_DOUBLE_EQ(plan.wakeLatency(4), 1.0);
}

TEST(MaterializedPlan, StageAtRespectsThresholds)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MaterializedPlan plan(
        SleepPlan::throttleBack({0.1, 0.2, 0.3, 0.4}), xeon, 1.0);
    EXPECT_EQ(plan.stageAt(0.0), 0u);
    EXPECT_EQ(plan.stageAt(0.05), 0u);
    EXPECT_EQ(plan.stageAt(0.1), 1u);
    EXPECT_EQ(plan.stageAt(0.25), 2u);
    EXPECT_EQ(plan.stageAt(0.4), 4u);
    EXPECT_EQ(plan.stageAt(100.0), 4u);
    EXPECT_THROW(plan.stageAt(-0.1), ConfigError);
}

TEST(MaterializedPlan, StageAtBinarySearchMatchesLinearScan)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MaterializedPlan plan(
        SleepPlan::throttleBack({0.1, 0.2, 0.3, 0.4}), xeon, 0.8);

    // Reference linear walk over the thresholds, the pre-upper_bound
    // implementation, probed on and around every boundary.
    auto linear = [&](double elapsed) {
        std::size_t stage = 0;
        while (stage + 1 < plan.size() &&
               elapsed >= plan.enterAfter(stage + 1))
            ++stage;
        return stage;
    };
    for (double elapsed = 0.0; elapsed <= 0.6; elapsed += 0.0125)
        EXPECT_EQ(plan.stageAt(elapsed), linear(elapsed)) << elapsed;
    for (std::size_t s = 1; s < plan.size(); ++s) {
        const double boundary = plan.enterAfter(s);
        EXPECT_EQ(plan.stageAt(boundary), linear(boundary));
        EXPECT_EQ(plan.stageAt(boundary - 1e-12),
                  linear(boundary - 1e-12));
    }
}

TEST(MaterializedPlan, IdleEnergyPrefixSums)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MaterializedPlan plan(
        SleepPlan::throttleBack({0.1, 0.2, 0.3, 0.4}), xeon, 1.0);

    EXPECT_DOUBLE_EQ(plan.energyBeforeStage(0), 0.0);
    double expected = 0.0;
    for (std::size_t s = 1; s < plan.size(); ++s) {
        expected += plan.power(s - 1) *
                    (plan.enterAfter(s) - plan.enterAfter(s - 1));
        EXPECT_DOUBLE_EQ(plan.energyBeforeStage(s), expected);
    }

    // idleEnergy integrates the piecewise-constant descent exactly.
    EXPECT_DOUBLE_EQ(plan.idleEnergy(0.0), 0.0);
    EXPECT_DOUBLE_EQ(plan.idleEnergy(0.05), plan.power(0) * 0.05);
    EXPECT_DOUBLE_EQ(plan.idleEnergy(0.15),
                     plan.power(0) * 0.1 + plan.power(1) * 0.05);
    EXPECT_DOUBLE_EQ(plan.idleEnergy(1.0),
                     plan.energyBeforeStage(4) + plan.power(4) * 0.6);
}

// --------------------------------------------------------------- policy

TEST(Policy, ToStringIsReadable)
{
    const Policy policy{0.42, SleepPlan::immediate(LowPowerState::C6S3)};
    EXPECT_EQ(policy.toString(), "f=0.42 C6S3");
}

TEST(Policy, RaceToHaltRunsFlatOut)
{
    const Policy r2h = raceToHalt(LowPowerState::C3S0Idle);
    EXPECT_DOUBLE_EQ(r2h.frequency, 1.0);
    EXPECT_EQ(r2h.plan.deepest(), LowPowerState::C3S0Idle);
    EXPECT_DOUBLE_EQ(r2h.plan.stages()[0].enterAfter, 0.0);
}

} // namespace
} // namespace sleepscale
