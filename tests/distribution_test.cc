/**
 * @file
 * Unit and property tests for the distribution families.
 *
 * The central property: every family parameterized by (mean, Cv) must
 * reproduce those two moments in large samples — the paper's workload
 * synthesis (Table 5) relies on exactly that.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/error.hh"
#include "util/online_stats.hh"
#include "util/rng.hh"
#include "workload/distribution.hh"

namespace sleepscale {
namespace {

OnlineStats
sampleMoments(const Distribution &dist, int n = 400000,
              std::uint64_t seed = 99)
{
    Rng rng(seed);
    OnlineStats stats;
    for (int i = 0; i < n; ++i)
        stats.add(dist.sample(rng));
    return stats;
}

// -------------------------------------------------- per-family unit tests

TEST(Deterministic, AlwaysReturnsValue)
{
    DeterministicDist dist(2.5);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(dist.sample(rng), 2.5);
    EXPECT_DOUBLE_EQ(dist.mean(), 2.5);
    EXPECT_DOUBLE_EQ(dist.cv(), 0.0);
}

TEST(Exponential, MomentsMatch)
{
    ExponentialDist dist(0.194);
    const OnlineStats stats = sampleMoments(dist);
    EXPECT_NEAR(stats.mean(), 0.194, 0.002);
    EXPECT_NEAR(stats.cv(), 1.0, 0.02);
}

TEST(Exponential, RejectsNonPositiveMean)
{
    EXPECT_THROW(ExponentialDist(0.0), ConfigError);
}

TEST(Uniform, MomentsMatch)
{
    UniformDist dist(1.0, 3.0);
    const OnlineStats stats = sampleMoments(dist);
    EXPECT_NEAR(stats.mean(), 2.0, 0.01);
    EXPECT_NEAR(stats.cv(), (2.0 / std::sqrt(12.0)) / 2.0, 0.01);
    EXPECT_DOUBLE_EQ(dist.mean(), 2.0);
}

TEST(Gamma, LowCvMomentsMatch)
{
    GammaDist dist(5.0, 0.4);
    EXPECT_NEAR(dist.shape(), 1.0 / 0.16, 1e-9);
    const OnlineStats stats = sampleMoments(dist);
    EXPECT_NEAR(stats.mean(), 5.0, 0.05);
    EXPECT_NEAR(stats.cv(), 0.4, 0.01);
}

TEST(Gamma, ShapeBelowOneStillMatches)
{
    GammaDist dist(2.0, 1.5); // shape = 0.44
    const OnlineStats stats = sampleMoments(dist);
    EXPECT_NEAR(stats.mean(), 2.0, 0.03);
    EXPECT_NEAR(stats.cv(), 1.5, 0.03);
}

TEST(LogNormal, MomentsMatch)
{
    LogNormalDist dist(0.092, 2.0);
    const OnlineStats stats = sampleMoments(dist, 2000000);
    EXPECT_NEAR(stats.mean(), 0.092, 0.002);
    EXPECT_NEAR(stats.cv(), 2.0, 0.1);
}

TEST(Weibull, ShapeRecoveredFromCv)
{
    // Cv = 1 corresponds exactly to shape 1 (exponential).
    WeibullDist unit(1.0, 1.0);
    EXPECT_NEAR(unit.shape(), 1.0, 1e-6);

    WeibullDist heavy(1.0, 2.0);
    EXPECT_LT(heavy.shape(), 1.0);
    WeibullDist light(1.0, 0.5);
    EXPECT_GT(light.shape(), 1.0);
}

TEST(Weibull, MomentsMatch)
{
    WeibullDist dist(3.0, 0.7);
    const OnlineStats stats = sampleMoments(dist);
    EXPECT_NEAR(stats.mean(), 3.0, 0.03);
    EXPECT_NEAR(stats.cv(), 0.7, 0.02);
}

TEST(HyperExponential, MomentsMatch)
{
    HyperExponentialDist dist(0.092, 3.6); // the Mail service process
    const OnlineStats stats = sampleMoments(dist, 2000000);
    EXPECT_NEAR(stats.mean(), 0.092, 0.002);
    EXPECT_NEAR(stats.cv(), 3.6, 0.1);
}

TEST(HyperExponential, BalancedMeansStructure)
{
    HyperExponentialDist dist(1.0, 2.0);
    // p1 = (1 + sqrt(3/5)) / 2
    EXPECT_NEAR(dist.phaseProbability(),
                0.5 * (1.0 + std::sqrt(3.0 / 5.0)), 1e-12);
}

TEST(HyperExponential, RejectsCvBelowOne)
{
    EXPECT_THROW(HyperExponentialDist(1.0, 0.5), ConfigError);
}

TEST(BoundedPareto, MomentsMatchDerived)
{
    BoundedParetoDist dist(0.001, 10.0, 1.3);
    const OnlineStats stats = sampleMoments(dist, 2000000);
    EXPECT_NEAR(stats.mean() / dist.mean(), 1.0, 0.03);
    EXPECT_NEAR(stats.cv() / dist.cv(), 1.0, 0.08);
}

TEST(BoundedPareto, SamplesStayInRange)
{
    BoundedParetoDist dist(0.5, 2.0, 2.0);
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double x = dist.sample(rng);
        ASSERT_GE(x, 0.5);
        ASSERT_LE(x, 2.0);
    }
}

TEST(Empirical, ResamplesObservations)
{
    EmpiricalDist dist({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(dist.mean(), 2.0);
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const double x = dist.sample(rng);
        EXPECT_TRUE(x == 1.0 || x == 2.0 || x == 3.0);
    }
}

TEST(Empirical, RejectsEmptyAndNegative)
{
    EXPECT_THROW(EmpiricalDist({}), ConfigError);
    EXPECT_THROW(EmpiricalDist({1.0, -2.0}), ConfigError);
}

TEST(Clone, ProducesIndependentEquivalents)
{
    HyperExponentialDist original(1.0, 2.5);
    const auto copy = original.clone();
    EXPECT_EQ(copy->name(), original.name());
    EXPECT_DOUBLE_EQ(copy->mean(), original.mean());
    EXPECT_DOUBLE_EQ(copy->cv(), original.cv());
}

// ----------------------------------------------------- fitting selection

TEST(Fit, SelectsFamilyByCv)
{
    EXPECT_EQ(fitDistribution(1.0, 0.0)->name(), "deterministic");
    EXPECT_EQ(fitDistribution(1.0, 0.5)->name(), "gamma");
    EXPECT_EQ(fitDistribution(1.0, 1.0)->name(), "exponential");
    EXPECT_EQ(fitDistribution(1.0, 1.1)->name(), "hyperexponential");
    EXPECT_EQ(fitDistribution(1.0, 3.6)->name(), "hyperexponential");
}

TEST(Fit, RejectsInvalidTargets)
{
    EXPECT_THROW(fitDistribution(0.0, 1.0), ConfigError);
    EXPECT_THROW(fitDistribution(1.0, -0.5), ConfigError);
}

// ----------------------------------------- property sweep: moment match

struct MomentTarget
{
    double mean;
    double cv;
};

class MomentMatchTest : public ::testing::TestWithParam<MomentTarget>
{
};

TEST_P(MomentMatchTest, FittedDistributionReproducesMoments)
{
    const auto [mean, cv] = GetParam();
    const auto dist = fitDistribution(mean, cv);
    EXPECT_NEAR(dist->mean(), mean, 1e-12);
    EXPECT_NEAR(dist->cv(), cv, 1e-9);

    const OnlineStats stats = sampleMoments(*dist, 500000);
    EXPECT_NEAR(stats.mean() / mean, 1.0, 0.02);
    if (cv > 0.0) {
        EXPECT_NEAR(stats.cv() / cv, 1.0, 0.05);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table5AndBeyond, MomentMatchTest,
    ::testing::Values(
        // The paper's Table 5 rows.
        MomentTarget{1.1, 1.1},      // DNS inter-arrival
        MomentTarget{0.194, 1.0},    // DNS service
        MomentTarget{0.206, 1.9},    // Mail inter-arrival
        MomentTarget{0.092, 3.6},    // Mail service
        MomentTarget{319e-6, 1.2},   // Google inter-arrival
        MomentTarget{4.2e-3, 1.1},   // Google service
        // Wider stress grid.
        MomentTarget{1.0, 0.2}, MomentTarget{1.0, 0.8},
        MomentTarget{10.0, 2.5}, MomentTarget{1e-4, 1.5},
        MomentTarget{5.0, 0.0}));

// --------------------------------------- CDF + Kolmogorov-Smirnov sweep

/** One-sample K-S statistic of `n` draws against the analytic CDF. */
double
ksStatistic(const Distribution &dist, std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> draws(n);
    for (double &x : draws)
        x = dist.sample(rng);
    std::sort(draws.begin(), draws.end());
    double d = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double f = dist.cdf(draws[i]);
        const double lo = static_cast<double>(i) /
                          static_cast<double>(n);
        const double hi = static_cast<double>(i + 1) /
                          static_cast<double>(n);
        d = std::max({d, std::abs(f - lo), std::abs(f - hi)});
    }
    return d;
}

class KsTest : public ::testing::TestWithParam<int>
{
  protected:
    std::unique_ptr<Distribution>
    make(int which) const
    {
        switch (which) {
          case 0:
            return std::make_unique<ExponentialDist>(0.194);
          case 1:
            return std::make_unique<UniformDist>(0.5, 2.5);
          case 2:
            return std::make_unique<GammaDist>(5.0, 0.4);
          case 3:
            return std::make_unique<GammaDist>(2.0, 1.5);
          case 4:
            return std::make_unique<LogNormalDist>(0.092, 2.0);
          case 5:
            return std::make_unique<WeibullDist>(3.0, 0.7);
          case 6:
            return std::make_unique<HyperExponentialDist>(0.092, 3.6);
          case 7:
            return std::make_unique<BoundedParetoDist>(0.001, 10.0,
                                                       1.3);
          default:
            return nullptr;
        }
    }
};

TEST_P(KsTest, SamplesFollowTheAnalyticCdf)
{
    const auto dist = make(GetParam());
    ASSERT_NE(dist, nullptr);
    // 50k samples: the 1% critical value of the K-S statistic is
    // 1.63 / sqrt(n) ~ 0.0073; use 0.01 for slack across seeds.
    const double d = ksStatistic(*dist, 50000, 1234);
    EXPECT_LT(d, 0.010) << dist->name();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, KsTest, ::testing::Range(0, 8));

TEST(Cdf, BoundaryValues)
{
    const ExponentialDist exp_dist(1.0);
    EXPECT_DOUBLE_EQ(exp_dist.cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(exp_dist.cdf(-1.0), 0.0);
    EXPECT_NEAR(exp_dist.cdf(1e9), 1.0, 1e-12);
    EXPECT_NEAR(exp_dist.cdf(1.0), 1.0 - std::exp(-1.0), 1e-15);

    const DeterministicDist point(2.0);
    EXPECT_DOUBLE_EQ(point.cdf(1.999), 0.0);
    EXPECT_DOUBLE_EQ(point.cdf(2.0), 1.0);
}

TEST(Cdf, GammaMatchesErlangClosedForm)
{
    // Shape 2 (cv = 1/sqrt(2)): F(x) = 1 - e^{-x/s}(1 + x/s).
    const double cv = 1.0 / std::sqrt(2.0);
    const GammaDist gamma(2.0, cv);
    const double scale = 1.0; // mean 2 / shape 2
    for (double x : {0.5, 1.0, 2.0, 5.0}) {
        const double expected =
            1.0 - std::exp(-x / scale) * (1.0 + x / scale);
        EXPECT_NEAR(gamma.cdf(x), expected, 1e-10) << x;
    }
}

TEST(Cdf, EmpiricalIsStepFunction)
{
    const EmpiricalDist dist({3.0, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(dist.cdf(0.5), 0.0);
    EXPECT_NEAR(dist.cdf(1.0), 1.0 / 3.0, 1e-15);
    EXPECT_NEAR(dist.cdf(2.5), 2.0 / 3.0, 1e-15);
    EXPECT_DOUBLE_EQ(dist.cdf(3.0), 1.0);
}

TEST(Cdf, MonotoneNonDecreasingEverywhere)
{
    const HyperExponentialDist dist(1.0, 2.5);
    double previous = -1.0;
    for (double x = 0.0; x < 20.0; x += 0.1) {
        const double f = dist.cdf(x);
        EXPECT_GE(f, previous);
        EXPECT_LE(f, 1.0);
        previous = f;
    }
}

} // namespace
} // namespace sleepscale
