/**
 * @file
 * Tests for the zero-communication "distributed" farm control mode
 * (src/farm/rate_scaler.hh, docs/FARM_SCALE.md): the Robbins–Monro
 * load estimator, slowest-feasible frequency selection, guarded
 * degradation under faults, configuration validation, and the
 * end-to-end farm plumbing (grid-pinned frequencies, pinned sleep
 * plan, heterogeneous platforms).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/predictor.hh"
#include "farm/farm_runtime.hh"
#include "farm/rate_scaler.hh"
#include "power/platform_model.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {
namespace {

const std::vector<double> kGrid = {0.25, 0.5, 0.75, 1.0};

Policy
initialPolicy()
{
    return Policy{1.0, SleepPlan::immediate(LowPowerState::C6S3)};
}

DistributedRateScaler
makeScaler(double target, ServiceScaling scaling = ServiceScaling::cpuBound())
{
    RateScalerOptions options;
    options.targetUtilization = target;
    return DistributedRateScaler(kGrid, scaling, initialPolicy(), options);
}

EpochObservation
observing(double utilization)
{
    EpochObservation observation;
    observation.measuredUtilization = utilization;
    observation.hasMeasurement = true;
    return observation;
}

// The first observation lands with gain 1/1 = 1: the estimate is
// exactly the observed load, like a running mean of one sample.
TEST(DistributedRateScaler, FirstObservationSetsEstimateExactly)
{
    DistributedRateScaler scaler = makeScaler(0.8);
    scaler.decide(observing(0.4), {});
    EXPECT_DOUBLE_EQ(scaler.estimatedLoad(), 0.4);
    EXPECT_EQ(scaler.observations(), 1u);
}

// The gain floor keeps the estimator adaptive forever: after a level
// shift the estimate converges geometrically to the new load instead
// of freezing like a pure running mean would.
TEST(DistributedRateScaler, TracksLoadDriftThroughGainFloor)
{
    DistributedRateScaler scaler = makeScaler(0.8);
    for (int k = 0; k < 100; ++k)
        scaler.decide(observing(0.2), {});
    EXPECT_NEAR(scaler.estimatedLoad(), 0.2, 1e-9);
    for (int k = 0; k < 200; ++k)
        scaler.decide(observing(0.8), {});
    EXPECT_NEAR(scaler.estimatedLoad(), 0.8, 1e-3);
}

// CPU-bound scaling (service time 1/f): load 0.4 against target 0.8
// makes f = 0.5 the slowest feasible frequency, with the predicted
// metric saturating the target exactly.
TEST(DistributedRateScaler, PicksSlowestFrequencyMeetingTarget)
{
    DistributedRateScaler scaler = makeScaler(0.8);
    const PolicyDecision decision = scaler.decide(observing(0.4), {});
    EXPECT_TRUE(decision.feasible);
    EXPECT_DOUBLE_EQ(decision.policy.frequency, 0.5);
    EXPECT_DOUBLE_EQ(decision.predictedMetric, 1.0);
    // The sleep plan rides along from the initial policy untouched.
    EXPECT_EQ(decision.policy.plan.toString(),
              initialPolicy().plan.toString());
}

// Memory-bound work gains nothing from frequency, so the rule always
// lands on the slowest grid point whenever the load fits at all.
TEST(DistributedRateScaler, MemoryBoundLoadRunsSlowestFrequency)
{
    DistributedRateScaler scaler =
        makeScaler(0.8, ServiceScaling::memoryBound());
    const PolicyDecision decision = scaler.decide(observing(0.7), {});
    EXPECT_TRUE(decision.feasible);
    EXPECT_DOUBLE_EQ(decision.policy.frequency, 0.25);
}

// When even full speed cannot keep the estimate under the target the
// decision runs flat out and reports itself infeasible.
TEST(DistributedRateScaler, SaturatedLoadIsInfeasibleAtFullSpeed)
{
    DistributedRateScaler scaler = makeScaler(0.5);
    const PolicyDecision decision = scaler.decide(observing(0.9), {});
    EXPECT_FALSE(decision.feasible);
    EXPECT_DOUBLE_EQ(decision.policy.frequency, 1.0);
}

// An epoch spent down saw no arrivals that were really offered:
// decideGuarded must run the fallback, flag degradation, and leave
// the estimator untouched so recovery is not steered by outage noise.
TEST(DistributedRateScaler, GuardedFaultStarvedRunsFallbackUntouched)
{
    DistributedRateScaler scaler = makeScaler(0.8);
    scaler.decide(observing(0.4), {});

    EpochObservation starved = observing(0.0);
    starved.faultStarved = true;
    const Policy fallback{1.0,
                          SleepPlan::immediate(LowPowerState::C0IdleS0Idle)};
    const GuardedDecision guarded =
        scaler.decideGuarded(starved, {}, fallback);
    EXPECT_TRUE(guarded.degraded);
    EXPECT_FALSE(guarded.decision.feasible);
    EXPECT_DOUBLE_EQ(guarded.decision.policy.frequency, 1.0);
    EXPECT_DOUBLE_EQ(scaler.estimatedLoad(), 0.4);
    EXPECT_EQ(scaler.observations(), 1u);
}

// An infeasible (saturated) decision degrades onto the fallback too —
// the same contract as the other guarded deciders.
TEST(DistributedRateScaler, GuardedInfeasibleDegradesToFallback)
{
    DistributedRateScaler scaler = makeScaler(0.5);
    const Policy fallback{0.75,
                          SleepPlan::immediate(LowPowerState::C0IdleS0Idle)};
    const GuardedDecision guarded =
        scaler.decideGuarded(observing(0.95), {}, fallback);
    EXPECT_TRUE(guarded.degraded);
    EXPECT_DOUBLE_EQ(guarded.decision.policy.frequency, 0.75);
}

TEST(DistributedRateScaler, ResetClearsEstimatorState)
{
    DistributedRateScaler scaler = makeScaler(0.8);
    scaler.decide(observing(0.6), {});
    scaler.reset();
    EXPECT_DOUBLE_EQ(scaler.estimatedLoad(), 0.0);
    EXPECT_EQ(scaler.observations(), 0u);
}

TEST(DistributedRateScaler, NeverConsumesAJobLog)
{
    DistributedRateScaler scaler = makeScaler(0.8);
    EXPECT_FALSE(scaler.needsLog());
}

TEST(DistributedRateScaler, RejectsBadConfiguration)
{
    RateScalerOptions options;
    EXPECT_THROW(DistributedRateScaler({}, ServiceScaling::cpuBound(),
                                       initialPolicy(), options),
                 ConfigError);
    EXPECT_THROW(DistributedRateScaler({1.5}, ServiceScaling::cpuBound(),
                                       initialPolicy(), options),
                 ConfigError);
    options.targetUtilization = 0.0;
    EXPECT_THROW(DistributedRateScaler(kGrid, ServiceScaling::cpuBound(),
                                       initialPolicy(), options),
                 ConfigError);
    options.targetUtilization = 0.8;
    options.gainFloor = 2.0;
    EXPECT_THROW(DistributedRateScaler(kGrid, ServiceScaling::cpuBound(),
                                       initialPolicy(), options),
                 ConfigError);
}

FarmRuntimeConfig
distributedConfig(std::size_t size)
{
    FarmRuntimeConfig config;
    config.farmSize = size;
    config.dispatcher = "random";
    config.control = "distributed";
    config.perServer.epochMinutes = 5;
    // Keep decided frequencies on the grid: the over-provision boost
    // would otherwise lift them off it after within-budget epochs.
    config.perServer.overProvision = 0.0;
    return config;
}

FarmRuntimeResult
runFarm(const PlatformModel &platform, const WorkloadSpec &workload,
        const FarmRuntimeConfig &config, const std::vector<Job> &jobs,
        const UtilizationTrace &trace)
{
    const FarmRuntime runtime(platform, workload, config);
    OfflinePredictor predictor(trace.values());
    return runtime.run(jobs, trace, predictor);
}

// End to end: the distributed farm runs the per-server loop, every
// decided frequency is a member of the candidate grid, and the sleep
// plan never moves off the initial policy's (rate scaling only moves
// frequency).
TEST(DistributedFarm, DecidesOnGridWithPinnedSleepPlan)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(30, 0.25));
    Rng rng(91);
    const auto jobs = generateFarmJobs(rng, dns, trace, 4);

    const FarmRuntimeConfig config = distributedConfig(4);
    const FarmRuntimeResult result =
        runFarm(xeon, dns, config, jobs, trace);

    EXPECT_GT(result.total.completions, 0u);
    ASSERT_EQ(result.servers.size(), 4u);
    const std::string pinned_plan =
        config.perServer.initialPolicy.plan.toString();
    const auto &grid = config.perServer.space.frequencies;
    std::size_t decided_epochs = 0;
    for (const FarmServerReport &server : result.servers) {
        ASSERT_FALSE(server.epochs.empty());
        for (const EpochReport &epoch : server.epochs) {
            if (!epoch.decided)
                continue;
            ++decided_epochs;
            EXPECT_NE(std::find(grid.begin(), grid.end(),
                                epoch.policy.frequency),
                      grid.end())
                << "server " << server.server << " epoch "
                << epoch.index << " frequency "
                << epoch.policy.frequency << " is off-grid";
            EXPECT_EQ(epoch.policy.plan.toString(), pinned_plan)
                << "server " << server.server << " epoch "
                << epoch.index;
        }
    }
    EXPECT_GT(decided_epochs, 0u);
}

// A busier server must not end up at a lower frequency than a mostly
// idle one: the packing dispatcher concentrates load on low indices,
// so server 0's final decided frequency bounds the farm from above.
TEST(DistributedFarm, BusierServersRunAtLeastAsFast)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(30, 0.3));
    Rng rng(7);
    const auto jobs = generateFarmJobs(rng, dns, trace, 4);

    FarmRuntimeConfig config = distributedConfig(4);
    config.dispatcher = "packing";
    const FarmRuntimeResult result =
        runFarm(xeon, dns, config, jobs, trace);

    ASSERT_EQ(result.servers.size(), 4u);
    auto lastDecided = [](const FarmServerReport &server) {
        double frequency = 0.0;
        for (const EpochReport &epoch : server.epochs)
            if (epoch.decided)
                frequency = epoch.policy.frequency;
        return frequency;
    };
    const double head = lastDecided(result.servers[0]);
    const double tail = lastDecided(result.servers[3]);
    ASSERT_GT(head, 0.0);
    ASSERT_GT(tail, 0.0);
    EXPECT_GE(head, tail);
    EXPECT_GT(result.servers[0].total.completions,
              result.servers[3].total.completions);
}

// Heterogeneous platform mixes are legal under distributed control —
// the rule is local, so big and little servers each scale their own
// rate (only farm-wide control requires a homogeneous farm).
TEST(DistributedFarm, HeterogeneousPlatformsAreAccepted)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat",
                                 std::vector<double>(20, 0.25));
    Rng rng(17);
    const auto jobs = generateFarmJobs(rng, dns, trace, 4);

    FarmRuntimeConfig config = distributedConfig(4);
    config.platforms = {"xeon", "xeon", "atom", "atom"};
    const FarmRuntimeResult result =
        runFarm(xeon, dns, config, jobs, trace);

    ASSERT_EQ(result.servers.size(), 4u);
    EXPECT_EQ(result.servers[0].platform, PlatformModel::xeon().name());
    EXPECT_EQ(result.servers[3].platform, PlatformModel::atom().name());
    EXPECT_GT(result.total.completions, 0u);
}

} // namespace
} // namespace sleepscale
