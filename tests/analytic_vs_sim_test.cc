/**
 * @file
 * Property-based cross-validation: the queueing simulator against the
 * Appendix closed forms (the paper's Section 4.3 claim that they match).
 *
 * Each parameterized case simulates a large Poisson/exponential job
 * stream under one (ρ, f, state) setting and requires the simulated E[P],
 * E[R], busy fraction and (single-stage) Pr(R >= d) to agree with the
 * closed forms within Monte-Carlo tolerance.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analytic/mm1_sleep.hh"
#include "analytic/offline_opt.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "util/rng.hh"
#include "util/sample_stats.hh"
#include "workload/job_stream.hh"

namespace sleepscale {
namespace {

struct CrossCase
{
    double rho;
    double frequency;
    LowPowerState state;
    double service_mean;
};

std::string
caseName(const ::testing::TestParamInfo<CrossCase> &info)
{
    const CrossCase &c = info.param;
    std::string name = "rho" + std::to_string(int(c.rho * 100)) + "_f" +
                       std::to_string(int(c.frequency * 100)) + "_s" +
                       std::to_string(depthIndex(c.state)) + "_m" +
                       std::to_string(int(c.service_mean * 1000));
    return name;
}

class AnalyticVsSim : public ::testing::TestWithParam<CrossCase>
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();
    MM1SleepModel model{xeon};
    static constexpr std::size_t jobCount = 300000;
};

TEST_P(AnalyticVsSim, PowerResponseAndTailAgree)
{
    const CrossCase c = GetParam();
    const double mu = 1.0 / c.service_mean;
    const double lambda = c.rho * mu;
    const Policy policy{c.frequency, SleepPlan::immediate(c.state)};

    Rng rng(20140614 + depthIndex(c.state));
    ExponentialDist gaps(1.0 / lambda);
    ExponentialDist sizes(c.service_mean);
    const auto jobs = generateJobs(rng, gaps, sizes, jobCount);
    const PolicyEvaluation eval =
        evaluatePolicy(xeon, ServiceScaling::cpuBound(), policy, jobs);

    // Average power: tight agreement (power is a time average, low
    // variance).
    const double power_pred = model.meanPower(policy, lambda, mu);
    EXPECT_NEAR(eval.avgPower() / power_pred, 1.0, 0.02)
        << "sim " << eval.avgPower() << " W vs analytic " << power_pred;

    // Mean response: looser, heavy-tailed estimator at high rho.
    const double response_pred = model.meanResponse(policy, lambda, mu);
    EXPECT_NEAR(eval.meanResponse() / response_pred, 1.0, 0.06)
        << "sim " << eval.meanResponse() << " s vs analytic "
        << response_pred;

    // Busy fraction.
    const double busy_pred = model.busyFraction(policy, lambda, mu);
    const double busy_sim = eval.stats.busyTime / eval.stats.elapsed();
    EXPECT_NEAR(busy_sim / busy_pred, 1.0, 0.02);

    // Tail at the median-ish deadline (where the estimator is stable).
    // The closed form models the setup time as exponential with mean w1
    // while the simulator wakes deterministically; the two agree while
    // w1 (µf - λ) is small (every state but C6S3, see mm1_sleep.hh).
    const MaterializedPlan plan(policy.plan, xeon, policy.frequency);
    const double mu_eff = mu * policy.frequency;
    if (plan.wakeLatency(0) * (mu_eff - lambda) < 0.05) {
        const double d = response_pred;
        const double tail_pred =
            model.tailProbability(policy, lambda, mu, d);
        const double tail_sim =
            eval.stats.responseHistogram.exceedance(d);
        EXPECT_NEAR(tail_sim, tail_pred, 0.02);
    }
}

// The tail closed form itself, validated against a bespoke Monte Carlo
// of the M/M/1 queue whose setup times are exponential with mean w1 —
// the process the two-exponential mixture describes exactly.
TEST(AnalyticTailFormula, MatchesExponentialSetupMonteCarlo)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MM1SleepModel model(xeon);
    const double mu = 1.0 / 0.194;
    const double lambda = 0.1 * mu;
    const double w1 = xeon.wakeLatency(LowPowerState::C6S3); // 1 s
    const Policy policy{1.0, SleepPlan::immediate(LowPowerState::C6S3)};

    Rng rng(5150);
    SampleStats responses;
    double next_free = 0.0;
    double clock = 0.0;
    for (int i = 0; i < 400000; ++i) {
        clock += rng.exponential(1.0 / lambda);
        double start = next_free;
        if (clock >= next_free)
            start = clock + rng.exponential(w1); // exponential setup
        const double depart = start + rng.exponential(1.0 / mu);
        responses.add(depart - clock);
        next_free = depart;
    }

    for (double d : {0.5, 1.0, 2.0, 4.0}) {
        EXPECT_NEAR(responses.exceedance(d),
                    model.tailProbability(policy, lambda, mu, d), 0.01)
            << "d=" << d;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnalyticVsSim,
    ::testing::Values(
        // DNS-like job size (194 ms), the paper's Figure 1(a) regime.
        CrossCase{0.1, 1.0, LowPowerState::C0IdleS0Idle, 0.194},
        CrossCase{0.1, 1.0, LowPowerState::C6S0Idle, 0.194},
        CrossCase{0.1, 1.0, LowPowerState::C6S3, 0.194},
        CrossCase{0.1, 0.42, LowPowerState::C6S3, 0.194},
        CrossCase{0.1, 0.5, LowPowerState::C1S0Idle, 0.194},
        // Google-like job size (4.2 ms), Figure 1(b).
        CrossCase{0.1, 1.0, LowPowerState::C3S0Idle, 4.2e-3},
        CrossCase{0.1, 0.6, LowPowerState::C6S0Idle, 4.2e-3},
        CrossCase{0.1, 0.35, LowPowerState::C0IdleS0Idle, 4.2e-3},
        // High utilization (Figure 2 regime).
        CrossCase{0.7, 1.0, LowPowerState::C6S0Idle, 0.194},
        CrossCase{0.7, 0.9, LowPowerState::C3S0Idle, 4.2e-3},
        CrossCase{0.5, 0.8, LowPowerState::C6S3, 0.194},
        // Near-saturation stability edge.
        CrossCase{0.3, 0.4, LowPowerState::C0IdleS0Idle, 0.194}),
    caseName);

// --------------------------------------------- oracle regret cross-check
//
// The analytic seam meets the offline oracle (docs/OFFLINE_OPT.md):
// the M/M/1 closed-form mean power describes what a *fixed* policy
// spends, so its energy over a log's span must dominate the offline
// optimum for that same log — the closed forms and the oracle bound
// the simulator from opposite sides. Registered alone as the fast
// `analytic_regret` ctest entry (labels integration+analytic).

TEST(AnalyticVsSimOracleRegret, ClosedFormEnergyDominatesTheOracle)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MM1SleepModel model(xeon);
    const CrossCase cases[] = {
        {0.1, 1.0, LowPowerState::C6S3, 0.194},
        {0.3, 0.6, LowPowerState::C6S0Idle, 0.194},
        {0.2, 0.8, LowPowerState::C3S0Idle, 4.2e-3},
    };
    for (const CrossCase &c : cases) {
        const double mu = 1.0 / c.service_mean;
        const double lambda = c.rho * mu;
        const Policy policy{c.frequency, SleepPlan::immediate(c.state)};

        Rng rng(20140614 + depthIndex(c.state));
        ExponentialDist gaps(1.0 / lambda);
        ExponentialDist sizes(c.service_mean);
        const auto jobs = generateJobs(rng, gaps, sizes, 20000);
        const PolicyEvaluation eval = evaluatePolicy(
            xeon, ServiceScaling::cpuBound(), policy, jobs);

        OfflineOptOptions options;
        options.epsilon = 0.1;
        const OfflineOptimal oracle(xeon, ServiceScaling::cpuBound(),
                                    options);
        const OfflineOptResult opt =
            oracle.solve(OfflineOptInstance::fromJobs(
                jobs, eval.stats.elapsed()));

        // The sample energy the simulator actually spent can never
        // undercut the oracle's certified lower bound ...
        EXPECT_GE(eval.stats.energy, opt.energy - 1e-6)
            << "rho " << c.rho << " f " << c.frequency;
        // ... and the closed form tracks that sample within
        // Monte-Carlo tolerance, so it dominates the oracle too
        // (the 1% slack covers the estimator noise, nothing else).
        const double analytic_energy =
            model.meanPower(policy, lambda, mu) * eval.stats.elapsed();
        EXPECT_GE(analytic_energy, 0.99 * opt.energy)
            << "rho " << c.rho << " f " << c.frequency;
    }
}

// -------------------------------------------------- multi-stage descent

TEST(AnalyticVsSimMultiStage, DelayedDeepSleepAgrees)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MM1SleepModel model(xeon);
    const double mu = 1.0 / 4.2e-3;
    const double lambda = 0.1 * mu;
    const Policy policy{
        0.6, SleepPlan::delayed(LowPowerState::C6S3, 30.0 / mu)};

    Rng rng(777);
    ExponentialDist gaps(1.0 / lambda);
    ExponentialDist sizes(4.2e-3);
    const auto jobs = generateJobs(rng, gaps, sizes, 400000);
    const PolicyEvaluation eval =
        evaluatePolicy(xeon, ServiceScaling::cpuBound(), policy, jobs);

    EXPECT_NEAR(eval.avgPower() / model.meanPower(policy, lambda, mu),
                1.0, 0.02);
    EXPECT_NEAR(eval.meanResponse() /
                    model.meanResponse(policy, lambda, mu),
                1.0, 0.08);
}

TEST(AnalyticVsSimMultiStage, FullThrottleBackAgrees)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MM1SleepModel model(xeon);
    const double mu = 1.0 / 0.194;
    const double lambda = 0.15 * mu;
    const Policy policy{
        0.8, SleepPlan::throttleBack({0.05, 0.2, 1.0, 10.0})};

    Rng rng(888);
    ExponentialDist gaps(1.0 / lambda);
    ExponentialDist sizes(0.194);
    const auto jobs = generateJobs(rng, gaps, sizes, 300000);
    const PolicyEvaluation eval =
        evaluatePolicy(xeon, ServiceScaling::cpuBound(), policy, jobs);

    EXPECT_NEAR(eval.avgPower() / model.meanPower(policy, lambda, mu),
                1.0, 0.02);
    EXPECT_NEAR(eval.meanResponse() /
                    model.meanResponse(policy, lambda, mu),
                1.0, 0.06);
}

// ----------------------------------------------------- M/G/1 extension

TEST(AnalyticVsSimMG1, GammaServiceMeanResponseAgrees)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MM1SleepModel model(xeon);
    const double service_mean = 0.092;
    const double service_cv = 0.5;
    const double mu = 1.0 / service_mean;
    const double lambda = 0.4 * mu;
    const Policy policy{1.0,
                        SleepPlan::immediate(LowPowerState::C6S0Idle)};

    Rng rng(999);
    ExponentialDist gaps(1.0 / lambda);
    GammaDist sizes(service_mean, service_cv);
    const auto jobs = generateJobs(rng, gaps, sizes, 300000);
    const PolicyEvaluation eval =
        evaluatePolicy(xeon, ServiceScaling::cpuBound(), policy, jobs);

    EXPECT_NEAR(eval.meanResponse() /
                    model.meanResponseMG1(policy, lambda, mu, service_cv),
                1.0, 0.05);
    // E[P] depends on service only through the mean.
    EXPECT_NEAR(eval.avgPower() / model.meanPower(policy, lambda, mu),
                1.0, 0.02);
}

TEST(AnalyticVsSimMG1, HyperExponentialServiceMeanResponseAgrees)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const MM1SleepModel model(xeon);
    const double service_mean = 0.092;
    const double service_cv = 3.6; // the Mail workload's tail weight
    const double mu = 1.0 / service_mean;
    const double lambda = 0.3 * mu;
    const Policy policy{1.0,
                        SleepPlan::immediate(LowPowerState::C3S0Idle)};

    Rng rng(1001);
    ExponentialDist gaps(1.0 / lambda);
    HyperExponentialDist sizes(service_mean, service_cv);
    const auto jobs = generateJobs(rng, gaps, sizes, 2000000);
    const PolicyEvaluation eval =
        evaluatePolicy(xeon, ServiceScaling::cpuBound(), policy, jobs);

    EXPECT_NEAR(eval.meanResponse() /
                    model.meanResponseMG1(policy, lambda, mu, service_cv),
                1.0, 0.08);
    EXPECT_NEAR(eval.avgPower() / model.meanPower(policy, lambda, mu),
                1.0, 0.02);
}

} // namespace
} // namespace sleepscale
