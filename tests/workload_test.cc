/**
 * @file
 * Tests for workload specs (Table 5), scaling laws, and job streams.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hh"
#include "util/online_stats.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {
namespace {

// -------------------------------------------------------- ServiceScaling

TEST(ServiceScaling, CpuBoundIsInverseLinear)
{
    const ServiceScaling law = ServiceScaling::cpuBound();
    EXPECT_DOUBLE_EQ(law.factor(1.0), 1.0);
    EXPECT_DOUBLE_EQ(law.factor(0.5), 2.0);
    EXPECT_DOUBLE_EQ(law.factor(0.25), 4.0);
}

TEST(ServiceScaling, MemoryBoundIgnoresFrequency)
{
    const ServiceScaling law = ServiceScaling::memoryBound();
    EXPECT_DOUBLE_EQ(law.factor(1.0), 1.0);
    EXPECT_DOUBLE_EQ(law.factor(0.2), 1.0);
}

TEST(ServiceScaling, SubLinearExponents)
{
    EXPECT_DOUBLE_EQ(ServiceScaling::mixed().factor(0.25), 2.0);
    EXPECT_NEAR(ServiceScaling::mostlyMemory().factor(0.5),
                std::pow(0.5, -0.2), 1e-12);
}

TEST(ServiceScaling, DomainValidated)
{
    EXPECT_THROW(ServiceScaling::cpuBound().factor(0.0), ConfigError);
    EXPECT_THROW(ServiceScaling::cpuBound().factor(1.1), ConfigError);
    EXPECT_THROW((ServiceScaling{1.5}.factor(0.5)), ConfigError);
}

// ------------------------------------------------- WorkloadSpec (Table 5)

TEST(WorkloadSpec, Table5Values)
{
    const WorkloadSpec dns = dnsWorkload();
    EXPECT_DOUBLE_EQ(dns.interArrivalMean, 1.1);
    EXPECT_DOUBLE_EQ(dns.interArrivalCv, 1.1);
    EXPECT_DOUBLE_EQ(dns.serviceMean, 0.194);
    EXPECT_DOUBLE_EQ(dns.serviceCv, 1.0);

    const WorkloadSpec mail = mailWorkload();
    EXPECT_DOUBLE_EQ(mail.interArrivalMean, 0.206);
    EXPECT_DOUBLE_EQ(mail.serviceCv, 3.6);

    const WorkloadSpec google = googleWorkload();
    EXPECT_DOUBLE_EQ(google.interArrivalMean, 319e-6);
    EXPECT_DOUBLE_EQ(google.serviceMean, 4.2e-3);
}

TEST(WorkloadSpec, NativeUtilization)
{
    EXPECT_NEAR(dnsWorkload().nativeUtilization(), 0.194 / 1.1, 1e-12);
    // Google's native load in Table 5 is oversubscribed (ρ > 1); the
    // evaluation always rescales to a target utilization.
    EXPECT_GT(googleWorkload().nativeUtilization(), 1.0);
}

TEST(WorkloadSpec, InterArrivalMeanAtUtilization)
{
    const WorkloadSpec dns = dnsWorkload();
    EXPECT_NEAR(dns.interArrivalMeanAt(0.1), 1.94, 1e-12);
    EXPECT_THROW(dns.interArrivalMeanAt(0.0), ConfigError);
    EXPECT_THROW(dns.interArrivalMeanAt(1.0), ConfigError);
}

TEST(WorkloadSpec, DistributionsMatchSpec)
{
    const WorkloadSpec mail = mailWorkload();
    const auto service = mail.makeService();
    EXPECT_DOUBLE_EQ(service->mean(), 0.092);
    EXPECT_NEAR(service->cv(), 3.6, 1e-9);

    const auto arrivals = mail.makeInterArrival(0.3);
    EXPECT_NEAR(arrivals->mean(), 0.092 / 0.3, 1e-12);
    EXPECT_NEAR(arrivals->cv(), 1.9, 1e-9);
}

TEST(WorkloadSpec, IdealizedForcesPoissonExponential)
{
    const WorkloadSpec ideal = mailWorkload().idealized();
    EXPECT_DOUBLE_EQ(ideal.interArrivalCv, 1.0);
    EXPECT_DOUBLE_EQ(ideal.serviceCv, 1.0);
    EXPECT_DOUBLE_EQ(ideal.serviceMean, 0.092);
    EXPECT_EQ(ideal.makeService()->name(), "exponential");
}

// ------------------------------------------------------------ job streams

TEST(JobStream, GeneratesRequestedCountInOrder)
{
    Rng rng(1);
    ExponentialDist gaps(1.0), sizes(0.2);
    const auto jobs = generateJobs(rng, gaps, sizes, 500);
    ASSERT_EQ(jobs.size(), 500u);
    for (std::size_t i = 1; i < jobs.size(); ++i)
        ASSERT_GE(jobs[i].arrival, jobs[i - 1].arrival);
    EXPECT_GT(jobs.front().arrival, 0.0);
}

TEST(JobStream, DurationBoundsArrivals)
{
    Rng rng(2);
    ExponentialDist gaps(0.1), sizes(0.02);
    const auto jobs = generateJobsForDuration(rng, gaps, sizes, 50.0);
    ASSERT_FALSE(jobs.empty());
    EXPECT_LT(jobs.back().arrival, 50.0);
    // ~500 expected arrivals.
    EXPECT_NEAR(static_cast<double>(jobs.size()), 500.0, 100.0);
}

TEST(JobStream, WorkloadJobsHitTargetUtilization)
{
    Rng rng(3);
    const auto jobs =
        generateWorkloadJobs(rng, dnsWorkload(), 0.3, 20000);
    const double load = offeredLoad(jobs, jobs.back().arrival);
    EXPECT_NEAR(load, 0.3, 0.02);
}

TEST(JobStream, TraceDrivenFollowsUtilization)
{
    // Two-level trace: 30 minutes at 0.1 then 30 at 0.5.
    std::vector<double> levels(60, 0.1);
    for (std::size_t i = 30; i < 60; ++i)
        levels[i] = 0.5;
    const UtilizationTrace trace("steps", levels);

    Rng rng(4);
    const auto jobs = generateTraceDrivenJobs(rng, dnsWorkload(), trace);

    double low_demand = 0.0, high_demand = 0.0;
    for (const Job &job : jobs) {
        (job.arrival < 1800.0 ? low_demand : high_demand) += job.size;
    }
    EXPECT_NEAR(low_demand / 1800.0, 0.1, 0.03);
    EXPECT_NEAR(high_demand / 1800.0, 0.5, 0.06);
}

TEST(JobStream, TraceDrivenCoversWholeTrace)
{
    const UtilizationTrace trace("flat", std::vector<double>(10, 0.2));
    Rng rng(5);
    const auto jobs = generateTraceDrivenJobs(rng, dnsWorkload(), trace);
    ASSERT_FALSE(jobs.empty());
    EXPECT_LT(jobs.back().arrival, trace.duration());
    EXPECT_GT(jobs.back().arrival, trace.duration() * 0.8);
}

TEST(JobStream, OfferedLoadValidatesWindow)
{
    EXPECT_THROW(offeredLoad({}, 0.0), ConfigError);
}

TEST(JobStream, ServiceSizesAreStationaryAcrossTrace)
{
    // The paper: only inter-arrivals are modulated; the service
    // distribution must not depend on the utilization level.
    std::vector<double> levels(40, 0.05);
    for (std::size_t i = 20; i < 40; ++i)
        levels[i] = 0.6;
    const UtilizationTrace trace("steps", levels);
    Rng rng(6);
    const auto jobs = generateTraceDrivenJobs(rng, dnsWorkload(), trace);

    OnlineStats low, high;
    for (const Job &job : jobs)
        (job.arrival < 1200.0 ? low : high).add(job.size);
    ASSERT_GT(low.count(), 50u);
    ASSERT_GT(high.count(), 500u);
    EXPECT_NEAR(low.mean() / high.mean(), 1.0, 0.2);
}

} // namespace
} // namespace sleepscale
