/**
 * @file
 * Tests for the streaming JobSource API: source determinism, clone
 * fidelity, combinator semantics, CSV replay validation, the registry,
 * and streaming-vs-materialized equivalence across the engines.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/predictor.hh"
#include "core/runtime.hh"
#include "farm/farm_runtime.hh"
#include "multicore/multicore_sim.hh"
#include "power/platform_model.hh"
#include "util/error.hh"
#include "workload/job_source.hh"
#include "workload/job_stream.hh"

namespace sleepscale {
namespace {

std::vector<Job>
drain(JobSource &source, std::size_t max_jobs = SIZE_MAX)
{
    return materialize(source, max_jobs);
}

void
expectSameJobs(const std::vector<Job> &a, const std::vector<Job> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].arrival, b[i].arrival) << "job " << i;
        ASSERT_EQ(a[i].size, b[i].size) << "job " << i;
        ASSERT_EQ(a[i].classId, b[i].classId) << "job " << i;
    }
}

/** Run fn and return the ConfigError message it must raise. */
template <typename Fn>
std::string
configErrorOf(Fn &&fn)
{
    try {
        fn();
    } catch (const ConfigError &error) {
        return error.what();
    }
    ADD_FAILURE() << "expected a ConfigError";
    return "";
}

std::string
writeTempCsv(const std::string &name, const std::string &content)
{
    const std::string path = "/tmp/sleepscale_" + name;
    std::ofstream out(path);
    out << content;
    return path;
}

// ------------------------------------------------------------ determinism

TEST(JobSourceDeterminism, SameSeedSameStream)
{
    const WorkloadSpec dns = dnsWorkload();
    StationarySource a(dns, 0.3, 42);
    StationarySource b(dns, 0.3, 42);
    expectSameJobs(drain(a, 500), drain(b, 500));
}

TEST(JobSourceDeterminism, ResetReproducesTheStream)
{
    const WorkloadSpec mail = mailWorkload();
    BurstySource source(mail, 0.2, 5.0, 60.0, 600.0, 7);
    const auto first = drain(source, 400);
    source.reset(7);
    expectSameJobs(first, drain(source, 400));
}

TEST(JobSourceDeterminism, CloneContinuesBitIdentically)
{
    const UtilizationTrace trace("flat", std::vector<double>(20, 0.3));
    TraceDrivenSource source(dnsWorkload(), trace, 9);
    drain(source, 100); // advance mid-stream
    const auto copy = source.clone();
    expectSameJobs(drain(source), drain(*copy));
}

TEST(JobSourceDeterminism, CloneAtStartMatchesWholeStream)
{
    const UtilizationTrace trace("flat", std::vector<double>(10, 0.4));
    TraceDrivenSource source(mailWorkload(), trace, 3);
    const auto copy = source.clone();
    expectSameJobs(drain(source), drain(*copy));
}

TEST(JobSourceDeterminism, TraceSourceMatchesMaterializedGenerator)
{
    // The legacy generator is now an adapter over the source; pin the
    // bit-equality so existing seeds keep their published results.
    const UtilizationTrace trace("flat", std::vector<double>(15, 0.25));
    Rng rng(21);
    const auto generated =
        generateTraceDrivenJobs(rng, dnsWorkload(), trace);
    TraceDrivenSource source(dnsWorkload(), trace, 21);
    expectSameJobs(generated, drain(source));
}

TEST(JobSourceDeterminism, ArrivalsAreNonDecreasing)
{
    const WorkloadSpec google = googleWorkload();
    BurstySource source(google, 0.3, 8.0, 30.0, 300.0, 5);
    Job previous{}, job;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(source.next(job));
        ASSERT_GE(job.arrival, previous.arrival);
        previous = job;
    }
}

// ----------------------------------------------------------- combinators

TEST(JobSourceCombinators, MergeOrdersByArrival)
{
    std::vector<std::unique_ptr<JobSource>> parts;
    parts.push_back(std::make_unique<StationarySource>(
        dnsWorkload(), 0.2, 1));
    parts.push_back(std::make_unique<StationarySource>(
        dnsWorkload(), 0.2, 2));
    auto merged = merge(std::move(parts));
    Job previous{}, job;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_TRUE(merged->next(job));
        ASSERT_GE(job.arrival, previous.arrival);
        previous = job;
    }
}

TEST(JobSourceCombinators, MergeTieBreaksByLowestIndex)
{
    // Two deterministic streams with identical arrival instants but
    // distinguishable sizes: the lower-index source must always come
    // out first on a tie.
    std::vector<Job> first, second;
    for (int i = 1; i <= 50; ++i) {
        first.push_back({static_cast<double>(i), 1.0});
        second.push_back({static_cast<double>(i), 2.0});
    }
    auto merged = merge(std::make_unique<VectorSource>(first),
                        std::make_unique<VectorSource>(second));
    Job job;
    for (int i = 1; i <= 50; ++i) {
        ASSERT_TRUE(merged->next(job));
        EXPECT_EQ(job.arrival, static_cast<double>(i));
        EXPECT_EQ(job.size, 1.0) << "tie must yield source 0 first";
        ASSERT_TRUE(merged->next(job));
        EXPECT_EQ(job.arrival, static_cast<double>(i));
        EXPECT_EQ(job.size, 2.0);
    }
    EXPECT_FALSE(merged->next(job));
}

TEST(JobSourceCombinators, MergeIsCloneDeterministic)
{
    std::vector<std::unique_ptr<JobSource>> parts;
    parts.push_back(std::make_unique<StationarySource>(
        mailWorkload(), 0.3, 4));
    parts.push_back(std::make_unique<BurstySource>(
        mailWorkload(), 0.1, 4.0, 60.0, 300.0, 5));
    auto merged = merge(std::move(parts));
    drain(*merged, 250); // advance
    const auto copy = merged->clone();
    expectSameJobs(drain(*merged, 500), drain(*copy, 500));
}

TEST(JobSourceCombinators, ScaleMultipliesRateAndSizes)
{
    std::vector<Job> jobs{{1.0, 0.2}, {2.0, 0.4}, {4.0, 0.8}};
    auto scaled = scale(std::make_unique<VectorSource>(jobs), 2.0, 0.5);
    const auto out = drain(*scaled);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0].arrival, 0.5);
    EXPECT_DOUBLE_EQ(out[2].arrival, 2.0);
    EXPECT_DOUBLE_EQ(out[0].size, 0.1);
    EXPECT_DOUBLE_EQ(out[2].size, 0.4);
}

TEST(JobSourceCombinators, TakeAndUntilBoundTheStream)
{
    StationarySource base(dnsWorkload(), 0.3, 6);
    auto bounded = take(base.clone(), 123);
    EXPECT_EQ(drain(*bounded).size(), 123u);

    auto timed = until(base.clone(), 50.0);
    const auto jobs = drain(*timed);
    ASSERT_FALSE(jobs.empty());
    EXPECT_LT(jobs.back().arrival, 50.0);
    Job job;
    EXPECT_FALSE(timed->next(job));
}

TEST(JobSourceCombinators, ThinKeepsTheRequestedFraction)
{
    auto thinned =
        thin(take(std::make_unique<StationarySource>(dnsWorkload(), 0.3,
                                                     8),
                  20000),
             0.25, 77);
    const auto jobs = drain(*thinned);
    EXPECT_NEAR(static_cast<double>(jobs.size()), 5000.0, 300.0);
}

TEST(JobSourceCombinators, DiurnalModulatesTheRate)
{
    // A day-period modulation over a constant stream: the busy half
    // must hold more arrivals than the quiet half.
    auto modulated = diurnal(
        take(std::make_unique<StationarySource>(dnsWorkload(), 0.3, 10),
             40000),
        0.8, 86400.0, 0.0);
    const auto jobs = drain(*modulated);
    ASSERT_GT(jobs.size(), 1000u);
    const double half = 43200.0;
    std::size_t early = 0;
    for (const Job &job : jobs)
        early += job.arrival < half ? 1 : 0;
    // sin() is positive over the first half-period: more arrivals land
    // there than in the second half.
    EXPECT_GT(early, jobs.size() - early);
    Job previous{}, job2;
    auto again = diurnal(
        take(std::make_unique<StationarySource>(dnsWorkload(), 0.3, 10),
             5000),
        0.8);
    while (again->next(job2)) {
        ASSERT_GE(job2.arrival, previous.arrival);
        previous = job2;
    }
}

TEST(JobSourceCombinators, Validation)
{
    EXPECT_THROW(merge({}), ConfigError);
    EXPECT_THROW(scale(std::make_unique<StationarySource>(dnsWorkload(),
                                                          0.3, 1),
                       0.0),
                 ConfigError);
    EXPECT_THROW(thin(std::make_unique<StationarySource>(dnsWorkload(),
                                                         0.3, 1),
                      1.5, 1),
                 ConfigError);
    EXPECT_THROW(diurnal(std::make_unique<StationarySource>(
                             dnsWorkload(), 0.3, 1),
                         1.0),
                 ConfigError);
    EXPECT_THROW(BurstySource(dnsWorkload(), 0.3, 0.5, 60.0, 600.0, 1),
                 ConfigError);
}

// ---------------------------------------------------------------- replay

TEST(ReplaySource, RoundTripsAJobLog)
{
    const std::string path = writeTempCsv(
        "replay_ok.csv", "arrival,size,class\n"
                         "0.5,0.2,0\n"
                         "1.25,0.1,2\n"
                         "1.25,0.3,1\n"
                         "4,0.05,0\n");
    ReplaySource source(path);
    const auto jobs = drain(source);
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.5);
    EXPECT_DOUBLE_EQ(jobs[1].arrival, 1.25);
    EXPECT_EQ(jobs[1].classId, 2);
    EXPECT_EQ(jobs[2].classId, 1);
    EXPECT_DOUBLE_EQ(jobs[3].size, 0.05);
    std::remove(path.c_str());
}

TEST(ReplaySource, HeaderIsOptionalAndClassDefaultsToZero)
{
    const std::string path =
        writeTempCsv("replay_bare.csv", "1.0,0.5\n2.0,0.25\n");
    ReplaySource source(path);
    const auto jobs = drain(source);
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].classId, 0);
    std::remove(path.c_str());
}

TEST(ReplaySource, AcceptsCrlfAndFilesWithoutTrailingNewline)
{
    const std::string path = writeTempCsv(
        "replay_crlf.csv", "arrival,size\r\n1.0,0.5\r\n2.0,0.25");
    ReplaySource source(path);
    Job job;
    ASSERT_TRUE(source.next(job));
    const auto copy = source.clone(); // mid-stream, CRLF offsets
    expectSameJobs(drain(source), drain(*copy));

    // Clone taken after the final unterminated line is exhausted.
    source.reset(0);
    const auto all = drain(source);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_DOUBLE_EQ(all[1].size, 0.25);
    const auto spent = source.clone();
    EXPECT_FALSE(spent->next(job));
    std::remove(path.c_str());
}

TEST(ReplaySource, ResetAndCloneReplayTheFile)
{
    const std::string path = writeTempCsv(
        "replay_reset.csv", "arrival,size\n1,0.1\n2,0.2\n3,0.3\n");
    ReplaySource source(path);
    const auto all = drain(source);
    source.reset(99); // seed ignored
    expectSameJobs(all, drain(source));

    source.reset(0);
    Job job;
    ASSERT_TRUE(source.next(job)); // consume one, then clone
    const auto copy = source.clone();
    expectSameJobs(drain(source), drain(*copy));
    std::remove(path.c_str());
}

TEST(ReplaySource, RejectsMalformedRowsWithLineNumbers)
{
    const auto expectError = [](const std::string &name,
                                const std::string &content,
                                const std::string &needle) {
        const std::string path = writeTempCsv(name, content);
        const std::string message = configErrorOf([&] {
            ReplaySource source(path);
            Job job;
            while (source.next(job)) {
            }
        });
        EXPECT_NE(message.find(needle), std::string::npos)
            << "message was: " << message;
        std::remove(path.c_str());
    };

    expectError("replay_nan.csv", "arrival,size\n1,0.5\nnan,0.5\n",
                "line 3");
    expectError("replay_neg.csv", "arrival,size\n1,-0.5\n", "negative");
    expectError("replay_ooo.csv", "arrival,size\n5,0.1\n2,0.1\n",
                "out-of-order");
    expectError("replay_text.csv", "arrival,size\n1,0.1\noops,0.1\n",
                "non-numeric");
    expectError("replay_width.csv", "arrival,size\n1,0.1,2,9\n",
                "line 2");
    expectError("replay_inf.csv", "arrival,size\ninf,0.1\n",
                "non-finite");
}

TEST(ReplaySource, MissingFileFailsFast)
{
    EXPECT_THROW(ReplaySource("/nonexistent/jobs.csv"), ConfigError);
}

// Regression: the terminated and unterminated spellings of the same
// log must replay identically through every observable path — drain,
// reset, and clones taken at every position, including right after the
// final (unterminated) row was consumed.
TEST(ReplaySource, TrailingPartialLineIsConsistentWithTerminatedTwin)
{
    const std::string body = "arrival,size\n1,0.1\n2,0.2\n3,0.3";
    const std::string with_nl =
        writeTempCsv("replay_nl.csv", body + "\n");
    const std::string without_nl = writeTempCsv("replay_nonl.csv", body);

    ReplaySource a(with_nl);
    ReplaySource b(without_nl);
    const auto all_a = drain(a);
    expectSameJobs(all_a, drain(b));
    ASSERT_EQ(all_a.size(), 3u);

    // Clones at every position, including after the final row.
    for (std::size_t consumed = 0; consumed <= 3; ++consumed) {
        a.reset(0);
        b.reset(0);
        Job job;
        for (std::size_t i = 0; i < consumed; ++i) {
            ASSERT_TRUE(a.next(job));
            ASSERT_TRUE(b.next(job));
        }
        expectSameJobs(drain(*a.clone()), drain(*b.clone()));
    }

    // Clones taken after exhaustion stay exhausted on both twins.
    a.reset(0);
    b.reset(0);
    drain(a);
    drain(b);
    Job job;
    EXPECT_FALSE(a.clone()->next(job));
    EXPECT_FALSE(b.clone()->next(job));

    std::remove(with_nl.c_str());
    std::remove(without_nl.c_str());
}

TEST(ReplaySource, SkipsCommentLinesAnywhere)
{
    const std::string path = writeTempCsv(
        "replay_comments.csv", "# exported job log\n"
                               "# schema v2\n"
                               "arrival,size\n"
                               "1,0.1\n"
                               "# mid-file remark\n"
                               "2,0.2\n");
    ReplaySource source(path);
    const auto jobs = drain(source);
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_DOUBLE_EQ(jobs[1].arrival, 2.0);
    std::remove(path.c_str());
}

// Regression: a log that yields nothing must say so instead of
// silently streaming zero jobs into a day-long run.
TEST(ReplaySource, EmptyCommentOnlyAndHeaderOnlyLogsFailFast)
{
    const auto expectNoRows = [](const std::string &name,
                                 const std::string &content) {
        const std::string path = writeTempCsv(name, content);
        const std::string message = configErrorOf([&] {
            ReplaySource source(path);
            Job job;
            while (source.next(job)) {
            }
        });
        EXPECT_NE(message.find("no data rows"), std::string::npos)
            << name << " message was: " << message;
        std::remove(path.c_str());
    };

    expectNoRows("replay_empty.csv", "");
    expectNoRows("replay_blank.csv", "\n\n");
    expectNoRows("replay_comment_only.csv", "# nothing here\n# at all\n");
    expectNoRows("replay_header_nl.csv", "arrival,size\n");
    expectNoRows("replay_header_nonl.csv", "arrival,size");
    expectNoRows("replay_header_comments.csv",
                 "# log\narrival,size\n# empty\n");
}

// -------------------------------------------------------------- registry

TEST(JobSourceRegistry, BuildsEveryRegisteredSource)
{
    JobSourceConfig config;
    config.workload = dnsWorkload();
    config.trace = UtilizationTrace("flat",
                                    std::vector<double>(10, 0.2));
    config.utilization = 0.25;
    config.seed = 3;

    for (const std::string &name : {std::string("trace"),
                                    std::string("stationary"),
                                    std::string("bursty")}) {
        const auto source = makeJobSource(name, config);
        Job job;
        ASSERT_TRUE(source->next(job)) << name;
        EXPECT_GT(job.arrival, 0.0) << name;
    }
}

TEST(JobSourceRegistry, UnknownNamesAndMissingParamsFailFast)
{
    JobSourceConfig config;
    config.workload = dnsWorkload();
    EXPECT_THROW(makeJobSource("psychic", config), ConfigError);
    EXPECT_THROW(makeJobSource("trace", config), ConfigError);
    EXPECT_THROW(makeJobSource("replay", config), ConfigError);
}

// -------------------------------------- streaming == materialized engines

TEST(StreamingEquivalence, SingleServerMatchesVectorRunOnTable5)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const UtilizationTrace trace("flat", std::vector<double>(20, 0.25));
    for (const std::string &name : {std::string("dns"),
                                    std::string("mail"),
                                    std::string("google")}) {
        const WorkloadSpec workload = workloadByName(name);
        TraceDrivenSource source(workload, trace, 13);
        const auto jobs = materialize(*source.clone());

        RuntimeConfig config;
        config.epochMinutes = 5;
        const SleepScaleRuntime runtime(xeon, workload, config);
        NaivePreviousPredictor p1(0.25), p2(0.25);
        const RuntimeResult streamed = runtime.run(source, trace, p1);
        const RuntimeResult materialized =
            runtime.run(jobs, trace, p2);

        ASSERT_EQ(streamed.epochs.size(), materialized.epochs.size())
            << name;
        EXPECT_EQ(streamed.total.completions,
                  materialized.total.completions)
            << name;
        EXPECT_EQ(streamed.total.energy, materialized.total.energy)
            << name;
        EXPECT_EQ(streamed.meanResponse(),
                  materialized.meanResponse())
            << name;
        for (std::size_t e = 0; e < streamed.epochs.size(); ++e) {
            EXPECT_EQ(streamed.epochs[e].policy.frequency,
                      materialized.epochs[e].policy.frequency)
                << name << " epoch " << e;
        }
    }
}

TEST(StreamingEquivalence, FarmMatchesVectorRun)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    const UtilizationTrace trace("flat", std::vector<double>(20, 0.2));

    const auto source = makeFarmSource(dns, trace, 4, 31);
    const auto jobs = materialize(*source->clone());

    FarmRuntimeConfig config;
    config.farmSize = 4;
    config.dispatcher = "JSQ";
    config.perServer.epochMinutes = 5;
    const FarmRuntime runtime(xeon, dns, config);
    NaivePreviousPredictor p1(0.2), p2(0.2);
    const FarmRuntimeResult streamed =
        runtime.run(*source, trace, p1);
    const FarmRuntimeResult materialized =
        runtime.run(jobs, trace, p2);

    EXPECT_EQ(streamed.total.completions,
              materialized.total.completions);
    EXPECT_EQ(streamed.total.energy, materialized.total.energy);
    EXPECT_EQ(streamed.meanResponse(), materialized.meanResponse());
    ASSERT_EQ(streamed.jobsPerServer.size(),
              materialized.jobsPerServer.size());
    for (std::size_t i = 0; i < streamed.jobsPerServer.size(); ++i)
        EXPECT_EQ(streamed.jobsPerServer[i],
                  materialized.jobsPerServer[i]);
}

TEST(StreamingEquivalence, MulticoreMatchesVectorEvaluation)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const WorkloadSpec dns = dnsWorkload();
    StationarySource source(dns, 0.3, 17);
    const auto jobs = materialize(*source.clone(), 20000);

    MulticorePolicy policy;
    policy.frequency = 0.8;
    const MulticoreStats streamed = evaluateMulticorePolicy(
        xeon, dns.scaling, 4, policy, source, 20000);
    const MulticoreStats materialized = evaluateMulticorePolicy(
        xeon, dns.scaling, 4, policy, jobs);
    EXPECT_EQ(streamed.completions, materialized.completions);
    EXPECT_EQ(streamed.energy, materialized.energy);
    EXPECT_EQ(streamed.response.mean(), materialized.response.mean());
}

} // namespace
} // namespace sleepscale
