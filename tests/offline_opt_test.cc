/**
 * @file
 * Oracle-anchored property tests for the offline-optimal solver
 * (src/analytic/offline_opt.hh, docs/OFFLINE_OPT.md).
 *
 * The FPTAS is validated three ways: against the exact Pareto-frontier
 * solver on randomized small instances (the (1 + epsilon) contract),
 * against closed-form degenerate instances computed independently here,
 * and against the simulator itself — no simulated strategy may ever
 * spend less energy than the oracle's lower bound on the same job log,
 * swept over the Table 5 workloads and the SS / pruned / poet
 * strategies through the end-to-end `reportRegret()` path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "analytic/offline_opt.hh"
#include "core/policy_space.hh"
#include "experiment/runner.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "util/error.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {
namespace {

/** Small random instance generator shared by the property tests.
 * Sizes up to ~2x the xeon wake latencies and gaps up to 2 s keep the
 * instances in the regime where sleep-state choice actually matters. */
std::vector<Job>
randomJobs(std::mt19937_64 &rng, std::size_t max_jobs)
{
    std::uniform_real_distribution<double> gap(0.0, 2.0);
    std::uniform_real_distribution<double> size(0.0, 0.4);
    std::vector<Job> jobs;
    const std::size_t n = 1 + rng() % max_jobs;
    double t = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        t += gap(rng);
        jobs.push_back({t, size(rng), 0});
    }
    return jobs;
}

/** A reduced grid keeps the exact solver's frontier small enough for
 * hundreds of randomized cases. */
std::vector<double>
coarseGrid()
{
    return PolicySpace::frequencyGrid(0.4, 1.0, 0.2);
}

TEST(OfflineOptProperty, FptasBracketsExactOnRandomInstances)
{
    const PlatformModel xeon = PlatformModel::xeon();
    std::mt19937_64 rng(20140614);
    OfflineOptOptions options;
    options.epsilon = 0.05;
    options.frequencies = coarseGrid();
    const OfflineOptimal oracle(xeon, ServiceScaling::cpuBound(),
                                options);

    std::uniform_real_distribution<double> tail(0.0, 2.0);
    for (int trial = 0; trial < 200; ++trial) {
        const auto jobs = randomJobs(rng, 8);
        const double horizon = jobs.back().arrival + tail(rng);
        const auto instance =
            OfflineOptInstance::fromJobs(jobs, horizon);
        const OfflineOptResult exact = oracle.solveExact(instance);
        const OfflineOptResult fptas = oracle.solve(instance);

        // Certified lower bound ...
        EXPECT_LE(fptas.energy, exact.energy + 1e-6)
            << "trial " << trial;
        // ... within (1 + epsilon) of the optimum ...
        EXPECT_LE(exact.energy,
                  (1.0 + options.epsilon) * fptas.energy + 1e-6)
            << "trial " << trial;
        // ... and the achievable upper bound really is above it.
        EXPECT_GE(fptas.upperBound, exact.energy - 1e-6)
            << "trial " << trial;
        EXPECT_LE(fptas.epsilonEffective, options.epsilon + 1e-9)
            << "trial " << trial;
    }
}

TEST(OfflineOptProperty, LowerBoundTightensAsEpsilonHalves)
{
    const PlatformModel xeon = PlatformModel::xeon();
    std::mt19937_64 rng(5);
    for (int trial = 0; trial < 40; ++trial) {
        const auto jobs = randomJobs(rng, 6);
        const auto instance =
            OfflineOptInstance::fromJobs(jobs,
                                         jobs.back().arrival + 1.0);
        double previous = -std::numeric_limits<double>::infinity();
        bool chain_clean = true;
        // Halvings keep the delta-grids nested, which is what makes
        // the lower bound monotone; unrelated epsilons need not be.
        for (double epsilon : {0.2, 0.1, 0.05, 0.025}) {
            OfflineOptOptions options;
            options.epsilon = epsilon;
            options.frequencies = coarseGrid();
            const OfflineOptimal oracle(
                xeon, ServiceScaling::cpuBound(), options);
            const OfflineOptResult result = oracle.solve(instance);
            // Coarsening/merging break grid nesting; on instances
            // this small they never trigger, but guard anyway so the
            // test cannot rot into flakiness.
            if (result.coarsenings > 0 || result.mergeDebt > 0.0) {
                chain_clean = false;
                break;
            }
            EXPECT_GE(result.energy, previous - 1e-9)
                << "trial " << trial << " epsilon " << epsilon;
            previous = result.energy;
        }
        EXPECT_TRUE(chain_clean) << "trial " << trial;
    }
}

TEST(OfflineOptDegenerate, EmptyLogBillsTheHorizonAtTheIdleFloor)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const OfflineOptimal oracle(xeon, ServiceScaling::cpuBound());
    const auto instance = OfflineOptInstance::fromJobs({}, 3600.0);

    double floor = std::numeric_limits<double>::infinity();
    for (LowPowerState state : allLowPowerStates)
        floor = std::min(floor, oracle.relaxedIdlePower(state));

    const OfflineOptResult fptas = oracle.solve(instance);
    const OfflineOptResult exact = oracle.solveExact(instance);
    EXPECT_NEAR(fptas.energy, 3600.0 * floor, 1e-6);
    EXPECT_NEAR(exact.energy, 3600.0 * floor, 1e-6);
    EXPECT_NEAR(fptas.upperBound, fptas.energy, 1e-6);
}

TEST(OfflineOptDegenerate, SingleJobMatchesDirectEnumeration)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const OfflineOptimal oracle(xeon, ServiceScaling::cpuBound());
    const double arrival = 12.0;
    const double size = 0.25;
    const double horizon = 40.0;
    const auto instance = OfflineOptInstance::fromJobs(
        {{arrival, size, 0}}, horizon);

    double floor = std::numeric_limits<double>::infinity();
    for (LowPowerState state : allLowPowerStates)
        floor = std::min(floor, oracle.relaxedIdlePower(state));

    // Leading gap (with a wake into the job), the busy period at the
    // best frequency, and the trailing gap at the idle floor.
    double best = std::numeric_limits<double>::infinity();
    for (double f : oracle.frequencies()) {
        const double active = xeon.activePower(f);
        const double service =
            size * ServiceScaling::cpuBound().factor(f);
        const double completion = arrival + service;
        const double energy = oracle.gapCost(arrival, active) +
                              service * active +
                              (horizon - completion) * floor;
        best = std::min(best, energy);
    }

    const OfflineOptResult exact = oracle.solveExact(instance);
    EXPECT_NEAR(exact.energy, best, 1e-6);
    const OfflineOptResult fptas = oracle.solve(instance);
    EXPECT_LE(fptas.energy, exact.energy + 1e-6);
    EXPECT_LE(exact.energy, fptas.upperBound + 1e-6);
}

TEST(OfflineOptDegenerate, GaplessLogDecomposesPerJob)
{
    // All arrivals at t = 0: no idle gap ever opens before the
    // backlog drains, so the optimum decomposes into independent
    // per-job trade-offs between busy energy and displaced trailing
    // idle at the floor power.
    const PlatformModel xeon = PlatformModel::xeon();
    const OfflineOptimal oracle(xeon, ServiceScaling::cpuBound());
    const std::vector<Job> jobs = {
        {0.0, 0.3, 0}, {0.0, 0.1, 0}, {0.0, 0.45, 0}};
    const double horizon = 30.0;
    const auto instance = OfflineOptInstance::fromJobs(jobs, horizon);

    double floor = std::numeric_limits<double>::infinity();
    for (LowPowerState state : allLowPowerStates)
        floor = std::min(floor, oracle.relaxedIdlePower(state));

    double expected = horizon * floor;
    for (const Job &job : jobs) {
        double best = std::numeric_limits<double>::infinity();
        for (double f : oracle.frequencies()) {
            const double service =
                job.size *
                ServiceScaling::cpuBound().factor(f);
            best = std::min(best,
                            service * (xeon.activePower(f) - floor));
        }
        expected += best;
    }

    const OfflineOptResult exact = oracle.solveExact(instance);
    EXPECT_NEAR(exact.energy, expected, 1e-6);
    EXPECT_TRUE(std::all_of(exact.gapStates.begin(),
                            exact.gapStates.end(),
                            [](LowPowerState s) {
                                return s == allLowPowerStates[0];
                            }));
}

TEST(OfflineOptDegenerate, DeadlinesOnlyRaiseTheRelaxedBound)
{
    const PlatformModel xeon = PlatformModel::xeon();
    const OfflineOptimal oracle(xeon, ServiceScaling::cpuBound());
    std::mt19937_64 rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        const auto jobs = randomJobs(rng, 6);
        const double horizon = jobs.back().arrival + 2.0;
        const OfflineOptResult relaxed =
            oracle.solveExact(OfflineOptInstance::fromJobs(jobs, horizon));
        // A slack of one max-size service at the slowest frequency is
        // tight enough to force fast frequencies on some instances.
        const OfflineOptResult constrained = oracle.solveExact(
            OfflineOptInstance::fromJobs(jobs, horizon, 0.5));
        EXPECT_GE(constrained.energy, relaxed.energy - 1e-9)
            << "trial " << trial;
    }
}

TEST(OfflineOptDegenerate, RejectsMalformedInstances)
{
    EXPECT_THROW(OfflineOptInstance::fromJobs(
                     {{2.0, 0.1, 0}, {1.0, 0.1, 0}}, 10.0),
                 ConfigError);
    EXPECT_THROW(OfflineOptInstance::fromJobs({{1.0, -0.1, 0}}, 10.0),
                 ConfigError);
    EXPECT_THROW(OfflineOptInstance::fromJobs({{5.0, 0.1, 0}}, 1.0),
                 ConfigError);
}

/**
 * End-to-end lower-bound invariant: drive the real runtime over the
 * Table 5 workloads with each strategy and require the reported
 * regret to be non-negative — i.e. no simulated strategy ever beats
 * the oracle on the log it just served. A short 2AM-4AM slice keeps
 * the oracle solve sub-second while still spanning thousands of jobs.
 */
struct RegretCase
{
    const char *workload;
    const char *strategy;
    bool pruned;
    /** Arrival-rate thinning: the mail and google workloads pack far
     * more jobs into the slice than dns; thinning keeps every oracle
     * solve sub-second without changing what is being asserted. */
    double rate_scale;
};

class OfflineOptRegret : public ::testing::TestWithParam<RegretCase>
{
};

TEST_P(OfflineOptRegret, SimulatedEnergyNeverBeatsTheOracle)
{
    const RegretCase c = GetParam();
    const ScenarioSpec spec =
        ScenarioBuilder(std::string("regret ") + c.workload + " " +
                        c.strategy + (c.pruned ? "-pruned" : ""))
            .workload(c.workload)
            .strategy(c.strategy)
            .prunedSearch(c.pruned)
            .trace("es")
            .traceDays(1)
            .traceSeed(20140614)
            .window(2, 4)
            .epochMinutes(5)
            .predictor("LC")
            .sourceRateScale(c.rate_scale)
            .reportRegret()
            .optEpsilon(0.1)
            .seed(20140614)
            .build();
    const ScenarioResult result = ExperimentRunner::runScenario(spec);
    EXPECT_GT(result.extra("offline_opt_energy"), 0.0);
    EXPECT_GE(result.extra("regret_pct"), 0.0)
        << c.workload << "/" << c.strategy;
}

INSTANTIATE_TEST_SUITE_P(
    Table5, OfflineOptRegret,
    ::testing::Values(RegretCase{"dns", "SS", false, 1.0},
                      RegretCase{"dns", "SS", true, 1.0},
                      RegretCase{"dns", "poet", false, 1.0},
                      RegretCase{"mail", "SS", false, 0.3},
                      RegretCase{"mail", "SS", true, 0.3},
                      RegretCase{"mail", "poet", false, 0.3},
                      RegretCase{"google", "SS", false, 0.05},
                      RegretCase{"google", "SS", true, 0.05},
                      RegretCase{"google", "poet", false, 0.05}),
    [](const ::testing::TestParamInfo<RegretCase> &info) {
        return std::string(info.param.workload) + "_" +
               info.param.strategy +
               (info.param.pruned ? "_pruned" : "");
    });

} // namespace
} // namespace sleepscale
