/**
 * @file
 * Tests for utilization traces and the Figure 7 synthetic generators.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "util/error.hh"
#include "util/online_stats.hh"
#include "workload/utilization_trace.hh"

namespace sleepscale {
namespace {

TEST(UtilizationTrace, BasicAccessors)
{
    UtilizationTrace trace("t", {0.1, 0.2, 0.3});
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_DOUBLE_EQ(trace.at(1), 0.2);
    EXPECT_DOUBLE_EQ(trace.duration(), 180.0);
    EXPECT_NEAR(trace.meanUtilization(), 0.2, 1e-12);
    EXPECT_DOUBLE_EQ(trace.peakUtilization(), 0.3);
}

TEST(UtilizationTrace, RejectsOutOfRangeValues)
{
    EXPECT_THROW(UtilizationTrace("bad", {-0.1}), ConfigError);
    EXPECT_THROW(UtilizationTrace("bad", {1.0}), ConfigError);
}

TEST(UtilizationTrace, AtValidatesIndex)
{
    UtilizationTrace trace("t", {0.1});
    EXPECT_THROW(trace.at(1), ConfigError);
}

TEST(UtilizationTrace, SliceExtractsRange)
{
    UtilizationTrace trace("t", {0.1, 0.2, 0.3, 0.4});
    const UtilizationTrace part = trace.slice(1, 3);
    ASSERT_EQ(part.size(), 2u);
    EXPECT_DOUBLE_EQ(part.at(0), 0.2);
    EXPECT_THROW(trace.slice(2, 2), ConfigError);
    EXPECT_THROW(trace.slice(0, 9), ConfigError);
}

TEST(UtilizationTrace, DailyWindowSelectsHours)
{
    // Two days of minutes, value encodes the hour bucket.
    std::vector<double> values;
    for (int day = 0; day < 2; ++day)
        for (int m = 0; m < 24 * 60; ++m)
            values.push_back(m / 60 < 12 ? 0.1 : 0.9);
    UtilizationTrace trace("t", values);

    const UtilizationTrace morning = trace.dailyWindow(0, 12);
    EXPECT_EQ(morning.size(), 2u * 12 * 60);
    EXPECT_DOUBLE_EQ(morning.peakUtilization(), 0.1);

    const UtilizationTrace paper_window = trace.dailyWindow(2, 20);
    EXPECT_EQ(paper_window.size(), 2u * 18 * 60);
}

TEST(UtilizationTrace, SaveLoadRoundTrip)
{
    UtilizationTrace trace("t", {0.25, 0.5});
    const std::string path = "/tmp/sleepscale_trace_test.csv";
    trace.save(path);
    const UtilizationTrace loaded = UtilizationTrace::load(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_DOUBLE_EQ(loaded.at(0), 0.25);
    EXPECT_DOUBLE_EQ(loaded.at(1), 0.5);
    std::remove(path.c_str());
}

TEST(UtilizationTrace, LoadAcceptsCrlfLineEndings)
{
    const std::string path = "/tmp/sleepscale_trace_crlf.csv";
    {
        std::ofstream out(path);
        out << "minute,utilization\r\n0,0.25\r\n1,0.5\r\n";
    }
    const UtilizationTrace loaded = UtilizationTrace::load(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_DOUBLE_EQ(loaded.at(1), 0.5);
    std::remove(path.c_str());
}

TEST(UtilizationTrace, LoadRejectsMalformedCsvWithLineNumbers)
{
    const auto expectLoadError = [](const std::string &content,
                                    const std::string &needle) {
        const std::string path = "/tmp/sleepscale_trace_bad.csv";
        {
            std::ofstream out(path);
            out << content;
        }
        std::string message;
        try {
            UtilizationTrace::load(path);
            ADD_FAILURE() << "expected a ConfigError for: " << content;
        } catch (const ConfigError &error) {
            message = error.what();
        }
        EXPECT_NE(message.find(needle), std::string::npos)
            << "message was: " << message;
        std::remove(path.c_str());
    };

    expectLoadError("minute,utilization\n0,0.2\n1,nan\n",
                    "line 3");
    expectLoadError("minute,utilization\n0,-0.1\n", "outside [0, 1)");
    expectLoadError("minute,utilization\n0,1.5\n", "outside [0, 1)");
    expectLoadError("minute,utilization\n0,0.2\n0,0.3\n",
                    "out-of-order");
    expectLoadError("minute,utilization\n5,0.2\n3,0.3\n",
                    "out-of-order");
    expectLoadError("minute,utilization\n0,oops\n", "non-numeric");
    expectLoadError("minute,load\n0,0.2\n", "no 'utilization' column");
    expectLoadError("minute,utilization\n0\n", "expected 2 cells");

    // Degenerate files get actionable messages instead of a silently
    // empty trace or a confusing header complaint.
    expectLoadError("", "no header row");
    expectLoadError("\n\n", "no header row");
    expectLoadError("# only a comment\n# and another\n", "no header row");
    expectLoadError("minute,utilization\n", "no data rows");
    expectLoadError("minute,utilization", "no data rows");
    expectLoadError("# saved trace\nminute,utilization\n# empty\n",
                    "no data rows");
}

TEST(UtilizationTrace, LoadSkipsCommentLines)
{
    const std::string path = "/tmp/sleepscale_trace_comments.csv";
    {
        std::ofstream out(path);
        out << "# exported by trace tooling\n"
               "minute,utilization\n"
               "0,0.25\n"
               "# midnight marker\n"
               "1,0.5\n";
    }
    const UtilizationTrace loaded = UtilizationTrace::load(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_DOUBLE_EQ(loaded.at(1), 0.5);
    std::remove(path.c_str());
}

// ----------------------------------------------------- synthetic traces

TEST(SynthTraces, FileServerShape)
{
    const UtilizationTrace fs = synthFileServerTrace(3, 42);
    EXPECT_EQ(fs.size(), 3u * 24 * 60);
    // The paper's file server stays within roughly [0, 0.2].
    EXPECT_LE(fs.peakUtilization(), 0.20);
    double min = 1.0;
    for (double u : fs.values())
        min = std::min(min, u);
    EXPECT_GE(min, 0.02);
    EXPECT_LT(fs.meanUtilization(), 0.2);
}

TEST(SynthTraces, EmailStoreCoversWideRange)
{
    const UtilizationTrace es = synthEmailStoreTrace(3, 42);
    EXPECT_EQ(es.size(), 3u * 24 * 60);
    // The paper: utilization ranges roughly 0.1 to 0.9 across the day.
    EXPECT_GE(es.peakUtilization(), 0.85);
    EXPECT_LT(es.meanUtilization(), 0.6);
}

TEST(SynthTraces, EmailStoreBackupSurges)
{
    const UtilizationTrace es = synthEmailStoreTrace(2, 7);
    // Mean inside the backup window (8PM-2AM) far exceeds the daytime
    // mean — the paper's "abrupt surges towards the end of each day".
    OnlineStats backup, daytime;
    for (std::size_t i = 0; i < es.size(); ++i) {
        const auto hour = (i % (24 * 60)) / 60;
        if (hour >= 20 || hour < 2)
            backup.add(es.at(i));
        else
            daytime.add(es.at(i));
    }
    EXPECT_GT(backup.mean(), daytime.mean() + 0.2);
}

TEST(SynthTraces, DeterministicGivenSeed)
{
    const UtilizationTrace a = synthEmailStoreTrace(1, 5);
    const UtilizationTrace b = synthEmailStoreTrace(1, 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_DOUBLE_EQ(a.at(i), b.at(i));
}

TEST(SynthTraces, SeedsProduceDifferentTraces)
{
    const UtilizationTrace a = synthFileServerTrace(1, 5);
    const UtilizationTrace b = synthFileServerTrace(1, 6);
    int differing = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        differing += a.at(i) != b.at(i);
    EXPECT_GT(differing, 1000);
}

TEST(SynthTraces, PaperEvaluationWindowIsExtractable)
{
    const UtilizationTrace es = synthEmailStoreTrace(1, 1);
    const UtilizationTrace window = es.dailyWindow(2, 20);
    EXPECT_EQ(window.size(), 18u * 60);
    // Outside the backup window utilization should be daytime-like.
    EXPECT_LT(window.meanUtilization(), es.meanUtilization() + 0.05);
}

TEST(SynthTraces, RejectZeroDays)
{
    EXPECT_THROW(synthFileServerTrace(0, 1), ConfigError);
    EXPECT_THROW(synthEmailStoreTrace(0, 1), ConfigError);
}

} // namespace
} // namespace sleepscale
