/**
 * @file
 * Tests for policy-space construction and the policy manager.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/policy_manager.hh"
#include "core/policy_space.hh"
#include "power/platform_model.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "workload/job_stream.hh"

namespace sleepscale {
namespace {

// ------------------------------------------------------------ the space

TEST(PolicySpace, FrequencyGridIncludesEndpoints)
{
    const auto grid = PolicySpace::frequencyGrid(0.3, 1.0, 0.1);
    ASSERT_GE(grid.size(), 2u);
    EXPECT_DOUBLE_EQ(grid.front(), 0.3);
    EXPECT_DOUBLE_EQ(grid.back(), 1.0);
    for (std::size_t i = 1; i < grid.size(); ++i)
        EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(PolicySpace, StandardCrossesFiveStates)
{
    const PolicySpace space = PolicySpace::standard();
    EXPECT_EQ(space.plans.size(), 5u);
    EXPECT_EQ(space.size(),
              space.plans.size() * space.frequencies.size());
}

TEST(PolicySpace, SinglePlanRestriction)
{
    const PolicySpace space = PolicySpace::singlePlan(
        SleepPlan::immediate(LowPowerState::C3S0Idle));
    ASSERT_EQ(space.plans.size(), 1u);
    EXPECT_EQ(space.plans[0].deepest(), LowPowerState::C3S0Idle);
}

TEST(PolicySpace, GridValidation)
{
    EXPECT_THROW(PolicySpace::frequencyGrid(0.0, 1.0, 0.1), ConfigError);
    EXPECT_THROW(PolicySpace::frequencyGrid(0.5, 1.2, 0.1), ConfigError);
    EXPECT_THROW(PolicySpace::frequencyGrid(0.5, 1.0, 0.0), ConfigError);
}

// ---------------------------------------------------------- the manager

class ManagerTest : public ::testing::Test
{
  protected:
    PlatformModel xeon = PlatformModel::xeon();

    std::vector<Job>
    poissonLog(double rho, double service_mean, std::size_t n,
               std::uint64_t seed = 42) const
    {
        Rng rng(seed);
        ExponentialDist gaps(service_mean / rho);
        ExponentialDist sizes(service_mean);
        return generateJobs(rng, gaps, sizes, n);
    }
};

TEST_F(ManagerTest, PicksFeasibleMinimumPower)
{
    // DNS-like at rho = 0.1 with a loose budget: the manager must find a
    // policy well below race-to-halt power.
    const auto log = poissonLog(0.1, 0.194, 20000);
    const QosConstraint qos =
        QosConstraint::fromBaselineMean(0.8, 0.194);
    const PolicyManager manager(
        xeon, ServiceScaling::cpuBound(),
        PolicySpace::allStates(PolicySpace::frequencyGrid(0.15, 1.0,
                                                          0.05)),
        qos);
    const PolicyDecision decision = manager.selectFromLog(log);

    EXPECT_TRUE(decision.feasible);
    EXPECT_LE(decision.predictedMetric, qos.budget());
    EXPECT_GT(decision.evaluated, 0u);

    // Compare against race-to-halt into C6S0(i).
    const PolicyEvaluation r2h =
        evaluatePolicy(xeon, ServiceScaling::cpuBound(),
                       raceToHalt(LowPowerState::C6S0Idle), log);
    EXPECT_LT(decision.predictedPower, r2h.avgPower());
}

TEST_F(ManagerTest, RestrictedSpaceOnlyReturnsItsPlan)
{
    const auto log = poissonLog(0.2, 0.194, 5000);
    const PolicyManager manager(
        xeon, ServiceScaling::cpuBound(),
        PolicySpace::singlePlan(
            SleepPlan::immediate(LowPowerState::C3S0Idle)),
        QosConstraint::fromBaselineMean(0.8, 0.194));
    const PolicyDecision decision = manager.selectFromLog(log);
    EXPECT_EQ(decision.policy.plan.deepest(), LowPowerState::C3S0Idle);
}

TEST_F(ManagerTest, InfeasibleBudgetFallsBackToFastest)
{
    // An impossible budget (far below one service time): no candidate is
    // feasible, the manager returns the lowest-latency one.
    const auto log = poissonLog(0.3, 0.194, 5000);
    const PolicyManager manager(xeon, ServiceScaling::cpuBound(),
                                PolicySpace::standard(),
                                QosConstraint::meanBudget(1e-6));
    const PolicyDecision decision = manager.selectFromLog(log);
    EXPECT_FALSE(decision.feasible);
    // Best effort should run at or near full speed.
    EXPECT_GT(decision.policy.frequency, 0.9);
}

TEST_F(ManagerTest, UnstableFrequenciesSkipped)
{
    // rho = 0.6: frequencies at or below 0.6 are unstable and must not
    // be selected even though the grid contains them.
    const auto log = poissonLog(0.6, 0.194, 20000);
    const PolicyManager manager(
        xeon, ServiceScaling::cpuBound(),
        PolicySpace::allStates(PolicySpace::frequencyGrid(0.2, 1.0,
                                                          0.05)),
        QosConstraint::fromBaselineMean(0.8, 0.194));
    const PolicyDecision decision = manager.selectFromLog(log);
    EXPECT_GT(decision.policy.frequency, 0.6);
}

TEST_F(ManagerTest, TighterQosRaisesFrequency)
{
    const double mu = 1.0 / 0.194;
    const double lambda = 0.4 * mu;
    const PolicySpace space = PolicySpace::allStates(
        PolicySpace::frequencyGrid(0.2, 1.0, 0.01));

    const PolicyManager loose(xeon, ServiceScaling::cpuBound(), space,
                              QosConstraint::fromBaselineMean(0.8,
                                                              0.194));
    const PolicyManager tight(xeon, ServiceScaling::cpuBound(), space,
                              QosConstraint::fromBaselineMean(0.6,
                                                              0.194));
    const PolicyDecision d_loose = loose.selectAnalytic(lambda, mu);
    const PolicyDecision d_tight = tight.selectAnalytic(lambda, mu);
    EXPECT_GE(d_tight.policy.frequency, d_loose.policy.frequency);
}

TEST_F(ManagerTest, AnalyticAndSimulatedSelectionAgree)
{
    // For a Poisson/exponential workload the log-driven and closed-form
    // selections must agree on the state and closely on frequency
    // (paper observation 3 in Section 5.1.2).
    const double rho = 0.3;
    const double service_mean = 0.194;
    const double mu = 1.0 / service_mean;
    const auto log = poissonLog(rho, service_mean, 60000, 7);

    const PolicySpace space = PolicySpace::allStates(
        PolicySpace::frequencyGrid(0.2, 1.0, 0.02));
    const QosConstraint qos =
        QosConstraint::fromBaselineMean(0.8, service_mean);
    const PolicyManager manager(xeon, ServiceScaling::cpuBound(), space,
                                qos);

    const PolicyDecision sim = manager.selectFromLog(log);
    const PolicyDecision ana = manager.selectAnalytic(rho * mu, mu);

    EXPECT_EQ(sim.policy.plan.deepest(), ana.policy.plan.deepest());
    EXPECT_NEAR(sim.policy.frequency, ana.policy.frequency, 0.08);
    EXPECT_NEAR(sim.predictedPower, ana.predictedPower,
                0.05 * ana.predictedPower);
}

TEST_F(ManagerTest, LogHelpersComputeLoadAndSize)
{
    const std::vector<Job> log = {{1.0, 0.2}, {2.0, 0.4}};
    EXPECT_NEAR(PolicyManager::logOfferedLoad(log), 0.6 / 2.0, 1e-12);
    EXPECT_NEAR(PolicyManager::logMeanSize(log), 0.3, 1e-12);
    EXPECT_THROW(PolicyManager::logOfferedLoad({{1.0, 0.1}}),
                 ConfigError);
}

TEST_F(ManagerTest, ValidationRejectsBadSpace)
{
    PolicySpace empty;
    EXPECT_THROW(PolicyManager(xeon, ServiceScaling::cpuBound(), empty,
                               QosConstraint::meanBudget(1.0)),
                 ConfigError);

    PolicySpace bad_freq = PolicySpace::standard();
    bad_freq.frequencies.push_back(1.5);
    EXPECT_THROW(PolicyManager(xeon, ServiceScaling::cpuBound(), bad_freq,
                               QosConstraint::meanBudget(1.0)),
                 ConfigError);
}

TEST_F(ManagerTest, MemoryBoundPrefersLowestFrequency)
{
    // Lesson 6: for memory-bound work the optimal speed is the lowest.
    const double mu = 1.0 / 0.194;
    const PolicyManager manager(
        xeon, ServiceScaling::memoryBound(),
        PolicySpace::allStates(PolicySpace::frequencyGrid(0.2, 1.0,
                                                          0.05)),
        QosConstraint::fromBaselineMean(0.8, 0.194));
    const PolicyDecision decision =
        manager.selectAnalytic(0.1 * mu, mu);
    EXPECT_NEAR(decision.policy.frequency, 0.2, 1e-9);
}

} // namespace
} // namespace sleepscale
