#include "control/power_perf_controller.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hh"

namespace sleepscale {

namespace {

/** Design utilization cap the stability floor enforces: below the
 * paper's f >= rho + 0.01 hard wall, above any sane QoS operating
 * point, so the floor only engages against gross underprovisioning. */
constexpr double stabilityCap = 0.95;

/** Two grid frequencies closer than this are the same P-state. */
constexpr double gridEpsilon = 1e-9;

} // namespace

PowerPerfController::PowerPerfController(const PlatformModel &platform,
                                         ServiceScaling scaling,
                                         const PolicySpace &space,
                                         const ControllerConfig &config)
    : _scaling(scaling), _pole(config.pole)
{
    fatalIf(space.frequencies.empty(),
            "PowerPerfController: empty frequency grid");
    fatalIf(space.plans.empty(),
            "PowerPerfController: no candidate sleep plans");
    fatalIf(_pole < 0.0 || _pole >= 1.0,
            "PowerPerfController: pole must be in [0, 1)");

    _grid = space.frequencies;
    std::sort(_grid.begin(), _grid.end());
    _grid.erase(std::unique(_grid.begin(), _grid.end(),
                            [](double a, double b) {
                                return std::abs(a - b) < gridEpsilon;
                            }),
                _grid.end());

    _speedups.reserve(_grid.size());
    for (double f : _grid)
        _speedups.push_back(_scaling.factor(_grid.front()) /
                            _scaling.factor(f));

    // Sort candidate plans by how long their deepest state takes to
    // wake; translate() walks this order to find the deepest plan an
    // allowance admits. Stable sort keeps the space's declaration
    // order authoritative among equal-latency plans.
    std::vector<std::pair<double, SleepPlan>> by_wake;
    by_wake.reserve(space.plans.size());
    for (const SleepPlan &plan : space.plans)
        by_wake.emplace_back(platform.wakeLatency(plan.deepest()), plan);
    std::stable_sort(by_wake.begin(), by_wake.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    for (auto &[latency, plan] : by_wake) {
        _wakeLatencies.push_back(latency);
        _plansByWake.push_back(std::move(plan));
    }

    _uMin = 1.0;
    _uMax = _speedups.back();
    _u = _uMax; // Start fast; the integrator relaxes toward cheap.
}

double
PowerPerfController::speedupOf(double frequency) const
{
    const double f = std::clamp(frequency, _grid.front(), _grid.back());
    return _scaling.factor(_grid.front()) / _scaling.factor(f);
}

bool
PowerPerfController::saturatedHigh() const
{
    return _u >= _uMax - gridEpsilon;
}

void
PowerPerfController::step(double error, double base_speed)
{
    fatalIf(!(base_speed > 0.0),
            "PowerPerfController::step: base speed must be > 0");
    _u += (1.0 - _pole) * error / base_speed;
    _u = std::clamp(_u, _uMin, _uMax);
}

double
PowerPerfController::frequencyOf(double u) const
{
    if (u <= _speedups.front())
        return _grid.front();
    if (u >= _speedups.back())
        return _grid.back();
    // Find the grid segment bracketing the requested speedup and
    // interpolate linearly in frequency.
    const auto upper =
        std::upper_bound(_speedups.begin(), _speedups.end(), u);
    const std::size_t hi =
        static_cast<std::size_t>(upper - _speedups.begin());
    const std::size_t lo = hi - 1;
    const double span = _speedups[hi] - _speedups[lo];
    if (span < gridEpsilon)
        return _grid[lo];
    const double frac = (u - _speedups[lo]) / span;
    return _grid[lo] + frac * (_grid[hi] - _grid[lo]);
}

double
PowerPerfController::stabilityFloor(double load) const
{
    const double rho = std::clamp(load, 0.0, 1.0);
    if (rho <= 0.0)
        return _grid.front();
    // Utilization at f is rho * factor(f); keep it under the cap. For
    // a memory-bound law frequency cannot shed load, so the floor is
    // moot and the QoS feedback owns the response.
    if (_scaling.exponent < gridEpsilon)
        return _grid.front();
    const double f = std::pow(rho / stabilityCap,
                              1.0 / _scaling.exponent);
    return std::clamp(f, _grid.front(), _grid.back());
}

const SleepPlan &
PowerPerfController::planFor(double wake_allowance) const
{
    // Deepest candidate whose wake latency fits; the shallowest plan
    // (index 0 after the sort) is always admissible as the fallback.
    std::size_t pick = 0;
    for (std::size_t i = 0; i < _wakeLatencies.size(); ++i) {
        if (_wakeLatencies[i] <= wake_allowance)
            pick = i;
    }
    return _plansByWake[pick];
}

Policy
PowerPerfController::translate(double load_estimate, double wake_allowance)
{
    double f_target = frequencyOf(_u);
    f_target = std::max(f_target, stabilityFloor(load_estimate));

    // Error-diffusion between the two adjacent grid frequencies: carry
    // the fractional part across epochs so the average applied
    // frequency tracks the continuous target.
    double f_pick;
    if (f_target <= _grid.front() + gridEpsilon) {
        f_pick = _grid.front();
        _accumulator = 0.0; // Anti-windup at the grid edge.
    } else if (f_target >= _grid.back() - gridEpsilon) {
        f_pick = _grid.back();
        _accumulator = 0.0;
    } else {
        const auto upper =
            std::upper_bound(_grid.begin(), _grid.end(), f_target);
        const std::size_t hi =
            static_cast<std::size_t>(upper - _grid.begin());
        const std::size_t lo = hi - 1;
        const double frac =
            (f_target - _grid[lo]) / (_grid[hi] - _grid[lo]);
        _accumulator += frac;
        if (_accumulator >= 1.0) {
            _accumulator -= 1.0;
            f_pick = _grid[hi];
        } else {
            f_pick = _grid[lo];
        }
    }

    Policy policy;
    policy.frequency = f_pick;
    policy.plan = planFor(wake_allowance);
    return policy;
}

void
PowerPerfController::reset()
{
    _u = _uMax;
    _accumulator = 0.0;
}

} // namespace sleepscale
