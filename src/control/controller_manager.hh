/**
 * @file
 * The O(1) per-epoch decision path: Kalman filters + xup control
 * behind the EpochDecider interface (docs/CONTROL.md).
 *
 * Where PolicyManager simulates the full (plan, frequency) cross
 * product against a rescaled job log (~ms per decision),
 * ControllerManager folds three scalars — measured offered load, the
 * measured QoS statistic, and the mean job size — into two Kalman
 * filters and one integrator step (~µs per decision, independent of
 * epoch length, log size, and policy-space size). That constant cost
 * is what makes per-server control at 10k-server farm sizes feasible;
 * bench/bench_controller.cc measures both claims.
 */

#ifndef SLEEPSCALE_CONTROL_CONTROLLER_MANAGER_HH
#define SLEEPSCALE_CONTROL_CONTROLLER_MANAGER_HH

#include <vector>

#include "control/controller_config.hh"
#include "control/kalman_estimator.hh"
#include "control/power_perf_controller.hh"
#include "core/epoch_decider.hh"
#include "core/policy_space.hh"
#include "core/qos.hh"
#include "power/platform_model.hh"
#include "sim/policy.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/**
 * Feedback-control EpochDecider (strategy "poet").
 *
 * Copy-constructible so fuzz tests can clone mid-run state; copies
 * share the (unowned) platform model. Same thread-safety contract as
 * PolicyManager: one instance per concurrent control loop.
 */
class ControllerManager : public EpochDecider
{
  public:
    /**
     * @param platform Power model (not owned; must outlive the
     *        manager).
     * @param scaling Service-time scaling law of the hosted workload.
     * @param space Candidate plans and frequencies the controller's
     *        output is clamped to.
     * @param qos Constraint the feedback loop regulates toward.
     * @param config Filter and controller knobs.
     * @param initial Policy in force before the first decision.
     */
    ControllerManager(const PlatformModel &platform,
                      ServiceScaling scaling, const PolicySpace &space,
                      const QosConstraint &qos,
                      const ControllerConfig &config,
                      const Policy &initial);

    bool needsLog() const override;

    PolicyDecision decide(const EpochObservation &observation,
                          const std::vector<Job> &log) override;

    GuardedDecision decideGuarded(const EpochObservation &observation,
                                  const std::vector<Job> &log,
                                  const Policy &fallback) override;

    void reset() override;

    /** The QoS constraint the loop regulates toward. */
    const QosConstraint &qos() const { return _qos; }

    /** Kalman filter over measured offered load (h = 1). */
    const KalmanEstimator &loadFilter() const { return _loadFilter; }

    /** Kalman filter over base speed, observed through the applied
     * xup (h = speedup of the policy the epoch ran under). */
    const KalmanEstimator &perfFilter() const { return _perfFilter; }

    /** The xup integrator and translator. */
    const PowerPerfController &controller() const { return _xup; }

  private:
    /** Mean-power estimate of running `policy` at offered load
     * `load` — reported as PolicyDecision::predictedPower for parity
     * with the search path's telemetry, not used for control. */
    double estimatePower(const Policy &policy, double load) const;

    const PlatformModel *_platform;
    ServiceScaling _scaling;
    QosConstraint _qos;
    ControllerConfig _config;
    Policy _initial;
    Policy _current;
    KalmanEstimator _loadFilter;
    KalmanEstimator _perfFilter;
    PowerPerfController _xup;
    unsigned _epochsSinceStep = 0;
};

} // namespace sleepscale

#endif // SLEEPSCALE_CONTROL_CONTROLLER_MANAGER_HH
