#include "control/kalman_estimator.hh"

#include <cmath>

#include "util/error.hh"

namespace sleepscale {

KalmanEstimator::KalmanEstimator(double process_noise,
                                 double measurement_noise,
                                 double initial_estimate,
                                 double initial_variance)
    : _q(process_noise), _r(measurement_noise),
      _initialEstimate(initial_estimate),
      _initialVariance(initial_variance), _xHat(initial_estimate),
      _p(initial_variance)
{
    fatalIf(!(_q >= 0.0),
            "KalmanEstimator: process noise must be >= 0");
    fatalIf(!(_r > 0.0),
            "KalmanEstimator: measurement noise must be > 0");
    fatalIf(!(_p >= 0.0),
            "KalmanEstimator: initial variance must be >= 0");
}

double
KalmanEstimator::update(double measurement, double observation_gain)
{
    const double h = observation_gain;
    const double x_minus = _xHat;
    const double p_minus = _p + _q;
    _k = p_minus * h / (h * h * p_minus + _r);
    _xHat = x_minus + _k * (measurement - h * x_minus);
    _p = (1.0 - _k * h) * p_minus;
    return _xHat;
}

void
KalmanEstimator::reset()
{
    _xHat = _initialEstimate;
    _p = _initialVariance;
    _k = 0.0;
}

double
KalmanEstimator::steadyStateGain(double process_noise,
                                 double measurement_noise)
{
    fatalIf(!(process_noise >= 0.0 && measurement_noise > 0.0),
            "KalmanEstimator::steadyStateGain: need Q >= 0, R > 0");
    const double q = process_noise;
    const double r = measurement_noise;
    const double p_minus = q / 2.0 + std::sqrt(q * q / 4.0 + q * r);
    return p_minus / (p_minus + r);
}

} // namespace sleepscale
