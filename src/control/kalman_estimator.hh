/**
 * @file
 * Scalar Kalman filter over per-epoch measurements.
 *
 * The estimation shape follows POET's filter_state (SNIPPETS.md): a
 * one-dimensional state x with identity dynamics, observed each epoch
 * through a known (possibly time-varying) gain h as y = h·x + noise.
 * One update() is five multiply-adds — the filter is what makes the
 * controller's per-epoch cost O(1) regardless of how many jobs the
 * epoch logged. Equations and tuning guidance: docs/CONTROL.md.
 */

#ifndef SLEEPSCALE_CONTROL_KALMAN_ESTIMATOR_HH
#define SLEEPSCALE_CONTROL_KALMAN_ESTIMATOR_HH

namespace sleepscale {

/**
 * One-state Kalman filter:
 *
 *   predict:  x⁻ = x̂,  p⁻ = p + Q
 *   gain:     k  = p⁻·h / (h²·p⁻ + R)
 *   correct:  x̂  = x⁻ + k·(y − h·x⁻),  p = (1 − k·h)·p⁻
 *
 * Deterministic: the trajectory is a pure function of the constructor
 * arguments and the update() sequence.
 */
class KalmanEstimator
{
  public:
    /**
     * @param process_noise Process-noise variance Q (>= 0).
     * @param measurement_noise Measurement-noise variance R (> 0).
     * @param initial_estimate Prior state estimate x̂₀.
     * @param initial_variance Prior error variance p₀ (>= 0); large
     *        values make the first measurements dominate the prior.
     */
    KalmanEstimator(double process_noise, double measurement_noise,
                    double initial_estimate = 0.0,
                    double initial_variance = 1.0);

    /**
     * Fold in one measurement y observed through gain h and return the
     * updated estimate.
     *
     * @param measurement The observation y.
     * @param observation_gain The known gain h relating state to
     *        observation (1 for direct measurements).
     */
    double update(double measurement, double observation_gain = 1.0);

    /** Current state estimate x̂. */
    double estimate() const { return _xHat; }

    /** Kalman gain k of the most recent update (0 before any). */
    double gain() const { return _k; }

    /** Current error variance p. */
    double variance() const { return _p; }

    /** Restore the freshly constructed prior. */
    void reset();

    /**
     * Closed-form steady-state Kalman gain for constant h = 1: with
     * p⁻_ss = Q/2 + sqrt(Q²/4 + Q·R) the positive root of the scalar
     * Riccati recurrence, k_ss = p⁻_ss / (p⁻_ss + R). The unit-test
     * oracle the iterated filter must converge to.
     */
    static double steadyStateGain(double process_noise,
                                  double measurement_noise);

  private:
    double _q;
    double _r;
    double _initialEstimate;
    double _initialVariance;
    double _xHat;
    double _p;
    double _k = 0.0;
};

} // namespace sleepscale

#endif // SLEEPSCALE_CONTROL_KALMAN_ESTIMATOR_HH
