/**
 * @file
 * Knobs of the O(1) feedback-control decision path (docs/CONTROL.md).
 *
 * A leaf header so core/runtime.hh can embed the configuration without
 * pulling the controller implementation into every runtime user.
 */

#ifndef SLEEPSCALE_CONTROL_CONTROLLER_CONFIG_HH
#define SLEEPSCALE_CONTROL_CONTROLLER_CONFIG_HH

namespace sleepscale {

/**
 * Configuration of the POET-style Kalman + xup controller registered
 * as strategy "poet". Defaults are the tuned values the bench suite
 * and docs/CONTROL.md describe; the CLI exposes them as
 * --controller-q/-r/-pole/-period.
 */
struct ControllerConfig
{
    /** Kalman process-noise variance Q (> 0) of both filters. Larger
     * values track load shifts faster at the cost of noise. */
    double processNoise = 1e-4;

    /** Kalman measurement-noise variance R (> 0). Larger values trust
     * each epoch's sample less and smooth harder. */
    double measurementNoise = 1e-2;

    /** Z-plane pole of the integral xup controller, in [0, 1). 0 is
     * deadbeat (close the whole error every control step); values
     * toward 1 respond more slowly but damp oscillation. */
    double pole = 0.0;

    /** Control period as a multiple of the runtime epoch (>= 1). The
     * filters update every epoch; the xup integrator steps only every
     * periodEpochs-th epoch. */
    unsigned periodEpochs = 1;
};

} // namespace sleepscale

#endif // SLEEPSCALE_CONTROL_CONTROLLER_CONFIG_HH
