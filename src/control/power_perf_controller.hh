/**
 * @file
 * The xup integrator and operating-point translator of the O(1)
 * control path (docs/CONTROL.md).
 *
 * Follows POET's calc_xup_state / apply loop (SNIPPETS.md): a
 * pole-placement integral controller accumulates the speedup ("xup")
 * needed to close the measured performance error, and a translation
 * stage maps that continuous speedup onto the platform's discrete
 * (frequency, sleep plan) pairs — interpolating between the two
 * adjacent grid frequencies with cumulative-error (error-diffusion)
 * feedback so the *time-average* applied speedup matches the request,
 * with anti-windup clamping at the grid edges.
 */

#ifndef SLEEPSCALE_CONTROL_POWER_PERF_CONTROLLER_HH
#define SLEEPSCALE_CONTROL_POWER_PERF_CONTROLLER_HH

#include <vector>

#include "control/controller_config.hh"
#include "core/policy_space.hh"
#include "power/platform_model.hh"
#include "sim/policy.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/**
 * Integral xup controller plus grid translation. Value-semantic (the
 * platform's wake latencies are captured at construction), so clone
 * and reset determinism are trivial to test.
 */
class PowerPerfController
{
  public:
    /**
     * @param platform Wake latencies of the candidate sleep plans are
     *        read here at construction (not retained).
     * @param scaling Service-time scaling law (defines the
     *        frequency-to-speedup map).
     * @param space Candidate plans and the frequency grid the
     *        translation clamps to.
     * @param config Pole placement (the other knobs live in the
     *        Kalman filters).
     */
    PowerPerfController(const PlatformModel &platform,
                        ServiceScaling scaling, const PolicySpace &space,
                        const ControllerConfig &config);

    /** Speedup of running at `frequency` relative to the slowest grid
     * frequency: factor(f_min) / factor(f). */
    double speedupOf(double frequency) const;

    /** Lowest reachable speedup (1 by construction). */
    double xupMin() const { return _uMin; }

    /** Speedup of the fastest grid frequency. */
    double xupMax() const { return _uMax; }

    /** Current integrator state, in [xupMin, xupMax]. */
    double xup() const { return _u; }

    /** The integrator is pinned at xupMax (anti-windup engaged). */
    bool saturatedHigh() const;

    /**
     * One integral control step: u += (1 − pole) · error / base_speed,
     * clamped to the reachable speedup range (anti-windup).
     *
     * @param error Performance error e = goal_speed − measured_speed.
     * @param base_speed Kalman-filtered base speed b̂ (> 0) relating
     *        speedup to delivered performance: speed ≈ b̂ · xup.
     */
    void step(double error, double base_speed);

    /**
     * Translate the current xup into a concrete policy.
     *
     * The continuous target frequency (the xup's grid interpolation,
     * raised to the stability floor implied by the load estimate) is
     * error-diffused between its two adjacent grid frequencies; the
     * sleep plan is the deepest candidate whose wake latency fits the
     * allowance.
     *
     * @param load_estimate Offered load at f = 1 the epoch must stay
     *        stable under, in [0, 1].
     * @param wake_allowance Largest tolerable wake latency, seconds.
     */
    Policy translate(double load_estimate, double wake_allowance);

    /** Restore the freshly constructed integrator state. */
    void reset();

  private:
    /** Continuous frequency delivering speedup `u` (grid-clamped). */
    double frequencyOf(double u) const;

    /** Lowest frequency keeping utilization under the design cap at
     * the given offered load. */
    double stabilityFloor(double load) const;

    /** Deepest plan whose wake latency fits the allowance. */
    const SleepPlan &planFor(double wake_allowance) const;

    ServiceScaling _scaling;
    double _pole;
    std::vector<double> _grid;     ///< Ascending unique frequencies.
    std::vector<double> _speedups; ///< speedupOf(_grid[i]), ascending.
    /** Candidate plans sorted by deepest-state wake latency. */
    std::vector<SleepPlan> _plansByWake;
    std::vector<double> _wakeLatencies; ///< Parallel to _plansByWake.
    double _uMin;
    double _uMax;
    double _u;
    double _accumulator = 0.0; ///< Error-diffusion residual.
};

} // namespace sleepscale

#endif // SLEEPSCALE_CONTROL_POWER_PERF_CONTROLLER_HH
