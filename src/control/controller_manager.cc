#include "control/controller_manager.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace sleepscale {

namespace {

/** The loop regulates the measured QoS statistic toward this fraction
 * of the budget. Regulating at the budget itself would violate it on
 * every noise excursion, and the response-vs-load curve is convex, so
 * symmetric per-epoch oscillation around the goal pools to a mean
 * ABOVE it — the margin absorbs both effects, buying the headroom the
 * search path gets from picking the cheapest *strictly* feasible
 * candidate. */
constexpr double goalFraction = 0.7;

/** Fraction of the current QoS slack a sleep transition may spend on
 * wake latency. */
constexpr double wakeBudgetFraction = 0.5;

/** A plan's wake latency must also fit within one expected idle gap
 * times this factor, or deep sleep burns more than it saves. */
constexpr double wakeIdleFraction = 1.0;

/** Floor on the measured QoS statistic, seconds — guards the 1/x. */
constexpr double minQosSeconds = 1e-9;

/** Floor on the filtered base speed, 1/seconds. */
constexpr double minBaseSpeed = 1e-9;

/** Prior variances that make the first measurement dominate the
 * uninformed prior (the filters are primed by data, not by guesses
 * about the workload's scale). */
constexpr double loadPriorVariance = 1e2;
constexpr double perfPriorVariance = 1e8;

} // namespace

ControllerManager::ControllerManager(const PlatformModel &platform,
                                     ServiceScaling scaling,
                                     const PolicySpace &space,
                                     const QosConstraint &qos,
                                     const ControllerConfig &config,
                                     const Policy &initial)
    : _platform(&platform), _scaling(scaling), _qos(qos),
      _config(config), _initial(initial), _current(initial),
      _loadFilter(config.processNoise, config.measurementNoise, 0.0,
                  loadPriorVariance),
      _perfFilter(config.processNoise, config.measurementNoise, 1.0,
                  perfPriorVariance),
      _xup(platform, scaling, space, config)
{
    fatalIf(!(_config.processNoise > 0.0),
            "ControllerManager: process noise must be > 0");
    fatalIf(!(_config.measurementNoise > 0.0),
            "ControllerManager: measurement noise must be > 0");
    fatalIf(_config.periodEpochs == 0,
            "ControllerManager: control period must be >= 1 epoch");
}

bool
ControllerManager::needsLog() const
{
    return false;
}

PolicyDecision
ControllerManager::decide(const EpochObservation &observation,
                          const std::vector<Job> &)
{
    PolicyDecision decision;
    if (!observation.hasMeasurement) {
        // Cold start or an idle epoch: no QoS sample exists, so hold
        // the policy in force rather than steer on nothing.
        decision.policy = _current;
        decision.feasible = true;
        return decision;
    }

    // Filter the offered load (h = 1: load is measured at f = 1).
    const double measured_load =
        std::clamp(observation.measuredUtilization, 0.0, 1.0);
    const double load =
        std::clamp(_loadFilter.update(measured_load), 0.0, 1.0);

    // Filter the base speed: delivered speed = 1 / QoS statistic is
    // modeled as b * xup, so the applied speedup is the observation
    // gain and the filter estimates b.
    const double measured_qos =
        std::max(observation.measuredQos, minQosSeconds);
    const double speed = 1.0 / measured_qos;
    const double applied_xup =
        _xup.speedupOf(observation.applied.frequency);
    const double base =
        std::max(_perfFilter.update(speed, applied_xup), minBaseSpeed);

    // Integral control toward the speed goal, every periodEpochs-th
    // measured epoch.
    const double goal = 1.0 / (goalFraction * _qos.budget());
    if (++_epochsSinceStep >= _config.periodEpochs) {
        _epochsSinceStep = 0;
        _xup.step(goal - speed, base);
    }

    // Sleep-depth allowance: wake latency must fit both the current
    // QoS slack and the expected idle gap (M/M/1 at f = 1: mean idle
    // time per busy cycle is s * (1 - rho) / rho).
    const double slack =
        std::max(0.0, 1.0 - measured_qos / _qos.budget());
    double allowance = wakeBudgetFraction * slack * _qos.budget();
    if (observation.meanJobSize > 0.0 && load > 0.0) {
        const double idle_gap =
            observation.meanJobSize * (1.0 - load) / load;
        allowance = std::min(allowance, wakeIdleFraction * idle_gap);
    }

    const double planning_load = std::max(
        load, std::clamp(observation.predictedUtilization, 0.0, 1.0));
    decision.policy = _xup.translate(planning_load, allowance);
    decision.feasible = !(_xup.saturatedHigh() && speed < goal);
    decision.predictedMetric = measured_qos;
    decision.predictedPower =
        estimatePower(decision.policy, planning_load);
    decision.evaluated = 1;
    _current = decision.policy;
    return decision;
}

GuardedDecision
ControllerManager::decideGuarded(const EpochObservation &observation,
                                 const std::vector<Job> &log,
                                 const Policy &fallback)
{
    GuardedDecision guarded;
    if (observation.faultStarved || !observation.hasMeasurement) {
        // Measurement window starved (e.g. the server spent the epoch
        // down): steering on stale state is the feedback analogue of
        // searching garbage, so run the safe fixed policy instead —
        // the same contract as PolicyManager::selectFromLogGuarded.
        guarded.decision.policy = fallback;
        guarded.decision.feasible = false;
        guarded.degraded = true;
        return guarded;
    }
    guarded.decision = decide(observation, log);
    if (!guarded.decision.feasible) {
        guarded.decision.policy = fallback;
        guarded.degraded = true;
        _current = fallback;
    }
    return guarded;
}

void
ControllerManager::reset()
{
    _loadFilter.reset();
    _perfFilter.reset();
    _xup.reset();
    _current = _initial;
    _epochsSinceStep = 0;
}

double
ControllerManager::estimatePower(const Policy &policy, double load) const
{
    const double util = std::clamp(
        load * _scaling.factor(policy.frequency), 0.0, 1.0);
    const double active = _platform->activePower(policy.frequency);
    const double idle =
        _platform->lowPower(policy.plan.deepest(), policy.frequency);
    return util * active + (1.0 - util) * idle;
}

} // namespace sleepscale
