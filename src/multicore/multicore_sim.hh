/**
 * @file
 * Multi-core package simulation (paper Section 7 future work).
 *
 * The single-server model treats the CPU as one unit. Real parts are
 * multi-core: each core has private C-states, while the deepest
 * platform state (S3) is *package-gated* — it is reachable only while
 * every core is idle, which couples the cores' idle periods. That
 * coupling is what makes multi-core power management more than N
 * independent SleepScale instances: per-core descents are exact as
 * before, but platform power switches between S0(a) (any core active),
 * an S0(i) descent, and S3 according to the joint idle interval.
 *
 * Model:
 *  - M identical cores; each runs FCFS with the DVFS-scaled service
 *    law; a dispatcher routes each arrival to a core.
 *  - Core power is the single-CPU model scaled by 1/M (active
 *    activeCoeff/M f^3; idle descent through the core plan with the
 *    same 1/M scaling). Each core still serves at rate µf, i.e. the
 *    package divides one power envelope across cores without dividing
 *    per-core performance — adequate for studying package gating and
 *    joint idleness, but absolute watts are not comparable across
 *    different core counts.
 *  - Platform power: s0Active while any core is busy; once the last
 *    core goes idle the platform drops to s0Idle and, after the
 *    configured package delay of *joint* idleness, to s3.
 *  - Wake-up: an arrival pays the maximum of its core's wake latency
 *    and the package wake latency (C6S3's) when the package reached S3.
 *
 * Energy integration stays exact: between arrivals, core busy/idle
 * breakpoints (departure horizons, descent thresholds) are merged and
 * integrated piecewise, exactly as in ServerSim.
 */

#ifndef SLEEPSCALE_MULTICORE_MULTICORE_SIM_HH
#define SLEEPSCALE_MULTICORE_MULTICORE_SIM_HH

#include <cstdint>
#include <vector>

#include "power/platform_model.hh"
#include "sim/pending_queue.hh"
#include "sim/policy.hh"
#include "sim/sim_stats.hh"
#include "sim/sleep_plan.hh"
#include "workload/job.hh"
#include "workload/job_source.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/** Per-package policy: frequency, per-core descent, package S3 delay. */
struct MulticorePolicy
{
    /** Shared DVFS factor (per-core DVFS is future work here too). */
    double frequency = 1.0;

    /** Sleep descent each idle core follows (core-private states). */
    SleepPlan corePlan =
        SleepPlan::immediate(LowPowerState::C6S0Idle);

    /**
     * Seconds of *joint* (all-core) idleness before the platform drops
     * from S0(i) to S3. Infinity disables package sleep.
     */
    double packageSleepDelay = 1.0;
};

/** Aggregate metrics of a multicore run. */
struct MulticoreStats
{
    double energy = 0.0;        ///< Joules, package + all cores.
    double elapsed = 0.0;       ///< Simulated span, seconds.
    double packageS3Time = 0.0; ///< Seconds the platform spent in S3.
    double packageIdleTime = 0.0; ///< Seconds in S0(i) (not S3).
    std::uint64_t completions = 0;
    std::uint64_t packageWakes = 0; ///< Wakes that paid the S3 latency.
    OnlineStats response;
    QuantileHistogram responseHistogram{1e-7, 1e5, 400};

    /** Average package power, watts. */
    double avgPower() const
    {
        return elapsed > 0.0 ? energy / elapsed : 0.0;
    }
};

/** M-core package with joint platform-state accounting. */
class MulticoreSim
{
  public:
    /**
     * @param platform Power model; CPU powers are split across cores.
     * @param scaling Service-time scaling law.
     * @param cores Number of cores (>= 1).
     * @param policy Initial package policy.
     */
    MulticoreSim(const PlatformModel &platform, ServiceScaling scaling,
                 std::size_t cores, const MulticorePolicy &policy);

    /** Number of cores. */
    std::size_t cores() const { return _nextFree.size(); }

    /**
     * Admit one arrival (non-decreasing times) on the least-backlogged
     * core (JSQ; ties to the lowest index).
     *
     * @return Index of the chosen core.
     */
    std::size_t offerJob(const Job &job);

    /** Integrate power up to time t. */
    void advanceTo(double t);

    /** Switch the package policy at time t. */
    void setPolicy(const MulticorePolicy &policy, double t);

    /** Statistics accumulated so far (call advanceTo first). */
    const MulticoreStats &stats() const { return _stats; }

    /** Time when the last core's queue empties. */
    double allFreeTime() const;

  private:
    const PlatformModel &_platform;
    ServiceScaling _scaling;
    MulticorePolicy _policy;
    MaterializedPlan _corePlan; ///< Powers scaled per-core.
    double _coreActivePower = 0.0;
    double _packageWake = 0.0;

    std::vector<double> _nextFree; ///< Per-core departure horizon.
    double _accountedUntil = 0.0;
    MulticoreStats _stats;
    PendingQueue _pending; ///< Departures awaiting attribution.

    void rebuildDerived();
    void integrate(double from, double to);
    double corePowerAt(std::size_t core, double t) const;
    void flushDepartures(double t);
};

/**
 * Evaluate a multicore policy over a job list (fresh package, run to
 * the last departure) — the multicore analogue of evaluatePolicy().
 */
MulticoreStats evaluateMulticorePolicy(const PlatformModel &platform,
                                       ServiceScaling scaling,
                                       std::size_t cores,
                                       const MulticorePolicy &policy,
                                       const std::vector<Job> &jobs);

/**
 * Streaming overload: pulls up to max_jobs arrivals from a source —
 * the package never holds the job list.
 */
MulticoreStats evaluateMulticorePolicy(const PlatformModel &platform,
                                       ServiceScaling scaling,
                                       std::size_t cores,
                                       const MulticorePolicy &policy,
                                       JobSource &source,
                                       std::size_t max_jobs);

} // namespace sleepscale

#endif // SLEEPSCALE_MULTICORE_MULTICORE_SIM_HH
