#include "multicore/multicore_sim.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hh"

namespace sleepscale {

MulticoreSim::MulticoreSim(const PlatformModel &platform,
                           ServiceScaling scaling, std::size_t cores,
                           const MulticorePolicy &policy)
    : _platform(platform), _scaling(scaling), _policy(policy),
      _corePlan(policy.corePlan, platform, policy.frequency)
{
    fatalIf(cores == 0, "MulticoreSim: need at least one core");
    _nextFree.assign(cores, 0.0);
    rebuildDerived();
}

void
MulticoreSim::rebuildDerived()
{
    fatalIf(_policy.frequency <= 0.0 || _policy.frequency > 1.0,
            "MulticoreSim: frequency must be in (0, 1]");
    fatalIf(_policy.corePlan.deepest() == LowPowerState::C6S3,
            "MulticoreSim: C6S3 is a package state; core plans may "
            "descend at most to C6S0(i) — package sleep is controlled "
            "by packageSleepDelay");
    fatalIf(_policy.packageSleepDelay < 0.0,
            "MulticoreSim: packageSleepDelay must be >= 0");

    _corePlan = MaterializedPlan(_policy.corePlan, _platform,
                                 _policy.frequency);
    const double f = _policy.frequency;
    const double m = static_cast<double>(cores());
    _coreActivePower = _platform.cpu().activeCoeff / m * f * f * f;
    _packageWake = _platform.wakeLatency(LowPowerState::C6S3);
}

double
MulticoreSim::corePowerAt(std::size_t core, double t) const
{
    if (t < _nextFree[core])
        return _coreActivePower;
    const std::size_t stage =
        _corePlan.stageAt(t - _nextFree[core]);
    // MaterializedPlan powers include the S0(i) platform share; strip
    // it and scale the CPU share per core. The platform itself is
    // accounted once at package level.
    const double combined = _corePlan.power(stage);
    const double cpu_only = combined - _platform.platform().s0Idle;
    return cpu_only / static_cast<double>(cores());
}

void
MulticoreSim::flushDepartures(double t)
{
    while (!_pending.empty() && _pending.front().depart <= t) {
        const double response = _pending.front().response;
        _pending.pop();
        _stats.response.add(response);
        _stats.responseHistogram.add(response);
        ++_stats.completions;
    }
}

void
MulticoreSim::integrate(double from, double to)
{
    if (to <= from)
        return;

    // Breakpoints: core departure horizons, core descent thresholds,
    // and the package S3 entry instant.
    std::vector<double> cuts;
    const double all_free =
        *std::max_element(_nextFree.begin(), _nextFree.end());
    for (double horizon : _nextFree) {
        if (horizon > from && horizon < to)
            cuts.push_back(horizon);
        for (std::size_t k = 1; k < _corePlan.size(); ++k) {
            const double entry = horizon + _corePlan.enterAfter(k);
            if (entry > from && entry < to)
                cuts.push_back(entry);
        }
    }
    if (std::isfinite(_policy.packageSleepDelay)) {
        const double s3_entry = all_free + _policy.packageSleepDelay;
        if (s3_entry > from && s3_entry < to)
            cuts.push_back(s3_entry);
    }
    cuts.push_back(to);
    std::sort(cuts.begin(), cuts.end());

    const PlatformPowerParams &pkg = _platform.platform();
    double segment_start = from;
    for (double segment_end : cuts) {
        if (segment_end <= segment_start)
            continue;
        const double mid = 0.5 * (segment_start + segment_end);
        const double dt = segment_end - segment_start;

        double power = 0.0;
        bool any_busy = false;
        for (std::size_t c = 0; c < _nextFree.size(); ++c) {
            power += corePowerAt(c, mid);
            any_busy = any_busy || mid < _nextFree[c];
        }
        if (any_busy) {
            power += pkg.s0Active;
        } else if (std::isfinite(_policy.packageSleepDelay) &&
                   mid - all_free >= _policy.packageSleepDelay) {
            power += pkg.s3;
            _stats.packageS3Time += dt;
        } else {
            power += pkg.s0Idle;
            _stats.packageIdleTime += dt;
        }
        _stats.energy += power * dt;
        segment_start = segment_end;
    }
    _stats.elapsed += to - from;
}

void
MulticoreSim::advanceTo(double t)
{
    if (t <= _accountedUntil)
        return;
    integrate(_accountedUntil, t);
    _accountedUntil = t;
    flushDepartures(t);
}

std::size_t
MulticoreSim::offerJob(const Job &job)
{
    fatalIf(job.arrival < _accountedUntil,
            "MulticoreSim::offerJob: arrivals must be offered in order");
    fatalIf(job.size < 0.0, "MulticoreSim::offerJob: negative size");

    const double all_free_before = allFreeTime();
    advanceTo(job.arrival);

    // JSQ by backlog, ties to the lowest index.
    std::size_t core = 0;
    double best_backlog = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < _nextFree.size(); ++c) {
        const double backlog =
            std::max(0.0, _nextFree[c] - job.arrival);
        if (backlog < best_backlog) {
            best_backlog = backlog;
            core = c;
        }
    }

    double service_start;
    if (job.arrival >= _nextFree[core]) {
        const double elapsed = job.arrival - _nextFree[core];
        const std::size_t stage = _corePlan.stageAt(elapsed);
        double wake = _corePlan.wakeLatency(stage);
        if (std::isfinite(_policy.packageSleepDelay) &&
            job.arrival - all_free_before >=
                _policy.packageSleepDelay) {
            // The whole package reached S3: pay its exit latency too.
            wake = std::max(wake, _packageWake);
            ++_stats.packageWakes;
        }
        service_start = job.arrival + wake;
    } else {
        service_start = _nextFree[core];
    }

    const double service =
        job.size * _scaling.factor(_policy.frequency);
    const double depart = service_start + service;
    _pending.push(depart, depart - job.arrival);
    _nextFree[core] = depart;
    return core;
}

void
MulticoreSim::setPolicy(const MulticorePolicy &policy, double t)
{
    advanceTo(t);
    _policy = policy;
    rebuildDerived();
}

double
MulticoreSim::allFreeTime() const
{
    return *std::max_element(_nextFree.begin(), _nextFree.end());
}

MulticoreStats
evaluateMulticorePolicy(const PlatformModel &platform,
                        ServiceScaling scaling, std::size_t cores,
                        const MulticorePolicy &policy,
                        const std::vector<Job> &jobs)
{
    fatalIf(jobs.empty(), "evaluateMulticorePolicy: need jobs");
    MulticoreSim sim(platform, scaling, cores, policy);
    for (const Job &job : jobs)
        sim.offerJob(job);
    sim.advanceTo(sim.allFreeTime());
    return sim.stats();
}

MulticoreStats
evaluateMulticorePolicy(const PlatformModel &platform,
                        ServiceScaling scaling, std::size_t cores,
                        const MulticorePolicy &policy, JobSource &source,
                        std::size_t max_jobs)
{
    fatalIf(max_jobs == 0, "evaluateMulticorePolicy: need jobs");
    MulticoreSim sim(platform, scaling, cores, policy);
    Job job;
    std::size_t offered = 0;
    while (offered < max_jobs && source.next(job)) {
        sim.offerJob(job);
        ++offered;
    }
    fatalIf(offered == 0, "evaluateMulticorePolicy: need jobs");
    sim.advanceTo(sim.allFreeTime());
    return sim.stats();
}

} // namespace sleepscale
