/**
 * @file
 * A power-management policy: the joint (frequency, sleep plan) choice.
 *
 * "Policy" throughout this library means exactly what it means in the
 * paper: a combination of a DVFS frequency setting and a prescription for
 * which low-power state(s) to enter when idle, and when.
 */

#ifndef SLEEPSCALE_SIM_POLICY_HH
#define SLEEPSCALE_SIM_POLICY_HH

#include <string>

#include "sim/sleep_plan.hh"

namespace sleepscale {

/** Joint frequency / sleep-plan setting. */
struct Policy
{
    /** DVFS frequency scaling factor in (0, 1]. */
    double frequency = 1.0;

    /** Sleep descent followed when the queue empties. */
    SleepPlan plan = SleepPlan::immediate(LowPowerState::C0IdleS0Idle);

    /** Human-readable form, e.g. "f=0.42 C6S3". */
    std::string toString() const;
};

/** Race-to-halt (paper [25]): run flat out, sleep immediately. */
Policy raceToHalt(LowPowerState state);

} // namespace sleepscale

#endif // SLEEPSCALE_SIM_POLICY_HH
