/**
 * @file
 * The FCFS single-server simulation core (paper Algorithm 1, generalized).
 *
 * ServerSim implements the paper's operation model exactly: FCFS service,
 * DVFS-scaled service times, arrival-triggered wake-up with the latency of
 * whatever low-power stage the descent had reached, and wake-up energy
 * charged at active power. Instead of a general event calendar it exploits
 * the FCFS structure: the entire server state is the time the queue next
 * empties, so each arrival is processed in O(plan stages) and energy is
 * integrated piecewise-analytically between events. That makes candidate-
 * policy evaluation cheap enough to run hundreds of times per epoch, which
 * is the premise of SleepScale's runtime policy manager.
 *
 * Beyond the paper's one-shot evaluator, ServerSim supports continuous
 * operation: windowed statistics harvesting (for per-epoch reporting) and
 * mid-run policy switches with queue backlog carried across the switch
 * (needed by the runtime, where a mispredicted epoch leaves a backlog that
 * must propagate into the next one).
 */

#ifndef SLEEPSCALE_SIM_SERVER_SIM_HH
#define SLEEPSCALE_SIM_SERVER_SIM_HH

#include <vector>

#include "power/platform_model.hh"
#include "sim/pending_queue.hh"
#include "sim/policy.hh"
#include "sim/sim_stats.hh"
#include "sim/sleep_plan.hh"
#include "workload/job.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/**
 * A job log preprocessed for repeated candidate evaluation.
 *
 * Splits the jobs into structure-of-arrays form (better locality for the
 * replay loop, which never needs both fields of a Job at once) and keeps
 * prefix sums of the job sizes so aggregate demand over any suffix or
 * prefix of the log — offered load, mean size — is O(1). Validated once
 * at construction so the per-candidate replay runs check-free.
 */
struct PreparedLog
{
    std::vector<double> arrival; ///< Arrival times, non-decreasing.
    std::vector<double> size;    ///< Job sizes (seconds at f = 1).
    std::vector<double> cumSize; ///< cumSize[i] = size[0] + ... + size[i].

    /** Preprocess an arrival-ordered job list (needs >= 1 job). */
    static PreparedLog fromJobs(const std::vector<Job> &jobs);

    /** Number of jobs. */
    std::size_t count() const { return arrival.size(); }

    /** Total service demand, seconds at f = 1. */
    double totalDemand() const { return cumSize.back(); }

    /** Mean job size, seconds at f = 1. */
    double meanSize() const
    {
        return totalDemand() / static_cast<double>(count());
    }

    /** Offered load: total demand over the spanned time (needs >= 2
     * jobs and a positive span; fatal() otherwise). */
    double offeredLoad() const;
};

/** Continuous FCFS single-server simulator with DVFS and sleep states. */
class ServerSim
{
  public:
    /**
     * @param platform Power model (not owned; must outlive the sim).
     * @param scaling Service-time dependence on frequency.
     * @param initial Policy in force from t = 0.
     *
     * The simulation starts at t = 0 with an empty queue; the server
     * begins its sleep descent immediately, mirroring Algorithm 1 where
     * the "departure of job 0" is time 0.
     */
    ServerSim(const PlatformModel &platform, ServiceScaling scaling,
              const Policy &initial);

    /**
     * Offer the next arrival. Arrivals must be fed in non-decreasing
     * time order, and never earlier than a time already passed to
     * advanceTo().
     */
    void offerJob(const Job &job);

    /**
     * Integrate power and flush departures up to time t (t must be >=
     * any previously accounted time). Call at window boundaries before
     * harvesting or switching policies.
     */
    void advanceTo(double t);

    /**
     * Switch the operating policy at time t.
     *
     * The new frequency applies to jobs that *start service* after the
     * switch; jobs already admitted keep their committed service times
     * (busy power from t onward uses the new frequency). If the server
     * is idle, the descent clock is preserved and the occupied stage is
     * re-derived under the new plan.
     */
    void setPolicy(const Policy &policy, double t);

    /** Policy currently in force. */
    const Policy &policy() const { return _policy; }

    /** Power model this server accounts against. */
    const PlatformModel &platform() const { return _platform; }

    /**
     * Return the statistics accumulated since the last harvest (or since
     * construction) and start a new window at the current accounted time.
     * Response times are attributed to the window containing the job's
     * departure.
     */
    SimStats harvestWindow();

    /** Statistics of the in-progress window (const view). */
    const SimStats &currentWindow() const { return _window; }

    /** Time up to which power has been integrated. */
    double accountedTime() const { return _accountedUntil; }

    /** Time at which the server's queue next empties. */
    double nextFreeTime() const { return _nextFree; }

    /** Whether the server will be idle at time t absent new arrivals. */
    bool idleAt(double t) const { return t >= _nextFree; }

    /** Seconds of committed work left at time t (0 when idle). */
    double backlog(double t) const;

    /** Number of departures not yet attributed to a window. */
    std::size_t pendingDepartures() const { return _pending.size(); }

    /**
     * Record per-completion response samples in the percentile
     * histogram (default on). Mean-based QoS never reads the tail, so
     * large farms turn this off: no histogram buckets are ever
     * allocated and percentile readouts report 0. Streaming response
     * moments (mean, min, max, Cv) are always recorded.
     */
    void setRecordTail(bool record) { _recordTail = record; }

    /** Whether per-completion tail histograms are being recorded. */
    bool recordTail() const { return _recordTail; }

    /**
     * Return to the t = 0 empty-queue state under the current policy,
     * keeping every allocation (pending ring, histogram buckets), so
     * the simulator can serve as a reusable evaluation arena.
     */
    void reset();

    /**
     * reset() and swap the operating point without re-materializing the
     * plan: `plan` must be `policy.plan` materialized against this
     * simulator's platform at `frequency`. Only the frequency of the
     * stored Policy is updated — the abstract plan of policy() is NOT
     * kept in sync (the materialized plan is authoritative here). This
     * is the policy-evaluation engine's entry point; it performs zero
     * heap allocation.
     */
    void reset(double frequency, const MaterializedPlan &plan);

    /**
     * Evaluate the current policy over a preprocessed log in one tight
     * pass: the replay equivalent of offerJob()-per-job plus a closing
     * advanceTo(nextFreeTime()), with identical accounting semantics
     * but no per-job pending buffering, window flushing, or input
     * re-validation. Requires a freshly reset() (or newly constructed)
     * simulator; allocates nothing.
     *
     * @param log Preprocessed job log (at least one job).
     * @param record_tail When false, skip the percentile histogram
     *        (mean-only QoS searches don't need it); streaming moments
     *        are always recorded.
     * @return The accumulated window (valid until the next mutation).
     */
    const SimStats &replay(const PreparedLog &log,
                           bool record_tail = true);

  private:
    const PlatformModel &_platform;
    ServiceScaling _scaling;
    Policy _policy;
    MaterializedPlan _plan;
    double _activePower; ///< Cached activePower(policy.frequency).

    double _accountedUntil = 0.0; ///< Energy integrated up to here.
    double _nextFree = 0.0;       ///< Queue-empties time; idle start.
    bool _recordTail = true;      ///< Feed the percentile histogram.

    /** Departures awaiting window attribution (FCFS keeps this ordered
     * by departure time). */
    PendingQueue _pending;

    SimStats _window;

    void integrateBusy(double from, double to);
    void integrateIdle(double from, double to);
    void accumulateIdle(double start, double end);
    void flushDepartures(double t);
};

/**
 * Result of evaluating one candidate policy over a job list
 * (the paper's Algorithm 1 driver).
 */
struct PolicyEvaluation
{
    Policy policy;
    SimStats stats;

    /** Mean response time, seconds. */
    double meanResponse() const { return stats.meanResponse(); }

    /** 95th-percentile response time, seconds. */
    double p95Response() const { return stats.responsePercentile(95.0); }

    /** Average power, watts. */
    double avgPower() const { return stats.avgPower(); }
};

/**
 * Evaluate a policy over a finite job sequence.
 *
 * Runs a fresh simulation from an idle server at t = 0 through the last
 * departure, exactly the paper's Section 4.1 methodology.
 *
 * @param platform Power model.
 * @param scaling Service-time scaling law.
 * @param policy Candidate (frequency, plan) pair.
 * @param jobs Arrival-ordered jobs.
 */
PolicyEvaluation evaluatePolicy(const PlatformModel &platform,
                                ServiceScaling scaling, const Policy &policy,
                                const std::vector<Job> &jobs);

} // namespace sleepscale

#endif // SLEEPSCALE_SIM_SERVER_SIM_HH
