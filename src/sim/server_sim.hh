/**
 * @file
 * The FCFS single-server simulation core (paper Algorithm 1, generalized).
 *
 * ServerSim implements the paper's operation model exactly: FCFS service,
 * DVFS-scaled service times, arrival-triggered wake-up with the latency of
 * whatever low-power stage the descent had reached, and wake-up energy
 * charged at active power. Instead of a general event calendar it exploits
 * the FCFS structure: the entire server state is the time the queue next
 * empties, so each arrival is processed in O(plan stages) and energy is
 * integrated piecewise-analytically between events. That makes candidate-
 * policy evaluation cheap enough to run hundreds of times per epoch, which
 * is the premise of SleepScale's runtime policy manager.
 *
 * Beyond the paper's one-shot evaluator, ServerSim supports continuous
 * operation: windowed statistics harvesting (for per-epoch reporting) and
 * mid-run policy switches with queue backlog carried across the switch
 * (needed by the runtime, where a mispredicted epoch leaves a backlog that
 * must propagate into the next one).
 */

#ifndef SLEEPSCALE_SIM_SERVER_SIM_HH
#define SLEEPSCALE_SIM_SERVER_SIM_HH

#include <deque>
#include <vector>

#include "power/platform_model.hh"
#include "sim/policy.hh"
#include "sim/sim_stats.hh"
#include "sim/sleep_plan.hh"
#include "workload/job.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/** Continuous FCFS single-server simulator with DVFS and sleep states. */
class ServerSim
{
  public:
    /**
     * @param platform Power model (not owned; must outlive the sim).
     * @param scaling Service-time dependence on frequency.
     * @param initial Policy in force from t = 0.
     *
     * The simulation starts at t = 0 with an empty queue; the server
     * begins its sleep descent immediately, mirroring Algorithm 1 where
     * the "departure of job 0" is time 0.
     */
    ServerSim(const PlatformModel &platform, ServiceScaling scaling,
              const Policy &initial);

    /**
     * Offer the next arrival. Arrivals must be fed in non-decreasing
     * time order, and never earlier than a time already passed to
     * advanceTo().
     */
    void offerJob(const Job &job);

    /**
     * Integrate power and flush departures up to time t (t must be >=
     * any previously accounted time). Call at window boundaries before
     * harvesting or switching policies.
     */
    void advanceTo(double t);

    /**
     * Switch the operating policy at time t.
     *
     * The new frequency applies to jobs that *start service* after the
     * switch; jobs already admitted keep their committed service times
     * (busy power from t onward uses the new frequency). If the server
     * is idle, the descent clock is preserved and the occupied stage is
     * re-derived under the new plan.
     */
    void setPolicy(const Policy &policy, double t);

    /** Policy currently in force. */
    const Policy &policy() const { return _policy; }

    /**
     * Return the statistics accumulated since the last harvest (or since
     * construction) and start a new window at the current accounted time.
     * Response times are attributed to the window containing the job's
     * departure.
     */
    SimStats harvestWindow();

    /** Statistics of the in-progress window (const view). */
    const SimStats &currentWindow() const { return _window; }

    /** Time up to which power has been integrated. */
    double accountedTime() const { return _accountedUntil; }

    /** Time at which the server's queue next empties. */
    double nextFreeTime() const { return _nextFree; }

    /** Whether the server will be idle at time t absent new arrivals. */
    bool idleAt(double t) const { return t >= _nextFree; }

    /** Seconds of committed work left at time t (0 when idle). */
    double backlog(double t) const;

    /** Number of departures not yet attributed to a window. */
    std::size_t pendingDepartures() const { return _pending.size(); }

  private:
    const PlatformModel &_platform;
    ServiceScaling _scaling;
    Policy _policy;
    MaterializedPlan _plan;
    double _activePower; ///< Cached activePower(policy.frequency).

    double _accountedUntil = 0.0; ///< Energy integrated up to here.
    double _nextFree = 0.0;       ///< Queue-empties time; idle start.

    /** Departures (time, response) awaiting window attribution (FCFS
     * keeps this ordered by departure time). */
    std::deque<std::pair<double, double>> _pending;

    SimStats _window;

    void integrateBusy(double from, double to);
    void integrateIdle(double from, double to);
    void flushDepartures(double t);
};

/**
 * Result of evaluating one candidate policy over a job list
 * (the paper's Algorithm 1 driver).
 */
struct PolicyEvaluation
{
    Policy policy;
    SimStats stats;

    /** Mean response time, seconds. */
    double meanResponse() const { return stats.meanResponse(); }

    /** 95th-percentile response time, seconds. */
    double p95Response() const { return stats.responsePercentile(95.0); }

    /** Average power, watts. */
    double avgPower() const { return stats.avgPower(); }
};

/**
 * Evaluate a policy over a finite job sequence.
 *
 * Runs a fresh simulation from an idle server at t = 0 through the last
 * departure, exactly the paper's Section 4.1 methodology.
 *
 * @param platform Power model.
 * @param scaling Service-time scaling law.
 * @param policy Candidate (frequency, plan) pair.
 * @param jobs Arrival-ordered jobs.
 */
PolicyEvaluation evaluatePolicy(const PlatformModel &platform,
                                ServiceScaling scaling, const Policy &policy,
                                const std::vector<Job> &jobs);

} // namespace sleepscale

#endif // SLEEPSCALE_SIM_SERVER_SIM_HH
