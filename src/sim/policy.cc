#include "sim/policy.hh"

#include <iomanip>
#include <sstream>

namespace sleepscale {

std::string
Policy::toString() const
{
    std::ostringstream out;
    out << "f=" << std::fixed << std::setprecision(2) << frequency << ' '
        << plan.toString();
    return out.str();
}

Policy
raceToHalt(LowPowerState state)
{
    return {1.0, SleepPlan::immediate(state)};
}

} // namespace sleepscale
