#include "sim/server_sim.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace sleepscale {

ServerSim::ServerSim(const PlatformModel &platform, ServiceScaling scaling,
                     const Policy &initial)
    : _platform(platform), _scaling(scaling), _policy(initial),
      _plan(initial.plan, platform, initial.frequency),
      _activePower(platform.activePower(initial.frequency))
{
}

void
ServerSim::integrateBusy(double from, double to)
{
    const double dt = to - from;
    if (dt <= 0.0)
        return;
    _window.energy += _activePower * dt;
    _window.busyTime += dt;
}

void
ServerSim::integrateIdle(double from, double to)
{
    if (to <= from)
        return;
    // Both bounds are measured from the idle start (_nextFree).
    double elapsed = from - _nextFree;
    const double end = to - _nextFree;
    std::size_t stage = _plan.stageAt(elapsed);
    while (elapsed < end) {
        double stage_end = end;
        if (stage + 1 < _plan.size()) {
            stage_end = std::min(end, _plan.enterAfter(stage + 1));
        }
        const double dt = stage_end - elapsed;
        _window.energy += _plan.power(stage) * dt;
        _window.idleResidency[depthIndex(_plan.state(stage))] += dt;
        elapsed = stage_end;
        if (stage + 1 < _plan.size() &&
            elapsed >= _plan.enterAfter(stage + 1)) {
            ++stage;
        }
    }
}

void
ServerSim::flushDepartures(double t)
{
    while (!_pending.empty() && _pending.front().first <= t) {
        const double response = _pending.front().second;
        _pending.pop_front();
        _window.response.add(response);
        _window.responseHistogram.add(response);
        ++_window.completions;
    }
}

void
ServerSim::advanceTo(double t)
{
    // Tolerate tiny float regressions from repeated boundary math.
    if (t <= _accountedUntil)
        return;

    if (_accountedUntil < _nextFree) {
        const double busy_end = std::min(t, _nextFree);
        integrateBusy(_accountedUntil, busy_end);
        _accountedUntil = busy_end;
    }
    if (t > _accountedUntil) {
        integrateIdle(std::max(_accountedUntil, _nextFree), t);
        _accountedUntil = t;
    }
    flushDepartures(t);
}

void
ServerSim::offerJob(const Job &job)
{
    fatalIf(job.arrival < _accountedUntil,
            "ServerSim::offerJob: arrivals must be offered in order and "
            "not before already-accounted time");
    fatalIf(job.size < 0.0, "ServerSim::offerJob: negative job size");

    advanceTo(job.arrival);
    ++_window.arrivals;

    double service_start;
    if (job.arrival >= _nextFree) {
        // Idle: the arrival interrupts the descent and triggers wake-up.
        const double elapsed = job.arrival - _nextFree;
        const std::size_t stage = _plan.stageAt(elapsed);
        const double wake = _plan.wakeLatency(stage);
        ++_window.wakeups[depthIndex(_plan.state(stage))];
        _window.wakeTime += wake;
        service_start = job.arrival + wake;
    } else {
        // Busy: FCFS queueing behind committed work.
        service_start = _nextFree;
    }

    const double service =
        job.size * _scaling.factor(_policy.frequency);
    const double depart = service_start + service;
    _pending.emplace_back(depart, depart - job.arrival);
    _nextFree = depart;
}

void
ServerSim::setPolicy(const Policy &policy, double t)
{
    fatalIf(policy.frequency <= 0.0 || policy.frequency > 1.0,
            "ServerSim::setPolicy: frequency must be in (0, 1]");
    advanceTo(t);
    _policy = policy;
    _plan = MaterializedPlan(policy.plan, _platform, policy.frequency);
    _activePower = _platform.activePower(policy.frequency);
}

SimStats
ServerSim::harvestWindow()
{
    SimStats harvested = _window;
    harvested.windowEnd = _accountedUntil;

    SimStats fresh;
    fresh.windowStart = _accountedUntil;
    fresh.windowEnd = _accountedUntil;
    _window = fresh;
    return harvested;
}

double
ServerSim::backlog(double t) const
{
    return std::max(0.0, _nextFree - t);
}

PolicyEvaluation
evaluatePolicy(const PlatformModel &platform, ServiceScaling scaling,
               const Policy &policy, const std::vector<Job> &jobs)
{
    fatalIf(jobs.empty(), "evaluatePolicy: need at least one job");

    ServerSim sim(platform, scaling, policy);
    for (const Job &job : jobs)
        sim.offerJob(job);
    // Close the books at the final departure, matching Algorithm 1's
    // power = energy over exactly the active plus idle periods.
    sim.advanceTo(sim.nextFreeTime());

    PolicyEvaluation evaluation{policy, sim.harvestWindow()};
    return evaluation;
}

} // namespace sleepscale
