#include "sim/server_sim.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace sleepscale {

PreparedLog
PreparedLog::fromJobs(const std::vector<Job> &jobs)
{
    fatalIf(jobs.empty(), "PreparedLog: need at least one job");
    PreparedLog log;
    log.arrival.reserve(jobs.size());
    log.size.reserve(jobs.size());
    log.cumSize.reserve(jobs.size());
    double cum = 0.0;
    double last_arrival = 0.0;
    for (const Job &job : jobs) {
        fatalIf(job.arrival < last_arrival,
                "PreparedLog: arrivals must be non-decreasing");
        fatalIf(job.arrival < 0.0, "PreparedLog: negative arrival time");
        fatalIf(job.size < 0.0, "PreparedLog: negative job size");
        last_arrival = job.arrival;
        cum += job.size;
        log.arrival.push_back(job.arrival);
        log.size.push_back(job.size);
        log.cumSize.push_back(cum);
    }
    return log;
}

double
PreparedLog::offeredLoad() const
{
    fatalIf(count() < 2, "PreparedLog: log needs at least two jobs");
    const double span = arrival.back();
    fatalIf(span <= 0.0, "PreparedLog: log spans no time");
    return totalDemand() / span;
}

ServerSim::ServerSim(const PlatformModel &platform, ServiceScaling scaling,
                     const Policy &initial)
    : _platform(platform), _scaling(scaling), _policy(initial),
      _plan(initial.plan, platform, initial.frequency),
      _activePower(platform.activePower(initial.frequency))
{
}

void
ServerSim::integrateBusy(double from, double to)
{
    const double dt = to - from;
    if (dt <= 0.0)
        return;
    _window.energy += _activePower * dt;
    _window.busyTime += dt;
}

void
ServerSim::accumulateIdle(double start, double end)
{
    // Both bounds are descent-relative (seconds since the idle start).
    // Energy is a prefix-sum difference; residency still walks the (at
    // most maxStages) stages the interval spans.
    _window.energy += _plan.idleEnergy(end) - _plan.idleEnergy(start);
    const std::size_t last = _plan.stageAt(end);
    for (std::size_t stage = _plan.stageAt(start); stage <= last;
         ++stage) {
        const double lo = std::max(start, _plan.enterAfter(stage));
        const double hi =
            stage == last ? end
                          : std::min(end, _plan.enterAfter(stage + 1));
        _window.idleResidency[depthIndex(_plan.state(stage))] += hi - lo;
    }
}

void
ServerSim::integrateIdle(double from, double to)
{
    if (to <= from)
        return;
    accumulateIdle(from - _nextFree, to - _nextFree);
}

void
ServerSim::flushDepartures(double t)
{
    while (!_pending.empty() && _pending.front().depart <= t) {
        const double response = _pending.front().response;
        _pending.pop();
        _window.response.add(response);
        if (_recordTail)
            _window.responseHistogram.add(response);
        ++_window.completions;
    }
}

void
ServerSim::advanceTo(double t)
{
    // Tolerate tiny float regressions from repeated boundary math.
    if (t <= _accountedUntil)
        return;

    if (_accountedUntil < _nextFree) {
        const double busy_end = std::min(t, _nextFree);
        integrateBusy(_accountedUntil, busy_end);
        _accountedUntil = busy_end;
    }
    if (t > _accountedUntil) {
        integrateIdle(std::max(_accountedUntil, _nextFree), t);
        _accountedUntil = t;
    }
    flushDepartures(t);
}

void
ServerSim::offerJob(const Job &job)
{
    fatalIf(job.arrival < _accountedUntil,
            "ServerSim::offerJob: arrivals must be offered in order and "
            "not before already-accounted time");
    fatalIf(job.size < 0.0, "ServerSim::offerJob: negative job size");

    advanceTo(job.arrival);
    ++_window.arrivals;

    double service_start;
    if (job.arrival >= _nextFree) {
        // Idle: the arrival interrupts the descent and triggers wake-up.
        const double elapsed = job.arrival - _nextFree;
        const std::size_t stage = _plan.stageAt(elapsed);
        const double wake = _plan.wakeLatency(stage);
        ++_window.wakeups[depthIndex(_plan.state(stage))];
        _window.wakeTime += wake;
        service_start = job.arrival + wake;
    } else {
        // Busy: FCFS queueing behind committed work.
        service_start = _nextFree;
    }

    const double service =
        job.size * _scaling.factor(_policy.frequency);
    const double depart = service_start + service;
    _pending.push(depart, depart - job.arrival);
    _nextFree = depart;
}

void
ServerSim::setPolicy(const Policy &policy, double t)
{
    fatalIf(policy.frequency <= 0.0 || policy.frequency > 1.0,
            "ServerSim::setPolicy: frequency must be in (0, 1]");
    advanceTo(t);
    _policy = policy;
    _plan = MaterializedPlan(policy.plan, _platform, policy.frequency);
    _activePower = _platform.activePower(policy.frequency);
}

void
ServerSim::reset()
{
    _accountedUntil = 0.0;
    _nextFree = 0.0;
    _pending.reset();
    _window.reset();
}

void
ServerSim::reset(double frequency, const MaterializedPlan &plan)
{
    _policy.frequency = frequency;
    _plan = plan;
    _activePower = _platform.activePower(frequency);
    reset();
}

const SimStats &
ServerSim::replay(const PreparedLog &log, bool record_tail)
{
    if (_accountedUntil != 0.0 || _nextFree != 0.0 || !_pending.empty())
        fatal("ServerSim::replay: requires a freshly reset simulator");

    const double factor = _scaling.factor(_policy.frequency);
    const std::size_t n = log.count();
    const double *arrivals = log.arrival.data();
    const double *sizes = log.size.data();
    double next_free = 0.0;

    for (std::size_t i = 0; i < n; ++i) {
        const double arrival = arrivals[i];
        double service_start;
        if (arrival >= next_free) {
            // Idle period [next_free, arrival]: integrate the descent
            // and pay the wake-up of the stage the arrival interrupts.
            const double gap = arrival - next_free;
            const std::size_t stage = _plan.stageAt(gap);
            if (gap > 0.0)
                accumulateIdle(0.0, gap);
            const double wake = _plan.wakeLatency(stage);
            ++_window.wakeups[depthIndex(_plan.state(stage))];
            _window.wakeTime += wake;
            service_start = arrival + wake;
        } else {
            service_start = next_free;
        }

        const double depart = service_start + sizes[i] * factor;
        const double busy =
            depart - (arrival >= next_free ? arrival : next_free);
        _window.energy += _activePower * busy;
        _window.busyTime += busy;

        const double response = depart - arrival;
        _window.response.add(response);
        if (record_tail)
            _window.responseHistogram.add(response);
        ++_window.completions;
        next_free = depart;
    }

    _window.arrivals += n;
    _window.windowEnd = next_free;
    _accountedUntil = next_free;
    _nextFree = next_free;
    return _window;
}

SimStats
ServerSim::harvestWindow()
{
    SimStats harvested = _window;
    harvested.windowEnd = _accountedUntil;

    SimStats fresh;
    fresh.windowStart = _accountedUntil;
    fresh.windowEnd = _accountedUntil;
    _window = fresh;
    return harvested;
}

double
ServerSim::backlog(double t) const
{
    return std::max(0.0, _nextFree - t);
}

PolicyEvaluation
evaluatePolicy(const PlatformModel &platform, ServiceScaling scaling,
               const Policy &policy, const std::vector<Job> &jobs)
{
    fatalIf(jobs.empty(), "evaluatePolicy: need at least one job");

    ServerSim sim(platform, scaling, policy);
    for (const Job &job : jobs)
        sim.offerJob(job);
    // Close the books at the final departure, matching Algorithm 1's
    // power = energy over exactly the active plus idle periods.
    sim.advanceTo(sim.nextFreeTime());

    PolicyEvaluation evaluation{policy, sim.harvestWindow()};
    return evaluation;
}

} // namespace sleepscale
