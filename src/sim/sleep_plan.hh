/**
 * @file
 * Sleep-state descent plans (paper Section 3.2).
 *
 * When the job queue empties the server walks through an ordered sequence
 * of low-power states, entering stage i at time τ_i after the queue
 * emptied. The next arrival interrupts the descent and pays the wake-up
 * latency of the stage occupied at that instant. A plan is an abstract
 * recipe (states and entry delays); concrete powers and latencies are
 * materialized against a PlatformModel at an operating frequency, because
 * C0(i)/C1 stage power depends on the frequency the clock idles at.
 */

#ifndef SLEEPSCALE_SIM_SLEEP_PLAN_HH
#define SLEEPSCALE_SIM_SLEEP_PLAN_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "power/low_power_state.hh"
#include "power/platform_model.hh"

namespace sleepscale {

/** One stage of a sleep descent: a state and its entry delay τ. */
struct SleepStage
{
    LowPowerState state;
    double enterAfter = 0.0; ///< τ, seconds after the queue empties.
};

/**
 * Ordered descent through low-power states.
 *
 * Invariants (checked at construction): at least one stage; the first
 * stage is entered immediately (τ_1 = 0); entry delays strictly increase;
 * states strictly deepen. These mirror the paper's
 * τ_1 < τ_2 < ... < τ_n, P_1 > P_2 > ... > P_n, w_1 < w_2 < ... < w_n.
 */
class SleepPlan
{
  public:
    /** @param stages The descent, shallowest first. */
    explicit SleepPlan(std::vector<SleepStage> stages);

    /** Enter a single state as soon as the queue empties (τ = 0). */
    static SleepPlan immediate(LowPowerState state);

    /**
     * Idle in C0(i)S0(i) first, then drop into a deeper state after a
     * delay (the paper's "C0(i)S0(i) -> C6S3, τ2 = ..." policies).
     *
     * @param state Deep state to fall into.
     * @param delay Seconds of idleness before entering it (> 0).
     */
    static SleepPlan delayed(LowPowerState state, double delay);

    /**
     * The paper's "sequential power throttle-back": enter all five states
     * in order with the given positive, increasing delays for stages 2..5
     * (stage 1, C0(i)S0(i), is entered immediately).
     *
     * @param delays Entry delays for C1S0(i), C3S0(i), C6S0(i), C6S3.
     */
    static SleepPlan throttleBack(const std::vector<double> &delays);

    /** The stages, shallowest first. */
    const std::vector<SleepStage> &stages() const { return _stages; }

    /** Number of stages. */
    std::size_t size() const { return _stages.size(); }

    /** Deepest state in the plan. */
    LowPowerState deepest() const { return _stages.back().state; }

    /** Human-readable form, e.g. "C0(i)S0(i)->C6S3@0.126". */
    std::string toString() const;

  private:
    std::vector<SleepStage> _stages;
};

/**
 * A SleepPlan bound to a platform and frequency: concrete
 * (P_i, τ_i, w_i) triples ready for the simulator's inner loop.
 *
 * Storage is fixed-capacity inline arrays (a plan has at most one stage
 * per low-power state), so a MaterializedPlan is trivially copyable and
 * copying one into a simulation arena allocates nothing. Stage lookup is
 * a binary search over the entry delays, and idle-energy integration is
 * O(log S) through cumulative-energy prefix sums.
 */
class MaterializedPlan
{
  public:
    /** States strictly deepen along a plan, so stages are bounded. */
    static constexpr std::size_t maxStages = numLowPowerStates;

    /**
     * @param plan Abstract plan.
     * @param platform Power model supplying powers and latencies.
     * @param f Operating frequency the server idles at.
     */
    MaterializedPlan(const SleepPlan &plan, const PlatformModel &platform,
                     double f);

    /** Number of stages. */
    std::size_t size() const { return _size; }

    /** Index of the stage occupied after `elapsed` seconds of idleness. */
    std::size_t stageAt(double elapsed) const;

    /** Power drawn in stage i, watts. */
    double power(std::size_t i) const { return _power[i]; }

    /** Entry delay of stage i, seconds. */
    double enterAfter(std::size_t i) const { return _enterAfter[i]; }

    /** Wake-up latency from stage i, seconds. */
    double wakeLatency(std::size_t i) const { return _wake[i]; }

    /** The low-power state of stage i. */
    LowPowerState state(std::size_t i) const { return _state[i]; }

    /** Joules consumed from the idle start until entering stage i. */
    double energyBeforeStage(std::size_t i) const { return _cumEnergy[i]; }

    /**
     * Joules consumed by `elapsed` seconds of uninterrupted descent
     * from the idle start (prefix-sum lookup, O(log S)).
     */
    double
    idleEnergy(double elapsed) const
    {
        const std::size_t stage = stageAt(elapsed);
        return _cumEnergy[stage] +
               _power[stage] * (elapsed - _enterAfter[stage]);
    }

  private:
    std::size_t _size = 0;
    std::array<double, maxStages> _power{};
    std::array<double, maxStages> _enterAfter{};
    std::array<double, maxStages> _wake{};
    std::array<double, maxStages> _cumEnergy{};
    std::array<LowPowerState, maxStages> _state{};
};

} // namespace sleepscale

#endif // SLEEPSCALE_SIM_SLEEP_PLAN_HH
