#include "sim/sim_stats.hh"

#include "util/error.hh"

namespace sleepscale {

double
SimStats::avgPower() const
{
    const double span = elapsed();
    return span > 0.0 ? energy / span : 0.0;
}

double
SimStats::idleTime() const
{
    double total = 0.0;
    for (double t : idleResidency)
        total += t;
    return total;
}

double
SimStats::responsePercentile(double p) const
{
    return responseHistogram.percentile(p);
}

void
SimStats::merge(const SimStats &later)
{
    if (later.elapsed() == 0.0 && later.completions == 0)
        return;
    if (elapsed() == 0.0 && completions == 0 && arrivals == 0) {
        *this = later;
        return;
    }
    windowEnd = later.windowEnd;
    energy += later.energy;
    busyTime += later.busyTime;
    wakeTime += later.wakeTime;
    for (std::size_t i = 0; i < idleResidency.size(); ++i) {
        idleResidency[i] += later.idleResidency[i];
        wakeups[i] += later.wakeups[i];
    }
    arrivals += later.arrivals;
    completions += later.completions;
    response.merge(later.response);
    responseHistogram.merge(later.responseHistogram);
}

void
SimStats::reset()
{
    windowStart = 0.0;
    windowEnd = 0.0;
    energy = 0.0;
    busyTime = 0.0;
    wakeTime = 0.0;
    idleResidency.fill(0.0);
    wakeups.fill(0);
    arrivals = 0;
    completions = 0;
    response.reset();
    responseHistogram.reset();
}

} // namespace sleepscale
