#include "sim/sleep_plan.hh"

#include <algorithm>
#include <sstream>

#include "util/error.hh"

namespace sleepscale {

SleepPlan::SleepPlan(std::vector<SleepStage> stages)
    : _stages(std::move(stages))
{
    fatalIf(_stages.empty(), "SleepPlan: need at least one stage");
    fatalIf(_stages.front().enterAfter != 0.0,
            "SleepPlan: the first stage must be entered immediately "
            "(enterAfter = 0); use a C0(i)S0(i) first stage to model a "
            "delayed descent");
    for (std::size_t i = 1; i < _stages.size(); ++i) {
        fatalIf(_stages[i].enterAfter <= _stages[i - 1].enterAfter,
                "SleepPlan: entry delays must strictly increase");
        fatalIf(depthIndex(_stages[i].state) <=
                    depthIndex(_stages[i - 1].state),
                "SleepPlan: states must strictly deepen along the plan");
    }
}

SleepPlan
SleepPlan::immediate(LowPowerState state)
{
    return SleepPlan({{state, 0.0}});
}

SleepPlan
SleepPlan::delayed(LowPowerState state, double delay)
{
    fatalIf(delay <= 0.0, "SleepPlan::delayed: delay must be positive");
    fatalIf(state == LowPowerState::C0IdleS0Idle,
            "SleepPlan::delayed: the delayed state must be deeper than "
            "C0(i)S0(i)");
    return SleepPlan({{LowPowerState::C0IdleS0Idle, 0.0}, {state, delay}});
}

SleepPlan
SleepPlan::throttleBack(const std::vector<double> &delays)
{
    fatalIf(delays.size() != numLowPowerStates - 1,
            "SleepPlan::throttleBack: need one delay per state after "
            "C0(i)S0(i)");
    std::vector<SleepStage> stages;
    stages.push_back({LowPowerState::C0IdleS0Idle, 0.0});
    for (std::size_t i = 0; i < delays.size(); ++i)
        stages.push_back({allLowPowerStates[i + 1], delays[i]});
    return SleepPlan(std::move(stages));
}

std::string
SleepPlan::toString() const
{
    std::ostringstream out;
    for (std::size_t i = 0; i < _stages.size(); ++i) {
        if (i)
            out << "->";
        out << sleepscale::toString(_stages[i].state);
        if (_stages[i].enterAfter > 0.0)
            out << "@" << _stages[i].enterAfter;
    }
    return out.str();
}

MaterializedPlan::MaterializedPlan(const SleepPlan &plan,
                                   const PlatformModel &platform, double f)
{
    const auto &stages = plan.stages();
    fatalIf(stages.size() > maxStages,
            "MaterializedPlan: plan has more stages than low-power states");
    _size = stages.size();
    for (std::size_t i = 0; i < _size; ++i) {
        _power[i] = platform.lowPower(stages[i].state, f);
        _enterAfter[i] = stages[i].enterAfter;
        _wake[i] = platform.wakeLatency(stages[i].state);
        _state[i] = stages[i].state;
    }
    for (std::size_t i = 1; i < _size; ++i) {
        _cumEnergy[i] = _cumEnergy[i - 1] +
                        _power[i - 1] * (_enterAfter[i] -
                                         _enterAfter[i - 1]);
    }
}

std::size_t
MaterializedPlan::stageAt(double elapsed) const
{
    if (elapsed < 0.0)
        fatal("MaterializedPlan::stageAt: negative idle time");
    const double *begin = _enterAfter.data();
    return static_cast<std::size_t>(
               std::upper_bound(begin + 1, begin + _size, elapsed) -
               begin) -
           1;
}

} // namespace sleepscale
