/**
 * @file
 * Accumulated simulation metrics.
 */

#ifndef SLEEPSCALE_SIM_SIM_STATS_HH
#define SLEEPSCALE_SIM_SIM_STATS_HH

#include <array>
#include <cstdint>

#include "power/low_power_state.hh"
#include "util/online_stats.hh"
#include "util/quantile_histogram.hh"

namespace sleepscale {

/**
 * Metrics gathered over a simulation window.
 *
 * Response-time means are exact (streaming); percentiles come from a
 * log-scale histogram with ~0.6% relative resolution, which is far below
 * the Monte-Carlo noise of any experiment in the paper.
 */
struct SimStats
{
    /** Window covered: [start, end] in simulation time. */
    double windowStart = 0.0;
    double windowEnd = 0.0;

    /** Joules consumed inside the window. */
    double energy = 0.0;

    /** Seconds the server was busy (serving or waking). */
    double busyTime = 0.0;

    /** Seconds spent waking up (subset of busyTime, counted per job). */
    double wakeTime = 0.0;

    /** Seconds of idle residency per low-power state. */
    std::array<double, numLowPowerStates> idleResidency{};

    /** Wake-up events per low-power state. */
    std::array<std::uint64_t, numLowPowerStates> wakeups{};

    /** Jobs that arrived inside the window. */
    std::uint64_t arrivals = 0;

    /** Jobs whose response time was recorded (departed in the window). */
    std::uint64_t completions = 0;

    /** Exact streaming response-time moments (seconds). */
    OnlineStats response;

    /** Response-time histogram for percentiles (seconds). */
    QuantileHistogram responseHistogram{1e-7, 1e5, 400};

    /** Wall-clock span of the window. */
    double elapsed() const { return windowEnd - windowStart; }

    /** Average power over the window, watts. */
    double avgPower() const;

    /** Total idle time across all low-power states. */
    double idleTime() const;

    /** Mean response time, seconds. */
    double meanResponse() const { return response.mean(); }

    /** Approximate p-th percentile response time, seconds. */
    double responsePercentile(double p) const;

    /** Merge a later, adjacent window into this one. */
    void merge(const SimStats &later);

    /**
     * Forget everything but keep the histogram's bucket allocation, so
     * a SimStats can serve as a reusable accumulation arena.
     */
    void reset();
};

} // namespace sleepscale

#endif // SLEEPSCALE_SIM_SIM_STATS_HH
