/**
 * @file
 * Flat ring buffer of departures awaiting window attribution.
 *
 * ServerSim and MulticoreSim buffer every job's (departure time,
 * response time) pair between the instant the departure is committed
 * (at admission, thanks to FCFS) and the window boundary that absorbs
 * it. A std::deque pays a heap allocation every few hundred entries and
 * scatters the pairs across map blocks; this ring keeps them in one
 * contiguous power-of-two slab that survives reset(), so steady-state
 * simulation — and in particular the policy-evaluation engine's
 * reset-and-replay arenas — pushes and pops with zero heap traffic.
 */

#ifndef SLEEPSCALE_SIM_PENDING_QUEUE_HH
#define SLEEPSCALE_SIM_PENDING_QUEUE_HH

#include <cstddef>
#include <vector>

namespace sleepscale {

/** A committed departure not yet attributed to a statistics window. */
struct PendingDeparture
{
    double depart = 0.0;   ///< Absolute departure time, seconds.
    double response = 0.0; ///< Response time of the departing job.
};

/** FIFO ring of PendingDepartures; capacity persists across reset(). */
class PendingQueue
{
  public:
    bool empty() const { return _count == 0; }

    std::size_t size() const { return _count; }

    /** Oldest buffered departure (FCFS keeps these time-ordered). */
    const PendingDeparture &front() const { return _slots[_head]; }

    void
    push(double depart, double response)
    {
        if (_count == _slots.size())
            grow();
        _slots[(_head + _count) & _mask] = {depart, response};
        ++_count;
    }

    void
    pop()
    {
        _head = (_head + 1) & _mask;
        --_count;
    }

    /** Forget all entries but keep the allocated slab. */
    void
    reset()
    {
        _head = 0;
        _count = 0;
    }

  private:
    void
    grow()
    {
        // Unroll the full ring into a doubled slab, oldest first.
        std::vector<PendingDeparture> bigger(_slots.size() * 2);
        for (std::size_t i = 0; i < _count; ++i)
            bigger[i] = _slots[(_head + i) & _mask];
        _slots = std::move(bigger);
        _mask = _slots.size() - 1;
        _head = 0;
    }

    std::vector<PendingDeparture> _slots =
        std::vector<PendingDeparture>(64);
    std::size_t _mask = 63;
    std::size_t _head = 0;
    std::size_t _count = 0;
};

} // namespace sleepscale

#endif // SLEEPSCALE_SIM_PENDING_QUEUE_HH
