/**
 * @file
 * The high-throughput policy-evaluation engine.
 *
 * SleepScale's runtime viability rests on the per-epoch candidate search
 * being negligible next to a minutes-long epoch (paper Sections 4.1 and
 * 5.1.1). The engine makes the search cheap through four mechanisms:
 *
 *  1. A MaterializedPlan cache: the (plan, frequency) cross product is
 *     materialized against the platform once at construction — the
 *     policy space is static, so per-epoch selections reuse it instead
 *     of re-binding every candidate every epoch.
 *  2. Reusable simulation arenas: one ServerSim per pool lane, driven
 *     through the reset-and-replay path over a PreparedLog, so a
 *     candidate evaluation performs zero heap allocation.
 *  3. Parallel candidate fan-out on a shared ThreadPool with outcomes
 *     stored by candidate index and reduced in index order, so a
 *     parallel selection bit-matches the serial one.
 *  4. An opt-in pruned mode that exploits the QoS metric's (typical)
 *     monotonicity in frequency: per plan, the cheapest feasible
 *     frequency boundary is binary-searched and only the feasible
 *     suffix is characterized for power. When nothing is feasible the
 *     engine falls back to the exhaustive scan so the best-effort
 *     decision is still identical to exhaustive search.
 *
 * An engine instance is NOT thread-safe: it owns per-call scratch state.
 * Use one engine per concurrently running controller. Internally the
 * fan-out shares state without locks by construction — each lane owns
 * one simulation arena exclusively for the whole parallelFor, and
 * outcomes land in a candidate-indexed table that is only reduced (in
 * index order) after the fan-out joins. docs/CONCURRENCY.md documents
 * the discipline; the TSan CI job and tools/lint_determinism.py
 * enforce it.
 */

#ifndef SLEEPSCALE_CORE_EVAL_ENGINE_HH
#define SLEEPSCALE_CORE_EVAL_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/policy_space.hh"
#include "core/qos.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "util/thread_pool.hh"
#include "workload/job.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/** Outcome of one policy selection. */
struct PolicyDecision
{
    /** The selected policy. */
    Policy policy;

    /** True if some candidate met the QoS constraint. When false the
     * returned policy is the best-effort (fastest) candidate. */
    bool feasible = false;

    /** Predicted average power of the selection, watts. */
    double predictedPower = 0.0;

    /** Predicted value of the constrained QoS metric, seconds. */
    double predictedMetric = 0.0;

    /** Candidates actually characterized (stable ones). */
    std::uint64_t evaluated = 0;
};

/** Search knobs of a PolicyEvalEngine. */
struct EvalEngineOptions
{
    /** Candidate fan-out width: 1 searches serially on the calling
     * thread, N > 1 uses an N-lane pool, 0 uses the hardware
     * concurrency. Any width returns bit-identical decisions. */
    std::size_t threads = 1;

    /** Binary-search the per-plan QoS feasibility boundary in frequency
     * instead of scanning the whole grid. Requires a strictly
     * increasing frequency grid and assumes the QoS metric does not
     * increase with frequency within a plan (it holds for the paper's
     * workloads; verified against exhaustive search in the tests).
     * Decisions are identical to exhaustive search whenever the
     * assumption holds; `evaluated` counts only the candidates actually
     * characterized. */
    bool pruned = false;
};

/** Batched, allocation-free searcher over a PolicySpace. */
class PolicyEvalEngine
{
  public:
    /**
     * @param platform Power model (not owned; must outlive the engine).
     * @param scaling Service-time scaling law of the hosted workload.
     * @param space Candidate plans and frequencies.
     * @param qos Constraint candidate policies must satisfy.
     * @param options Search knobs.
     */
    PolicyEvalEngine(const PlatformModel &platform, ServiceScaling scaling,
                     PolicySpace space, QosConstraint qos,
                     EvalEngineOptions options = {});

    /**
     * Select the best policy for an empirical job log: every stable
     * candidate is characterized by replaying the log (paper
     * Algorithm 1); unstable frequencies are skipped, mirroring the
     * paper's f >= ρ + 0.01 floor.
     *
     * @param log Arrival-ordered jobs; needs at least two jobs.
     */
    PolicyDecision selectFromLog(const std::vector<Job> &log);

    /** selectFromLog() over an already-preprocessed log. */
    PolicyDecision selectFromPrepared(const PreparedLog &log);

    /** The candidate space. */
    const PolicySpace &space() const { return _space; }

    /** The QoS constraint in force. */
    const QosConstraint &qos() const { return _qos; }

    /** The search knobs in force. */
    const EvalEngineOptions &options() const { return _options; }

    /** The cached materialization of plan `plan_idx` at frequency
     * `freq_idx` (indices into space().plans / space().frequencies). */
    const MaterializedPlan &materialized(std::size_t plan_idx,
                                         std::size_t freq_idx) const;

    /** Candidate evaluations performed over the engine's lifetime. */
    std::uint64_t lifetimeEvaluations() const
    {
        return _lifetimeEvaluations;
    }

    /** Smallest stable frequency for an offered load ρ (the paper's
     * ρ + 0.01 floor, adjusted for the scaling exponent). */
    double minStableFrequency(double rho) const;

  private:
    /** Characterization of one candidate, stored by candidate index. */
    struct Outcome
    {
        double power = 0.0;
        double metric = 0.0;
        bool evaluated = false;
    };

    const PlatformModel &_platform;
    ServiceScaling _scaling;
    PolicySpace _space;
    QosConstraint _qos;
    EvalEngineOptions _options;

    /** Plan-major (plan_idx * |frequencies| + freq_idx) cache of the
     * whole policy space, built once at construction. */
    std::vector<MaterializedPlan> _materialized;

    /** One reusable simulation arena per pool lane. During a fan-out,
     * arena `i` is touched exclusively by lane `i` (ThreadPool's lane
     * index is stable for the whole parallelFor), so arenas need no
     * locks — the machine-checked analogue is the pool's own
     * GUARDED_BY discipline; the arena discipline is covered by the
     * TSan CI job. */
    std::vector<std::unique_ptr<ServerSim>> _arenas;

    /** Shared fan-out pool (absent when options.threads == 1). */
    std::unique_ptr<ThreadPool> _pool;

    /** Per-call outcome table, reused across selections. Lanes write
     * disjoint candidate-indexed slots during the fan-out; reduce()
     * reads it only after parallelFor returns (which joins all lanes),
     * and walks it in index order so the winner is independent of the
     * pool width. */
    std::vector<Outcome> _outcomes;

    /** Per-call candidate list, reused across selections. */
    std::vector<std::uint32_t> _candidates;

    std::uint64_t _lifetimeEvaluations = 0;

    void evaluateCandidate(std::size_t index, const PreparedLog &log,
                           std::size_t lane, bool record_tail);
    PolicyDecision exhaustiveSearch(const PreparedLog &log, double f_floor,
                                    bool record_tail);
    PolicyDecision prunedSearch(const PreparedLog &log, double f_floor,
                                bool record_tail);
    PolicyDecision reduce(std::uint64_t evaluated) const;
};

} // namespace sleepscale

#endif // SLEEPSCALE_CORE_EVAL_ENGINE_HH
