#include "core/policy_manager.hh"

#include <cmath>
#include <limits>

#include "analytic/mm1_sleep.hh"
#include "util/error.hh"

namespace sleepscale {

PolicyManager::PolicyManager(const PlatformModel &platform,
                             ServiceScaling scaling, PolicySpace space,
                             QosConstraint qos, EvalEngineOptions options)
    : _platform(platform), _scaling(scaling),
      _engine(std::make_unique<PolicyEvalEngine>(
          platform, scaling, std::move(space), qos, options))
{
}

double
PolicyManager::logOfferedLoad(const std::vector<Job> &log)
{
    // Delegate so the span-from-zero convention lives in one place.
    return PreparedLog::fromJobs(log).offeredLoad();
}

double
PolicyManager::logMeanSize(const std::vector<Job> &log)
{
    return PreparedLog::fromJobs(log).meanSize();
}

PolicyDecision
PolicyManager::selectFromLog(const std::vector<Job> &log) const
{
    return _engine->selectFromLog(log);
}

PolicyManager::GuardedDecision
PolicyManager::selectFromLogGuarded(const std::vector<Job> &log,
                                    const Policy &fallback) const
{
    GuardedDecision guarded;
    if (log.size() >= 2) {
        guarded.decision = _engine->selectFromLog(log);
        if (guarded.decision.feasible)
            return guarded;
    }
    // Starved log or infeasible search: run the safe fixed policy
    // instead of a garbage decision. Reported not-feasible — the
    // fallback is a refuge, not a QoS-vetted selection.
    guarded.decision = PolicyDecision{};
    guarded.decision.policy = fallback;
    guarded.decision.feasible = false;
    guarded.degraded = true;
    return guarded;
}

bool
PolicyManager::needsLog() const
{
    return true;
}

PolicyDecision
PolicyManager::decide(const EpochObservation &, const std::vector<Job> &log)
{
    return selectFromLog(log);
}

PolicyManager::GuardedDecision
PolicyManager::decideGuarded(const EpochObservation &,
                             const std::vector<Job> &log,
                             const Policy &fallback)
{
    return selectFromLogGuarded(log, fallback);
}

void
PolicyManager::reset()
{
    // Selection is stateless across epochs; the engine's caches are
    // keyed by inputs, so there is nothing to restore.
}

PolicyDecision
PolicyManager::selectAnalytic(double lambda, double mu) const
{
    fatalIf(lambda <= 0.0 || mu <= 0.0,
            "PolicyManager::selectAnalytic: rates must be positive");
    const MM1SleepModel model(_platform, _scaling);
    const double rho = lambda / mu;
    const double f_floor = _engine->minStableFrequency(rho);
    const PolicySpace &space = _engine->space();
    const QosConstraint &qos = _engine->qos();

    PolicyDecision best;
    PolicyDecision fallback;
    double best_power = std::numeric_limits<double>::infinity();
    double fallback_metric = std::numeric_limits<double>::infinity();
    std::uint64_t evaluated = 0;

    for (const SleepPlan &plan : space.plans) {
        for (double f : space.frequencies) {
            if (f < f_floor)
                continue;
            const Policy candidate{f, plan};
            const double metric =
                qos.analyticValue(model, candidate, lambda, mu);
            const double power = model.meanPower(candidate, lambda, mu);
            ++evaluated;

            if (metric <= qos.budget() && power < best_power) {
                best_power = power;
                best.policy = candidate;
                best.feasible = true;
                best.predictedPower = power;
                best.predictedMetric = metric;
            }
            if (metric < fallback_metric) {
                fallback_metric = metric;
                fallback.policy = candidate;
                fallback.predictedPower = power;
                fallback.predictedMetric = metric;
            }
        }
    }

    fatalIf(evaluated == 0,
            "PolicyManager::selectAnalytic: no stable candidate; arrival "
            "rate too high for the frequency grid");

    PolicyDecision decision = best.feasible ? best : fallback;
    decision.evaluated = evaluated;
    return decision;
}

} // namespace sleepscale
