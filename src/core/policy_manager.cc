#include "core/policy_manager.hh"

#include <cmath>
#include <limits>

#include "analytic/mm1_sleep.hh"
#include "util/error.hh"

namespace sleepscale {

PolicyManager::PolicyManager(const PlatformModel &platform,
                             ServiceScaling scaling, PolicySpace space,
                             QosConstraint qos)
    : _platform(platform), _scaling(scaling), _space(std::move(space)),
      _qos(qos)
{
    fatalIf(_space.plans.empty() || _space.frequencies.empty(),
            "PolicyManager: empty policy space");
    for (double f : _space.frequencies) {
        fatalIf(f <= 0.0 || f > 1.0,
                "PolicyManager: frequencies must be in (0, 1]");
    }
}

double
PolicyManager::logOfferedLoad(const std::vector<Job> &log)
{
    fatalIf(log.size() < 2, "PolicyManager: log needs at least two jobs");
    double demand = 0.0;
    for (const Job &job : log)
        demand += job.size;
    const double span = log.back().arrival;
    fatalIf(span <= 0.0, "PolicyManager: log spans no time");
    return demand / span;
}

double
PolicyManager::logMeanSize(const std::vector<Job> &log)
{
    fatalIf(log.empty(), "PolicyManager: empty log");
    double demand = 0.0;
    for (const Job &job : log)
        demand += job.size;
    return demand / static_cast<double>(log.size());
}

double
PolicyManager::minStableFrequency(double rho) const
{
    // Stability needs µ f^a > λ, i.e. f > ρ^{1/a}; keep the paper's
    // +0.01 margin. Memory-bound work (a = 0) is stable at any f as long
    // as ρ < 1.
    const double margin = std::min(rho + 0.01, 0.999);
    if (_scaling.exponent == 0.0)
        return rho < 1.0 ? 0.0 : 1.0;
    return std::pow(margin, 1.0 / _scaling.exponent);
}

PolicyDecision
PolicyManager::selectFromLog(const std::vector<Job> &log) const
{
    const double rho = logOfferedLoad(log);
    const double f_floor = minStableFrequency(rho);

    PolicyDecision best;
    PolicyDecision fallback; // Best-effort: minimum metric value.
    double best_power = std::numeric_limits<double>::infinity();
    double fallback_metric = std::numeric_limits<double>::infinity();
    std::uint64_t evaluated = 0;

    for (const SleepPlan &plan : _space.plans) {
        for (double f : _space.frequencies) {
            if (f < f_floor)
                continue;
            const Policy candidate{f, plan};
            const PolicyEvaluation eval =
                evaluatePolicy(_platform, _scaling, candidate, log);
            ++evaluated;

            const double metric = _qos.measuredValue(eval.stats);
            const double power = eval.avgPower();
            if (metric <= _qos.budget() && power < best_power) {
                best_power = power;
                best.policy = candidate;
                best.feasible = true;
                best.predictedPower = power;
                best.predictedMetric = metric;
            }
            if (metric < fallback_metric) {
                fallback_metric = metric;
                fallback.policy = candidate;
                fallback.predictedPower = power;
                fallback.predictedMetric = metric;
            }
        }
    }

    fatalIf(evaluated == 0,
            "PolicyManager::selectFromLog: no stable candidate; offered "
            "load too high for the frequency grid");

    PolicyDecision decision = best.feasible ? best : fallback;
    decision.evaluated = evaluated;
    return decision;
}

PolicyDecision
PolicyManager::selectAnalytic(double lambda, double mu) const
{
    fatalIf(lambda <= 0.0 || mu <= 0.0,
            "PolicyManager::selectAnalytic: rates must be positive");
    const MM1SleepModel model(_platform, _scaling);
    const double rho = lambda / mu;
    const double f_floor = minStableFrequency(rho);

    PolicyDecision best;
    PolicyDecision fallback;
    double best_power = std::numeric_limits<double>::infinity();
    double fallback_metric = std::numeric_limits<double>::infinity();
    std::uint64_t evaluated = 0;

    for (const SleepPlan &plan : _space.plans) {
        for (double f : _space.frequencies) {
            if (f < f_floor)
                continue;
            const Policy candidate{f, plan};
            const double metric =
                _qos.analyticValue(model, candidate, lambda, mu);
            const double power = model.meanPower(candidate, lambda, mu);
            ++evaluated;

            if (metric <= _qos.budget() && power < best_power) {
                best_power = power;
                best.policy = candidate;
                best.feasible = true;
                best.predictedPower = power;
                best.predictedMetric = metric;
            }
            if (metric < fallback_metric) {
                fallback_metric = metric;
                fallback.policy = candidate;
                fallback.predictedPower = power;
                fallback.predictedMetric = metric;
            }
        }
    }

    fatalIf(evaluated == 0,
            "PolicyManager::selectAnalytic: no stable candidate; arrival "
            "rate too high for the frequency grid");

    PolicyDecision decision = best.feasible ? best : fallback;
    decision.evaluated = evaluated;
    return decision;
}

} // namespace sleepscale
