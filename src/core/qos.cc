#include "core/qos.hh"

#include <cmath>

#include "util/error.hh"

namespace sleepscale {

std::string
toString(QosMetric metric)
{
    switch (metric) {
      case QosMetric::MeanResponse:
        return "E[R]";
      case QosMetric::TailResponse:
        return "Pr(R>=d)";
    }
    panic("toString: unknown QosMetric");
}

QosConstraint::QosConstraint(QosMetric metric, double budget,
                             double quantile)
    : _metric(metric), _budget(budget), _quantile(quantile)
{
    fatalIf(budget <= 0.0, "QosConstraint: budget must be positive");
    fatalIf(quantile <= 0.0 || quantile >= 100.0,
            "QosConstraint: quantile must be in (0, 100)");
}

QosConstraint
QosConstraint::meanBudget(double budget_seconds)
{
    return QosConstraint(QosMetric::MeanResponse, budget_seconds, 95.0);
}

QosConstraint
QosConstraint::tailBudget(double deadline_seconds, double quantile)
{
    return QosConstraint(QosMetric::TailResponse, deadline_seconds,
                         quantile);
}

QosConstraint
QosConstraint::fromBaselineMean(double rho_b, double service_mean)
{
    fatalIf(rho_b <= 0.0 || rho_b >= 1.0,
            "QosConstraint: rho_b must be in (0, 1)");
    fatalIf(service_mean <= 0.0,
            "QosConstraint: service_mean must be positive");
    return meanBudget(service_mean / (1.0 - rho_b));
}

QosConstraint
QosConstraint::fromBaselineTail(double rho_b, double service_mean,
                                double violation)
{
    fatalIf(rho_b <= 0.0 || rho_b >= 1.0,
            "QosConstraint: rho_b must be in (0, 1)");
    fatalIf(service_mean <= 0.0,
            "QosConstraint: service_mean must be positive");
    fatalIf(violation <= 0.0 || violation >= 1.0,
            "QosConstraint: violation probability must be in (0, 1)");
    const double deadline =
        std::log(1.0 / violation) * service_mean / (1.0 - rho_b);
    return tailBudget(deadline, 100.0 * (1.0 - violation));
}

double
QosConstraint::measuredValue(const SimStats &stats) const
{
    switch (_metric) {
      case QosMetric::MeanResponse:
        return stats.meanResponse();
      case QosMetric::TailResponse:
        return stats.responsePercentile(_quantile);
    }
    panic("QosConstraint::measuredValue: unknown metric");
}

bool
QosConstraint::satisfiedBy(const SimStats &stats) const
{
    return measuredValue(stats) <= _budget;
}

double
QosConstraint::analyticValue(const MM1SleepModel &model,
                             const Policy &policy, double lambda,
                             double mu) const
{
    if (_metric == QosMetric::MeanResponse)
        return model.meanResponse(policy, lambda, mu);

    // Invert the tail: find d with Pr(R >= d) = 1 - quantile/100.
    // Pr(R >= d) is continuous and strictly decreasing in d.
    const double target = 1.0 - _quantile / 100.0;
    double lo = 0.0;
    double hi = _budget;
    while (model.tailProbability(policy, lambda, mu, hi) > target)
        hi *= 2.0;
    for (int iter = 0; iter < 100; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (model.tailProbability(policy, lambda, mu, mid) > target)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

bool
QosConstraint::satisfiedByAnalytic(const MM1SleepModel &model,
                                   const Policy &policy, double lambda,
                                   double mu) const
{
    return analyticValue(model, policy, lambda, mu) <= _budget;
}

} // namespace sleepscale
