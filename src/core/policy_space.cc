#include "core/policy_space.hh"

#include <cmath>

#include "util/error.hh"

namespace sleepscale {

std::vector<double>
PolicySpace::frequencyGrid(double lo, double hi, double step)
{
    fatalIf(lo <= 0.0 || hi > 1.0 || lo > hi,
            "PolicySpace::frequencyGrid: need 0 < lo <= hi <= 1");
    fatalIf(step <= 0.0, "PolicySpace::frequencyGrid: step must be > 0");
    std::vector<double> grid;
    for (double f = lo; f < hi - 1e-12; f += step)
        grid.push_back(f);
    grid.push_back(hi);
    return grid;
}

PolicySpace
PolicySpace::standard()
{
    return allStates(frequencyGrid(0.30, 1.0, 0.05));
}

PolicySpace
PolicySpace::singlePlan(const SleepPlan &plan)
{
    PolicySpace space;
    space.plans = {plan};
    space.frequencies = frequencyGrid(0.30, 1.0, 0.05);
    return space;
}

PolicySpace
PolicySpace::allStates(std::vector<double> frequencies)
{
    PolicySpace space;
    space.frequencies = std::move(frequencies);
    for (LowPowerState state : allLowPowerStates)
        space.plans.push_back(SleepPlan::immediate(state));
    return space;
}

} // namespace sleepscale
