/**
 * @file
 * The named power-management strategies compared in the paper's Figure 9.
 *
 * Every strategy is a RuntimeConfig for the shared SleepScaleRuntime, so
 * comparisons use identical workload feeds, accounting, and predictors:
 *
 *  - SS:       full SleepScale (all five states x frequency grid).
 *  - SS(C3):   SleepScale restricted to the single state C3S0(i).
 *  - DVFS:     frequency management only; idles in C0(i)S0(i) (the state
 *              a frequency governor gets with no C-state management) and
 *              may not enter deeper states.
 *  - R2H(C3):  race-to-halt at f = 1 into C3S0(i).
 *  - R2H(C6):  race-to-halt at f = 1 into C6S0(i).
 */

#ifndef SLEEPSCALE_CORE_STRATEGIES_HH
#define SLEEPSCALE_CORE_STRATEGIES_HH

#include <array>
#include <functional>
#include <string>

#include "core/runtime.hh"
#include "util/registry.hh"

namespace sleepscale {

/** Identifier of a named strategy. */
enum class StrategyKind
{
    SleepScale,     ///< "SS"
    SleepScaleC3,   ///< "SS(C3)"
    DvfsOnly,       ///< "DVFS"
    RaceToHaltC3,   ///< "R2H(C3)"
    RaceToHaltC6,   ///< "R2H(C6)"
};

/** All strategies in the paper's Figure 9 order. */
inline constexpr std::array<StrategyKind, 5> allStrategies = {
    StrategyKind::SleepScale,   StrategyKind::SleepScaleC3,
    StrategyKind::DvfsOnly,     StrategyKind::RaceToHaltC3,
    StrategyKind::RaceToHaltC6,
};

/** Paper-style label, e.g. "R2H(C6)". */
std::string toString(StrategyKind kind);

/**
 * Build the RuntimeConfig of a named strategy.
 *
 * @param kind Which strategy.
 * @param epoch_minutes Policy update interval T.
 * @param over_provision Over-provisioning factor α (applies to the
 *        policy-managed strategies; race-to-halt is already at f = 1).
 * @param rho_b Peak design utilization anchoring the QoS budget.
 * @param qos_metric Which response-time statistic the QoS bounds.
 */
RuntimeConfig makeStrategyConfig(StrategyKind kind, unsigned epoch_minutes,
                                 double over_provision, double rho_b,
                                 QosMetric qos_metric =
                                     QosMetric::MeanResponse);

/** Policy-management knobs a strategy factory specializes. */
struct StrategyKnobs
{
    unsigned epochMinutes = 5;      ///< Policy update interval T.
    double overProvision = 0.0;     ///< Over-provisioning factor α.
    double rhoB = 0.8;              ///< Peak design utilization ρ_b.
    QosMetric qosMetric = QosMetric::MeanResponse;

    /** Candidate-search fan-out width (EvalEngineOptions::threads). */
    std::size_t searchThreads = 1;

    /** Binary-search the per-plan QoS feasibility boundary instead of
     * scanning the whole frequency grid (EvalEngineOptions::pruned). */
    bool prunedSearch = false;

    /** Kalman process-noise variance Q of the "poet" controller
     * (ControllerConfig::processNoise; docs/CONTROL.md). */
    double controllerProcessNoise = 1e-4;

    /** Kalman measurement-noise variance R of the "poet" controller
     * (ControllerConfig::measurementNoise). */
    double controllerMeasurementNoise = 1e-2;

    /** Z-plane pole of the "poet" xup integrator, in [0, 1)
     * (ControllerConfig::pole). */
    double controllerPole = 0.0;

    /** Control period of the "poet" strategy as a multiple of the
     * epoch (ControllerConfig::periodEpochs). */
    unsigned controllerPeriodEpochs = 1;
};

/** Factory signature stored in the strategy registry. */
using StrategyFactory = std::function<RuntimeConfig(const StrategyKnobs &)>;

/**
 * The strategy registry. Ships with the paper's Figure 9 lineup — "SS",
 * "SS(C3)", "DVFS", "R2H(C3)", "R2H(C6)" — keyed by their toString()
 * labels, plus "poet", the O(1) Kalman-filtered feedback controller
 * over the same policy space (docs/CONTROL.md); extensions register
 * additional configurations under new names.
 */
Registry<StrategyFactory> &strategyRegistry();

/** Build a registered strategy's RuntimeConfig; fatal() on unknown names. */
RuntimeConfig strategyConfigByName(const std::string &name,
                                   const StrategyKnobs &knobs);

} // namespace sleepscale

#endif // SLEEPSCALE_CORE_STRATEGIES_HH
