#include "core/eval_engine.hh"

#include <cmath>
#include <limits>

#include "util/error.hh"

namespace sleepscale {

PolicyEvalEngine::PolicyEvalEngine(const PlatformModel &platform,
                                   ServiceScaling scaling,
                                   PolicySpace space, QosConstraint qos,
                                   EvalEngineOptions options)
    : _platform(platform), _scaling(scaling), _space(std::move(space)),
      _qos(qos), _options(options)
{
    fatalIf(_space.plans.empty() || _space.frequencies.empty(),
            "PolicyEvalEngine: empty policy space");
    for (double f : _space.frequencies) {
        fatalIf(f <= 0.0 || f > 1.0,
                "PolicyEvalEngine: frequencies must be in (0, 1]");
    }
    if (_options.pruned) {
        for (std::size_t i = 1; i < _space.frequencies.size(); ++i) {
            fatalIf(_space.frequencies[i] <= _space.frequencies[i - 1],
                    "PolicyEvalEngine: pruned search needs a strictly "
                    "increasing frequency grid");
        }
    }

    // Materialize the whole (plan, frequency) cross product once; the
    // space is static, so every subsequent selection reuses it.
    _materialized.reserve(_space.size());
    for (const SleepPlan &plan : _space.plans) {
        for (double f : _space.frequencies)
            _materialized.emplace_back(plan, _platform, f);
    }

    if (_options.threads != 1)
        _pool = std::make_unique<ThreadPool>(_options.threads);
    const std::size_t lanes = _pool ? _pool->size() : 1;
    _arenas.reserve(lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        _arenas.push_back(
            std::make_unique<ServerSim>(_platform, _scaling, Policy{}));
    }
    _outcomes.resize(_space.size());
}

const MaterializedPlan &
PolicyEvalEngine::materialized(std::size_t plan_idx,
                               std::size_t freq_idx) const
{
    fatalIf(plan_idx >= _space.plans.size() ||
                freq_idx >= _space.frequencies.size(),
            "PolicyEvalEngine::materialized: index out of range");
    return _materialized[plan_idx * _space.frequencies.size() + freq_idx];
}

double
PolicyEvalEngine::minStableFrequency(double rho) const
{
    // Stability needs µ f^a > λ, i.e. f > ρ^{1/a}; keep the paper's
    // +0.01 margin. Memory-bound work (a = 0) is stable at any f as long
    // as ρ < 1.
    const double margin = std::min(rho + 0.01, 0.999);
    if (_scaling.exponent == 0.0)
        return rho < 1.0 ? 0.0 : 1.0;
    return std::pow(margin, 1.0 / _scaling.exponent);
}

void
PolicyEvalEngine::evaluateCandidate(std::size_t index,
                                    const PreparedLog &log,
                                    std::size_t lane, bool record_tail)
{
    Outcome &outcome = _outcomes[index];
    if (outcome.evaluated)
        return;
    const std::size_t freq_idx = index % _space.frequencies.size();
    ServerSim &arena = *_arenas[lane];
    arena.reset(_space.frequencies[freq_idx], _materialized[index]);
    const SimStats &stats = arena.replay(log, record_tail);
    outcome.power = stats.avgPower();
    outcome.metric = _qos.measuredValue(stats);
    outcome.evaluated = true;
}

PolicyDecision
PolicyEvalEngine::reduce(std::uint64_t evaluated) const
{
    // Scan outcomes in candidate-index order — the same plan-major,
    // grid-order walk the serial nested loop performs — with strict
    // comparisons, so any fan-out width and the pruned mode agree with
    // exhaustive serial search down to tie-breaking.
    const std::size_t freqs = _space.frequencies.size();
    PolicyDecision best;
    PolicyDecision fallback; // Best-effort: minimum metric value.
    double best_power = std::numeric_limits<double>::infinity();
    double fallback_metric = std::numeric_limits<double>::infinity();
    std::size_t best_index = 0;
    std::size_t fallback_index = 0;

    for (std::size_t index = 0; index < _outcomes.size(); ++index) {
        const Outcome &outcome = _outcomes[index];
        if (!outcome.evaluated)
            continue;
        if (outcome.metric <= _qos.budget() &&
            outcome.power < best_power) {
            best_power = outcome.power;
            best.feasible = true;
            best.predictedPower = outcome.power;
            best.predictedMetric = outcome.metric;
            best_index = index;
        }
        if (outcome.metric < fallback_metric) {
            fallback_metric = outcome.metric;
            fallback.predictedPower = outcome.power;
            fallback.predictedMetric = outcome.metric;
            fallback_index = index;
        }
    }

    PolicyDecision decision = best.feasible ? best : fallback;
    const std::size_t winner = best.feasible ? best_index : fallback_index;
    decision.policy = Policy{_space.frequencies[winner % freqs],
                             _space.plans[winner / freqs]};
    decision.evaluated = evaluated;
    return decision;
}

PolicyDecision
PolicyEvalEngine::exhaustiveSearch(const PreparedLog &log, double f_floor,
                                   bool record_tail)
{
    const std::size_t freqs = _space.frequencies.size();
    _candidates.clear();
    for (std::size_t index = 0; index < _outcomes.size(); ++index) {
        if (_space.frequencies[index % freqs] >= f_floor &&
            !_outcomes[index].evaluated)
            _candidates.push_back(static_cast<std::uint32_t>(index));
    }

    auto evaluate = [&](std::size_t i, std::size_t lane) {
        evaluateCandidate(_candidates[i], log, lane, record_tail);
    };
    if (_pool)
        _pool->parallelFor(_candidates.size(), evaluate);
    else
        for (std::size_t i = 0; i < _candidates.size(); ++i)
            evaluate(i, 0);

    std::uint64_t evaluated = 0;
    for (const Outcome &outcome : _outcomes)
        evaluated += outcome.evaluated ? 1 : 0;
    fatalIf(evaluated == 0,
            "PolicyEvalEngine::selectFromLog: no stable candidate; "
            "offered load too high for the frequency grid");
    return reduce(evaluated);
}

PolicyDecision
PolicyEvalEngine::prunedSearch(const PreparedLog &log, double f_floor,
                               bool record_tail)
{
    const std::size_t freqs = _space.frequencies.size();
    const std::size_t plans = _space.plans.size();

    // The frequency grid is ascending (validated at construction), so
    // the stable set is a suffix starting at first_stable.
    std::size_t first_stable = freqs;
    for (std::size_t k = 0; k < freqs; ++k) {
        if (_space.frequencies[k] >= f_floor) {
            first_stable = k;
            break;
        }
    }
    fatalIf(first_stable == freqs,
            "PolicyEvalEngine::selectFromLog: no stable candidate; "
            "offered load too high for the frequency grid");

    // Phase A: per plan, binary-search the first feasible frequency
    // (the QoS metric is assumed nonincreasing in f within a plan).
    std::vector<std::size_t> boundary(plans, freqs); // freqs = none.
    auto search_plan = [&](std::size_t p, std::size_t lane) {
        const std::size_t base = p * freqs;
        std::size_t lo = first_stable;
        std::size_t hi = freqs - 1;
        evaluateCandidate(base + hi, log, lane, record_tail);
        if (_outcomes[base + hi].metric > _qos.budget())
            return; // Even f_max misses the budget: nothing feasible.
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            evaluateCandidate(base + mid, log, lane, record_tail);
            if (_outcomes[base + mid].metric <= _qos.budget())
                hi = mid;
            else
                lo = mid + 1;
        }
        boundary[p] = lo;
    };
    if (_pool)
        _pool->parallelFor(plans, search_plan);
    else
        for (std::size_t p = 0; p < plans; ++p)
            search_plan(p, 0);

    // Phase B: characterize every feasible candidate (the suffix above
    // each plan's boundary) for the power reduction.
    _candidates.clear();
    bool any_feasible = false;
    for (std::size_t p = 0; p < plans; ++p) {
        if (boundary[p] == freqs)
            continue;
        any_feasible = true;
        for (std::size_t k = boundary[p]; k < freqs; ++k) {
            const std::size_t index = p * freqs + k;
            if (!_outcomes[index].evaluated)
                _candidates.push_back(
                    static_cast<std::uint32_t>(index));
        }
    }

    if (!any_feasible) {
        // Best-effort fallback must match exhaustive search exactly, so
        // characterize the whole stable set.
        return exhaustiveSearch(log, f_floor, record_tail);
    }

    auto evaluate = [&](std::size_t i, std::size_t lane) {
        evaluateCandidate(_candidates[i], log, lane, record_tail);
    };
    if (_pool)
        _pool->parallelFor(_candidates.size(), evaluate);
    else
        for (std::size_t i = 0; i < _candidates.size(); ++i)
            evaluate(i, 0);

    std::uint64_t evaluated = 0;
    for (const Outcome &outcome : _outcomes)
        evaluated += outcome.evaluated ? 1 : 0;
    return reduce(evaluated);
}

PolicyDecision
PolicyEvalEngine::selectFromPrepared(const PreparedLog &log)
{
    const double rho = log.offeredLoad();
    const double f_floor = minStableFrequency(rho);
    const bool record_tail =
        _qos.metric() == QosMetric::TailResponse;

    for (Outcome &outcome : _outcomes)
        outcome = Outcome{};

    const PolicyDecision decision =
        _options.pruned ? prunedSearch(log, f_floor, record_tail)
                        : exhaustiveSearch(log, f_floor, record_tail);
    _lifetimeEvaluations += decision.evaluated;
    return decision;
}

PolicyDecision
PolicyEvalEngine::selectFromLog(const std::vector<Job> &log)
{
    return selectFromPrepared(PreparedLog::fromJobs(log));
}

} // namespace sleepscale
