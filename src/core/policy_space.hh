/**
 * @file
 * The candidate set the policy manager searches over.
 */

#ifndef SLEEPSCALE_CORE_POLICY_SPACE_HH
#define SLEEPSCALE_CORE_POLICY_SPACE_HH

#include <vector>

#include "sim/policy.hh"
#include "sim/sleep_plan.hh"

namespace sleepscale {

/**
 * Cross product of candidate sleep plans and a frequency grid.
 *
 * A real system exposes roughly ten P-states (the paper, Section 4.1);
 * the default grid reflects that. Figure-generating benches use finer
 * grids via frequencyGrid().
 */
struct PolicySpace
{
    std::vector<SleepPlan> plans;
    std::vector<double> frequencies;

    /** Number of (plan, frequency) combinations. */
    std::size_t size() const { return plans.size() * frequencies.size(); }

    /**
     * Evenly spaced frequency grid {lo, lo+step, ..., hi} (hi always
     * included).
     */
    static std::vector<double> frequencyGrid(double lo, double hi,
                                             double step);

    /**
     * The SleepScale default: all five single-state plans crossed with a
     * realistic ~15-point frequency grid.
     */
    static PolicySpace standard();

    /** A single-plan space (e.g. SS(C3) or the DVFS-only baseline). */
    static PolicySpace singlePlan(const SleepPlan &plan);

    /** All five single-state plans over a caller-provided grid. */
    static PolicySpace allStates(std::vector<double> frequencies);
};

} // namespace sleepscale

#endif // SLEEPSCALE_CORE_POLICY_SPACE_HH
