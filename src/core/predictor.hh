/**
 * @file
 * Minute-granularity utilization predictors (paper Section 5.2.2).
 *
 * Predictors observe the measured offered load of each completed minute
 * and forecast the next minute. The runtime queries them at epoch
 * boundaries (the prediction for the first minute of the upcoming epoch
 * parameterizes the whole epoch, per Section 5.2.3).
 */

#ifndef SLEEPSCALE_CORE_PREDICTOR_HH
#define SLEEPSCALE_CORE_PREDICTOR_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/registry.hh"

namespace sleepscale {

/** Interface shared by all utilization predictors. */
class UtilizationPredictor
{
  public:
    virtual ~UtilizationPredictor() = default;

    /**
     * Forecast the utilization of minute `minute` (the minute about to
     * run). Only the offline genie uses the index; causal predictors
     * forecast from their observation history.
     */
    virtual double predict(std::size_t minute) = 0;

    /**
     * Record the measured utilization of minute `minute` once it has
     * completed. Values are clamped to [0, 1] by callers.
     */
    virtual void observe(std::size_t minute, double utilization) = 0;

    /** Predictor name for reports ("NP", "LMS", "LC", "Offline"). */
    virtual std::string name() const = 0;
};

/**
 * Naive-previous: forecasts the most recently observed minute. Tracks
 * abrupt changes immediately but never smooths noise.
 */
class NaivePreviousPredictor final : public UtilizationPredictor
{
  public:
    /** @param initial Forecast before any observation exists. */
    explicit NaivePreviousPredictor(double initial = 0.5);
    double predict(std::size_t minute) override;
    void observe(std::size_t minute, double utilization) override;
    std::string name() const override { return "NP"; }

  private:
    double _last;
};

/**
 * Least-mean-square adaptive filter (paper's LMS-only predictor): a
 * p-tap linear predictor over the last p minutes whose weights adapt by
 * normalized LMS. Smooths noise well but lags abrupt changes.
 */
class LmsPredictor final : public UtilizationPredictor
{
  public:
    /**
     * @param history Maximum tap count p (the paper uses p = 10).
     * @param initial Forecast before observations exist.
     * @param step NLMS adaptation step size in (0, 2).
     */
    explicit LmsPredictor(std::size_t history = 10, double initial = 0.5,
                          double step = 0.5);
    double predict(std::size_t minute) override;
    void observe(std::size_t minute, double utilization) override;
    std::string name() const override { return "LMS"; }

    /** Current tap count (fixed at `history` for plain LMS). */
    std::size_t taps() const { return _weights.size(); }

  protected:
    /** Weighted forecast from the current history, clamped to [0, 1]. */
    double forecast() const;

    /** NLMS weight update for the given prediction error. */
    void adapt(double error);

    /** Push a new observation into the history ring. */
    void pushHistory(double utilization);

    std::size_t _maxHistory;
    double _initial;
    double _step;
    std::vector<double> _weights; ///< Newest-first taps.
    std::vector<double> _history; ///< Newest-first observations.

    friend class LmsCusumPredictor;
};

/**
 * LMS with CUSUM change-point detection (paper Algorithm 2): plain LMS
 * while the workload is stationary; when the cumulative prediction-error
 * statistic crosses an adaptive threshold the tap count collapses to one
 * (dropping the smoothing to track the change), then regrows toward the
 * maximum as stationarity returns. On every resize the weights are
 * re-spread uniformly, preserving their total gain, exactly as in the
 * paper's pseudo-code.
 */
class LmsCusumPredictor final : public UtilizationPredictor
{
  public:
    /**
     * @param history Maximum tap count (paper: p = 10).
     * @param initial Forecast before observations exist.
     * @param step NLMS adaptation step size.
     */
    explicit LmsCusumPredictor(std::size_t history = 10,
                               double initial = 0.5, double step = 0.5);
    double predict(std::size_t minute) override;
    void observe(std::size_t minute, double utilization) override;
    std::string name() const override { return "LC"; }

    /** Current (adaptive) tap count. */
    std::size_t taps() const { return _currentTaps; }

    /** Number of change points detected so far. */
    std::size_t changesDetected() const { return _changes; }

  private:
    std::size_t _maxHistory;
    double _step;
    std::vector<double> _weights;
    std::vector<double> _history;
    double _initial;
    std::size_t _currentTaps;

    // One-sided CUSUM on absolute prediction error with an EWMA-adaptive
    // drift and threshold.
    double _errorEwma = 0.0;
    double _errorVarEwma = 0.0;
    double _cusum = 0.0;
    std::size_t _observations = 0;
    std::size_t _changes = 0;

    double forecast() const;
    void resizeTaps(std::size_t taps);
};

/**
 * Offline genie: returns the true trace value for the requested minute
 * (non-causal upper bound on every causal predictor).
 */
class OfflinePredictor final : public UtilizationPredictor
{
  public:
    /** @param trace True per-minute utilization values. */
    explicit OfflinePredictor(std::vector<double> trace);
    double predict(std::size_t minute) override;
    void observe(std::size_t minute, double utilization) override;
    std::string name() const override { return "Offline"; }

  private:
    std::vector<double> _trace;
};

/** Inputs available to a predictor factory. */
struct PredictorContext
{
    /** Tap/history length for the adaptive predictors. */
    std::size_t history = 10;

    /** True per-minute trace (only the offline genie reads it). */
    std::vector<double> trace;
};

/** Factory signature stored in the predictor registry. */
using PredictorFactory = std::function<std::unique_ptr<UtilizationPredictor>(
    const PredictorContext &)>;

/**
 * The predictor registry. Ships with "NP", "LMS", "LC", and "Offline";
 * extensions register additional factories under new names.
 */
Registry<PredictorFactory> &predictorRegistry();

/** Construct a registered predictor by name; fatal() on unknown names. */
std::unique_ptr<UtilizationPredictor>
makePredictor(const std::string &name, std::size_t history = 10,
              const std::vector<double> &trace = {});

} // namespace sleepscale

#endif // SLEEPSCALE_CORE_PREDICTOR_HH
