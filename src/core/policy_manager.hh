/**
 * @file
 * The policy manager (paper Section 5.1).
 *
 * Given a statistical description of the current workload — either an
 * empirical job log (SleepScale proper) or (λ, µ) rates (the idealized
 * model) — characterize every candidate (frequency, sleep plan) pair and
 * return the one that minimizes average power subject to the QoS
 * constraint. Characterization of a candidate is one run of the queueing
 * simulation (Algorithm 1) over the log, or one closed-form evaluation.
 */

#ifndef SLEEPSCALE_CORE_POLICY_MANAGER_HH
#define SLEEPSCALE_CORE_POLICY_MANAGER_HH

#include <cstdint>
#include <vector>

#include "core/policy_space.hh"
#include "core/qos.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "workload/job.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/** Outcome of one policy selection. */
struct PolicyDecision
{
    /** The selected policy. */
    Policy policy;

    /** True if some candidate met the QoS constraint. When false the
     * returned policy is the best-effort (fastest) candidate. */
    bool feasible = false;

    /** Predicted average power of the selection, watts. */
    double predictedPower = 0.0;

    /** Predicted value of the constrained QoS metric, seconds. */
    double predictedMetric = 0.0;

    /** Candidates actually characterized (stable ones). */
    std::uint64_t evaluated = 0;
};

/** Searches a PolicySpace for the minimum-power QoS-feasible policy. */
class PolicyManager
{
  public:
    /**
     * @param platform Power model (not owned; must outlive the manager).
     * @param scaling Service-time scaling law of the hosted workload.
     * @param space Candidate plans and frequencies.
     * @param qos Constraint candidate policies must satisfy.
     */
    PolicyManager(const PlatformModel &platform, ServiceScaling scaling,
                  PolicySpace space, QosConstraint qos);

    /**
     * Select the best policy for an empirical job log (SleepScale mode).
     *
     * Every stable candidate is characterized by simulating the log
     * (paper Algorithm 1); unstable frequencies (offered load at or above
     * the effective service rate) are skipped, mirroring the paper's
     * f >= ρ + 0.01 floor.
     *
     * @param log Arrival-ordered jobs; needs at least two jobs.
     */
    PolicyDecision selectFromLog(const std::vector<Job> &log) const;

    /**
     * Select the best policy under the idealized model (closed forms, no
     * simulation) — the paper's Figure 6 solid lines.
     *
     * @param lambda Poisson arrival rate, jobs/s.
     * @param mu Maximum service rate, jobs/s at f = 1.
     */
    PolicyDecision selectAnalytic(double lambda, double mu) const;

    /** The QoS constraint in force. */
    const QosConstraint &qos() const { return _qos; }

    /** The candidate space. */
    const PolicySpace &space() const { return _space; }

    /** Offered load of a job log: total demand / spanned time. */
    static double logOfferedLoad(const std::vector<Job> &log);

    /** Mean job size of a log, seconds at f = 1. */
    static double logMeanSize(const std::vector<Job> &log);

  private:
    const PlatformModel &_platform;
    ServiceScaling _scaling;
    PolicySpace _space;
    QosConstraint _qos;

    /** Smallest stable frequency for an offered load ρ (paper's ρ+0.01
     * floor, adjusted for the scaling exponent). */
    double minStableFrequency(double rho) const;
};

} // namespace sleepscale

#endif // SLEEPSCALE_CORE_POLICY_MANAGER_HH
