/**
 * @file
 * The policy manager (paper Section 5.1).
 *
 * Given a statistical description of the current workload — either an
 * empirical job log (SleepScale proper) or (λ, µ) rates (the idealized
 * model) — characterize every candidate (frequency, sleep plan) pair and
 * return the one that minimizes average power subject to the QoS
 * constraint. Log-driven selection is delegated to the batched
 * PolicyEvalEngine (eval_engine.hh), which caches the materialized policy
 * space and evaluates candidates on reusable, optionally parallel
 * simulation arenas; closed-form selection evaluates the M/M/1 model
 * directly.
 */

#ifndef SLEEPSCALE_CORE_POLICY_MANAGER_HH
#define SLEEPSCALE_CORE_POLICY_MANAGER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/epoch_decider.hh"
#include "core/eval_engine.hh"
#include "core/policy_space.hh"
#include "core/qos.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "workload/job.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/**
 * Searches a PolicySpace for the minimum-power QoS-feasible policy.
 *
 * The search-based EpochDecider: decide() delegates to selectFromLog()
 * and ignores the scalar observation, so the runtimes drive the
 * search path and the O(1) controller (control/controller_manager.hh)
 * through one interface.
 */
class PolicyManager : public EpochDecider
{
  public:
    /**
     * @param platform Power model (not owned; must outlive the manager).
     * @param scaling Service-time scaling law of the hosted workload.
     * @param space Candidate plans and frequencies.
     * @param qos Constraint candidate policies must satisfy.
     * @param options Candidate-search knobs (fan-out width, pruning).
     */
    PolicyManager(const PlatformModel &platform, ServiceScaling scaling,
                  PolicySpace space, QosConstraint qos,
                  EvalEngineOptions options = {});

    /**
     * Select the best policy for an empirical job log (SleepScale mode).
     *
     * Every stable candidate is characterized by simulating the log
     * (paper Algorithm 1); unstable frequencies (offered load at or above
     * the effective service rate) are skipped, mirroring the paper's
     * f >= ρ + 0.01 floor.
     *
     * const in the logical sense: the decision depends only on the log
     * and the construction-time configuration. The engine's internal
     * caches and arenas do mutate, so concurrent calls on one manager
     * are not safe — use one manager per concurrent controller.
     *
     * @param log Arrival-ordered jobs; needs at least two jobs.
     */
    PolicyDecision selectFromLog(const std::vector<Job> &log) const;

    /**
     * Select the best policy under the idealized model (closed forms, no
     * simulation) — the paper's Figure 6 solid lines.
     *
     * @param lambda Poisson arrival rate, jobs/s.
     * @param mu Maximum service rate, jobs/s at f = 1.
     */
    PolicyDecision selectAnalytic(double lambda, double mu) const;

    /** Outcome of a degraded-mode-aware selection — the shared
     * decider type (core/epoch_decider.hh), re-exported under its
     * historical nested name. */
    using GuardedDecision = sleepscale::GuardedDecision;

    /**
     * Degraded-mode selection contract (docs/FAULTS.md): search the log
     * as selectFromLog() does, but instead of searching garbage, fall
     * back to the caller's safe fixed policy when the log is starved
     * (fewer than two jobs — e.g. the server spent the epoch down) or
     * when no candidate meets the QoS budget (the search exceeded what
     * the budget allows). The fallback is reported as degraded and not
     * feasible, so callers can surface it per epoch.
     *
     * Same thread-safety contract as selectFromLog(): one manager per
     * concurrent controller.
     *
     * @param log Arrival-ordered jobs (may be thin or empty).
     * @param fallback Safe fixed policy used when degraded.
     */
    GuardedDecision selectFromLogGuarded(const std::vector<Job> &log,
                                         const Policy &fallback) const;

    bool needsLog() const override;

    PolicyDecision decide(const EpochObservation &observation,
                          const std::vector<Job> &log) override;

    GuardedDecision decideGuarded(const EpochObservation &observation,
                                  const std::vector<Job> &log,
                                  const Policy &fallback) override;

    void reset() override;

    /** The QoS constraint in force. */
    const QosConstraint &qos() const { return _engine->qos(); }

    /** The candidate space. */
    const PolicySpace &space() const { return _engine->space(); }

    /** The evaluation engine backing selectFromLog() (read-only; the
     * manager is the only mutation path, preserving the const barrier
     * the runtimes expose). */
    const PolicyEvalEngine &engine() const { return *_engine; }

    /** Offered load of a job log: total demand / spanned time. */
    static double logOfferedLoad(const std::vector<Job> &log);

    /** Mean job size of a log, seconds at f = 1. */
    static double logMeanSize(const std::vector<Job> &log);

  private:
    const PlatformModel &_platform;
    ServiceScaling _scaling;

    /** Owned through a pointer so logically-const selections can drive
     * the engine's mutable caches. */
    std::unique_ptr<PolicyEvalEngine> _engine;
};

} // namespace sleepscale

#endif // SLEEPSCALE_CORE_POLICY_MANAGER_HH
