#include "core/strategies.hh"

#include "util/error.hh"

namespace sleepscale {

std::string
toString(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::SleepScale:
        return "SS";
      case StrategyKind::SleepScaleC3:
        return "SS(C3)";
      case StrategyKind::DvfsOnly:
        return "DVFS";
      case StrategyKind::RaceToHaltC3:
        return "R2H(C3)";
      case StrategyKind::RaceToHaltC6:
        return "R2H(C6)";
    }
    panic("toString: unknown StrategyKind");
}

RuntimeConfig
makeStrategyConfig(StrategyKind kind, unsigned epoch_minutes,
                   double over_provision, double rho_b,
                   QosMetric qos_metric)
{
    RuntimeConfig config;
    config.epochMinutes = epoch_minutes;
    config.overProvision = over_provision;
    config.rhoB = rho_b;
    config.qosMetric = qos_metric;

    switch (kind) {
      case StrategyKind::SleepScale:
        config.space = PolicySpace::standard();
        break;
      case StrategyKind::SleepScaleC3:
        config.space = PolicySpace::singlePlan(
            SleepPlan::immediate(LowPowerState::C3S0Idle));
        break;
      case StrategyKind::DvfsOnly:
        config.space = PolicySpace::singlePlan(
            SleepPlan::immediate(LowPowerState::C0IdleS0Idle));
        break;
      case StrategyKind::RaceToHaltC3:
        config.fixedPolicy = raceToHalt(LowPowerState::C3S0Idle);
        break;
      case StrategyKind::RaceToHaltC6:
        config.fixedPolicy = raceToHalt(LowPowerState::C6S0Idle);
        break;
    }
    return config;
}

Registry<StrategyFactory> &
strategyRegistry()
{
    static Registry<StrategyFactory> registry = [] {
        Registry<StrategyFactory> r("strategy");
        for (StrategyKind kind : allStrategies) {
            r.add(toString(kind), [kind](const StrategyKnobs &knobs) {
                RuntimeConfig config = makeStrategyConfig(
                    kind, knobs.epochMinutes, knobs.overProvision,
                    knobs.rhoB, knobs.qosMetric);
                config.search.threads = knobs.searchThreads;
                config.search.pruned = knobs.prunedSearch;
                return config;
            });
        }
        // The O(1) feedback controller over the full SleepScale
        // policy space (docs/CONTROL.md).
        r.add("poet", [](const StrategyKnobs &knobs) {
            RuntimeConfig config = makeStrategyConfig(
                StrategyKind::SleepScale, knobs.epochMinutes,
                knobs.overProvision, knobs.rhoB, knobs.qosMetric);
            ControllerConfig controller;
            controller.processNoise = knobs.controllerProcessNoise;
            controller.measurementNoise =
                knobs.controllerMeasurementNoise;
            controller.pole = knobs.controllerPole;
            controller.periodEpochs = knobs.controllerPeriodEpochs;
            config.controller = controller;
            return config;
        });
        return r;
    }();
    return registry;
}

RuntimeConfig
strategyConfigByName(const std::string &name, const StrategyKnobs &knobs)
{
    return strategyRegistry().get(name)(knobs);
}

} // namespace sleepscale
