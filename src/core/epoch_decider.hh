/**
 * @file
 * The per-epoch decision interface shared by the search-based policy
 * manager and the O(1) feedback controller.
 *
 * SleepScaleRuntime and FarmRuntime make exactly one policy decision
 * per epoch. PR 8 splits the *decision mechanism* from the *decision
 * site*: the runtimes talk to an EpochDecider, and two implementations
 * plug in —
 *
 *  - PolicyManager (core/policy_manager.hh): simulate every candidate
 *    (plan, frequency) pair against a rescaled job log and pick the
 *    cheapest QoS-feasible one (~ms per decision; needsLog() = true).
 *  - ControllerManager (control/controller_manager.hh): Kalman-filtered
 *    POET-style feedback control from scalar epoch observations
 *    (~µs per decision; needsLog() = false, so the runtimes skip log
 *    construction entirely).
 *
 * The observation struct carries everything a log-free decider can use;
 * log-based deciders ignore it and read the job log instead. Both paths
 * are deterministic: decisions are pure functions of the construction
 * configuration, the observation/log stream, and the decider's own
 * state, with no clocks or ambient entropy (docs/CONCURRENCY.md).
 */

#ifndef SLEEPSCALE_CORE_EPOCH_DECIDER_HH
#define SLEEPSCALE_CORE_EPOCH_DECIDER_HH

#include <vector>

#include "core/eval_engine.hh"
#include "sim/policy.hh"
#include "workload/job.hh"

namespace sleepscale {

/**
 * Scalar measurements from the epoch that just closed, handed to the
 * decider at the epoch boundary. All values describe the *previous*
 * epoch window; the prediction describes the upcoming one.
 */
struct EpochObservation
{
    /** Forecast offered load of the upcoming epoch, in [0, 1]. */
    double predictedUtilization = 0.0;

    /** Measured offered load of the closed epoch (demand at f = 1 over
     * wall time; per-server view in farms). */
    double measuredUtilization = 0.0;

    /** Measured value of the constrained QoS statistic over the closed
     * epoch, seconds; meaningful only when hasMeasurement. */
    double measuredQos = 0.0;

    /** Mean job size of the closed epoch, seconds at f = 1; 0 when the
     * epoch saw no arrivals. */
    double meanJobSize = 0.0;

    /** Whether the closed epoch completed any jobs (a QoS statistic
     * exists). False on the first boundary and across idle epochs. */
    bool hasMeasurement = false;

    /** Fault plane starved this decider's measurement window (the
     * server spent the epoch down; see docs/FAULTS.md). */
    bool faultStarved = false;

    /** The policy actually in force during the closed epoch (includes
     * any over-provisioning boost). */
    Policy applied;
};

/** Outcome of a degraded-mode-aware decision (docs/FAULTS.md). */
struct GuardedDecision
{
    /** The decision, or the fallback dressed as one. */
    PolicyDecision decision;

    /** The decider fell back to the safe fixed policy. */
    bool degraded = false;
};

/**
 * One per-epoch policy decision mechanism. Stateful deciders (the
 * feedback controller) carry estimator state across decide() calls;
 * reset() restores the freshly constructed state so one instance can
 * drive independent runs back to back.
 *
 * Thread-safety contract (same as PolicyManager::selectFromLog): one
 * decider per concurrent control loop; calls on one instance are
 * never made concurrently.
 */
class EpochDecider
{
  public:
    virtual ~EpochDecider() = default;

    /** Whether decide() consumes the rescaled job log. When false the
     * runtime skips log collection and construction entirely — the
     * whole point of the O(1) path. */
    virtual bool needsLog() const = 0;

    /**
     * Decide the policy for the upcoming epoch.
     *
     * @param observation Scalar measurements of the closed epoch.
     * @param log Rescaled job log (empty when needsLog() is false).
     */
    virtual PolicyDecision decide(const EpochObservation &observation,
                                  const std::vector<Job> &log) = 0;

    /**
     * Degraded-mode decision (docs/FAULTS.md): decide as decide()
     * does, but fall back to the caller's safe fixed policy when the
     * measurement window is starved or the decision is infeasible.
     *
     * @param observation Scalar measurements of the closed epoch.
     * @param log Rescaled job log (empty when needsLog() is false).
     * @param fallback Safe fixed policy used when degraded.
     */
    virtual GuardedDecision
    decideGuarded(const EpochObservation &observation,
                  const std::vector<Job> &log,
                  const Policy &fallback) = 0;

    /** Restore the freshly constructed decision state. */
    virtual void reset() = 0;
};

} // namespace sleepscale

#endif // SLEEPSCALE_CORE_EPOCH_DECIDER_HH
