#include "core/predictor.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hh"

namespace sleepscale {

// ---------------------------------------------------------- NaivePrevious

NaivePreviousPredictor::NaivePreviousPredictor(double initial)
    : _last(initial)
{
    fatalIf(initial < 0.0 || initial > 1.0,
            "NaivePreviousPredictor: initial must be in [0, 1]");
}

double
NaivePreviousPredictor::predict(std::size_t minute)
{
    (void)minute;
    return _last;
}

void
NaivePreviousPredictor::observe(std::size_t minute, double utilization)
{
    (void)minute;
    _last = std::clamp(utilization, 0.0, 1.0);
}

// -------------------------------------------------------------------- LMS

LmsPredictor::LmsPredictor(std::size_t history, double initial, double step)
    : _maxHistory(history), _initial(initial), _step(step)
{
    fatalIf(history == 0, "LmsPredictor: history must be positive");
    fatalIf(step <= 0.0 || step >= 2.0,
            "LmsPredictor: NLMS step must be in (0, 2)");
    _weights.assign(history, 1.0 / static_cast<double>(history));
}

namespace {

/** Plain average used while the history is shorter than the filter. */
double
partialHistoryAverage(const std::vector<double> &history)
{
    double sum = 0.0;
    for (double h : history)
        sum += h;
    return sum / static_cast<double>(history.size());
}

} // namespace

double
LmsPredictor::forecast() const
{
    if (_history.empty())
        return _initial;
    // Until the delay line fills, a weighted sum over missing samples
    // would be biased low; average what exists instead.
    if (_history.size() < _weights.size())
        return std::clamp(partialHistoryAverage(_history), 0.0, 1.0);
    double estimate = 0.0;
    for (std::size_t i = 0; i < _weights.size(); ++i)
        estimate += _weights[i] * _history[i];
    // The paper's Algorithm 2 clamps the forecast at 1; negative
    // transients are clamped symmetrically.
    return std::clamp(estimate, 0.0, 1.0);
}

void
LmsPredictor::adapt(double error)
{
    // Normalized LMS: v <- v + step * e * x / (||x||^2 + eps); the
    // normalization keeps adaptation stable for any input scale.
    const std::size_t taps = std::min(_weights.size(), _history.size());
    if (taps == 0)
        return;
    double norm = 1e-6;
    for (std::size_t i = 0; i < taps; ++i)
        norm += _history[i] * _history[i];
    for (std::size_t i = 0; i < taps; ++i)
        _weights[i] += _step * error * _history[i] / norm;
}

void
LmsPredictor::pushHistory(double utilization)
{
    _history.insert(_history.begin(),
                    std::clamp(utilization, 0.0, 1.0));
    if (_history.size() > _maxHistory)
        _history.pop_back();
}

double
LmsPredictor::predict(std::size_t minute)
{
    (void)minute;
    return forecast();
}

void
LmsPredictor::observe(std::size_t minute, double utilization)
{
    (void)minute;
    const double error =
        std::clamp(utilization, 0.0, 1.0) - forecast();
    adapt(error);
    pushHistory(utilization);
}

// -------------------------------------------------------------- LMS+CUSUM

LmsCusumPredictor::LmsCusumPredictor(std::size_t history, double initial,
                                     double step)
    : _maxHistory(history), _step(step), _initial(initial),
      _currentTaps(history)
{
    fatalIf(history == 0, "LmsCusumPredictor: history must be positive");
    fatalIf(step <= 0.0 || step >= 2.0,
            "LmsCusumPredictor: NLMS step must be in (0, 2)");
    _weights.assign(history, 1.0 / static_cast<double>(history));
}

double
LmsCusumPredictor::forecast() const
{
    if (_history.empty())
        return _initial;
    if (_history.size() < _currentTaps)
        return std::clamp(partialHistoryAverage(_history), 0.0, 1.0);
    double estimate = 0.0;
    for (std::size_t i = 0; i < _currentTaps; ++i)
        estimate += _weights[i] * _history[i];
    return std::clamp(estimate, 0.0, 1.0);
}

void
LmsCusumPredictor::resizeTaps(std::size_t taps)
{
    // Algorithm 2 lines 10 and 12: redistribute the accumulated gain
    // sum(v) uniformly over the new tap count.
    const double gain =
        std::accumulate(_weights.begin(),
                        _weights.begin() +
                            static_cast<std::ptrdiff_t>(_currentTaps),
                        0.0);
    _currentTaps = taps;
    _weights.assign(_maxHistory, 0.0);
    for (std::size_t i = 0; i < taps; ++i)
        _weights[i] = gain / static_cast<double>(taps);
}

double
LmsCusumPredictor::predict(std::size_t minute)
{
    (void)minute;
    return forecast();
}

void
LmsCusumPredictor::observe(std::size_t minute, double utilization)
{
    (void)minute;
    const double actual = std::clamp(utilization, 0.0, 1.0);
    const double error = actual - forecast();
    const double abs_error = std::abs(error);

    // NLMS update over the active taps (Algorithm 2 line 7).
    {
        const std::size_t taps = std::min(
            _currentTaps, std::min(_weights.size(), _history.size()));
        if (taps > 0) {
            double norm = 1e-6;
            for (std::size_t i = 0; i < taps; ++i)
                norm += _history[i] * _history[i];
            for (std::size_t i = 0; i < taps; ++i)
                _weights[i] += _step * error * _history[i] / norm;
        }
    }

    // One-sided CUSUM on |error| with EWMA-adaptive drift/threshold
    // (Algorithm 2 lines 8-13; the paper leaves the test parameters
    // open, see DESIGN.md). The drift and threshold are derived from the
    // error statistics *before* absorbing the current error — otherwise a
    // genuine change point inflates its own detection threshold.
    ++_observations;
    const double error_std = std::sqrt(_errorVarEwma);
    const double drift = _errorEwma + 0.5 * error_std;
    const double threshold = 4.0 * error_std + 0.02;
    _cusum = std::max(0.0, _cusum + abs_error - drift);

    const bool warmed_up = _observations > 3;
    if (warmed_up && _cusum > threshold) {
        resizeTaps(1);          // Track: drop all smoothing.
        _history.clear();       // The old regime's samples are invalid.
        _cusum = 0.0;
        ++_changes;
    } else if (_currentTaps < _maxHistory) {
        resizeTaps(_currentTaps + 1); // Re-grow toward stationarity.
    }

    constexpr double beta = 0.9;
    const double deviation = abs_error - _errorEwma;
    _errorEwma = beta * _errorEwma + (1.0 - beta) * abs_error;
    _errorVarEwma =
        beta * _errorVarEwma + (1.0 - beta) * deviation * deviation;

    _history.insert(_history.begin(), actual);
    if (_history.size() > _maxHistory)
        _history.pop_back();
}

// ---------------------------------------------------------------- Offline

OfflinePredictor::OfflinePredictor(std::vector<double> trace)
    : _trace(std::move(trace))
{
    fatalIf(_trace.empty(), "OfflinePredictor: empty trace");
}

double
OfflinePredictor::predict(std::size_t minute)
{
    fatalIf(minute >= _trace.size(),
            "OfflinePredictor: minute beyond the trace");
    return _trace[minute];
}

void
OfflinePredictor::observe(std::size_t minute, double utilization)
{
    (void)minute;
    (void)utilization;
}

// ---------------------------------------------------------------- factory

Registry<PredictorFactory> &
predictorRegistry()
{
    static Registry<PredictorFactory> registry = [] {
        Registry<PredictorFactory> r("predictor");
        r.add("NP", [](const PredictorContext &) {
            return std::make_unique<NaivePreviousPredictor>();
        });
        r.add("LMS", [](const PredictorContext &ctx) {
            return std::make_unique<LmsPredictor>(ctx.history);
        });
        r.add("LC", [](const PredictorContext &ctx) {
            return std::make_unique<LmsCusumPredictor>(ctx.history);
        });
        r.add("Offline", [](const PredictorContext &ctx) {
            fatalIf(ctx.trace.empty(),
                    "predictor 'Offline' needs a trace");
            return std::make_unique<OfflinePredictor>(ctx.trace);
        });
        return r;
    }();
    return registry;
}

std::unique_ptr<UtilizationPredictor>
makePredictor(const std::string &name, std::size_t history,
              const std::vector<double> &trace)
{
    PredictorContext ctx;
    ctx.history = history;
    ctx.trace = trace;
    return predictorRegistry().get(name)(ctx);
}

} // namespace sleepscale
