#include "core/runtime.hh"

#include <algorithm>
#include <cmath>

#include "control/controller_manager.hh"
#include "util/error.hh"
#include "util/monotonic_clock.hh"

namespace sleepscale {

namespace {

constexpr double secondsPerMinute = 60.0;

/**
 * Streaming replacement of offeredLoad() for epoch accounting: a
 * degenerate window reports zero load instead of dividing by zero.
 */
double
windowLoad(const std::vector<Job> &jobs, double window)
{
    if (window <= 0.0)
        return 0.0;
    double demand = 0.0;
    for (const Job &job : jobs)
        demand += job.size;
    return demand / window;
}

QosConstraint
deriveQos(const RuntimeConfig &config, const WorkloadSpec &spec)
{
    if (config.qosMetric == QosMetric::MeanResponse)
        return QosConstraint::fromBaselineMean(config.rhoB,
                                               spec.serviceMean);
    return QosConstraint::fromBaselineTail(config.rhoB, spec.serviceMean);
}

} // namespace

std::array<double, numLowPowerStates>
RuntimeResult::stateSelectionFractions() const
{
    std::array<double, numLowPowerStates> fractions{};
    std::size_t decided = 0;
    for (const EpochReport &epoch : epochs) {
        if (!epoch.decided)
            continue;
        ++decided;
        ++fractions[depthIndex(epoch.policy.plan.deepest())];
    }
    if (decided == 0)
        return fractions;
    for (double &fraction : fractions)
        fraction /= static_cast<double>(decided);
    return fractions;
}

SleepScaleRuntime::SleepScaleRuntime(const PlatformModel &platform,
                                     const WorkloadSpec &spec,
                                     RuntimeConfig config)
    : _platform(platform), _spec(spec), _config(std::move(config)),
      _qos(deriveQos(_config, spec))
{
    fatalIf(_config.epochMinutes == 0,
            "SleepScaleRuntime: epochMinutes must be positive");
    fatalIf(_config.overProvision < 0.0,
            "SleepScaleRuntime: overProvision must be >= 0");
    fatalIf(_config.evalLogCap < 2,
            "SleepScaleRuntime: evalLogCap must be at least 2");
    fatalIf(_config.historyEpochs == 0,
            "SleepScaleRuntime: historyEpochs must be positive");
    if (!_config.fixedPolicy) {
        if (_config.controller) {
            _manager = std::make_unique<ControllerManager>(
                _platform, _spec.scaling, _config.space, _qos,
                *_config.controller, _config.initialPolicy);
        } else {
            auto manager = std::make_unique<PolicyManager>(
                _platform, _spec.scaling, _config.space, _qos,
                _config.search);
            _searchManager = manager.get();
            _manager = std::move(manager);
        }
    }
}

std::vector<Job>
SleepScaleRuntime::buildEvalLog(const std::vector<Job> &history,
                                double predicted) const
{
    if (history.size() < 2)
        return {};

    // Keep only the most recent jobs up to the cap.
    const std::size_t keep = std::min(_config.evalLogCap,
                                      history.size());
    const std::size_t first = history.size() - keep;

    // Measured offered load across the kept window: demand of the jobs
    // that follow the first kept arrival over the spanned time.
    const double span =
        history.back().arrival - history[first].arrival;
    if (span <= 0.0)
        return {};
    double demand = 0.0;
    for (std::size_t i = first + 1; i < history.size(); ++i)
        demand += history[i].size;
    const double measured = demand / span;
    if (measured <= 0.0)
        return {};

    // Rescale arrival gaps so the log's offered load equals the
    // prediction; job sizes are untouched (the service distribution is
    // stationary, Section 6). The first kept job is re-anchored at one
    // mean gap.
    const double target = std::clamp(predicted, 0.01, 0.99);
    const double gap_scale = measured / target;
    const double mean_gap =
        span / static_cast<double>(keep - 1) * gap_scale;

    std::vector<Job> log;
    log.reserve(keep);
    double clock = mean_gap;
    log.push_back({clock, history[first].size});
    for (std::size_t i = first + 1; i < history.size(); ++i) {
        clock += (history[i].arrival - history[i - 1].arrival) *
                 gap_scale;
        log.push_back({clock, history[i].size});
    }
    return log;
}

RuntimeResult
SleepScaleRuntime::run(const std::vector<Job> &jobs,
                       const UtilizationTrace &trace,
                       UtilizationPredictor &predictor) const
{
    VectorSource source = VectorSource::view(jobs);
    return run(source, trace, predictor);
}

RuntimeResult
SleepScaleRuntime::run(JobSource &source, const UtilizationTrace &trace,
                       UtilizationPredictor &predictor) const
{
    fatalIf(trace.empty(), "SleepScaleRuntime::run: empty trace");

    const std::size_t minutes = trace.size();
    const unsigned epoch_len = _config.epochMinutes;

    ServerSim sim(_platform, _spec.scaling, _config.initialPolicy);

    RuntimeResult result;
    result.qos = _qos;
    result.total.windowStart = 0.0;

    // One-job lookahead over the stream: the only jobs ever held are
    // the pending one, the current epoch's arrivals, and the bounded
    // history log — O(epoch + history) memory however long the run.
    Job pending;
    bool has_pending = source.next(pending);
    std::vector<Job> epoch_jobs;  // Arrivals inside the current epoch.
    // Rolling log of the last historyEpochs epochs' arrivals, capped at
    // evalLogCap jobs (Section 5.2.1 logs events from previous epochs).
    std::vector<Job> history_jobs;
    std::vector<std::size_t> history_counts; // jobs per logged epoch
    bool last_epoch_within_budget = false;
    Policy current = _config.initialPolicy;
    // Scalar measurements of the epoch that just closed, for log-free
    // deciders (core/epoch_decider.hh).
    EpochObservation observation;

    auto absorb_epoch_into_history = [&](const std::vector<Job> &jobs_in) {
        history_jobs.insert(history_jobs.end(), jobs_in.begin(),
                            jobs_in.end());
        history_counts.push_back(jobs_in.size());
        while (history_counts.size() > _config.historyEpochs) {
            history_jobs.erase(history_jobs.begin(),
                               history_jobs.begin() +
                                   static_cast<std::ptrdiff_t>(
                                       history_counts.front()));
            history_counts.erase(history_counts.begin());
        }
        // Enforce the job cap, deducting the dropped jobs from the
        // oldest epochs' counts so both views stay consistent.
        if (history_jobs.size() > _config.evalLogCap) {
            std::size_t excess =
                history_jobs.size() - _config.evalLogCap;
            history_jobs.erase(history_jobs.begin(),
                               history_jobs.begin() +
                                   static_cast<std::ptrdiff_t>(excess));
            while (excess > 0) {
                if (history_counts.front() <= excess) {
                    excess -= history_counts.front();
                    history_counts.erase(history_counts.begin());
                } else {
                    history_counts.front() -= excess;
                    excess = 0;
                }
            }
        }
    };

    EpochReport epoch;
    epoch.policy = current;

    for (std::size_t minute = 0; minute < minutes; ++minute) {
        const double t = static_cast<double>(minute) * secondsPerMinute;

        if (minute % epoch_len == 0) {
            // ---- Epoch boundary ----
            sim.advanceTo(t);

            if (minute > 0) {
                epoch.stats = sim.harvestWindow();
                epoch.measuredUtilization =
                    windowLoad(epoch_jobs,
                               static_cast<double>(epoch_len) *
                                   secondsPerMinute);
                last_epoch_within_budget =
                    epoch.stats.completions > 0 &&
                    _qos.satisfiedBy(epoch.stats);

                observation.measuredUtilization =
                    epoch.measuredUtilization;
                observation.hasMeasurement =
                    epoch.stats.completions > 0;
                observation.measuredQos =
                    observation.hasMeasurement
                        ? _qos.measuredValue(epoch.stats)
                        : 0.0;
                observation.meanJobSize =
                    epoch_jobs.empty()
                        ? 0.0
                        : epoch.measuredUtilization *
                              static_cast<double>(epoch_len) *
                              secondsPerMinute /
                              static_cast<double>(epoch_jobs.size());
                observation.applied = current;

                result.epochs.push_back(epoch);

                absorb_epoch_into_history(epoch_jobs);
                epoch_jobs.clear();
            }

            epoch = EpochReport{};
            epoch.index = result.epochs.size();
            epoch.startTime = t;

            const double predicted =
                std::clamp(predictor.predict(minute), 0.0, 1.0);
            epoch.predictedUtilization = predicted;

            if (_config.fixedPolicy) {
                current = *_config.fixedPolicy;
                epoch.decided = true;
                epoch.feasible = true;
            } else {
                observation.predictedUtilization = predicted;
                // Log-based deciders need a thick-enough rescaled
                // log; the O(1) controller skips log construction
                // entirely and decides from the observation alone.
                std::vector<Job> log;
                bool ready = false;
                if (_manager->needsLog()) {
                    if (!history_jobs.empty()) {
                        log = buildEvalLog(history_jobs, predicted);
                        ready = log.size() >= 2;
                    }
                } else {
                    ready = minute > 0;
                }
                if (ready) {
                    const double decide_start =
                        _config.recordDecisionTime ? monotonicMicros()
                                                   : 0.0;
                    const PolicyDecision decision =
                        _manager->decide(observation, log);
                    if (_config.recordDecisionTime)
                        epoch.decisionMicros =
                            monotonicMicros() - decide_start;
                    current = decision.policy;
                    epoch.feasible = decision.feasible;
                    epoch.decided = true;

                    // Over-provisioning guard band (Section 5.2.3).
                    if (_config.overProvision > 0.0 &&
                        last_epoch_within_budget) {
                        const double boosted = std::min(
                            1.0, current.frequency *
                                     (1.0 + _config.overProvision));
                        if (boosted > current.frequency) {
                            current.frequency = boosted;
                            epoch.boosted = true;
                        }
                    }
                }
            }

            epoch.policy = current;
            sim.setPolicy(current, t);
        }

        // ---- Run the minute ----
        const double minute_end = t + secondsPerMinute;
        double minute_demand = 0.0;
        while (has_pending && pending.arrival < minute_end) {
            sim.offerJob(pending);
            epoch_jobs.push_back(pending);
            minute_demand += pending.size;
            has_pending = source.next(pending);
        }
        sim.advanceTo(minute_end);

        const double observed =
            std::clamp(minute_demand / secondsPerMinute, 0.0, 1.0);
        predictor.observe(minute, observed);
    }

    // ---- Drain: let the backlog complete so every response counts ----
    const double horizon =
        std::max(trace.duration(), sim.nextFreeTime());
    sim.advanceTo(horizon);
    epoch.stats = sim.harvestWindow();
    epoch.measuredUtilization = windowLoad(
        epoch_jobs, static_cast<double>(epoch_len) * secondsPerMinute);
    result.epochs.push_back(epoch);

    for (const EpochReport &report : result.epochs)
        result.total.merge(report.stats);
    return result;
}

CsvTable
epochsToCsv(const RuntimeResult &result)
{
    CsvTable table;
    table.headers = {"epoch",     "start_s",    "predicted_util",
                     "measured_util", "frequency", "state_depth",
                     "boosted",   "feasible",   "degraded",
                     "mean_response_s", "p95_response_s",
                     "avg_power_w", "completions"};
    for (const EpochReport &epoch : result.epochs) {
        table.addRow({static_cast<double>(epoch.index), epoch.startTime,
                      epoch.predictedUtilization,
                      epoch.measuredUtilization, epoch.policy.frequency,
                      static_cast<double>(
                          depthIndex(epoch.policy.plan.deepest())),
                      epoch.boosted ? 1.0 : 0.0,
                      epoch.feasible ? 1.0 : 0.0,
                      epoch.degraded ? 1.0 : 0.0,
                      epoch.stats.meanResponse(),
                      epoch.stats.responsePercentile(95.0),
                      epoch.stats.avgPower(),
                      static_cast<double>(epoch.stats.completions)});
    }
    return table;
}

} // namespace sleepscale
