/**
 * @file
 * Quality-of-service constraints (paper Section 5.1.1).
 *
 * The paper anchors QoS to a baseline system provisioned for a peak
 * design utilization ρ_b running flat out (f = 1, no sleep states). Under
 * the idealized M/M/1 model that baseline achieves a normalized mean
 * response time µE[R] = 1/(1-ρ_b), which becomes the budget; the
 * 95th-percentile variant budgets the deadline d with
 * Pr(R >= d) = e^{-µ(1-ρ_b)d} = 5%, i.e. µd = ln(20)/(1-ρ_b).
 */

#ifndef SLEEPSCALE_CORE_QOS_HH
#define SLEEPSCALE_CORE_QOS_HH

#include <string>

#include "analytic/mm1_sleep.hh"
#include "sim/sim_stats.hh"

namespace sleepscale {

/** Which response-time statistic the constraint bounds. */
enum class QosMetric
{
    MeanResponse, ///< E[R] <= budget.
    TailResponse, ///< 95th-percentile R <= budget (Pr(R >= d) <= 5%).
};

/** Name of a metric for reports. */
std::string toString(QosMetric metric);

/** A bound on a response-time statistic, in absolute seconds. */
class QosConstraint
{
  public:
    /**
     * Mean-response constraint: E[R] <= budget_seconds.
     */
    static QosConstraint meanBudget(double budget_seconds);

    /**
     * Tail constraint: the `quantile` response-time percentile must not
     * exceed deadline_seconds.
     */
    static QosConstraint tailBudget(double deadline_seconds,
                                    double quantile = 95.0);

    /**
     * The paper's baseline-derived mean constraint for peak design
     * utilization ρ_b: E[R] <= serviceMean / (1 - ρ_b).
     */
    static QosConstraint fromBaselineMean(double rho_b,
                                          double service_mean);

    /**
     * The paper's baseline-derived tail constraint:
     * d = ln(1/ε) * serviceMean / (1 - ρ_b) with ε the violation
     * probability (default 5%).
     */
    static QosConstraint fromBaselineTail(double rho_b, double service_mean,
                                          double violation = 0.05);

    /** The bounded metric. */
    QosMetric metric() const { return _metric; }

    /** The budget in seconds. */
    double budget() const { return _budget; }

    /** Percentile used by tail constraints (e.g. 95). */
    double quantile() const { return _quantile; }

    /** The measured statistic a simulation compares against the budget. */
    double measuredValue(const SimStats &stats) const;

    /** Whether measured statistics meet the constraint. */
    bool satisfiedBy(const SimStats &stats) const;

    /** Closed-form statistic under the idealized model. */
    double analyticValue(const MM1SleepModel &model, const Policy &policy,
                         double lambda, double mu) const;

    /** Whether the idealized model predicts the constraint is met. */
    bool satisfiedByAnalytic(const MM1SleepModel &model,
                             const Policy &policy, double lambda,
                             double mu) const;

  private:
    QosConstraint(QosMetric metric, double budget, double quantile);

    QosMetric _metric;
    double _budget;
    double _quantile;
};

} // namespace sleepscale

#endif // SLEEPSCALE_CORE_QOS_HH
