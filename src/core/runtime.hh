/**
 * @file
 * The SleepScale runtime (paper Sections 5.2 and 6).
 *
 * Drives a server through a trace-driven job stream epoch by epoch:
 *
 *  1. At each epoch boundary, forecast the utilization of the upcoming
 *     epoch's first minute with a pluggable predictor.
 *  2. Rescale the previous epoch's logged job events to the forecast
 *     offered load and hand them to the policy manager, which simulates
 *     every candidate policy and picks the cheapest QoS-feasible one.
 *  3. Apply the over-provisioning guard band: if the epoch just past met
 *     its delay budget, raise the chosen frequency by a factor (1 + α) —
 *     headroom against unpredicted surges (Section 5.2.3).
 *  4. Run the epoch under the chosen policy; backlog carries across
 *     epoch boundaries.
 *
 * Fixed-policy strategies (race-to-halt) run through the same loop with
 * the decision step pinned, so every comparison in the Figure 8-10
 * benches shares identical accounting.
 */

#ifndef SLEEPSCALE_CORE_RUNTIME_HH
#define SLEEPSCALE_CORE_RUNTIME_HH

#include <memory>
#include <optional>
#include <vector>

#include "control/controller_config.hh"
#include "core/epoch_decider.hh"
#include "core/policy_manager.hh"
#include "core/policy_space.hh"
#include "core/predictor.hh"
#include "core/qos.hh"
#include "power/platform_model.hh"
#include "sim/server_sim.hh"
#include "util/csv.hh"
#include "workload/job.hh"
#include "workload/job_source.hh"
#include "workload/utilization_trace.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/** Knobs of one runtime configuration. */
struct RuntimeConfig
{
    /** Policy update interval T, minutes (paper: 1-15). */
    unsigned epochMinutes = 5;

    /** Over-provisioning factor α (paper: 0 or 0.35). */
    double overProvision = 0.0;

    /** Peak design utilization ρ_b anchoring the QoS budget. */
    double rhoB = 0.8;

    /** Which response-time statistic the QoS bounds. */
    QosMetric qosMetric = QosMetric::MeanResponse;

    /** Candidate policies for the manager. */
    PolicySpace space = PolicySpace::standard();

    /** Candidate-search engine knobs: fan-out width and pruned mode
     * (see EvalEngineOptions). Any setting yields decisions identical
     * to the serial exhaustive search. */
    EvalEngineOptions search;

    /** Cap on the evaluation-log length; longer logs keep only the most
     * recent jobs (Section 5.2.1: average behaviour from the recent past
     * suffices, and the cap bounds the per-epoch decision cost). */
    std::size_t evalLogCap = 4000;

    /** How many past epochs of job events feed the evaluation log
     * (Section 5.2.1 logs "previous epochs"; more history smooths the
     * characterization when epochs are short). */
    std::size_t historyEpochs = 3;

    /** When set, decide per epoch with the O(1) feedback controller
     * (control/controller_manager.hh, strategy "poet") instead of the
     * candidate search; the search knobs above are then unused. */
    std::optional<ControllerConfig> controller;

    /** Record per-epoch decision wall time into
     * EpochReport::decisionMicros. Telemetry only — decisions and
     * simulated results are bit-identical either way — and off by
     * default so result structs stay time-free. */
    bool recordDecisionTime = false;

    /** When set, skip the policy manager entirely and run this policy
     * for the whole trace (race-to-halt baselines). */
    std::optional<Policy> fixedPolicy;

    /** Policy in force before the first decision. */
    Policy initialPolicy{1.0,
                         SleepPlan::immediate(LowPowerState::C0IdleS0Idle)};
};

/** Per-epoch record of what the runtime decided and what happened. */
struct EpochReport
{
    std::size_t index = 0;          ///< Epoch number.
    double startTime = 0.0;         ///< Seconds since trace start.
    double predictedUtilization = 0.0;
    double measuredUtilization = 0.0; ///< Mean offered load over the epoch.
    Policy policy;                  ///< Policy run during the epoch.
    bool feasible = false;          ///< Manager found a QoS-feasible policy.
    bool boosted = false;           ///< Over-provisioning raised f.
    bool decided = false;           ///< False if the log was too thin.
    /** The controller fell back to the safe fixed policy this epoch
     * (fault-injected farms only; see docs/FAULTS.md). */
    bool degraded = false;
    /** Wall time the epoch's decision took, µs (recordDecisionTime
     * runs only; 0 otherwise). */
    double decisionMicros = 0.0;
    SimStats stats;                 ///< Epoch-windowed metrics.
};

/** Aggregate outcome of one runtime run. */
struct RuntimeResult
{
    std::vector<EpochReport> epochs;
    SimStats total;               ///< Whole-run merged statistics.
    QosConstraint qos = QosConstraint::meanBudget(1.0);

    /** Whole-run mean response time, seconds. */
    double meanResponse() const { return total.meanResponse(); }

    /** Whole-run 95th-percentile response time, seconds. */
    double p95Response() const
    {
        return total.responsePercentile(95.0);
    }

    /** Whole-run average power, watts. */
    double avgPower() const { return total.avgPower(); }

    /** Whether the whole-run QoS statistic met its budget. */
    bool withinBudget() const { return qos.satisfiedBy(total); }

    /**
     * Fraction of decided epochs whose selected plan bottoms out in each
     * low-power state (paper Figure 10).
     */
    std::array<double, numLowPowerStates> stateSelectionFractions() const;
};

/**
 * Flatten a runtime result into a per-epoch CSV table (start time,
 * predicted/measured utilization, chosen frequency and state depth,
 * responses, power) for offline plotting.
 */
CsvTable epochsToCsv(const RuntimeResult &result);

/** Epoch-driven SleepScale controller over a simulated server. */
class SleepScaleRuntime
{
  public:
    /**
     * @param platform Power model (not owned; must outlive the runtime).
     * @param spec Workload characterization (service mean anchors the
     *             QoS budget; scaling law shapes service times).
     * @param config Runtime knobs.
     */
    SleepScaleRuntime(const PlatformModel &platform,
                      const WorkloadSpec &spec, RuntimeConfig config);

    /**
     * Run the full trace, pulling arrivals from a streaming source.
     *
     * Jobs are consumed epoch by epoch with one-job lookahead, so the
     * run's job-buffer memory is bounded by the epoch and history
     * windows regardless of the trace length — a million-job day never
     * materializes. Jobs the source produces past the trace horizon
     * are not consumed.
     *
     * @param source Arrival stream (consumed; non-decreasing times).
     * @param trace The utilization trace (defines the time horizon; the
     *              offline predictor reads it directly).
     * @param predictor Utilization predictor, observed every minute.
     */
    RuntimeResult run(JobSource &source, const UtilizationTrace &trace,
                      UtilizationPredictor &predictor) const;

    /**
     * Run a materialized job list — a thin adapter that streams `jobs`
     * through the JobSource overload; results are identical.
     */
    RuntimeResult run(const std::vector<Job> &jobs,
                      const UtilizationTrace &trace,
                      UtilizationPredictor &predictor) const;

    /** The QoS constraint derived from the configuration. */
    const QosConstraint &qos() const { return _qos; }

    /** The search-based policy manager driving per-epoch decisions
     * (null for fixed-policy and controller configurations).
     * Persistent across epochs and runs, so the engine's
     * materialized-plan cache and arenas are built once per runtime,
     * not once per decision. */
    const PolicyManager *manager() const { return _searchManager; }

    /** The per-epoch decider — the search manager or the feedback
     * controller (null for fixed-policy configurations). */
    const EpochDecider *decider() const { return _manager.get(); }

  private:
    const PlatformModel &_platform;
    WorkloadSpec _spec;
    RuntimeConfig _config;
    QosConstraint _qos;

    /** Persistent decider (see manager()/decider()). Its internal
     * state mutates during decisions, so concurrent run() calls on
     * one runtime instance are not safe. */
    std::unique_ptr<EpochDecider> _manager;

    /** _manager, when it is the search path (see manager()). */
    PolicyManager *_searchManager = nullptr;

    /**
     * Rebuild recently logged job events as an evaluation log with the
     * offered load rescaled to the predicted utilization. Gaps between
     * consecutive logged arrivals are preserved in shape and scaled so
     * the log's offered load matches the prediction.
     */
    std::vector<Job> buildEvalLog(const std::vector<Job> &history,
                                  double predicted) const;
};

} // namespace sleepscale

#endif // SLEEPSCALE_CORE_RUNTIME_HH
