/**
 * @file
 * Offline-optimal speed-scaling + sleep-state oracle (regret baseline).
 *
 * Given a *completed* job log, this solver computes the minimum energy
 * any FCFS work-conserving schedule could have spent on the platform's
 * frequency grid and sleep-state table, via the dynamic program behind
 * the Antoniadis-Huang-Ott FPTAS for speed scaling with a sleep state
 * (PAPERS.md). The value is a certified lower bound on the energy of
 * every policy-management strategy the simulator can run over the same
 * log, which turns relative comparisons ("SS beats fixed-frequency")
 * into absolute ones ("SS is within X% of offline optimal") — the
 * `regret_pct` extra of ScenarioResult and docs/OFFLINE_OPT.md.
 *
 * Relaxations that make the bound valid against ServerSim's exact
 * accounting (wake time charged at active power; idle billed by the
 * descent's prefix sums; books closed at the horizon):
 *
 *  - per idle gap the oracle pays min_i [Pmin_i * gap + w_i * A], the
 *    cheapest single state; a single state dominates every descent
 *    because stage powers strictly decrease with depth;
 *  - Pmin_i relaxes the frequency-dependent shallow-state powers to
 *    their minimum over the frequency grid;
 *  - wake-up latency costs energy (w_i at the next job's active power,
 *    exactly what the simulator bills) but does not delay the job;
 *  - the trailing gap up to the horizon is billed at the deepest
 *    relaxed power with no wake.
 *
 * Two solvers share the transition function. solveExact() keeps the
 * exact Pareto frontier of (completion time, energy) states — viable
 * for small logs only, and the oracle's own oracle in the test suite.
 * solve() is the FPTAS: completion times are rounded *up* to a nested
 * delta-grid, so its value can only drop below the exact optimum
 * (rounding up shortens gaps), keeping it a true lower bound; each
 * state also carries the un-rounded cost of its decision path, whose
 * minimum is an achievable upper bound, and the grid is refined until
 * the certified bracket is within the requested epsilon.
 */

#ifndef SLEEPSCALE_ANALYTIC_OFFLINE_OPT_HH
#define SLEEPSCALE_ANALYTIC_OFFLINE_OPT_HH

#include <array>
#include <cstddef>
#include <limits>
#include <vector>

#include "power/low_power_state.hh"
#include "power/platform_model.hh"
#include "workload/job.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/**
 * A completed job log handed to the offline solver, plus the
 * accounting horizon and an optional per-job deadline slack.
 */
struct OfflineOptInstance
{
    /** Jobs in arrival order (non-decreasing arrivals, sizes >= 0). */
    std::vector<Job> jobs;

    /** Accounting horizon in seconds (>= the last arrival); idle is
     * billed through it, mirroring SleepScaleRuntime's bookkeeping. */
    double horizon = 0.0;

    /**
     * Per-job deadline slack: job j must complete by arrival + slack.
     * The default (infinity) is the relaxed oracle used for regret —
     * strategies meeting a *mean-response* QoS budget still violate
     * per-job deadlines on service-time tails, so only the relaxed
     * bound is guaranteed to lower-bound every simulated strategy.
     */
    double deadlineSlack = std::numeric_limits<double>::infinity();

    /**
     * Validate and build an instance; fatal() on out-of-order
     * arrivals, negative sizes, or a horizon before the last arrival.
     */
    static OfflineOptInstance
    fromJobs(std::vector<Job> jobs, double horizon,
             double deadline_slack =
                 std::numeric_limits<double>::infinity());
};

/** Tuning knobs of the offline solver. */
struct OfflineOptOptions
{
    /** Frequency grid the oracle may run jobs at. Empty selects
     * PolicySpace::standard()'s grid (the searched candidate set). */
    std::vector<double> frequencies;

    /** Relative accuracy target of solve(): the certified upper/lower
     * bracket is refined until upper <= (1 + epsilon) * lower. */
    double epsilon = 0.05;

    /** FPTAS frontier cap per job; refinement stops (with an honest,
     * larger effective epsilon) rather than exceed it. */
    std::size_t maxStates = 4096;

    /** Exact-solver state cap; fatal() past it (use solve() instead). */
    std::size_t maxExactStates = 200000;
};

/** Outcome of an offline-optimal solve. */
struct OfflineOptResult
{
    /** Oracle energy in joules. For solve() this is the *certified
     * lower bound* V_delta <= V_exact; for solveExact() the optimum. */
    double energy = 0.0;

    /** Achievable schedule energy bracketing the optimum from above
     * (solveExact(): equal to energy). */
    double upperBound = 0.0;

    /** Accounting horizon the energy integrates over, seconds. */
    double elapsed = 0.0;

    /** Requested epsilon (0 for solveExact()). */
    double epsilon = 0.0;

    /** Certified bracket width actually achieved:
     * upperBound / energy - 1 (0 when energy is 0). */
    double epsilonEffective = 0.0;

    /** Deadline clamp-and-count events (deadline-constrained instances
     * where even the fastest frequency misses; 0 when relaxed). */
    std::size_t violations = 0;

    /** Peak DP frontier size (diagnostics). */
    std::size_t frontierPeak = 0;

    /** Times the FPTAS locally coarsened its grid to respect
     * maxStates (0 = the requested resolution held throughout;
     * coarsening widens epsilonEffective but keeps the bound valid). */
    std::size_t coarsenings = 0;

    /** Total energy debt (joules) subtracted from the lower bound to
     * pay for merging almost-dominated states on wide frontiers; 0
     * means the reported energy is the un-merged grid optimum. */
    double mergeDebt = 0.0;

    /** Per-job chosen frequencies (solveExact() only; empty from
     * solve(), which does not keep back-pointers). */
    std::vector<double> jobFrequencies;

    /** Per-job state of the idle gap closed by that job's arrival
     * (solveExact() only; C0(i)S0(i) when the arrival queued). */
    std::vector<LowPowerState> gapStates;

    /** Mean power of the oracle schedule, watts. */
    double avgPower() const
    {
        return elapsed > 0.0 ? energy / elapsed : 0.0;
    }
};

/**
 * Offline-optimal solver bound to a platform and a service scaling
 * law (the same pair a ServerSim run is configured with).
 */
class OfflineOptimal
{
  public:
    /**
     * @param platform Power model (copied; temporaries are fine).
     * @param scaling Service-time dependence on frequency.
     * @param options Solver knobs (grid, epsilon, state caps).
     */
    OfflineOptimal(const PlatformModel &platform, ServiceScaling scaling,
                   OfflineOptOptions options = {});

    /**
     * FPTAS solve: returns a certified lower bound on the offline
     * optimum with upperBound <= (1 + epsilon) * energy whenever the
     * frontier cap allows (epsilonEffective reports the achieved
     * bracket either way).
     */
    OfflineOptResult solve(const OfflineOptInstance &instance) const;

    /**
     * Exact Pareto-frontier solve; exponential worst case, fatal()
     * past maxExactStates. Intended for small logs (tests, debugging)
     * and as the reference the FPTAS is validated against.
     */
    OfflineOptResult solveExact(const OfflineOptInstance &instance) const;

    /**
     * Cheapest way to bridge an idle gap that ends in a wake-up:
     * min over states of Pmin_i * gap + w_i * next_active_power.
     *
     * @param gap Idle gap length, seconds (>= 0).
     * @param next_active_power Active power of the job ending the gap.
     */
    double gapCost(double gap, double next_active_power) const;

    /** The state attaining gapCost() (shallowest on ties). */
    LowPowerState gapState(double gap, double next_active_power) const;

    /** Relaxed (grid-minimum) idle power of one state, watts. */
    double relaxedIdlePower(LowPowerState state) const;

    /** Resolved frequency grid (ascending). */
    const std::vector<double> &frequencies() const { return _freqs; }

    /** Underlying platform. */
    const PlatformModel &platform() const { return _platform; }

    /** Service scaling law in use. */
    ServiceScaling scaling() const { return _scaling; }

  private:
    /** One precomputed (service time, busy energy) per frequency. */
    struct JobCosts
    {
        std::vector<double> service;    ///< Seconds per grid entry.
        std::vector<double> busyEnergy; ///< Joules per grid entry.
        double minBusyEnergy;           ///< min over busyEnergy.
        double minService;              ///< min over service.
    };

    // By value: gapCost()/gapState() read wake latencies at solve
    // time, so a stored reference would dangle when callers construct
    // the solver from a temporary model (as the benches do).
    PlatformModel _platform;
    ServiceScaling _scaling;
    OfflineOptOptions _options;
    std::vector<double> _freqs;        ///< Sorted, deduplicated grid.
    std::vector<double> _activePower;  ///< activePower per grid entry.
    std::array<double, numLowPowerStates> _relaxedIdle{};
    double _idleFloor = 0.0; ///< min over states of relaxed power.
    double _idleCeil = 0.0;  ///< max over states of relaxed power.

    /** Greedy one-pass schedule: an achievable energy (upper bound)
     * plus its idle-gap count, which calibrates the FPTAS seed grid
     * (rounding error only materializes at gaps). */
    struct GreedyBound
    {
        double energy;    ///< Achievable schedule energy, joules.
        std::size_t gaps; ///< Idle gaps the greedy schedule opened.
    };

    JobCosts jobCosts(const Job &job) const;
    GreedyBound greedyUpperBound(const OfflineOptInstance &instance,
                                 const std::vector<JobCosts> &costs) const;

    /** One rounded-grid DP pass at resolution delta; coarsens locally
     * when the frontier cap binds. merge_eta is the per-step energy
     * slack spent merging almost-dominated states on wide frontiers;
     * the accumulated debt is subtracted from the reported lower bound
     * so it stays certified. When allow_abort is set and the cap
     * keeps binding, the pass bails out early (energy = -infinity
     * marks the aborted result). */
    OfflineOptResult fptasPass(const OfflineOptInstance &instance,
                               const std::vector<JobCosts> &costs,
                               double delta, double merge_eta,
                               double upper_bound, bool allow_abort,
                               std::size_t max_states) const;
};

} // namespace sleepscale

#endif // SLEEPSCALE_ANALYTIC_OFFLINE_OPT_HH
