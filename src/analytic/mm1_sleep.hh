/**
 * @file
 * Closed-form power/performance model (paper Section 4.3 and Appendix).
 *
 * For Poisson(λ) arrivals, exponential service at effective rate µf, and a
 * sleep descent (P_i, τ_i, w_i), i = 1..n, the Appendix gives closed forms
 * for the average power E[P], the mean response time E[R], and (for a
 * single-stage plan) the response-time tail Pr(R >= d). These are the
 * "idealized model" curves of Figure 6 and the verification target for the
 * simulator (the paper: "results obtained from the closed-form expressions
 * match those presented in Figure 1").
 *
 * The busy-fraction derivation of E[P] and the Welch decomposition behind
 * E[R] extend to generally distributed service times (M/G/1): E[P] depends
 * on service only through its mean, and E[R] picks up the standard
 * Pollaczek-Khinchine waiting term. Both extensions are provided and
 * cross-validated against simulation in the test suite.
 */

#ifndef SLEEPSCALE_ANALYTIC_MM1_SLEEP_HH
#define SLEEPSCALE_ANALYTIC_MM1_SLEEP_HH

#include "power/platform_model.hh"
#include "sim/policy.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/**
 * Closed-form evaluator bound to a platform and a service scaling law.
 */
class MM1SleepModel
{
  public:
    /**
     * @param platform Power model (not owned; must outlive the model).
     * @param scaling Service-time dependence on frequency.
     */
    explicit MM1SleepModel(const PlatformModel &platform,
                           ServiceScaling scaling =
                               ServiceScaling::cpuBound());

    /**
     * Effective service rate µ_eff = µ f^alpha under the scaling law.
     *
     * @param mu Maximum service rate (1 / mean job size).
     * @param f DVFS frequency factor.
     */
    double effectiveServiceRate(double mu, double f) const;

    /** Whether the system is stable: λ < µ_eff. */
    bool stable(double lambda, double mu, double f) const;

    /**
     * Average power E[P] in watts (Appendix formula).
     *
     * Exact for M/M/1 and, because it depends on service only through the
     * mean, also for M/G/1 with the same mean.
     *
     * @param policy Joint frequency / sleep-plan choice.
     * @param lambda Poisson arrival rate, jobs/s.
     * @param mu Maximum service rate, jobs/s at f = 1.
     */
    double meanPower(const Policy &policy, double lambda, double mu) const;

    /**
     * Mean response time E[R] in seconds for exponential service
     * (Appendix formula: M/M/1 term plus the exceptional-first-service
     * delay term).
     */
    double meanResponse(const Policy &policy, double lambda,
                        double mu) const;

    /**
     * Mean response time for generally distributed service with the given
     * coefficient of variation (M/G/1 extension via Pollaczek-Khinchine).
     *
     * @param service_cv Coefficient of variation of the service demand.
     */
    double meanResponseMG1(const Policy &policy, double lambda, double mu,
                           double service_cv) const;

    /**
     * Response-time tail Pr(R >= d) (Appendix formula).
     *
     * Only defined for single-stage plans (the paper's closed form is in
     * terms of w_1 alone); fatal() for multi-stage plans.
     *
     * Note: the closed form's two-exponential mixture corresponds to an
     * *exponentially distributed* setup time with mean w_1. For the
     * deterministic wake-up the simulator implements it is exact at
     * w_1 = 0 and an approximation otherwise, tight while
     * w_1 (µf - λ) << 1 (true for every state except C6S3, whose 1 s
     * latency is why the paper reserves it for very long idle periods).
     * The test suite validates the formula against an exponential-setup
     * Monte Carlo and documents the deterministic-setup gap.
     *
     * @param d Deadline in seconds (>= 0).
     */
    double tailProbability(const Policy &policy, double lambda, double mu,
                           double d) const;

    /**
     * Mean wake-up delay E[D] experienced by the job that opens a busy
     * period (Appendix E[D^a] with a = 1).
     */
    double meanSetupDelay(const Policy &policy, double lambda) const;

    /** Fraction of time the server is busy or waking. */
    double busyFraction(const Policy &policy, double lambda,
                        double mu) const;

    /** Underlying platform. */
    const PlatformModel &platform() const { return _platform; }

    /** Service scaling law in use. */
    ServiceScaling scaling() const { return _scaling; }

  private:
    const PlatformModel &_platform;
    ServiceScaling _scaling;

    /** E[D^order] over the sleep descent for Poisson(λ) idle periods. */
    double setupMoment(const MaterializedPlan &plan, double lambda,
                       double order) const;

    /** Expected cycle length L of the Appendix. */
    double cycleLength(const MaterializedPlan &plan, double lambda,
                       double mu_eff) const;
};

} // namespace sleepscale

#endif // SLEEPSCALE_ANALYTIC_MM1_SLEEP_HH
