#include "analytic/mm1_sleep.hh"

#include <cmath>

#include "util/error.hh"

namespace sleepscale {

MM1SleepModel::MM1SleepModel(const PlatformModel &platform,
                             ServiceScaling scaling)
    : _platform(platform), _scaling(scaling)
{
}

double
MM1SleepModel::effectiveServiceRate(double mu, double f) const
{
    fatalIf(mu <= 0.0, "MM1SleepModel: mu must be positive");
    return mu / _scaling.factor(f);
}

bool
MM1SleepModel::stable(double lambda, double mu, double f) const
{
    return lambda < effectiveServiceRate(mu, f);
}

double
MM1SleepModel::setupMoment(const MaterializedPlan &plan, double lambda,
                           double order) const
{
    // E[D^a] = sum_{i=1}^{n-1} w_i^a (e^{-λτ_i} - e^{-λτ_{i+1}})
    //          + w_n^a e^{-λτ_n}
    const std::size_t n = plan.size();
    double moment = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double survive_i = std::exp(-lambda * plan.enterAfter(i));
        const double survive_next =
            i + 1 < n ? std::exp(-lambda * plan.enterAfter(i + 1)) : 0.0;
        const double w = plan.wakeLatency(i);
        if (w > 0.0)
            moment += std::pow(w, order) * (survive_i - survive_next);
    }
    return moment;
}

double
MM1SleepModel::cycleLength(const MaterializedPlan &plan, double lambda,
                           double mu_eff) const
{
    fatalIf(lambda <= 0.0, "MM1SleepModel: lambda must be positive");
    fatalIf(mu_eff <= lambda,
            "MM1SleepModel: unstable system (lambda >= effective mu)");
    const double mean_setup = setupMoment(plan, lambda, 1.0);
    // L = (µf + µf λ E[D]) / (λ (µf - λ))
    return mu_eff * (1.0 + lambda * mean_setup) /
           (lambda * (mu_eff - lambda));
}

double
MM1SleepModel::meanPower(const Policy &policy, double lambda,
                         double mu) const
{
    const MaterializedPlan plan(policy.plan, _platform, policy.frequency);
    const double mu_eff = effectiveServiceRate(mu, policy.frequency);
    const double cycle = cycleLength(plan, lambda, mu_eff);
    const double p0 = _platform.activePower(policy.frequency);

    // Idle-side energy weights: stage i is reached only if the idle
    // period survives to τ_i.
    const std::size_t n = plan.size();
    double idle_power = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double survive_i = std::exp(-lambda * plan.enterAfter(i));
        const double survive_next =
            i + 1 < n ? std::exp(-lambda * plan.enterAfter(i + 1)) : 0.0;
        idle_power += plan.power(i) * (survive_i - survive_next);
    }

    const double inv_cycle_rate = 1.0 / (lambda * cycle);
    const double survive_first =
        std::exp(-lambda * plan.enterAfter(0)); // = 1 when τ_1 = 0
    return idle_power * inv_cycle_rate +
           p0 * (1.0 - survive_first * inv_cycle_rate);
}

double
MM1SleepModel::meanResponse(const Policy &policy, double lambda,
                            double mu) const
{
    const MaterializedPlan plan(policy.plan, _platform, policy.frequency);
    const double mu_eff = effectiveServiceRate(mu, policy.frequency);
    fatalIf(mu_eff <= lambda,
            "MM1SleepModel::meanResponse: unstable system");

    const double d1 = setupMoment(plan, lambda, 1.0);
    const double d2 = setupMoment(plan, lambda, 2.0);
    return 1.0 / (mu_eff - lambda) +
           (2.0 * d1 + lambda * d2) / (2.0 * (1.0 + lambda * d1));
}

double
MM1SleepModel::meanResponseMG1(const Policy &policy, double lambda,
                               double mu, double service_cv) const
{
    fatalIf(service_cv < 0.0,
            "MM1SleepModel::meanResponseMG1: cv must be >= 0");
    const MaterializedPlan plan(policy.plan, _platform, policy.frequency);
    const double mu_eff = effectiveServiceRate(mu, policy.frequency);
    fatalIf(mu_eff <= lambda,
            "MM1SleepModel::meanResponseMG1: unstable system");

    const double mean_service = 1.0 / mu_eff;
    const double second_service =
        (1.0 + service_cv * service_cv) * mean_service * mean_service;
    const double rho = lambda * mean_service;

    // Pollaczek-Khinchine waiting plus Welch's exceptional-first-service
    // delay term (identical to the exponential case).
    const double d1 = setupMoment(plan, lambda, 1.0);
    const double d2 = setupMoment(plan, lambda, 2.0);
    return mean_service +
           lambda * second_service / (2.0 * (1.0 - rho)) +
           (2.0 * d1 + lambda * d2) / (2.0 * (1.0 + lambda * d1));
}

double
MM1SleepModel::tailProbability(const Policy &policy, double lambda,
                               double mu, double d) const
{
    fatalIf(d < 0.0, "MM1SleepModel::tailProbability: d must be >= 0");
    fatalIf(policy.plan.size() != 1,
            "MM1SleepModel::tailProbability: the paper's closed form "
            "covers single-stage plans only");

    const MaterializedPlan plan(policy.plan, _platform, policy.frequency);
    const double mu_eff = effectiveServiceRate(mu, policy.frequency);
    fatalIf(mu_eff <= lambda,
            "MM1SleepModel::tailProbability: unstable system");

    const double gap = mu_eff - lambda;
    const double w1 = plan.wakeLatency(0);
    if (w1 == 0.0)
        return std::exp(-gap * d);

    const double denom = 1.0 - w1 * gap;
    if (std::abs(denom) < 1e-12) {
        // Removable singularity at w1 = 1/(µf - λ):
        // lim Pr(R >= d) = e^{-gd} (1 + g d).
        return std::exp(-gap * d) * (1.0 + gap * d);
    }
    return (std::exp(-gap * d) - w1 * gap * std::exp(-d / w1)) / denom;
}

double
MM1SleepModel::meanSetupDelay(const Policy &policy, double lambda) const
{
    const MaterializedPlan plan(policy.plan, _platform, policy.frequency);
    return setupMoment(plan, lambda, 1.0);
}

double
MM1SleepModel::busyFraction(const Policy &policy, double lambda,
                            double mu) const
{
    const MaterializedPlan plan(policy.plan, _platform, policy.frequency);
    const double mu_eff = effectiveServiceRate(mu, policy.frequency);
    const double cycle = cycleLength(plan, lambda, mu_eff);
    const double survive_first = std::exp(-lambda * plan.enterAfter(0));
    return 1.0 - survive_first / (lambda * cycle);
}

} // namespace sleepscale
