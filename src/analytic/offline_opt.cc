#include "analytic/offline_opt.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "core/policy_space.hh"
#include "util/error.hh"

namespace sleepscale {

namespace {

constexpr double kTimeTolerance = 1e-9;

/** Maximum bracket-refinement passes of solve(). The seed grid is a
 * calibrated guess, so several halvings may be needed; pass cost grows
 * geometrically with refinement, keeping the total near the final
 * pass's cost. */
constexpr int kMaxRefinements = 16;

/** Frontier size above which the FPTAS starts merging almost-dominated
 * states for debt (see fptasPass); below it the frontier is exact for
 * the grid, preserving strict nested-grid monotonicity on the small
 * instances the property tests sweep. */
constexpr std::size_t kSoftFrontier = 256;

/** Cumulative cap-coarsening budget of one FPTAS pass; past it the
 * pass aborts (when allowed) instead of churning the frontier cap on
 * every remaining job. */
constexpr std::size_t kMaxCoarsenings = 8;

} // namespace

OfflineOptInstance
OfflineOptInstance::fromJobs(std::vector<Job> jobs, double horizon,
                             double deadline_slack)
{
    fatalIf(!(horizon >= 0.0),
            "OfflineOptInstance: horizon must be non-negative");
    fatalIf(!(deadline_slack > 0.0),
            "OfflineOptInstance: deadlineSlack must be positive");
    double last_arrival = 0.0;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        fatalIf(jobs[j].arrival < 0.0,
                "OfflineOptInstance: negative arrival at job " +
                    std::to_string(j));
        fatalIf(j > 0 && jobs[j].arrival < jobs[j - 1].arrival,
                "OfflineOptInstance: arrivals must be non-decreasing "
                "(job " + std::to_string(j) + ")");
        fatalIf(jobs[j].size < 0.0,
                "OfflineOptInstance: negative size at job " +
                    std::to_string(j));
        last_arrival = jobs[j].arrival;
    }
    fatalIf(!jobs.empty() && horizon < last_arrival,
            "OfflineOptInstance: horizon precedes the last arrival");
    OfflineOptInstance instance;
    instance.jobs = std::move(jobs);
    instance.horizon = horizon;
    instance.deadlineSlack = deadline_slack;
    return instance;
}

OfflineOptimal::OfflineOptimal(const PlatformModel &platform,
                               ServiceScaling scaling,
                               OfflineOptOptions options)
    : _platform(platform), _scaling(scaling), _options(std::move(options))
{
    fatalIf(!(_options.epsilon > 0.0),
            "OfflineOptimal: epsilon must be positive");
    fatalIf(_options.maxStates < 2,
            "OfflineOptimal: maxStates must be >= 2");
    _freqs = _options.frequencies.empty()
                 ? PolicySpace::standard().frequencies
                 : _options.frequencies;
    std::sort(_freqs.begin(), _freqs.end());
    _freqs.erase(std::unique(_freqs.begin(), _freqs.end()), _freqs.end());
    fatalIf(_freqs.empty(), "OfflineOptimal: empty frequency grid");
    for (double f : _freqs)
        fatalIf(!(f > 0.0) || f > 1.0,
                "OfflineOptimal: frequencies must be in (0, 1]");

    _activePower.reserve(_freqs.size());
    for (double f : _freqs)
        _activePower.push_back(_platform.activePower(f));

    for (std::size_t i = 0; i < numLowPowerStates; ++i) {
        double lowest = _platform.lowPower(allLowPowerStates[i],
                                           _freqs.front());
        for (double f : _freqs)
            lowest = std::min(lowest,
                              _platform.lowPower(allLowPowerStates[i], f));
        _relaxedIdle[i] = lowest;
    }
    _idleFloor = *std::min_element(_relaxedIdle.begin(),
                                   _relaxedIdle.end());
    _idleCeil = *std::max_element(_relaxedIdle.begin(),
                                  _relaxedIdle.end());
}

double
OfflineOptimal::relaxedIdlePower(LowPowerState state) const
{
    return _relaxedIdle[depthIndex(state)];
}

double
OfflineOptimal::gapCost(double gap, double next_active_power) const
{
    double best = _relaxedIdle[0] * gap;
    for (std::size_t i = 1; i < numLowPowerStates; ++i) {
        const double cost =
            _relaxedIdle[i] * gap +
            _platform.wakeLatency(allLowPowerStates[i]) *
                next_active_power;
        best = std::min(best, cost);
    }
    return best;
}

LowPowerState
OfflineOptimal::gapState(double gap, double next_active_power) const
{
    LowPowerState best_state = allLowPowerStates[0];
    double best = _relaxedIdle[0] * gap;
    for (std::size_t i = 1; i < numLowPowerStates; ++i) {
        const double cost =
            _relaxedIdle[i] * gap +
            _platform.wakeLatency(allLowPowerStates[i]) *
                next_active_power;
        if (cost < best) {
            best = cost;
            best_state = allLowPowerStates[i];
        }
    }
    return best_state;
}

OfflineOptimal::JobCosts
OfflineOptimal::jobCosts(const Job &job) const
{
    JobCosts costs;
    costs.service.reserve(_freqs.size());
    costs.busyEnergy.reserve(_freqs.size());
    for (std::size_t k = 0; k < _freqs.size(); ++k) {
        const double service = job.size * _scaling.factor(_freqs[k]);
        costs.service.push_back(service);
        costs.busyEnergy.push_back(service * _activePower[k]);
    }
    costs.minBusyEnergy = *std::min_element(costs.busyEnergy.begin(),
                                            costs.busyEnergy.end());
    // Service time is non-increasing in frequency, so the fastest run
    // is at the top of the (ascending) grid.
    costs.minService = costs.service.back();
    return costs;
}

namespace {

/** Exact-solver DP state: completion time, accumulated energy, and the
 * decision path (frequency index per job) for reconstruction. */
struct ExactState
{
    double c;
    double energy;
    std::uint32_t violations;
    std::vector<std::uint16_t> path;
};

/** FPTAS DP state. cGrid/energy are the rounded-grid (lower-bound)
 * coordinates; cTrue/energyTrue re-run the same decisions without
 * rounding, giving an achievable upper bound. */
struct GridState
{
    std::int64_t cell;
    double cGrid;
    double energy;
    double cTrue;
    double energyTrue;
    std::uint32_t violations;
};

} // namespace

OfflineOptResult
OfflineOptimal::solveExact(const OfflineOptInstance &instance) const
{
    const std::size_t n = instance.jobs.size();
    const bool relaxed = !std::isfinite(instance.deadlineSlack);
    const std::size_t fmax = _freqs.size() - 1;

    std::vector<JobCosts> costs;
    costs.reserve(n);
    for (const Job &job : instance.jobs)
        costs.push_back(jobCosts(job));

    std::vector<ExactState> frontier{{0.0, 0.0, 0, {}}};
    std::vector<ExactState> next;
    std::size_t peak = 1;

    for (std::size_t j = 0; j < n; ++j) {
        const Job &job = instance.jobs[j];
        const double deadline = job.arrival + instance.deadlineSlack;
        next.clear();
        for (const ExactState &state : frontier) {
            const double start = std::max(state.c, job.arrival);
            const double gap = start - state.c;
            const bool clamped =
                !relaxed && start + costs[j].minService >
                                deadline + kTimeTolerance;
            for (std::size_t k = 0; k < _freqs.size(); ++k) {
                const double done = start + costs[j].service[k];
                if (clamped) {
                    if (k != fmax)
                        continue;
                } else if (!relaxed &&
                           done > deadline + kTimeTolerance) {
                    continue;
                }
                ExactState successor;
                successor.c = done;
                successor.energy =
                    state.energy + costs[j].busyEnergy[k] +
                    (gap > 0.0 ? gapCost(gap, _activePower[k]) : 0.0);
                successor.violations =
                    state.violations + (clamped ? 1 : 0);
                successor.path = state.path;
                successor.path.push_back(
                    static_cast<std::uint16_t>(k));
                next.push_back(std::move(successor));
            }
        }
        fatalIf(next.empty(),
                "OfflineOptimal::solveExact: no feasible transition at "
                "job " + std::to_string(j));
        std::sort(next.begin(), next.end(),
                  [](const ExactState &a, const ExactState &b) {
                      if (a.c != b.c)
                          return a.c < b.c;
                      if (a.energy != b.energy)
                          return a.energy < b.energy;
                      return a.violations < b.violations;
                  });
        frontier.clear();
        if (relaxed) {
            // Without deadlines the future cost is non-increasing in
            // the completion time, so (c_A >= c_B, E_A <= E_B)
            // dominates exactly: sweep from the latest state down,
            // keeping only strict energy improvements.
            for (std::size_t i = next.size(); i-- > 0;) {
                if (i > 0 && next[i - 1].c == next[i].c)
                    continue; // A cheaper state shares this c.
                if (frontier.empty() ||
                    next[i].energy < frontier.back().energy)
                    frontier.push_back(std::move(next[i]));
            }
            std::reverse(frontier.begin(), frontier.end());
        } else {
            // Deadlines break late-is-better; only equal completion
            // times are comparable.
            for (std::size_t i = 0; i < next.size(); ++i) {
                if (frontier.empty() || next[i].c != frontier.back().c)
                    frontier.push_back(std::move(next[i]));
            }
        }
        peak = std::max(peak, frontier.size());
        fatalIf(frontier.size() > _options.maxExactStates,
                "OfflineOptimal::solveExact: frontier exceeded "
                "maxExactStates (" +
                    std::to_string(_options.maxExactStates) +
                    ") at job " + std::to_string(j) +
                    "; use solve() for logs this size");
    }

    const ExactState *best = nullptr;
    double best_total = 0.0;
    for (const ExactState &state : frontier) {
        const double total =
            state.energy +
            _idleFloor * std::max(0.0, instance.horizon - state.c);
        if (best == nullptr || total < best_total) {
            best = &state;
            best_total = total;
        }
    }

    OfflineOptResult result;
    result.energy = best_total;
    result.upperBound = best_total;
    result.elapsed = instance.horizon;
    result.violations = best->violations;
    result.frontierPeak = peak;
    result.jobFrequencies.reserve(n);
    result.gapStates.reserve(n);
    double c = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t k = best->path[j];
        const double start = std::max(c, instance.jobs[j].arrival);
        const double gap = start - c;
        result.jobFrequencies.push_back(_freqs[k]);
        result.gapStates.push_back(
            gap > 0.0 ? gapState(gap, _activePower[k])
                      : LowPowerState::C0IdleS0Idle);
        c = start + costs[j].service[k];
    }
    return result;
}

OfflineOptimal::GreedyBound
OfflineOptimal::greedyUpperBound(const OfflineOptInstance &instance,
                                 const std::vector<JobCosts> &costs) const
{
    const bool relaxed = !std::isfinite(instance.deadlineSlack);
    const std::size_t fmax = _freqs.size() - 1;
    double c = 0.0;
    double energy = 0.0;
    std::size_t gaps = 0;
    for (std::size_t j = 0; j < instance.jobs.size(); ++j) {
        const Job &job = instance.jobs[j];
        const double deadline = job.arrival + instance.deadlineSlack;
        const double start = std::max(c, job.arrival);
        const double gap = start - c;
        const bool clamped =
            !relaxed &&
            start + costs[j].minService > deadline + kTimeTolerance;
        double best_cost = 0.0;
        std::size_t best_k = fmax;
        bool found = false;
        for (std::size_t k = 0; k < _freqs.size(); ++k) {
            if (clamped) {
                if (k != fmax)
                    continue;
            } else if (!relaxed && start + costs[j].service[k] >
                                       deadline + kTimeTolerance) {
                continue;
            }
            const double cost =
                costs[j].busyEnergy[k] +
                (gap > 0.0 ? gapCost(gap, _activePower[k]) : 0.0);
            if (!found || cost < best_cost) {
                best_cost = cost;
                best_k = k;
                found = true;
            }
        }
        energy += best_cost;
        if (gap > 0.0)
            ++gaps;
        c = start + costs[j].service[best_k];
    }
    energy += _idleFloor * std::max(0.0, instance.horizon - c);
    return GreedyBound{energy, gaps};
}

OfflineOptResult
OfflineOptimal::fptasPass(const OfflineOptInstance &instance,
                          const std::vector<JobCosts> &costs,
                          double delta, double merge_eta,
                          double upper_bound, bool allow_abort,
                          std::size_t max_states) const
{
    const std::size_t n = instance.jobs.size();
    const bool relaxed = !std::isfinite(instance.deadlineSlack);
    const std::size_t fmax = _freqs.size() - 1;

    // Suffixes of unavoidable busy energy and of slowest-possible
    // service time, for upper-bound pruning: whatever frequencies a
    // path still picks, its remaining idle window is at least the
    // horizon minus the longest the remaining service could take
    // (service[0] is the slowest grid entry).
    std::vector<double> suffix(n + 1, 0.0);
    std::vector<double> suffix_service(n + 1, 0.0);
    for (std::size_t j = n; j-- > 0;) {
        suffix[j] = suffix[j + 1] + costs[j].minBusyEnergy;
        suffix_service[j] =
            suffix_service[j + 1] + costs[j].service.front();
    }
    const double prune_slack =
        1e-9 * std::max(1.0, upper_bound) + kTimeTolerance;

    // Sort + per-cell dedupe + Pareto sweep. Relaxed instances keep,
    // per cell, only states no later-and-cheaper state dominates;
    // deadline-constrained ones keep the cheapest state per cell
    // (violations break the monotone structure the sweep needs).
    const auto compact = [&](std::vector<GridState> &states) {
        std::sort(states.begin(), states.end(),
                  [](const GridState &a, const GridState &b) {
                      if (a.cell != b.cell)
                          return a.cell < b.cell;
                      if (a.energy != b.energy)
                          return a.energy < b.energy;
                      return a.violations < b.violations;
                  });
        std::vector<GridState> kept;
        if (relaxed) {
            double best_energy = 0.0;
            bool have = false;
            for (std::size_t i = states.size(); i-- > 0;) {
                if (i > 0 && states[i - 1].cell == states[i].cell)
                    continue; // A cheaper state shares the cell.
                if (!have || states[i].energy < best_energy) {
                    kept.push_back(states[i]);
                    best_energy = states[i].energy;
                    have = true;
                }
            }
            std::reverse(kept.begin(), kept.end());
            // Lipschitz dominance: finishing later by dc can save at
            // most dc * (max relaxed idle power) on future gaps, so a
            // later state whose energy premium over an earlier one
            // exceeds dc * idleCeil can never catch up — dropping it
            // is exact, and it kills the slow-frequency lineages whose
            // backlog otherwise spreads the frontier at low load.
            std::size_t out = 0;
            double min_shifted = 0.0;
            for (std::size_t i = 0; i < kept.size(); ++i) {
                const double shifted =
                    kept[i].energy - kept[i].cGrid * _idleCeil;
                if (i == 0 || shifted < min_shifted) {
                    kept[out++] = kept[i];
                    min_shifted =
                        i == 0 ? shifted : std::min(min_shifted, shifted);
                }
            }
            kept.resize(out);
        } else {
            for (std::size_t i = 0; i < states.size(); ++i) {
                if (kept.empty() || states[i].cell != kept.back().cell)
                    kept.push_back(states[i]);
            }
        }
        states.swap(kept);
    };

    std::vector<GridState> frontier{{0, 0.0, 0.0, 0.0, 0.0, 0}};
    std::vector<GridState> next;
    std::size_t peak = 1;
    std::size_t coarsenings = 0;
    double debt = 0.0;

    for (std::size_t j = 0; j < n; ++j) {
        const Job &job = instance.jobs[j];
        const double deadline = job.arrival + instance.deadlineSlack;
        next.clear();
        for (const GridState &state : frontier) {
            const double start = std::max(state.cGrid, job.arrival);
            const double gap = start - state.cGrid;
            const double start_true =
                std::max(state.cTrue, job.arrival);
            const double gap_true = start_true - state.cTrue;
            const bool clamped =
                !relaxed && start + costs[j].minService >
                                deadline + kTimeTolerance;
            for (std::size_t k = 0; k < _freqs.size(); ++k) {
                const double done = start + costs[j].service[k];
                if (clamped) {
                    if (k != fmax)
                        continue;
                } else if (!relaxed &&
                           done > deadline + kTimeTolerance) {
                    continue;
                }
                GridState successor;
                // Round the completion *up*: gaps can only shrink, so
                // the grid value stays a valid lower bound.
                successor.cell = static_cast<std::int64_t>(
                    std::ceil(done / delta - kTimeTolerance));
                successor.cGrid =
                    static_cast<double>(successor.cell) * delta;
                successor.energy =
                    state.energy + costs[j].busyEnergy[k] +
                    (gap > 0.0 ? gapCost(gap, _activePower[k]) : 0.0);
                successor.cTrue = start_true + costs[j].service[k];
                successor.energyTrue =
                    state.energyTrue + costs[j].busyEnergy[k] +
                    (gap_true > 0.0
                         ? gapCost(gap_true, _activePower[k])
                         : 0.0);
                successor.violations =
                    state.violations + (clamped ? 1 : 0);
                // A state whose certain remaining floor already beats
                // the incumbent upper bound cannot be optimal. The
                // threshold carries the accumulated merge debt: after
                // eta-merges the optimal path's surviving representative
                // may cost up to `debt` more than the path itself, so
                // pruning at the bare upper bound could evict it (and
                // empty the frontier when the bracket is within debt).
                const double floor =
                    successor.energy + suffix[j + 1] +
                    _idleFloor *
                        std::max(0.0, instance.horizon -
                                          successor.cGrid -
                                          suffix_service[j + 1]);
                if (floor > upper_bound + debt + prune_slack)
                    continue;
                next.push_back(successor);
            }
        }
        // The grid image of the optimal schedule costs at most the
        // incumbent upper bound at every prefix, so it always survives
        // the pruning above.
        if (next.empty())
            panic("OfflineOptimal: FPTAS frontier emptied (the "
                  "pruning floor is not a lower bound)");
        compact(next);
        // Near-critical load keeps thousands of Lipschitz-incomparable
        // lineages pinned along the E = c * idleCeil boundary, spaced
        // millijoules apart. Merging a state into the previous kept
        // one when its shifted energy E - c * idleCeil is within eta
        // costs the optimal path at most eta per step (its merge target
        // trails it by < eta in guaranteed total); the accumulated debt
        // is subtracted from the reported bound, keeping it certified.
        if (relaxed && merge_eta > 0.0 && next.size() > kSoftFrontier) {
            std::size_t out = 1;
            double last_shifted =
                next[0].energy - next[0].cGrid * _idleCeil;
            bool merged = false;
            for (std::size_t i = 1; i < next.size(); ++i) {
                const double shifted =
                    next[i].energy - next[i].cGrid * _idleCeil;
                if (shifted < last_shifted - merge_eta) {
                    next[out++] = next[i];
                    last_shifted = shifted;
                } else {
                    merged = true;
                }
            }
            next.resize(out);
            if (merged)
                debt += merge_eta;
        }
        // Frontier spikes (long busy periods spread completion times
        // across many cells) coarsen the lattice locally instead of
        // failing the pass: snapping cells further *up* is one more
        // relaxation, so the lower bound stays valid and the ride-along
        // true-dynamics costs keep certifying the achieved bracket.
        std::int64_t lattice = 1;
        while (next.size() > max_states) {
            lattice *= 2;
            ++coarsenings;
            for (GridState &state : next) {
                const std::int64_t idx =
                    (state.cell + lattice - 1) / lattice;
                state.cell = idx * lattice;
                state.cGrid = static_cast<double>(state.cell) * delta;
            }
            compact(next);
        }
        if (allow_abort && coarsenings > kMaxCoarsenings) {
            // This resolution wants far more states than the cap; the
            // bracket would come out mush. Bail out cheaply and let
            // solve() move to the next grid in its schedule.
            OfflineOptResult aborted;
            aborted.energy = -std::numeric_limits<double>::infinity();
            aborted.upperBound = std::numeric_limits<double>::infinity();
            aborted.elapsed = instance.horizon;
            aborted.coarsenings = coarsenings;
            return aborted;
        }
        frontier.swap(next);
        peak = std::max(peak, frontier.size());
    }

    double best_lower = 0.0;
    double best_upper = 0.0;
    std::uint32_t violations = 0;
    bool have = false;
    for (const GridState &state : frontier) {
        const double lower =
            state.energy +
            _idleFloor * std::max(0.0, instance.horizon - state.cGrid);
        const double upper =
            state.energyTrue +
            _idleFloor * std::max(0.0, instance.horizon - state.cTrue);
        if (!have || lower < best_lower) {
            best_lower = lower;
            violations = state.violations;
        }
        if (!have || upper < best_upper)
            best_upper = upper;
        have = true;
    }

    OfflineOptResult out;
    out.energy = best_lower - debt;
    out.upperBound = std::min(best_upper, upper_bound);
    out.elapsed = instance.horizon;
    out.violations = violations;
    out.frontierPeak = peak;
    out.coarsenings = coarsenings;
    out.mergeDebt = debt;
    return out;
}

OfflineOptResult
OfflineOptimal::solve(const OfflineOptInstance &instance) const
{
    const std::size_t n = instance.jobs.size();

    OfflineOptResult result;
    result.epsilon = _options.epsilon;
    result.elapsed = instance.horizon;
    if (n == 0) {
        result.energy = _idleFloor * instance.horizon;
        result.upperBound = result.energy;
        result.frontierPeak = 1;
        return result;
    }

    std::vector<JobCosts> costs;
    costs.reserve(n);
    for (const Job &job : instance.jobs)
        costs.push_back(jobCosts(job));

    double min_busy = 0.0;
    double min_service = 0.0;
    for (const JobCosts &job : costs) {
        min_busy += job.minBusyEnergy;
        min_service += job.minService;
    }
    const double lower_seed =
        min_busy + _idleFloor *
                       std::max(0.0, instance.horizon - min_service);
    const GreedyBound greedy = greedyUpperBound(instance, costs);
    double upper_bound = greedy.energy;

    if (!(lower_seed > 0.0)) {
        // Zero-size jobs over a zero horizon: nothing costs anything.
        result.energy = 0.0;
        result.upperBound = upper_bound;
        result.frontierPeak = 1;
        result.epsilonEffective = 0.0;
        return result;
    }

    // A-priori FPTAS bound: rounding completions up to a delta-lattice
    // shortens each gap by at most its busy chain's accumulated drift,
    // so the total under-charge stays below n * delta * (max idle
    // power) and the job-calibrated grid certifies the bracket on its
    // own. It is affordable because the eta-merge in fptasPass
    // collapses the near-critical staircase (coarser grids are wider,
    // not narrower — their rounding bonus creates genuine grid-level
    // diversity the merge must keep). At high load, though, gaps are
    // rare and a grid calibrated to the greedy schedule's *gap* count
    // often certifies the bracket orders of magnitude faster, so it is
    // tried first when meaningfully coarser; a pass that thrashes the
    // frontier cap aborts cheaply. Grids are nested across halvings,
    // keeping the lower bound monotone non-decreasing and the energy
    // monotone in epsilon for epsilon halvings (the monotonicity
    // tests rely on this).
    const double delta_cap = std::max(1.0, instance.horizon);
    const double delta_job = std::clamp(
        _options.epsilon * lower_seed /
            (static_cast<double>(n) * _idleCeil),
        1e-12, delta_cap);
    const double delta_gap = std::clamp(
        _options.epsilon * lower_seed /
            (static_cast<double>(std::max<std::size_t>(greedy.gaps, 1)) *
             _idleCeil),
        1e-12, delta_cap);
    std::vector<double> schedule;
    if (delta_gap > 2.0 * delta_job)
        schedule.push_back(delta_gap);
    for (double d = delta_job;
         schedule.size() < static_cast<std::size_t>(kMaxRefinements);
         d *= 0.5)
        schedule.push_back(d);
    // Merge budget: a quarter of the epsilon allowance spread over the
    // jobs (the optimal path pays at most one eta per step).
    const double merge_eta = 0.25 * _options.epsilon * lower_seed /
                             static_cast<double>(n);

    OfflineOptResult best;
    bool have = false;
    std::size_t coarsenings = 0;
    double merge_debt = 0.0;
    for (std::size_t pass = 0; pass < schedule.size(); ++pass) {
        // The last pass may not abort if no earlier one delivered a
        // bracket: solve() must always return a valid bound.
        const bool allow_abort = have || pass + 1 < schedule.size();
        // The coarse opener is a cheap probe: it only pays off when
        // high-load structure collapses the frontier to a handful of
        // states, so run it under a small cap and let it abort fast.
        const bool probe = schedule[pass] > delta_job && allow_abort;
        const std::size_t max_states =
            probe ? std::min(_options.maxStates, 2 * kSoftFrontier)
                  : _options.maxStates;
        const OfflineOptResult attempt =
            fptasPass(instance, costs, schedule[pass], merge_eta,
                      upper_bound, allow_abort, max_states);
        coarsenings += attempt.coarsenings;
        if (!std::isfinite(attempt.energy))
            continue; // Aborted on the coarsening budget.
        if (!have) {
            best = attempt;
            merge_debt = attempt.mergeDebt;
        } else {
            if (attempt.energy > best.energy) {
                best.energy = attempt.energy;
                merge_debt = attempt.mergeDebt;
            }
            best.upperBound =
                std::min(best.upperBound, attempt.upperBound);
            best.violations = attempt.violations;
            best.frontierPeak =
                std::max(best.frontierPeak, attempt.frontierPeak);
        }
        have = true;
        upper_bound = std::min(upper_bound, best.upperBound);
        if (best.upperBound <=
            (1.0 + _options.epsilon) * best.energy + kTimeTolerance)
            break;
        // Once the cap binds at (or past) the job-calibrated grid,
        // finer grids just re-coarsen; the coarse opener falls through
        // to the fine schedule instead.
        if (attempt.coarsenings > 0 && schedule[pass] <= delta_job)
            break;
    }

    result.energy = best.energy;
    result.upperBound = best.upperBound;
    result.violations = best.violations;
    result.frontierPeak = best.frontierPeak;
    result.coarsenings = coarsenings;
    result.mergeDebt = merge_debt;
    result.epsilonEffective =
        result.energy > 0.0
            ? result.upperBound / result.energy - 1.0
            : 0.0;
    return result;
}

} // namespace sleepscale
