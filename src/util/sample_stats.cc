#include "util/sample_stats.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace sleepscale {

void
SampleStats::ensureSorted() const
{
    if (!_sorted) {
        std::sort(_samples.begin(), _samples.end());
        _sorted = true;
    }
}

double
SampleStats::percentile(double p) const
{
    fatalIf(p < 0.0 || p > 100.0,
            "SampleStats::percentile: p must be in [0, 100]");
    if (_samples.empty())
        return 0.0;
    ensureSorted();
    if (_samples.size() == 1)
        return _samples.front();

    // Linear interpolation between closest ranks (type-7 estimator, the
    // default in R and NumPy).
    const double rank =
        p / 100.0 * static_cast<double>(_samples.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = std::min(lo + 1, _samples.size() - 1);
    const double frac = rank - std::floor(rank);
    return _samples[lo] + frac * (_samples[hi] - _samples[lo]);
}

double
SampleStats::exceedance(double x) const
{
    if (_samples.empty())
        return 0.0;
    ensureSorted();
    const auto it = std::lower_bound(_samples.begin(), _samples.end(), x);
    const auto at_least = static_cast<double>(_samples.end() - it);
    return at_least / static_cast<double>(_samples.size());
}

} // namespace sleepscale
