/**
 * @file
 * A persistent worker pool for deterministic data-parallel fan-out.
 *
 * Extracted from ExperimentRunner's hand-rolled per-run thread vector so
 * every layer that fans out over an index space — scenario sweeps, the
 * policy-evaluation engine's candidate search — shares one primitive.
 * parallelFor() hands out indices through a single atomic counter, so the
 * assignment of items to lanes is nondeterministic but the *set* of items
 * executed is exactly [0, count); callers that store results by item index
 * and reduce in index order are bit-identical to a serial loop.
 *
 * The pool's lock discipline is machine-checked: every cross-thread
 * member carries a GUARDED_BY annotation (util/thread_annotations.hh)
 * and the -DSLEEPSCALE_THREAD_SAFETY=ON build fails on any access that
 * does not hold the named mutex. See docs/CONCURRENCY.md.
 */

#ifndef SLEEPSCALE_UTIL_THREAD_POOL_HH
#define SLEEPSCALE_UTIL_THREAD_POOL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hh"

namespace sleepscale {

/** Persistent pool of worker threads driving index-space loops. */
class ThreadPool
{
  public:
    /**
     * @param lanes Total concurrency, including the calling thread: a
     *        pool with `lanes` = N spawns N - 1 workers and the caller
     *        participates as lane 0. 0 selects the hardware concurrency;
     *        1 makes parallelFor() a plain serial loop (no threads).
     */
    explicit ThreadPool(std::size_t lanes = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Lanes available to parallelFor() (workers plus the caller). */
    std::size_t size() const { return _workers.size() + 1; }

    /** Loop body: item index in [0, count), lane index in [0, size()). */
    using Body = std::function<void(std::size_t item, std::size_t lane)>;

    /**
     * Run body(i, lane) for every i in [0, count). Blocks until all
     * items finish; the first exception recorded by any item is rethrown
     * after the loop completes (remaining items still run). The lane
     * index identifies the executing thread, so callers can maintain
     * per-lane scratch state (e.g. simulation arenas) without locking.
     *
     * Not reentrant: one parallelFor() at a time per pool, and the body
     * must not call back into the same pool.
     */
    void parallelFor(std::size_t count, const Body &body) EXCLUDES(_mutex);

    /** Hardware concurrency, with a floor of 1. The only sanctioned
     * call site of std::thread::hardware_concurrency (enforced by
     * tools/lint_determinism.py): lane counts size scratch arenas, and
     * results are reduced in index order, so the machine-dependent
     * value never reaches a simulation outcome. */
    static std::size_t hardwareLanes();

  private:
    /** One parallelFor invocation's shared state. Lives on the caller's
     * stack; workers borrow it through _batch for one generation. */
    struct Batch
    {
        std::size_t count = 0;     ///< Immutable once published.
        const Body *body = nullptr; ///< Immutable once published.

        /** Next index to hand out; the only hot-path synchronization. */
        std::atomic<std::size_t> next{0};

        /** Serializes first-error recording off the hot path. */
        Mutex errorMutex;

        /** First failure recorded by any lane. */
        std::exception_ptr error GUARDED_BY(errorMutex);
    };

    void workerLoop(std::size_t lane) EXCLUDES(_mutex);
    static void drain(Batch &batch, std::size_t lane);

    std::vector<std::thread> _workers;
    Mutex _mutex;
    ConditionVariable _wake;
    ConditionVariable _done;

    /** Batch workers should drain (null between generations). */
    Batch *_batch GUARDED_BY(_mutex) = nullptr;

    /** Bumped once per parallelFor() so workers can tell a fresh batch
     * from a spurious wakeup. */
    std::uint64_t _generation GUARDED_BY(_mutex) = 0;

    /** Workers still draining the current batch. */
    std::size_t _remaining GUARDED_BY(_mutex) = 0;

    /** Set once by the destructor to retire the workers. */
    bool _stop GUARDED_BY(_mutex) = false;
};

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_THREAD_POOL_HH
