/**
 * @file
 * A persistent worker pool for deterministic data-parallel fan-out.
 *
 * Extracted from ExperimentRunner's hand-rolled per-run thread vector so
 * every layer that fans out over an index space — scenario sweeps, the
 * policy-evaluation engine's candidate search — shares one primitive.
 * parallelFor() hands out indices through a single atomic counter, so the
 * assignment of items to lanes is nondeterministic but the *set* of items
 * executed is exactly [0, count); callers that store results by item index
 * and reduce in index order are bit-identical to a serial loop.
 */

#ifndef SLEEPSCALE_UTIL_THREAD_POOL_HH
#define SLEEPSCALE_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sleepscale {

/** Persistent pool of worker threads driving index-space loops. */
class ThreadPool
{
  public:
    /**
     * @param lanes Total concurrency, including the calling thread: a
     *        pool with `lanes` = N spawns N - 1 workers and the caller
     *        participates as lane 0. 0 selects the hardware concurrency;
     *        1 makes parallelFor() a plain serial loop (no threads).
     */
    explicit ThreadPool(std::size_t lanes = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Lanes available to parallelFor() (workers plus the caller). */
    std::size_t size() const { return _workers.size() + 1; }

    /** Loop body: item index in [0, count), lane index in [0, size()). */
    using Body = std::function<void(std::size_t item, std::size_t lane)>;

    /**
     * Run body(i, lane) for every i in [0, count). Blocks until all
     * items finish; the first exception thrown by any item is rethrown
     * after the loop completes (remaining items still run). The lane
     * index identifies the executing thread, so callers can maintain
     * per-lane scratch state (e.g. simulation arenas) without locking.
     *
     * Not reentrant: one parallelFor() at a time per pool.
     */
    void parallelFor(std::size_t count, const Body &body);

    /** Hardware concurrency, with a floor of 1. */
    static std::size_t hardwareLanes();

  private:
    /** One parallelFor invocation's shared state. */
    struct Batch
    {
        std::size_t count = 0;
        const Body *body = nullptr;
        std::atomic<std::size_t> next{0};
        std::size_t remaining = 0; ///< Workers still draining (by _mutex).
        std::exception_ptr error;  ///< First failure (by _errorMutex).
        std::mutex errorMutex;
    };

    void workerLoop(std::size_t lane);
    static void drain(Batch &batch, std::size_t lane);

    std::vector<std::thread> _workers;
    std::mutex _mutex;
    std::condition_variable _wake;
    std::condition_variable _done;
    Batch *_batch = nullptr;     ///< Guarded by _mutex.
    std::uint64_t _generation = 0;
    bool _stop = false;
};

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_THREAD_POOL_HH
