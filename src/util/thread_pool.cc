#include "util/thread_pool.hh"

namespace sleepscale {

std::size_t
ThreadPool::hardwareLanes()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t lanes)
{
    if (lanes == 0)
        lanes = hardwareLanes();
    _workers.reserve(lanes - 1);
    for (std::size_t lane = 1; lane < lanes; ++lane)
        _workers.emplace_back([this, lane] { workerLoop(lane); });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _wake.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

void
ThreadPool::drain(Batch &batch, std::size_t lane)
{
    for (std::size_t i = batch.next.fetch_add(1); i < batch.count;
         i = batch.next.fetch_add(1)) {
        try {
            (*batch.body)(i, lane);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(batch.errorMutex);
            if (!batch.error)
                batch.error = std::current_exception();
        }
    }
}

void
ThreadPool::workerLoop(std::size_t lane)
{
    std::uint64_t seen = 0;
    for (;;) {
        Batch *batch = nullptr;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock,
                       [&] { return _stop || _generation != seen; });
            if (_stop)
                return;
            seen = _generation;
            batch = _batch;
        }
        drain(*batch, lane);
        {
            const std::lock_guard<std::mutex> lock(_mutex);
            --batch->remaining;
        }
        _done.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t count, const Body &body)
{
    if (count == 0)
        return;
    if (_workers.empty()) {
        for (std::size_t i = 0; i < count; ++i)
            body(i, 0);
        return;
    }

    Batch batch;
    batch.count = count;
    batch.body = &body;
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        batch.remaining = _workers.size();
        _batch = &batch;
        ++_generation;
    }
    _wake.notify_all();

    drain(batch, 0); // The caller is lane 0.

    {
        std::unique_lock<std::mutex> lock(_mutex);
        _done.wait(lock, [&] { return batch.remaining == 0; });
        _batch = nullptr;
    }
    if (batch.error)
        std::rethrow_exception(batch.error);
}

} // namespace sleepscale
