#include "util/thread_pool.hh"

namespace sleepscale {

std::size_t
ThreadPool::hardwareLanes()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t lanes)
{
    if (lanes == 0)
        lanes = hardwareLanes();
    _workers.reserve(lanes - 1);
    for (std::size_t lane = 1; lane < lanes; ++lane)
        _workers.emplace_back([this, lane] { workerLoop(lane); });
}

ThreadPool::~ThreadPool()
{
    {
        const MutexLock lock(_mutex);
        _stop = true;
    }
    _wake.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

void
ThreadPool::drain(Batch &batch, std::size_t lane)
{
    for (std::size_t i = batch.next.fetch_add(1); i < batch.count;
         i = batch.next.fetch_add(1)) {
        try {
            (*batch.body)(i, lane);
        } catch (...) {
            const MutexLock lock(batch.errorMutex);
            if (!batch.error)
                batch.error = std::current_exception();
        }
    }
}

void
ThreadPool::workerLoop(std::size_t lane)
{
    std::uint64_t seen = 0;
    for (;;) {
        Batch *batch = nullptr;
        {
            MutexLock lock(_mutex);
            while (!_stop && _generation == seen)
                _wake.wait(_mutex);
            if (_stop)
                return;
            seen = _generation;
            batch = _batch;
        }
        drain(*batch, lane);
        {
            const MutexLock lock(_mutex);
            --_remaining;
        }
        _done.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t count, const Body &body)
{
    if (count == 0)
        return;

    Batch batch;
    batch.count = count;
    batch.body = &body;

    // With no workers the caller drains the whole batch serially; the
    // exception contract (record first, run every item, rethrow at the
    // end) is identical at any lane count because both paths share
    // drain(). The seed's serial path aborted at the first throw,
    // silently diverging from the documented contract.
    if (!_workers.empty()) {
        {
            const MutexLock lock(_mutex);
            _remaining = _workers.size();
            _batch = &batch;
            ++_generation;
        }
        _wake.notify_all();
    }

    drain(batch, 0); // The caller is lane 0.

    if (!_workers.empty()) {
        MutexLock lock(_mutex);
        while (_remaining != 0)
            _done.wait(_mutex);
        _batch = nullptr;
    }

    // Every worker is done with the batch, but the analysis (rightly)
    // still wants the recording lock held to read the error slot.
    std::exception_ptr error;
    {
        const MutexLock lock(batch.errorMutex);
        error = batch.error;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace sleepscale
