#include "util/table_printer.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hh"

namespace sleepscale {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    fatalIf(_headers.empty(), "TablePrinter: need at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != _headers.size(),
            "TablePrinter::addRow: cell count does not match header count");
    _rows.push_back(std::move(cells));
}

void
TablePrinter::addRow(const std::vector<double> &cells, int precision)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double value : cells) {
        std::ostringstream cell;
        cell << std::fixed << std::setprecision(precision) << value;
        text.push_back(cell.str());
    }
    addRow(std::move(text));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::setw(static_cast<int>(widths[c])) << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    print_row(_headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 == widths.size() ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : _rows)
        print_row(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << std::string(title.size() + 8, '=') << '\n'
       << "==  " << title << "  ==\n"
       << std::string(title.size() + 8, '=') << '\n';
}

} // namespace sleepscale
