/**
 * @file
 * Error-reporting helpers for the sleepscale library.
 *
 * Follows the gem5 fatal/panic discipline: fatal() is for conditions caused
 * by the caller (bad configuration, invalid arguments) and throws
 * ConfigError; panic() is for violated internal invariants (library bugs)
 * and throws InternalError. Neither is used on hot simulation paths.
 */

#ifndef SLEEPSCALE_UTIL_ERROR_HH
#define SLEEPSCALE_UTIL_ERROR_HH

#include <stdexcept>
#include <string>

namespace sleepscale {

/** Exception thrown on user-caused errors (bad configuration or inputs). */
class ConfigError : public std::invalid_argument
{
  public:
    explicit ConfigError(const std::string &what_arg)
        : std::invalid_argument(what_arg)
    {}
};

/** Exception thrown when a library-internal invariant is violated. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &what_arg)
        : std::logic_error(what_arg)
    {}
};

/**
 * Report a user-caused error. Never returns.
 *
 * @param msg Description of what the caller did wrong and how to fix it.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report a violated internal invariant (a sleepscale bug). Never returns.
 *
 * @param msg Description of the broken invariant.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Check a user-supplied condition, raising ConfigError when it fails.
 *
 * @param ok Condition that must hold for the configuration to be valid.
 * @param msg Message used if the condition fails.
 */
inline void
fatalIf(bool bad, const std::string &msg)
{
    if (bad)
        fatal(msg);
}

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_ERROR_HH
