/**
 * @file
 * Capability-annotated mutual-exclusion primitives.
 *
 * Clang's thread-safety analysis (util/thread_annotations.hh) can only
 * check lock disciplines expressed through lock types it knows are
 * capabilities, and libstdc++'s `std::mutex` carries no annotations.
 * These thin wrappers close that gap: `Mutex` is an annotated
 * `std::mutex`, `MutexLock` the scoped guard the analysis tracks, and
 * `ConditionVariable` an alias for `std::condition_variable_any`, which
 * can wait on a `Mutex` directly.
 *
 * Waiting idiom (the analysis sees the capability held across the wait,
 * which matches the caller-visible contract — held before and after):
 *
 *     MutexLock lock(_mutex);
 *     while (!condition())   // reads of GUARDED_BY(_mutex) state OK
 *         _wake.wait(_mutex);
 *
 * Zero runtime cost beyond `std::mutex` itself; the annotations exist
 * only at compile time.
 */

#ifndef SLEEPSCALE_UTIL_MUTEX_HH
#define SLEEPSCALE_UTIL_MUTEX_HH

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hh"

namespace sleepscale {

/** A `std::mutex` the thread-safety analysis understands. */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    /** Acquire exclusively (BasicLockable, so ConditionVariable::wait
     * can relock it directly). */
    void lock() ACQUIRE() { _mutex.lock(); }

    /** Release. */
    void unlock() RELEASE() { _mutex.unlock(); }

  private:
    std::mutex _mutex;
};

/** Scoped exclusive lock over a Mutex (the annotated lock_guard). */
class SCOPED_CAPABILITY MutexLock
{
  public:
    /** Acquires `mutex`; held until destruction. */
    explicit MutexLock(Mutex &mutex) ACQUIRE(mutex) : _mutex(mutex)
    {
        _mutex.lock();
    }

    ~MutexLock() RELEASE() { _mutex.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &_mutex;
};

/** Condition variable that waits on a Mutex (see the file comment for
 * the analysis-friendly wait idiom). */
using ConditionVariable = std::condition_variable_any;

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_MUTEX_HH
