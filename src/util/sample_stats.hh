/**
 * @file
 * Exact sample-set statistics with percentiles.
 */

#ifndef SLEEPSCALE_UTIL_SAMPLE_STATS_HH
#define SLEEPSCALE_UTIL_SAMPLE_STATS_HH

#include <cstddef>
#include <vector>

#include "util/online_stats.hh"

namespace sleepscale {

/**
 * Stores every sample and answers exact order statistics.
 *
 * Used where the sample count is bounded (policy evaluation over one epoch
 * log, tests) and exact percentiles matter; day-long runs use
 * QuantileHistogram instead.
 */
class SampleStats
{
  public:
    SampleStats() = default;

    /** Pre-allocate space for n samples. */
    explicit SampleStats(std::size_t reserve) { _samples.reserve(reserve); }

    /** Absorb one sample. */
    void
    add(double x)
    {
        _samples.push_back(x);
        _moments.add(x);
        _sorted = false;
    }

    /** Number of samples. */
    std::size_t count() const { return _samples.size(); }

    /** Sample mean; 0 when empty. */
    double mean() const { return _moments.mean(); }

    /** Unbiased variance. */
    double variance() const { return _moments.variance(); }

    /** Standard deviation. */
    double stddev() const { return _moments.stddev(); }

    /** Coefficient of variation. */
    double cv() const { return _moments.cv(); }

    /** Smallest sample; +inf when empty. */
    double min() const { return _moments.min(); }

    /** Largest sample; -inf when empty. */
    double max() const { return _moments.max(); }

    /**
     * Exact percentile by linear interpolation between order statistics.
     *
     * @param p Percentile in [0, 100].
     * @return The p-th percentile; 0 when the set is empty.
     */
    double percentile(double p) const;

    /**
     * Empirical exceedance probability Pr(X >= x).
     */
    double exceedance(double x) const;

    /** Read-only access to the raw samples (unsorted insertion order is
     * not preserved once percentile() has been called). */
    const std::vector<double> &samples() const { return _samples; }

    /** Forget all samples. */
    void
    reset()
    {
        _samples.clear();
        _moments.reset();
        _sorted = false;
    }

  private:
    mutable std::vector<double> _samples;
    mutable bool _sorted = false;
    OnlineStats _moments;

    void ensureSorted() const;
};

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_SAMPLE_STATS_HH
