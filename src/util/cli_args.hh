/**
 * @file
 * Minimal command-line argument parsing for the sleepscale tool.
 *
 * Supports `--key value` and `--flag` options after an optional
 * subcommand word. Unknown keys are rejected against a declared option
 * set so typos fail loudly instead of silently using defaults.
 */

#ifndef SLEEPSCALE_UTIL_CLI_ARGS_HH
#define SLEEPSCALE_UTIL_CLI_ARGS_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sleepscale {

/** Parsed command line: one subcommand plus key/value options. */
class CliArgs
{
  public:
    /**
     * Parse argv.
     *
     * @param argc Argument count from main().
     * @param argv Argument vector from main().
     * @param known Declared option names (without the leading "--");
     *              anything else is a fatal() error.
     */
    CliArgs(int argc, const char *const *argv,
            const std::set<std::string> &known);

    /** The first non-option word ("" when absent). */
    const std::string &command() const { return _command; }

    /** Whether an option was given. */
    bool has(const std::string &key) const;

    /** String option with default. */
    std::string get(const std::string &key,
                    const std::string &fallback) const;

    /** Double option with default; fatal() on non-numeric values. */
    double getDouble(const std::string &key, double fallback) const;

    /** Unsigned option with default; fatal() on bad values. */
    unsigned long getUnsigned(const std::string &key,
                              unsigned long fallback) const;

  private:
    std::string _command;
    std::map<std::string, std::string> _values;
};

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_CLI_ARGS_HH
