/**
 * @file
 * String-keyed factory registry.
 *
 * Every pluggable component family (utilization predictors, farm
 * dispatchers, named strategies, workloads, platforms) exposes one
 * Registry instance. Components are constructed by name through the
 * registry, so an unknown name fails fast with a message listing what
 * IS registered instead of silently misbehaving, and downstream layers
 * (the experiment API, the CLI) can enumerate the available choices
 * without hard-coding them.
 *
 * Concurrency contract: every registry singleton (platformRegistry(),
 * workloadRegistry(), ...) is a function-local static whose builtin
 * entries are added inside the initializing lambda, so construction is
 * complete before the first reference escapes (C++ guarantees
 * thread-safe static initialization). After that the registry is
 * read-only: add() from concurrent phases is NOT safe — register
 * custom components up front, before fanning experiments out. See
 * docs/CONCURRENCY.md.
 */

#ifndef SLEEPSCALE_UTIL_REGISTRY_HH
#define SLEEPSCALE_UTIL_REGISTRY_HH

#include <map>
#include <string>
#include <vector>

#include "util/error.hh"

namespace sleepscale {

/**
 * A named family of factories.
 *
 * @tparam Factory Callable type constructing one component; the
 *         signature is up to the family (see e.g. PredictorFactory).
 */
template <typename Factory>
class Registry
{
  public:
    /** @param kind Family name used in error messages ("predictor"). */
    explicit Registry(std::string kind) : _kind(std::move(kind)) {}

    /**
     * Register a factory under a name.
     *
     * @param name Lookup key; must not already be registered.
     * @param factory The factory to store.
     */
    void add(const std::string &name, Factory factory)
    {
        const bool inserted =
            _entries.emplace(name, std::move(factory)).second;
        fatalIf(!inserted, _kind + " '" + name + "' is already registered");
    }

    /** Whether a name is registered. */
    bool contains(const std::string &name) const
    {
        return _entries.find(name) != _entries.end();
    }

    /**
     * Look up a factory, fatal() on unknown names.
     *
     * @param name Registered name.
     * @return The factory; call it to construct the component.
     */
    const Factory &get(const std::string &name) const
    {
        const auto it = _entries.find(name);
        if (it == _entries.end())
            fatal("unknown " + _kind + " '" + name + "' (registered: " +
                  namesCsv() + ")");
        return it->second;
    }

    /** All registered names, sorted. */
    std::vector<std::string> names() const
    {
        std::vector<std::string> out;
        out.reserve(_entries.size());
        for (const auto &entry : _entries)
            out.push_back(entry.first);
        return out;
    }

    /** Registered names joined with ", " (for messages and --help). */
    std::string namesCsv() const
    {
        std::string out;
        for (const auto &entry : _entries) {
            if (!out.empty())
                out += ", ";
            out += entry.first;
        }
        return out;
    }

  private:
    std::string _kind;
    std::map<std::string, Factory> _entries;
};

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_REGISTRY_HH
