#include "util/student_t.hh"

#include <cmath>

#include "util/error.hh"

namespace sleepscale {

namespace {

/**
 * Continued-fraction expansion of the incomplete beta function
 * (modified Lentz's method). Converges fast for x < (a + 1)/(a + b + 2);
 * incompleteBeta() applies the symmetry transform to stay in that range.
 */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int maxIterations = 300;
    constexpr double epsilon = 1e-15;
    constexpr double tiny = 1e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < tiny)
        d = tiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= maxIterations; ++m) {
        const double m2 = 2.0 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < epsilon)
            break;
    }
    return h;
}

} // namespace

double
incompleteBeta(double a, double b, double x)
{
    fatalIf(a <= 0.0 || b <= 0.0,
            "incompleteBeta: shape parameters must be positive");
    fatalIf(x < 0.0 || x > 1.0, "incompleteBeta: x must be in [0, 1]");
    if (x == 0.0)
        return 0.0;
    if (x == 1.0)
        return 1.0;

    const double logBeta = std::lgamma(a + b) - std::lgamma(a) -
                           std::lgamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
    const double front = std::exp(logBeta);
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
studentTCdf(double t, std::uint64_t dof)
{
    fatalIf(dof == 0, "studentTCdf: degrees of freedom must be >= 1");
    const double nu = static_cast<double>(dof);
    const double x = nu / (nu + t * t);
    const double tail = 0.5 * incompleteBeta(nu / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - tail : tail;
}

double
studentTCriticalValue(double confidence, std::uint64_t dof)
{
    fatalIf(confidence <= 0.0 || confidence >= 1.0,
            "studentTCriticalValue: confidence must be in (0, 1)");
    fatalIf(dof == 0,
            "studentTCriticalValue: degrees of freedom must be >= 1");

    // Pr(|T| <= t*) = confidence  <=>  F(t*) = 1 - (1 - confidence)/2.
    const double target = 1.0 - (1.0 - confidence) / 2.0;

    // Bisection on the CDF: monotone, so this is robust for any dof.
    // The bracket covers every practical case (t*(1 dof, 99.9%) ≈ 637).
    double lo = 0.0;
    double hi = 1e4;
    while (studentTCdf(hi, dof) < target)
        hi *= 10.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (studentTCdf(mid, dof) < target)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * (1.0 + hi))
            break;
    }
    return 0.5 * (lo + hi);
}

} // namespace sleepscale
