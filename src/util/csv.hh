/**
 * @file
 * Minimal CSV reading/writing for traces and experiment output.
 */

#ifndef SLEEPSCALE_UTIL_CSV_HH
#define SLEEPSCALE_UTIL_CSV_HH

#include <string>
#include <vector>

namespace sleepscale {

/** A CSV table of doubles with named columns. */
struct CsvTable
{
    /** Column headers, one per column. */
    std::vector<std::string> headers;
    /** Row-major data; every row has headers.size() entries. */
    std::vector<std::vector<double>> rows;

    /** Append a row; its width must match the header count. */
    void addRow(const std::vector<double> &row);

    /** Index of a named column, or fatal() if absent. */
    std::size_t columnIndex(const std::string &name) const;

    /** Extract one column by name. */
    std::vector<double> column(const std::string &name) const;
};

/**
 * Serialize a table as RFC-4180-style CSV text.
 */
std::string toCsv(const CsvTable &table);

/**
 * Parse CSV text produced by toCsv (numeric cells, first line headers).
 */
CsvTable fromCsv(const std::string &text);

/**
 * Strictly parse one CSV cell as a double: the whole cell must be
 * consumed (no trailing junk).
 *
 * @param cell The cell text.
 * @param out Receives the value on success.
 * @return True when the cell parsed cleanly.
 */
bool tryParseCsvDouble(const std::string &cell, double &out);

/**
 * RFC-4180 quote a text cell for CSV output: returned verbatim when no
 * quoting is needed, otherwise wrapped in double quotes with embedded
 * quotes doubled.
 */
std::string csvQuote(const std::string &cell);

/** Write a table to a file, fatal() on I/O failure. */
void writeCsvFile(const std::string &path, const CsvTable &table);

/** Read a table from a file, fatal() on I/O failure. */
CsvTable readCsvFile(const std::string &path);

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_CSV_HH
