/**
 * @file
 * Monotonic wall-clock reads for decision-cost observability.
 *
 * The determinism lint (tools/lint_determinism.py) bans clock reads in
 * src/ because simulated results must be pure functions of the inputs.
 * Measuring how long a *decision* takes is the one legitimate use of
 * wall time: the reading feeds telemetry (decision_us_* extras), never
 * simulated state, and the call sites are gated behind opt-in flags so
 * default runs stay bit-identical. This shim is the single
 * allowlisted entry point (tools/determinism_allowlist.txt); calling
 * std::chrono clocks anywhere else in src/ still fails the lint.
 */

#ifndef SLEEPSCALE_UTIL_MONOTONIC_CLOCK_HH
#define SLEEPSCALE_UTIL_MONOTONIC_CLOCK_HH

namespace sleepscale {

/** Monotonic timestamp in microseconds from an arbitrary epoch; only
 * differences are meaningful. */
double monotonicMicros();

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_MONOTONIC_CLOCK_HH
