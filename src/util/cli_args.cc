#include "util/cli_args.hh"

#include <cmath>
#include <cstdlib>

#include "util/error.hh"

namespace sleepscale {

CliArgs::CliArgs(int argc, const char *const *argv,
                 const std::set<std::string> &known)
{
    int i = 1;
    if (i < argc && argv[i][0] != '-') {
        _command = argv[i];
        ++i;
    }
    for (; i < argc; ++i) {
        const std::string word = argv[i];
        fatalIf(word.rfind("--", 0) != 0,
                "CliArgs: expected --option, got '" + word + "'");
        const std::string key = word.substr(2);
        fatalIf(known.find(key) == known.end(),
                "CliArgs: unknown option '--" + key + "'");
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            _values[key] = argv[i + 1];
            ++i;
        } else {
            _values[key] = "true"; // bare flag
        }
    }
}

bool
CliArgs::has(const std::string &key) const
{
    return _values.find(key) != _values.end();
}

std::string
CliArgs::get(const std::string &key, const std::string &fallback) const
{
    const auto it = _values.find(key);
    return it == _values.end() ? fallback : it->second;
}

double
CliArgs::getDouble(const std::string &key, double fallback) const
{
    const auto it = _values.find(key);
    if (it == _values.end())
        return fallback;
    try {
        std::size_t used = 0;
        const double value = std::stod(it->second, &used);
        // The whole cell must parse: "0.5x" is a typo, not 0.5. And
        // "nan"/"inf" parse cleanly but sail through every downstream
        // range check (NaN compares false against any bound), so
        // non-finite values are rejected here, at the boundary.
        fatalIf(used != it->second.size() || !std::isfinite(value),
                "CliArgs: option '--" + key +
                    "' expects a finite number, got '" + it->second +
                    "'");
        return value;
    } catch (const ConfigError &) {
        throw;
    } catch (const std::exception &) {
        fatal("CliArgs: option '--" + key + "' expects a number, got '" +
              it->second + "'");
    }
}

unsigned long
CliArgs::getUnsigned(const std::string &key, unsigned long fallback) const
{
    const auto it = _values.find(key);
    if (it == _values.end())
        return fallback;
    try {
        std::size_t used = 0;
        const long value = std::stol(it->second, &used, 10);
        // The whole cell must parse: "5x" is a typo, not 5.
        fatalIf(used != it->second.size(),
                "CliArgs: option '--" + key +
                    "' expects an integer, got '" + it->second + "'");
        fatalIf(value < 0, "CliArgs: option '--" + key +
                               "' expects a non-negative integer");
        return static_cast<unsigned long>(value);
    } catch (const ConfigError &) {
        throw;
    } catch (const std::exception &) {
        fatal("CliArgs: option '--" + key +
              "' expects an integer, got '" + it->second + "'");
    }
}

} // namespace sleepscale
