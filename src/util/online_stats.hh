/**
 * @file
 * Streaming first/second-moment statistics (Welford's algorithm).
 */

#ifndef SLEEPSCALE_UTIL_ONLINE_STATS_HH
#define SLEEPSCALE_UTIL_ONLINE_STATS_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace sleepscale {

/**
 * Numerically stable streaming mean/variance/min/max accumulator.
 *
 * Uses Welford's online update, so it can absorb millions of samples (e.g.
 * one per job in a day-long run) without catastrophic cancellation and in
 * O(1) space. Coefficient of variation is exposed directly because workload
 * characterization in the paper is phrased in terms of (mean, Cv) pairs.
 */
class OnlineStats
{
  public:
    /** Absorb one sample. */
    void
    add(double x)
    {
        ++_count;
        const double delta = x - _mean;
        _mean += delta / static_cast<double>(_count);
        _m2 += delta * (x - _mean);
        if (x < _min)
            _min = x;
        if (x > _max)
            _max = x;
        _sum += x;
    }

    /** Merge another accumulator into this one (parallel Welford). */
    void
    merge(const OnlineStats &other)
    {
        if (other._count == 0)
            return;
        if (_count == 0) {
            *this = other;
            return;
        }
        const double na = static_cast<double>(_count);
        const double nb = static_cast<double>(other._count);
        const double delta = other._mean - _mean;
        const double total = na + nb;
        _mean += delta * nb / total;
        _m2 += other._m2 + delta * delta * na * nb / total;
        _count += other._count;
        _sum += other._sum;
        if (other._min < _min)
            _min = other._min;
        if (other._max > _max)
            _max = other._max;
    }

    /** Number of samples absorbed so far. */
    std::uint64_t count() const { return _count; }

    /** Running sum of all samples. */
    double sum() const { return _sum; }

    /** Sample mean; 0 when empty. */
    double mean() const { return _count ? _mean : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double
    variance() const
    {
        return _count > 1 ? _m2 / static_cast<double>(_count - 1) : 0.0;
    }

    /** Sample standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Coefficient of variation (stddev / mean); 0 when mean is 0. */
    double
    cv() const
    {
        return _mean != 0.0 && _count > 1 ? stddev() / _mean : 0.0;
    }

    /** Smallest sample; +inf when empty. */
    double min() const { return _min; }

    /** Largest sample; -inf when empty. */
    double max() const { return _max; }

    /** Forget all samples. */
    void reset() { *this = OnlineStats(); }

  private:
    std::uint64_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_ONLINE_STATS_HH
