/**
 * @file
 * Clang thread-safety analysis macros.
 *
 * Wraps Clang's capability attributes (`-Wthread-safety`) so lock
 * disciplines are *machine-checked* instead of living in comments that
 * drift: a member annotated `GUARDED_BY(_mutex)` fails the build when
 * any code path touches it without holding `_mutex`. Under any other
 * compiler every macro expands to nothing, so annotated headers stay
 * portable.
 *
 * The names follow the Clang documentation's canonical spelling
 * (CAPABILITY, GUARDED_BY, REQUIRES, ACQUIRE, RELEASE, EXCLUDES, ...).
 * Analysis only understands capability-annotated lock types — the
 * libstdc++ `std::mutex` is not one — so lock-based code should use the
 * annotated wrappers in util/mutex.hh, which are built on these macros.
 *
 * The build enables the analysis with -DSLEEPSCALE_THREAD_SAFETY=ON
 * (Clang only; adds `-Wthread-safety -Werror=thread-safety`); see
 * docs/CONCURRENCY.md for the annotation and determinism rules.
 */

#ifndef SLEEPSCALE_UTIL_THREAD_ANNOTATIONS_HH
#define SLEEPSCALE_UTIL_THREAD_ANNOTATIONS_HH

#if defined(__clang__)
#define SLEEPSCALE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SLEEPSCALE_THREAD_ANNOTATION(x) // no-op off Clang
#endif

/** Marks a type as a lockable capability ("mutex", "role", ...). */
#define CAPABILITY(x) SLEEPSCALE_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define SCOPED_CAPABILITY SLEEPSCALE_THREAD_ANNOTATION(scoped_lockable)

/** The annotated member may only be touched while holding `x`. */
#define GUARDED_BY(x) SLEEPSCALE_THREAD_ANNOTATION(guarded_by(x))

/** The pointee of the annotated pointer is protected by `x`. */
#define PT_GUARDED_BY(x) SLEEPSCALE_THREAD_ANNOTATION(pt_guarded_by(x))

/** Callers must hold the listed capabilities when calling. */
#define REQUIRES(...) \
    SLEEPSCALE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** The function acquires the listed capabilities (held on return). */
#define ACQUIRE(...) \
    SLEEPSCALE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** The function releases the listed capabilities. */
#define RELEASE(...) \
    SLEEPSCALE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Callers must NOT hold the listed capabilities (deadlock guard). */
#define EXCLUDES(...) SLEEPSCALE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** The function returns a reference to the named capability. */
#define RETURN_CAPABILITY(x) SLEEPSCALE_THREAD_ANNOTATION(lock_returned(x))

/** Opt a function out of the analysis (init/teardown special cases). */
#define NO_THREAD_SAFETY_ANALYSIS \
    SLEEPSCALE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // SLEEPSCALE_UTIL_THREAD_ANNOTATIONS_HH
