#include "util/rng.hh"

#include <cmath>

#include "util/error.hh"

namespace sleepscale {

namespace {

/** splitmix64 step used to expand one seed into the xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
mixSeed(std::uint64_t seed)
{
    return splitmix64(seed);
}

Rng::Rng(std::uint64_t seed)
    : _spareNormal(0.0)
{
    std::uint64_t s = seed;
    for (auto &word : _state)
        word = splitmix64(s);
}

Rng::result_type
Rng::next()
{
    const std::uint64_t result = rotl(_state[0] + _state[3], 23) + _state[0];
    const std::uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    fatalIf(lo > hi, "Rng::uniform: lo must be <= hi");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    fatalIf(n == 0, "Rng::uniformInt: n must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return draw % n;
}

double
Rng::exponential(double mean)
{
    fatalIf(mean <= 0.0, "Rng::exponential: mean must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (_haveSpare) {
        _haveSpare = false;
        return _spareNormal;
    }
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    _spareNormal = v * factor;
    _haveSpare = true;
    return u * factor;
}

double
Rng::normal(double mean, double stddev)
{
    fatalIf(stddev < 0.0, "Rng::normal: stddev must be non-negative");
    return mean + stddev * normal();
}

Rng
Rng::fork(std::uint64_t stream) const
{
    // Mix the parent state with the stream index through splitmix64 so
    // children neither overlap the parent sequence nor each other.
    std::uint64_t s = _state[0] ^ (_state[2] + 0x9e3779b97f4a7c15ULL * (stream + 1));
    return Rng(splitmix64(s));
}

} // namespace sleepscale
