/**
 * @file
 * Aligned plain-text tables for the bench harnesses.
 *
 * Every bench binary prints the rows/series of the paper figure or table it
 * regenerates; TablePrinter keeps that output readable and uniform.
 */

#ifndef SLEEPSCALE_UTIL_TABLE_PRINTER_HH
#define SLEEPSCALE_UTIL_TABLE_PRINTER_HH

#include <ostream>
#include <string>
#include <vector>

namespace sleepscale {

/** Column-aligned text table accumulated row by row. */
class TablePrinter
{
  public:
    /** @param headers Column titles. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a pre-formatted row (width must match the headers). */
    void addRow(std::vector<std::string> cells);

    /**
     * Append a row of doubles rendered with fixed precision.
     *
     * @param cells Values, one per column.
     * @param precision Digits after the decimal point.
     */
    void addRow(const std::vector<double> &cells, int precision = 3);

    /** Render the table, headers underlined, columns padded. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Print a section banner (used by benches to label figure panels). */
void printBanner(std::ostream &os, const std::string &title);

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_TABLE_PRINTER_HH
