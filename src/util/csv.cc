#include "util/csv.hh"

#include <fstream>
#include <sstream>

#include "util/error.hh"

namespace sleepscale {

void
CsvTable::addRow(const std::vector<double> &row)
{
    fatalIf(row.size() != headers.size(),
            "CsvTable::addRow: row width does not match header count");
    rows.push_back(row);
}

std::size_t
CsvTable::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < headers.size(); ++i) {
        if (headers[i] == name)
            return i;
    }
    fatal("CsvTable: no column named '" + name + "'");
}

std::vector<double>
CsvTable::column(const std::string &name) const
{
    const std::size_t idx = columnIndex(name);
    std::vector<double> out;
    out.reserve(rows.size());
    for (const auto &row : rows)
        out.push_back(row[idx]);
    return out;
}

std::string
toCsv(const CsvTable &table)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < table.headers.size(); ++i) {
        if (i)
            out << ',';
        out << table.headers[i];
    }
    out << '\n';
    out.precision(17);
    for (const auto &row : table.rows) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ',';
            out << row[i];
        }
        out << '\n';
    }
    return out.str();
}

CsvTable
fromCsv(const std::string &text)
{
    CsvTable table;
    std::istringstream in(text);
    std::string line;

    fatalIf(!std::getline(in, line), "fromCsv: empty input");
    {
        std::istringstream header(line);
        std::string cell;
        while (std::getline(header, cell, ','))
            table.headers.push_back(cell);
    }
    fatalIf(table.headers.empty(), "fromCsv: no header columns");

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string cell;
        std::vector<double> row;
        while (std::getline(fields, cell, ',')) {
            try {
                row.push_back(std::stod(cell));
            } catch (const std::exception &) {
                fatal("fromCsv: non-numeric cell '" + cell + "'");
            }
        }
        table.addRow(row);
    }
    return table;
}

bool
tryParseCsvDouble(const std::string &cell, double &out)
{
    try {
        std::size_t used = 0;
        out = std::stod(cell, &used);
        return used == cell.size();
    } catch (const std::exception &) {
        return false;
    }
}

std::string
csvQuote(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    return quoted + "\"";
}

void
writeCsvFile(const std::string &path, const CsvTable &table)
{
    std::ofstream out(path);
    fatalIf(!out, "writeCsvFile: cannot open '" + path + "' for writing");
    out << toCsv(table);
    fatalIf(!out, "writeCsvFile: write to '" + path + "' failed");
}

CsvTable
readCsvFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "readCsvFile: cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromCsv(buffer.str());
}

} // namespace sleepscale
