#include "util/error.hh"

namespace sleepscale {

void
fatal(const std::string &msg)
{
    throw ConfigError("sleepscale: fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw InternalError("sleepscale: panic: " + msg);
}

} // namespace sleepscale
