/**
 * @file
 * Streaming quantiles through a logarithmically bucketed histogram.
 */

#ifndef SLEEPSCALE_UTIL_QUANTILE_HISTOGRAM_HH
#define SLEEPSCALE_UTIL_QUANTILE_HISTOGRAM_HH

#include <cstdint>
#include <vector>

#include "util/online_stats.hh"

namespace sleepscale {

/**
 * Log-scale histogram for streaming percentile estimation.
 *
 * Day-long runtime simulations complete tens of millions of jobs, too many
 * to store individually. Buckets are spaced logarithmically between a
 * configurable floor and ceiling so the relative quantile error is bounded
 * by the per-decade resolution (default 400 buckets/decade ≈ 0.6% relative
 * error), which is far below the Monte-Carlo noise of the experiments.
 */
class QuantileHistogram
{
  public:
    /**
     * @param floor Smallest resolvable positive value; samples below land
     *              in an underflow bucket.
     * @param ceiling Largest resolvable value; samples above land in an
     *                overflow bucket.
     * @param buckets_per_decade Resolution of the log grid.
     */
    explicit QuantileHistogram(double floor = 1e-6, double ceiling = 1e4,
                               unsigned buckets_per_decade = 400);

    /** Absorb one sample (must be finite and >= 0). */
    void add(double x);

    /** Number of samples absorbed. */
    std::uint64_t count() const { return _moments.count(); }

    /** Exact streaming mean of all samples. */
    double mean() const { return _moments.mean(); }

    /** Exact streaming max. */
    double max() const { return _moments.max(); }

    /** Exact streaming min. */
    double min() const { return _moments.min(); }

    /**
     * Approximate percentile.
     *
     * @param p Percentile in [0, 100].
     * @return Upper edge of the bucket holding the p-th sample, never
     *         above the exact max; p = 0 returns the exact min. 0 when
     *         the histogram is empty.
     */
    double percentile(double p) const;

    /**
     * Approximate exceedance probability Pr(X >= x). Exact (1 or 0)
     * when x lies at or beyond the observed extremes; 0 when the
     * histogram is empty.
     */
    double exceedance(double x) const;

    /** Merge another histogram configured with identical parameters. */
    void merge(const QuantileHistogram &other);

    /** Forget all samples. */
    void reset();

  private:
    double _floor;
    double _ceiling;
    double _logFloor;
    double _bucketsPerDecade;

    /** Bucket count of the configured grid, including the underflow
     * and overflow buckets. Fixed at construction; _buckets grows to
     * this size on the first add(). */
    std::size_t _gridBuckets;

    /** Bucket array: empty until the first sample, then
     * [under, grid..., over]. Lazy allocation keeps a never-sampled
     * histogram — e.g. the response tail of an idle farm server — at
     * O(1) memory instead of ~38 KB each. */
    std::vector<std::uint64_t> _buckets;

    OnlineStats _moments;

    std::size_t indexOf(double x) const;
    double upperEdge(std::size_t index) const;
};

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_QUANTILE_HISTOGRAM_HH
