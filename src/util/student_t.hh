/**
 * @file
 * Student-t distribution utilities for confidence intervals.
 *
 * Replicated experiments summarize n independent runs with a mean and a
 * Student-t confidence interval mean ± t* · s/√n (the standard small-n
 * interval; see docs/STATISTICS.md for the assumptions). The critical
 * value t* is computed from the regularized incomplete beta function,
 * so no tables and no external math library are needed and the values
 * are exact to ~1e-10 — far beyond what any experiment here resolves.
 */

#ifndef SLEEPSCALE_UTIL_STUDENT_T_HH
#define SLEEPSCALE_UTIL_STUDENT_T_HH

#include <cstdint>

namespace sleepscale {

/**
 * Regularized incomplete beta function I_x(a, b).
 *
 * Evaluated by the standard continued-fraction expansion (Lentz's
 * method) with the symmetry transformation applied where the fraction
 * converges fastest.
 *
 * @param a First shape parameter (> 0).
 * @param b Second shape parameter (> 0).
 * @param x Evaluation point in [0, 1].
 */
double incompleteBeta(double a, double b, double x);

/**
 * Cumulative distribution function of Student's t with `dof` degrees
 * of freedom, Pr(T <= t).
 *
 * @param t Evaluation point.
 * @param dof Degrees of freedom (>= 1).
 */
double studentTCdf(double t, std::uint64_t dof);

/**
 * Upper quantile t* such that Pr(|T| <= t*) = confidence — the
 * two-sided critical value of the mean ± t*·s/√n interval.
 *
 * @param confidence Two-sided coverage in (0, 1), e.g. 0.95.
 * @param dof Degrees of freedom (>= 1; n - 1 for an n-sample mean).
 */
double studentTCriticalValue(double confidence, std::uint64_t dof);

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_STUDENT_T_HH
