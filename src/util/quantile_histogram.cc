#include "util/quantile_histogram.hh"

#include <cmath>

#include "util/error.hh"

namespace sleepscale {

QuantileHistogram::QuantileHistogram(double floor, double ceiling,
                                     unsigned buckets_per_decade)
    : _floor(floor), _ceiling(ceiling),
      _logFloor(std::log10(floor)),
      _bucketsPerDecade(static_cast<double>(buckets_per_decade))
{
    fatalIf(floor <= 0.0, "QuantileHistogram: floor must be positive");
    fatalIf(ceiling <= floor, "QuantileHistogram: ceiling must exceed floor");
    fatalIf(buckets_per_decade == 0,
            "QuantileHistogram: need at least one bucket per decade");
    const double decades = std::log10(ceiling) - _logFloor;
    const auto grid =
        static_cast<std::size_t>(std::ceil(decades * _bucketsPerDecade));
    _gridBuckets = grid + 2; // + underflow and overflow
    // _buckets stays empty until the first add(): a histogram that
    // never sees a sample costs O(1) memory.
}

std::size_t
QuantileHistogram::indexOf(double x) const
{
    if (x < _floor)
        return 0;
    if (x >= _ceiling)
        return _gridBuckets - 1;
    const double pos = (std::log10(x) - _logFloor) * _bucketsPerDecade;
    const auto raw = static_cast<std::size_t>(pos);
    return std::min(raw + 1, _gridBuckets - 2);
}

double
QuantileHistogram::upperEdge(std::size_t index) const
{
    if (index == 0)
        return _floor;
    if (index >= _gridBuckets - 1)
        return _moments.max();
    const double exponent =
        _logFloor + static_cast<double>(index) / _bucketsPerDecade;
    return std::pow(10.0, exponent);
}

void
QuantileHistogram::add(double x)
{
    // NaN would reach an undefined float-to-index cast in indexOf and
    // +inf would poison the exact moments, so both are rejected rather
    // than silently landing in a boundary bucket.
    fatalIf(!std::isfinite(x) || x < 0.0,
            "QuantileHistogram::add: samples must be finite and >= 0");
    if (_buckets.empty())
        _buckets.assign(_gridBuckets, 0);
    ++_buckets[indexOf(x)];
    _moments.add(x);
}

double
QuantileHistogram::percentile(double p) const
{
    fatalIf(p < 0.0 || p > 100.0,
            "QuantileHistogram::percentile: p must be in [0, 100]");
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    // p = 0 would otherwise report the first bucket's upper edge (the
    // floor when the data sit in the underflow bucket) even though the
    // exact minimum is tracked; both extremes answer from the moments.
    if (p == 0.0)
        return _moments.min();
    const double target = p / 100.0 * static_cast<double>(n);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        seen += _buckets[i];
        if (static_cast<double>(seen) >= target) {
            // A bucket's upper edge can exceed the largest sample seen
            // (the max lands mid-bucket); never report past the max.
            return std::min(upperEdge(i), _moments.max());
        }
    }
    return _moments.max();
}

double
QuantileHistogram::exceedance(double x) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    // Beyond the observed extremes the histogram's bucket resolution
    // does not apply; answer exactly. Without these guards a query
    // above the ceiling counted every overflow sample (even those
    // smaller than x) and a query below the floor depended on the
    // underflow bucket rather than the data.
    if (x > _moments.max())
        return 0.0;
    if (x <= _moments.min())
        return 1.0;
    const std::size_t cut = indexOf(x);
    std::uint64_t at_least = 0;
    for (std::size_t i = cut; i < _buckets.size(); ++i)
        at_least += _buckets[i];
    return static_cast<double>(at_least) / static_cast<double>(n);
}

void
QuantileHistogram::merge(const QuantileHistogram &other)
{
    fatalIf(other._gridBuckets != _gridBuckets ||
                other._floor != _floor || other._ceiling != _ceiling,
            "QuantileHistogram::merge: incompatible configurations");
    // An unallocated (never-sampled) source contributes nothing; the
    // early-out is what makes merging a mostly-idle farm's windows
    // O(active servers) rather than O(farm x buckets).
    if (other._buckets.empty())
        return;
    if (_buckets.empty())
        _buckets.assign(_gridBuckets, 0);
    for (std::size_t i = 0; i < _buckets.size(); ++i)
        _buckets[i] += other._buckets[i];
    _moments.merge(other._moments);
}

void
QuantileHistogram::reset()
{
    for (auto &bucket : _buckets)
        bucket = 0;
    _moments.reset();
}

} // namespace sleepscale
