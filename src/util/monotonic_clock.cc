#include "util/monotonic_clock.hh"

#include <chrono>

namespace sleepscale {

double
monotonicMicros()
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(
               now.time_since_epoch())
        .count();
}

} // namespace sleepscale
