/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library draw from Rng so that every
 * simulation, test, and bench is reproducible from an explicit seed. The
 * generator is xoshiro256++ (Blackman & Vigna) seeded through splitmix64,
 * which has far better statistical quality than std::minstd and is much
 * faster than std::mt19937_64 while remaining fully portable.
 */

#ifndef SLEEPSCALE_UTIL_RNG_HH
#define SLEEPSCALE_UTIL_RNG_HH

#include <array>
#include <cstdint>

namespace sleepscale {

/**
 * Deterministic xoshiro256++ random number generator.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also be
 * plugged into standard-library distributions, although the library uses
 * its explicit members for reproducibility across standard libraries.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a seed; equal seeds yield identical streams. */
    explicit Rng(std::uint64_t seed = 0x5eed5ca1eULL);

    /** Smallest value next() can return. */
    static constexpr result_type min() { return 0; }
    /** Largest value next() can return. */
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit output. */
    result_type next();

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). lo must be <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). n must be positive. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Exponentially distributed value with the given mean (> 0). */
    double exponential(double mean);

    /** Standard normal via Marsaglia polar method. */
    double normal();

    /** Normal with explicit mean and standard deviation (>= 0). */
    double normal(double mean, double stddev);

    /**
     * Derive an independent child generator.
     *
     * Children produced with distinct stream indices are statistically
     * independent of each other and of the parent, letting one master seed
     * drive many decoupled model components.
     *
     * @param stream Index of the child stream.
     */
    Rng fork(std::uint64_t stream) const;

  private:
    std::array<std::uint64_t, 4> _state;
    /** Cached second output of the polar method, NaN when absent. */
    double _spareNormal;
    bool _haveSpare = false;
};

/**
 * Derive a decorrelated seed from another seed (one splitmix64 step).
 *
 * Use when two components must draw statistically independent streams
 * from one master seed: seeding both with the raw value would put
 * their generators in identical states.
 */
std::uint64_t mixSeed(std::uint64_t seed);

} // namespace sleepscale

#endif // SLEEPSCALE_UTIL_RNG_HH
