/**
 * @file
 * The unit of work flowing through the queueing system.
 */

#ifndef SLEEPSCALE_WORKLOAD_JOB_HH
#define SLEEPSCALE_WORKLOAD_JOB_HH

namespace sleepscale {

/**
 * One job: an arrival instant and a service demand.
 *
 * The size is expressed in seconds of service at full frequency (f = 1);
 * the simulator applies the workload's ServiceScaling law to obtain the
 * actual service time at the operating frequency.
 */
struct Job
{
    double arrival = 0.0; ///< Absolute arrival time, seconds.
    double size = 0.0;    ///< Service demand at f = 1, seconds.

    /** Request class (0 = default). Carried by replayed job logs with a
     * class column; the queueing core treats all classes alike today. */
    int classId = 0;
};

} // namespace sleepscale

#endif // SLEEPSCALE_WORKLOAD_JOB_HH
