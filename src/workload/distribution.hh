/**
 * @file
 * Probability distributions for inter-arrival and service times.
 *
 * SleepScale's policy manager consumes *empirical* job logs, so it is
 * distribution-agnostic; these analytic families are used to (a) drive the
 * Section 4 idealized studies (exponential), and (b) synthesize
 * BigHouse-like workloads matching the paper's Table 5 (mean, Cv) pairs —
 * our stand-in for the BigHouse trace archive (see DESIGN.md).
 */

#ifndef SLEEPSCALE_WORKLOAD_DISTRIBUTION_HH
#define SLEEPSCALE_WORKLOAD_DISTRIBUTION_HH

#include <memory>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace sleepscale {

/**
 * Abstract positive-valued random distribution.
 *
 * Implementations are immutable; all randomness flows through the Rng
 * passed to sample() so streams stay reproducible and decoupled.
 */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one sample (always >= 0). */
    virtual double sample(Rng &rng) const = 0;

    /** Cumulative distribution function Pr(X <= x). */
    virtual double cdf(double x) const = 0;

    /** Theoretical mean. */
    virtual double mean() const = 0;

    /** Theoretical coefficient of variation (stddev / mean). */
    virtual double cv() const = 0;

    /** Family name for diagnostics, e.g. "exponential". */
    virtual std::string name() const = 0;

    /** Deep copy. */
    virtual std::unique_ptr<Distribution> clone() const = 0;
};

/** Degenerate point mass: every sample equals the mean (Cv = 0). */
class DeterministicDist final : public Distribution
{
  public:
    explicit DeterministicDist(double value);
    double sample(Rng &rng) const override;
    double cdf(double x) const override;
    double mean() const override { return _value; }
    double cv() const override { return 0.0; }
    std::string name() const override { return "deterministic"; }
    std::unique_ptr<Distribution> clone() const override;

  private:
    double _value;
};

/** Exponential distribution (Cv = 1); the paper's idealized model. */
class ExponentialDist final : public Distribution
{
  public:
    explicit ExponentialDist(double mean);
    double sample(Rng &rng) const override;
    double cdf(double x) const override;
    double mean() const override { return _mean; }
    double cv() const override { return 1.0; }
    std::string name() const override { return "exponential"; }
    std::unique_ptr<Distribution> clone() const override;

  private:
    double _mean;
};

/** Continuous uniform on [lo, hi]. */
class UniformDist final : public Distribution
{
  public:
    UniformDist(double lo, double hi);
    double sample(Rng &rng) const override;
    double cdf(double x) const override;
    double mean() const override;
    double cv() const override;
    std::string name() const override { return "uniform"; }
    std::unique_ptr<Distribution> clone() const override;

  private:
    double _lo;
    double _hi;
};

/**
 * Gamma distribution parameterized by (mean, Cv); Cv < 1 yields Erlang-like
 * low-variance shapes. Sampling uses Marsaglia & Tsang's method.
 */
class GammaDist final : public Distribution
{
  public:
    GammaDist(double mean, double cv);
    double sample(Rng &rng) const override;
    double cdf(double x) const override;
    double mean() const override { return _mean; }
    double cv() const override { return _cv; }
    std::string name() const override { return "gamma"; }
    std::unique_ptr<Distribution> clone() const override;

    /** Shape parameter k = 1 / Cv^2. */
    double shape() const { return _shape; }

  private:
    double _mean;
    double _cv;
    double _shape;
    double _scale;
};

/** Log-normal distribution parameterized by (mean, Cv). */
class LogNormalDist final : public Distribution
{
  public:
    LogNormalDist(double mean, double cv);
    double sample(Rng &rng) const override;
    double cdf(double x) const override;
    double mean() const override { return _mean; }
    double cv() const override { return _cv; }
    std::string name() const override { return "lognormal"; }
    std::unique_ptr<Distribution> clone() const override;

  private:
    double _mean;
    double _cv;
    double _mu;    ///< Mean of the underlying normal.
    double _sigma; ///< Stddev of the underlying normal.
};

/** Weibull distribution parameterized by (mean, Cv); shape solved
 * numerically from the Cv. */
class WeibullDist final : public Distribution
{
  public:
    WeibullDist(double mean, double cv);
    double sample(Rng &rng) const override;
    double cdf(double x) const override;
    double mean() const override { return _mean; }
    double cv() const override { return _cv; }
    std::string name() const override { return "weibull"; }
    std::unique_ptr<Distribution> clone() const override;

    /** Shape parameter k. */
    double shape() const { return _shape; }

  private:
    double _mean;
    double _cv;
    double _shape;
    double _scale;
};

/**
 * Two-phase hyperexponential with balanced means, parameterized by
 * (mean, Cv) for Cv >= 1. This is the standard H2 fit used to reproduce
 * heavy-tailed service processes such as the paper's Mail workload
 * (service Cv = 3.6).
 */
class HyperExponentialDist final : public Distribution
{
  public:
    HyperExponentialDist(double mean, double cv);
    double sample(Rng &rng) const override;
    double cdf(double x) const override;
    double mean() const override { return _mean; }
    double cv() const override { return _cv; }
    std::string name() const override { return "hyperexponential"; }
    std::unique_ptr<Distribution> clone() const override;

    /** Probability of drawing from the first (fast) phase. */
    double phaseProbability() const { return _p1; }

  private:
    double _mean;
    double _cv;
    double _p1;
    double _mean1;
    double _mean2;
};

/**
 * Bounded Pareto on [lo, hi] with tail exponent alpha; mean and Cv are
 * derived. Used in heavy-tail stress tests.
 */
class BoundedParetoDist final : public Distribution
{
  public:
    BoundedParetoDist(double lo, double hi, double alpha);
    double sample(Rng &rng) const override;
    double cdf(double x) const override;
    double mean() const override { return _mean; }
    double cv() const override { return _cv; }
    std::string name() const override { return "bounded_pareto"; }
    std::unique_ptr<Distribution> clone() const override;

  private:
    double _lo;
    double _hi;
    double _alpha;
    double _mean;
    double _cv;

    double rawMoment(double order) const;
};

/**
 * Empirical distribution resampling a fixed set of observations with
 * replacement — how SleepScale's policy manager treats logged job events.
 */
class EmpiricalDist final : public Distribution
{
  public:
    /** @param samples Observations; must be non-empty and non-negative. */
    explicit EmpiricalDist(std::vector<double> samples);
    double sample(Rng &rng) const override;
    double cdf(double x) const override;
    double mean() const override { return _mean; }
    double cv() const override { return _cv; }
    std::string name() const override { return "empirical"; }
    std::unique_ptr<Distribution> clone() const override;

    /** Number of stored observations. */
    std::size_t size() const { return _samples.size(); }

  private:
    std::vector<double> _samples;
    double _mean;
    double _cv;
};

/**
 * Fit a distribution family to a (mean, Cv) target.
 *
 * Chooses deterministic (Cv = 0), gamma (0 < Cv < 1), exponential
 * (Cv = 1 within tolerance), or balanced-means hyperexponential (Cv > 1).
 * The returned distribution matches both moments exactly.
 *
 * @param mean Target mean (> 0).
 * @param cv Target coefficient of variation (>= 0).
 */
std::unique_ptr<Distribution> fitDistribution(double mean, double cv);

} // namespace sleepscale

#endif // SLEEPSCALE_WORKLOAD_DISTRIBUTION_HH
