#include "workload/workload_spec.hh"

#include <cmath>

#include "util/error.hh"

namespace sleepscale {

double
ServiceScaling::factor(double f) const
{
    fatalIf(f <= 0.0 || f > 1.0, "ServiceScaling: f must be in (0, 1]");
    fatalIf(exponent < 0.0 || exponent > 1.0,
            "ServiceScaling: exponent must be in [0, 1]");
    if (exponent == 0.0)
        return 1.0;
    if (exponent == 1.0)
        return 1.0 / f;
    return 1.0 / std::pow(f, exponent);
}

double
WorkloadSpec::nativeUtilization() const
{
    fatalIf(interArrivalMean <= 0.0,
            "WorkloadSpec: interArrivalMean must be positive");
    return serviceMean / interArrivalMean;
}

double
WorkloadSpec::interArrivalMeanAt(double utilization) const
{
    fatalIf(utilization <= 0.0 || utilization >= 1.0,
            "WorkloadSpec: utilization must be in (0, 1)");
    return serviceMean / utilization;
}

std::unique_ptr<Distribution>
WorkloadSpec::makeInterArrival(double utilization) const
{
    return fitDistribution(interArrivalMeanAt(utilization), interArrivalCv);
}

std::unique_ptr<Distribution>
WorkloadSpec::makeService() const
{
    return fitDistribution(serviceMean, serviceCv);
}

WorkloadSpec
WorkloadSpec::idealized() const
{
    WorkloadSpec ideal = *this;
    ideal.name = name + " (idealized)";
    ideal.interArrivalCv = 1.0;
    ideal.serviceCv = 1.0;
    return ideal;
}

WorkloadSpec
dnsWorkload()
{
    return {"DNS", 1.1, 1.1, 194e-3, 1.0, ServiceScaling::cpuBound()};
}

WorkloadSpec
mailWorkload()
{
    return {"Mail", 206e-3, 1.9, 92e-3, 3.6, ServiceScaling::cpuBound()};
}

WorkloadSpec
googleWorkload()
{
    return {"Google", 319e-6, 1.2, 4.2e-3, 1.1, ServiceScaling::cpuBound()};
}

Registry<WorkloadFactory> &
workloadRegistry()
{
    static Registry<WorkloadFactory> registry = [] {
        Registry<WorkloadFactory> r("workload");
        r.add("dns", dnsWorkload);
        r.add("mail", mailWorkload);
        r.add("google", googleWorkload);
        return r;
    }();
    return registry;
}

WorkloadSpec
workloadByName(const std::string &name)
{
    return workloadRegistry().get(name)();
}

} // namespace sleepscale
