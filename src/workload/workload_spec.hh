/**
 * @file
 * Workload characterizations (paper Table 5) and service-time scaling laws.
 */

#ifndef SLEEPSCALE_WORKLOAD_WORKLOAD_SPEC_HH
#define SLEEPSCALE_WORKLOAD_WORKLOAD_SPEC_HH

#include <functional>
#include <memory>
#include <string>

#include "util/registry.hh"
#include "workload/distribution.hh"

namespace sleepscale {

/**
 * How the service rate responds to the DVFS frequency factor f
 * (paper Section 4.2, lesson 6): service time = size / f^exponent.
 */
struct ServiceScaling
{
    /** Exponent in [0, 1]: 1 = CPU-bound, 0 = memory-bound. */
    double exponent = 1.0;

    /** Effective service-time multiplier at frequency f. */
    double factor(double f) const;

    /** Fully CPU-bound (rate scales as µf). */
    static ServiceScaling cpuBound() { return {1.0}; }
    /** Mildly CPU-bound (µ f^0.5). */
    static ServiceScaling mixed() { return {0.5}; }
    /** Barely CPU-bound (µ f^0.2). */
    static ServiceScaling mostlyMemory() { return {0.2}; }
    /** Memory-bound (rate independent of f). */
    static ServiceScaling memoryBound() { return {0.0}; }
};

/**
 * Statistical characterization of a workload: inter-arrival and service
 * (mean, Cv) pairs plus the frequency-scaling law. Mirrors the BigHouse
 * summary statistics reprinted in the paper's Table 5.
 */
struct WorkloadSpec
{
    std::string name;          ///< Workload name, e.g. "DNS".
    double interArrivalMean;   ///< Seconds (at the trace's native load).
    double interArrivalCv;     ///< Coefficient of variation.
    double serviceMean;        ///< Seconds of work at f = 1.
    double serviceCv;          ///< Coefficient of variation.
    ServiceScaling scaling = ServiceScaling::cpuBound();

    /** Native utilization λ/µ = serviceMean / interArrivalMean. */
    double nativeUtilization() const;

    /** Inter-arrival mean that produces a target utilization. */
    double interArrivalMeanAt(double utilization) const;

    /**
     * Moment-matched inter-arrival distribution at a target utilization.
     */
    std::unique_ptr<Distribution>
    makeInterArrival(double utilization) const;

    /** Moment-matched service-demand distribution (sizes at f = 1). */
    std::unique_ptr<Distribution> makeService() const;

    /**
     * The paper's idealized counterpart: Poisson arrivals and exponential
     * service with the same means (Section 4's model).
     */
    WorkloadSpec idealized() const;
};

/** "DNS-like" workload of Table 5 (1/µ = 194 ms). */
WorkloadSpec dnsWorkload();

/** "Mail-like" workload of Table 5 (heavy-tailed service, Cv = 3.6). */
WorkloadSpec mailWorkload();

/** "Google-like" workload of Table 5 (1/µ = 4.2 ms). */
WorkloadSpec googleWorkload();

/** Factory signature stored in the workload registry. */
using WorkloadFactory = std::function<WorkloadSpec()>;

/**
 * The workload registry. Ships with "dns", "mail", and "google" (the
 * paper's Table 5); extensions register additional characterizations
 * under new names.
 */
Registry<WorkloadFactory> &workloadRegistry();

/** Build a registered workload by name; fatal() on unknown names. */
WorkloadSpec workloadByName(const std::string &name);

} // namespace sleepscale

#endif // SLEEPSCALE_WORKLOAD_WORKLOAD_SPEC_HH
