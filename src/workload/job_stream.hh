/**
 * @file
 * Materialized job-stream generation: fixed-count, fixed-duration, and
 * trace-driven.
 *
 * These free functions predate the streaming JobSource API
 * (workload/job_source.hh) and are now thin adapters over it — each one
 * drains the corresponding source into a vector. New code that feeds an
 * engine should pass the source itself to the streaming run()
 * overloads instead of materializing; these stay for tests, offline
 * tools, and anything that genuinely needs the whole list at once.
 */

#ifndef SLEEPSCALE_WORKLOAD_JOB_STREAM_HH
#define SLEEPSCALE_WORKLOAD_JOB_STREAM_HH

#include <cstddef>
#include <vector>

#include "util/rng.hh"
#include "workload/distribution.hh"
#include "workload/job.hh"
#include "workload/utilization_trace.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/**
 * Generate a fixed number of jobs (the paper's Section 4.1 methodology,
 * N = 10,000 by default there).
 *
 * @param rng Random stream.
 * @param inter_arrival Inter-arrival time distribution.
 * @param service Service-demand distribution (sizes at f = 1).
 * @param count Number of jobs.
 * @return Jobs with non-decreasing arrival times starting after t = 0.
 */
std::vector<Job> generateJobs(Rng &rng, const Distribution &inter_arrival,
                              const Distribution &service,
                              std::size_t count);

/**
 * Generate jobs arriving within [0, duration).
 */
std::vector<Job> generateJobsForDuration(Rng &rng,
                                         const Distribution &inter_arrival,
                                         const Distribution &service,
                                         double duration);

/**
 * Generate a stationary job stream for a workload at a target utilization.
 */
std::vector<Job> generateWorkloadJobs(Rng &rng, const WorkloadSpec &spec,
                                      double utilization,
                                      std::size_t count);

/**
 * Generate a trace-driven job stream (paper Section 6 methodology).
 *
 * Inter-arrival gaps are drawn from the workload's fitted distribution
 * with the *shape* (Cv) held fixed while the mean is rescaled minute by
 * minute so the offered load matches the utilization trace.
 *
 * @param rng Random stream.
 * @param spec Workload characterization (service distribution is
 *             stationary; only arrivals are modulated).
 * @param trace Per-minute utilization targets.
 * @return Jobs covering the whole trace duration.
 */
std::vector<Job> generateTraceDrivenJobs(Rng &rng, const WorkloadSpec &spec,
                                         const UtilizationTrace &trace);

/**
 * Measured offered load of a job list over a window: Σ size / window.
 * The window must be positive — a zero or negative window fatal()s
 * instead of dividing by zero.
 */
double offeredLoad(const std::vector<Job> &jobs, double window);

} // namespace sleepscale

#endif // SLEEPSCALE_WORKLOAD_JOB_STREAM_HH
