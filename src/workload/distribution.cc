#include "workload/distribution.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"
#include "util/online_stats.hh"

namespace sleepscale {

// ---------------------------------------------------------------- helpers

namespace {

void
requirePositiveMean(double mean, const char *who)
{
    fatalIf(mean <= 0.0, std::string(who) + ": mean must be positive");
}

/**
 * Regularized lower incomplete gamma P(a, x) via the standard series /
 * continued-fraction split (Numerical Recipes style), accurate to ~1e-12
 * over the parameter range the gamma family uses.
 */
double
regularizedGammaP(double a, double x)
{
    if (x <= 0.0)
        return 0.0;
    constexpr int max_iterations = 500;
    constexpr double epsilon = 1e-14;
    const double log_gamma_a = std::lgamma(a);

    if (x < a + 1.0) {
        // Series representation.
        double term = 1.0 / a;
        double sum = term;
        double ap = a;
        for (int n = 0; n < max_iterations; ++n) {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if (std::abs(term) < std::abs(sum) * epsilon)
                break;
        }
        return sum * std::exp(-x + a * std::log(x) - log_gamma_a);
    }

    // Continued fraction for Q(a, x) = 1 - P(a, x).
    double b = x + 1.0 - a;
    double c = 1e300;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= max_iterations; ++i) {
        const double an = -static_cast<double>(i) *
                          (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < 1e-300)
            d = 1e-300;
        c = b + an / c;
        if (std::abs(c) < 1e-300)
            c = 1e-300;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::abs(delta - 1.0) < epsilon)
            break;
    }
    const double q = std::exp(-x + a * std::log(x) - log_gamma_a) * h;
    return 1.0 - q;
}

} // namespace

// ---------------------------------------------------------- Deterministic

DeterministicDist::DeterministicDist(double value)
    : _value(value)
{
    fatalIf(value < 0.0, "DeterministicDist: value must be >= 0");
}

double
DeterministicDist::sample(Rng &rng) const
{
    (void)rng;
    return _value;
}

double
DeterministicDist::cdf(double x) const
{
    return x >= _value ? 1.0 : 0.0;
}

std::unique_ptr<Distribution>
DeterministicDist::clone() const
{
    return std::make_unique<DeterministicDist>(*this);
}

// ------------------------------------------------------------ Exponential

ExponentialDist::ExponentialDist(double mean)
    : _mean(mean)
{
    requirePositiveMean(mean, "ExponentialDist");
}

double
ExponentialDist::sample(Rng &rng) const
{
    return rng.exponential(_mean);
}

double
ExponentialDist::cdf(double x) const
{
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x / _mean);
}

std::unique_ptr<Distribution>
ExponentialDist::clone() const
{
    return std::make_unique<ExponentialDist>(*this);
}

// ---------------------------------------------------------------- Uniform

UniformDist::UniformDist(double lo, double hi)
    : _lo(lo), _hi(hi)
{
    fatalIf(lo < 0.0 || hi <= lo,
            "UniformDist: require 0 <= lo < hi");
}

double
UniformDist::sample(Rng &rng) const
{
    return rng.uniform(_lo, _hi);
}

double
UniformDist::mean() const
{
    return 0.5 * (_lo + _hi);
}

double
UniformDist::cv() const
{
    const double m = mean();
    const double sd = (_hi - _lo) / std::sqrt(12.0);
    return m > 0.0 ? sd / m : 0.0;
}

double
UniformDist::cdf(double x) const
{
    if (x <= _lo)
        return 0.0;
    if (x >= _hi)
        return 1.0;
    return (x - _lo) / (_hi - _lo);
}

std::unique_ptr<Distribution>
UniformDist::clone() const
{
    return std::make_unique<UniformDist>(*this);
}

// ------------------------------------------------------------------ Gamma

GammaDist::GammaDist(double mean, double cv)
    : _mean(mean), _cv(cv)
{
    requirePositiveMean(mean, "GammaDist");
    fatalIf(cv <= 0.0, "GammaDist: cv must be positive");
    _shape = 1.0 / (cv * cv);
    _scale = mean / _shape;
}

double
GammaDist::sample(Rng &rng) const
{
    // Marsaglia & Tsang (2000). For shape < 1 boost with U^{1/shape}.
    double shape = _shape;
    double boost = 1.0;
    if (shape < 1.0) {
        double u;
        do {
            u = rng.uniform();
        } while (u <= 0.0);
        boost = std::pow(u, 1.0 / shape);
        shape += 1.0;
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x, v;
        do {
            x = rng.normal();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = rng.uniform();
        const double x2 = x * x;
        if (u < 1.0 - 0.0331 * x2 * x2 ||
            std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
            return d * v * boost * _scale;
        }
    }
}

double
GammaDist::cdf(double x) const
{
    return x <= 0.0 ? 0.0 : regularizedGammaP(_shape, x / _scale);
}

std::unique_ptr<Distribution>
GammaDist::clone() const
{
    return std::make_unique<GammaDist>(*this);
}

// -------------------------------------------------------------- LogNormal

LogNormalDist::LogNormalDist(double mean, double cv)
    : _mean(mean), _cv(cv)
{
    requirePositiveMean(mean, "LogNormalDist");
    fatalIf(cv <= 0.0, "LogNormalDist: cv must be positive");
    _sigma = std::sqrt(std::log(1.0 + cv * cv));
    _mu = std::log(mean) - 0.5 * _sigma * _sigma;
}

double
LogNormalDist::sample(Rng &rng) const
{
    return std::exp(rng.normal(_mu, _sigma));
}

double
LogNormalDist::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return 0.5 * std::erfc(-(std::log(x) - _mu) /
                           (_sigma * std::sqrt(2.0)));
}

std::unique_ptr<Distribution>
LogNormalDist::clone() const
{
    return std::make_unique<LogNormalDist>(*this);
}

// ---------------------------------------------------------------- Weibull

WeibullDist::WeibullDist(double mean, double cv)
    : _mean(mean), _cv(cv)
{
    requirePositiveMean(mean, "WeibullDist");
    fatalIf(cv <= 0.0, "WeibullDist: cv must be positive");

    // Cv^2 + 1 = Gamma(1 + 2/k) / Gamma(1 + 1/k)^2 is monotone in k;
    // bisect on k in [0.05, 100].
    const double target = std::log(cv * cv + 1.0);
    auto log_ratio = [](double k) {
        return std::lgamma(1.0 + 2.0 / k) -
               2.0 * std::lgamma(1.0 + 1.0 / k);
    };
    double lo = 0.05, hi = 100.0;
    fatalIf(log_ratio(lo) < target || log_ratio(hi) > target,
            "WeibullDist: cv out of the fittable range");
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (log_ratio(mid) > target)
            lo = mid;
        else
            hi = mid;
    }
    _shape = 0.5 * (lo + hi);
    _scale = mean / std::exp(std::lgamma(1.0 + 1.0 / _shape));
}

double
WeibullDist::sample(Rng &rng) const
{
    double u;
    do {
        u = rng.uniform();
    } while (u <= 0.0);
    return _scale * std::pow(-std::log(u), 1.0 / _shape);
}

double
WeibullDist::cdf(double x) const
{
    return x <= 0.0
               ? 0.0
               : 1.0 - std::exp(-std::pow(x / _scale, _shape));
}

std::unique_ptr<Distribution>
WeibullDist::clone() const
{
    return std::make_unique<WeibullDist>(*this);
}

// ------------------------------------------------------- HyperExponential

HyperExponentialDist::HyperExponentialDist(double mean, double cv)
    : _mean(mean), _cv(cv)
{
    requirePositiveMean(mean, "HyperExponentialDist");
    fatalIf(cv < 1.0,
            "HyperExponentialDist: cv must be >= 1 (use gamma below 1)");

    // Balanced-means H2 fit: p1/mu1 = p2/mu2, matching mean and Cv.
    const double c2 = cv * cv;
    _p1 = 0.5 * (1.0 + std::sqrt((c2 - 1.0) / (c2 + 1.0)));
    _mean1 = mean / (2.0 * _p1);
    _mean2 = mean / (2.0 * (1.0 - _p1));
}

double
HyperExponentialDist::sample(Rng &rng) const
{
    const double mean = rng.uniform() < _p1 ? _mean1 : _mean2;
    return rng.exponential(mean);
}

double
HyperExponentialDist::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return _p1 * (1.0 - std::exp(-x / _mean1)) +
           (1.0 - _p1) * (1.0 - std::exp(-x / _mean2));
}

std::unique_ptr<Distribution>
HyperExponentialDist::clone() const
{
    return std::make_unique<HyperExponentialDist>(*this);
}

// ---------------------------------------------------------- BoundedPareto

BoundedParetoDist::BoundedParetoDist(double lo, double hi, double alpha)
    : _lo(lo), _hi(hi), _alpha(alpha)
{
    fatalIf(lo <= 0.0 || hi <= lo,
            "BoundedParetoDist: require 0 < lo < hi");
    fatalIf(alpha <= 0.0, "BoundedParetoDist: alpha must be positive");
    _mean = rawMoment(1.0);
    const double second = rawMoment(2.0);
    const double var = std::max(0.0, second - _mean * _mean);
    _cv = std::sqrt(var) / _mean;
}

double
BoundedParetoDist::rawMoment(double order) const
{
    // E[X^n] for the bounded Pareto; handles the alpha == n singularity.
    const double a = _alpha;
    if (std::abs(a - order) < 1e-12) {
        const double l_a = std::pow(_lo, a);
        const double h_a = std::pow(_hi, a);
        return a * l_a / (1.0 - l_a / h_a) * std::log(_hi / _lo) *
               std::pow(_lo, order - a);
    }
    const double num = a * std::pow(_lo, a) *
        (std::pow(_hi, order - a) - std::pow(_lo, order - a));
    const double den = (order - a) * (1.0 - std::pow(_lo / _hi, a));
    return num / den;
}

double
BoundedParetoDist::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const double l_a = std::pow(_lo, _alpha);
    const double h_a = std::pow(_hi, _alpha);
    const double x =
        std::pow(-(u * h_a - u * l_a - h_a) / (h_a * l_a), -1.0 / _alpha);
    return std::clamp(x, _lo, _hi);
}

double
BoundedParetoDist::cdf(double x) const
{
    if (x <= _lo)
        return 0.0;
    if (x >= _hi)
        return 1.0;
    const double l_a = std::pow(_lo, _alpha);
    return (1.0 - l_a * std::pow(x, -_alpha)) /
           (1.0 - std::pow(_lo / _hi, _alpha));
}

std::unique_ptr<Distribution>
BoundedParetoDist::clone() const
{
    return std::make_unique<BoundedParetoDist>(*this);
}

// -------------------------------------------------------------- Empirical

EmpiricalDist::EmpiricalDist(std::vector<double> samples)
    : _samples(std::move(samples))
{
    fatalIf(_samples.empty(), "EmpiricalDist: need at least one sample");
    std::sort(_samples.begin(), _samples.end());
    OnlineStats stats;
    for (double s : _samples) {
        fatalIf(s < 0.0, "EmpiricalDist: samples must be >= 0");
        stats.add(s);
    }
    _mean = stats.mean();
    _cv = stats.cv();
}

double
EmpiricalDist::sample(Rng &rng) const
{
    return _samples[rng.uniformInt(_samples.size())];
}

double
EmpiricalDist::cdf(double x) const
{
    const auto it =
        std::upper_bound(_samples.begin(), _samples.end(), x);
    return static_cast<double>(it - _samples.begin()) /
           static_cast<double>(_samples.size());
}

std::unique_ptr<Distribution>
EmpiricalDist::clone() const
{
    return std::make_unique<EmpiricalDist>(*this);
}

// -------------------------------------------------------------------- fit

std::unique_ptr<Distribution>
fitDistribution(double mean, double cv)
{
    fatalIf(mean <= 0.0, "fitDistribution: mean must be positive");
    fatalIf(cv < 0.0, "fitDistribution: cv must be >= 0");

    constexpr double exp_tolerance = 1e-9;
    if (cv == 0.0)
        return std::make_unique<DeterministicDist>(mean);
    if (std::abs(cv - 1.0) < exp_tolerance)
        return std::make_unique<ExponentialDist>(mean);
    if (cv < 1.0)
        return std::make_unique<GammaDist>(mean, cv);
    return std::make_unique<HyperExponentialDist>(mean, cv);
}

} // namespace sleepscale
