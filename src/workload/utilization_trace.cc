#include "workload/utilization_trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <numbers>
#include <sstream>

#include "util/csv.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace sleepscale {

namespace {

constexpr double secondsPerMinute = 60.0;
constexpr unsigned minutesPerDay = 24 * 60;

} // namespace

UtilizationTrace::UtilizationTrace(std::string name,
                                   std::vector<double> per_minute)
    : _name(std::move(name)), _perMinute(std::move(per_minute))
{
    for (double u : _perMinute) {
        fatalIf(u < 0.0 || u >= 1.0,
                "UtilizationTrace: utilization must be in [0, 1)");
    }
}

double
UtilizationTrace::at(std::size_t i) const
{
    fatalIf(i >= _perMinute.size(), "UtilizationTrace::at: out of range");
    return _perMinute[i];
}

double
UtilizationTrace::duration() const
{
    return static_cast<double>(_perMinute.size()) * secondsPerMinute;
}

double
UtilizationTrace::meanUtilization() const
{
    if (_perMinute.empty())
        return 0.0;
    double sum = 0.0;
    for (double u : _perMinute)
        sum += u;
    return sum / static_cast<double>(_perMinute.size());
}

double
UtilizationTrace::peakUtilization() const
{
    double peak = 0.0;
    for (double u : _perMinute)
        peak = std::max(peak, u);
    return peak;
}

UtilizationTrace
UtilizationTrace::slice(std::size_t first, std::size_t last) const
{
    fatalIf(first >= last || last > _perMinute.size(),
            "UtilizationTrace::slice: invalid range");
    return UtilizationTrace(
        _name,
        std::vector<double>(_perMinute.begin() +
                                static_cast<std::ptrdiff_t>(first),
                            _perMinute.begin() +
                                static_cast<std::ptrdiff_t>(last)));
}

UtilizationTrace
UtilizationTrace::dailyWindow(unsigned start_hour, unsigned end_hour) const
{
    fatalIf(start_hour >= end_hour || end_hour > 24,
            "UtilizationTrace::dailyWindow: invalid hour range");
    std::vector<double> window;
    for (std::size_t i = 0; i < _perMinute.size(); ++i) {
        const auto minute_of_day =
            static_cast<unsigned>(i % minutesPerDay);
        const unsigned hour = minute_of_day / 60;
        if (hour >= start_hour && hour < end_hour)
            window.push_back(_perMinute[i]);
    }
    fatalIf(window.empty(),
            "UtilizationTrace::dailyWindow: window selects no minutes");
    return UtilizationTrace(_name + " (window)", std::move(window));
}

void
UtilizationTrace::save(const std::string &path) const
{
    CsvTable table;
    table.headers = {"minute", "utilization"};
    for (std::size_t i = 0; i < _perMinute.size(); ++i)
        table.addRow({static_cast<double>(i), _perMinute[i]});
    writeCsvFile(path, table);
}

UtilizationTrace
UtilizationTrace::load(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "UtilizationTrace::load: cannot open '" + path + "'");

    auto lineError = [&path](std::size_t line, const std::string &what)
        -> std::string {
        return "UtilizationTrace::load '" + path + "' line " +
               std::to_string(line) + ": " + what;
    };

    std::string line;
    std::size_t line_no = 0;
    const auto chopCr = [](std::string &text) {
        if (!text.empty() && text.back() == '\r')
            text.pop_back();
    };

    // Find the header, skipping blank and '#' comment lines. A file
    // with no header at all — empty or comment-only — gets its own
    // message instead of a confusing "no 'utilization' column in the
    // header '# ...'".
    bool have_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        chopCr(line);
        if (line.empty() || line.front() == '#')
            continue;
        have_header = true;
        break;
    }
    fatalIf(!have_header,
            "UtilizationTrace::load: '" + path +
                "' contains no header row (the file is empty or "
                "comment-only); expected a CSV with a 'utilization' "
                "column");
    std::size_t util_col = SIZE_MAX;
    std::size_t columns = 0;
    {
        std::istringstream header(line);
        std::string cell;
        while (std::getline(header, cell, ',')) {
            if (cell == "utilization")
                util_col = columns;
            ++columns;
        }
    }
    fatalIf(util_col == SIZE_MAX,
            lineError(line_no, "no 'utilization' column in header '" +
                                   line + "'"));

    std::vector<double> values;
    double last_minute = -1.0;
    while (std::getline(in, line)) {
        ++line_no;
        chopCr(line);
        if (line.empty() || line.front() == '#')
            continue;
        std::istringstream fields(line);
        std::string cell;
        std::vector<double> row;
        while (std::getline(fields, cell, ',')) {
            double value = 0.0;
            fatalIf(!tryParseCsvDouble(cell, value),
                    lineError(line_no,
                              "non-numeric cell '" + cell + "'"));
            row.push_back(value);
        }
        fatalIf(row.size() != columns,
                lineError(line_no, "expected " +
                                       std::to_string(columns) +
                                       " cells, got " +
                                       std::to_string(row.size())));
        const double u = row[util_col];
        fatalIf(std::isnan(u), lineError(line_no, "NaN utilization"));
        fatalIf(u < 0.0 || u >= 1.0,
                lineError(line_no, "utilization " + std::to_string(u) +
                                       " outside [0, 1)"));
        // Traces saved by save() carry a minute column; when present it
        // must be strictly increasing (an out-of-order or duplicated
        // row is a corrupt trace, not data).
        if (util_col != 0 && columns >= 2) {
            const double minute = row[0];
            fatalIf(std::isnan(minute) || minute < 0.0,
                    lineError(line_no, "bad minute index"));
            fatalIf(minute <= last_minute,
                    lineError(line_no,
                              "out-of-order minute " +
                                  std::to_string(minute) +
                                  " (previous " +
                                  std::to_string(last_minute) + ")"));
            last_minute = minute;
        }
        values.push_back(u);
    }
    fatalIf(values.empty(),
            "UtilizationTrace::load: '" + path +
                "' has a header but no data rows; a trace needs at "
                "least one per-minute utilization value");
    return UtilizationTrace(path, std::move(values));
}

namespace {

/**
 * Smooth diurnal shape in [0, 1]: minimum around 4 AM, peak around 3 PM.
 */
double
diurnal(unsigned minute_of_day)
{
    const double hours = static_cast<double>(minute_of_day) / 60.0;
    const double phase = (hours - 9.0) / 24.0 * 2.0 * std::numbers::pi;
    return 0.5 * (1.0 + std::sin(phase));
}

} // namespace

UtilizationTrace
synthFileServerTrace(unsigned days, std::uint64_t seed)
{
    fatalIf(days == 0, "synthFileServerTrace: need at least one day");
    Rng rng(seed);
    std::vector<double> trace;
    trace.reserve(static_cast<std::size_t>(days) * minutesPerDay);

    double noise = 0.0;
    for (unsigned day = 0; day < days; ++day) {
        for (unsigned m = 0; m < minutesPerDay; ++m) {
            // AR(1) fluctuation plus rare small access bursts.
            noise = 0.92 * noise + rng.normal(0.0, 0.008);
            double u = 0.05 + 0.09 * diurnal(m) + noise;
            if (rng.uniform() < 0.004)
                u += rng.uniform(0.02, 0.06);
            trace.push_back(std::clamp(u, 0.02, 0.20));
        }
    }
    return UtilizationTrace("file-server", std::move(trace));
}

UtilizationTrace
synthEmailStoreTrace(unsigned days, std::uint64_t seed)
{
    fatalIf(days == 0, "synthEmailStoreTrace: need at least one day");
    Rng rng(seed);
    std::vector<double> trace;
    trace.reserve(static_cast<std::size_t>(days) * minutesPerDay);

    double noise = 0.0;
    unsigned burst_left = 0;
    double burst_level = 0.0;
    for (unsigned day = 0; day < days; ++day) {
        for (unsigned m = 0; m < minutesPerDay; ++m) {
            noise = 0.90 * noise + rng.normal(0.0, 0.02);
            double u = 0.15 + 0.25 * diurnal(m) + noise;

            const unsigned hour = m / 60;
            const bool backup = hour >= 20 || hour < 2;
            if (backup) {
                // Nightly backup/maintenance window (8 PM - 2 AM):
                // sustained surges toward 0.9, spiky rather than smooth.
                u = 0.55 + 0.3 * rng.uniform();
                if (rng.uniform() < 0.3)
                    u = 0.82 + 0.08 * rng.uniform();
            } else {
                // Daytime mail bursts: abrupt multi-minute episodes that
                // jump well above the diurnal baseline — the behaviour
                // that stresses causal utilization predictors.
                if (burst_left == 0 && rng.uniform() < 0.015) {
                    burst_left =
                        2 + static_cast<unsigned>(rng.uniformInt(7));
                    burst_level = rng.uniform(0.5, 0.78);
                }
                if (burst_left > 0) {
                    --burst_left;
                    u = burst_level + rng.normal(0.0, 0.02);
                }
            }
            trace.push_back(std::clamp(u, 0.05, 0.92));
        }
    }
    return UtilizationTrace("email-store", std::move(trace));
}

} // namespace sleepscale
