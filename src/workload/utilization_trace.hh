/**
 * @file
 * Minute-granularity utilization traces (paper Figure 7).
 *
 * The paper evaluates SleepScale against real departmental traces (a file
 * server and an email store). Those traces are not public, so this module
 * synthesizes equivalents that reproduce their reported structure: a
 * periodic daily pattern, minute-scale stochastic fluctuation, and (for
 * the email store) abrupt surges from nightly backup jobs. See DESIGN.md
 * for the substitution rationale.
 */

#ifndef SLEEPSCALE_WORKLOAD_UTILIZATION_TRACE_HH
#define SLEEPSCALE_WORKLOAD_UTILIZATION_TRACE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace sleepscale {

/** A sequence of per-minute utilization (offered load) values in [0, 1). */
class UtilizationTrace
{
  public:
    UtilizationTrace() = default;

    /**
     * @param name Trace name for reports.
     * @param per_minute Utilization per minute, each in [0, 1).
     */
    UtilizationTrace(std::string name, std::vector<double> per_minute);

    /** Trace name. */
    const std::string &name() const { return _name; }

    /** Number of minutes. */
    std::size_t size() const { return _perMinute.size(); }

    /** Whether the trace holds no samples. */
    bool empty() const { return _perMinute.empty(); }

    /** Utilization of minute i. */
    double at(std::size_t i) const;

    /** Total covered wall-clock time in seconds. */
    double duration() const;

    /** All per-minute values. */
    const std::vector<double> &values() const { return _perMinute; }

    /** Mean utilization across the trace. */
    double meanUtilization() const;

    /** Largest per-minute utilization. */
    double peakUtilization() const;

    /**
     * Sub-trace covering minutes [first, last).
     *
     * @param first Inclusive start minute.
     * @param last Exclusive end minute; must satisfy first < last <= size.
     */
    UtilizationTrace slice(std::size_t first, std::size_t last) const;

    /**
     * Sub-trace covering one daily window across every day of the trace,
     * e.g. hours [2, 20) reproduces the paper's "2 AM to 8 PM" window.
     *
     * @param start_hour Inclusive start hour of day [0, 24).
     * @param end_hour Exclusive end hour of day (start_hour, 24].
     */
    UtilizationTrace dailyWindow(unsigned start_hour,
                                 unsigned end_hour) const;

    /** Serialize as a two-column CSV (minute, utilization). */
    void save(const std::string &path) const;

    /** Load a trace saved by save(). Blank and '#' comment lines are
     * skipped; a file with no header (empty or comment-only) or with a
     * header but no data rows fails fast naming the file. */
    static UtilizationTrace load(const std::string &path);

  private:
    std::string _name;
    std::vector<double> _perMinute;
};

/**
 * Synthesize a file-server-like trace: low utilization (~0.02-0.2) with a
 * mild diurnal swell and AR(1) noise.
 *
 * @param days Number of 24-hour days, starting at midnight.
 * @param seed RNG seed (traces are deterministic given the seed).
 */
UtilizationTrace synthFileServerTrace(unsigned days, std::uint64_t seed);

/**
 * Synthesize an email-store-like trace: moderate diurnal utilization with
 * abrupt surges toward 0.9 during the nightly backup window (8 PM - 2 AM),
 * matching the structure the paper reports for its email-store host.
 */
UtilizationTrace synthEmailStoreTrace(unsigned days, std::uint64_t seed);

} // namespace sleepscale

#endif // SLEEPSCALE_WORKLOAD_UTILIZATION_TRACE_HH
