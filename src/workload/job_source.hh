/**
 * @file
 * Streaming job sources: pull-based workload generation.
 *
 * Every engine consumes arrivals through the JobSource interface
 * instead of a materialized std::vector<Job>, so a million-job farm day
 * streams in O(epoch) memory and new scenario shapes compose from
 * existing pieces instead of growing new ad-hoc generator functions.
 *
 * The primitive sources mirror the paper's workload constructions:
 *
 *  - StationarySource   — fixed-load (mean, Cv) arrivals (Section 4.1).
 *  - TraceDrivenSource  — minute-scale utilization modulation with the
 *                         gap shape held fixed (Section 6).
 *  - BurstySource       — MMPP-style burst episodes over a stationary
 *                         baseline (scale-out burst patterns).
 *  - ReplaySource       — file-backed replay of CSV job logs
 *                         (Google-cluster-style arrival,size[,class]
 *                         rows), parsed lazily with line-numbered
 *                         validation.
 *  - VectorSource       — adapter over an in-memory job list.
 *
 * Combinators build composite streams: merge() interleaves N sources
 * with a deterministic tie-break, scale() rescales rate and sizes,
 * thin() keeps a random subset, take()/until() bound a stream, and
 * diurnal() modulates the rate with a smooth daily pattern.
 *
 * Sources are registered by name in jobSourceRegistry() so
 * ScenarioSpec can pick and parameterize them declaratively.
 *
 * Contracts every source obeys:
 *  - next() either fills the Job and returns true, or returns false
 *    forever after (the stream is exhausted).
 *  - Arrival times are non-decreasing.
 *  - reset(seed) rewinds to the start of the stream; equal seeds yield
 *    bit-identical streams.
 *  - clone() duplicates the full state, including mid-stream position:
 *    a clone continues exactly where the original would have.
 */

#ifndef SLEEPSCALE_WORKLOAD_JOB_SOURCE_HH
#define SLEEPSCALE_WORKLOAD_JOB_SOURCE_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/registry.hh"
#include "util/rng.hh"
#include "workload/distribution.hh"
#include "workload/job.hh"
#include "workload/utilization_trace.hh"
#include "workload/workload_spec.hh"

namespace sleepscale {

/** Pull-based stream of jobs with non-decreasing arrival times. */
class JobSource
{
  public:
    virtual ~JobSource() = default;

    /**
     * Produce the next job.
     *
     * @param out Filled with the job when one is available.
     * @return True when out was filled; false when the stream is
     *         exhausted (and on every later call).
     */
    virtual bool next(Job &out) = 0;

    /**
     * Rewind to the start of the stream. Equal seeds yield bit-identical
     * streams; sources without randomness ignore the seed.
     */
    virtual void reset(std::uint64_t seed) = 0;

    /**
     * Duplicate the source, mid-stream position included: the clone's
     * future output is exactly the original's. Cheap — no job is ever
     * materialized.
     */
    virtual std::unique_ptr<JobSource> clone() const = 0;
};

/**
 * Drain a source into a vector.
 *
 * @param source Source to drain (consumed).
 * @param max_jobs Stop after this many jobs (guards infinite sources).
 */
std::vector<Job> materialize(JobSource &source,
                             std::size_t max_jobs = SIZE_MAX);

// --------------------------------------------------------------- sources

/**
 * Unbounded stationary arrivals: i.i.d. inter-arrival gaps and service
 * demands (the paper's Section 4.1 construction).
 */
class StationarySource final : public JobSource
{
  public:
    /**
     * @param inter_arrival Gap distribution.
     * @param service Service-demand distribution (sizes at f = 1).
     * @param seed RNG seed.
     */
    StationarySource(std::unique_ptr<Distribution> inter_arrival,
                     std::unique_ptr<Distribution> service,
                     std::uint64_t seed);

    /**
     * Workload at a target utilization.
     *
     * @param rate_scale Extra arrival-rate multiplier (a farm of N
     *        servers at per-server load u uses rate_scale = N).
     */
    StationarySource(const WorkloadSpec &spec, double utilization,
                     std::uint64_t seed, double rate_scale = 1.0);

    /** Continue from an explicit RNG state (materialized adapters). */
    StationarySource(std::unique_ptr<Distribution> inter_arrival,
                     std::unique_ptr<Distribution> service, Rng rng);

    bool next(Job &out) override;
    void reset(std::uint64_t seed) override;
    std::unique_ptr<JobSource> clone() const override;

    /** Current RNG state (for adapters that hand it back). */
    const Rng &rng() const { return _rng; }

  private:
    std::unique_ptr<Distribution> _interArrival;
    std::unique_ptr<Distribution> _service;
    Rng _rng;
    double _clock = 0.0;
};

/**
 * Trace-modulated arrivals (paper Section 6): gaps keep the workload's
 * inter-arrival Cv while the mean is rescaled minute by minute so the
 * offered load follows the utilization trace. Service demands stay
 * stationary. The stream ends at the end of the trace.
 */
class TraceDrivenSource final : public JobSource
{
  public:
    /**
     * @param spec Workload characterization.
     * @param trace Per-minute utilization targets.
     * @param seed RNG seed.
     * @param rate_scale Arrival-rate multiplier on top of the trace
     *        (farm aggregation: the trace is per-server load).
     */
    TraceDrivenSource(const WorkloadSpec &spec, UtilizationTrace trace,
                      std::uint64_t seed, double rate_scale = 1.0);

    /** Continue from an explicit RNG state (materialized adapters). */
    TraceDrivenSource(const WorkloadSpec &spec, UtilizationTrace trace,
                      Rng rng, double rate_scale = 1.0);

    bool next(Job &out) override;
    void reset(std::uint64_t seed) override;
    std::unique_ptr<JobSource> clone() const override;

    /** Current RNG state (for adapters that hand it back). */
    const Rng &rng() const { return _rng; }

  private:
    TraceDrivenSource(const TraceDrivenSource &other); // deep copy

    double _serviceMean;
    UtilizationTrace _trace;
    std::unique_ptr<Distribution> _unitGap;
    std::unique_ptr<Distribution> _service;
    double _rateScale;
    Rng _rng;
    double _clock = 0.0;
    bool _done = false;
};

/**
 * Burst-injected arrivals: a two-state Markov-modulated process. The
 * baseline is a stationary stream at `utilization`; burst episodes
 * multiply the arrival rate by `burst_factor`. Episode lengths and the
 * gaps between episodes are exponential. State flips are sampled at job
 * boundaries, so episode durations are honored up to one inter-arrival
 * gap — the standard discrete-event MMPP approximation.
 */
class BurstySource final : public JobSource
{
  public:
    /**
     * @param spec Workload characterization.
     * @param utilization Baseline offered load in (0, 1).
     * @param burst_factor Rate multiplier inside bursts (>= 1).
     * @param burst_mean_length Mean episode length, seconds (> 0).
     * @param burst_mean_gap Mean time between episodes, seconds (> 0).
     * @param seed RNG seed.
     * @param rate_scale Extra arrival-rate multiplier (farm use).
     */
    BurstySource(const WorkloadSpec &spec, double utilization,
                 double burst_factor, double burst_mean_length,
                 double burst_mean_gap, std::uint64_t seed,
                 double rate_scale = 1.0);

    bool next(Job &out) override;
    void reset(std::uint64_t seed) override;
    std::unique_ptr<JobSource> clone() const override;

  private:
    BurstySource(const BurstySource &other); // deep copy

    std::unique_ptr<Distribution> _gap;     ///< Baseline gaps.
    std::unique_ptr<Distribution> _service;
    double _burstFactor;
    double _burstMeanLength;
    double _burstMeanGap;
    Rng _rng;
    double _clock = 0.0;
    bool _inBurst = false;
    double _stateEnd = 0.0;
    bool _primed = false;
};

/**
 * File-backed replay of a CSV job log with `arrival,size[,class]` rows
 * (Google-cluster-trace style). Rows are parsed lazily — the file is
 * never materialized — and validated as they stream: non-numeric, NaN,
 * infinite, or negative fields and out-of-order arrivals raise a
 * line-numbered ConfigError. Lines starting with '#' are comments; the
 * first non-comment line whose fields are not numeric is treated as a
 * header and skipped. A file with or without a trailing newline on its
 * last row replays identically (clone() included). A log that yields
 * no data rows at all — empty, comment-only, or header-only — raises a
 * ConfigError naming the file rather than silently streaming nothing.
 */
class ReplaySource final : public JobSource
{
  public:
    /** @param path CSV file; opened immediately, fatal() when absent. */
    explicit ReplaySource(std::string path);

    bool next(Job &out) override;
    /** Rewinds to the first row; the seed is ignored (replay is
     * deterministic by construction). */
    void reset(std::uint64_t seed) override;
    std::unique_ptr<JobSource> clone() const override;

  private:
    std::string _path;
    std::ifstream _in;
    std::streampos _pos{0};      ///< Offset after the last read line.
    std::size_t _line = 0;       ///< 1-based line of the last read.
    std::size_t _rows = 0;       ///< Data rows yielded so far.
    double _lastArrival = 0.0;
    bool _headerChecked = false;
    bool _done = false;

    void open();
    [[noreturn]] void rowError(const std::string &what) const;
};

/** Adapter streaming an in-memory job list. */
class VectorSource final : public JobSource
{
  public:
    /** Owning: the source keeps the jobs alive. */
    explicit VectorSource(std::vector<Job> jobs);

    /** Non-owning view; `jobs` must outlive the source and its clones. */
    static VectorSource view(const std::vector<Job> &jobs);

    bool next(Job &out) override;
    /** Rewinds; the seed is ignored. */
    void reset(std::uint64_t seed) override;
    std::unique_ptr<JobSource> clone() const override;

  private:
    VectorSource() = default;

    std::shared_ptr<const std::vector<Job>> _owned;
    const std::vector<Job> *_jobs = nullptr;
    std::size_t _next = 0;
};

// ----------------------------------------------------------- combinators

/**
 * Interleave N sources into one stream ordered by arrival time.
 *
 * Tie-break: on equal arrivals the source with the lowest index yields
 * first — deterministic and stable, so merged streams are reproducible
 * regardless of how the inputs were constructed.
 *
 * reset(seed) resets child i with the derived seed mixSeed(seed + i),
 * keeping the children's streams decorrelated under one master seed.
 */
std::unique_ptr<JobSource>
merge(std::vector<std::unique_ptr<JobSource>> sources);

/** Two-source convenience overload of merge(). */
std::unique_ptr<JobSource> merge(std::unique_ptr<JobSource> a,
                                 std::unique_ptr<JobSource> b);

/**
 * Rescale a stream: arrival times divide by rate_scale (> 0), so the
 * arrival rate multiplies by it; sizes multiply by size_scale (> 0).
 */
std::unique_ptr<JobSource> scale(std::unique_ptr<JobSource> source,
                                 double rate_scale,
                                 double size_scale = 1.0);

/**
 * Keep each job independently with probability keep_prob in (0, 1] —
 * random splitting, e.g. one server's share of an aggregate stream.
 */
std::unique_ptr<JobSource> thin(std::unique_ptr<JobSource> source,
                                double keep_prob, std::uint64_t seed);

/** First `count` jobs of a stream. */
std::unique_ptr<JobSource> take(std::unique_ptr<JobSource> source,
                                std::size_t count);

/** Jobs arriving strictly before `end_time` seconds. */
std::unique_ptr<JobSource> until(std::unique_ptr<JobSource> source,
                                 double end_time);

/**
 * Modulate a stream's rate with a smooth diurnal pattern: each gap is
 * divided by m(t) = 1 + amplitude * sin(2π (t + phase) / period), so
 * the instantaneous rate follows the daily curve while the gap shape is
 * preserved.
 *
 * @param amplitude Modulation depth in [0, 1).
 * @param period Pattern period, seconds (default one day).
 * @param phase Phase offset, seconds.
 */
std::unique_ptr<JobSource> diurnal(std::unique_ptr<JobSource> source,
                                   double amplitude,
                                   double period = 86400.0,
                                   double phase = 0.0);

// -------------------------------------------------------------- registry

/**
 * Parameter bag handed to registered job-source factories. Factories
 * read the fields they need and ignore the rest, so one declarative
 * schema (ScenarioSpec, the CLI) covers every source.
 */
struct JobSourceConfig
{
    WorkloadSpec workload;         ///< Characterization (most sources).
    UtilizationTrace trace;        ///< Modulation ("trace" source).
    double utilization = 0.3;      ///< Level ("stationary", "bursty").
    double rateScale = 1.0;        ///< Arrival-rate multiplier
                                   ///< (ignored by "replay").
    double burstRateFactor = 4.0;  ///< "bursty": in-burst multiplier.
    double burstMeanLength = 120.0; ///< "bursty": episode mean, s.
    double burstMeanGap = 1800.0;  ///< "bursty": between episodes, s.
    std::string replayPath;        ///< "replay": CSV job-log path.
    std::uint64_t seed = 1;        ///< Master seed.
};

/** Factory signature stored in the job-source registry. */
using JobSourceFactory =
    std::function<std::unique_ptr<JobSource>(const JobSourceConfig &)>;

/**
 * The job-source registry. Ships with "trace", "stationary", "bursty",
 * and "replay"; extensions register new shapes under new names and
 * every scenario, sweep, and CLI run can name them.
 */
Registry<JobSourceFactory> &jobSourceRegistry();

/** Build a registered source by name; fatal() on unknown names. */
std::unique_ptr<JobSource> makeJobSource(const std::string &name,
                                         const JobSourceConfig &config);

} // namespace sleepscale

#endif // SLEEPSCALE_WORKLOAD_JOB_SOURCE_HH
