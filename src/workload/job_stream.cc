#include "workload/job_stream.hh"

#include <algorithm>

#include "util/error.hh"

namespace sleepscale {

std::vector<Job>
generateJobs(Rng &rng, const Distribution &inter_arrival,
             const Distribution &service, std::size_t count)
{
    std::vector<Job> jobs;
    jobs.reserve(count);
    double clock = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        clock += inter_arrival.sample(rng);
        jobs.push_back({clock, service.sample(rng)});
    }
    return jobs;
}

std::vector<Job>
generateJobsForDuration(Rng &rng, const Distribution &inter_arrival,
                        const Distribution &service, double duration)
{
    fatalIf(duration <= 0.0,
            "generateJobsForDuration: duration must be positive");
    std::vector<Job> jobs;
    double clock = inter_arrival.sample(rng);
    while (clock < duration) {
        jobs.push_back({clock, service.sample(rng)});
        clock += inter_arrival.sample(rng);
    }
    return jobs;
}

std::vector<Job>
generateWorkloadJobs(Rng &rng, const WorkloadSpec &spec, double utilization,
                     std::size_t count)
{
    const auto inter_arrival = spec.makeInterArrival(utilization);
    const auto service = spec.makeService();
    return generateJobs(rng, *inter_arrival, *service, count);
}

std::vector<Job>
generateTraceDrivenJobs(Rng &rng, const WorkloadSpec &spec,
                        const UtilizationTrace &trace)
{
    fatalIf(trace.empty(), "generateTraceDrivenJobs: empty trace");

    // Draw gaps from a unit-mean distribution with the workload's
    // inter-arrival Cv and rescale the mean minute by minute; this keeps
    // the distribution *shape* fixed while the offered load follows the
    // trace, exactly the paper's Section 6 construction.
    const auto unit_gap = fitDistribution(1.0, spec.interArrivalCv);
    const auto service = spec.makeService();
    constexpr double minute = 60.0;
    // Floor keeps the mean gap finite through zero-load minutes.
    constexpr double min_load = 1e-4;

    std::vector<Job> jobs;
    const double total = trace.duration();
    // Rough expected job count to avoid repeated reallocation.
    jobs.reserve(static_cast<std::size_t>(
        std::min(5e7, total * trace.meanUtilization() /
                          std::max(spec.serviceMean, 1e-9) * 1.2)));

    double clock = 0.0;
    while (clock < total) {
        const auto idx = static_cast<std::size_t>(clock / minute);
        const double load = std::max(trace.at(idx), min_load);
        const double mean_gap = spec.serviceMean / load;
        clock += mean_gap * unit_gap->sample(rng);
        if (clock < total)
            jobs.push_back({clock, service->sample(rng)});
    }
    return jobs;
}

double
offeredLoad(const std::vector<Job> &jobs, double window)
{
    fatalIf(window <= 0.0, "offeredLoad: window must be positive");
    double demand = 0.0;
    for (const Job &job : jobs)
        demand += job.size;
    return demand / window;
}

} // namespace sleepscale
