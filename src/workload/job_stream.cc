#include "workload/job_stream.hh"

#include <algorithm>

#include "util/error.hh"
#include "workload/job_source.hh"

namespace sleepscale {

std::vector<Job>
generateJobs(Rng &rng, const Distribution &inter_arrival,
             const Distribution &service, std::size_t count)
{
    StationarySource source(inter_arrival.clone(), service.clone(), rng);
    std::vector<Job> jobs = materialize(source, count);
    rng = source.rng();
    return jobs;
}

std::vector<Job>
generateJobsForDuration(Rng &rng, const Distribution &inter_arrival,
                        const Distribution &service, double duration)
{
    fatalIf(duration <= 0.0,
            "generateJobsForDuration: duration must be positive");
    // Kept as a direct loop rather than a StationarySource drain: the
    // source pairs every gap with a service draw, but this function
    // has always left the overshooting final gap unpaired, and callers
    // reusing the Rng afterwards depend on that exact draw count.
    std::vector<Job> jobs;
    double clock = inter_arrival.sample(rng);
    while (clock < duration) {
        jobs.push_back({clock, service.sample(rng)});
        clock += inter_arrival.sample(rng);
    }
    return jobs;
}

std::vector<Job>
generateWorkloadJobs(Rng &rng, const WorkloadSpec &spec, double utilization,
                     std::size_t count)
{
    const auto inter_arrival = spec.makeInterArrival(utilization);
    const auto service = spec.makeService();
    return generateJobs(rng, *inter_arrival, *service, count);
}

std::vector<Job>
generateTraceDrivenJobs(Rng &rng, const WorkloadSpec &spec,
                        const UtilizationTrace &trace)
{
    fatalIf(trace.empty(), "generateTraceDrivenJobs: empty trace");
    TraceDrivenSource source(spec, trace, rng);
    std::vector<Job> jobs = materialize(source);
    rng = source.rng();
    return jobs;
}

double
offeredLoad(const std::vector<Job> &jobs, double window)
{
    fatalIf(window <= 0.0, "offeredLoad: window must be positive");
    double demand = 0.0;
    for (const Job &job : jobs)
        demand += job.size;
    return demand / window;
}

} // namespace sleepscale
